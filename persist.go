package ncexplorer

import (
	"errors"

	"ncexplorer/internal/core"
	"ncexplorer/internal/kggen"
	"ncexplorer/internal/segio"
	"ncexplorer/internal/watch"
)

// Durable snapshot persistence: Save serializes an Explorer's indexed
// corpus to a directory, Open restarts from one without re-running the
// NLP/linking pipeline. The knowledge graph itself is not persisted —
// it is regenerated deterministically from the seed recorded in the
// manifest (equal seeds produce byte-identical graphs), which keeps
// the on-disk format about the one thing that is expensive to rebuild:
// the indexed corpus.

// OpenOptions adjusts storage policy when reopening a snapshot.
// Content-determining parameters (seed, scale, sampling) always come
// from the manifest — overriding them would make the loaded index
// disagree with its own scores.
type OpenOptions struct {
	// MaxSegments overrides the merge-policy bound; 0 keeps the saved
	// value.
	MaxSegments int
	// MaxWatchlists caps concurrently registered watchlists (default
	// 64). A snapshot holding more watchlists than the cap still opens;
	// the cap only refuses new registrations.
	MaxWatchlists int
	// AlertBuffer is the per-watchlist alert retention window (default
	// 256).
	AlertBuffer int
}

// Save durably persists the Explorer's current index snapshot into
// dir (created if needed): one immutable, CRC-protected file per
// segment, the engine's connectivity-memo cache, and an atomically
// replaced MANIFEST. Concurrent queries are unaffected; concurrent
// ingests serialize around the save. On error the directory's previous
// snapshot, if any, is untouched.
func (x *Explorer) Save(dir string) error {
	if err := x.engine.SaveSnapshot(dir, x.worldMeta()); err != nil {
		return persistError(err)
	}
	return nil
}

// CheckpointTo enables per-commit checkpointing into dir: every
// ingested batch (and every background segment merge) updates dir so
// a crash loses at most the batch in flight. Pass "" to disable.
// Checkpoint failures never fail the ingest that triggered them; they
// are counted in Stats().Persist.CheckpointErrors.
func (x *Explorer) CheckpointTo(dir string) {
	x.engine.SetCheckpointDir(dir, x.worldMeta())
}

// HasSnapshot reports whether dir contains a loadable snapshot
// manifest (it does not validate the referenced files — Open does).
func HasSnapshot(dir string) bool {
	_, err := segio.ReadManifest(dir)
	return err == nil
}

// Open loads a persisted snapshot: it regenerates the knowledge graph
// from the manifest's recorded seed and scale, decodes the segment
// files, pre-fills the engine's connectivity memo from the saved
// cache, and rescores the corpus through the same swap path every
// ingest uses. The result answers every query byte-identically to the
// Explorer that saved, at the same generation, and can keep ingesting
// from there. Errors are typed: CodeNotFound (no snapshot in dir),
// CodeCorruptSnapshot, or CodeVersionMismatch — never a partially
// initialized Explorer.
func Open(dir string, opts OpenOptions) (*Explorer, error) {
	m, err := segio.ReadManifest(dir)
	if err != nil {
		return nil, persistError(err)
	}
	scale, kcfg, ccfg, err := worldConfigs(m.World["scale"], m.Engine.Seed)
	if err != nil || m.World["scale"] == "" {
		return nil, &Error{Code: CodeCorruptSnapshot,
			Message: "ncexplorer: snapshot manifest names unknown world scale " + m.World["scale"]}
	}
	g, meta, err := kggen.Generate(kcfg)
	if err != nil {
		return nil, err
	}
	maxSegments := m.Engine.MaxSegments
	if opts.MaxSegments > 0 {
		maxSegments = opts.MaxSegments
	}
	engine := core.NewEngine(g, core.Options{
		Tau:               m.Engine.Tau,
		Beta:              m.Engine.Beta,
		Samples:           m.Engine.Samples,
		Seed:              m.Engine.Seed,
		MaxConceptsPerDoc: m.Engine.MaxConceptsPerDoc,
		AncestorLevels:    m.Engine.AncestorLevels,
		Exact:             m.Engine.Exact,
		MaxSegments:       maxSegments,
	})
	if err := engine.OpenSnapshot(dir, m); err != nil {
		return nil, persistError(err)
	}
	x := &Explorer{g: g, meta: meta, engine: engine, ccfg: ccfg, scale: scale}
	x.initWatch(watch.Options{MaxWatchlists: opts.MaxWatchlists, AlertBuffer: opts.AlertBuffer})
	if m.WatchFile != "" {
		data, err := segio.ReadWatchFile(dir, m.WatchFile)
		if err != nil {
			return nil, persistError(err)
		}
		if err := x.watch.Load(data); err != nil {
			return nil, persistError(err)
		}
	}
	return x, nil
}

// persistError maps segio/core persistence failures to the facade's
// typed errors.
func persistError(err error) error {
	if err == nil {
		return nil
	}
	var typed *Error
	if errors.As(err, &typed) {
		return err
	}
	switch {
	case errors.Is(err, segio.ErrNoSnapshot):
		return &Error{Code: CodeNotFound, Message: err.Error(), Err: err}
	case errors.Is(err, segio.ErrVersionMismatch):
		return &Error{Code: CodeVersionMismatch, Message: err.Error(), Err: err}
	case errors.Is(err, segio.ErrCorrupt):
		return &Error{Code: CodeCorruptSnapshot, Message: err.Error(), Err: err}
	default:
		return &Error{Code: CodeInternal, Message: err.Error(), Err: err}
	}
}

// worldMeta is the facade-level reconstruction data stored in every
// manifest this Explorer writes.
func (x *Explorer) worldMeta() map[string]string {
	return map[string]string{"scale": x.scale}
}
