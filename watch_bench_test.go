package ncexplorer

import (
	"context"
	"fmt"
	"testing"

	"ncexplorer/internal/core"
)

// BenchmarkWatchEvaluate measures the ingest-time standing-query
// sweep: one call evaluates every registered watchlist against a
// 25-document delta, exactly as the ingest hook does. The growth axis
// pre-ingests batches (crossing the segment-merge threshold) before
// measuring; because evaluation walks only the delta's postings, the
// per-ingest cost must stay flat (±25%) as the corpus grows — the
// acceptance gate scripts/bench_json.sh enforces. The watchlists axis
// shows cost scaling linearly in the number of standing queries, and
// the alerts/s metric reports delivery throughput.
func BenchmarkWatchEvaluate(b *testing.B) {
	const deltaDocs = 25
	for _, growth := range []int{0, 8} {
		x, err := New(Config{Scale: "tiny", Seed: 42, AlertBuffer: 64})
		if err != nil {
			b.Fatal(err)
		}
		seed := uint64(5000 + 100*growth)
		ingest := func() {
			arts, err := x.SampleArticles(seed, deltaDocs)
			if err != nil {
				b.Fatal(err)
			}
			seed++
			if _, err := x.Ingest(context.Background(), arts); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < growth; i++ {
			ingest()
		}
		x.Quiesce()
		pool := popularConcepts(b, x, 8)

		for _, nw := range []int{1, 4, 16} {
			name := fmt.Sprintf("growth=%d/watchlists=%d", growth, nw)
			b.Run(name, func(b *testing.B) {
				// Register before the measured batch lands: a watchlist only
				// sees batches ingested after its CreatedGeneration, and the
				// repeated evaluations below replay that batch's delta.
				var wls []Watchlist
				for i := 0; i < nw; i++ {
					wl, err := x.RegisterWatchlist(WatchlistSpec{
						Concepts: []string{pool[i%len(pool)]},
						MinScore: float64(i%4) * 0.01,
					})
					if err != nil {
						b.Fatal(err)
					}
					wls = append(wls, wl)
				}
				ingest()
				x.Quiesce()
				before := x.Stats().Watch.AlertsFired
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x.engine.WithRecentView(deltaDocs, func(v *core.DeltaView) {
						x.watchEvaluate(v)
					})
				}
				b.StopTimer()
				fired := x.Stats().Watch.AlertsFired - before
				if fired == 0 {
					b.Fatal("evaluation fired no alerts — the benchmark measures nothing")
				}
				b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "alerts/s")
				b.ReportMetric(float64(fired)/float64(b.N), "alerts/op")
				for _, wl := range wls {
					if err := x.RemoveWatchlist(wl.ID); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
