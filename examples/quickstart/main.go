// Quickstart: build a synthetic news world, run one roll-up and one
// drill-down, and print explained results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ncexplorer"
)

func main() {
	// A tiny world builds in well under a second; use Scale "default"
	// for the experiment-sized corpus.
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d articles\n\n", x.NumArticles())

	// Roll-up: a concept-pattern query. Every returned article contains
	// entities matching BOTH concepts, ranked by rel(Q, d) = Σ cdr.
	query := []string{"International trade", "Country"}
	fmt.Printf("Roll-up: %v\n", query)
	articles, err := x.RollUp(query, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range articles {
		fmt.Printf("%d. [%.3f] %s\n", i+1, a.Score, a.Title)
		for _, e := range a.Explanations {
			fmt.Printf("     matched %q via entity %q (cdr %.3f)\n", e.Concept, e.Pivot, e.CDR)
		}
	}

	// Drill-down: ranked subtopics that refine the query.
	fmt.Printf("\nDrill-down suggestions for %v:\n", query)
	subs, err := x.DrillDown(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range subs {
		fmt.Printf("%d. %-28s (coverage %.2f, specificity %.2f, diversity %.2f)\n",
			i+1, s.Concept, s.Coverage, s.Specificity, s.Diversity)
	}

	// Selecting a suggestion narrows the investigation.
	if len(subs) > 0 {
		refined := append(query, subs[0].Concept)
		narrowed, err := x.RollUp(refined, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nAfter drilling into %q: %d top articles\n", subs[0].Concept, len(narrowed))
		for _, a := range narrowed {
			fmt.Printf("  - %s\n", a.Title)
		}
	}
}
