// Livefeed: the due-diligence monitoring loop over a live corpus.
// Build a world, run a watchlist query, ingest a batch of "incoming"
// articles, and re-run the query — the new coverage appears at the
// next index generation, with no rebuild and no downtime, and
// drill-down suggestions pick up the fresh documents too.
//
//	go run ./examples/livefeed
package main

import (
	"context"
	"fmt"
	"log"

	"ncexplorer"
)

func main() {
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	fmt.Printf("indexed %d articles (index generation %d)\n\n", x.NumArticles(), x.Generation())

	// The analyst's watchlist query: one of the built-in evaluation
	// topics, queried through the typed API so we see match totals and
	// the serving generation.
	topic := x.EvaluationTopics()[0]
	watch := ncexplorer.RollUpRequest{Concepts: []string{topic[0]}, K: 3, Explain: true}
	before, err := x.RollUpQuery(ctx, watch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Watchlist %v — %d matching articles at generation %d:\n",
		watch.Concepts, before.Total, before.Generation)
	for i, a := range before.Articles {
		fmt.Printf("%d. [%.3f] %s\n", i+1, a.Score, a.Title)
	}

	// News arrives. SampleArticles stands in for a feed consumer: it
	// synthesises fresh articles from the same world the corpus came
	// from (in production this is POST /v2/ingest or ncserver -watch).
	incoming, err := x.SampleArticles(2024, 30)
	if err != nil {
		log.Fatal(err)
	}
	res, err := x.Ingest(ctx, incoming)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ningested %d articles → generation %d (%d total)\n",
		res.Accepted, res.Generation, res.TotalArticles)

	// The same query now sees the new coverage — atomically: every
	// result in the page is served from one generation.
	after, err := x.RollUpQuery(ctx, watch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWatchlist %v — %d matching articles at generation %d (+%d new):\n",
		watch.Concepts, after.Total, after.Generation, after.Total-before.Total)
	for i, a := range after.Articles {
		marker := ""
		if a.ID >= res.TotalArticles-res.Accepted {
			marker = "  ← new"
		}
		fmt.Printf("%d. [%.3f] %s%s\n", i+1, a.Score, a.Title, marker)
	}

	// Drill-down re-ranks its subtopics over the grown corpus.
	subs, err := x.DrillDownQuery(ctx, ncexplorer.DrillDownRequest{
		Concepts: watch.Concepts, K: 5, Explain: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDrill-down at generation %d:\n", subs.Generation)
	for i, s := range subs.Suggestions {
		fmt.Printf("%d. %-28s (score %.3f, %d docs)\n", i+1, s.Concept, s.Score, s.MatchedDocs)
	}

	st := x.Stats()
	fmt.Printf("\nindex: generation %d, segments %v, ingest %d batches / %d docs\n",
		st.Generation, st.Segments, st.Ingest.Batches, st.Ingest.Docs)
}
