// Media bias: the paper's §I motivating scenario. Starting from
// "Elon Musk", the system rolls up to the Billionaire concept and
// surfaces parallel media-ownership stories — Bezos / Washington Post,
// Soon-Shiong / LA Times, Murdoch / WSJ — letting a reader compare
// coverage of wealthy individuals acquiring news outlets.
//
//	go run ./examples/mediabias
package main

import (
	"fmt"
	"log"

	"ncexplorer"
)

func main() {
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Scenario: who else buys newspapers? (start: Elon Musk)")
	fmt.Println("──────────────────────────────────────────────────────")

	// Roll up the starting entity.
	concepts, err := x.ConceptsForEntity("Elon Musk")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Elon Musk rolls up to: %v\n", concepts)

	// Query the generalisation against media ownership.
	query := []string{"Billionaire", "Newspaper"}
	fmt.Printf("\nRoll-up %v:\n", query)
	articles, err := x.RollUp(query, 8)
	if err != nil {
		log.Fatal(err)
	}

	type pair struct{ owner, outlet string }
	var pairs []pair
	seen := map[pair]bool{}
	for i, a := range articles {
		fmt.Printf("%d. [%.3f] (%s) %s\n", i+1, a.Score, a.Source, a.Title)
		var p pair
		for _, e := range a.Explanations {
			switch e.Concept {
			case "Billionaire":
				p.owner = e.Pivot
			case "Newspaper":
				p.outlet = e.Pivot
			}
		}
		if p.owner != "" && p.outlet != "" && !seen[p] {
			seen[p] = true
			pairs = append(pairs, p)
		}
	}

	fmt.Println("\nOwnership parallels discovered:")
	for _, p := range pairs {
		fmt.Printf("  %-22s ↔ %s\n", p.owner, p.outlet)
	}
	if len(pairs) == 0 {
		fmt.Println("  (none in this corpus)")
	}

	// What themes surround these stories?
	subs, err := x.DrillDown(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSurrounding themes (drill-down):")
	for i, s := range subs {
		fmt.Printf("  %d. %s\n", i+1, s.Concept)
	}
}
