// Due diligence: the paper's Fig. 1 KYC walkthrough. A bank analyst
// must assess "CryptoX", a newly incorporated cryptocurrency exchange
// applying for a business account. A direct search is clean, so the
// analyst rolls up to peer- and industry-level topics, reviews the
// sector's record, and drills into regulatory exposure — the roll-up /
// drill-down loop that replaces manual keyword-list maintenance.
//
// Steps 6–7 replay the investigation through the typed query API
// (pagination, source filters) and an exploration session (refine /
// back), the programmatic face of the same loop.
//
//	go run ./examples/duediligence
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"ncexplorer"
	"ncexplorer/internal/session"
)

func main() {
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("KYC case: CryptoX (new business account application)")
	fmt.Println("────────────────────────────────────────────────────")

	// Step 1 — the entity under scrutiny: what can it roll up to?
	concepts, err := x.ConceptsForEntity("CryptoX")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. Roll-up options for CryptoX: %v\n", concepts)
	industry := concepts[0] // most specific: "Bitcoin exchange"

	// Step 2 — industry-wide screen: Bitcoin exchange × Financial crime.
	query := []string{industry, "Financial crime"}
	fmt.Printf("\n2. Industry screen %v:\n", query)
	articles, err := x.RollUp(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range articles {
		fmt.Printf("   %d. [%.3f] %s\n", i+1, a.Score, a.Title)
		for _, e := range a.Explanations {
			if e.Pivot != "" {
				fmt.Printf("        %s → %s\n", e.Concept, e.Pivot)
			}
		}
	}

	// Step 3 — what fraud types dominate the sector? Drill down.
	fmt.Printf("\n3. Drill-down on %v:\n", query)
	subs, err := x.DrillDown(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range subs {
		fmt.Printf("   %d. %s (%d documents)\n", i+1, s.Concept, s.MatchedDocs)
	}

	// Step 4 — regulatory angle: refine by the top regulator-flavoured
	// subtopic, or fall back to the curated Regulator concept.
	refinement := "Regulator"
	for _, s := range subs {
		if s.Concept == "Financial regulator" || s.Concept == "Securities regulator" {
			refinement = s.Concept
			break
		}
	}
	refined := []string{industry, refinement}
	fmt.Printf("\n4. Regulatory exposure %v:\n", refined)
	reg, err := x.RollUp(refined, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range reg {
		fmt.Printf("   %d. %s\n", i+1, a.Title)
	}

	// Step 5 — the SAR-style inquiry from Table III: which Swiss banks
	// appear in money-laundering coverage?
	fmt.Println("\n5. Related inquiry — money laundering × Swiss banks:")
	sar, err := x.RollUp([]string{"Money laundering", "Swiss bank"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range sar {
		for _, e := range a.Explanations {
			if e.Concept == "Swiss bank" && e.Pivot != "" && !seen[e.Pivot] {
				seen[e.Pivot] = true
				fmt.Printf("   finding: %-22s (%s)\n", e.Pivot, a.Title)
			}
		}
	}
	if len(seen) == 0 {
		fmt.Println("   no Swiss banks flagged in this corpus")
	}

	// Step 6 — the typed query API: page through the Reuters coverage
	// of the industry screen, two articles at a time. A pipeline doing
	// periodic re-screening consumes exactly this shape.
	fmt.Printf("\n6. Reuters-only screen of %v, paged:\n", query)
	ctx := context.Background()
	for offset := 0; offset >= 0; {
		page, err := x.RollUpQuery(ctx, ncexplorer.RollUpRequest{
			Concepts: query,
			K:        2,
			Offset:   offset,
			Sources:  []string{"reuters"},
		})
		if err != nil {
			log.Fatal(err)
		}
		for i, a := range page.Articles {
			fmt.Printf("   %2d. [%.3f] %s\n", offset+i+1, a.Score, a.Title)
		}
		if offset == 0 {
			fmt.Printf("       (%d Reuters matches total)\n", page.Total)
		}
		offset = page.NextOffset
	}

	// Step 7 — the same loop as an exploration session: the analyst's
	// position (current pattern) lives server-side, refinements stack,
	// and back undoes a dead end.
	fmt.Println("\n7. Session-backed exploration:")
	store := session.NewStore(session.Options{})
	sess := store.Create(query)
	fmt.Printf("   opened %s on %s\n", sess.ID, strings.Join(sess.Concepts, " ; "))

	subs, err = x.DrillDown(sess.Concepts, 3)
	if err != nil {
		log.Fatal(err)
	}
	if len(subs) > 0 {
		sess, err = store.Refine(sess.ID, subs[0].Concept)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   refined into %q → pattern %s\n", subs[0].Concept, strings.Join(sess.Concepts, " ; "))
		if arts, err := x.RollUp(sess.Concepts, 2); err == nil {
			for _, a := range arts {
				fmt.Printf("      · %s\n", a.Title)
			}
		}
		sess, err = store.Back(sess.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   back → pattern %s (%d breadcrumb steps recorded)\n",
			strings.Join(sess.Concepts, " ; "), len(sess.Steps))
	}
}
