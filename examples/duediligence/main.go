// Due diligence: the paper's Fig. 1 KYC walkthrough. A bank analyst
// must assess "CryptoX", a newly incorporated cryptocurrency exchange
// applying for a business account. A direct search is clean, so the
// analyst rolls up to peer- and industry-level topics, reviews the
// sector's record, and drills into regulatory exposure — the roll-up /
// drill-down loop that replaces manual keyword-list maintenance.
//
//	go run ./examples/duediligence
package main

import (
	"fmt"
	"log"

	"ncexplorer"
)

func main() {
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("KYC case: CryptoX (new business account application)")
	fmt.Println("────────────────────────────────────────────────────")

	// Step 1 — the entity under scrutiny: what can it roll up to?
	concepts, err := x.ConceptsForEntity("CryptoX")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. Roll-up options for CryptoX: %v\n", concepts)
	industry := concepts[0] // most specific: "Bitcoin exchange"

	// Step 2 — industry-wide screen: Bitcoin exchange × Financial crime.
	query := []string{industry, "Financial crime"}
	fmt.Printf("\n2. Industry screen %v:\n", query)
	articles, err := x.RollUp(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range articles {
		fmt.Printf("   %d. [%.3f] %s\n", i+1, a.Score, a.Title)
		for _, e := range a.Explanations {
			if e.Pivot != "" {
				fmt.Printf("        %s → %s\n", e.Concept, e.Pivot)
			}
		}
	}

	// Step 3 — what fraud types dominate the sector? Drill down.
	fmt.Printf("\n3. Drill-down on %v:\n", query)
	subs, err := x.DrillDown(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range subs {
		fmt.Printf("   %d. %s (%d documents)\n", i+1, s.Concept, s.MatchedDocs)
	}

	// Step 4 — regulatory angle: refine by the top regulator-flavoured
	// subtopic, or fall back to the curated Regulator concept.
	refinement := "Regulator"
	for _, s := range subs {
		if s.Concept == "Financial regulator" || s.Concept == "Securities regulator" {
			refinement = s.Concept
			break
		}
	}
	refined := []string{industry, refinement}
	fmt.Printf("\n4. Regulatory exposure %v:\n", refined)
	reg, err := x.RollUp(refined, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range reg {
		fmt.Printf("   %d. %s\n", i+1, a.Title)
	}

	// Step 5 — the SAR-style inquiry from Table III: which Swiss banks
	// appear in money-laundering coverage?
	fmt.Println("\n5. Related inquiry — money laundering × Swiss banks:")
	sar, err := x.RollUp([]string{"Money laundering", "Swiss bank"}, 5)
	if err != nil {
		log.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range sar {
		for _, e := range a.Explanations {
			if e.Concept == "Swiss bank" && e.Pivot != "" && !seen[e.Pivot] {
				seen[e.Pivot] = true
				fmt.Printf("   finding: %-22s (%s)\n", e.Pivot, a.Title)
			}
		}
	}
	if len(seen) == 0 {
		fmt.Println("   no Swiss banks flagged in this corpus")
	}
}
