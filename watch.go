package ncexplorer

import (
	"context"
	"errors"
	"net/url"
	"sort"
	"time"

	"ncexplorer/internal/core"
	"ncexplorer/internal/corpus"
	"ncexplorer/internal/watch"
)

// Standing queries. A watchlist is a persistent concept-pattern query:
// once registered, every ingested batch is evaluated against it — the
// delta only, never the whole corpus — and matching articles are
// published as alerts, retained for catch-up, streamed to SSE
// subscribers, and POSTed to an optional webhook. Watchlists and their
// delivery cursors persist with the snapshot and survive restarts.
// DESIGN.md §8 gives the model and the delta-evaluation correctness
// argument.

// WatchlistSpec is a registration request.
type WatchlistSpec struct {
	// Name is an optional client label.
	Name string `json:"name,omitempty"`
	// Concepts is the concept pattern; an article alerts only if it
	// matches every concept. Validated like a query — unknown names get
	// CodeUnknownConcept with did-you-mean suggestions.
	Concepts []string `json:"concepts"`
	// Sources restricts alerts to these source names; empty admits all.
	Sources []string `json:"sources,omitempty"`
	// MinScore excludes matches scoring below it (at the generation the
	// article arrived) when > 0.
	MinScore float64 `json:"min_score,omitempty"`
	// WindowCount and WindowDays arm a time-window threshold: the
	// watchlist stays silent until at least WindowCount matching
	// articles were published inside one trailing WindowDays-day window
	// ("alert once I see ≥3 matches in 7 days"). Set both or neither.
	// The accumulated window re-arms from empty after a restart.
	WindowCount int `json:"window_count,omitempty"`
	WindowDays  int `json:"window_days,omitempty"`
	// WebhookURL, when set, receives each alert as a JSON POST
	// (at-least-once, bounded retries). Must be http or https.
	WebhookURL string `json:"webhook_url,omitempty"`
}

// Watchlist is a registered watchlist's public state.
type Watchlist struct {
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	Concepts []string `json:"concepts"`
	Sources  []string `json:"sources,omitempty"`
	MinScore float64  `json:"min_score,omitempty"`
	// WindowCount/WindowDays echo the registered time-window threshold
	// (both zero when the watchlist alerts on every match).
	WindowCount int `json:"window_count,omitempty"`
	WindowDays  int `json:"window_days,omitempty"`
	// WebhookURL is the configured delivery endpoint, if any.
	WebhookURL string `json:"webhook_url,omitempty"`
	// CreatedGeneration is the snapshot generation at registration; the
	// watchlist sees batches committed after it.
	CreatedGeneration uint64 `json:"created_generation"`
	// LastSeq is the latest alert sequence fired (0 when none yet);
	// clients resume an event stream with ?after=<seq>.
	LastSeq uint64 `json:"last_seq"`
}

// Alert re-exports the watch package's alert envelope: sequence,
// watchlist, generation, and the matched article with the same
// score-and-explanations payload a roll-up result carries.
type Alert = watch.Alert

// WatchCounters re-exports the standing-query activity counters
// surfaced in Stats and /statsz.
type WatchCounters watch.Counters

// WatchSubscription re-exports a live alert subscription: read C until
// closed, then Cancel.
type WatchSubscription = watch.Subscription

// RegisterWatchlist validates a spec exactly like a query (canonical
// concepts, typed unknown-concept errors with suggestions, source-name
// validation) and registers it. The new watchlist observes every batch
// ingested after the returned CreatedGeneration; registration is
// atomic against concurrent ingests (a racing batch is either fully
// seen or fully before the watchlist, never half-evaluated). The
// registration is checkpointed immediately when a checkpoint directory
// is configured.
func (x *Explorer) RegisterWatchlist(spec WatchlistSpec) (Watchlist, error) {
	concepts := CanonicalConcepts(spec.Concepts)
	if _, err := x.resolveConcepts(concepts); err != nil {
		return Watchlist{}, err
	}
	if _, err := resolveSources(spec.Sources); err != nil {
		return Watchlist{}, err
	}
	if spec.MinScore < 0 {
		return Watchlist{}, newErrorf(CodeInvalidArgument,
			"ncexplorer: invalid min_score %g: want a non-negative number", spec.MinScore)
	}
	if spec.WindowCount < 0 || spec.WindowDays < 0 {
		return Watchlist{}, newErrorf(CodeInvalidArgument,
			"ncexplorer: invalid watch window %d/%dd: want non-negative values", spec.WindowCount, spec.WindowDays)
	}
	if (spec.WindowCount > 0) != (spec.WindowDays > 0) {
		return Watchlist{}, newErrorf(CodeInvalidArgument,
			"ncexplorer: window_count and window_days must be set together (got %d and %d)",
			spec.WindowCount, spec.WindowDays)
	}
	if spec.WebhookURL != "" {
		u, err := url.Parse(spec.WebhookURL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return Watchlist{}, newErrorf(CodeInvalidArgument,
				"ncexplorer: invalid webhook_url %q: want an absolute http(s) URL", spec.WebhookURL)
		}
	}
	def := watch.Definition{
		Name:        spec.Name,
		Concepts:    concepts,
		Sources:     canonicalSources(spec.Sources),
		MinScore:    spec.MinScore,
		WindowCount: spec.WindowCount,
		WindowDays:  spec.WindowDays,
		WebhookURL:  spec.WebhookURL,
	}
	var regErr error
	// Pin CreatedGen under the ingest lock: no batch can commit between
	// reading the generation and the registration becoming visible, so
	// "watches everything after generation G" is exact.
	x.engine.WithRecentView(0, func(v *core.DeltaView) {
		def.CreatedGen = v.Generation()
		def, regErr = x.watch.Register(def)
	})
	if regErr != nil {
		if errors.Is(regErr, watch.ErrLimit) {
			return Watchlist{}, &Error{Code: CodeLimitExceeded, Message: "ncexplorer: " + regErr.Error(), Err: regErr}
		}
		return Watchlist{}, regErr
	}
	x.engine.Checkpoint()
	return x.watchlist(def, 0), nil
}

// GetWatchlist returns one watchlist, or CodeNotFound.
func (x *Explorer) GetWatchlist(id string) (Watchlist, error) {
	def, last, ok := x.watch.Get(id)
	if !ok {
		return Watchlist{}, newErrorf(CodeNotFound, "ncexplorer: unknown watchlist %q", id)
	}
	return x.watchlist(def, last), nil
}

// ListWatchlists returns all registered watchlists, ordered by ID
// (registration order).
func (x *Explorer) ListWatchlists() []Watchlist {
	defs, seqs := x.watch.List()
	out := make([]Watchlist, len(defs))
	for i, d := range defs {
		out[i] = x.watchlist(d, seqs[i])
	}
	return out
}

// RemoveWatchlist deletes a watchlist, ending its subscriptions and
// deliveries; retained alerts are discarded. Returns CodeNotFound for
// an unknown ID. The removal is checkpointed immediately when a
// checkpoint directory is configured.
func (x *Explorer) RemoveWatchlist(id string) error {
	if !x.watch.Remove(id) {
		return newErrorf(CodeNotFound, "ncexplorer: unknown watchlist %q", id)
	}
	x.engine.Checkpoint()
	return nil
}

// WatchSubscribe opens a live alert subscription on a watchlist,
// replaying retained alerts with Seq > after before any live alert —
// in order, with no gap or duplicate at the catch-up boundary.
func (x *Explorer) WatchSubscribe(id string, after uint64) (*WatchSubscription, error) {
	sub, err := x.watch.Subscribe(id, after)
	if err != nil {
		return nil, newErrorf(CodeNotFound, "ncexplorer: unknown watchlist %q", id)
	}
	return sub, nil
}

// WatchReplay returns the retained alerts with Seq > after, plus the
// earliest sequence still retained (0 when none): earliest > after+1
// means the client's cursor predates the retention window.
func (x *Explorer) WatchReplay(id string, after uint64) ([]Alert, uint64, error) {
	alerts, earliest, err := x.watch.Replay(id, after)
	if err != nil {
		return nil, 0, newErrorf(CodeNotFound, "ncexplorer: unknown watchlist %q", id)
	}
	return alerts, earliest, nil
}

// StartWebhooks launches the webhook delivery worker. Call once after
// construction (the server does, when watchlists are enabled); idle
// without webhook-enabled watchlists. timeout bounds each POST
// attempt; 0 selects the 5s default.
func (x *Explorer) StartWebhooks(timeout time.Duration) {
	x.watch.StartWebhooks(watch.WebhookOptions{Timeout: timeout})
}

// DrainWebhooks stops the webhook worker, waiting for the in-flight
// delivery (not the whole backlog) to finish or ctx to expire. Alerts
// not yet acknowledged keep their cursor position — they are persisted
// by the final save and redelivered after restart, which is the
// at-least-once half of the delivery contract.
func (x *Explorer) DrainWebhooks(ctx context.Context) error {
	return x.watch.DrainWebhooks(ctx)
}

// watchlist converts a definition to the public shape.
func (x *Explorer) watchlist(def watch.Definition, lastSeq uint64) Watchlist {
	return Watchlist{
		ID:                def.ID,
		Name:              def.Name,
		Concepts:          def.Concepts,
		Sources:           def.Sources,
		MinScore:          def.MinScore,
		WindowCount:       def.WindowCount,
		WindowDays:        def.WindowDays,
		WebhookURL:        def.WebhookURL,
		CreatedGeneration: def.CreatedGen,
		LastSeq:           lastSeq,
	}
}

// initWatch builds the registry and wires it into the engine: the
// ingest hook evaluates every committed batch, and the encoder makes
// registry state a first-class participant in snapshot persistence
// (written before the manifest, loaded by Open).
func (x *Explorer) initWatch(opts watch.Options) {
	x.watch = watch.NewRegistry(opts)
	x.engine.SetIngestHook(x.watchEvaluate)
	x.engine.SetWatchEncoder(x.watch.Encode)
}

// watchEvaluate is the ingest hook: match every watchlist against the
// batch's delta and publish the alerts. It runs under the ingest lock,
// after the generation swap and before the batch's checkpoint, so
// alert state persists atomically with the batch that fired it.
//
// Cost is proportional to the delta (and the watchlist count), not the
// corpus: matching walks only the new segment's postings, and scoring
// touches only matched delta documents. That keeps per-ingest overhead
// flat as the corpus grows — the property BenchmarkWatchEvaluate pins.
func (x *Explorer) watchEvaluate(v *core.DeltaView) {
	defs := x.watch.Definitions()
	if len(x.watchWindows) > 0 {
		// Drop window state of removed watchlists. The map is touched
		// only here, under the ingest lock, so removal can't race.
		live := make(map[string]bool, len(defs))
		for _, def := range defs {
			live[def.ID] = true
		}
		for id := range x.watchWindows {
			if !live[id] {
				delete(x.watchWindows, id)
			}
		}
	}
	for _, def := range defs {
		// A watchlist registered at generation G sees batches after G. The
		// hook's generation is always ≥ CreatedGen+1 for pre-batch
		// registrations; equality means the list was registered after this
		// batch committed (impossible here, but the guard is cheap).
		if def.CreatedGen >= v.Generation() {
			continue
		}
		q, err := x.resolveConcepts(def.Concepts)
		if err != nil {
			continue // world changed under a persisted list; never alerts
		}
		matched := v.MatchedInDelta(q)
		if len(matched) == 0 {
			continue
		}
		var srcs map[corpus.Source]bool
		if len(def.Sources) > 0 {
			resolved, err := resolveSources(def.Sources)
			if err != nil {
				continue
			}
			srcs = make(map[corpus.Source]bool, len(resolved))
			for _, s := range resolved {
				srcs[s] = true
			}
		}
		var arts []watch.Article
		var pubs []int64
		for _, doc := range matched {
			if srcs != nil && !srcs[v.Source(doc)] {
				continue
			}
			score, contribs := v.Score(q, doc)
			if def.MinScore > 0 && score < def.MinScore {
				continue
			}
			d := v.Article(doc)
			art := watch.Article{
				ID:          int(doc),
				Source:      d.Source.String(),
				Title:       d.Title,
				Body:        d.Body,
				Score:       score,
				PublishedAt: time.Unix(d.PublishedAt, 0).UTC().Format(time.RFC3339),
			}
			pubs = append(pubs, d.PublishedAt)
			for _, cc := range contribs {
				expl := watch.Explanation{Concept: x.g.Name(cc.Concept), CDR: cc.CDR}
				if cc.Pivot >= 0 {
					expl.Pivot = x.g.Name(cc.Pivot)
				}
				art.Explanations = append(art.Explanations, expl)
			}
			arts = append(arts, art)
		}
		if def.WindowCount > 0 && !x.windowArmed(def, pubs) {
			continue
		}
		x.watch.Publish(def.ID, v.Generation(), arts)
	}
}

// windowArmed accumulates a windowed watchlist's match publication
// times and reports whether its "≥N matches in D days" threshold is
// met: at least WindowCount of the matches seen so far fall inside the
// trailing WindowDays-day window ending at the latest match time. The
// clock is publication time, not ingest wall time, so backfilled
// corpora window correctly; times before the window are pruned, which
// keeps the state O(WindowCount) per list in steady state. Runs under
// the ingest lock (see watchWindows).
func (x *Explorer) windowArmed(def watch.Definition, pubs []int64) bool {
	if x.watchWindows == nil {
		x.watchWindows = make(map[string][]int64)
	}
	times := x.watchWindows[def.ID]
	times = append(times, pubs...)
	if len(times) == 0 {
		return false
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	span := int64(def.WindowDays) * 86400
	latest := times[len(times)-1]
	cut := sort.Search(len(times), func(i int) bool { return times[i] >= latest-span })
	times = times[cut:]
	x.watchWindows[def.ID] = times
	return len(times) >= def.WindowCount
}
