package ncexplorer

import (
	"context"
	"strings"
	"time"

	"ncexplorer/internal/corpus"
)

// IngestArticle is one incoming news article for live ingestion:
// plain text plus its source portal. The NLP pipeline (annotation,
// entity linking, candidate concept scoring) runs at ingest time —
// exactly the pipeline the seed corpus went through.
type IngestArticle struct {
	// Source names the news portal; must be one of SourceNames()
	// (case-insensitive).
	Source string `json:"source"`
	Title  string `json:"title"`
	Body   string `json:"body"`
	// PublishedAt is the article's publication time in RFC3339
	// (e.g. "2023-09-04T08:00:00Z"). Optional: when empty the engine
	// stamps the ingest wall clock and counts the article in
	// Stats.Ingest.DocsDefaultedTime.
	PublishedAt string `json:"published_at,omitempty"`
}

// IngestResult reports one accepted batch.
type IngestResult struct {
	// Accepted is the number of articles added.
	Accepted int `json:"accepted"`
	// Generation is the index generation now serving — every query
	// result with the same Generation includes this batch.
	Generation uint64 `json:"generation"`
	// TotalArticles is the corpus size after the batch.
	TotalArticles int `json:"total_articles"`
	// PersistSeq is the batch's checkpoint sequence: pass it to
	// WaitDurable to block until the checkpoint covering this batch has
	// been attempted. It is a process-local handle, not API surface.
	PersistSeq uint64 `json:"-"`
}

// Ingest indexes a batch of articles into the live corpus and
// atomically publishes the next index generation. The whole batch
// becomes visible at once — queries concurrent with the call observe
// either none of it or all of it, and queries already in flight are
// untouched (they pinned the snapshot they started with). Sessions,
// cached patterns, and document IDs all remain valid: the corpus is
// append-only.
//
// Every article must name a known source and carry some text. The
// batch is validated before any indexing work, so an invalid article
// rejects the batch atomically with CodeInvalidArgument. Cancellation
// via ctx aborts before the swap (CodeCancelled /
// CodeDeadlineExceeded); a cancelled batch is never partially
// visible.
func (x *Explorer) Ingest(ctx context.Context, articles []IngestArticle) (IngestResult, error) {
	if len(articles) == 0 {
		return IngestResult{}, newErrorf(CodeInvalidArgument, "ncexplorer: empty ingest batch")
	}
	docs := make([]corpus.Document, len(articles))
	for i, a := range articles {
		src, err := resolveSource(a.Source)
		if err != nil {
			e := newErrorf(CodeInvalidArgument,
				"ncexplorer: article %d: unknown source %q", i, a.Source)
			e.Details = map[string]any{"index": i, "source": a.Source, "valid_sources": SourceNames()}
			return IngestResult{}, e
		}
		if strings.TrimSpace(a.Title) == "" && strings.TrimSpace(a.Body) == "" {
			return IngestResult{}, newErrorf(CodeInvalidArgument,
				"ncexplorer: article %d: empty title and body", i)
		}
		var pub int64
		if a.PublishedAt != "" {
			t, err := time.Parse(time.RFC3339, a.PublishedAt)
			if err != nil {
				e := newErrorf(CodeInvalidArgument,
					"ncexplorer: article %d: invalid published_at %q: want RFC3339", i, a.PublishedAt)
				e.Details = map[string]any{"index": i, "published_at": a.PublishedAt}
				return IngestResult{}, e
			}
			pub = t.Unix()
		}
		docs[i] = corpus.Document{Source: src, Title: a.Title, Body: a.Body, PublishedAt: pub}
	}
	res, err := x.engine.Ingest(ctx, docs)
	if err != nil {
		return IngestResult{}, ctxError(err)
	}
	return IngestResult{
		Accepted:      res.Docs,
		Generation:    res.Generation,
		TotalArticles: res.TotalDocs,
		PersistSeq:    res.PersistSeq,
	}, nil
}

// WaitDurable blocks until the checkpoint attempt covering seq (an
// IngestResult.PersistSeq) has completed — the durability barrier a
// serving layer runs before acknowledging a batch. Ingest itself
// returns at commit: the batch is queryable immediately, and its
// checkpoint drains through the group-commit writer while later
// batches analyze and commit. A zero seq returns immediately.
func (x *Explorer) WaitDurable(seq uint64) { x.engine.WaitPersisted(seq) }

// SetIngestPipeline toggles overlapped checkpointing. On (the
// default), Ingest returns at commit and checkpoints drain through the
// group-commit writer. Off, every Ingest blocks until its checkpoint
// attempt finished — the pre-pipeline latency profile, for deployments
// that want the simpler one-batch-at-a-time durability story.
func (x *Explorer) SetIngestPipeline(on bool) { x.engine.SetSyncPersist(!on) }

// resolveSource maps one source name to its corpus source.
func resolveSource(name string) (corpus.Source, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, s := range corpus.Sources {
		if s.String() == n {
			return s, nil
		}
	}
	return 0, newErrorf(CodeInvalidArgument, "ncexplorer: unknown source %q", name)
}

// SampleArticles synthesises n fresh articles from the world's
// generator under an independent seed — material for demos, load
// tests, and benchmarks of the ingest path. Articles are drawn
// round-robin across sources; distinct seeds give distinct batches,
// and none of them reproduce seed-corpus documents (the seed corpus
// uses its own stream).
func (x *Explorer) SampleArticles(seed uint64, n int) ([]IngestArticle, error) {
	if n <= 0 {
		return nil, newErrorf(CodeInvalidArgument, "ncexplorer: invalid sample size %d", n)
	}
	docs, err := corpus.GenerateBatch(x.g, x.meta, x.ccfg, seed, n)
	if err != nil {
		return nil, err
	}
	out := make([]IngestArticle, len(docs))
	for i, d := range docs {
		out[i] = IngestArticle{Source: d.Source.String(), Title: d.Title, Body: d.Body}
		if d.PublishedAt != 0 {
			out[i].PublishedAt = time.Unix(d.PublishedAt, 0).UTC().Format(time.RFC3339)
		}
	}
	return out, nil
}

// Quiesce blocks until background index maintenance (segment merges)
// has drained. Queries never need it; graceful shutdown and
// determinism-sensitive tests do.
func (x *Explorer) Quiesce() { x.engine.WaitMerges() }
