package ncexplorer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/watch"
)

// The standing-query determinism property: an alert fires for batch N
// exactly when a from-scratch query over generation N matches where
// generation N−1 did not, and the alert's payload (score, evidence) is
// byte-identical to what the stateless query reports for that article
// at generation N. The test replays randomized ingest schedules and
// checks every watchlist against the stateless reference at every
// generation.

// popularConcepts returns the n concept names with the most seed-corpus
// matches — patterns worth watching, so random batches actually alert.
func popularConcepts(t testing.TB, x *Explorer, n int) []string {
	t.Helper()
	type cand struct {
		name  string
		total int
	}
	var cands []cand
	x.g.Concepts(func(c kg.NodeID) bool {
		name := x.g.Name(c)
		res, err := x.RollUpQuery(context.Background(), RollUpRequest{Concepts: []string{name}, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Total > 0 {
			cands = append(cands, cand{name, res.Total})
		}
		return true
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].total != cands[j].total {
			return cands[i].total > cands[j].total
		}
		return cands[i].name < cands[j].name
	})
	if len(cands) < n {
		t.Fatalf("only %d matched concepts in the tiny world, need %d", len(cands), n)
	}
	out := make([]string, n)
	for i := range out {
		out[i] = cands[i].name
	}
	return out
}

// statelessMatches runs the full from-scratch query a watchlist
// corresponds to and returns the matched article IDs (ascending) and
// the article payloads by ID.
func statelessMatches(t testing.TB, x *Explorer, wl Watchlist) (map[int]Article, []int) {
	t.Helper()
	res, err := x.RollUpQuery(context.Background(), RollUpRequest{
		Concepts: wl.Concepts,
		K:        x.NumArticles(),
		Sources:  wl.Sources,
		MinScore: wl.MinScore,
		Explain:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[int]Article, len(res.Articles))
	ids := make([]int, 0, len(res.Articles))
	for _, a := range res.Articles {
		byID[a.ID] = a
		ids = append(ids, a.ID)
	}
	sort.Ints(ids)
	return byID, ids
}

func TestWatchIncrementalMatchesStatelessReference(t *testing.T) {
	x, err := New(Config{Scale: "tiny", Seed: 42, AlertBuffer: 8192})
	if err != nil {
		t.Fatal(err)
	}
	pool := popularConcepts(t, x, 5)
	srcs := SourceNames()
	specs := []WatchlistSpec{
		{Name: "plain", Concepts: pool[:1]},
		{Name: "scored", Concepts: pool[1:2], MinScore: 0.05},
		{Name: "pair", Concepts: []string{pool[0], pool[2]}},
		{Name: "sourced", Concepts: pool[3:4], Sources: srcs[:1]},
	}
	var wls []Watchlist
	for _, spec := range specs {
		wl, err := x.RegisterWatchlist(spec)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, wl)
	}

	// expected[id] accumulates the reference alerts per watchlist, in
	// fire order: (generation, article) pairs.
	type refAlert struct {
		gen uint64
		art Article
	}
	expected := make(map[string][]refAlert)
	rng := rand.New(rand.NewSource(7))

	for batch := 0; batch < 12; batch++ {
		if batch == 5 {
			// A watchlist registered mid-schedule sees later batches only —
			// the CreatedGen pin.
			late, err := x.RegisterWatchlist(WatchlistSpec{Name: "late", Concepts: pool[:1]})
			if err != nil {
				t.Fatal(err)
			}
			if late.CreatedGeneration != x.Generation() {
				t.Fatalf("late CreatedGeneration = %d, generation = %d", late.CreatedGeneration, x.Generation())
			}
			wls = append(wls, late)
		}
		// Pre-ingest matched sets pin the "where generation N−1 did not"
		// half of the property for the unfiltered watchlists.
		preIDs := make(map[string]map[int]bool)
		for _, wl := range wls {
			if wl.MinScore == 0 && len(wl.Sources) == 0 {
				_, ids := statelessMatches(t, x, wl)
				set := make(map[int]bool, len(ids))
				for _, id := range ids {
					set[id] = true
				}
				preIDs[wl.ID] = set
			}
		}
		prevDocs := x.NumArticles()
		arts, err := x.SampleArticles(1000+uint64(batch), 1+rng.Intn(20))
		if err != nil {
			t.Fatal(err)
		}
		res, err := x.Ingest(context.Background(), arts)
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range wls {
			byID, ids := statelessMatches(t, x, wl)
			var fresh []int
			for _, id := range ids {
				if id >= prevDocs {
					fresh = append(fresh, id)
				}
			}
			// Definition-1 matching is per-document: no pre-existing article
			// may enter or leave the matched set because the batch landed.
			if pre, ok := preIDs[wl.ID]; ok {
				old := 0
				for _, id := range ids {
					if id < prevDocs {
						old++
						if !pre[id] {
							t.Fatalf("gen %d: %s: old doc %d newly matched — delta evaluation would miss it",
								res.Generation, wl.Name, id)
						}
					}
				}
				if old != len(pre) {
					t.Fatalf("gen %d: %s: %d old docs matched, %d before the batch — an old doc left the matched set",
						res.Generation, wl.Name, old, len(pre))
				}
			}
			for _, id := range fresh {
				expected[wl.ID] = append(expected[wl.ID], refAlert{gen: res.Generation, art: byID[id]})
			}
		}
	}
	x.Quiesce()

	for _, wl := range wls {
		alerts, _, err := x.WatchReplay(wl.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := expected[wl.ID]
		if len(alerts) != len(want) {
			t.Fatalf("%s: %d alerts fired, reference says %d", wl.Name, len(alerts), len(want))
		}
		if wl.Name == "plain" && len(alerts) == 0 {
			t.Fatal("schedule fired no alerts for the most popular concept — the property was never exercised")
		}
		for i, a := range alerts {
			if a.Seq != uint64(i+1) {
				t.Fatalf("%s: alert %d has seq %d — sequences must be contiguous from 1", wl.Name, i, a.Seq)
			}
			if a.Generation != want[i].gen {
				t.Fatalf("%s: alert %d fired at generation %d, reference at %d", wl.Name, i, a.Generation, want[i].gen)
			}
			got, err1 := json.Marshal(a.Article)
			ref, err2 := json.Marshal(want[i].art)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("%s: alert %d payload diverges from the stateless query:\nalert: %s\n  ref: %s",
					wl.Name, i, got, ref)
			}
		}
	}
}

// TestWatchStateSurvivesRestart: watchlists, sequence counters, alert
// rings, and webhook delivery cursors all round-trip through
// Save → Open, and delivery resumes from the persisted cursor with no
// alert lost or duplicated.
func TestWatchStateSurvivesRestart(t *testing.T) {
	x, err := New(Config{Scale: "tiny", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	pool := popularConcepts(t, x, 2)
	hooked, err := x.RegisterWatchlist(WatchlistSpec{
		Name: "hooked", Concepts: pool[:1], WebhookURL: "http://example/hook",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.RegisterWatchlist(WatchlistSpec{Name: "idle", Concepts: pool[1:2]}); err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 3; batch++ {
		arts, err := x.SampleArticles(2000+uint64(batch), 10)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := x.Ingest(context.Background(), arts); err != nil {
			t.Fatal(err)
		}
	}
	x.Quiesce()
	alerts, _, err := x.WatchReplay(hooked.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) < 3 {
		t.Fatalf("schedule fired %d alerts, need ≥3 to exercise a mid-ring cursor", len(alerts))
	}

	// Deliver exactly two alerts, then have the endpoint go down: the
	// cursor sticks at 2, un-acked for everything after.
	delivered := make(chan uint64, len(alerts))
	x.watch.StartWebhooks(watch.WebhookOptions{
		Attempts: 1,
		Post: func(url string, body []byte) error {
			var a Alert
			if err := json.Unmarshal(body, &a); err != nil {
				return err
			}
			if a.Seq > 2 {
				return fmt.Errorf("endpoint down")
			}
			delivered <- a.Seq
			return nil
		},
	})
	waitForCond(t, func() bool { return len(delivered) == 2 })
	if err := x.DrainWebhooks(context.Background()); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Definitions, sequence counters, and rings are identical.
	if got, want := y.ListWatchlists(), x.ListWatchlists(); !jsonEqual(t, got, want) {
		t.Fatalf("watchlists diverge after restart:\n%+v\n%+v", got, want)
	}
	for _, wl := range x.ListWatchlists() {
		ga, ge, err1 := y.WatchReplay(wl.ID, 0)
		wa, we, err2 := x.WatchReplay(wl.ID, 0)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if ge != we || !jsonEqual(t, ga, wa) {
			t.Fatalf("ring for %s diverges after restart", wl.ID)
		}
	}

	// The reopened explorer resumes webhook delivery from the persisted
	// cursor: alerts 3..n exactly once, in order — the two already
	// acknowledged are not re-sent, none are skipped.
	resumed := make(chan uint64, len(alerts))
	y.watch.StartWebhooks(watch.WebhookOptions{
		Post: func(url string, body []byte) error {
			var a Alert
			if err := json.Unmarshal(body, &a); err != nil {
				return err
			}
			resumed <- a.Seq
			return nil
		},
	})
	waitForCond(t, func() bool { return len(resumed) == len(alerts)-2 })
	if err := y.DrainWebhooks(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(resumed)
	next := uint64(3)
	for seq := range resumed {
		if seq != next {
			t.Fatalf("resumed delivery sent seq %d, want %d", seq, next)
		}
		next++
	}
	if next != uint64(len(alerts))+1 {
		t.Fatalf("resumed delivery stopped at %d, want through %d", next-1, len(alerts))
	}

	// A registration after reload continues the ID sequence — IDs stay
	// unique across restarts.
	wl3, err := y.RegisterWatchlist(WatchlistSpec{Concepts: pool[:1]})
	if err != nil {
		t.Fatal(err)
	}
	for _, prev := range x.ListWatchlists() {
		if wl3.ID == prev.ID {
			t.Fatalf("reused watchlist ID %s after restart", wl3.ID)
		}
	}
}

// TestWatchRegistrationCheckpointed: with a checkpoint directory
// configured, a registration is durable immediately — no ingest or
// explicit Save needed — and an ingest's alerts are in the same
// checkpoint as the batch that fired them.
func TestWatchRegistrationCheckpointed(t *testing.T) {
	x, err := New(Config{Scale: "tiny", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	x.CheckpointTo(dir)
	pool := popularConcepts(t, x, 1)
	wl, err := x.RegisterWatchlist(WatchlistSpec{Name: "durable", Concepts: pool})
	if err != nil {
		t.Fatal(err)
	}
	arts, err := x.SampleArticles(3000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Ingest(context.Background(), arts); err != nil {
		t.Fatal(err)
	}
	x.Quiesce()

	// Reopen from the checkpoints alone — no final Save.
	y, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := y.ListWatchlists(), x.ListWatchlists(); !jsonEqual(t, got, want) {
		t.Fatalf("checkpointed watchlists diverge:\n%+v\n%+v", got, want)
	}
	ga, _, err1 := y.WatchReplay(wl.ID, 0)
	wa, _, err2 := x.WatchReplay(wl.ID, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !jsonEqual(t, ga, wa) {
		t.Fatal("checkpointed batch lost its alerts — batch and alerts must persist together")
	}

	// Removal is checkpointed too.
	if err := x.RemoveWatchlist(wl.ID); err != nil {
		t.Fatal(err)
	}
	z, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.GetWatchlist(wl.ID); err == nil {
		t.Fatal("removed watchlist survived the checkpoint")
	}
}

func waitForCond(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func jsonEqual(t testing.TB, a, b any) bool {
	t.Helper()
	ja, err1 := json.Marshal(a)
	jb, err2 := json.Marshal(b)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	return bytes.Equal(ja, jb)
}
