package ncexplorer

import (
	"context"
	"errors"
	"testing"
)

// topicQuery returns one evaluation-topic concept pair.
func topicQuery(t testing.TB, i int) []string {
	t.Helper()
	x := getExplorer(t)
	ts := x.EvaluationTopics()
	tp := ts[i%len(ts)]
	return []string{tp[0], tp[1]}
}

// TestKMustBePositive pins the satellite contract: k <= 0 is an error
// with CodeInvalidArgument on every query path — legacy wrappers and
// typed requests alike.
func TestKMustBePositive(t *testing.T) {
	x := getExplorer(t)
	q := topicQuery(t, 0)
	for name, call := range map[string]func() error{
		"RollUp k=0":     func() error { _, err := x.RollUp(q, 0); return err },
		"RollUp k=-3":    func() error { _, err := x.RollUp(q, -3); return err },
		"DrillDown k=0":  func() error { _, err := x.DrillDown(q, 0); return err },
		"DrillDown k=-1": func() error { _, err := x.DrillDown(q, -1); return err },
		"RollUpQuery": func() error {
			_, err := x.RollUpQuery(context.Background(), RollUpRequest{Concepts: q})
			return err
		},
		"DrillDownQuery": func() error {
			_, err := x.DrillDownQuery(context.Background(), DrillDownRequest{Concepts: q, K: -9})
			return err
		},
	} {
		err := call()
		if err == nil {
			t.Fatalf("%s: no error", name)
		}
		e, ok := AsError(err)
		if !ok || e.Code != CodeInvalidArgument {
			t.Fatalf("%s: err = %v; want CodeInvalidArgument", name, err)
		}
	}
}

func TestTypedErrorCodes(t *testing.T) {
	x := getExplorer(t)
	ctx := context.Background()

	_, err := x.RollUpQuery(ctx, RollUpRequest{Concepts: []string{"No such concept zzz"}, K: 3})
	e, ok := AsError(err)
	if !ok || e.Code != CodeUnknownConcept {
		t.Fatalf("unknown concept err = %v", err)
	}
	if e.Details["concept"] != "No such concept zzz" {
		t.Fatalf("details = %v", e.Details)
	}

	// A near-miss of a real concept gets suggestions including it.
	real := topicQuery(t, 0)[0]
	_, err = x.RollUpQuery(ctx, RollUpRequest{Concepts: []string{real + "x"}, K: 3})
	e, _ = AsError(err)
	sugg, _ := e.Details["suggestions"].([]string)
	found := false
	for _, s := range sugg {
		if s == real {
			found = true
		}
	}
	if !found {
		t.Fatalf("suggestions for %q = %v; want to include %q", real+"x", sugg, real)
	}

	_, err = x.RollUpQuery(ctx, RollUpRequest{Concepts: topicQuery(t, 0), K: 3, Offset: -1})
	if e, _ := AsError(err); e == nil || e.Code != CodeInvalidArgument {
		t.Fatalf("negative offset err = %v", err)
	}
	_, err = x.RollUpQuery(ctx, RollUpRequest{Concepts: topicQuery(t, 0), K: 3, MinScore: -1})
	if e, _ := AsError(err); e == nil || e.Code != CodeInvalidArgument {
		t.Fatalf("negative min_score err = %v", err)
	}
	_, err = x.RollUpQuery(ctx, RollUpRequest{Concepts: topicQuery(t, 0), K: 3, Sources: []string{"tabloid"}})
	e, _ = AsError(err)
	if e == nil || e.Code != CodeInvalidArgument {
		t.Fatalf("unknown source err = %v", err)
	}
	if _, ok := e.Details["valid_sources"]; !ok {
		t.Fatalf("unknown source details = %v", e.Details)
	}

	_, err = x.ConceptsForEntity("No such entity zzz")
	if e, _ := AsError(err); e == nil || e.Code != CodeUnknownEntity {
		t.Fatalf("unknown entity err = %v", err)
	}
}

func TestRollUpQueryMatchesLegacy(t *testing.T) {
	x := getExplorer(t)
	q := topicQuery(t, 1)
	legacy, err := x.RollUp(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.RollUpQuery(context.Background(), RollUpRequest{Concepts: q, K: 4, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Articles) != len(legacy) {
		t.Fatalf("typed %d articles, legacy %d", len(res.Articles), len(legacy))
	}
	for i := range legacy {
		if res.Articles[i].ID != legacy[i].ID || res.Articles[i].Score != legacy[i].Score {
			t.Fatalf("rank %d differs", i)
		}
		if len(res.Articles[i].Explanations) == 0 {
			t.Fatalf("rank %d missing explanations despite Explain", i)
		}
	}
	if res.Total < len(res.Articles) || res.Offset != 0 {
		t.Fatalf("cursor fields: %+v", res)
	}
	if res.NextOffset != -1 && res.NextOffset != len(res.Articles) {
		t.Fatalf("next_offset = %d", res.NextOffset)
	}

	// Explain off strips explanations but changes nothing else.
	plain, err := x.RollUpQuery(context.Background(), RollUpRequest{Concepts: q, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range plain.Articles {
		if len(a.Explanations) != 0 {
			t.Fatal("explanations present without Explain")
		}
		if a.ID != legacy[i].ID {
			t.Fatalf("rank %d differs without Explain", i)
		}
	}
}

func TestDrillDownQueryExplainToggle(t *testing.T) {
	x := getExplorer(t)
	q := topicQuery(t, 2)[:1]
	full, err := x.DrillDownQuery(context.Background(), DrillDownRequest{Concepts: q, K: 5, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Suggestions) == 0 {
		t.Skip("no suggestions in this world")
	}
	plain, err := x.DrillDownQuery(context.Background(), DrillDownRequest{Concepts: q, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Suggestions {
		if plain.Suggestions[i].Concept != full.Suggestions[i].Concept ||
			plain.Suggestions[i].Score != full.Suggestions[i].Score {
			t.Fatalf("rank %d differs between explain modes", i)
		}
		if plain.Suggestions[i].Coverage != 0 || plain.Suggestions[i].Diversity != 0 {
			t.Fatal("score components present without Explain")
		}
	}
}

func TestQueryCancelledContext(t *testing.T) {
	x := getExplorer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := x.RollUpQuery(ctx, RollUpRequest{Concepts: topicQuery(t, 3), K: 5})
	e, ok := AsError(err)
	if !ok || e.Code != CodeCancelled {
		t.Fatalf("err = %v; want CodeCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("typed wrapper hides context.Canceled from errors.Is")
	}
	_, err = x.DrillDownQuery(ctx, DrillDownRequest{Concepts: topicQuery(t, 3), K: 5})
	if e, _ := AsError(err); e == nil || e.Code != CodeCancelled {
		t.Fatalf("drilldown err = %v", err)
	}
}

// TestRequestKeys pins that every response-shaping field participates
// in the cache key, and that permutations of one concept set share it.
func TestRequestKeys(t *testing.T) {
	base := RollUpRequest{Concepts: []string{"A", "B"}, K: 5}
	variants := []RollUpRequest{
		{Concepts: []string{"A", "B"}, K: 6},
		{Concepts: []string{"A", "B"}, K: 5, Offset: 5},
		{Concepts: []string{"A", "B"}, K: 5, MinScore: 0.5},
		{Concepts: []string{"A", "B"}, K: 5, Explain: true},
		{Concepts: []string{"A", "B"}, K: 5, Sources: []string{"nyt"}},
		{Concepts: []string{"A", "C"}, K: 5},
	}
	seen := map[string]bool{base.Key(): true}
	for i, v := range variants {
		if seen[v.Key()] {
			t.Fatalf("variant %d collides: %q", i, v.Key())
		}
		seen[v.Key()] = true
	}
	perm := RollUpRequest{Concepts: []string{"B", "A", "A"}, K: 5}
	if perm.Key() != base.Key() {
		t.Fatalf("permuted concepts change the key: %q vs %q", perm.Key(), base.Key())
	}
	srcPerm := RollUpRequest{Concepts: []string{"A", "B"}, K: 5, Sources: []string{"NYT", "reuters"}}
	srcPerm2 := RollUpRequest{Concepts: []string{"A", "B"}, K: 5, Sources: []string{"reuters", "nyt", "nyt"}}
	if srcPerm.Key() != srcPerm2.Key() {
		t.Fatal("source order/case changes the key")
	}
	if (DrillDownRequest{Concepts: []string{"A"}, K: 5}).Key() ==
		(RollUpRequest{Concepts: []string{"A"}, K: 5}).Key() {
		t.Fatal("rollup and drilldown keys collide")
	}
}

func TestSuggestConcepts(t *testing.T) {
	x := getExplorer(t)
	real := topicQuery(t, 0)[0]

	// Exact (case-insensitive) match ranks first.
	got := x.SuggestConcepts(real, 3)
	if len(got) == 0 || got[0] != real {
		t.Fatalf("SuggestConcepts(%q) = %v", real, got)
	}
	// A one-character typo still finds it.
	typo := real[:len(real)-1]
	found := false
	for _, s := range x.SuggestConcepts(typo, 5) {
		if s == real {
			found = true
		}
	}
	if !found {
		t.Fatalf("SuggestConcepts(%q) = %v; want to include %q", typo, x.SuggestConcepts(typo, 5), real)
	}
	if x.SuggestConcepts("", 5) != nil {
		t.Fatal("empty needle should suggest nothing")
	}
	if x.SuggestConcepts("zzzzqqqqxxxx", 5) != nil {
		t.Fatal("hopeless needle should suggest nothing")
	}
}

func TestSourceNames(t *testing.T) {
	names := SourceNames()
	if len(names) != 3 {
		t.Fatalf("sources = %v", names)
	}
	want := map[string]bool{"seekingalpha": true, "nyt": true, "reuters": true}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected source %q", n)
		}
	}
}
