package ncexplorer_test

import (
	"context"
	"testing"

	"ncexplorer"
)

// BenchmarkOpenSnapshot measures the warm-restart story: "warm" opens
// a saved snapshot (decode + conn-memo prefill + rescore — no NLP, no
// linking, no random walks), "cold" is the from-scratch New() on the
// same corpus it replaces. The acceptance bar for PR 5 is warm ≥ 5×
// faster than cold; scripts/bench_json.sh records both and their
// ratio in BENCH_pr5.json.
func BenchmarkOpenSnapshot(b *testing.B) {
	cfg := ncexplorer.Config{Scale: "tiny", Seed: 42, MaxSegments: 4}
	x, err := ncexplorer.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// A couple of ingested batches make the saved store multi-segment,
	// the shape a long-running server actually persists.
	for i := uint64(0); i < 2; i++ {
		arts, err := x.SampleArticles(900+i, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := x.Ingest(context.Background(), arts); err != nil {
			b.Fatal(err)
		}
	}
	x.Quiesce()
	dir := b.TempDir()
	if err := x.Save(dir); err != nil {
		b.Fatal(err)
	}

	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			y, err := ncexplorer.Open(dir, ncexplorer.OpenOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if y.NumArticles() != x.NumArticles() {
				b.Fatal("short open")
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		// The same corpus the snapshot holds: seed world + the two
		// ingested batches, through the full pipeline.
		for i := 0; i < b.N; i++ {
			y, err := ncexplorer.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for j := uint64(0); j < 2; j++ {
				arts, err := y.SampleArticles(900+j, 16)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := y.Ingest(context.Background(), arts); err != nil {
					b.Fatal(err)
				}
			}
			y.Quiesce()
			if y.NumArticles() != x.NumArticles() {
				b.Fatal("short build")
			}
		}
	})
}
