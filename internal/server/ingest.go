package server

import (
	"net/http"

	"ncexplorer"
)

// POST /v2/ingest — the live-ingestion endpoint. Accepts a batch of
// raw articles, runs them through the full indexing pipeline, and
// atomically publishes the next index generation. Queries in flight
// are untouched (they pinned their snapshot); queries arriving after
// the response see the new articles, and the result cache rolls to
// the new epoch by key (see epochKey) rather than by flush.
//
// The endpoint is a write path and must be enabled explicitly
// (Options.EnableIngest / ncserver -ingest); otherwise it answers 403
// permission_denied.

// maxIngestBodyBytes bounds ingest request bodies. Article batches
// are real payloads, so the cap is far above the query endpoints'.
const maxIngestBodyBytes = 32 << 20

// ingestRequest is the /v2/ingest body.
type ingestRequest struct {
	Articles []ncexplorer.IngestArticle `json:"articles"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if !s.opts.EnableIngest {
		s.writeAPIError(w, &apiError{
			status:  http.StatusForbidden,
			code:    ncexplorer.CodePermissionDenied,
			message: "ingestion is not enabled on this server",
		})
		return
	}
	var req ingestRequest
	if aerr := decodeV2Limit(w, r, &req, maxIngestBodyBytes); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	if len(req.Articles) == 0 {
		s.writeAPIError(w, invalidArgument("empty ingest batch"))
		return
	}
	if len(req.Articles) > s.opts.MaxIngestBatch {
		s.writeAPIError(w, invalidArgument("batch of %d articles exceeds the maximum of %d",
			len(req.Articles), s.opts.MaxIngestBatch))
		return
	}
	x := s.explorer()
	res, err := x.Ingest(r.Context(), req.Articles)
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	// Ingest returns at commit; the checkpoint drains through the
	// group-commit writer. The response still reports durable state:
	// wait for the batch's persist sequence before acknowledging, so a
	// crash after a 200 never loses an acknowledged batch. Concurrent
	// ingests keep pipelining — the next batch analyzes and commits
	// while this handler waits.
	x.WaitDurable(res.PersistSeq)
	s.writeJSON(w, http.StatusOK, res)
}
