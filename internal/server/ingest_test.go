package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ncexplorer"
	"ncexplorer/internal/server"
)

// ingestWorld builds a private explorer+server pair with ingestion
// enabled (the shared package world must stay immutable for the other
// tests).
func ingestWorld(t testing.TB) (*ncexplorer.Explorer, *server.Server) {
	t.Helper()
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	return x, server.New(x, server.Options{EnableIngest: true, MaxIngestBatch: 16})
}

func serve(t testing.TB, s *server.Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var reader *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(raw)
	} else {
		reader = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, reader)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func TestIngestEndpointDisabledByDefault(t *testing.T) {
	rec := postJSON(t, "/v2/ingest", map[string]any{
		"articles": []map[string]string{{"source": "reuters", "title": "t", "body": "b"}},
	})
	if rec.Code != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", rec.Code)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	decodeBody(t, rec, &env)
	if env.Error.Code != string(ncexplorer.CodePermissionDenied) {
		t.Fatalf("code = %q, want permission_denied", env.Error.Code)
	}
}

// TestIngestEndpoint drives the full freshness loop over HTTP: cache
// a query, ingest new articles, and verify the next identical query
// misses the cache and is served from the new generation — without
// any explicit cache flush.
func TestIngestEndpoint(t *testing.T) {
	x, s := ingestWorld(t)
	tp := x.EvaluationTopics()[0]
	query := map[string]any{"concepts": []string{tp[0]}, "k": 3}

	// Warm the v1 and v2 caches.
	for _, path := range []string{"/v1/rollup", "/v2/query/rollup"} {
		if rec := serve(t, s, http.MethodPost, path, query); rec.Code != 200 {
			t.Fatalf("%s warmup: %d %s", path, rec.Code, rec.Body.String())
		}
		rec := serve(t, s, http.MethodPost, path, query)
		if rec.Header().Get("X-Cache") != "HIT" {
			t.Fatalf("%s second call should HIT, got %s", path, rec.Header().Get("X-Cache"))
		}
	}

	arts, err := x.SampleArticles(777, 9)
	if err != nil {
		t.Fatal(err)
	}
	rec := serve(t, s, http.MethodPost, "/v2/ingest", map[string]any{"articles": arts})
	if rec.Code != 200 {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body.String())
	}
	var res ncexplorer.IngestResult
	decodeBody(t, rec, &res)
	if res.Accepted != 9 || res.Generation != 2 {
		t.Fatalf("ingest result = %+v", res)
	}

	// The retained pre-ingest bodies must now be unreachable.
	for _, path := range []string{"/v1/rollup", "/v2/query/rollup"} {
		rec := serve(t, s, http.MethodPost, path, query)
		if rec.Code != 200 {
			t.Fatalf("%s post-ingest: %d", path, rec.Code)
		}
		if got := rec.Header().Get("X-Cache"); got != "MISS" {
			t.Fatalf("%s after ingest served %s, want MISS (stale cache)", path, got)
		}
	}
	var v2 ncexplorer.RollUpResult
	rec = serve(t, s, http.MethodPost, "/v2/query/rollup", query)
	decodeBody(t, rec, &v2)
	if v2.Generation != 2 {
		t.Fatalf("post-ingest query served at generation %d, want 2", v2.Generation)
	}

	// /statsz reflects the new index shape.
	rec = serve(t, s, http.MethodGet, "/statsz", nil)
	var stats struct {
		Index ncexplorer.Stats `json:"index"`
	}
	decodeBody(t, rec, &stats)
	if stats.Index.Generation != 2 || len(stats.Index.Segments) != 2 ||
		stats.Index.Ingest.Batches != 1 || stats.Index.Ingest.Docs != 9 {
		t.Fatalf("statsz index = generation %d segments %v ingest %+v",
			stats.Index.Generation, stats.Index.Segments, stats.Index.Ingest)
	}
}

func TestIngestEndpointValidation(t *testing.T) {
	_, s := ingestWorld(t)
	if rec := serve(t, s, http.MethodPost, "/v2/ingest", map[string]any{"articles": []any{}}); rec.Code != 400 {
		t.Fatalf("empty batch: %d", rec.Code)
	}
	big := make([]map[string]string, 17)
	for i := range big {
		big[i] = map[string]string{"source": "nyt", "title": "t", "body": "b"}
	}
	if rec := serve(t, s, http.MethodPost, "/v2/ingest", map[string]any{"articles": big}); rec.Code != 400 {
		t.Fatalf("oversized batch: %d", rec.Code)
	}
	rec := serve(t, s, http.MethodPost, "/v2/ingest", map[string]any{
		"articles": []map[string]string{{"source": "faxnews", "title": "t", "body": "b"}},
	})
	if rec.Code != 400 {
		t.Fatalf("unknown source: %d", rec.Code)
	}
	var env struct {
		Error struct {
			Code    string         `json:"code"`
			Details map[string]any `json:"details"`
		} `json:"error"`
	}
	decodeBody(t, rec, &env)
	if env.Error.Code != string(ncexplorer.CodeInvalidArgument) {
		t.Fatalf("code = %q", env.Error.Code)
	}
	if env.Error.Details["valid_sources"] == nil {
		t.Fatal("unknown-source error should list valid sources")
	}
}

// TestResetQueryCachesInvalidatesServerCache pins the cross-layer
// cache-coherence fix: ResetQueryCaches used to clear only the
// engine's memo caches while the HTTP result cache kept serving
// retained bodies. Both now roll off the same epoch.
func TestResetQueryCachesInvalidatesServerCache(t *testing.T) {
	x, s := ingestWorld(t)
	tp := x.EvaluationTopics()[1]
	query := map[string]any{"concepts": []string{tp[0], tp[1]}, "k": 4}

	first := serve(t, s, http.MethodPost, "/v1/rollup", query)
	if first.Code != 200 {
		t.Fatalf("warmup: %d", first.Code)
	}
	if rec := serve(t, s, http.MethodPost, "/v1/rollup", query); rec.Header().Get("X-Cache") != "HIT" {
		t.Fatal("second call should HIT")
	}
	x.ResetQueryCaches()
	rec := serve(t, s, http.MethodPost, "/v1/rollup", query)
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("after ResetQueryCaches served %s, want MISS", got)
	}
	// Determinism: the refilled body is byte-identical to the original.
	if !bytes.Equal(rec.Body.Bytes(), first.Body.Bytes()) {
		t.Fatal("refilled body differs from the original fill")
	}
}
