package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"ncexplorer"
	"ncexplorer/internal/server"
)

var (
	worldOnce sync.Once
	explorer  *ncexplorer.Explorer
	srv       *server.Server
)

// testServer builds one tiny world and one server for the whole
// package; tests share the cache, so cache-sensitive tests use their
// own distinct queries.
func testServer(t testing.TB) *server.Server {
	t.Helper()
	worldOnce.Do(func() {
		x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
		if err != nil {
			panic(err)
		}
		explorer = x
		srv = server.New(x, server.Options{})
	})
	return srv
}

// topicConcepts returns a valid two-concept query from the built-in
// evaluation topics.
func topicConcepts(t testing.TB, i int) []string {
	t.Helper()
	testServer(t) // ensure the shared world exists
	ts := explorer.EvaluationTopics()
	if len(ts) == 0 {
		t.Fatal("no evaluation topics")
	}
	tp := ts[i%len(ts)]
	return []string{tp[0], tp[1]}
}

func postJSON(t testing.TB, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	testServer(t).Handler().ServeHTTP(rec, req)
	return rec
}

func get(t testing.TB, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	testServer(t).Handler().ServeHTTP(rec, req)
	return rec
}

func decodeBody(t testing.TB, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
}

func wantErrorBody(t *testing.T, rec *httptest.ResponseRecorder, status int) {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d; want %d (body %q)", rec.Code, status, rec.Body.String())
	}
	var e struct {
		Error string `json:"error"`
	}
	decodeBody(t, rec, &e)
	if e.Error == "" {
		t.Fatalf("expected a JSON error body, got %q", rec.Body.String())
	}
}

func TestRollUpHappyPath(t *testing.T) {
	rec := postJSON(t, "/v1/rollup", map[string]any{"concepts": topicConcepts(t, 0), "k": 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d; body %q", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Fatalf("content-type = %q", got)
	}
	var resp struct {
		Query    []string             `json:"query"`
		K        int                  `json:"k"`
		Count    int                  `json:"count"`
		Articles []ncexplorer.Article `json:"articles"`
	}
	decodeBody(t, rec, &resp)
	if resp.K != 3 || resp.Count != len(resp.Articles) {
		t.Fatalf("k = %d count = %d articles = %d", resp.K, resp.Count, len(resp.Articles))
	}
	if resp.Count == 0 {
		t.Fatal("expected at least one article for an evaluation topic")
	}
	for _, a := range resp.Articles {
		if a.Title == "" || len(a.Explanations) == 0 {
			t.Fatalf("article %d missing title or explanations", a.ID)
		}
	}
}

func TestRollUpCacheHitIsByteIdentical(t *testing.T) {
	body := map[string]any{"concepts": topicConcepts(t, 1), "k": 4}
	first := postJSON(t, "/v1/rollup", body)
	second := postJSON(t, "/v1/rollup", body)
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("statuses = %d, %d", first.Code, second.Code)
	}
	if second.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second request X-Cache = %q; want HIT", second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit body differs from the miss that populated it")
	}
	if st := testServer(t).CacheStats(); st.Hits == 0 {
		t.Fatalf("cache stats show no hits: %+v", st)
	}
}

func TestRollUpOrderInsensitiveCaching(t *testing.T) {
	c := topicConcepts(t, 2)
	first := postJSON(t, "/v1/rollup", map[string]any{"concepts": []string{c[0], c[1]}, "k": 5})
	reversed := postJSON(t, "/v1/rollup", map[string]any{"concepts": []string{c[1], c[0], c[0]}, "k": 5})
	if reversed.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("permuted duplicate query X-Cache = %q; want HIT", reversed.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), reversed.Body.Bytes()) {
		t.Fatal("permuted query body differs from canonical query body")
	}
}

func TestRollUpUnknownConcept(t *testing.T) {
	rec := postJSON(t, "/v1/rollup", map[string]any{"concepts": []string{"No such concept zzz"}})
	wantErrorBody(t, rec, http.StatusBadRequest)
	if !strings.Contains(rec.Body.String(), "unknown concept") {
		t.Fatalf("error body %q should name the unknown concept", rec.Body.String())
	}
}

func TestRollUpMalformedBody(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/v1/rollup", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	testServer(t).Handler().ServeHTTP(rec, req)
	wantErrorBody(t, rec, http.StatusBadRequest)
}

func TestRollUpOversizedBody(t *testing.T) {
	// Valid JSON that exceeds the 1 MiB body limit.
	huge := append([]byte(`{"concepts":["`), bytes.Repeat([]byte("x"), 2<<20)...)
	huge = append(huge, []byte(`"]}`)...)
	req := httptest.NewRequest(http.MethodPost, "/v1/rollup", bytes.NewReader(huge))
	rec := httptest.NewRecorder()
	testServer(t).Handler().ServeHTTP(rec, req)
	wantErrorBody(t, rec, http.StatusRequestEntityTooLarge)
}

func TestRollUpEmptyConcepts(t *testing.T) {
	rec := postJSON(t, "/v1/rollup", map[string]any{"concepts": []string{"  ", ""}})
	wantErrorBody(t, rec, http.StatusBadRequest)
}

func TestRollUpNegativeK(t *testing.T) {
	rec := postJSON(t, "/v1/rollup", map[string]any{"concepts": topicConcepts(t, 0), "k": -5})
	wantErrorBody(t, rec, http.StatusBadRequest)
}

func TestRollUpMethodNotAllowed(t *testing.T) {
	rec := get(t, "/v1/rollup")
	wantErrorBody(t, rec, http.StatusMethodNotAllowed)
	if got := rec.Header().Get("Allow"); got != "POST" {
		t.Fatalf("Allow = %q; want POST", got)
	}
}

func TestDrillDownHappyPath(t *testing.T) {
	rec := postJSON(t, "/v1/drilldown", map[string]any{"concepts": topicConcepts(t, 3), "k": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d; body %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Count       int                             `json:"count"`
		Suggestions []ncexplorer.SubtopicSuggestion `json:"suggestions"`
	}
	decodeBody(t, rec, &resp)
	if resp.Count != len(resp.Suggestions) {
		t.Fatalf("count = %d suggestions = %d", resp.Count, len(resp.Suggestions))
	}
	// A repeat is a cache hit on the drilldown keyspace.
	again := postJSON(t, "/v1/drilldown", map[string]any{"concepts": topicConcepts(t, 3), "k": 5})
	if again.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("repeat drilldown X-Cache = %q; want HIT", again.Header().Get("X-Cache"))
	}
	if !bytes.Equal(rec.Body.Bytes(), again.Body.Bytes()) {
		t.Fatal("drilldown cache hit body differs")
	}
}

func TestConceptsForEntity(t *testing.T) {
	// Topic keywords are entity names, so they give us a valid entity.
	kws, err := explorer.TopicKeywords(topicConcepts(t, 0)[0], 1)
	if err != nil || len(kws) == 0 {
		t.Fatalf("no keywords to test with: %v", err)
	}
	rec := get(t, "/v1/concepts/"+url.PathEscape(kws[0]))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d; body %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Entity   string   `json:"entity"`
		Concepts []string `json:"concepts"`
	}
	decodeBody(t, rec, &resp)
	if resp.Entity != kws[0] || len(resp.Concepts) == 0 {
		t.Fatalf("resp = %+v; want entity %q with concepts", resp, kws[0])
	}

	wantErrorBody(t, get(t, "/v1/concepts/"+url.PathEscape("No such entity zzz")), http.StatusBadRequest)
}

func TestBroaderConcepts(t *testing.T) {
	concept := topicConcepts(t, 0)[0]
	rec := get(t, "/v1/broader/"+url.PathEscape(concept))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d; body %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Concept string   `json:"concept"`
		Broader []string `json:"broader"`
	}
	decodeBody(t, rec, &resp)
	if resp.Concept != concept || resp.Broader == nil {
		t.Fatalf("resp = %+v", resp)
	}

	wantErrorBody(t, get(t, "/v1/broader/"+url.PathEscape("No such concept zzz")), http.StatusBadRequest)
}

func TestKeywords(t *testing.T) {
	concept := topicConcepts(t, 1)[0]
	rec := get(t, "/v1/keywords/"+url.PathEscape(concept)+"?n=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d; body %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Concept  string   `json:"concept"`
		Keywords []string `json:"keywords"`
	}
	decodeBody(t, rec, &resp)
	if resp.Concept != concept || len(resp.Keywords) == 0 || len(resp.Keywords) > 5 {
		t.Fatalf("resp = %+v", resp)
	}

	wantErrorBody(t, get(t, "/v1/keywords/"+url.PathEscape(concept)+"?n=bogus"), http.StatusBadRequest)
	wantErrorBody(t, get(t, "/v1/keywords/"+url.PathEscape("No such concept zzz")), http.StatusBadRequest)

	// A huge n must be clamped, not pre-allocated.
	rec = get(t, "/v1/keywords/"+url.PathEscape(concept)+"?n=2000000000")
	if rec.Code != http.StatusOK {
		t.Fatalf("huge n status = %d; body %q", rec.Code, rec.Body.String())
	}
	decodeBody(t, rec, &resp)
	if len(resp.Keywords) > 100 {
		t.Fatalf("huge n returned %d keywords; want clamp to MaxK", len(resp.Keywords))
	}
}

func TestTopics(t *testing.T) {
	rec := get(t, "/v1/topics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp struct {
		Topics []struct {
			Concept string `json:"concept"`
			Group   string `json:"group"`
		} `json:"topics"`
	}
	decodeBody(t, rec, &resp)
	if len(resp.Topics) != 6 {
		t.Fatalf("got %d topics; want the paper's 6", len(resp.Topics))
	}
	for _, tp := range resp.Topics {
		if tp.Concept == "" || tp.Group == "" {
			t.Fatalf("incomplete topic %+v", tp)
		}
	}
}

func TestHealthz(t *testing.T) {
	rec := get(t, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp struct {
		Status   string `json:"status"`
		Articles int    `json:"articles"`
	}
	decodeBody(t, rec, &resp)
	if resp.Status != "ok" || resp.Articles != explorer.NumArticles() {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestStatsz(t *testing.T) {
	// Generate at least one miss and one hit on a private key.
	body := map[string]any{"concepts": topicConcepts(t, 4), "k": 7}
	postJSON(t, "/v1/rollup", body)
	postJSON(t, "/v1/rollup", body)

	rec := get(t, "/statsz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp struct {
		Index struct {
			Articles    int `json:"articles"`
			Concepts    int `json:"concepts"`
			Nodes       int `json:"nodes"`
			EngineCache struct {
				CDR struct {
					Hits    int64 `json:"hits"`
					Misses  int64 `json:"misses"`
					Entries int64 `json:"entries"`
				} `json:"cdr"`
				Match struct {
					Hits    int64 `json:"hits"`
					Misses  int64 `json:"misses"`
					Entries int64 `json:"entries"`
				} `json:"match"`
				Conn struct {
					Hits    int64 `json:"hits"`
					Misses  int64 `json:"misses"`
					Entries int64 `json:"entries"`
				} `json:"conn"`
			} `json:"engine_cache"`
		} `json:"index"`
		Cache struct {
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
			Entries int64 `json:"entries"`
		} `json:"cache"`
		Requests struct {
			Total   int64            `json:"total"`
			Errors  int64            `json:"errors"`
			ByRoute map[string]int64 `json:"by_route"`
		} `json:"requests"`
	}
	decodeBody(t, rec, &resp)
	if resp.Index.Articles != explorer.NumArticles() || resp.Index.Concepts == 0 || resp.Index.Nodes == 0 {
		t.Fatalf("index stats = %+v", resp.Index)
	}
	if resp.Cache.Misses == 0 || resp.Cache.Hits == 0 || resp.Cache.Entries == 0 {
		t.Fatalf("cache stats = %+v; want visible misses, hits, and entries", resp.Cache)
	}
	// The engine-side memo caches must be threaded through: the match
	// stats report the swap-time query plans and the conn memo holds
	// the walked context factors from indexing (both entries > 0). The
	// cdr memo holds only on-demand non-matching probes — matching
	// pairs are answered straight from the plans — so roll-up traffic
	// leaves it empty.
	ec := resp.Index.EngineCache
	if ec.Conn.Entries == 0 {
		t.Fatalf("engine conn cache not seeded: %+v", ec)
	}
	if ec.Match.Entries == 0 {
		t.Fatalf("engine query plans not reported: %+v", ec)
	}
	if resp.Requests.Total == 0 || resp.Requests.ByRoute["rollup"] < 2 || resp.Requests.ByRoute["statsz"] == 0 {
		t.Fatalf("request stats = %+v", resp.Requests)
	}
}

func TestUnknownPath(t *testing.T) {
	wantErrorBody(t, get(t, "/v1/nope"), http.StatusNotFound)
}

// TestConcurrentIdenticalRollUps hammers one cold query from many
// goroutines; singleflight means every response must be identical, and
// the whole path must be race-free under -race.
func TestConcurrentIdenticalRollUps(t *testing.T) {
	s := testServer(t)
	raw, _ := json.Marshal(map[string]any{"concepts": topicConcepts(t, 5), "k": 9})
	const n = 24
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/rollup", bytes.NewReader(raw))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("status = %d", rec.Code)
				return
			}
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

// TestCacheDisabled checks that a negative capacity still serves
// correct responses without retaining entries.
func TestCacheDisabled(t *testing.T) {
	testServer(t)
	s := server.New(explorer, server.Options{CacheCapacity: -1})
	raw, _ := json.Marshal(map[string]any{"concepts": topicConcepts(t, 0), "k": 2})
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/rollup", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		if got := rec.Header().Get("X-Cache"); got != "MISS" {
			t.Fatalf("request %d X-Cache = %q; want MISS with caching disabled", i, got)
		}
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("disabled cache retained %d entries", st.Entries)
	}
}

// The serving benchmarks (cached vs uncached) live in the root
// package's bench_test.go as BenchmarkServerRollUp.
