package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ncexplorer"
	"ncexplorer/internal/server"
)

// SSE delivery contract (ISSUE satellite 4): a subscriber that
// disconnects and later resumes with ?after=<last seen id> receives
// exactly the alerts it missed, in order, with framing byte-identical
// to what an uninterrupted stream delivered. The test runs both
// subscribers against the same alert history and compares raw frames.

// sseFrame is one complete SSE event block as raw text (without the
// trailing blank line) plus the parsed alert sequence.
type sseFrame struct {
	raw string
	id  uint64
}

// sseStream reads SSE frames off a live response body in a background
// goroutine, handing them over a channel so the test can bound waits.
type sseStream struct {
	resp   *http.Response
	frames chan sseFrame
	errs   chan error
}

func openSSE(t *testing.T, base, id string, after uint64) *sseStream {
	t.Helper()
	url := fmt.Sprintf("%s/v2/watchlists/%s/events", base, id)
	if after > 0 {
		url += fmt.Sprintf("?after=%d", after)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("SSE connect: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("SSE content type %q", ct)
	}
	st := &sseStream{resp: resp, frames: make(chan sseFrame, 64), errs: make(chan error, 1)}
	go pumpSSE(st)
	return st
}

// pumpSSE reads SSE frames off the response body until it closes,
// delivering each complete block on the stream's channel.
func pumpSSE(st *sseStream) {
	defer close(st.frames)
	rd := bufio.NewReader(st.resp.Body)
	var block bytes.Buffer
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			st.errs <- err
			return
		}
		if line == "\n" {
			raw := block.String()
			block.Reset()
			var id uint64
			for _, fl := range strings.Split(raw, "\n") {
				if _, err := fmt.Sscanf(fl, "id: %d", &id); err == nil {
					break
				}
			}
			st.frames <- sseFrame{raw: raw, id: id}
			continue
		}
		block.WriteString(line)
	}
}

// next returns the next frame or fails after a timeout.
func (st *sseStream) next(t *testing.T) sseFrame {
	t.Helper()
	select {
	case f, ok := <-st.frames:
		if !ok {
			t.Fatal("SSE stream closed while a frame was expected")
		}
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("no SSE frame within 5s")
	}
	panic("unreachable")
}

// collectThrough reads frames until one carries sequence seq.
func (st *sseStream) collectThrough(t *testing.T, seq uint64) []sseFrame {
	t.Helper()
	var out []sseFrame
	for {
		f := st.next(t)
		out = append(out, f)
		if f.id >= seq {
			return out
		}
	}
}

func (st *sseStream) close() { st.resp.Body.Close() }

// watchWorld builds a private tiny world (the test ingests, so the
// shared package world cannot be used) and picks the concept with the
// most seed-corpus matches so sampled batches reliably alert.
func watchWorld(t *testing.T) (*ncexplorer.Explorer, string) {
	t.Helper()
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	best, bestTotal := "", -1
	for _, topic := range x.EvaluationTopics() {
		for _, name := range topic {
			res, err := x.RollUpQuery(context.Background(), ncexplorer.RollUpRequest{
				Concepts: []string{name}, K: 1,
			})
			if err != nil {
				continue
			}
			if res.Total > bestTotal {
				best, bestTotal = name, res.Total
			}
		}
	}
	if bestTotal < 1 {
		t.Fatal("no matching concept among evaluation topics")
	}
	return x, best
}

func ingestBatch(t *testing.T, x *ncexplorer.Explorer, seed uint64) {
	t.Helper()
	arts, err := x.SampleArticles(seed, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Ingest(context.Background(), arts); err != nil {
		t.Fatal(err)
	}
}

func TestWatchlistSSEReconnectCatchUp(t *testing.T) {
	x, concept := watchWorld(t)
	s := server.New(x, server.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Register over the wire, like a real client.
	body, _ := json.Marshal(map[string]any{"concepts": []string{concept}})
	resp, err := http.Post(ts.URL+"/v2/watchlists", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var wl ncexplorer.Watchlist
	if err := json.NewDecoder(resp.Body).Decode(&wl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}

	// witness never disconnects; flaky connects, loses its connection,
	// and resumes with ?after=. Frames must match byte for byte.
	witness := openSSE(t, ts.URL, wl.ID, 0)
	defer witness.close()
	flaky := openSSE(t, ts.URL, wl.ID, 0)

	ingestBatch(t, x, 100)
	seq := func() uint64 {
		got, err := x.GetWatchlist(wl.ID)
		if err != nil {
			t.Fatal(err)
		}
		return got.LastSeq
	}
	firstSeq := seq()
	if firstSeq == 0 {
		t.Fatal("first batch fired no alerts — the stream is never exercised")
	}
	witnessLive := witness.collectThrough(t, firstSeq)
	flakyLive := flaky.collectThrough(t, firstSeq)
	flaky.close()

	// Three batches land while flaky is gone.
	for i := uint64(1); i <= 3; i++ {
		ingestBatch(t, x, 100+i)
	}
	lastSeq := seq()
	if lastSeq <= firstSeq {
		t.Fatal("no alerts fired while disconnected — reconnect has nothing to prove")
	}
	witnessMissed := witness.collectThrough(t, lastSeq)

	// Resume exactly after the last frame flaky saw.
	resumed := openSSE(t, ts.URL, wl.ID, flakyLive[len(flakyLive)-1].id)
	defer resumed.close()
	flakyCatchUp := resumed.collectThrough(t, lastSeq)

	compare := func(label string, got, want []sseFrame) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d frames, want %d", label, len(got), len(want))
		}
		for i := range got {
			if got[i].raw != want[i].raw {
				t.Fatalf("%s: frame %d diverges:\ngot:  %q\nwant: %q", label, i, got[i].raw, want[i].raw)
			}
		}
	}
	// Live phases agree, and the catch-up replay is byte-identical to
	// what the uninterrupted stream saw live: no gap, no duplicate, no
	// reframing.
	compare("live", flakyLive, witnessLive)
	compare("catch-up", flakyCatchUp, witnessMissed)

	for i := 1; i < len(flakyCatchUp); i++ {
		if flakyCatchUp[i].id != flakyCatchUp[i-1].id+1 {
			t.Fatalf("catch-up ids not contiguous: %d then %d", flakyCatchUp[i-1].id, flakyCatchUp[i].id)
		}
	}
}

// TestWatchlistSSEBadCursor pins the ?after= cursor grammar: exactly
// the base-10 uint64 literals are accepted; everything else — signs,
// floats, hex, whitespace, values past 2^64-1 — is a typed
// invalid_argument before any stream is opened.
func TestWatchlistSSEBadCursor(t *testing.T) {
	x, concept := watchWorld(t)
	s := server.New(x, server.Options{})
	wl, err := x.RegisterWatchlist(ncexplorer.WatchlistSpec{Concepts: []string{concept}})
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"abc",                           // garbage
		"-1",                            // negative
		"+1",                            // explicit sign
		"1.5",                           // float
		"1e3",                           // scientific
		"0x10",                          // hex
		"%201",                          // leading space (URL-encoded)
		"18446744073709551616",          // 2^64: one past uint64
		"99999999999999999999999999999", // way past uint64
	}
	for _, raw := range bad {
		req := httptest.NewRequest(http.MethodGet, "/v2/watchlists/"+wl.ID+"/events?after="+raw, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("after=%q: status %d, want 400: %s", raw, rec.Code, rec.Body)
		}
		if !bytes.Contains(rec.Body.Bytes(), []byte("invalid_argument")) {
			t.Fatalf("after=%q: body lacks typed invalid_argument code: %s", raw, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "text/event-stream") {
			t.Fatalf("after=%q: rejected cursor still opened a stream", raw)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v2/watchlists/nope/events", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown watchlist: status %d, want 404", rec.Code)
	}
}

// TestWatchlistSSECursorBeyondRetention: the largest valid cursor
// (2^64-1) is not an error — it means "I have seen everything", so the
// stream opens with an empty catch-up and delivers only alerts
// produced after the connect. An empty ?after= is likewise accepted
// and means "from the start".
func TestWatchlistSSECursorBeyondRetention(t *testing.T) {
	x, concept := watchWorld(t)
	s := server.New(x, server.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	wl, err := x.RegisterWatchlist(ncexplorer.WatchlistSpec{Concepts: []string{concept}})
	if err != nil {
		t.Fatal(err)
	}

	// Build up retained history the cursor must NOT replay.
	ingestBatch(t, x, 4242)
	got, err := x.GetWatchlist(wl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq == 0 {
		t.Fatal("seed batch produced no alerts; pick a denser concept")
	}

	// An empty cursor value is "from the start": the retained alerts
	// replay from sequence 1.
	fromStart, err := http.Get(fmt.Sprintf("%s/v2/watchlists/%s/events?after=", ts.URL, wl.ID))
	if err != nil {
		t.Fatal(err)
	}
	stStart := &sseStream{resp: fromStart, frames: make(chan sseFrame, 64), errs: make(chan error, 1)}
	if fromStart.StatusCode != http.StatusOK {
		t.Fatalf("empty cursor: status %d", fromStart.StatusCode)
	}
	go pumpSSE(stStart)
	defer stStart.close()
	if f := stStart.next(t); f.id != 1 {
		t.Fatalf("empty cursor: first frame id %d, want 1", f.id)
	}

	maxed := openSSE(t, ts.URL, wl.ID, ^uint64(0))
	defer maxed.close()

	// New alerts still flow; the first frame the maxed-out cursor sees
	// must be from the post-connect batch, not a replay.
	ingestBatch(t, x, 4243)
	after, err := x.GetWatchlist(wl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.LastSeq == got.LastSeq {
		t.Fatal("second batch produced no alerts; pick a denser concept")
	}
	if f := maxed.next(t); f.id <= got.LastSeq {
		t.Fatalf("cursor past retention replayed retained alert %d (history ended at %d)", f.id, got.LastSeq)
	}
}

// TestWatchlistCRUDOverHTTP drives the full lifecycle over the wire:
// create (validated like a query), list, get, delete, and the typed
// error shapes for bad input.
func TestWatchlistCRUDOverHTTP(t *testing.T) {
	x, concept := watchWorld(t)
	s := server.New(x, server.Options{})
	do := func(method, path string, body any) *httptest.ResponseRecorder {
		t.Helper()
		var rd io.Reader
		if body != nil {
			raw, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(raw)
		}
		req := httptest.NewRequest(method, path, rd)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec
	}

	rec := do(http.MethodPost, "/v2/watchlists", map[string]any{"concepts": []string{concept}, "name": "n"})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", rec.Code, rec.Body)
	}
	var wl ncexplorer.Watchlist
	if err := json.Unmarshal(rec.Body.Bytes(), &wl); err != nil {
		t.Fatal(err)
	}

	// Unknown concepts get the same typed suggestion error a query gets.
	rec = do(http.MethodPost, "/v2/watchlists", map[string]any{"concepts": []string{"Nonexistent Concept"}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown concept: status %d, want 400: %s", rec.Code, rec.Body)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("unknown_concept")) {
		t.Fatalf("unknown concept: body lacks typed code: %s", rec.Body)
	}

	rec = do(http.MethodGet, "/v2/watchlists", nil)
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte(wl.ID)) {
		t.Fatalf("list: status %d body %s", rec.Code, rec.Body)
	}

	// The watch counters surface in /statsz next to cache and sessions.
	rec = do(http.MethodGet, "/statsz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz: status %d", rec.Code)
	}
	var stats struct {
		Index struct {
			Watch struct {
				Watchlists int `json:"watchlists"`
			} `json:"watch"`
		} `json:"index"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Index.Watch.Watchlists != 1 {
		t.Fatalf("statsz watch.watchlists = %d, want 1: %s", stats.Index.Watch.Watchlists, rec.Body)
	}
	rec = do(http.MethodGet, "/v2/watchlists/"+wl.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get: status %d", rec.Code)
	}
	rec = do(http.MethodDelete, "/v2/watchlists/"+wl.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rec.Code)
	}
	rec = do(http.MethodGet, "/v2/watchlists/"+wl.ID, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", rec.Code)
	}

	// The registry cap surfaces as 429 limit_exceeded.
	y, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny", Seed: 42, MaxWatchlists: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2 := server.New(y, server.Options{})
	body, _ := json.Marshal(map[string]any{"concepts": []string{concept}})
	req := httptest.NewRequest(http.MethodPost, "/v2/watchlists", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	s2.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("first create under cap: status %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/v2/watchlists", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	s2.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over cap: status %d, want 429: %s", rec.Code, rec.Body)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("limit_exceeded")) {
		t.Fatalf("over cap: body lacks typed code: %s", rec.Body)
	}
}
