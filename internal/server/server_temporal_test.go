package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"ncexplorer"
)

// temporalPage decodes the temporal fields of a /v2/query/rollup
// response alongside the paging envelope.
type temporalPage struct {
	Total    int                  `json:"total"`
	Articles []ncexplorer.Article `json:"articles"`
	Periods  []ncexplorer.Period  `json:"periods"`
}

// temporalSpan fetches the full unfiltered listing for a query and
// returns it with its publication span — the window shapes the
// temporal tests slice are anchored to real corpus timestamps, not
// guessed dates.
func temporalSpan(t *testing.T, concepts []string) (articles []ncexplorer.Article, lo, hi time.Time) {
	t.Helper()
	rec := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 10000})
	if rec.Code != http.StatusOK {
		t.Fatalf("unfiltered rollup: status = %d; body %q", rec.Code, rec.Body.String())
	}
	var page temporalPage
	decodeBody(t, rec, &page)
	if len(page.Articles) < 4 {
		t.Fatalf("need a few articles to slice windows from, got %d", len(page.Articles))
	}
	for i, a := range page.Articles {
		ts, err := time.Parse(time.RFC3339, a.PublishedAt)
		if err != nil {
			t.Fatalf("article %d published_at %q: %v", a.ID, a.PublishedAt, err)
		}
		if i == 0 || ts.Before(lo) {
			lo = ts
		}
		if i == 0 || ts.After(hi) {
			hi = ts
		}
	}
	return page.Articles, lo, hi
}

// TestV2RollUpTimeRange checks the HTTP contract of time_range: a
// windowed roll-up returns exactly the in-window suffix of the
// unfiltered listing, in the same rank order — the server-level
// restatement of the core byte-identity property.
func TestV2RollUpTimeRange(t *testing.T) {
	concepts := topicConcepts(t, 2)
	all, lo, hi := temporalSpan(t, concepts)
	// Truncate to whole seconds: RFC3339 formatting drops fractional
	// seconds, so an untruncated midpoint would give the client-side
	// filter a different boundary than the server parses.
	mid := lo.Add(hi.Sub(lo) / 2).Truncate(time.Second)
	win := map[string]any{"start": mid.Format(time.RFC3339), "end": hi.Format(time.RFC3339)}

	rec := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 10000, "time_range": win})
	if rec.Code != http.StatusOK {
		t.Fatalf("windowed rollup: status = %d; body %q", rec.Code, rec.Body.String())
	}
	var got temporalPage
	decodeBody(t, rec, &got)

	var wantIDs []int
	for _, a := range all {
		ts, _ := time.Parse(time.RFC3339, a.PublishedAt)
		if !ts.Before(mid) && !ts.After(hi) {
			wantIDs = append(wantIDs, a.ID)
		}
	}
	if got.Total != len(wantIDs) {
		t.Fatalf("windowed total = %d; want %d (the in-window count of the unfiltered listing)", got.Total, len(wantIDs))
	}
	if len(got.Articles) != len(wantIDs) {
		t.Fatalf("windowed page has %d articles; want %d", len(got.Articles), len(wantIDs))
	}
	for i, a := range got.Articles {
		if a.ID != wantIDs[i] {
			t.Fatalf("windowed rank %d = article %d; post-filtering the unfiltered listing gives %d", i, a.ID, wantIDs[i])
		}
		ts, _ := time.Parse(time.RFC3339, a.PublishedAt)
		if ts.Before(mid) || ts.After(hi) {
			t.Fatalf("article %d published %s escapes window [%s, %s]", a.ID, a.PublishedAt, mid.Format(time.RFC3339), hi.Format(time.RFC3339))
		}
	}

	// An open start (only "end") and an open end (only "start") must
	// partition the listing: every article lands on exactly one side
	// of the midpoint except those exactly on it, which both sides
	// include (inclusive bounds).
	before := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 10000,
		"time_range": map[string]any{"end": mid.Add(-time.Second).Format(time.RFC3339)}})
	var bp temporalPage
	decodeBody(t, before, &bp)
	if bp.Total+got.Total != len(all) {
		t.Fatalf("open-ended halves total %d + %d; want %d", bp.Total, got.Total, len(all))
	}
}

// TestV2RollUpGroupBy checks the periods histogram over HTTP: counts
// sum to total, starts ascend and parse as RFC3339 UTC midnights, and
// rank 1 is the busiest period.
func TestV2RollUpGroupBy(t *testing.T) {
	concepts := topicConcepts(t, 3)
	for _, gb := range []string{"day", "week", "month"} {
		rec := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 3, "group_by": gb})
		if rec.Code != http.StatusOK {
			t.Fatalf("group_by %q: status = %d; body %q", gb, rec.Code, rec.Body.String())
		}
		var page temporalPage
		decodeBody(t, rec, &page)
		if page.Total > 0 && len(page.Periods) == 0 {
			t.Fatalf("group_by %q: %d matches but no periods", gb, page.Total)
		}
		sum, best := 0, 0
		for i, p := range page.Periods {
			ts, err := time.Parse(time.RFC3339, p.Start)
			if err != nil {
				t.Fatalf("group_by %q period start %q: %v", gb, p.Start, err)
			}
			if h, m, s := ts.Clock(); h != 0 || m != 0 || s != 0 {
				t.Fatalf("group_by %q period start %q is not a UTC midnight", gb, p.Start)
			}
			if i > 0 && p.Start <= page.Periods[i-1].Start {
				t.Fatalf("group_by %q periods not strictly ascending: %q after %q", gb, p.Start, page.Periods[i-1].Start)
			}
			sum += p.Count
			if p.Count > page.Periods[best].Count {
				best = i
			}
		}
		if sum != page.Total {
			t.Fatalf("group_by %q: periods sum %d != total %d", gb, sum, page.Total)
		}
		if len(page.Periods) > 0 && page.Periods[best].Rank != 1 {
			t.Fatalf("group_by %q: busiest period has rank %d, want 1", gb, page.Periods[best].Rank)
		}
	}
}

// TestV2TemporalValidation pins the typed failure modes: malformed
// and inverted time ranges, unknown group_by values, and group_by on
// drill-down are all invalid_argument, never a 200 with the filter
// silently ignored.
func TestV2TemporalValidation(t *testing.T) {
	concepts := topicConcepts(t, 0)
	base := func() map[string]any {
		return map[string]any{"concepts": concepts, "k": 3}
	}
	cases := []struct {
		name string
		mut  func(m map[string]any)
		path string
	}{
		{"unparseable start", func(m map[string]any) {
			m["time_range"] = map[string]any{"start": "not-a-time"}
		}, "/v2/query/rollup"},
		{"unparseable end", func(m map[string]any) {
			m["time_range"] = map[string]any{"end": "2023-13-45T00:00:00Z"}
		}, "/v2/query/rollup"},
		{"inverted range", func(m map[string]any) {
			m["time_range"] = map[string]any{"start": "2023-06-01T00:00:00Z", "end": "2023-01-01T00:00:00Z"}
		}, "/v2/query/rollup"},
		{"unknown group_by", func(m map[string]any) {
			m["group_by"] = "fortnight"
		}, "/v2/query/rollup"},
		{"group_by on drilldown", func(m map[string]any) {
			m["group_by"] = "week"
		}, "/v2/query/drilldown"},
		{"bad range on drilldown", func(m map[string]any) {
			m["time_range"] = map[string]any{"start": "yesterday"}
		}, "/v2/query/drilldown"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := base()
			tc.mut(body)
			rec := postJSON(t, tc.path, body)
			wantV2Error(t, rec, http.StatusBadRequest, "invalid_argument")
		})
	}

	// The unknown-group_by error must name the valid values so the
	// mistake is correctable from the response alone.
	body := base()
	body["group_by"] = "fortnight"
	e := wantV2Error(t, postRollUpV2(t, body), http.StatusBadRequest, "invalid_argument")
	valid, _ := e.Error.Details["valid_group_by"].([]any)
	var names []string
	for _, v := range valid {
		names = append(names, fmt.Sprint(v))
	}
	sort.Strings(names)
	if fmt.Sprint(names) != "[day month week]" {
		t.Fatalf("valid_group_by details = %v; want day/month/week", e.Error.Details)
	}
}

// sessionState decodes the session half of a navigation envelope.
type sessionState struct {
	Session struct {
		ID     string `json:"id"`
		Window *struct {
			Start string `json:"start"`
			End   string `json:"end"`
		} `json:"window"`
	} `json:"session"`
	Result json.RawMessage `json:"result"`
}

// TestSessionZoomFlow drives the temporal navigation loop over HTTP:
// zoom sets a window, subsequent navigation inherits it and returns
// bytes identical to the equivalent stateless windowed query, and
// back undoes the zoom.
func TestSessionZoomFlow(t *testing.T) {
	concepts := topicConcepts(t, 4)
	_, lo, hi := temporalSpan(t, concepts)
	start := lo.Add(hi.Sub(lo) / 4).Format(time.RFC3339)
	end := hi.Format(time.RFC3339)

	rec := postJSON(t, "/v2/sessions", map[string]any{"concepts": concepts})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create session: status = %d; body %q", rec.Code, rec.Body.String())
	}
	var created sessionState
	decodeBody(t, rec, &created)
	id := created.Session.ID
	if created.Session.Window != nil {
		t.Fatalf("fresh session already has a window: %+v", created.Session.Window)
	}

	// Zoom, then roll up with no time_range of its own: the session's
	// window must apply, and the result bytes must match the stateless
	// windowed call exactly (same cached typed path).
	rec = postJSON(t, "/v2/sessions/"+id+"/zoom", map[string]any{
		"time_range": map[string]any{"start": start, "end": end},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("zoom: status = %d; body %q", rec.Code, rec.Body.String())
	}
	var zoomed sessionState
	decodeBody(t, rec, &zoomed)
	if zoomed.Session.Window == nil || zoomed.Session.Window.Start != start || zoomed.Session.Window.End != end {
		t.Fatalf("zoomed window = %+v; want [%s, %s]", zoomed.Session.Window, start, end)
	}

	rec = postJSON(t, "/v2/sessions/"+id+"/rollup", map[string]any{"k": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("session rollup: status = %d; body %q", rec.Code, rec.Body.String())
	}
	var nav sessionState
	decodeBody(t, rec, &nav)
	stateless := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 5,
		"time_range": map[string]any{"start": start, "end": end}})
	if stateless.Code != http.StatusOK {
		t.Fatalf("stateless windowed rollup: status = %d; body %q", stateless.Code, stateless.Body.String())
	}
	if string(nav.Result) != strings.TrimSpace(stateless.Body.String()) {
		t.Fatalf("session rollup under zoom diverges from stateless windowed rollup:\n session: %s\nstateless: %s",
			nav.Result, stateless.Body.String())
	}

	// Back must undo the zoom, and the next roll-up must match the
	// stateless *unfiltered* call again.
	rec = postJSON(t, "/v2/sessions/"+id+"/back", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("back: status = %d; body %q", rec.Code, rec.Body.String())
	}
	var popped sessionState
	decodeBody(t, rec, &popped)
	if popped.Session.Window != nil {
		t.Fatalf("window survives back: %+v", popped.Session.Window)
	}
	rec = postJSON(t, "/v2/sessions/"+id+"/rollup", map[string]any{"k": 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-back rollup: status = %d; body %q", rec.Code, rec.Body.String())
	}
	decodeBody(t, rec, &nav)
	unfiltered := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 5})
	if string(nav.Result) != strings.TrimSpace(unfiltered.Body.String()) {
		t.Fatalf("post-back session rollup diverges from stateless unfiltered rollup:\n session: %s\nstateless: %s",
			nav.Result, unfiltered.Body.String())
	}

	// A bad zoom body must leave the window untouched.
	rec = postJSON(t, "/v2/sessions/"+id+"/zoom", map[string]any{
		"time_range": map[string]any{"start": "not-a-time"},
	})
	wantV2Error(t, rec, http.StatusBadRequest, "invalid_argument")
	rec = postJSON(t, "/v2/sessions/"+id+"/zoom", map[string]any{
		"time_range": map[string]any{"start": end, "end": start},
	})
	wantV2Error(t, rec, http.StatusBadRequest, "invalid_argument")
	got := get(t, "/v2/sessions/"+id)
	var peek sessionState
	decodeBody(t, got, &peek)
	if peek.Session.Window != nil {
		t.Fatalf("rejected zooms changed the window: %+v", peek.Session.Window)
	}
}
