// Session endpoints: server-side exploration state over
// internal/session. A session holds the analyst's current concept
// pattern and the roll-up/drill-down navigation history; the
// navigation endpoints execute queries through the same cached typed
// path as /v2/query/*, so a session walk-through produces
// byte-identical payloads to the equivalent stateless calls.
//
//	POST   /v2/sessions                    {"concepts": [...]} → create
//	GET    /v2/sessions                    list live sessions
//	GET    /v2/sessions/{id}               snapshot (does not refresh TTL)
//	DELETE /v2/sessions/{id}               drop a session
//	POST   /v2/sessions/{id}/rollup        roll up the current pattern
//	                                       (optional "concepts" replaces it first;
//	                                       optional "time_range" zooms first)
//	POST   /v2/sessions/{id}/drilldown     suggest subtopics for the current
//	                                       pattern (optional "select" then
//	                                       refines the pattern with one;
//	                                       optional "time_range" zooms first)
//	POST   /v2/sessions/{id}/zoom          set or clear the session's time
//	                                       window without querying
//	POST   /v2/sessions/{id}/back          undo the last navigation step
//	                                       (pattern and time window together)
//
// A session's time window, once zoomed, applies to every navigation
// query that does not carry its own time_range; zooms are breadcrumbed
// and undoable exactly like pattern changes.
package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"ncexplorer"
	"ncexplorer/internal/session"
)

// sessionError maps internal/session failures onto the envelope.
func sessionError(err error) *apiError {
	switch {
	case errors.Is(err, session.ErrNotFound):
		return &apiError{status: http.StatusNotFound, code: ncexplorer.CodeNotFound, message: err.Error()}
	case errors.Is(err, session.ErrExpired):
		return &apiError{status: http.StatusGone, code: ncexplorer.CodeSessionExpired, message: err.Error()}
	case errors.Is(err, session.ErrNoHistory):
		return &apiError{status: http.StatusConflict, code: ncexplorer.CodeNoHistory, message: err.Error()}
	case errors.Is(err, session.ErrDuplicateConcept):
		return &apiError{status: http.StatusBadRequest, code: ncexplorer.CodeInvalidArgument, message: err.Error()}
	default:
		return apiErrorFrom(err)
	}
}

// sessionEnvelope wraps a session snapshot, optionally with the query
// result a navigation call produced. Result is the same bytes the
// stateless /v2/query endpoint would return for the session's pattern.
type sessionEnvelope struct {
	Session session.Snapshot `json:"session"`
	Result  json.RawMessage  `json:"result,omitempty"`
}

type createSessionRequest struct {
	Concepts []string `json:"concepts"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if aerr := decodeV2(w, r, &req); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	concepts := ncexplorer.CanonicalConcepts(req.Concepts)
	if err := s.explorer().ValidateConcepts(concepts); err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	snap := s.sessions.Create(concepts)
	s.writeJSON(w, http.StatusCreated, sessionEnvelope{Session: snap})
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	list := s.sessions.List()
	s.writeJSON(w, http.StatusOK, map[string]any{"count": len(list), "sessions": list})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	snap, err := s.sessions.Peek(r.PathValue("id"))
	if err != nil {
		s.writeAPIError(w, sessionError(err))
		return
	}
	s.writeJSON(w, http.StatusOK, sessionEnvelope{Session: snap})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.Delete(id) {
		s.writeAPIError(w, sessionError(session.ErrNotFound))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// handleSessionRollUp rolls up the session's current pattern. A
// non-empty "concepts" field replaces the pattern first (recorded as a
// navigation step, undoable with back); the other typed request
// fields (k, offset, sources, min_score, explain) apply as on
// /v2/query/rollup.
func (s *Server) handleSessionRollUp(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var q v2QueryRequest
	if aerr := decodeV2(w, r, &q); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	snap, err := s.sessions.Get(id)
	if err != nil {
		s.writeAPIError(w, sessionError(err))
		return
	}
	// Run the query on the prospective pattern first and commit the
	// pattern replacement only once it succeeds: a request rejected
	// for any reason (unknown concept, bad paging, cancellation) must
	// leave the session exactly as it was.
	newConcepts := ncexplorer.CanonicalConcepts(q.Concepts)
	if len(newConcepts) > 0 {
		if err := s.explorer().ValidateConcepts(newConcepts); err != nil {
			s.writeAPIError(w, apiErrorFrom(err))
			return
		}
		q.Concepts = newConcepts
	} else {
		q.Concepts = snap.Concepts
	}
	zoom := q.Time != nil
	if zoom {
		if err := ncexplorer.ValidateTimeRange(q.Time); err != nil {
			s.writeAPIError(w, apiErrorFrom(err))
			return
		}
	} else {
		q.Time = sessionTime(snap.Window)
	}
	body, _, aerr := s.execV2(r.Context(), "rollup", q)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	if len(newConcepts) > 0 {
		if snap, err = s.sessions.Set(id, newConcepts); err != nil {
			s.writeAPIError(w, sessionError(err))
			return
		}
	}
	if zoom {
		if snap, err = s.sessions.Zoom(id, sessionWindow(q.Time)); err != nil {
			s.writeAPIError(w, sessionError(err))
			return
		}
	}
	s.writeJSON(w, http.StatusOK, sessionEnvelope{Session: snap, Result: body})
}

// sessionTime converts a stored zoom window to the query filter it
// stands for, nil for an un-zoomed session.
func sessionTime(w *session.Window) *ncexplorer.TimeRange {
	if w == nil {
		return nil
	}
	return &ncexplorer.TimeRange{Start: w.Start, End: w.End}
}

// sessionWindow is the inverse of sessionTime.
func sessionWindow(tr *ncexplorer.TimeRange) *session.Window {
	if tr == nil {
		return nil
	}
	return &session.Window{Start: tr.Start, End: tr.End}
}

// sessionDrillDownRequest adds the refinement selector to the typed
// request fields.
type sessionDrillDownRequest struct {
	v2QueryRequest
	// Select, when non-empty, appends this concept to the session's
	// pattern after the suggestions are computed — the paper's
	// "drill down into a subtopic" move, undoable with back.
	Select string `json:"select"`
}

// handleSessionDrillDown suggests subtopics for the session's current
// pattern. Suggestions are computed on the pattern *before* any
// "select" refinement is applied, mirroring the interactive loop: the
// analyst sees suggestions for where they are, then moves.
func (s *Server) handleSessionDrillDown(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req sessionDrillDownRequest
	if aerr := decodeV2(w, r, &req); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	snap, err := s.sessions.Get(id)
	if err != nil {
		s.writeAPIError(w, sessionError(err))
		return
	}
	q := req.v2QueryRequest
	q.Concepts = snap.Concepts
	zoom := q.Time != nil
	if zoom {
		if err := ncexplorer.ValidateTimeRange(q.Time); err != nil {
			s.writeAPIError(w, apiErrorFrom(err))
			return
		}
	} else {
		q.Time = sessionTime(snap.Window)
	}
	body, _, aerr := s.execV2(r.Context(), "drilldown", q)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	if zoom {
		if snap, err = s.sessions.Zoom(id, sessionWindow(q.Time)); err != nil {
			s.writeAPIError(w, sessionError(err))
			return
		}
	}
	// Canonicalize the selection before validating and refining, so a
	// whitespace variant of a concept already in the pattern cannot
	// slip past the duplicate-refine guard.
	if sel := ncexplorer.CanonicalConcepts([]string{req.Select}); len(sel) > 0 {
		if err := s.explorer().ValidateConcepts(sel); err != nil {
			s.writeAPIError(w, apiErrorFrom(err))
			return
		}
		if snap, err = s.sessions.Refine(id, sel[0]); err != nil {
			s.writeAPIError(w, sessionError(err))
			return
		}
	}
	s.writeJSON(w, http.StatusOK, sessionEnvelope{Session: snap, Result: body})
}

// sessionZoomRequest is the /zoom body: a time window to apply, or an
// absent/empty one to zoom back out.
type sessionZoomRequest struct {
	Time *ncexplorer.TimeRange `json:"time_range"`
}

// handleSessionZoom sets or clears the session's time window without
// running a query — the temporal navigation step of the OLAP loop,
// breadcrumbed and undoable like a pattern change.
func (s *Server) handleSessionZoom(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req sessionZoomRequest
	if aerr := decodeV2(w, r, &req); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	if err := ncexplorer.ValidateTimeRange(req.Time); err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	snap, err := s.sessions.Zoom(id, sessionWindow(req.Time))
	if err != nil {
		s.writeAPIError(w, sessionError(err))
		return
	}
	s.writeJSON(w, http.StatusOK, sessionEnvelope{Session: snap})
}

func (s *Server) handleSessionBack(w http.ResponseWriter, r *http.Request) {
	snap, err := s.sessions.Back(r.PathValue("id"))
	if err != nil {
		s.writeAPIError(w, sessionError(err))
		return
	}
	s.writeJSON(w, http.StatusOK, sessionEnvelope{Session: snap})
}
