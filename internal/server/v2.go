// v2: the typed query surface. Where /v1 exposes fixed-shape one-shot
// calls, /v2 speaks typed requests (pagination, source and score
// filters, explanation toggles), executes batches under the engine's
// bounded parallelism, and shares one structured error envelope:
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// with machine-readable codes (unknown_concept errors carry
// nearest-concept suggestions in details). /v1 responses are untouched
// — byte-compatibility there is a hard contract (see DESIGN.md §5).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"ncexplorer"
)

// statusClientClosedRequest is nginx's conventional status for a
// request abandoned by the client; Go has no stdlib constant for it.
const statusClientClosedRequest = 499

// apiError is a structured v2 failure on its way to the error
// envelope.
type apiError struct {
	status  int
	code    ncexplorer.ErrorCode
	message string
	details map[string]any
}

func invalidArgument(format string, args ...any) *apiError {
	return &apiError{
		status:  http.StatusBadRequest,
		code:    ncexplorer.CodeInvalidArgument,
		message: fmt.Sprintf(format, args...),
	}
}

// statusForCode maps facade error codes to HTTP statuses.
func statusForCode(code ncexplorer.ErrorCode) int {
	switch code {
	case ncexplorer.CodeInvalidArgument, ncexplorer.CodeUnknownConcept, ncexplorer.CodeUnknownEntity:
		return http.StatusBadRequest
	case ncexplorer.CodeNotFound:
		return http.StatusNotFound
	case ncexplorer.CodePermissionDenied:
		return http.StatusForbidden
	case ncexplorer.CodeSessionExpired:
		return http.StatusGone
	case ncexplorer.CodeNoHistory:
		return http.StatusConflict
	case ncexplorer.CodeLimitExceeded:
		return http.StatusTooManyRequests
	case ncexplorer.CodeCancelled:
		return statusClientClosedRequest
	case ncexplorer.CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case ncexplorer.CodeShardUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// apiErrorFrom converts any error into a structured apiError: typed
// facade errors keep their code and details, everything else becomes
// an internal error.
func apiErrorFrom(err error) *apiError {
	if e, ok := ncexplorer.AsError(err); ok {
		return &apiError{status: statusForCode(e.Code), code: e.Code, message: e.Message, details: e.Details}
	}
	return &apiError{status: http.StatusInternalServerError, code: ncexplorer.CodeInternal, message: err.Error()}
}

// errorEnvelope is the v2 error body shared by every /v2 endpoint.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    ncexplorer.ErrorCode `json:"code"`
	Message string               `json:"message"`
	Details map[string]any       `json:"details,omitempty"`
}

// marshalAPIError renders the envelope (for batch items the envelope
// is embedded without a status line).
func marshalAPIError(e *apiError) []byte {
	body, err := json.Marshal(errorEnvelope{Error: errorBody{Code: e.code, Message: e.message, Details: e.details}})
	if err != nil {
		// Details can in principle hold unmarshalable values; degrade
		// to a detail-less envelope rather than failing the error path.
		body, _ = json.Marshal(errorEnvelope{Error: errorBody{Code: e.code, Message: e.message}})
	}
	return body
}

// StatusForCode maps a facade error code to the HTTP status the /v2
// surface uses — exported for the cluster router, whose error
// responses must be byte- and status-identical to a monolithic
// server's.
func StatusForCode(code ncexplorer.ErrorCode) int { return statusForCode(code) }

// MarshalErrorEnvelope renders the shared /v2 error envelope — the
// router counterpart of writeAPIError.
func MarshalErrorEnvelope(code ncexplorer.ErrorCode, message string, details map[string]any) []byte {
	return marshalAPIError(&apiError{code: code, message: message, details: details})
}

// writeAPIError writes the envelope with its status.
func (s *Server) writeAPIError(w http.ResponseWriter, e *apiError) {
	s.errors.Add(1)
	s.writeBody(w, e.status, marshalAPIError(e))
}

// v2QueryRequest is the body of the typed query endpoints (and of the
// per-item entries in /v2/batch and the session navigation calls).
type v2QueryRequest struct {
	Concepts []string              `json:"concepts"`
	K        int                   `json:"k"`
	Offset   int                   `json:"offset"`
	Sources  []string              `json:"sources"`
	MinScore float64               `json:"min_score"`
	Time     *ncexplorer.TimeRange `json:"time_range"`
	GroupBy  string                `json:"group_by"`
	Explain  bool                  `json:"explain"`
}

// normalizeV2 applies the HTTP-layer page-size conventions: an absent
// k (0) means the default page size, matching /v1, and k is clamped
// to MaxK. Everything that can be *invalid* (negative k, offset or
// min_score, empty or unknown concepts, unknown sources) is left to
// the facade, whose typed errors map onto the envelope — one
// validation rulebook instead of two that drift.
func (s *Server) normalizeV2(q *v2QueryRequest) {
	if q.K == 0 {
		q.K = defaultK
	}
	if q.K > s.opts.MaxK {
		q.K = s.opts.MaxK
	}
}

// decodeV2 parses a JSON body into v, mapping failures to the
// structured envelope. An entirely empty body decodes as the
// all-defaults request — the session navigation endpoints make every
// field optional, so a body-free POST is a documented call shape
// (truncated JSON still fails: that surfaces as ErrUnexpectedEOF, not
// EOF).
func decodeV2(w http.ResponseWriter, r *http.Request, v any) *apiError {
	return decodeV2Limit(w, r, v, maxBodyBytes)
}

// decodeV2Limit is decodeV2 with a caller-chosen body cap (the ingest
// endpoint accepts much larger payloads than the query endpoints).
func decodeV2Limit(w http.ResponseWriter, r *http.Request, v any, limit int64) *apiError {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			return nil
		}
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &apiError{
				status:  http.StatusRequestEntityTooLarge,
				code:    ncexplorer.CodeInvalidArgument,
				message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			}
		}
		return invalidArgument("malformed request body: %v", err)
	}
	return nil
}

// doCached runs a fill through the singleflight result cache under
// the caller's context. Coalescing has a sharp edge here: a waiter
// piggybacks on whichever request filled first, and if *that* client
// disconnects mid-query its context error propagates to every waiter.
// So on a cancellation-shaped error we retry while our own context is
// still live — the poisoned in-flight call has already completed, and
// the retry either hits a healthy fill or becomes the filler with a
// live context. Bounded, since each retry can only lose the race to
// another dying request.
func (s *Server) doCached(ctx context.Context, key string, fill func() (any, error)) (any, bool, error) {
	key = s.epochKey(key)
	const maxRetries = 2
	for attempt := 0; ; attempt++ {
		v, hit, err := s.cache.Do(key, fill)
		if err != nil && attempt < maxRetries && ctx.Err() == nil {
			if e, ok := ncexplorer.AsError(err); ok &&
				(e.Code == ncexplorer.CodeCancelled || e.Code == ncexplorer.CodeDeadlineExceeded) {
				continue
			}
		}
		return v, hit, err
	}
}

// execRollUpV2 runs a normalized typed roll-up through the result
// cache, returning the marshaled body. Batch items and session
// navigation share this path, so their payloads are byte-identical to
// the single-call endpoint's.
func (s *Server) execRollUpV2(ctx context.Context, q v2QueryRequest) ([]byte, bool, *apiError) {
	req := ncexplorer.RollUpRequest{
		Concepts: q.Concepts, K: q.K, Offset: q.Offset,
		Sources: q.Sources, MinScore: q.MinScore,
		Time: q.Time, GroupBy: q.GroupBy, Explain: q.Explain,
	}
	v, hit, err := s.doCached(ctx, req.Key(), func() (any, error) {
		res, err := s.explorer().RollUpQuery(ctx, req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
	if err != nil {
		return nil, false, apiErrorFrom(err)
	}
	return v.([]byte), hit, nil
}

// execDrillDownV2 is the drill-down analogue of execRollUpV2.
func (s *Server) execDrillDownV2(ctx context.Context, q v2QueryRequest) ([]byte, bool, *apiError) {
	if len(q.Sources) > 0 {
		return nil, false, invalidArgument("drilldown does not accept a sources filter")
	}
	if q.GroupBy != "" {
		return nil, false, invalidArgument("drilldown does not accept group_by")
	}
	req := ncexplorer.DrillDownRequest{
		Concepts: q.Concepts, K: q.K, Offset: q.Offset,
		MinScore: q.MinScore, Time: q.Time, Explain: q.Explain,
	}
	v, hit, err := s.doCached(ctx, req.Key(), func() (any, error) {
		res, err := s.explorer().DrillDownQuery(ctx, req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
	if err != nil {
		return nil, false, apiErrorFrom(err)
	}
	return v.([]byte), hit, nil
}

// execV2 dispatches one typed query by operation name.
func (s *Server) execV2(ctx context.Context, op string, q v2QueryRequest) ([]byte, bool, *apiError) {
	s.normalizeV2(&q)
	switch op {
	case "rollup":
		return s.execRollUpV2(ctx, q)
	case "drilldown":
		return s.execDrillDownV2(ctx, q)
	default:
		return nil, false, invalidArgument("unknown op %q (want \"rollup\" or \"drilldown\")", op)
	}
}

// handleQueryV2 returns the handler for one typed query endpoint.
func (s *Server) handleQueryV2(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var q v2QueryRequest
		if aerr := decodeV2(w, r, &q); aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		body, hit, aerr := s.execV2(r.Context(), op, q)
		if aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		if hit {
			w.Header().Set("X-Cache", "HIT")
		} else {
			w.Header().Set("X-Cache", "MISS")
		}
		s.writeBody(w, http.StatusOK, body)
	}
}

// batchRequest is the /v2/batch body: N independent typed queries.
type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

// batchQuery is one batch entry: an op plus the typed request fields.
type batchQuery struct {
	Op string `json:"op"`
	v2QueryRequest
}

// batchResponse returns one result slot per query, in request order.
// A slot holds either the op's result object (byte-identical to the
// single-call endpoint) or an error envelope; one bad query never
// fails its siblings.
type batchResponse struct {
	Count   int               `json:"count"`
	Results []json.RawMessage `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if aerr := decodeV2(w, r, &req); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	if len(req.Queries) == 0 {
		s.writeAPIError(w, invalidArgument("empty batch"))
		return
	}
	if len(req.Queries) > s.opts.MaxBatch {
		s.writeAPIError(w, invalidArgument("batch of %d queries exceeds the maximum of %d",
			len(req.Queries), s.opts.MaxBatch))
		return
	}
	// Fan out under the engine's worker budget: batch-level parallelism
	// composes with the engine's own intra-query helpers through the
	// engine-wide semaphore, so a big batch cannot oversubscribe the
	// scheduler.
	results := make([]json.RawMessage, len(req.Queries))
	sem := make(chan struct{}, s.explorer().Parallelism())
	var wg sync.WaitGroup
	for i, q := range req.Queries {
		wg.Add(1)
		go func(i int, q batchQuery) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			body, _, aerr := s.execV2(r.Context(), q.Op, q.v2QueryRequest)
			if aerr != nil {
				// Count item-level failures like whole-request ones so
				// /statsz error monitoring sees them.
				s.errors.Add(1)
				body = marshalAPIError(aerr)
			}
			results[i] = body
		}(i, q)
	}
	wg.Wait()
	s.writeJSON(w, http.StatusOK, batchResponse{Count: len(results), Results: results})
}

// methodNotAllowedV2 answers a known /v2 path hit with the wrong
// method, using the structured envelope.
func (s *Server) methodNotAllowedV2(allow string) http.HandlerFunc {
	return s.counted("other", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		s.writeAPIError(w, &apiError{
			status:  http.StatusMethodNotAllowed,
			code:    ncexplorer.CodeInvalidArgument,
			message: fmt.Sprintf("method %s not allowed (want %s)", r.Method, allow),
		})
	})
}
