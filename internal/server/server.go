// Package server exposes an Explorer over HTTP/JSON — the serving
// subsystem that turns the in-process NCExplorer facade into the
// interactive, programmable API the paper's analysts (and downstream
// risk pipelines) hit in real time.
//
// Endpoints:
//
//	POST /v1/rollup               {"concepts": [...], "k": 10} → ranked articles
//	POST /v1/drilldown            {"concepts": [...], "k": 10} → ranked subtopics
//	GET  /v1/concepts/{entity}    roll-up options for an entity
//	GET  /v1/broader/{concept}    the next roll-up level
//	GET  /v1/keywords/{concept}   amplified keyword list (?n=10)
//	GET  /v1/topics               the paper's six evaluation queries
//	POST /v2/query/rollup         typed request: pagination (offset),
//	                              source/min-score filters, explain toggle
//	POST /v2/query/drilldown      typed drill-down request
//	POST /v2/batch                N typed queries in one POST, executed
//	                              under the engine's bounded parallelism
//	POST /v2/ingest               live ingestion: index a batch of raw
//	                              articles and publish the next index
//	                              generation (requires EnableIngest;
//	                              see ingest.go)
//	     /v2/sessions...          exploration sessions: CRUD plus
//	                              rollup/drilldown/back navigation that
//	                              mutates the current concept pattern
//	                              (see sessions.go)
//	     /v2/watchlists...        standing queries: register concept
//	                              patterns evaluated at ingest time,
//	                              with SSE alert streams and webhook
//	                              delivery (see watch.go)
//	GET  /healthz                 liveness + world summary
//	GET  /statsz                  index (incl. generation, per-segment
//	                              doc counts, ingest throughput), cache,
//	                              session, and request counters;
//	                              index.engine_cache reports the
//	                              engine's sharded memo caches and
//	                              index.watch the standing-query
//	                              counters
//
// Roll-up and drill-down responses are served through a sharded LRU
// cache (internal/qcache) keyed by the canonicalized concept set and
// k, scoped to the explorer's query epoch: the marshaled JSON body
// itself is cached, so a hit is byte-identical to the miss that
// populated it, and concurrent identical queries are coalesced into
// one engine call. When an ingest (or a cache reset) changes what
// queries return, the epoch advances and every retained body becomes
// unreachable by key — generation-tagged invalidation instead of a
// stop-the-world flush. The X-Cache response header reports HIT or
// MISS per request.
//
// Errors are JSON too. The /v1 routes keep their original flat shape
// {"error": "..."} byte-for-byte; every /v2 route shares the
// structured envelope {"error": {"code", "message", "details"}} with
// typed codes (unknown_concept errors carry nearest-concept
// suggestions in details.suggestions). See DESIGN.md §5 for the
// versioning contract.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ncexplorer"
	"ncexplorer/internal/qcache"
	"ncexplorer/internal/session"
)

// Options configures a Server. The zero value enables a 8-shard,
// 256-entries-per-shard cache, k clamped to 100, a 64-query batch
// cap, and 30-minute exploration sessions.
type Options struct {
	// CacheShards is the shard count of the result cache (default 8).
	CacheShards int
	// CacheCapacity is the per-shard entry capacity (default 256).
	// Negative disables result caching; singleflight coalescing of
	// concurrent identical queries still applies.
	CacheCapacity int
	// MaxK caps the k accepted by query endpoints (default 100).
	MaxK int
	// MaxBatch caps the queries accepted per /v2/batch call
	// (default 64).
	MaxBatch int
	// SessionTTL is how long an exploration session survives without
	// being touched (default 30m).
	SessionTTL time.Duration
	// MaxSessions bounds live exploration sessions; creation beyond it
	// evicts the least-recently-used session (default 1024).
	MaxSessions int
	// EnableIngest exposes POST /v2/ingest. Off by default: ingestion
	// is a write path and deployments must opt in.
	EnableIngest bool
	// MaxIngestBatch caps the articles accepted per /v2/ingest call
	// (default 1024).
	MaxIngestBatch int
	// Clock supplies the session store's time source (tests inject a
	// fake one; default time.Now).
	Clock func() time.Time
	// ClusterDataDir, when set, exposes the segment-shipping endpoints
	// (GET /internal/manifest, GET /internal/segments/{name}) serving
	// that snapshot directory — a leader publishing its store, or a
	// replica daisy-chaining the one it fetched.
	ClusterDataDir string
	// EnableCluster exposes the internal scatter/gather surface: the
	// shard statistics exchange (GET /internal/stats, POST
	// /internal/remote-stats) and the exact-merge query endpoints
	// (POST /internal/query/...). Off by default; these endpoints are
	// trusted-peer APIs, not public ones.
	EnableCluster bool
}

func (o Options) withDefaults() Options {
	if o.CacheShards == 0 {
		o.CacheShards = 8
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 256
	}
	if o.MaxK <= 0 {
		o.MaxK = 100
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxIngestBatch <= 0 {
		o.MaxIngestBatch = 1024
	}
	return o
}

// defaultK is the page size applied when a query body omits k.
const defaultK = 10

// routes enumerated for per-endpoint request counters, in /statsz
// display order; "other" counts unknown paths and wrong-method
// requests.
var routes = []string{
	"rollup", "drilldown", "concepts", "broader", "keywords",
	"topics", "v2rollup", "v2drilldown", "v2batch", "v2sessions",
	"v2ingest", "v2watchlists", "internal", "healthz", "statsz", "other",
}

// Server is the HTTP serving layer over an Explorer. Safe for
// concurrent use; construct with New.
type Server struct {
	// x is the serving explorer, behind an atomic pointer so a replica
	// can swap in a freshly caught-up generation while requests are in
	// flight. It is nil on a replica that has not completed its first
	// catch-up; the readiness gate answers 503 until then.
	x        atomic.Pointer[ncexplorer.Explorer]
	cache    *qcache.Cache
	sessions *session.Store
	mux      *http.ServeMux
	opts     Options
	started  time.Time

	// swapSeq counts explorer swaps; epochKey folds it in so result-cache
	// keys from one explorer instance can never collide with another's
	// (two instances may report equal query epochs).
	swapSeq atomic.Uint64
	// syncing holds the replica catch-up state the readiness gate and
	// /healthz report; nil means serving normally.
	syncing atomic.Pointer[syncState]
	// clusterInfo, when set, supplies the /statsz cluster section.
	clusterInfo atomic.Pointer[func() *ClusterInfo]

	total   atomic.Int64
	errors  atomic.Int64
	byRoute map[string]*atomic.Int64

	// streamStop, when closed, ends every live SSE stream; graceful
	// shutdown closes it (StopStreams) before http.Server.Shutdown so
	// open streams don't hold the drain until its deadline.
	streamStop      chan struct{}
	stopStreamsOnce sync.Once
}

// syncState is a replica's catch-up position: the generation it is
// serving (0 if none yet) and the leader generation it is chasing.
type syncState struct {
	Generation uint64
	Target     uint64
}

// explorer returns the currently serving explorer; nil while a replica
// has not completed its first catch-up (the readiness gate keeps such
// requests from reaching handlers).
func (s *Server) explorer() *ncexplorer.Explorer { return s.x.Load() }

// SetExplorer atomically swaps the serving explorer — how a replica
// publishes a freshly opened generation while requests are in flight.
// In-flight requests finish against the explorer they loaded; new
// requests see the new one. The swap sequence feeds cache keys, so
// bodies cached against the old instance become unreachable.
func (s *Server) SetExplorer(x *ncexplorer.Explorer) {
	s.swapSeq.Add(1)
	s.x.Store(x)
}

// SetSyncState publishes a replica's catch-up position. While syncing
// is true every endpoint answers 503 with a
// {"state":"syncing","generation":N,"target":M} body (routers use this
// to exclude the replica); syncing=false restores normal serving.
func (s *Server) SetSyncState(generation, target uint64, syncing bool) {
	if syncing {
		s.syncing.Store(&syncState{Generation: generation, Target: target})
	} else {
		s.syncing.Store(nil)
	}
}

// ClusterInfo is the /statsz cluster section: the node's role and
// shard position, its replication lag, and segment-shipping counters.
type ClusterInfo struct {
	Role             string `json:"role"`
	Shard            int    `json:"shard"`
	ShardCount       int    `json:"shard_count"`
	Generation       uint64 `json:"generation"`
	TargetGeneration uint64 `json:"target_generation,omitempty"`
	GenerationLag    int64  `json:"generation_lag"`
	ManifestPolls    int64  `json:"manifest_polls,omitempty"`
	SegmentsFetched  int64  `json:"segments_fetched,omitempty"`
	SegmentsReused   int64  `json:"segments_reused,omitempty"`
	BytesShipped     int64  `json:"bytes_shipped,omitempty"`
}

// SetClusterInfo installs the provider behind /statsz's cluster
// section (nil provider or nil result omits the section).
func (s *Server) SetClusterInfo(provider func() *ClusterInfo) {
	if provider != nil {
		s.clusterInfo.Store(&provider)
	}
}

// New wires the handlers, cache, and session store around an indexed
// Explorer. x may be nil for a replica booting ahead of its first
// catch-up: the readiness gate answers 503 until SetExplorer installs
// one.
func New(x *ncexplorer.Explorer, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		cache: qcache.New(opts.CacheShards, opts.CacheCapacity),
		sessions: session.NewStore(session.Options{
			TTL:         opts.SessionTTL,
			MaxSessions: opts.MaxSessions,
			Now:         opts.Clock,
		}),
		mux:        http.NewServeMux(),
		opts:       opts,
		started:    time.Now(),
		byRoute:    make(map[string]*atomic.Int64, len(routes)),
		streamStop: make(chan struct{}),
	}
	if x != nil {
		s.x.Store(x)
	}
	for _, r := range routes {
		s.byRoute[r] = new(atomic.Int64)
	}
	s.registerInternal()
	s.mux.HandleFunc("POST /v1/rollup", s.counted("rollup", s.handleRollUp))
	s.mux.HandleFunc("POST /v1/drilldown", s.counted("drilldown", s.handleDrillDown))
	s.mux.HandleFunc("GET /v1/concepts/{entity}", s.counted("concepts", s.handleConcepts))
	s.mux.HandleFunc("GET /v1/broader/{concept}", s.counted("broader", s.handleBroader))
	s.mux.HandleFunc("GET /v1/keywords/{concept}", s.counted("keywords", s.handleKeywords))
	s.mux.HandleFunc("GET /v1/topics", s.counted("topics", s.handleTopics))
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /statsz", s.counted("statsz", s.handleStatsz))

	// v2: typed queries, batch, exploration sessions (see v2.go and
	// sessions.go).
	s.mux.HandleFunc("POST /v2/query/rollup", s.counted("v2rollup", s.handleQueryV2("rollup")))
	s.mux.HandleFunc("POST /v2/query/drilldown", s.counted("v2drilldown", s.handleQueryV2("drilldown")))
	s.mux.HandleFunc("POST /v2/batch", s.counted("v2batch", s.handleBatch))
	s.mux.HandleFunc("POST /v2/ingest", s.counted("v2ingest", s.handleIngest))
	s.mux.HandleFunc("POST /v2/sessions", s.counted("v2sessions", s.handleSessionCreate))
	s.mux.HandleFunc("GET /v2/sessions", s.counted("v2sessions", s.handleSessionList))
	s.mux.HandleFunc("GET /v2/sessions/{id}", s.counted("v2sessions", s.handleSessionGet))
	s.mux.HandleFunc("DELETE /v2/sessions/{id}", s.counted("v2sessions", s.handleSessionDelete))
	s.mux.HandleFunc("POST /v2/sessions/{id}/rollup", s.counted("v2sessions", s.handleSessionRollUp))
	s.mux.HandleFunc("POST /v2/sessions/{id}/drilldown", s.counted("v2sessions", s.handleSessionDrillDown))
	s.mux.HandleFunc("POST /v2/sessions/{id}/zoom", s.counted("v2sessions", s.handleSessionZoom))
	s.mux.HandleFunc("POST /v2/sessions/{id}/back", s.counted("v2sessions", s.handleSessionBack))

	// Watchlists: standing queries with SSE alert streams (see watch.go).
	s.mux.HandleFunc("POST /v2/watchlists", s.counted("v2watchlists", s.handleWatchlistCreate))
	s.mux.HandleFunc("GET /v2/watchlists", s.counted("v2watchlists", s.handleWatchlistList))
	s.mux.HandleFunc("GET /v2/watchlists/{id}", s.counted("v2watchlists", s.handleWatchlistGet))
	s.mux.HandleFunc("DELETE /v2/watchlists/{id}", s.counted("v2watchlists", s.handleWatchlistDelete))
	s.mux.HandleFunc("GET /v2/watchlists/{id}/events", s.counted("v2watchlists", s.handleWatchlistEvents))

	// Method-less fallbacks (the method-specific patterns above win
	// when they match) and a catch-all, so wrong-method and
	// unknown-path responses are JSON and counted like everything
	// else rather than ServeMux's plain-text defaults.
	for pattern, allow := range map[string]string{
		"/v1/rollup":             "POST",
		"/v1/drilldown":          "POST",
		"/v1/concepts/{entity}":  "GET",
		"/v1/broader/{concept}":  "GET",
		"/v1/keywords/{concept}": "GET",
		"/v1/topics":             "GET",
		"/healthz":               "GET",
		"/statsz":                "GET",
	} {
		s.mux.HandleFunc(pattern, s.methodNotAllowed(allow))
	}
	for pattern, allow := range map[string]string{
		"/v2/query/rollup":            "POST",
		"/v2/query/drilldown":         "POST",
		"/v2/batch":                   "POST",
		"/v2/ingest":                  "POST",
		"/v2/sessions":                "GET, POST",
		"/v2/sessions/{id}":           "GET, DELETE",
		"/v2/sessions/{id}/rollup":    "POST",
		"/v2/sessions/{id}/drilldown": "POST",
		"/v2/sessions/{id}/zoom":      "POST",
		"/v2/sessions/{id}/back":      "POST",
		"/v2/watchlists":              "GET, POST",
		"/v2/watchlists/{id}":         "GET, DELETE",
		"/v2/watchlists/{id}/events":  "GET",
	} {
		s.mux.HandleFunc(pattern, s.methodNotAllowedV2(allow))
	}
	// Unknown /v2 paths get the structured envelope; everything else
	// keeps the v1-era flat error shape.
	s.mux.HandleFunc("/v2/", s.counted("other", func(w http.ResponseWriter, r *http.Request) {
		s.writeAPIError(w, &apiError{
			status:  http.StatusNotFound,
			code:    ncexplorer.CodeNotFound,
			message: fmt.Sprintf("unknown path %q", r.URL.Path),
		})
	}))
	s.mux.HandleFunc("/", s.counted("other", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown path %q", r.URL.Path))
	}))
	return s
}

// methodNotAllowed answers a known path hit with the wrong method.
func (s *Server) methodNotAllowed(allow string) http.HandlerFunc {
	return s.counted("other", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		s.writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("method %s not allowed (want %s)", r.Method, allow))
	})
}

// Handler returns the root http.Handler: the mux behind the readiness
// gate. A server with no explorer yet (replica pre-first-catch-up) or
// one explicitly marked syncing answers 503 with the syncing body on
// every route — /healthz included, which is how routers and load
// balancers exclude the node — except the /internal/ shipping and
// stats surface, which must stay reachable so peers can keep feeding
// the node the very data it is syncing.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/internal/") {
			st := s.syncing.Load()
			if st == nil && s.explorer() == nil {
				st = &syncState{}
			}
			if st != nil {
				s.writeSyncing(w, st)
				return
			}
		}
		s.mux.ServeHTTP(w, r)
	})
}

// writeSyncing answers a request refused by the readiness gate.
func (s *Server) writeSyncing(w http.ResponseWriter, st *syncState) {
	s.total.Add(1)
	body, _ := json.Marshal(map[string]any{
		"state":      "syncing",
		"generation": st.Generation,
		"target":     st.Target,
	})
	s.writeBody(w, http.StatusServiceUnavailable, body)
}

// CacheStats exposes the result cache counters (for tests and ops).
func (s *Server) CacheStats() qcache.Stats { return s.cache.Stats() }

func (s *Server) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	n := s.byRoute[route]
	return func(w http.ResponseWriter, r *http.Request) {
		s.total.Add(1)
		n.Add(1)
		h(w, r)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %w", err))
		return
	}
	s.writeBody(w, status, body)
}

func (s *Server) writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	s.writeBody(w, status, body)
}

// queryRequest is the body of the two POST query endpoints.
type queryRequest struct {
	Concepts []string `json:"concepts"`
	K        int      `json:"k"`
}

// maxBodyBytes bounds query request bodies; concept queries are a few
// names, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// decodeQuery parses and validates a query body, returning the
// canonicalized concept set and clamped k.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) ([]string, int, bool) {
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return nil, 0, false
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return nil, 0, false
	}
	concepts := ncexplorer.CanonicalConcepts(req.Concepts)
	if len(concepts) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("empty concept query"))
		return nil, 0, false
	}
	k := req.K
	if k < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid k %d: want a positive integer", k))
		return nil, 0, false
	}
	if k == 0 { // absent from the body
		k = defaultK
	}
	if k > s.opts.MaxK {
		k = s.opts.MaxK
	}
	return concepts, k, true
}

// clientError marks a fill failure caused by the request (unknown
// concept, invalid query) rather than by the server; serveCached maps
// it to 400 and everything else to 500.
type clientError struct{ err error }

func (e clientError) Error() string { return e.err.Error() }
func (e clientError) Unwrap() error { return e.err }

// epochKey scopes a result-cache key to the explorer's current query
// epoch. The epoch advances on every ingested batch and every
// ResetQueryCaches call, so entries cached under an older epoch become
// unreachable the instant the index changes — stale bodies are never
// served and nothing is flushed (old entries simply age out of the
// LRU). This is also what keeps the HTTP cache coherent with the
// engine's own memo caches: both invalidate off the same event.
func (s *Server) epochKey(key string) string {
	return "w" + strconv.FormatUint(s.swapSeq.Load(), 36) +
		"e" + strconv.FormatUint(s.explorer().QueryEpoch(), 36) + "|" + key
}

// serveCached answers a query endpoint through the result cache: on a
// miss, fill runs the engine and the marshaled body is retained so
// every later hit is byte-identical. Keys are epoch-scoped (see
// epochKey).
func (s *Server) serveCached(w http.ResponseWriter, key string, fill func() (any, error)) {
	v, hit, err := s.cache.Do(s.epochKey(key), fill)
	if err != nil {
		var ce clientError
		if errors.As(err, &ce) {
			s.writeError(w, http.StatusBadRequest, ce.err)
		} else {
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	s.writeBody(w, http.StatusOK, v.([]byte))
}

type rollUpResponse struct {
	Query    []string             `json:"query"`
	K        int                  `json:"k"`
	Count    int                  `json:"count"`
	Articles []ncexplorer.Article `json:"articles"`
}

func (s *Server) handleRollUp(w http.ResponseWriter, r *http.Request) {
	concepts, k, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	s.serveCached(w, ncexplorer.QueryKey("rollup", concepts, k), func() (any, error) {
		articles, err := s.explorer().RollUp(concepts, k)
		if err != nil {
			return nil, clientError{err}
		}
		if articles == nil {
			articles = []ncexplorer.Article{}
		}
		return json.Marshal(rollUpResponse{Query: concepts, K: k, Count: len(articles), Articles: articles})
	})
}

type drillDownResponse struct {
	Query       []string                        `json:"query"`
	K           int                             `json:"k"`
	Count       int                             `json:"count"`
	Suggestions []ncexplorer.SubtopicSuggestion `json:"suggestions"`
}

func (s *Server) handleDrillDown(w http.ResponseWriter, r *http.Request) {
	concepts, k, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	s.serveCached(w, ncexplorer.QueryKey("drilldown", concepts, k), func() (any, error) {
		subs, err := s.explorer().DrillDown(concepts, k)
		if err != nil {
			return nil, clientError{err}
		}
		if subs == nil {
			subs = []ncexplorer.SubtopicSuggestion{}
		}
		return json.Marshal(drillDownResponse{Query: concepts, K: k, Count: len(subs), Suggestions: subs})
	})
}

func (s *Server) handleConcepts(w http.ResponseWriter, r *http.Request) {
	entity := r.PathValue("entity")
	concepts, err := s.explorer().ConceptsForEntity(entity)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if concepts == nil {
		concepts = []string{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"entity": entity, "concepts": concepts})
}

func (s *Server) handleBroader(w http.ResponseWriter, r *http.Request) {
	concept := r.PathValue("concept")
	broader, err := s.explorer().BroaderConcepts(concept)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if broader == nil {
		broader = []string{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"concept": concept, "broader": broader})
}

func (s *Server) handleKeywords(w http.ResponseWriter, r *http.Request) {
	concept := r.PathValue("concept")
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid n %q: want a positive integer", raw))
			return
		}
		n = v
	}
	// Clamp like k on the query endpoints (the default too, in case
	// MaxK < 10): the top-k collector pre-allocates n slots, so an
	// unbounded n is an OOM lever.
	if n > s.opts.MaxK {
		n = s.opts.MaxK
	}
	keywords, err := s.explorer().TopicKeywords(concept, n)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if keywords == nil {
		keywords = []string{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"concept": concept, "keywords": keywords})
}

type topicResponse struct {
	Concept string `json:"concept"`
	Group   string `json:"group"`
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	topics := make([]topicResponse, 0, 6)
	for _, t := range s.explorer().EvaluationTopics() {
		topics = append(topics, topicResponse{Concept: t[0], Group: t[1]})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"topics": topics})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"articles":       s.explorer().NumArticles(),
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// statszResponse is the /statsz payload: world dimensions, cache
// effectiveness, session occupancy, and request counters.
type statszResponse struct {
	Index    ncexplorer.Stats `json:"index"`
	Cache    qcache.Stats     `json:"cache"`
	Sessions sessionStats     `json:"sessions"`
	Requests requestStats     `json:"requests"`
	Cluster  *ClusterInfo     `json:"cluster,omitempty"`
	Uptime   float64          `json:"uptime_seconds"`
}

type sessionStats struct {
	Live int `json:"live"`
}

type requestStats struct {
	Total   int64            `json:"total"`
	Errors  int64            `json:"errors"`
	ByRoute map[string]int64 `json:"by_route"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	by := make(map[string]int64, len(routes))
	for _, route := range routes {
		by[route] = s.byRoute[route].Load()
	}
	resp := statszResponse{
		Index:    s.explorer().Stats(),
		Cache:    s.cache.Stats(),
		Sessions: sessionStats{Live: s.sessions.Len()},
		Requests: requestStats{
			Total:   s.total.Load(),
			Errors:  s.errors.Load(),
			ByRoute: by,
		},
		Uptime: time.Since(s.started).Seconds(),
	}
	if p := s.clusterInfo.Load(); p != nil {
		resp.Cluster = (*p)()
	}
	s.writeJSON(w, http.StatusOK, resp)
}
