// Internal cluster surface: the trusted-peer endpoints behind
// multi-node serving. Two groups, separately gated by Options:
//
// Segment shipping (ClusterDataDir set) — how replicas replicate:
//
//	GET /internal/manifest         the snapshot directory's MANIFEST,
//	                               verbatim
//	GET /internal/segments/{name}  one immutable content-addressed file
//	                               (segment, conn-memo, or watch state),
//	                               with Range support so an interrupted
//	                               fetch resumes
//
// Scatter/gather (EnableCluster) — how a router queries shards and
// keeps their IDF corpus-global:
//
//	GET  /internal/stats                     this shard's term statistics
//	                                         (fold into peers' remote stats)
//	POST /internal/remote-stats              replace the peers' folded-in
//	                                         statistics (leaders only —
//	                                         replicas inherit via shipping)
//	POST /internal/query/rollup              typed roll-up, k uncapped
//	                                         (the router asks for k+offset)
//	POST /internal/query/drilldown-partials  raw drill-down accumulation
//	                                         rows (core.DrillDownPartial)
//	POST /internal/query/diversity           per-concept distinct-entity
//	                                         sets for a shortlist
//
// None of these are public APIs: no k clamping, no canonicalization
// beyond what correctness needs — the router is the trusted caller and
// has already validated at its own edge. The readiness gate exempts
// /internal/ so a syncing node keeps shipping data, but the query
// endpoints below still refuse (503 syncing) while no explorer is
// installed.
package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"ncexplorer"
	"ncexplorer/internal/core"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/segio"
)

// registerInternal wires whichever internal endpoint groups the
// options enable. Called from New.
func (s *Server) registerInternal() {
	if s.opts.ClusterDataDir != "" {
		s.mux.HandleFunc("GET /internal/manifest", s.counted("internal", s.handleManifest))
		s.mux.HandleFunc("GET /internal/segments/{name}", s.counted("internal", s.handleSegment))
	}
	if s.opts.EnableCluster {
		s.mux.HandleFunc("GET /internal/stats", s.counted("internal", s.handleShardStats))
		s.mux.HandleFunc("POST /internal/remote-stats", s.counted("internal", s.handleRemoteStats))
		s.mux.HandleFunc("POST /internal/query/rollup", s.counted("internal", s.handleInternalRollUp))
		s.mux.HandleFunc("POST /internal/query/drilldown-partials", s.counted("internal", s.handleInternalDrillDownPartials))
		s.mux.HandleFunc("POST /internal/query/diversity", s.counted("internal", s.handleInternalDiversity))
	}
}

// handleManifest serves the snapshot manifest verbatim. Replicas parse
// and validate it client-side (segio.ParseManifest) before trusting
// any reference in it.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	data, err := os.ReadFile(filepath.Join(s.opts.ClusterDataDir, segio.ManifestName))
	if err != nil {
		s.writeAPIError(w, &apiError{
			status: http.StatusNotFound, code: ncexplorer.CodeNotFound,
			message: "no snapshot manifest to ship yet",
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleSegment serves one immutable snapshot file. Only bare
// content-addressed names with the three known extensions are
// accepted; http.ServeFile supplies Range handling, which is what
// makes interrupted segment fetches resumable.
func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name != filepath.Base(name) || name == "" || strings.Contains(name, "..") ||
		!(strings.HasSuffix(name, segio.SegmentExt) ||
			strings.HasSuffix(name, segio.ConnExt) ||
			strings.HasSuffix(name, segio.WatchExt)) {
		s.writeAPIError(w, &apiError{
			status: http.StatusBadRequest, code: ncexplorer.CodeInvalidArgument,
			message: "invalid snapshot file name",
		})
		return
	}
	http.ServeFile(w, r, filepath.Join(s.opts.ClusterDataDir, name))
}

// internalExplorer fetches the serving explorer for an internal query
// handler, answering 503 syncing when none is installed yet (a replica
// racing its first catch-up).
func (s *Server) internalExplorer(w http.ResponseWriter) (*ncexplorer.Explorer, bool) {
	x := s.explorer()
	if x == nil {
		st := s.syncing.Load()
		if st == nil {
			st = &syncState{}
		}
		s.writeSyncing(w, st)
		return nil, false
	}
	return x, true
}

// shardStatsResponse is the GET /internal/stats payload: the node's
// shard position and the local term statistics peers fold in.
type shardStatsResponse struct {
	Shard      int             `json:"shard"`
	ShardCount int             `json:"shard_count"`
	Sharded    bool            `json:"sharded"`
	Generation uint64          `json:"generation"`
	Stats      core.ShardStats `json:"stats"`
}

func (s *Server) handleShardStats(w http.ResponseWriter, r *http.Request) {
	x, ok := s.internalExplorer(w)
	if !ok {
		return
	}
	idx, count, sharded := x.ShardInfo()
	s.writeJSON(w, http.StatusOK, shardStatsResponse{
		Shard: idx, ShardCount: count, Sharded: sharded,
		Generation: x.Generation(),
		Stats:      x.Engine().LocalStats(),
	})
}

func (s *Server) handleRemoteStats(w http.ResponseWriter, r *http.Request) {
	x, ok := s.internalExplorer(w)
	if !ok {
		return
	}
	var rs core.ShardStats
	if aerr := decodeV2(w, r, &rs); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	if err := x.Engine().SetRemoteStats(rs); err != nil {
		s.writeAPIError(w, &apiError{
			status: http.StatusBadRequest, code: ncexplorer.CodeInvalidArgument,
			message: err.Error(),
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"generation": x.Generation()})
}

// handleInternalRollUp executes a shard-local roll-up exactly as
// requested — no defaulting, no MaxK clamp: the router already
// clamped at the public edge and asks each shard for its local
// top-(k+offset) page. Bodies flow through the same result cache as
// the public endpoints, so repeated fan-outs of a hot query are
// byte-identical cache hits.
func (s *Server) handleInternalRollUp(w http.ResponseWriter, r *http.Request) {
	x, ok := s.internalExplorer(w)
	if !ok {
		return
	}
	var q v2QueryRequest
	if aerr := decodeV2(w, r, &q); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	req := ncexplorer.RollUpRequest{
		Concepts: q.Concepts, K: q.K, Offset: q.Offset,
		Sources: q.Sources, MinScore: q.MinScore, Explain: q.Explain,
		Time: q.Time, GroupBy: q.GroupBy,
	}
	v, _, err := s.doCached(r.Context(), "int|"+req.Key(), func() (any, error) {
		res, err := x.RollUpQuery(r.Context(), req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	s.writeBody(w, http.StatusOK, v.([]byte))
}

// internalConceptsRequest names the concepts of a scatter query; the
// router sends the canonicalized list, each shard resolves it against
// the shared deterministic graph.
type internalConceptsRequest struct {
	Concepts  []string              `json:"concepts"`
	Shortlist []kg.NodeID           `json:"shortlist,omitempty"`
	Time      *ncexplorer.TimeRange `json:"time_range,omitempty"`
}

func (s *Server) handleInternalDrillDownPartials(w http.ResponseWriter, r *http.Request) {
	x, ok := s.internalExplorer(w)
	if !ok {
		return
	}
	var req internalConceptsRequest
	if aerr := decodeV2(w, r, &req); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	q, err := x.ResolveConcepts(ncexplorer.CanonicalConcepts(req.Concepts))
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	tr, err := ncexplorer.ResolveTimeRange(req.Time)
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	part, err := x.Engine().DrillDownPartials(r.Context(), q, tr)
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(ncexplorer.WrapContextErr(err)))
		return
	}
	s.writeJSON(w, http.StatusOK, part)
}

func (s *Server) handleInternalDiversity(w http.ResponseWriter, r *http.Request) {
	x, ok := s.internalExplorer(w)
	if !ok {
		return
	}
	var req internalConceptsRequest
	if aerr := decodeV2(w, r, &req); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	q, err := x.ResolveConcepts(ncexplorer.CanonicalConcepts(req.Concepts))
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	tr, err := ncexplorer.ResolveTimeRange(req.Time)
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	part, err := x.Engine().DiversityPartials(r.Context(), q, req.Shortlist, tr)
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(ncexplorer.WrapContextErr(err)))
		return
	}
	s.writeJSON(w, http.StatusOK, part)
}
