package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ncexplorer"
	"ncexplorer/internal/server"
)

// v2Error decodes the structured envelope every /v2 endpoint shares.
type v2Error struct {
	Error struct {
		Code    string         `json:"code"`
		Message string         `json:"message"`
		Details map[string]any `json:"details"`
	} `json:"error"`
}

func wantV2Error(t *testing.T, rec *httptest.ResponseRecorder, status int, code string) v2Error {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d; want %d (body %q)", rec.Code, status, rec.Body.String())
	}
	var e v2Error
	decodeBody(t, rec, &e)
	if e.Error.Code != code {
		t.Fatalf("error code = %q; want %q (body %q)", e.Error.Code, code, rec.Body.String())
	}
	if e.Error.Message == "" {
		t.Fatalf("empty error message in %q", rec.Body.String())
	}
	return e
}

// rollUpPage decodes a /v2/query/rollup response.
type rollUpPage struct {
	Query      []string        `json:"query"`
	K          int             `json:"k"`
	Offset     int             `json:"offset"`
	Total      int             `json:"total"`
	NextOffset int             `json:"next_offset"`
	Articles   json.RawMessage `json:"articles"`
}

func postRollUpV2(t testing.TB, body any) *httptest.ResponseRecorder {
	return postJSON(t, "/v2/query/rollup", body)
}

func TestV2RollUpPagination(t *testing.T) {
	concepts := topicConcepts(t, 0)

	// One big page is the reference.
	recAll := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 6, "explain": true})
	if recAll.Code != http.StatusOK {
		t.Fatalf("status = %d; body %q", recAll.Code, recAll.Body.String())
	}
	var all rollUpPage
	decodeBody(t, recAll, &all)
	var allArticles []ncexplorer.Article
	if err := json.Unmarshal(all.Articles, &allArticles); err != nil {
		t.Fatal(err)
	}
	if len(allArticles) < 4 {
		t.Skipf("world too small for pagination test: %d articles", len(allArticles))
	}
	if all.Total < len(allArticles) {
		t.Fatalf("total %d < returned %d", all.Total, len(allArticles))
	}

	// Walk the same listing in pages of 2 and stitch.
	var stitched []ncexplorer.Article
	offset := 0
	for offset >= 0 && len(stitched) < len(allArticles) {
		rec := postRollUpV2(t, map[string]any{
			"concepts": concepts, "k": 2, "offset": offset, "explain": true,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("offset %d status = %d; body %q", offset, rec.Code, rec.Body.String())
		}
		var page rollUpPage
		decodeBody(t, rec, &page)
		if page.Total != all.Total {
			t.Fatalf("page total %d != reference total %d", page.Total, all.Total)
		}
		var arts []ncexplorer.Article
		if err := json.Unmarshal(page.Articles, &arts); err != nil {
			t.Fatal(err)
		}
		stitched = append(stitched, arts...)
		if page.NextOffset >= 0 && page.NextOffset != offset+len(arts) {
			t.Fatalf("next_offset = %d; want %d", page.NextOffset, offset+len(arts))
		}
		offset = page.NextOffset
	}
	for i := range allArticles {
		if i >= len(stitched) || stitched[i].ID != allArticles[i].ID {
			t.Fatalf("stitched pages diverge from the single page at rank %d", i)
		}
	}

	// An offset past the end returns an empty page and a -1 cursor —
	// including a hostile multi-billion offset, which must not turn
	// into a giant allocation.
	for _, off := range []int{100000, 2_000_000_000} {
		rec := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 3, "offset": off})
		if rec.Code != http.StatusOK {
			t.Fatalf("offset %d status = %d; body %q", off, rec.Code, rec.Body.String())
		}
		var past rollUpPage
		decodeBody(t, rec, &past)
		var pastArts []ncexplorer.Article
		json.Unmarshal(past.Articles, &pastArts)
		if len(pastArts) != 0 || past.NextOffset != -1 {
			t.Fatalf("offset %d: %d articles, next_offset %d", off, len(pastArts), past.NextOffset)
		}
	}
}

func TestV2RollUpFiltersAndExplain(t *testing.T) {
	concepts := topicConcepts(t, 1)
	rec := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 8, "sources": []string{"reuters"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d; body %q", rec.Code, rec.Body.String())
	}
	var page rollUpPage
	decodeBody(t, rec, &page)
	var arts []ncexplorer.Article
	if err := json.Unmarshal(page.Articles, &arts); err != nil {
		t.Fatal(err)
	}
	for _, a := range arts {
		if a.Source != "reuters" {
			t.Fatalf("source filter leaked article from %q", a.Source)
		}
		if len(a.Explanations) != 0 {
			t.Fatal("explain defaulted on: articles carry explanations")
		}
	}

	// min_score excludes everything below the floor and total reflects it.
	ref := postRollUpV2(t, map[string]any{"concepts": concepts, "k": 8, "explain": true})
	var refPage rollUpPage
	decodeBody(t, ref, &refPage)
	var refArts []ncexplorer.Article
	json.Unmarshal(refPage.Articles, &refArts)
	if len(refArts) < 2 {
		t.Skip("not enough articles to exercise min_score")
	}
	floor := refArts[1].Score
	rec = postRollUpV2(t, map[string]any{"concepts": concepts, "k": 8, "min_score": floor})
	var filtered rollUpPage
	decodeBody(t, rec, &filtered)
	var filteredArts []ncexplorer.Article
	json.Unmarshal(filtered.Articles, &filteredArts)
	for _, a := range filteredArts {
		if a.Score < floor {
			t.Fatalf("min_score %g leaked score %g", floor, a.Score)
		}
	}
	if filtered.Total >= refPage.Total {
		t.Fatalf("min_score did not reduce total: %d >= %d", filtered.Total, refPage.Total)
	}
}

func TestV2ErrorEnvelope(t *testing.T) {
	// Malformed body.
	req := httptest.NewRequest(http.MethodPost, "/v2/query/rollup", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	testServer(t).Handler().ServeHTTP(rec, req)
	wantV2Error(t, rec, http.StatusBadRequest, "invalid_argument")

	// Unknown concept carries nearest-concept suggestions. Use a
	// near-miss of a real concept so the suggester has something to say.
	real := topicConcepts(t, 0)[0]
	typo := real + "z"
	e := wantV2Error(t, postRollUpV2(t, map[string]any{"concepts": []string{typo}}),
		http.StatusBadRequest, "unknown_concept")
	sugg, ok := e.Error.Details["suggestions"].([]any)
	if !ok || len(sugg) == 0 {
		t.Fatalf("unknown_concept details lack suggestions: %v", e.Error.Details)
	}
	found := false
	for _, s := range sugg {
		if s == real {
			found = true
		}
	}
	if !found {
		t.Fatalf("suggestions %v do not include %q", sugg, real)
	}

	// Invalid paging and filter arguments.
	concepts := topicConcepts(t, 0)
	wantV2Error(t, postRollUpV2(t, map[string]any{"concepts": concepts, "k": -1}),
		http.StatusBadRequest, "invalid_argument")
	wantV2Error(t, postRollUpV2(t, map[string]any{"concepts": concepts, "offset": -2}),
		http.StatusBadRequest, "invalid_argument")
	wantV2Error(t, postRollUpV2(t, map[string]any{"concepts": concepts, "min_score": -0.5}),
		http.StatusBadRequest, "invalid_argument")
	wantV2Error(t, postRollUpV2(t, map[string]any{"concepts": []string{"", "  "}}),
		http.StatusBadRequest, "invalid_argument")

	// Unknown source names the valid ones.
	e = wantV2Error(t, postRollUpV2(t, map[string]any{"concepts": concepts, "sources": []string{"bbc"}}),
		http.StatusBadRequest, "invalid_argument")
	if _, ok := e.Error.Details["valid_sources"]; !ok {
		t.Fatalf("unknown source details lack valid_sources: %v", e.Error.Details)
	}

	// Unknown /v2 path and wrong method use the envelope too.
	wantV2Error(t, get(t, "/v2/nope"), http.StatusNotFound, "not_found")
	wantV2Error(t, get(t, "/v2/query/rollup"), http.StatusMethodNotAllowed, "invalid_argument")
}

func TestV2CancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	raw, _ := json.Marshal(map[string]any{
		// A fresh concept set so the result cannot already be cached.
		"concepts": topicConcepts(t, 2), "k": 17, "offset": 3,
	})
	req := httptest.NewRequest(http.MethodPost, "/v2/query/rollup", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()
	testServer(t).Handler().ServeHTTP(rec, req)
	wantV2Error(t, rec, 499, "cancelled")
}

// TestV1EnvelopeCompat pins the /v1 error shape — a flat string — so
// the structured v2 envelope cannot leak backwards.
func TestV1EnvelopeCompat(t *testing.T) {
	cases := []*httptest.ResponseRecorder{
		postJSON(t, "/v1/rollup", map[string]any{"concepts": []string{"No such concept zzz"}}),
		postJSON(t, "/v1/rollup", map[string]any{"concepts": topicConcepts(t, 0), "k": -5}),
		get(t, "/v1/keywords/whatever?n=0"),
		get(t, "/v1/keywords/whatever?n=-3"),
		get(t, "/v1/nope"),
	}
	for i, rec := range cases {
		if rec.Code == http.StatusOK {
			t.Fatalf("case %d unexpectedly succeeded", i)
		}
		var flat struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil || flat.Error == "" {
			t.Fatalf("case %d: /v1 error is not a flat string envelope: %q", i, rec.Body.String())
		}
	}
}

// TestBatchMatchesSequential is the acceptance check for /v2/batch:
// 8 mixed queries in one POST return exactly the payloads of 8
// sequential single calls.
func TestBatchMatchesSequential(t *testing.T) {
	var queries []map[string]any
	for i := 0; i < 4; i++ {
		c := topicConcepts(t, i)
		queries = append(queries,
			map[string]any{"op": "rollup", "concepts": c, "k": 3 + i, "explain": i%2 == 0},
			map[string]any{"op": "drilldown", "concepts": c[:1], "k": 4, "offset": i, "explain": true},
		)
	}

	// Sequential single calls first (also warms the cache the batch
	// must hit — byte-identity is the point).
	var want [][]byte
	for _, q := range queries {
		path := "/v2/query/" + q["op"].(string)
		rec := postJSON(t, path, q)
		if rec.Code != http.StatusOK {
			t.Fatalf("single %v status = %d; body %q", q, rec.Code, rec.Body.String())
		}
		want = append(want, bytes.TrimSuffix(rec.Body.Bytes(), []byte("\n")))
	}

	rec := postJSON(t, "/v2/batch", map[string]any{"queries": queries})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d; body %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Count   int               `json:"count"`
		Results []json.RawMessage `json:"results"`
	}
	decodeBody(t, rec, &resp)
	if resp.Count != len(queries) || len(resp.Results) != len(queries) {
		t.Fatalf("batch count = %d results = %d; want %d", resp.Count, len(resp.Results), len(queries))
	}
	for i := range queries {
		if !bytes.Equal(resp.Results[i], want[i]) {
			t.Fatalf("batch result %d differs from the single call:\nbatch:  %s\nsingle: %s",
				i, resp.Results[i], want[i])
		}
	}
}

func TestBatchPartialFailureAndLimits(t *testing.T) {
	c := topicConcepts(t, 0)
	rec := postJSON(t, "/v2/batch", map[string]any{"queries": []map[string]any{
		{"op": "rollup", "concepts": c, "k": 2},
		{"op": "rollup", "concepts": []string{"No such concept zzz"}},
		{"op": "frobnicate", "concepts": c},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d; body %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results []json.RawMessage `json:"results"`
	}
	decodeBody(t, rec, &resp)
	var page rollUpPage
	if err := json.Unmarshal(resp.Results[0], &page); err != nil || page.K != 2 {
		t.Fatalf("healthy sibling failed: %s", resp.Results[0])
	}
	var e1, e2 v2Error
	if err := json.Unmarshal(resp.Results[1], &e1); err != nil || e1.Error.Code != "unknown_concept" {
		t.Fatalf("item 1 = %s; want unknown_concept envelope", resp.Results[1])
	}
	if err := json.Unmarshal(resp.Results[2], &e2); err != nil || e2.Error.Code != "invalid_argument" {
		t.Fatalf("item 2 = %s; want invalid_argument envelope", resp.Results[2])
	}

	// Empty and oversized batches are rejected as a whole.
	wantV2Error(t, postJSON(t, "/v2/batch", map[string]any{"queries": []any{}}),
		http.StatusBadRequest, "invalid_argument")
	big := make([]map[string]any, 65)
	for i := range big {
		big[i] = map[string]any{"op": "rollup", "concepts": c}
	}
	wantV2Error(t, postJSON(t, "/v2/batch", map[string]any{"queries": big}),
		http.StatusBadRequest, "invalid_argument")
}

// sessionResponse decodes the session envelope.
type sessionResponse struct {
	Session struct {
		ID       string   `json:"id"`
		Concepts []string `json:"concepts"`
		Depth    int      `json:"depth"`
		Steps    []struct {
			Op      string `json:"op"`
			Concept string `json:"concept"`
		} `json:"steps"`
	} `json:"session"`
	Result json.RawMessage `json:"result"`
}

// articlesOf extracts the raw "articles" value from a rollup response
// body (either shape: v1 or v2).
func articlesOf(t *testing.T, body []byte) []byte {
	t.Helper()
	var probe struct {
		Articles json.RawMessage `json:"articles"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		t.Fatalf("no articles in %s: %v", body, err)
	}
	return probe.Articles
}

// TestSessionWalkthrough is the acceptance test: a scripted session —
// create → rollup → drilldown (refine) → drilldown (refine) → back →
// rollup — reproduces byte-identical articles to the equivalent
// stateless /v1 calls. The suite runs under -race in CI.
func TestSessionWalkthrough(t *testing.T) {
	base := topicConcepts(t, 3)

	// Create.
	rec := postJSON(t, "/v2/sessions", map[string]any{"concepts": base})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status = %d; body %q", rec.Code, rec.Body.String())
	}
	var created sessionResponse
	decodeBody(t, rec, &created)
	id := created.Session.ID
	if id == "" || created.Session.Depth != 0 {
		t.Fatalf("created session = %+v", created.Session)
	}
	sessionPath := "/v2/sessions/" + id

	// Helper: the stateless /v1 articles for a concept set.
	v1Articles := func(concepts []string, k int) []byte {
		rec := postJSON(t, "/v1/rollup", map[string]any{"concepts": concepts, "k": k})
		if rec.Code != http.StatusOK {
			t.Fatalf("/v1/rollup %v status = %d; body %q", concepts, rec.Code, rec.Body.String())
		}
		return articlesOf(t, rec.Body.Bytes())
	}

	// Step 1 — roll up the base pattern. explain on: /v1 always
	// explains, and byte-identity is the requirement.
	rec = postJSON(t, sessionPath+"/rollup", map[string]any{"k": 5, "explain": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("session rollup status = %d; body %q", rec.Code, rec.Body.String())
	}
	var r1 sessionResponse
	decodeBody(t, rec, &r1)
	if !bytes.Equal(articlesOf(t, r1.Result), v1Articles(base, 5)) {
		t.Fatal("session rollup articles differ from stateless /v1 rollup")
	}

	// Step 2 — drill down and refine with the top suggestion not
	// already in the pattern.
	pickSuggestion := func(result json.RawMessage, avoid []string) string {
		var dd struct {
			Suggestions []ncexplorer.SubtopicSuggestion `json:"suggestions"`
		}
		if err := json.Unmarshal(result, &dd); err != nil {
			t.Fatal(err)
		}
		for _, s := range dd.Suggestions {
			inPattern := false
			for _, c := range avoid {
				if c == s.Concept {
					inPattern = true
				}
			}
			if !inPattern {
				return s.Concept
			}
		}
		t.Skip("no refinable suggestion in this world")
		return ""
	}

	rec = postJSON(t, sessionPath+"/drilldown", map[string]any{"k": 8})
	if rec.Code != http.StatusOK {
		t.Fatalf("session drilldown status = %d; body %q", rec.Code, rec.Body.String())
	}
	var d1 sessionResponse
	decodeBody(t, rec, &d1)
	sel1 := pickSuggestion(d1.Result, d1.Session.Concepts)
	rec = postJSON(t, sessionPath+"/drilldown", map[string]any{"k": 8, "select": sel1})
	if rec.Code != http.StatusOK {
		t.Fatalf("refining drilldown status = %d; body %q", rec.Code, rec.Body.String())
	}
	decodeBody(t, rec, &d1)
	if d1.Session.Depth != 1 || len(d1.Session.Concepts) != len(base)+1 {
		t.Fatalf("after first refine: %+v", d1.Session)
	}
	refined1 := d1.Session.Concepts

	// Step 3 — second drill-down + refine from the refined pattern.
	rec = postJSON(t, sessionPath+"/drilldown", map[string]any{"k": 8})
	var d2 sessionResponse
	decodeBody(t, rec, &d2)
	sel2 := pickSuggestion(d2.Result, d2.Session.Concepts)
	rec = postJSON(t, sessionPath+"/drilldown", map[string]any{"k": 8, "select": sel2})
	if rec.Code != http.StatusOK {
		t.Fatalf("second refine status = %d; body %q", rec.Code, rec.Body.String())
	}
	decodeBody(t, rec, &d2)
	if d2.Session.Depth != 2 {
		t.Fatalf("after second refine: %+v", d2.Session)
	}

	// Step 4 — back pops to the first refinement.
	rec = postJSON(t, sessionPath+"/back", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("back status = %d; body %q", rec.Code, rec.Body.String())
	}
	var b1 sessionResponse
	decodeBody(t, rec, &b1)
	if fmt.Sprint(b1.Session.Concepts) != fmt.Sprint(refined1) || b1.Session.Depth != 1 {
		t.Fatalf("after back: %+v; want pattern %v", b1.Session, refined1)
	}

	// Step 5 — roll up the restored pattern: byte-identical to the
	// stateless /v1 call on the same concepts.
	rec = postJSON(t, sessionPath+"/rollup", map[string]any{"k": 5, "explain": true})
	if rec.Code != http.StatusOK {
		t.Fatalf("final rollup status = %d; body %q", rec.Code, rec.Body.String())
	}
	var r2 sessionResponse
	decodeBody(t, rec, &r2)
	if !bytes.Equal(articlesOf(t, r2.Result), v1Articles(refined1, 5)) {
		t.Fatal("post-back session rollup differs from stateless /v1 rollup on the same pattern")
	}

	// The breadcrumb trail recorded the whole walk.
	var ops []string
	for _, st := range r2.Session.Steps {
		ops = append(ops, st.Op)
	}
	want := []string{"create", "refine", "refine", "back"}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("breadcrumbs = %v; want %v", ops, want)
	}

	// GET, list, delete.
	rec = get(t, sessionPath)
	if rec.Code != http.StatusOK {
		t.Fatalf("get session status = %d", rec.Code)
	}
	rec = get(t, "/v2/sessions")
	var list struct {
		Count int `json:"count"`
	}
	decodeBody(t, rec, &list)
	if list.Count == 0 {
		t.Fatal("session listing is empty")
	}
	req := httptest.NewRequest(http.MethodDelete, sessionPath, nil)
	del := httptest.NewRecorder()
	testServer(t).Handler().ServeHTTP(del, req)
	if del.Code != http.StatusOK {
		t.Fatalf("delete status = %d", del.Code)
	}
	wantV2Error(t, get(t, sessionPath), http.StatusNotFound, "not_found")
}

// TestSessionRollUpRejectedRequestLeavesStateUntouched pins that a
// session rollup failing validation (here: a bad offset alongside a
// pattern replacement) does not mutate the session.
func TestSessionRollUpRejectedRequestLeavesStateUntouched(t *testing.T) {
	base := topicConcepts(t, 1)
	rec := postJSON(t, "/v2/sessions", map[string]any{"concepts": base})
	var created sessionResponse
	decodeBody(t, rec, &created)
	path := "/v2/sessions/" + created.Session.ID

	other := topicConcepts(t, 2)[:1]
	wantV2Error(t, postJSON(t, path+"/rollup", map[string]any{"concepts": other, "offset": -1}),
		http.StatusBadRequest, "invalid_argument")

	rec = get(t, path)
	var after sessionResponse
	decodeBody(t, rec, &after)
	if fmt.Sprint(after.Session.Concepts) != fmt.Sprint(created.Session.Concepts) || after.Session.Depth != 0 {
		t.Fatalf("rejected rollup mutated the session: %+v", after.Session)
	}
}

// TestSessionBodyFreeNavigation pins that the navigation endpoints
// accept an entirely empty body (every field is optional).
func TestSessionBodyFreeNavigation(t *testing.T) {
	rec := postJSON(t, "/v2/sessions", map[string]any{"concepts": topicConcepts(t, 5)})
	var created sessionResponse
	decodeBody(t, rec, &created)
	path := "/v2/sessions/" + created.Session.ID

	for _, sub := range []string{"/rollup", "/drilldown"} {
		req := httptest.NewRequest(http.MethodPost, path+sub, nil)
		rec := httptest.NewRecorder()
		testServer(t).Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("body-free %s status = %d; body %q", sub, rec.Code, rec.Body.String())
		}
	}
	// Truncated JSON is still malformed.
	req := httptest.NewRequest(http.MethodPost, path+"/rollup", strings.NewReader(`{"k":`))
	bad := httptest.NewRecorder()
	testServer(t).Handler().ServeHTTP(bad, req)
	wantV2Error(t, bad, http.StatusBadRequest, "invalid_argument")
}

func TestSessionErrors(t *testing.T) {
	// Unknown session.
	wantV2Error(t, postJSON(t, "/v2/sessions/sess-nope/rollup", map[string]any{"k": 3}),
		http.StatusNotFound, "not_found")
	// Create with an unknown concept: suggestions included.
	e := wantV2Error(t, postJSON(t, "/v2/sessions",
		map[string]any{"concepts": []string{topicConcepts(t, 0)[0] + "z"}}),
		http.StatusBadRequest, "unknown_concept")
	if _, ok := e.Error.Details["suggestions"]; !ok {
		t.Fatalf("create error lacks suggestions: %v", e.Error.Details)
	}
	// Empty pattern.
	wantV2Error(t, postJSON(t, "/v2/sessions", map[string]any{"concepts": []string{}}),
		http.StatusBadRequest, "invalid_argument")

	// Back at the root.
	rec := postJSON(t, "/v2/sessions", map[string]any{"concepts": topicConcepts(t, 0)})
	var created sessionResponse
	decodeBody(t, rec, &created)
	wantV2Error(t, postJSON(t, "/v2/sessions/"+created.Session.ID+"/back", nil),
		http.StatusConflict, "no_history")
	// Refining with a concept already in the pattern.
	wantV2Error(t, postJSON(t, "/v2/sessions/"+created.Session.ID+"/drilldown",
		map[string]any{"k": 3, "select": created.Session.Concepts[0]}),
		http.StatusBadRequest, "invalid_argument")
}

// TestSessionTTLExpiry drives the server's session store with a fake
// clock: an idle session expires, answers 410 session_expired once,
// then 404.
func TestSessionTTLExpiry(t *testing.T) {
	testServer(t) // build the shared world
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(d)
	}
	s := server.New(explorer, server.Options{SessionTTL: 10 * time.Minute, Clock: clock})
	do := func(method, path string, body any) *httptest.ResponseRecorder {
		var rd *bytes.Reader
		if body != nil {
			raw, _ := json.Marshal(body)
			rd = bytes.NewReader(raw)
		} else {
			rd = bytes.NewReader(nil)
		}
		req := httptest.NewRequest(method, path, rd)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec
	}

	rec := do(http.MethodPost, "/v2/sessions", map[string]any{"concepts": topicConcepts(t, 0)})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create status = %d; body %q", rec.Code, rec.Body.String())
	}
	var created sessionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	path := "/v2/sessions/" + created.Session.ID

	advance(9 * time.Minute)
	if rec := do(http.MethodPost, path+"/rollup", map[string]any{"k": 2}); rec.Code != http.StatusOK {
		t.Fatalf("pre-expiry rollup status = %d; body %q", rec.Code, rec.Body.String())
	}
	// The rollup refreshed the TTL; idle past it and the session is gone.
	advance(11 * time.Minute)
	rec = do(http.MethodPost, path+"/rollup", map[string]any{"k": 2})
	if rec.Code != http.StatusGone {
		t.Fatalf("post-expiry status = %d; body %q", rec.Code, rec.Body.String())
	}
	var e v2Error
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error.Code != "session_expired" {
		t.Fatalf("post-expiry envelope = %q", rec.Body.String())
	}
	rec = do(http.MethodGet, path, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("second post-expiry access status = %d", rec.Code)
	}
}

// TestV2ConcurrentMixedTraffic hammers typed queries, batch, and one
// shared session concurrently — the -race proof for the v2 surface.
func TestV2ConcurrentMixedTraffic(t *testing.T) {
	s := testServer(t)
	rec := postJSON(t, "/v2/sessions", map[string]any{"concepts": topicConcepts(t, 4)})
	var created sessionResponse
	decodeBody(t, rec, &created)
	id := created.Session.ID

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var raw []byte
				var path string
				switch (g + i) % 3 {
				case 0:
					path = "/v2/query/rollup"
					raw, _ = json.Marshal(map[string]any{"concepts": topicConcepts(t, i), "k": 3})
				case 1:
					path = "/v2/batch"
					raw, _ = json.Marshal(map[string]any{"queries": []map[string]any{
						{"op": "rollup", "concepts": topicConcepts(t, i), "k": 2},
						{"op": "drilldown", "concepts": topicConcepts(t, i)[:1], "k": 2},
					}})
				case 2:
					path = "/v2/sessions/" + id + "/rollup"
					raw, _ = json.Marshal(map[string]any{"k": 2})
				}
				req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("%s status = %d; body %q", path, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
