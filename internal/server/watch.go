package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ncexplorer"
)

// Watchlists over HTTP: the standing-query surface.
//
//	POST   /v2/watchlists              register {"name", "concepts", "sources",
//	                                   "min_score", "webhook_url"} → watchlist
//	GET    /v2/watchlists              list registered watchlists
//	GET    /v2/watchlists/{id}         one watchlist
//	DELETE /v2/watchlists/{id}         remove (ends streams and deliveries)
//	GET    /v2/watchlists/{id}/events  SSE alert stream; ?after=<seq> replays
//	                                   retained alerts past the cursor before
//	                                   going live, in order, no gap or duplicate
//
// The SSE stream emits one event per alert:
//
//	id: <seq>
//	event: alert
//	data: <alert JSON — same envelope the webhook POSTs>
//
// The id line carries the per-watchlist sequence, so a reconnecting
// client passes its last seen id as ?after= and receives exactly what
// it missed (within the retention window; a gap past the window is
// visible as a jump in sequence numbers). Lagging clients are
// disconnected rather than slowing ingestion; server shutdown ends
// streams first so connected clients release promptly.

// watchlistsResponse is the GET /v2/watchlists payload.
type watchlistsResponse struct {
	Count      int                    `json:"count"`
	Watchlists []ncexplorer.Watchlist `json:"watchlists"`
}

func (s *Server) handleWatchlistCreate(w http.ResponseWriter, r *http.Request) {
	var spec ncexplorer.WatchlistSpec
	if aerr := decodeV2(w, r, &spec); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	wl, err := s.explorer().RegisterWatchlist(spec)
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	s.writeJSON(w, http.StatusCreated, wl)
}

func (s *Server) handleWatchlistList(w http.ResponseWriter, r *http.Request) {
	lists := s.explorer().ListWatchlists()
	if lists == nil {
		lists = []ncexplorer.Watchlist{}
	}
	s.writeJSON(w, http.StatusOK, watchlistsResponse{Count: len(lists), Watchlists: lists})
}

func (s *Server) handleWatchlistGet(w http.ResponseWriter, r *http.Request) {
	wl, err := s.explorer().GetWatchlist(r.PathValue("id"))
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	s.writeJSON(w, http.StatusOK, wl)
}

func (s *Server) handleWatchlistDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.explorer().RemoveWatchlist(r.PathValue("id")); err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "removed"})
}

// handleWatchlistEvents serves the SSE alert stream. The subscription
// replays retained alerts past ?after= and then delivers live alerts;
// both arrive on one channel already in order, so the handler is a
// plain pump loop until the client disconnects, the watchlist is
// removed, the subscriber lags out, or the server drains.
func (s *Server) handleWatchlistEvents(w http.ResponseWriter, r *http.Request) {
	after := uint64(0)
	if raw := r.URL.Query().Get("after"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeAPIError(w, invalidArgument("invalid after %q: want a non-negative integer", raw))
			return
		}
		after = v
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeAPIError(w, &apiError{
			status:  http.StatusInternalServerError,
			code:    ncexplorer.CodeInternal,
			message: "response writer does not support streaming",
		})
		return
	}
	sub, err := s.explorer().WatchSubscribe(r.PathValue("id"), after)
	if err != nil {
		s.writeAPIError(w, apiErrorFrom(err))
		return
	}
	defer sub.Cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.streamStop:
			return
		case a, ok := <-sub.C:
			if !ok {
				// Watchlist removed, subscriber lagged out, or registry gone:
				// end the stream; the client reconnects with its last id.
				return
			}
			body, err := json.Marshal(a)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: alert\ndata: %s\n\n", a.Seq, body); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// StopStreams ends every live SSE stream. Graceful shutdown calls it
// before http.Server.Shutdown, which waits for handlers to return —
// without this, open streams would hold Shutdown until its deadline.
// Safe to call more than once.
func (s *Server) StopStreams() {
	s.stopStreamsOnce.Do(func() { close(s.streamStop) })
}
