package harness

import (
	"fmt"
	"strings"
	"time"

	"ncexplorer/internal/baselines"
	"ncexplorer/internal/core"
	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/reach"
)

// ── E4: Fig. 4 — indexing time per article by source ───────────────

// Fig4Row reports the average per-article indexing time (seconds) of
// every method for one news source, plus NCExplorer's cost breakdown
// (entity linking vs relevance scoring — the paper reports 91.8% /
// 7.1%).
type Fig4Row struct {
	Source       string
	PerMethodSec map[string]float64
	LinkShare    float64 // NCExplorer: fraction of time in entity linking
	ScoreShare   float64 // NCExplorer: fraction in relevance scoring
}

// Fig4 measures indexing cost over up to perSource articles from each
// source (the paper uses 100). Methods are constructed fresh and run
// single-threaded so the figure reports true per-article cost.
func (w *World) Fig4(perSource int) []Fig4Row {
	if perSource <= 0 {
		perSource = 100
	}
	var rows []Fig4Row
	for _, src := range corpus.Sources {
		docs := w.Corpus.BySource(src)
		if len(docs) > perSource {
			docs = docs[:perSource]
		}
		// Re-ID into a dense mini corpus.
		mini := &corpus.Corpus{}
		for i, d := range docs {
			cp := *d
			cp.ID = corpus.DocID(i)
			mini.Docs = append(mini.Docs, cp)
		}
		row := Fig4Row{Source: src.String(), PerMethodSec: map[string]float64{}}
		perDoc := float64(len(mini.Docs))

		fresh := []baselines.Searcher{
			baselines.NewLucene(),
			baselines.NewBERT(),
			baselines.NewNewsLink(w.G, w.Linker),
			baselines.NewNewsLinkBERT(w.G, w.Linker),
		}
		for _, s := range fresh {
			start := time.Now()
			if err := s.Index(mini); err != nil {
				panic(err)
			}
			row.PerMethodSec[s.Name()] = time.Since(start).Seconds() / perDoc
		}
		engine := core.NewEngine(w.G, core.Options{
			Seed: w.Seed, Samples: w.Engine.Options().Samples, Workers: 1,
		})
		start := time.Now()
		st := engine.IndexCorpus(mini)
		row.PerMethodSec[MethodNCExplorer] = time.Since(start).Seconds() / perDoc
		if total := st.LinkNanos + st.ScoreNanos; total > 0 {
			row.LinkShare = float64(st.LinkNanos) / float64(total)
			row.ScoreShare = float64(st.ScoreNanos) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatFig4 renders the indexing-time figure as a table.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "Source")
	for _, m := range MethodOrder {
		fmt.Fprintf(&b, " %14s", m)
	}
	fmt.Fprintf(&b, "   %s\n", "NCE link/score split")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Source)
		for _, m := range MethodOrder {
			fmt.Fprintf(&b, " %12.2fms", r.PerMethodSec[m]*1000)
		}
		fmt.Fprintf(&b, "   %.1f%% / %.1f%%\n", r.LinkShare*100, r.ScoreShare*100)
	}
	return b.String()
}

// ── E5: Fig. 5 — retrieval time vs number of query concepts ────────

// Fig5Point reports mean per-query latency (seconds) for queries with
// a given number of concepts.
type Fig5Point struct {
	Concepts     int
	PerMethodSec map[string]float64
}

// Fig5 times nQueries queries per point for 1–3 query concepts,
// mirroring the paper's retrieval-efficiency study.
func (w *World) Fig5(nQueries int) []Fig5Point {
	if nQueries <= 0 {
		nQueries = 100
	}
	pool := w.conceptPool()
	var out []Fig5Point
	for nc := 1; nc <= 3; nc++ {
		r := w.queryRand(uint64(5000 + nc))
		queries := make([]baselines.Query, nQueries)
		for i := range queries {
			seen := map[kg.NodeID]struct{}{}
			var concepts []kg.NodeID
			var names []string
			for len(concepts) < nc {
				c := pool[r.Intn(len(pool))]
				if _, dup := seen[c]; dup {
					continue
				}
				seen[c] = struct{}{}
				concepts = append(concepts, c)
				names = append(names, w.G.Name(c))
			}
			queries[i] = baselines.Query{Text: strings.Join(names, " "), Concepts: concepts}
		}
		pt := Fig5Point{Concepts: nc, PerMethodSec: map[string]float64{}}
		for _, s := range w.Searchers {
			// Cold-cache measurement for the engine: repeated queries
			// would otherwise be served from the cdr memo and report
			// lookup time instead of query processing time.
			if s.Name() == MethodNCExplorer {
				w.Engine.ResetQueryCaches()
			}
			start := time.Now()
			for _, q := range queries {
				s.Search(q, 10)
			}
			pt.PerMethodSec[s.Name()] = time.Since(start).Seconds() / float64(nQueries)
		}
		out = append(out, pt)
	}
	return out
}

// conceptPool gathers query-worthy concepts: the evaluation topics,
// their group concepts, and every concept with a non-trivial extent.
func (w *World) conceptPool() []kg.NodeID {
	var pool []kg.NodeID
	for _, t := range w.Meta.Topics {
		pool = append(pool, t.Concept, t.GroupConcept)
	}
	w.G.Concepts(func(c kg.NodeID) bool {
		if w.G.ExtentSize(c) >= 3 {
			pool = append(pool, c)
		}
		return true
	})
	return pool
}

// FormatFig5 renders the retrieval-time figure as a table.
func FormatFig5(points []Fig5Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "#Concepts")
	for _, m := range MethodOrder {
		fmt.Fprintf(&b, " %14s", m)
	}
	b.WriteByte('\n')
	for _, p := range points {
		fmt.Fprintf(&b, "%-10d", p.Concepts)
		for _, m := range MethodOrder {
			fmt.Fprintf(&b, " %12.3fms", p.PerMethodSec[m]*1000)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ── E9: reachability-index construction cost (§IV-A2) ──────────────

// ReachBuildResult reports index construction at this repo's scale
// (the paper: 260 s and 100 GB for full DBpedia).
type ReachBuildResult struct {
	Targets  int
	Seconds  float64
	Bytes    int64
	KGNodes  int
	KGEdges  int64
	HopBound int
}

// ReachIndexBuild precomputes distance tables for nTargets instance
// entities (deterministically sampled) and reports cost.
func (w *World) ReachIndexBuild(nTargets int) ReachBuildResult {
	if nTargets <= 0 {
		nTargets = 500
	}
	var instances []kg.NodeID
	w.G.Instances(func(v kg.NodeID) bool {
		instances = append(instances, v)
		return true
	})
	r := w.queryRand(9000)
	targets := make([]kg.NodeID, 0, nTargets)
	for len(targets) < nTargets && len(targets) < len(instances) {
		targets = append(targets, instances[r.Intn(len(instances))])
	}
	tau := w.Engine.Options().Tau
	ix := reach.New(w.G, tau, nTargets+1)
	start := time.Now()
	bytes := ix.Precompute(targets)
	return ReachBuildResult{
		Targets:  len(targets),
		Seconds:  time.Since(start).Seconds(),
		Bytes:    bytes,
		KGNodes:  w.G.NumNodes(),
		KGEdges:  w.G.NumInstanceEdges(),
		HopBound: tau,
	}
}

// FormatReachBuild renders the construction-cost line.
func FormatReachBuild(r ReachBuildResult) string {
	return fmt.Sprintf(
		"reachability index: %d targets over %d nodes / %d edges (k=%d): %.2fs, %.1f MB\n",
		r.Targets, r.KGNodes, r.KGEdges, r.HopBound,
		r.Seconds, float64(r.Bytes)/1e6)
}
