package harness

import (
	"fmt"
	"strings"

	"ncexplorer/internal/core"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/xrand"
)

// ── E8: Fig. 8 — drill-down ranking ablation (C, C+S, C+S+D) ───────

// Fig8Row reports the mean simulated participant rating (1–3 scale, as
// in the paper's survey) of the top drill-down suggestions under each
// component combination, per news domain.
type Fig8Row struct {
	Domain string
	C      float64
	CS     float64
	CSD    float64
	Votes  int
}

// fig8Participants is the simulated survey size; the paper collected
// 518 survey results.
const fig8Participants = 20

// Fig8 runs the ablation: for every evaluation topic, the top-5
// subtopics are computed with (1) coverage only, (2) coverage +
// specificity, (3) all three components, and rated by simulated
// participants. Ratings are grouped into business / politics / overall.
//
// The participant model scores what the paper's interactive survey let
// raters observe — they clicked a subtopic, saw the narrowed result
// list, and rated 1–3:
//
//   - on-topic: how relevant the narrowed documents are to the chosen
//     subtopic (gold grades of D(Q ∪ {c}) for c);
//   - informativeness: raters dislike trivial umbrella subtopics
//     ("Person"); modelled as normalised concept specificity;
//   - entity yield: the analysts the tool is built for (due-diligence,
//     Table III) value a subtopic by how many *distinct* relevant
//     entities it surfaces; a subtopic whose matches concentrate on one
//     popular entity is rated low — the bias the paper says the
//     diversity factor prevents;
//   - redundancy: a suggestion whose narrowed result set heavily
//     overlaps a higher-ranked suggestion reads as a repeat.
//
// Specificity in the ranking combats the triviality penalty; diversity
// combats concentration and redundancy — so the C ≤ C+S ≤ C+S+D
// ordering *emerges* from the mechanism rather than being asserted.
func (w *World) Fig8() []Fig8Row {
	type acc struct {
		sum   [3]float64
		votes [3]int
	}
	domains := map[string]*acc{"business": {}, "politics": {}, "overall": {}}

	variants := []struct {
		useSpec, useDiv bool
	}{{false, false}, {true, false}, {true, true}}

	for ti, topic := range w.Meta.Topics {
		q := core.Query{topic.Concept, topic.GroupConcept}
		for vi, variant := range variants {
			subs := w.Engine.DrillDownComponents(q, 5, variant.useSpec, variant.useDiv)
			if len(subs) == 0 {
				continue
			}
			// Matched doc sets, on-topic grades, and distinct matched
			// entities per suggestion.
			matchSets := make([]map[kg.NodeID]struct{}, len(subs))
			onTopic := make([]float64, len(subs))
			yield := make([]float64, len(subs))
			for i, sub := range subs {
				docs := w.Engine.MatchedDocs(append(core.Query{sub.Concept}, q...))
				set := make(map[kg.NodeID]struct{}, len(docs))
				entities := make(map[kg.NodeID]struct{})
				sum, n := 0.0, 0
				for j, d := range docs {
					set[kg.NodeID(d)] = struct{}{}
					if j < 12 { // raters skim a page of results
						sum += w.Corpus.Doc(d).Gold(sub.Concept) / 5
						n++
						for _, cs := range w.Engine.DocConcepts(d) {
							if cs.Concept == sub.Concept && cs.Pivot >= 0 {
								entities[cs.Pivot] = struct{}{}
							}
						}
					}
				}
				matchSets[i] = set
				if n > 0 {
					onTopic[i] = sum / float64(n)
				}
				// Yield saturates at 4 distinct entities — beyond that
				// a rater no longer perceives a difference.
				yield[i] = float64(len(entities)) / 4
				if yield[i] > 1 {
					yield[i] = 1
				}
			}
			maxSpec := w.maxSpecificity()
			for i, sub := range subs {
				informative := 0.0
				if maxSpec > 0 {
					informative = sub.Specificity / maxSpec
				}
				redundant := 0.0
				for j := 0; j < i; j++ {
					if jaccard(matchSets[i], matchSets[j]) > 0.5 {
						redundant = 1
						break
					}
				}
				for p := 0; p < fig8Participants; p++ {
					r := xrand.Stream(w.Seed^0xF18, uint64(ti)<<40|uint64(vi)<<32|uint64(i)<<16|uint64(p))
					rating := 1 + 0.9*onTopic[i] + 0.5*informative + 0.7*yield[i] -
						0.4*redundant + r.Norm(0, 0.25)
					if rating < 1 {
						rating = 1
					}
					if rating > 3 {
						rating = 3
					}
					for _, dom := range []string{topic.Domain, "overall"} {
						domains[dom].sum[vi] += rating
						domains[dom].votes[vi]++
					}
				}
			}
		}
	}

	var rows []Fig8Row
	for _, dom := range []string{"business", "politics", "overall"} {
		a := domains[dom]
		row := Fig8Row{Domain: dom}
		if a.votes[0] > 0 {
			row.C = a.sum[0] / float64(a.votes[0])
		}
		if a.votes[1] > 0 {
			row.CS = a.sum[1] / float64(a.votes[1])
		}
		if a.votes[2] > 0 {
			row.CSD = a.sum[2] / float64(a.votes[2])
		}
		row.Votes = a.votes[0] + a.votes[1] + a.votes[2]
		rows = append(rows, row)
	}
	return rows
}

// maxSpecificity returns the highest concept specificity in the graph
// (memo-free; cheap relative to the experiment).
func (w *World) maxSpecificity() float64 {
	best := 0.0
	w.G.Concepts(func(c kg.NodeID) bool {
		if w.G.ExtentSize(c) > 0 {
			if s := w.G.Specificity(c); s > best {
				best = s
			}
		}
		return true
	})
	return best
}

func jaccard(a, b map[kg.NodeID]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for x := range small {
		if _, ok := large[x]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// FormatFig8 renders the ablation figure as a table.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s\n", "Domain", "C", "C+S", "C+S+D", "votes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.3f %8.3f %8.3f %8d\n", r.Domain, r.C, r.CS, r.CSD, r.Votes)
	}
	return b.String()
}
