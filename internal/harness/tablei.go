package harness

import (
	"fmt"
	"strings"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/eval"
	"ncexplorer/internal/rerank"
	"ncexplorer/internal/xrand"
)

// ── E0: dataset statistics (§IV Datasets table) ─────────────────────

// DatasetRow mirrors one row of the paper's dataset table.
type DatasetRow struct {
	Source         string
	Articles       int
	TotalMentions  int
	LinkedMentions int
	LinkedRatio    float64
}

// DatasetStats reports per-source corpus statistics as measured by the
// engine's NLP pipeline.
func (w *World) DatasetStats() []DatasetRow {
	st := w.Engine.Stats()
	var rows []DatasetRow
	for _, src := range corpus.Sources {
		ss := st.PerSource[src]
		rows = append(rows, DatasetRow{
			Source:         src.String(),
			Articles:       ss.Articles,
			TotalMentions:  ss.TotalMentions,
			LinkedMentions: ss.LinkedMentions,
			LinkedRatio:    ss.LinkedRatio(),
		})
	}
	return rows
}

// FormatDatasetStats renders the dataset table.
func FormatDatasetStats(rows []DatasetRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %16s %16s %9s\n",
		"News Source", "Articles", "Total Entities", "Linked Entities", "Linked%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10d %16d %16d %8.1f%%\n",
			r.Source, r.Articles, r.TotalMentions, r.LinkedMentions, r.LinkedRatio*100)
	}
	return b.String()
}

// ── E1: Table I — NDCG@K with and without GPT re-ranking ───────────

// NDCGCell holds one method×K cell: NDCG without / with the GPT
// re-rank.
type NDCGCell struct {
	Without float64
	With    float64
}

// TableIRow is one method's cells for a topic.
type TableIRow struct {
	Method string
	ByK    map[int]NDCGCell
}

// TableITopic is one of the six evaluation topics.
type TableITopic struct {
	Topic  string
	Domain string
	Rows   []TableIRow
}

// KCuts are the NDCG cutoffs of Table I.
var KCuts = []int{1, 5, 10}

// TableI reproduces Table I: for each topic, every method retrieves
// its top-10; the pooled results are rated by the simulated evaluator
// pool; NDCG@{1,5,10} is computed for each method's ranking before and
// after re-ranking by the simulated GPT judge.
func (w *World) TableI() []TableITopic {
	var out []TableITopic
	for ti, topic := range w.Meta.Topics {
		q := w.TopicQuery(topic)
		queryKey := uint64(ti+1) * 0x9e3779b97f4a7c15

		// Retrieve, then rate the pooled union.
		retrieved := make(map[string][]corpus.DocID)
		judged := make(map[corpus.DocID]float64) // human rating
		var order []corpus.DocID                 // deterministic pooling order
		for _, s := range w.Searchers {
			var docs []corpus.DocID
			for _, res := range s.Search(q, 10) {
				docs = append(docs, res.Doc)
				if _, ok := judged[res.Doc]; !ok {
					judged[res.Doc] = -1
					order = append(order, res.Doc)
				}
			}
			retrieved[s.Name()] = docs
		}
		// Surface signal: BM25 of the query text, normalised over the
		// judged pool.
		surf := make(map[corpus.DocID]float64, len(order))
		maxBM := 0.0
		for _, d := range order {
			s := w.Lucene.Score(q.Text, d)
			surf[d] = s
			if s > maxBM {
				maxBM = s
			}
		}
		for _, d := range order {
			s := surf[d]
			if maxBM > 0 {
				s /= maxBM
			}
			judged[d] = w.Pool.Rate(queryKey, d, w.SemanticGold(topic, d), s)
		}

		poolGains := make([]float64, 0, len(order))
		for _, d := range order {
			poolGains = append(poolGains, judged[d])
		}

		judge := rerank.NewGPTJudge(func(d corpus.DocID) float64 {
			return w.SemanticGold(topic, d)
		}, w.Seed^queryKey, w.GPTNoise)

		tt := TableITopic{Topic: topic.Name, Domain: topic.Domain}
		for _, name := range MethodOrder {
			docs := retrieved[name]
			row := TableIRow{Method: name, ByK: map[int]NDCGCell{}}
			reranked := rerank.Rerank(docs, judge)
			for _, k := range KCuts {
				row.ByK[k] = NDCGCell{
					Without: eval.NDCG(gains(docs, judged), poolGains, k),
					With:    eval.NDCG(gains(reranked, judged), poolGains, k),
				}
			}
			tt.Rows = append(tt.Rows, row)
		}
		out = append(out, tt)
	}
	return out
}

func gains(docs []corpus.DocID, judged map[corpus.DocID]float64) []float64 {
	out := make([]float64, len(docs))
	for i, d := range docs {
		out[i] = judged[d]
	}
	return out
}

// FormatTableI renders Table I.
func FormatTableI(topics []TableITopic) string {
	var b strings.Builder
	for _, tt := range topics {
		fmt.Fprintf(&b, "Topic: %s  (%s)\n", tt.Topic, tt.Domain)
		fmt.Fprintf(&b, "  %-14s", "Method")
		for _, k := range KCuts {
			fmt.Fprintf(&b, "  NDCG@%-2d wo/w GPT ", k)
		}
		b.WriteByte('\n')
		for _, row := range tt.Rows {
			fmt.Fprintf(&b, "  %-14s", row.Method)
			for _, k := range KCuts {
				c := row.ByK[k]
				fmt.Fprintf(&b, "  %7.3f / %-7.3f", c.Without, c.With)
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ── E2: Table II — impact of the GPT re-rank ────────────────────────

// TableIIRow is one method's mean relative NDCG change (percent) from
// GPT re-ranking, per cutoff, averaged over topics.
type TableIIRow struct {
	Method string
	ByK    map[int]float64
}

// TableII derives the re-rank impact table from TableI results.
func TableII(topics []TableITopic) []TableIIRow {
	sums := map[string]map[int]float64{}
	counts := map[string]map[int]int{}
	for _, tt := range topics {
		for _, row := range tt.Rows {
			if sums[row.Method] == nil {
				sums[row.Method] = map[int]float64{}
				counts[row.Method] = map[int]int{}
			}
			for _, k := range KCuts {
				c := row.ByK[k]
				if c.Without > 0 {
					sums[row.Method][k] += (c.With - c.Without) / c.Without * 100
					counts[row.Method][k]++
				}
			}
		}
	}
	var out []TableIIRow
	for _, name := range MethodOrder {
		row := TableIIRow{Method: name, ByK: map[int]float64{}}
		for _, k := range KCuts {
			if n := counts[name][k]; n > 0 {
				row.ByK[k] = sums[name][k] / float64(n)
			}
		}
		out = append(out, row)
	}
	return out
}

// FormatTableII renders Table II.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "Method")
	for _, k := range KCuts {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("NDCG@%d", k))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Method)
		for _, k := range KCuts {
			fmt.Fprintf(&b, " %+8.2f%%", r.ByK[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// QueryRand derives a deterministic RNG for a labelled experiment.
func (w *World) QueryRand(label uint64) *xrand.Rand {
	return xrand.Stream(w.Seed, label)
}

// queryRand is the internal alias of QueryRand.
func (w *World) queryRand(label uint64) *xrand.Rand { return w.QueryRand(label) }
