package harness

import (
	"fmt"
	"sort"
	"strings"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/eval"
	"ncexplorer/internal/rerank"
)

// ── Extension: GPT as a direct ranker (§IV-A1, future work) ────────
//
// The paper closes its Table-II discussion with: "Whether it is
// feasible to use GPT directly as a relevance ranker instead of a
// re-ranker of retrieved results is a topic for our upcoming
// research." This experiment runs that study in simulation: the judge
// scores *every* document in the corpus for each topic query and ranks
// by score alone — no retrieval stage — and is compared against each
// retrieval method's re-ranked top-10 under the same human ratings.
//
// The trade the simulation exposes is inherent, not parameter-tuned: a
// direct ranker must judge the whole corpus per query (|D| judge calls
// versus 10 for a re-ranker), and with no retrieval prior, judge noise
// over thousands of candidates lets borderline documents leak into the
// top ranks, where pooled human ratings punish them.

// GPTDirectRow compares the direct ranker against a retrieve-then-
// re-rank pipeline for one topic.
type GPTDirectRow struct {
	Topic      string
	DirectN10  float64 // NDCG@10 of GPT ranking the whole corpus
	RerankN10  float64 // NDCG@10 of NCExplorer + GPT re-rank
	JudgeCalls int     // judge invocations for the direct ranker
}

// GPTDirect runs the future-work study over the six evaluation topics.
func (w *World) GPTDirect() []GPTDirectRow {
	var out []GPTDirectRow
	for ti, topic := range w.Meta.Topics {
		q := w.TopicQuery(topic)
		queryKey := uint64(ti+1) * 0x9e3779b97f4a7c15
		judge := rerank.NewGPTJudge(func(d corpus.DocID) float64 {
			return w.SemanticGold(topic, d)
		}, w.Seed^queryKey, w.GPTNoise)

		// Direct ranking: judge every document, keep the top 10.
		type scored struct {
			doc   corpus.DocID
			score float64
		}
		all := make([]scored, w.Corpus.Len())
		for i := range w.Corpus.Docs {
			d := corpus.DocID(i)
			all[i] = scored{doc: d, score: judge(d)}
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].score > all[j].score })
		direct := make([]corpus.DocID, 10)
		for i := range direct {
			direct[i] = all[i].doc
		}

		// Retrieval + re-rank baseline: NCExplorer top-10 through the
		// same judge.
		var retrieved []corpus.DocID
		for _, res := range w.Searchers[len(w.Searchers)-1].Search(q, 10) {
			retrieved = append(retrieved, res.Doc)
		}
		reranked := rerank.Rerank(retrieved, judge)

		// Human ratings over the pooled judged docs.
		pool := map[corpus.DocID]float64{}
		var order []corpus.DocID
		for _, d := range append(append([]corpus.DocID{}, direct...), reranked...) {
			if _, ok := pool[d]; !ok {
				pool[d] = -1
				order = append(order, d)
			}
		}
		maxBM := 0.0
		surf := map[corpus.DocID]float64{}
		for _, d := range order {
			surf[d] = w.Lucene.Score(q.Text, d)
			if surf[d] > maxBM {
				maxBM = surf[d]
			}
		}
		for _, d := range order {
			s := surf[d]
			if maxBM > 0 {
				s /= maxBM
			}
			pool[d] = w.Pool.Rate(queryKey^0xD17EC7, d, w.SemanticGold(topic, d), s)
		}
		poolGains := make([]float64, 0, len(order))
		for _, d := range order {
			poolGains = append(poolGains, pool[d])
		}
		out = append(out, GPTDirectRow{
			Topic:      topic.Name,
			DirectN10:  eval.NDCG(gains(direct, pool), poolGains, 10),
			RerankN10:  eval.NDCG(gains(reranked, pool), poolGains, 10),
			JudgeCalls: w.Corpus.Len(),
		})
	}
	return out
}

// FormatGPTDirect renders the future-work comparison.
func FormatGPTDirect(rows []GPTDirectRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %14s %16s %12s\n",
		"Topic", "direct NDCG@10", "rerank NDCG@10", "judge calls")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %14.3f %16.3f %12d\n",
			r.Topic, r.DirectN10, r.RerankN10, r.JudgeCalls)
	}
	fmt.Fprintf(&b, "(re-ranking needs 10 judge calls per query)\n")
	return b.String()
}
