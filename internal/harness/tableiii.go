package harness

import (
	"fmt"
	"strings"

	"ncexplorer/internal/eval"
	"ncexplorer/internal/stats"
)

// ── E3: Table III — roll-up & drill-down productivity study ────────

// TableIIIRow is one task's outcome: answers produced within the 2 min
// budget by keyword search vs NCExplorer (avg/std over n participants)
// and the one-sided Welch p-value for H1 "NCExplorer > keyword".
type TableIIIRow struct {
	TaskID       int
	Name         string
	KeywordMean  float64
	KeywordStd   float64
	ExplorerMean float64
	ExplorerStd  float64
	P            float64
	N            int
}

// TableIII runs the simulated analyst study: up to 8 tasks × n
// participants × both tools (the paper used 10 financial
// professionals).
func (w *World) TableIII(participants int) []TableIIIRow {
	if participants <= 0 {
		participants = 10
	}
	tasks := eval.BuildTasks(w.G, w.Corpus)
	var out []TableIIIRow
	for _, task := range tasks {
		res := eval.RunStudy(task, participants, w.Seed^0x7AB1E3, w.Lucene, w.Engine, w.Corpus, w.G)
		welch, err := stats.WelchOneSided(res.Explorer, res.Keyword)
		p := 1.0
		if err == nil {
			p = welch.P
		}
		out = append(out, TableIIIRow{
			TaskID:       task.ID,
			Name:         task.Name,
			KeywordMean:  stats.Mean(res.Keyword),
			KeywordStd:   stats.StdDev(res.Keyword),
			ExplorerMean: stats.Mean(res.Explorer),
			ExplorerStd:  stats.StdDev(res.Explorer),
			P:            p,
			N:            participants,
		})
	}
	return out
}

// FormatTableIII renders Table III.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-42s %-16s %-16s %10s\n",
		"Task", "Inquiry", "Keyword (avg/std)", "NCExplorer (avg/std)", "p (H1)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %-42s %7.1f/%-8.2f %8.1f/%-8.2f %10.4f\n",
			r.TaskID, r.Name, r.KeywordMean, r.KeywordStd,
			r.ExplorerMean, r.ExplorerStd, r.P)
	}
	return b.String()
}
