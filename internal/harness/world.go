// Package harness wires the full system together and regenerates every
// table and figure of the paper's evaluation (§IV). Each experiment is
// a method on World returning typed rows plus a Format helper that
// renders the table the way the paper prints it; cmd/experiments runs
// them all and bench_test.go exposes one benchmark per artifact.
package harness

import (
	"fmt"
	"sync"

	"ncexplorer/internal/baselines"
	"ncexplorer/internal/core"
	"ncexplorer/internal/corpus"
	"ncexplorer/internal/eval"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
	"ncexplorer/internal/nlp"
)

// Scale selects the experiment size.
type Scale int

const (
	// Tiny is the unit-test scale (seconds to build).
	Tiny Scale = iota
	// Default is the experiment scale used by cmd/experiments and the
	// benchmarks (laptop-scale stand-in for the paper's setup).
	Default
)

func (s Scale) String() string {
	if s == Default {
		return "default"
	}
	return "tiny"
}

// MethodNCExplorer is the display name of the system under test.
const MethodNCExplorer = "NCExplorer"

// MethodOrder fixes the row order of every table (the paper's order).
var MethodOrder = []string{"Lucene", "BERT", "NewsLink", "NewsLink-BERT", MethodNCExplorer}

// World is the shared experiment fixture: the synthetic KG and corpus,
// the indexed NCExplorer engine, and the four indexed baselines.
type World struct {
	Scale  Scale
	Seed   uint64
	G      *kg.Graph
	Meta   *kggen.Meta
	Corpus *corpus.Corpus
	Engine *core.Engine
	Lucene *baselines.Lucene
	Linker *nlp.Linker
	// Searchers holds all five methods in MethodOrder.
	Searchers []baselines.Searcher
	// Pool simulates the AMT evaluators (78, as in the paper).
	Pool *eval.EvaluatorPool
	// GPTNoise is the simulated LLM judge's rating error std-dev: how
	// much a text-only judge disagrees with the gold semantics.
	GPTNoise float64
}

// NewWorld builds a fully indexed world. Expensive: prefer the cached
// GetWorld in tests and benchmarks.
func NewWorld(scale Scale) *World {
	w := &World{Scale: scale, Seed: 42, GPTNoise: 0.9}
	var kcfg kggen.Config
	var ccfg corpus.Config
	var ecfg core.Options
	switch scale {
	case Default:
		kcfg = kggen.Default()
		ccfg = corpus.Default()
		ecfg = core.Options{Seed: w.Seed, Samples: 50}
	default:
		kcfg = kggen.Tiny()
		ccfg = corpus.Tiny()
		ecfg = core.Options{Seed: w.Seed, Samples: 15}
	}
	w.G, w.Meta = kggen.MustGenerate(kcfg)
	w.Corpus = corpus.MustGenerate(w.G, w.Meta, ccfg)
	w.Linker = nlp.NewLinker(w.G)

	w.Engine = core.NewEngine(w.G, ecfg)
	w.Engine.IndexCorpus(w.Corpus)

	w.Lucene = baselines.NewLucene()
	bert := baselines.NewBERT()
	newslink := baselines.NewNewsLink(w.G, w.Linker)
	hybrid := baselines.NewNewsLinkBERT(w.G, w.Linker)
	for _, s := range []baselines.Searcher{w.Lucene, bert, newslink, hybrid} {
		if err := s.Index(w.Corpus); err != nil {
			panic(fmt.Sprintf("harness: indexing %s: %v", s.Name(), err))
		}
	}
	w.Searchers = []baselines.Searcher{
		w.Lucene, bert, newslink, hybrid,
		&engineSearcher{engine: w.Engine},
	}
	w.Pool = eval.NewPool(78, w.Seed^0xA11CE)
	return w
}

var (
	worldMu     sync.Mutex
	worldCached = map[Scale]*World{}
)

// GetWorld returns a process-wide cached world for the scale.
func GetWorld(scale Scale) *World {
	worldMu.Lock()
	defer worldMu.Unlock()
	if w, ok := worldCached[scale]; ok {
		return w
	}
	w := NewWorld(scale)
	worldCached[scale] = w
	return w
}

// engineSearcher adapts the NCExplorer engine to the Searcher
// interface so the harness ranks it alongside the baselines.
type engineSearcher struct {
	engine *core.Engine
}

func (s *engineSearcher) Name() string { return MethodNCExplorer }

func (s *engineSearcher) Index(*corpus.Corpus) error { return nil } // indexed by World

func (s *engineSearcher) Search(q baselines.Query, k int) []baselines.Result {
	results := s.engine.RollUp(core.Query(q.Concepts), k)
	out := make([]baselines.Result, len(results))
	for i, r := range results {
		out[i] = baselines.Result{Doc: r.Doc, Score: r.Score}
	}
	return out
}

// TopicQuery builds the evaluation query for one Table-I topic: the
// keyword text the text methods receive and the concept pattern the KG
// methods receive.
func (w *World) TopicQuery(t kggen.Topic) baselines.Query {
	return baselines.Query{
		Text:     t.Name + " " + groupPhrase(t.GroupName),
		Concepts: []kg.NodeID{t.Concept, t.GroupConcept},
	}
}

func groupPhrase(groupName string) string {
	phrases := map[string]string{
		"countries":            "countries",
		"african_countries":    "African countries",
		"us_tech_companies":    "U.S. technology companies",
		"us_biotech_companies": "U.S. biotechnology companies",
		"industrial_companies": "companies",
		"swiss_banks":          "Swiss banks",
	}
	if p, ok := phrases[groupName]; ok {
		return p
	}
	return groupName
}

// SemanticGold returns the semantic relevance of a document for a
// topic query. The queries are conjunctive ("Elections in African
// countries"), and the paper's raters graded each query concept
// separately — so the combined grade is dominated by the weaker
// constraint: an election story about France is *not* half-relevant to
// African elections. A quarter of the stronger grade leaks through,
// matching how raters still give partial credit for one satisfied
// facet.
func (w *World) SemanticGold(t kggen.Topic, doc corpus.DocID) float64 {
	d := w.Corpus.Doc(doc)
	gt, gg := d.Gold(t.Concept), d.Gold(t.GroupConcept)
	lo, hi := gt, gg
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo + 0.25*(hi-lo)
}
