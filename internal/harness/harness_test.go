package harness

import (
	"strings"
	"testing"
)

func tinyWorld(t testing.TB) *World {
	t.Helper()
	return GetWorld(Tiny)
}

func TestDatasetStats(t *testing.T) {
	w := tinyWorld(t)
	rows := w.DatasetStats()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	ratios := map[string]float64{}
	for _, r := range rows {
		if r.Articles == 0 || r.TotalMentions == 0 {
			t.Errorf("%s row empty: %+v", r.Source, r)
		}
		if r.LinkedRatio <= 0 || r.LinkedRatio >= 1 {
			t.Errorf("%s linked ratio = %v", r.Source, r.LinkedRatio)
		}
		ratios[r.Source] = r.LinkedRatio
	}
	// The paper's shape: reuters lowest linked ratio.
	if ratios["reuters"] >= ratios["seekingalpha"] || ratios["reuters"] >= ratios["nyt"] {
		t.Errorf("reuters should link least: %v", ratios)
	}
	if s := FormatDatasetStats(rows); !strings.Contains(s, "reuters") {
		t.Error("format output missing source")
	}
}

func TestTableIShape(t *testing.T) {
	w := tinyWorld(t)
	topics := w.TableI()
	if len(topics) != 6 {
		t.Fatalf("topics = %d, want 6", len(topics))
	}
	// Collect per-method averages (without GPT).
	avg := map[string]float64{}
	for _, tt := range topics {
		if len(tt.Rows) != 5 {
			t.Fatalf("topic %q has %d rows", tt.Topic, len(tt.Rows))
		}
		for _, row := range tt.Rows {
			for _, k := range KCuts {
				c := row.ByK[k]
				if c.Without < 0 || c.Without > 1 || c.With < 0 || c.With > 1 {
					t.Errorf("NDCG out of range: %+v", c)
				}
			}
			avg[row.Method] += row.ByK[10].Without
		}
	}
	for m := range avg {
		avg[m] /= float64(len(topics))
	}
	// Paper shape: NCExplorer best or second best overall; Lucene and
	// NewsLink trail the semantic methods.
	if avg[MethodNCExplorer] < avg["Lucene"] {
		t.Errorf("NCExplorer (%.3f) should beat Lucene (%.3f) at NDCG@10", avg[MethodNCExplorer], avg["Lucene"])
	}
	if avg[MethodNCExplorer] < avg["NewsLink"] {
		t.Errorf("NCExplorer (%.3f) should beat NewsLink (%.3f)", avg[MethodNCExplorer], avg["NewsLink"])
	}
	better := 0
	for _, m := range MethodOrder[:4] {
		if avg[MethodNCExplorer] >= avg[m] {
			better++
		}
	}
	if better < 3 {
		t.Errorf("NCExplorer should be near the top: averages %v", avg)
	}
	if s := FormatTableI(topics); !strings.Contains(s, "NCExplorer") {
		t.Error("format output incomplete")
	}
}

func TestTableIIDirections(t *testing.T) {
	w := tinyWorld(t)
	topics := w.TableI()
	rows := TableII(topics)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMethod := map[string]map[int]float64{}
	for _, r := range rows {
		byMethod[r.Method] = r.ByK
	}
	// The paper's key observations: GPT re-ranking *hurts* Lucene,
	// strongly helps the methods whose initial rankings are weakest
	// (BERT, NewsLink), and barely moves NCExplorer — whose rankings
	// are already close to what the judge would produce. When a
	// method's unre-ranked @1 is near-ideal the sign of its small delta
	// is noise, so NCExplorer is held to a magnitude bound rather than
	// a sign.
	if byMethod["Lucene"][1] >= 0 {
		t.Errorf("GPT re-rank should hurt Lucene at NDCG@1: %+v", byMethod["Lucene"])
	}
	for _, m := range []string{"BERT", "NewsLink"} {
		if byMethod[m][1] <= 0 {
			t.Errorf("GPT re-rank should help %s at NDCG@1: %+v", m, byMethod[m])
		}
		// Weak initial rankings gain far more than NCExplorer's.
		if byMethod[m][1] < byMethod[MethodNCExplorer][1] {
			t.Errorf("%s should gain more from re-ranking than NCExplorer", m)
		}
	}
	// At this corpus size a single topic recovering from a weak top-1
	// can dominate the six-topic @1 average, so the bound is loose; the
	// @10 impact is the stable indicator of "already well ranked".
	if nce := byMethod[MethodNCExplorer][1]; nce < -20 || nce > 150 {
		t.Errorf("NCExplorer re-rank impact out of range: %+v", byMethod[MethodNCExplorer])
	}
	if nce10 := byMethod[MethodNCExplorer][10]; nce10 < -8 || nce10 > 12 {
		t.Errorf("NCExplorer @10 impact should be near zero: %+v", byMethod[MethodNCExplorer])
	}
	if s := FormatTableII(rows); !strings.Contains(s, "%") {
		t.Error("format output incomplete")
	}
}

func TestTableIIIShape(t *testing.T) {
	w := tinyWorld(t)
	rows := w.TableIII(10)
	if len(rows) < 4 {
		t.Fatalf("tasks = %d, want ≥4", len(rows))
	}
	significant := 0
	for _, r := range rows {
		if r.ExplorerMean <= r.KeywordMean {
			t.Errorf("task %q: explorer %.2f ≤ keyword %.2f", r.Name, r.ExplorerMean, r.KeywordMean)
		}
		if r.P < 0.05 {
			significant++
		}
	}
	if significant < len(rows)*2/3 {
		t.Errorf("only %d/%d tasks significant", significant, len(rows))
	}
	if s := FormatTableIII(rows); !strings.Contains(s, "p (H1)") {
		t.Error("format output incomplete")
	}
}

func TestFig4Shape(t *testing.T) {
	w := tinyWorld(t)
	// Wall-clock measurements are noisy when the test binary shares the
	// machine with parallel packages or benchmarks; retry, and compare
	// the across-source aggregate rather than each source.
	var rows []Fig4Row
	ordered := false
	for attempt := 0; attempt < 5 && !ordered; attempt++ {
		rows = w.Fig4(30)
		var lucene, nce float64
		for _, r := range rows {
			lucene += r.PerMethodSec["Lucene"]
			nce += r.PerMethodSec[MethodNCExplorer]
		}
		// Lucene must be the cheapest indexer overall; NCExplorer costs
		// more (linking + relevance scoring), as in Fig. 4.
		ordered = lucene < nce
	}
	if !ordered {
		t.Error("Lucene repeatedly measured no cheaper than NCExplorer in aggregate")
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LinkShare+r.ScoreShare < 0.99 || r.LinkShare+r.ScoreShare > 1.01 {
			t.Errorf("%s: shares do not sum to 1: %v + %v", r.Source, r.LinkShare, r.ScoreShare)
		}
	}
	if s := FormatFig4(rows); !strings.Contains(s, "link/score") {
		t.Error("format output incomplete")
	}
}

func TestFig5Shape(t *testing.T) {
	w := tinyWorld(t)
	points := w.Fig5(20)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.Concepts != i+1 {
			t.Errorf("point %d has %d concepts", i, p.Concepts)
		}
		for _, m := range MethodOrder {
			if p.PerMethodSec[m] < 0 {
				t.Errorf("negative latency for %s", m)
			}
		}
	}
	if s := FormatFig5(points); !strings.Contains(s, "#Concepts") {
		t.Error("format output incomplete")
	}
}

func TestFig6Shape(t *testing.T) {
	w := tinyWorld(t)
	rows := w.Fig6(40)
	if len(rows) != 9 { // 3 sources × 3 τ
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	zeroByTau := map[int][]float64{}
	for _, r := range rows {
		// The headline effect: relevant concepts out-score negatives.
		if r.RelevantMean <= r.NegativeMean {
			t.Errorf("%s τ=%d: relevant %.4f ≤ negative %.4f",
				r.Source, r.Tau, r.RelevantMean, r.NegativeMean)
		}
		zeroByTau[r.Tau] = append(zeroByTau[r.Tau], r.ZeroFrac)
	}
	// More hops ⇒ fewer zero scores (τ=1 has the most zeros, as in the
	// paper's 55% vs 22.4%).
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(zeroByTau[1]) <= mean(zeroByTau[2]) {
		t.Errorf("zero fraction should drop from τ=1 (%.2f) to τ=2 (%.2f)",
			mean(zeroByTau[1]), mean(zeroByTau[2]))
	}
	if s := FormatFig6(rows); !strings.Contains(s, "zero-frac") {
		t.Error("format output incomplete")
	}
}

func TestFig7Shape(t *testing.T) {
	w := tinyWorld(t)
	points := w.Fig7(8, 4)
	if len(points) == 0 {
		t.Fatal("no points")
	}
	// Error must broadly decrease with samples, and guided walks must
	// converge faster at high sample counts.
	type key struct {
		src    string
		guided bool
	}
	first := map[key]float64{}
	last := map[key]float64{}
	for _, p := range points {
		k := key{p.Source, p.Guided}
		if p.Samples == Fig7SampleCounts[0] {
			first[k] = p.AvgErr
		}
		if p.Samples == Fig7SampleCounts[len(Fig7SampleCounts)-1] {
			last[k] = p.AvgErr
		}
	}
	for k, f := range first {
		l, ok := last[k]
		if !ok {
			continue
		}
		if k.guided && l > f {
			t.Errorf("%v: guided error grew from %.3f (n=1) to %.3f (n=50)", k, f, l)
		}
		// Unguided walks may simply never reach the target within τ
		// (the paper's dotted lines stay high); only exclude blow-ups.
		if !k.guided && l > f*1.15+0.05 {
			t.Errorf("%v: unguided error blew up from %.3f to %.3f", k, f, l)
		}
	}
	// Guided converges at least as well as unguided at n=50, per source.
	for src := range map[string]bool{"seekingalpha": true, "nyt": true, "reuters": true} {
		g, okg := last[key{src, true}]
		u, oku := last[key{src, false}]
		if okg && oku && g > u*1.5 {
			t.Errorf("%s: guided error %.3f ≫ unguided %.3f at n=50", src, g, u)
		}
	}
	if s := FormatFig7(points); !strings.Contains(s, "w/ index") {
		t.Error("format output incomplete")
	}
}

func TestFig8Shape(t *testing.T) {
	w := tinyWorld(t)
	rows := w.Fig8()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.C < 1 || r.CSD > 3 {
			t.Errorf("%s ratings out of scale: %+v", r.Domain, r)
		}
		// The paper's finding: adding components does not hurt, and the
		// full ranker (C+S+D) is the best of the three. Per-domain
		// samples are small, so allow rating noise there; the pooled
		// "overall" row must order strictly.
		const eps = 0.08
		if r.CSD < r.C-eps {
			t.Errorf("%s: C+S+D (%.3f) below C (%.3f)", r.Domain, r.CSD, r.C)
		}
		if r.CSD < r.CS-eps {
			t.Errorf("%s: C+S+D (%.3f) below C+S (%.3f)", r.Domain, r.CSD, r.CS)
		}
		if r.Domain == "overall" && (r.CSD < r.C || r.CSD < r.CS) {
			t.Errorf("overall: C+S+D (%.3f) must top C (%.3f) and C+S (%.3f)", r.CSD, r.C, r.CS)
		}
	}
	if s := FormatFig8(rows); !strings.Contains(s, "overall") {
		t.Error("format output incomplete")
	}
}

func TestReachIndexBuild(t *testing.T) {
	w := tinyWorld(t)
	res := w.ReachIndexBuild(50)
	if res.Targets != 50 {
		t.Fatalf("targets = %d", res.Targets)
	}
	if res.Bytes <= 0 || res.Seconds < 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if !strings.Contains(FormatReachBuild(res), "MB") {
		t.Error("format output incomplete")
	}
}

func TestWorldCaching(t *testing.T) {
	a := GetWorld(Tiny)
	b := GetWorld(Tiny)
	if a != b {
		t.Fatal("world not cached")
	}
}

func TestTableIDeterminism(t *testing.T) {
	w := tinyWorld(t)
	a := w.TableI()
	b := w.TableI()
	for i := range a {
		for j := range a[i].Rows {
			for _, k := range KCuts {
				if a[i].Rows[j].ByK[k] != b[i].Rows[j].ByK[k] {
					t.Fatalf("TableI not deterministic at topic %d row %d k %d", i, j, k)
				}
			}
		}
	}
}

func TestGPTDirectExtension(t *testing.T) {
	w := tinyWorld(t)
	rows := w.GPTDirect()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DirectN10 < 0 || r.DirectN10 > 1 || r.RerankN10 < 0 || r.RerankN10 > 1 {
			t.Errorf("%s: NDCG out of range: %+v", r.Topic, r)
		}
		if r.JudgeCalls != w.Corpus.Len() {
			t.Errorf("%s: judge calls = %d, want corpus size %d", r.Topic, r.JudgeCalls, w.Corpus.Len())
		}
	}
	if s := FormatGPTDirect(rows); !strings.Contains(s, "judge calls") {
		t.Error("format output incomplete")
	}
}
