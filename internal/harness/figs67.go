package harness

import (
	"fmt"
	"strings"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/reach"
	"ncexplorer/internal/relevance"
	"ncexplorer/internal/rw"
	"ncexplorer/internal/xrand"
)

// pairSample is one ⟨concept, document⟩ inverted-index entry used by
// the Fig. 6/7 experiments.
type pairSample struct {
	c   kg.NodeID
	doc int32
}

// samplePairs draws up to n inverted-index entries ⟨c, d⟩ for one
// source (concepts actually matched in the document, as the paper
// samples), deterministically.
func (w *World) samplePairs(src corpus.Source, n int, label uint64) []pairSample {
	r := w.queryRand(label ^ uint64(src+1)<<40)
	var all []pairSample
	for _, d := range w.Corpus.BySource(src) {
		for _, cs := range w.Engine.DocConcepts(d.ID) {
			all = append(all, pairSample{c: cs.Concept, doc: int32(d.ID)})
		}
	}
	if len(all) == 0 {
		return nil
	}
	r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// exactScorer builds an exact-connectivity scorer over the engine's
// document view. MaxExtent is kept modest so exact path enumeration
// stays tractable; the same cap applies to relevant and negative pairs,
// preserving the comparison.
func (w *World) exactScorer(tau int) *relevance.Scorer {
	return relevance.NewScorer(w.G, w.Engine, nil, relevance.Options{
		Tau: tau, Beta: 0.5, Exact: true, MaxExtent: 300,
	})
}

// ── E6: Fig. 6 — context relevance effectiveness ────────────────────

// Fig6Row reports, for one source and hop bound τ, the mean context
// relevance cdrc of true inverted-index pairs versus negative-sampled
// concepts, and the fraction of zero scores among true pairs (the
// paper reports 55% at τ=1 vs 22.4% at τ=2).
type Fig6Row struct {
	Source       string
	Tau          int
	RelevantMean float64
	NegativeMean float64
	ZeroFrac     float64
	Pairs        int
}

// Fig6 runs the negative-sampling study over nPairs entries per source.
func (w *World) Fig6(nPairs int) []Fig6Row {
	if nPairs <= 0 {
		nPairs = 100
	}
	// Candidate negatives: populated concepts (deterministic order).
	var concepts []kg.NodeID
	w.G.Concepts(func(c kg.NodeID) bool {
		if w.G.ExtentSize(c) >= 2 {
			concepts = append(concepts, c)
		}
		return true
	})
	var rows []Fig6Row
	for _, src := range corpus.Sources {
		pairs := w.samplePairs(src, nPairs, 6001)
		for tau := 1; tau <= 3; tau++ {
			s := w.exactScorer(tau)
			r := w.queryRand(uint64(6100+tau) ^ uint64(src)<<32)
			var relSum, negSum float64
			zero := 0
			count := 0
			for _, p := range pairs {
				rel := s.ContextRel(p.c, p.doc, nil)
				// Negative concept: random populated concept that does
				// NOT match the document.
				var neg float64
				for attempt := 0; attempt < 20; attempt++ {
					cn := concepts[r.Intn(len(concepts))]
					if cn == p.c || s.Matches(cn, p.doc) {
						continue
					}
					neg = s.ContextRel(cn, p.doc, nil)
					break
				}
				relSum += rel
				negSum += neg
				if rel == 0 {
					zero++
				}
				count++
			}
			if count == 0 {
				continue
			}
			rows = append(rows, Fig6Row{
				Source: src.String(), Tau: tau,
				RelevantMean: relSum / float64(count),
				NegativeMean: negSum / float64(count),
				ZeroFrac:     float64(zero) / float64(count),
				Pairs:        count,
			})
		}
	}
	return rows
}

// FormatFig6 renders the context-relevance figure as a table.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %4s %14s %14s %10s %6s\n",
		"Source", "τ", "relevant cdrc", "negative cdrc", "zero-frac", "pairs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %4d %14.4f %14.4f %9.1f%% %6d\n",
			r.Source, r.Tau, r.RelevantMean, r.NegativeMean, r.ZeroFrac*100, r.Pairs)
	}
	return b.String()
}

// ── E7: Fig. 7 — RW estimator convergence ───────────────────────────

// Fig7SampleCounts are the x-axis sample counts of Fig. 7.
var Fig7SampleCounts = []int{1, 2, 5, 10, 20, 30, 40, 50}

// Fig7Point reports the mean relative estimation error of cdrc for a
// source at a sample count, with or without reachability-index
// guidance.
type Fig7Point struct {
	Source  string
	Samples int
	Guided  bool
	AvgErr  float64
}

// Fig7 measures estimator convergence on nPairs inverted-index entries
// per source, repeating each estimate reps times.
func (w *World) Fig7(nPairs, reps int) []Fig7Point {
	if nPairs <= 0 {
		nPairs = 20
	}
	if reps <= 0 {
		reps = 5
	}
	tau := 2
	beta := 0.5
	exact := w.exactScorer(tau)
	ix := reach.New(w.G, tau, 0)
	guided := rw.New(w.G, ix, tau, beta)
	unguided := rw.New(w.G, nil, tau, beta)

	var out []Fig7Point
	for _, src := range corpus.Sources {
		pairs := w.samplePairs(src, nPairs*3, 7001)
		// Keep pairs with signal (non-zero exact connectivity) and a
		// context entity to walk to.
		type target struct {
			ext   []kg.NodeID
			v     kg.NodeID
			exact float64
		}
		var targets []target
		for _, p := range pairs {
			if len(targets) >= nPairs {
				break
			}
			_, context := exact.Split(p.c, p.doc)
			if len(context) == 0 {
				continue
			}
			best := context[0]
			bestW := -1.0
			for _, v := range context {
				if wt := w.Engine.EntityWeight(v, p.doc); wt > bestW {
					best, bestW = v, wt
				}
			}
			ext, _ := exact.Extent(p.c)
			if len(ext) == 0 {
				continue
			}
			ex := exact.PairScore(ext, best, nil)
			if ex <= 0 {
				continue
			}
			targets = append(targets, target{ext: ext, v: best, exact: ex})
		}
		if len(targets) == 0 {
			continue
		}
		for _, n := range Fig7SampleCounts {
			for _, mode := range []bool{true, false} {
				est := unguided
				if mode {
					est = guided
				}
				errSum := 0.0
				count := 0
				for ti, tg := range targets {
					for rep := 0; rep < reps; rep++ {
						r := xrand.Stream(w.Seed^uint64(7200+n),
							uint64(ti)<<20|uint64(rep)<<1|boolBit(mode)|uint64(src)<<40)
						got := est.EstimateConcept(r, tg.ext, tg.v, n)
						errSum += abs(got-tg.exact) / tg.exact
						count++
					}
				}
				out = append(out, Fig7Point{
					Source: src.String(), Samples: n, Guided: mode,
					AvgErr: errSum / float64(count),
				})
			}
		}
	}
	return out
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FormatFig7 renders the convergence figure as a table.
func FormatFig7(points []Fig7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-9s", "Source", "mode")
	for _, n := range Fig7SampleCounts {
		fmt.Fprintf(&b, " %7s", fmt.Sprintf("n=%d", n))
	}
	b.WriteByte('\n')
	bySource := map[string]map[bool]map[int]float64{}
	var order []string
	for _, p := range points {
		if bySource[p.Source] == nil {
			bySource[p.Source] = map[bool]map[int]float64{true: {}, false: {}}
			order = append(order, p.Source)
		}
		bySource[p.Source][p.Guided][p.Samples] = p.AvgErr
	}
	for _, src := range order {
		for _, guided := range []bool{true, false} {
			mode := "w/o index"
			if guided {
				mode = "w/ index"
			}
			fmt.Fprintf(&b, "%-14s %-9s", src, mode)
			for _, n := range Fig7SampleCounts {
				fmt.Fprintf(&b, " %6.1f%%", bySource[src][guided][n]*100)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
