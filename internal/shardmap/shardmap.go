// Package shardmap provides a sharded concurrent memo map with
// per-shard singleflight, the building block behind the query engine's
// lock-free serving path.
//
// It differs from internal/qcache in what it is for: qcache is a
// bounded LRU over opaque response bodies at the HTTP layer, while a
// shardmap.Map is an unbounded memoisation table for deterministic
// pure computations inside the engine (concept→matching-documents
// lists, (concept, document)→cdr scores). Because the memoised
// function is pure and deterministic, there is no error channel and no
// eviction: a value, once computed, is the value forever (until an
// explicit Reset).
//
// Concurrency model:
//
//   - keys hash to one of N power-of-two shards, each guarded by its
//     own mutex, so concurrent access to distinct keys rarely contends;
//   - GetOrCompute coalesces concurrent misses on the same key: exactly
//     one caller runs the compute function (outside the shard lock),
//     the rest block until it finishes and share the result;
//   - stored values must be treated as immutable by all callers — the
//     same value is handed to every getter.
//
// All methods are safe for concurrent use. The zero Map is not usable;
// construct with New.
package shardmap

import "sync"

// Stats is a point-in-time snapshot of a Map's effectiveness counters,
// summed across shards.
type Stats struct {
	// Hits counts lookups answered from a stored value.
	Hits int64 `json:"hits"`
	// Misses counts GetOrCompute calls that ran their compute function
	// and Get lookups that found nothing.
	Misses int64 `json:"misses"`
	// Coalesced counts GetOrCompute calls that piggybacked on another
	// caller's in-flight compute instead of running their own.
	Coalesced int64 `json:"coalesced"`
	// Entries is the current number of stored values.
	Entries int64 `json:"entries"`
}

// call is one in-flight compute shared by coalesced callers.
type call[V any] struct {
	wg       sync.WaitGroup
	val      V
	ok       bool // compute returned (false ⇒ it panicked)
	panicVal any  // the recovered value when ok is false
}

type shard[K comparable, V any] struct {
	mu       sync.Mutex
	items    map[K]V
	inflight map[K]*call[V]

	hits, misses, coalesced int64
}

// Map is a sharded concurrent memo map. K is hashed by the function
// supplied to New.
type Map[K comparable, V any] struct {
	shards []shard[K, V]
	mask   uint64
	hash   func(K) uint64
}

// New returns a map with the given shard count (rounded up to a power
// of two, minimum 1). hash must be deterministic; Mix64 is a suitable
// finalizer for integer keys.
func New[K comparable, V any](shards int, hash func(K) uint64) *Map[K, V] {
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Map[K, V]{shards: make([]shard[K, V], n), mask: uint64(n - 1), hash: hash}
	for i := range m.shards {
		m.shards[i].items = make(map[K]V)
		m.shards[i].inflight = make(map[K]*call[V])
	}
	return m
}

// Mix64 is a splitmix64-style finalizer: a cheap, well-distributed
// hash for integer-derived keys.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (m *Map[K, V]) shard(k K) *shard[K, V] {
	return &m.shards[m.hash(k)&m.mask]
}

// Get returns the stored value for k, if any.
func (m *Map[K, V]) Get(k K) (V, bool) {
	s := m.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.items[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return v, ok
}

// Store records v under k unconditionally. Used to pre-seed the map
// with values computed elsewhere (e.g. at index build time); it does
// not touch the hit/miss counters.
func (m *Map[K, V]) Store(k K, v V) {
	s := m.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
}

// GetOrCompute returns the value for k, running fn on a miss. fn is
// called outside the shard lock, so it may itself use the map (on
// other keys) or block. Concurrent calls for the same key are
// coalesced: exactly one runs fn, the rest wait and share its result.
// The second return value reports whether THIS caller ran fn.
//
// fn must be deterministic for its key: coalesced and later callers
// all observe the first computed value. If fn panics, the panic
// propagates to the computing caller, nothing is stored, and every
// coalesced waiter panics too (a poisoned key never deadlocks).
func (m *Map[K, V]) GetOrCompute(k K, fn func() V) (V, bool) {
	s := m.shard(k)
	s.mu.Lock()
	if v, ok := s.items[k]; ok {
		s.hits++
		s.mu.Unlock()
		return v, false
	}
	if cl, ok := s.inflight[k]; ok {
		s.coalesced++
		s.mu.Unlock()
		cl.wg.Wait()
		if !cl.ok {
			// Re-panic with the computing goroutine's panic value so
			// waiters' crash reports carry the root cause too.
			panic(cl.panicVal)
		}
		return cl.val, false
	}
	cl := &call[V]{}
	cl.wg.Add(1)
	s.inflight[k] = cl
	s.misses++
	s.mu.Unlock()

	defer func() {
		if !cl.ok {
			cl.panicVal = recover()
		}
		s.mu.Lock()
		delete(s.inflight, k)
		// Store-if-absent: a value that appeared meanwhile (a Store
		// racing with this compute, e.g. a cache reseed after Reset)
		// wins over the computed one, so an authoritative re-seed is
		// never clobbered by an in-flight compute finishing late.
		if _, exists := s.items[k]; cl.ok && !exists {
			s.items[k] = cl.val
		}
		s.mu.Unlock()
		cl.wg.Done()
		if !cl.ok {
			panic(cl.panicVal)
		}
	}()
	cl.val = fn()
	cl.ok = true
	return cl.val, true
}

// Len returns the current number of stored values.
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Range calls fn for every stored entry, one shard at a time under
// that shard's lock (fn must not call back into the map). Iteration
// order is unspecified; entries stored concurrently may or may not be
// observed. Serializers use it to dump a memo's contents.
func (m *Map[K, V]) Range(fn func(k K, v V)) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for k, v := range s.items {
			fn(k, v)
		}
		s.mu.Unlock()
	}
}

// Reset drops every stored value. Effectiveness counters are retained
// (they describe lifetime behaviour, not contents). Computes in flight
// at reset time complete normally and store into the emptied map —
// acceptable for deterministic functions, whose recomputed value would
// be identical anyway.
func (m *Map[K, V]) Reset() {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		s.items = make(map[K]V)
		s.mu.Unlock()
	}
}

// Stats sums effectiveness counters across shards.
func (m *Map[K, V]) Stats() Stats {
	var out Stats
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Coalesced += s.coalesced
		out.Entries += int64(len(s.items))
		s.mu.Unlock()
	}
	return out
}
