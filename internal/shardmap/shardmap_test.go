package shardmap

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func hashInt(k int) uint64 { return Mix64(uint64(k)) }

func TestGetStore(t *testing.T) {
	m := New[int, string](8, hashInt)
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map reported a value")
	}
	m.Store(1, "one")
	v, ok := m.Get(1)
	if !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrComputeMemoises(t *testing.T) {
	m := New[int, int](4, hashInt)
	calls := 0
	for i := 0; i < 3; i++ {
		v, computed := m.GetOrCompute(7, func() int { calls++; return 49 })
		if v != 49 {
			t.Fatalf("iteration %d: v = %d", i, v)
		}
		if computed != (i == 0) {
			t.Fatalf("iteration %d: computed = %v", i, computed)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

// TestSingleflight verifies the coalescing contract: N concurrent
// callers for one cold key run the compute exactly once and all see
// its value.
func TestSingleflight(t *testing.T) {
	m := New[int, int](1, hashInt) // one shard: maximum contention
	const waiters = 32
	var calls atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	// Caller 0 takes the key and blocks inside the compute until every
	// other caller has been launched, guaranteeing they coalesce.
	var wg sync.WaitGroup
	results := make([]int, waiters)
	computed := make([]bool, waiters)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], computed[0] = m.GetOrCompute(5, func() int {
			calls.Add(1)
			close(started)
			<-release
			return 25
		})
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], computed[i] = m.GetOrCompute(5, func() int {
				calls.Add(1)
				return 25
			})
		}(i)
	}
	// Wait until all waiters are either queued on the in-flight call or
	// done (they cannot finish before release). Coalesced counts are
	// only observable after the fact, so release and then assert.
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	nComputed := 0
	for i, r := range results {
		if r != 25 {
			t.Fatalf("caller %d saw %d", i, r)
		}
		if computed[i] {
			nComputed++
		}
	}
	if nComputed != 1 {
		t.Fatalf("%d callers reported computed=true, want 1", nComputed)
	}
	st := m.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Coalesced+st.Hits != waiters-1 {
		t.Fatalf("coalesced(%d) + hits(%d) != %d", st.Coalesced, st.Hits, waiters-1)
	}
}

// TestConcurrentGetOrCompute hammers overlapping keys from many
// goroutines under -race: every caller must observe the one memoised
// value for its key, and each key's compute must run exactly once.
func TestConcurrentGetOrCompute(t *testing.T) {
	m := New[int, int](8, hashInt)
	const keys = 64
	const goroutines = 16
	const iters = 200
	var computes [keys]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*31 + i) % keys
				v, _ := m.GetOrCompute(k, func() int {
					computes[k].Add(1)
					return k * k
				})
				if v != k*k {
					t.Errorf("key %d: got %d", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for k := range computes {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want 1", k, n)
		}
	}
	if m.Len() != keys {
		t.Errorf("Len = %d, want %d", m.Len(), keys)
	}
}

// TestReset verifies the semantics ResetQueryCaches depends on:
// entries are dropped, counters survive, and the map is immediately
// reusable (values recompute on demand).
func TestReset(t *testing.T) {
	m := New[int, int](4, hashInt)
	for k := 0; k < 10; k++ {
		m.GetOrCompute(k, func() int { return k })
	}
	before := m.Stats()
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	after := m.Stats()
	if after.Misses != before.Misses || after.Hits != before.Hits {
		t.Fatalf("Reset clobbered counters: %+v vs %+v", after, before)
	}
	if after.Entries != 0 {
		t.Fatalf("Entries after Reset = %d", after.Entries)
	}
	v, computed := m.GetOrCompute(3, func() int { return 33 })
	if !computed || v != 33 {
		t.Fatalf("post-Reset compute: v=%d computed=%v", v, computed)
	}
}

// TestPanicPropagation: a panicking compute poisons neither the key
// nor the shard — the panicker and any coalesced waiters panic with
// the ORIGINAL panic value, nothing is stored, and a later call
// recomputes cleanly.
func TestPanicPropagation(t *testing.T) {
	m := New[int, int](1, hashInt)

	// A waiter coalesced onto the doomed compute must observe the same
	// panic value as the computing goroutine. The key is registered
	// in-flight before fn runs, so once fn has started the waiter is
	// guaranteed to coalesce; fn waits for that (via the counter)
	// before panicking.
	entered := make(chan struct{})
	waiterPanic := make(chan any, 1)
	go func() {
		defer func() { waiterPanic <- recover() }()
		<-entered
		m.GetOrCompute(9, func() int { t.Error("waiter ran the compute"); return 0 })
	}()

	func() {
		defer func() {
			if got := recover(); got != "boom" {
				t.Errorf("computer recovered %v, want \"boom\"", got)
			}
		}()
		m.GetOrCompute(9, func() int {
			close(entered)
			for i := 0; i < 5000 && m.Stats().Coalesced == 0; i++ {
				time.Sleep(time.Millisecond)
			}
			panic("boom")
		})
	}()
	if got := <-waiterPanic; got != "boom" {
		t.Errorf("waiter recovered %v, want \"boom\"", got)
	}

	if m.Len() != 0 {
		t.Fatal("panicked compute left a stored value")
	}
	v, computed := m.GetOrCompute(9, func() int { return 81 })
	if !computed || v != 81 {
		t.Fatalf("recompute after panic: v=%d computed=%v", v, computed)
	}
}
