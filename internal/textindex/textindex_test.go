package textindex

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"ncexplorer/internal/nlp"
	"ncexplorer/internal/xrand"
)

func buildIndex(t testing.TB, docs []string) *Index {
	t.Helper()
	ix := New()
	for i, d := range docs {
		ix.Add(int32(i), nlp.Terms(d))
	}
	return ix
}

func TestBasicRetrieval(t *testing.T) {
	ix := buildIndex(t, []string{
		"the regulator fined the exchange for fraud",
		"the election turnout surprised pollsters",
		"fraud charges against the exchange widened",
	})
	hits := ix.SearchBM25(nlp.Terms("exchange fraud"), 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	if hits[0].Doc == 1 || hits[1].Doc == 1 {
		t.Fatalf("irrelevant doc retrieved: %+v", hits)
	}
	if hits[0].Score < hits[1].Score {
		t.Fatal("results not sorted by score")
	}
}

func TestIDFAndRareTermsWin(t *testing.T) {
	// "tariff" is rare, "market" is everywhere: a doc matching the rare
	// term must outrank one matching only the common term.
	docs := []string{
		"tariff dispute shakes market",
		"market update for traders",
		"market overview and market notes",
		"market conditions remain calm",
	}
	ix := buildIndex(t, docs)
	if ix.IDF("tariff") <= ix.IDF("market") {
		t.Fatalf("IDF(tariff)=%v should exceed IDF(market)=%v",
			ix.IDF("tariff"), ix.IDF("market"))
	}
	hits := ix.SearchBM25(nlp.Terms("tariff market"), 4)
	if hits[0].Doc != 0 {
		t.Fatalf("doc 0 should rank first: %+v", hits)
	}
}

func TestDocLengthNormalization(t *testing.T) {
	// Same tf, shorter doc ⇒ higher BM25.
	long := "merger merger talk talk talk deal deal outlook outlook review review statement statement"
	short := "merger deal"
	ix := buildIndex(t, []string{long, short})
	hits := ix.SearchBM25(nlp.Terms("merger"), 2)
	if hits[0].Doc != 1 {
		t.Fatalf("short doc should win: %+v", hits)
	}
}

func TestTFIDFBounds(t *testing.T) {
	ix := buildIndex(t, []string{
		"ftx ftx ftx collapse",
		"ftx mentioned once among many other interesting words today",
		"nothing relevant here at all",
	})
	w0 := ix.TFIDF("ftx", 0)
	w1 := ix.TFIDF("ftx", 1)
	w2 := ix.TFIDF("ftx", 2)
	if w0 <= w1 {
		t.Errorf("dominant term should weigh more: %v vs %v", w0, w1)
	}
	if w2 != 0 {
		t.Errorf("absent term weight = %v, want 0", w2)
	}
	for _, w := range []float64{w0, w1} {
		if w <= 0 || w > 1 {
			t.Errorf("weight out of (0,1]: %v", w)
		}
	}
}

func TestTopKLimit(t *testing.T) {
	var docs []string
	for i := 0; i < 50; i++ {
		docs = append(docs, "common filler text number "+fmt.Sprint(i))
	}
	ix := buildIndex(t, docs)
	hits := ix.SearchBM25(nlp.Terms("common filler"), 5)
	if len(hits) != 5 {
		t.Fatalf("len = %d, want 5", len(hits))
	}
}

func TestEmptyQueryAndIndex(t *testing.T) {
	ix := New()
	if hits := ix.SearchBM25(nlp.Terms("anything"), 5); hits != nil {
		t.Fatalf("empty index returned %+v", hits)
	}
	ix = buildIndex(t, []string{"some document"})
	if hits := ix.SearchBM25(map[string]int{}, 5); len(hits) != 0 {
		t.Fatalf("empty query returned %+v", hits)
	}
	if hits := ix.SearchBM25(nlp.Terms("unknownword"), 5); len(hits) != 0 {
		t.Fatalf("unknown term returned %+v", hits)
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	ix := New()
	ix.Add(1, map[string]int{"a": 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate doc")
		}
	}()
	ix.Add(1, map[string]int{"b": 1})
}

func TestStatsAccessors(t *testing.T) {
	ix := buildIndex(t, []string{"alpha beta beta", "alpha gamma"})
	if ix.NumDocs() != 2 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	if ix.DF("alpha") != 2 || ix.DF("beta") != 1 {
		t.Errorf("DF wrong: %d/%d", ix.DF("alpha"), ix.DF("beta"))
	}
	if ix.DocLen(0) != 3 || ix.DocLen(1) != 2 {
		t.Errorf("DocLen wrong: %d/%d", ix.DocLen(0), ix.DocLen(1))
	}
	if math.Abs(ix.AvgDocLen()-2.5) > 1e-9 {
		t.Errorf("AvgDocLen = %v", ix.AvgDocLen())
	}
	if ix.TF("beta", 0) != 2 {
		t.Errorf("TF = %d", ix.TF("beta", 0))
	}
}

func TestTFAfterFreezeUsesBinarySearch(t *testing.T) {
	ix := buildIndex(t, []string{"x common", "y common", "z common"})
	ix.SearchBM25(nlp.Terms("common"), 1) // triggers freeze
	if ix.TF("common", 1) != 1 {
		t.Errorf("frozen TF lookup failed")
	}
	if ix.TF("common", 99) != 0 {
		t.Errorf("frozen TF for absent doc should be 0")
	}
	ps := ix.Postings("common")
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Doc >= ps[i].Doc {
			t.Fatal("postings not sorted after freeze")
		}
	}
}

func TestSearchDeterminism(t *testing.T) {
	r := xrand.New(3)
	var docs []string
	words := []string{"trade", "court", "vote", "deal", "strike", "fraud", "bank"}
	for i := 0; i < 40; i++ {
		s := ""
		for j := 0; j < 6; j++ {
			s += words[r.Intn(len(words))] + " "
		}
		docs = append(docs, s)
	}
	ix := buildIndex(t, docs)
	q := nlp.Terms("trade fraud")
	first := ix.SearchBM25(q, 10)
	for run := 0; run < 5; run++ {
		again := ix.SearchBM25(q, 10)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("non-deterministic results at run %d", run)
			}
		}
	}
}

// Property: BM25 scores are non-negative and results are sorted.
func TestBM25Invariants(t *testing.T) {
	words := []string{"a1", "b2", "c3", "d4", "e5", "f6"}
	err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed)
		ix := New()
		for d := 0; d < 20; d++ {
			tf := map[string]int{}
			for j := 0; j < 5; j++ {
				tf[words[r.Intn(len(words))]]++
			}
			ix.Add(int32(d), tf)
		}
		q := map[string]int{words[r.Intn(len(words))]: 1, words[r.Intn(len(words))]: 1}
		hits := ix.SearchBM25(q, 10)
		for i, h := range hits {
			if h.Score < 0 {
				return false
			}
			if i > 0 && hits[i-1].Score < h.Score {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

// TestMergedMatchesMonolithic is the segmented-index equivalence
// contract: a Merged view over any partition of a document set must
// report bit-identical statistics (DF, IDF, TF, TFIDF) to one Index
// holding all documents — global doc IDs included.
func TestMergedMatchesMonolithic(t *testing.T) {
	r := xrand.New(99)
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%d", i)
	}
	const nDocs = 120
	tfs := make([]map[string]int, nDocs)
	mono := New()
	for d := 0; d < nDocs; d++ {
		tf := map[string]int{}
		for j := 0; j < 1+r.Intn(25); j++ {
			tf[vocab[r.Intn(len(vocab))]]++
		}
		tfs[d] = tf
		mono.Add(int32(d), tf)
	}
	mono.Freeze()

	for _, cuts := range [][]int{{nDocs}, {70, 50}, {40, 1, 60, 19}} {
		var parts []*Index
		var bases []int32
		base := 0
		for _, n := range cuts {
			part := New()
			for i := 0; i < n; i++ {
				part.Add(int32(i), tfs[base+i])
			}
			part.Freeze()
			parts = append(parts, part)
			bases = append(bases, int32(base))
			base += n
		}
		m := NewMerged(parts, bases)
		if m.NumDocs() != mono.NumDocs() {
			t.Fatalf("cuts %v: NumDocs = %d, want %d", cuts, m.NumDocs(), mono.NumDocs())
		}
		for _, w := range vocab {
			if m.DF(w) != mono.DF(w) {
				t.Fatalf("cuts %v: DF(%s) = %d, want %d", cuts, w, m.DF(w), mono.DF(w))
			}
			if m.IDF(w) != mono.IDF(w) {
				t.Fatalf("cuts %v: IDF(%s) = %v, want %v", cuts, w, m.IDF(w), mono.IDF(w))
			}
			for d := int32(0); d < nDocs; d++ {
				if m.TF(w, d) != mono.TF(w, d) {
					t.Fatalf("cuts %v: TF(%s, %d) = %d, want %d", cuts, w, d, m.TF(w, d), mono.TF(w, d))
				}
				if got, want := m.TFIDF(w, d), mono.TFIDF(w, d); got != want {
					t.Fatalf("cuts %v: TFIDF(%s, %d) = %v, want %v (must be bit-identical)",
						cuts, w, d, got, want)
				}
			}
		}
	}
}

func BenchmarkSearchBM25(b *testing.B) {
	r := xrand.New(1)
	ix := New()
	vocab := make([]string, 500)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%d", i)
	}
	for d := 0; d < 2000; d++ {
		tf := map[string]int{}
		for j := 0; j < 80; j++ {
			tf[vocab[r.Intn(len(vocab))]]++
		}
		ix.Add(int32(d), tf)
	}
	q := map[string]int{"w1": 1, "w2": 1, "w3": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchBM25(q, 10)
	}
}
