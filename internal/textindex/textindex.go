// Package textindex implements an inverted index with BM25 ranking and
// TF-IDF term weights. It plays two roles from the paper:
//
//   - it is the Lucene baseline ("a typical bag-of-words keyword match
//     model … BM25 for the term weighting scheme"), and
//   - it supplies the term weight tw(v, d) used by the ontology
//     relevance score (Eq. 3), where an entity's textual importance in
//     a document decides which matched entity is the pivot.
//
// Documents are added once, identified by dense int32 IDs; the index is
// then read-only and safe for concurrent searches.
package textindex

import (
	"math"
	"sort"

	"ncexplorer/internal/topk"
)

// BM25 parameters (the standard Robertson defaults the paper's Lucene
// configuration uses).
const (
	k1 = 1.2
	b  = 0.75
)

// Posting records one document's term frequency for a term.
type Posting struct {
	Doc int32
	TF  int32
}

// Hit is one search result.
type Hit struct {
	Doc   int32
	Score float64
}

// Index is an in-memory inverted index.
type Index struct {
	postings map[string][]Posting
	docLen   map[int32]int
	totalLen int64
	n        int
	frozen   bool
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]Posting),
		docLen:   make(map[int32]int),
	}
}

// Add indexes a document given its term-frequency map. Each document ID
// may be added once; Add panics on duplicates to surface pipeline bugs.
func (ix *Index) Add(doc int32, tf map[string]int) {
	if _, dup := ix.docLen[doc]; dup {
		panic("textindex: duplicate document ID")
	}
	ix.frozen = false
	length := 0
	for term, f := range tf {
		if f <= 0 {
			continue
		}
		ix.postings[term] = append(ix.postings[term], Posting{Doc: doc, TF: int32(f)})
		length += f
	}
	ix.docLen[doc] = length
	ix.totalLen += int64(length)
	ix.n++
}

// Freeze sorts postings by document ID and marks the index immutable
// in practice: after Freeze (and absent further Add calls, which
// unfreeze), every read method — TF, TFIDF, IDF, SearchBM25, Postings —
// touches only frozen data and is therefore safe for concurrent use.
// TF lookups switch from linear scans to binary searches. Call it once
// indexing is complete, before serving concurrent readers.
func (ix *Index) Freeze() { ix.freeze() }

// freeze sorts postings by document ID for deterministic iteration.
func (ix *Index) freeze() {
	if ix.frozen {
		return
	}
	for term := range ix.postings {
		ps := ix.postings[term]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Doc < ps[j].Doc })
	}
	ix.frozen = true
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.n }

// DF returns the document frequency of a term.
func (ix *Index) DF(term string) int { return len(ix.postings[term]) }

// DocLen returns the token length of a document.
func (ix *Index) DocLen(doc int32) int { return ix.docLen[doc] }

// AvgDocLen returns the mean document length.
func (ix *Index) AvgDocLen() float64 {
	if ix.n == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(ix.n)
}

// IDF returns the BM25 inverse document frequency of a term.
func (ix *Index) IDF(term string) float64 {
	df := float64(ix.DF(term))
	return math.Log(1 + (float64(ix.n)-df+0.5)/(df+0.5))
}

// TF returns the term frequency of term in doc (0 if absent).
func (ix *Index) TF(term string, doc int32) int {
	ps := ix.postings[term]
	// Postings may be unsorted before freeze; linear scan is fine for
	// the short lists involved, but binary search after freeze.
	if ix.frozen {
		i := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= doc })
		if i < len(ps) && ps[i].Doc == doc {
			return int(ps[i].TF)
		}
		return 0
	}
	for _, p := range ps {
		if p.Doc == doc {
			return int(p.TF)
		}
	}
	return 0
}

// TFIDF returns a normalised TF-IDF weight in [0, 1]: a saturated term
// frequency tf/(tf+1) damped by IDF relative to the maximum possible
// IDF. This is the tw(v, d) used by the ontology relevance score.
// Saturation (the BM25 family's tf treatment) rewards *repeated*
// mentions — an entity a story keeps returning to — without rewarding
// document brevity: raw tf/len would let a one-line market wrap outrank
// sustained coverage for the same entity.
func (ix *Index) TFIDF(term string, doc int32) float64 {
	tf := ix.TF(term, doc)
	if tf == 0 {
		return 0
	}
	idfMax := math.Log(1 + (float64(ix.n)+0.5)/0.5)
	if idfMax == 0 {
		return 0
	}
	sat := float64(tf) / (float64(tf) + 1)
	return sat * (ix.IDF(term) / idfMax)
}

// SearchBM25 returns the top-k documents for a bag-of-words query.
func (ix *Index) SearchBM25(query map[string]int, k int) []Hit {
	ix.freeze()
	if k <= 0 || ix.n == 0 {
		return nil
	}
	avg := ix.AvgDocLen()
	scores := make(map[int32]float64)
	// Deterministic term order.
	terms := make([]string, 0, len(query))
	for term, qf := range query {
		if qf > 0 && len(ix.postings[term]) > 0 {
			terms = append(terms, term)
		}
	}
	sort.Strings(terms)
	for _, term := range terms {
		idf := ix.IDF(term)
		for _, p := range ix.postings[term] {
			tf := float64(p.TF)
			dl := float64(ix.docLen[p.Doc])
			denom := tf + k1*(1-b+b*dl/avg)
			scores[p.Doc] += idf * tf * (k1 + 1) / denom
		}
	}
	// Deterministic result order: push docs in ascending ID.
	docs := make([]int32, 0, len(scores))
	for doc := range scores {
		docs = append(docs, doc)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	coll := topk.New[int32](k)
	for _, doc := range docs {
		coll.Push(doc, scores[doc])
	}
	items := coll.Sorted()
	out := make([]Hit, len(items))
	for i, it := range items {
		out[i] = Hit{Doc: it.Value, Score: it.Score}
	}
	return out
}

// Postings exposes a term's posting list (frozen order). The returned
// slice must not be modified.
func (ix *Index) Postings(term string) []Posting {
	ix.freeze()
	return ix.postings[term]
}

// Terms returns every indexed term in sorted order — the deterministic
// iteration order serializers need (map iteration would differ run to
// run).
func (ix *Index) Terms() []string {
	terms := make([]string, 0, len(ix.postings))
	for term := range ix.postings {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	return terms
}

// Restore reconstructs a frozen index directly from its serialized
// parts: n documents (dense local IDs 0..n−1) and per-term posting
// lists already sorted by document ID. Document lengths are derived by
// summing term frequencies, exactly what Add would have accumulated,
// so a restored index answers every read identically to the index that
// was serialized. The posting slices are retained, not copied.
func Restore(n int, terms []string, postings [][]Posting) *Index {
	ix := &Index{
		postings: make(map[string][]Posting, len(terms)),
		docLen:   make(map[int32]int, n),
		n:        n,
		frozen:   true,
	}
	for i, term := range terms {
		ix.postings[term] = postings[i]
		for _, p := range postings[i] {
			ix.docLen[p.Doc] += int(p.TF)
			ix.totalLen += int64(p.TF)
		}
	}
	return ix
}

// TotalLen returns the summed token length of all documents.
func (ix *Index) TotalLen() int64 { return ix.totalLen }

// Merged is a read-only union of frozen per-segment indexes that
// reports *corpus-global* statistics: document frequencies, IDF, and
// TF-IDF are computed from the summed counts of every part, so a
// Merged over segments {A, B} returns bit-identical values to a single
// Index built over A ∪ B. This is what keeps an incrementally grown
// (segmented) index equivalent to a from-scratch rebuild — per-segment
// statistics alone would skew IDF toward whichever segment a document
// happened to land in.
//
// Each part owns a contiguous global document-ID range starting at its
// base; lookups map a global ID to (part, local ID) by binary search.
// Parts must be frozen before construction and never modified after;
// a Merged is then immutable and safe for concurrent use.
type Merged struct {
	parts    []*Index
	bases    []int32
	n        int
	totalLen int64
	remoteDF map[string]int
}

// RemoteStats carries the term statistics of documents a shard does
// not hold locally: their count, summed token length, and per-term
// document frequencies. Folding these into a Merged makes a shard's
// IDF/TF-IDF arithmetic bit-identical to a monolithic index over the
// full corpus — DF and N are plain sums over disjoint document sets,
// so local + remote counts reproduce the global counts exactly.
type RemoteStats struct {
	// Docs is the number of remote documents.
	Docs int
	// TotalLen is the summed token length of the remote documents.
	TotalLen int64
	// DF maps each term to its document frequency among the remote
	// documents.
	DF map[string]int
}

// NewMerged builds a merged view over frozen parts, where parts[i]'s
// local document 0 has global ID bases[i]. Parts must be sorted by
// base with no overlaps (the segment layout guarantees this).
func NewMerged(parts []*Index, bases []int32) *Merged {
	return NewMergedRemote(parts, bases, nil)
}

// NewMergedRemote builds a merged view over frozen parts plus the term
// statistics of remote documents (nil remote means none). Remote
// documents contribute to NumDocs, DF, IDF, and TotalLen but have no
// postings here: TF and the saturated half of TFIDF are resolved from
// local parts only, which is exactly the split a sharded corpus needs —
// per-document weights come from the shard owning the document, while
// the IDF damping uses global counts.
func NewMergedRemote(parts []*Index, bases []int32, remote *RemoteStats) *Merged {
	if len(parts) != len(bases) {
		panic("textindex: parts/bases length mismatch")
	}
	m := &Merged{parts: parts, bases: bases}
	for _, p := range parts {
		p.freeze()
		m.n += p.n
		m.totalLen += p.totalLen
	}
	if remote != nil {
		m.n += remote.Docs
		m.totalLen += remote.TotalLen
		m.remoteDF = remote.DF
	}
	return m
}

// locate maps a global document ID to its owning part and local ID.
func (m *Merged) locate(doc int32) (*Index, int32) {
	// First part whose base is > doc, minus one.
	lo, hi := 0, len(m.bases)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.bases[mid] <= doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil, 0
	}
	return m.parts[lo-1], doc - m.bases[lo-1]
}

// NumDocs returns the total number of documents across parts.
func (m *Merged) NumDocs() int { return m.n }

// DF returns the corpus-global document frequency of a term,
// including remote documents when the view carries remote statistics.
func (m *Merged) DF(term string) int {
	df := m.remoteDF[term]
	for _, p := range m.parts {
		df += p.DF(term)
	}
	return df
}

// TotalLen returns the summed token length across parts (plus remote
// documents when present).
func (m *Merged) TotalLen() int64 { return m.totalLen }

// IDF returns the BM25 inverse document frequency of a term over the
// merged corpus — the same formula as Index.IDF with summed counts.
func (m *Merged) IDF(term string) float64 {
	df := float64(m.DF(term))
	return math.Log(1 + (float64(m.n)-df+0.5)/(df+0.5))
}

// TF returns the term frequency of term in the given global document.
func (m *Merged) TF(term string, doc int32) int {
	p, local := m.locate(doc)
	if p == nil {
		return 0
	}
	return p.TF(term, local)
}

// TFIDF is Index.TFIDF over the merged corpus: saturated term
// frequency from the owning part, IDF from the global counts. The
// arithmetic mirrors Index.TFIDF exactly so single-part merges are
// bit-identical to querying the part directly.
func (m *Merged) TFIDF(term string, doc int32) float64 {
	tf := m.TF(term, doc)
	if tf == 0 {
		return 0
	}
	idfMax := math.Log(1 + (float64(m.n)+0.5)/0.5)
	if idfMax == 0 {
		return 0
	}
	sat := float64(tf) / (float64(tf) + 1)
	return sat * (m.IDF(term) / idfMax)
}
