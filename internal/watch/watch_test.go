package watch

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

func art(id int, title string) Article {
	return Article{
		ID:     id,
		Source: "wire",
		Title:  title,
		Body:   "body of " + title,
		Score:  float64(id) * 0.25,
		Explanations: []Explanation{
			{Concept: "politics", CDR: 0.5, Pivot: "senate"},
			{Concept: "economy", CDR: 0.25},
		},
	}
}

func TestRegisterAssignsIDsAndCanonicalizes(t *testing.T) {
	r := NewRegistry(Options{})
	d1, err := r.Register(Definition{Name: "a", Concepts: []string{"b", "a", "b", ""}})
	if err != nil {
		t.Fatal(err)
	}
	if d1.ID != "w000001" {
		t.Fatalf("first ID = %q", d1.ID)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(d1.Concepts, want) {
		t.Fatalf("concepts = %v, want %v", d1.Concepts, want)
	}
	d2, _ := r.Register(Definition{Name: "b"})
	if d2.ID != "w000002" {
		t.Fatalf("second ID = %q", d2.ID)
	}
	if d2.Concepts != nil || d2.Sources != nil {
		t.Fatalf("empty lists should canonicalize to nil: %v %v", d2.Concepts, d2.Sources)
	}
}

func TestRegisterLimit(t *testing.T) {
	r := NewRegistry(Options{MaxWatchlists: 2})
	r.Register(Definition{})
	r.Register(Definition{})
	if _, err := r.Register(Definition{}); !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	// Removal frees a slot.
	if !r.Remove("w000001") {
		t.Fatal("remove failed")
	}
	if _, err := r.Register(Definition{}); err != nil {
		t.Fatalf("register after remove: %v", err)
	}
}

func TestGetListRemove(t *testing.T) {
	r := NewRegistry(Options{})
	d, _ := r.Register(Definition{Name: "x"})
	if _, _, ok := r.Get(d.ID); !ok {
		t.Fatal("Get missed registered list")
	}
	if _, _, ok := r.Get("w0000ff"); ok {
		t.Fatal("Get found unknown ID")
	}
	r.Register(Definition{Name: "y"})
	defs, seqs := r.List()
	if len(defs) != 2 || defs[0].Name != "x" || defs[1].Name != "y" {
		t.Fatalf("List = %+v", defs)
	}
	if seqs[0] != 0 || seqs[1] != 0 {
		t.Fatalf("fresh seqs = %v", seqs)
	}
	if r.Remove("nope") {
		t.Fatal("Remove of unknown ID succeeded")
	}
	if !r.Remove(d.ID) {
		t.Fatal("Remove failed")
	}
	if got := r.Counters().Watchlists; got != 1 {
		t.Fatalf("watchlists after remove = %d", got)
	}
}

func TestPublishSequencesAndReplay(t *testing.T) {
	r := NewRegistry(Options{AlertBuffer: 8})
	d, _ := r.Register(Definition{})
	r.Publish(d.ID, 3, []Article{art(0, "t0"), art(1, "t1")})
	r.Publish(d.ID, 4, []Article{art(2, "t2")})
	r.Publish("w0ghost", 4, []Article{art(9, "gone")}) // removed list: no-op

	alerts, earliest, err := r.Replay(d.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if earliest != 1 || len(alerts) != 3 {
		t.Fatalf("earliest=%d len=%d", earliest, len(alerts))
	}
	for i, a := range alerts {
		if a.Seq != uint64(i+1) || a.Watchlist != d.ID {
			t.Fatalf("alert %d = %+v", i, a)
		}
	}
	if alerts[2].Generation != 4 || alerts[2].Article.Title != "t2" {
		t.Fatalf("last alert = %+v", alerts[2])
	}
	mid, _, _ := r.Replay(d.ID, 2)
	if len(mid) != 1 || mid[0].Seq != 3 {
		t.Fatalf("Replay(after=2) = %+v", mid)
	}
	if _, _, err := r.Replay("w0ghost", 0); !errors.Is(err, ErrUnknown) {
		t.Fatalf("replay unknown: %v", err)
	}
	if c := r.Counters(); c.AlertsFired != 3 {
		t.Fatalf("fired = %d", c.AlertsFired)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRegistry(Options{AlertBuffer: 3})
	d, _ := r.Register(Definition{WebhookURL: "http://example/hook"})
	var arts []Article
	for i := 0; i < 5; i++ {
		arts = append(arts, art(i, fmt.Sprintf("t%d", i)))
	}
	r.Publish(d.ID, 1, arts)
	alerts, earliest, _ := r.Replay(d.ID, 0)
	if earliest != 3 || len(alerts) != 3 || alerts[0].Seq != 3 {
		t.Fatalf("after eviction: earliest=%d alerts=%+v", earliest, alerts)
	}
	c := r.Counters()
	if c.AlertsDropped != 2 {
		t.Fatalf("dropped = %d, want 2 (un-acked webhook evictions)", c.AlertsDropped)
	}
}

func TestSubscribeLiveAndCatchUp(t *testing.T) {
	r := NewRegistry(Options{AlertBuffer: 8})
	d, _ := r.Register(Definition{})
	r.Publish(d.ID, 1, []Article{art(0, "t0"), art(1, "t1")})

	sub, err := r.Subscribe(d.ID, 1) // skip seq 1
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	r.Publish(d.ID, 2, []Article{art(2, "t2")})

	var got []uint64
	for len(got) < 2 {
		select {
		case a := <-sub.C:
			got = append(got, a.Seq)
		case <-time.After(time.Second):
			t.Fatalf("timed out; got %v", got)
		}
	}
	if !reflect.DeepEqual(got, []uint64{2, 3}) {
		t.Fatalf("seqs = %v, want [2 3]", got)
	}
	if c := r.Counters(); c.SSESubscribers != 1 {
		t.Fatalf("subscribers = %d", c.SSESubscribers)
	}
	sub.Cancel()
	if c := r.Counters(); c.SSESubscribers != 0 {
		t.Fatalf("subscribers after cancel = %d", c.SSESubscribers)
	}
	if _, err := r.Subscribe("w0ghost", 0); !errors.Is(err, ErrUnknown) {
		t.Fatalf("subscribe unknown: %v", err)
	}
}

func TestSubscribeRemoveClosesChannel(t *testing.T) {
	r := NewRegistry(Options{})
	d, _ := r.Register(Definition{})
	sub, _ := r.Subscribe(d.ID, 0)
	r.Remove(d.ID)
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Fatal("expected closed channel")
		}
	case <-time.After(time.Second):
		t.Fatal("channel not closed on Remove")
	}
	sub.Cancel() // safe after close
}

func TestLaggingSubscriberDropped(t *testing.T) {
	r := NewRegistry(Options{AlertBuffer: 2}) // channel capacity 4
	d, _ := r.Register(Definition{})
	sub, _ := r.Subscribe(d.ID, 0)
	var arts []Article
	for i := 0; i < 6; i++ {
		arts = append(arts, art(i, "t"))
	}
	r.Publish(d.ID, 1, arts) // overflows the unread channel
	// Drain: buffered alerts then close.
	n := 0
	for range sub.C {
		n++
	}
	if n != 4 {
		t.Fatalf("received %d before drop, want 4", n)
	}
	c := r.Counters()
	if c.SSESubscribers != 0 {
		t.Fatalf("subscribers = %d, want 0 after drop", c.SSESubscribers)
	}
	if c.AlertsDropped == 0 {
		t.Fatal("expected dropped count for lagging subscriber")
	}
}

func TestWebhookDelivery(t *testing.T) {
	r := NewRegistry(Options{})
	d, _ := r.Register(Definition{WebhookURL: "http://example/hook"})
	got := make(chan string, 16)
	r.StartWebhooks(WebhookOptions{Post: func(url string, body []byte) error {
		got <- string(body)
		return nil
	}})
	defer r.DrainWebhooks(context.Background())

	r.Publish(d.ID, 1, []Article{art(0, "t0"), art(1, "t1")})
	for i := 1; i <= 2; i++ {
		select {
		case body := <-got:
			want := fmt.Sprintf(`"seq":%d`, i)
			if !contains(body, want) {
				t.Fatalf("delivery %d body %s missing %s", i, body, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("delivery %d never arrived", i)
		}
	}
	waitFor(t, func() bool { return r.Counters().AlertsDelivered == 2 })
}

func TestWebhookRetryAndFailure(t *testing.T) {
	r := NewRegistry(Options{})
	d, _ := r.Register(Definition{WebhookURL: "http://example/hook"})
	calls := 0
	done := make(chan struct{})
	r.StartWebhooks(WebhookOptions{
		Attempts: 3,
		Backoff:  time.Millisecond,
		Post: func(url string, body []byte) error {
			calls++
			if calls == 3 {
				close(done)
			}
			return errors.New("refused")
		},
	})
	defer r.DrainWebhooks(context.Background())
	r.Publish(d.ID, 1, []Article{art(0, "t0")})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("worker made %d attempts, want 3", calls)
	}
	waitFor(t, func() bool {
		c := r.Counters()
		return c.WebhookRetries == 3 && c.WebhookFailures == 1
	})
	// Cursor did not advance: a later kick retries the same alert.
	if _, seq, _ := r.Get(d.ID); seq != 1 {
		t.Fatalf("latest seq = %d", seq)
	}
	alerts, _, _ := r.Replay(d.ID, 0)
	if len(alerts) != 1 {
		t.Fatalf("alert vanished: %v", alerts)
	}
}

func TestWebhookDrainStopsBackoff(t *testing.T) {
	r := NewRegistry(Options{})
	d, _ := r.Register(Definition{WebhookURL: "http://example/hook"})
	r.StartWebhooks(WebhookOptions{
		Attempts: 10,
		Backoff:  time.Hour, // drain must interrupt this
		Post:     func(string, []byte) error { return errors.New("down") },
	})
	r.Publish(d.ID, 1, []Article{art(0, "t0")})
	time.Sleep(10 * time.Millisecond) // let the first attempt fail into backoff
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := r.DrainWebhooks(ctx); err != nil {
		t.Fatalf("drain blocked on backoff: %v", err)
	}
}

func TestDrainWithoutStartIsNoop(t *testing.T) {
	r := NewRegistry(Options{})
	if err := r.DrainWebhooks(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
