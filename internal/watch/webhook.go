package watch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// Webhook delivery: a single background worker drains each
// webhook-enabled watchlist's pending alerts — everything between the
// delivery cursor (ack) and the latest sequence — POSTing one alert
// per request. The cursor advances only on a 2xx acknowledgement and
// is persisted with the registry, so delivery is at-least-once: a
// crash or SIGTERM after the POST but before the next save redelivers
// from the cursor on restart; a committed alert is never dropped by
// shutdown. Failed attempts retry with doubling backoff up to a
// bounded budget, then the round gives up (counted as a failure) and
// the next ingest kick retries from the same cursor.

// WebhookOptions configures delivery. Zero values select defaults.
type WebhookOptions struct {
	// Timeout bounds each POST attempt. 0 ⇒ 5s.
	Timeout time.Duration
	// Attempts is the per-alert tries per delivery round. 0 ⇒ 3.
	Attempts int
	// Backoff is the first retry delay; it doubles per retry. 0 ⇒ 100ms.
	Backoff time.Duration
	// Post overrides the transport — tests inject failures and capture
	// bodies here. nil ⇒ HTTP POST of the JSON alert, 2xx = success.
	Post func(url string, body []byte) error
}

func (o WebhookOptions) withDefaults() WebhookOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.Post == nil {
		client := &http.Client{Timeout: o.Timeout}
		o.Post = func(url string, body []byte) error {
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode < 200 || resp.StatusCode >= 300 {
				return fmt.Errorf("watch: webhook status %s", resp.Status)
			}
			return nil
		}
	}
	return o
}

// StartWebhooks launches the delivery worker. Call at most once;
// DrainWebhooks stops it.
func (r *Registry) StartWebhooks(opts WebhookOptions) {
	opts = opts.withDefaults()
	r.stop = make(chan struct{})
	r.workerDone = make(chan struct{})
	go r.webhookWorker(opts)
	// Deliver anything pending from a previous run (un-acked cursors
	// loaded from disk) without waiting for the first ingest.
	r.kickWebhooks()
}

// kickWebhooks nudges the worker; a pending nudge coalesces.
func (r *Registry) kickWebhooks() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// DrainWebhooks stops the worker and waits for its in-flight delivery
// round to finish or ctx to expire. Part of graceful shutdown: after it
// returns, no POST is in flight, and any alert not yet acknowledged
// keeps its cursor position for redelivery after restart.
func (r *Registry) DrainWebhooks(ctx context.Context) error {
	if r.stop == nil {
		return nil
	}
	r.stopOnce.Do(func() { close(r.stop) })
	select {
	case <-r.workerDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// webhookWorker is the delivery loop: sleep until kicked, sweep all
// webhook-enabled watchlists, repeat. Stopping wins over pending kicks.
func (r *Registry) webhookWorker(opts WebhookOptions) {
	defer close(r.workerDone)
	for {
		select {
		case <-r.stop:
			return
		case <-r.kick:
			r.deliverPending(opts)
		}
	}
}

// deliverPending sweeps watchlists in ID order, delivering each one's
// pending alerts in sequence order. State is re-read from the registry
// between POSTs (the watchlist may be removed, or the ring may evict
// past the cursor, while a slow POST is in flight).
func (r *Registry) deliverPending(opts WebhookOptions) {
	for _, id := range r.webhookIDs() {
		for {
			select {
			case <-r.stop:
				return
			default:
			}
			alert, url, ok := r.nextPending(id)
			if !ok {
				break
			}
			body, err := json.Marshal(alert)
			if err != nil {
				// Alerts are plain data; this cannot happen. Skip rather
				// than wedge the cursor forever.
				r.ackDelivery(id, alert.Seq, false)
				continue
			}
			if r.postWithRetry(opts, url, body) {
				r.ackDelivery(id, alert.Seq, true)
			} else {
				// Budget exhausted: leave the cursor; the next kick retries.
				break
			}
		}
	}
}

// postWithRetry attempts one delivery within the retry budget. Backoff
// sleeps are interruptible by stop, so shutdown never waits out a
// backoff ladder.
func (r *Registry) postWithRetry(opts WebhookOptions, url string, body []byte) bool {
	delay := opts.Backoff
	for attempt := 1; ; attempt++ {
		if err := opts.Post(url, body); err == nil {
			return true
		}
		r.mu.Lock()
		r.retries++
		if attempt >= opts.Attempts {
			r.failures++
			r.mu.Unlock()
			return false
		}
		r.mu.Unlock()
		select {
		case <-r.stop:
			return false
		case <-time.After(delay):
		}
		delay *= 2
	}
}

// webhookIDs snapshots the webhook-enabled watchlist IDs, sorted.
func (r *Registry) webhookIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ids []string
	for id, l := range r.lists {
		if l.def.WebhookURL != "" {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// nextPending returns the first retained alert past the delivery
// cursor. If eviction outran the cursor, the cursor jumps to the start
// of the ring and the gap is counted dropped (the alerts are gone; the
// count is the honest record).
func (r *Registry) nextPending(id string) (Alert, string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.lists[id]
	if !ok || l.def.WebhookURL == "" || l.ack >= l.nextSeq-1 {
		return Alert{}, "", false
	}
	if len(l.ring) == 0 {
		// Everything pending was evicted before delivery.
		r.dropped += l.nextSeq - 1 - l.ack
		l.ack = l.nextSeq - 1
		return Alert{}, "", false
	}
	if first := l.ring[0].Seq; first > l.ack+1 {
		r.dropped += first - 1 - l.ack
		l.ack = first - 1
	}
	i := sort.Search(len(l.ring), func(j int) bool { return l.ring[j].Seq > l.ack })
	if i == len(l.ring) {
		return Alert{}, "", false
	}
	return l.ring[i], l.def.WebhookURL, true
}

// ackDelivery advances the delivery cursor past seq. delivered=false
// records a skip (unmarshalable alert) without counting a delivery.
func (r *Registry) ackDelivery(id string, seq uint64, delivered bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.lists[id]
	if !ok {
		return
	}
	if seq > l.ack {
		l.ack = seq
	}
	if delivered {
		r.delivered++
	}
}
