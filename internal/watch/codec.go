package watch

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"ncexplorer/internal/segio"
)

// Versioned codec for the registry's durable state: the watchlist
// definitions, the ID counter, and per watchlist the sequence counter,
// webhook delivery cursor, and retained alert ring. It participates in
// the snapshot manifest like segments do (segio.WatchExt,
// Manifest.WatchFile), so the same guarantees apply: content-addressed
// file name, CRC-validated payload, atomic manifest swap, typed
// ErrCorrupt / ErrVersionMismatch sentinels.
//
// The encoding is canonical: watchlists sorted by ID, string lists
// sorted and deduplicated, little-endian fixed-width integers, IEEE
// float bits. Equal registry state encodes to equal bytes — which is
// what makes content addressing skip rewrites — and the decoder
// rejects any non-canonical input, so decode(encode(state)) == state
// and encode(decode(b)) == b for every accepted b (the fuzz target's
// invariant).

// watchMagic identifies a watch-state file; watchVersion is bumped on
// any incompatible layout change. v2 added the per-definition
// time-window threshold (WindowCount/WindowDays) and the alert
// article's publication time.
const (
	watchMagic   = "NCWL"
	watchVersion = 2
)

// maxWatchString bounds every decoded string (names, URLs, bodies);
// maxWatchCount bounds every decoded collection. Both are sanity
// limits far above real use, to stop a corrupt length prefix from
// forcing a huge allocation before the CRC check would catch it.
const (
	maxWatchString = 1 << 24
	maxWatchCount  = 1 << 20
)

// encodeState renders the registry's durable state. Callers hold r.mu.
func (r *Registry) encodeState() []byte {
	w := &watchWriter{}
	w.bytes([]byte(watchMagic))
	w.u16(watchVersion)
	w.u64(r.nextID)
	ids := make([]string, 0, len(r.lists))
	for id := range r.lists {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	w.u32(uint32(len(ids)))
	for _, id := range ids {
		l := r.lists[id]
		w.str(l.def.ID)
		w.str(l.def.Name)
		w.strs(l.def.Concepts)
		w.strs(l.def.Sources)
		w.f64(l.def.MinScore)
		w.u32(uint32(l.def.WindowCount))
		w.u32(uint32(l.def.WindowDays))
		w.str(l.def.WebhookURL)
		w.u64(l.def.CreatedGen)
		w.u64(l.nextSeq)
		w.u64(l.ack)
		w.u32(uint32(len(l.ring)))
		for _, a := range l.ring {
			w.u64(a.Seq)
			w.u64(a.Generation)
			w.u32(uint32(a.Article.ID))
			w.str(a.Article.Source)
			w.str(a.Article.Title)
			w.str(a.Article.Body)
			w.f64(a.Article.Score)
			w.str(a.Article.PublishedAt)
			w.u32(uint32(len(a.Article.Explanations)))
			for _, ex := range a.Article.Explanations {
				w.str(ex.Concept)
				w.f64(ex.CDR)
				w.str(ex.Pivot)
			}
		}
	}
	w.u32(crc32.ChecksumIEEE(w.buf))
	return w.buf
}

// Encode renders the registry's durable state, or nil when there is
// nothing worth persisting (no watchlists and no IDs ever assigned) —
// the engine's persist layer treats nil as "omit the watch file".
func (r *Registry) Encode() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.lists) == 0 && r.nextID == 1 {
		return nil
	}
	return r.encodeState()
}

// Load replaces the registry's durable state with a decoded file.
// Delivery-side state (subscriptions, the webhook worker) is untouched;
// Load is called once at open, before any of that exists.
func (r *Registry) Load(data []byte) error {
	nextID, lists, err := decodeState(data)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID = nextID
	r.lists = lists
	return nil
}

// decodeState parses and validates an encoded registry state.
func decodeState(data []byte) (nextID uint64, lists map[string]*list, err error) {
	if len(data) < len(watchMagic)+2+4 {
		return 0, nil, fmt.Errorf("%w: watch state truncated", segio.ErrCorrupt)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, fmt.Errorf("%w: watch state checksum mismatch", segio.ErrCorrupt)
	}
	rd := &watchReader{buf: body}
	if string(rd.bytes(len(watchMagic))) != watchMagic {
		return 0, nil, fmt.Errorf("%w: bad watch magic", segio.ErrCorrupt)
	}
	if v := rd.u16(); v != watchVersion {
		return 0, nil, fmt.Errorf("%w: watch state version %d, want %d", segio.ErrVersionMismatch, v, watchVersion)
	}
	nextID = rd.u64()
	n := rd.count()
	lists = make(map[string]*list, n)
	prevID := ""
	for i := 0; i < n && rd.err == nil; i++ {
		l := &list{subs: make(map[*Subscription]struct{})}
		l.def.ID = rd.str()
		if l.def.ID == "" || l.def.ID <= prevID {
			return 0, nil, fmt.Errorf("%w: watchlist IDs not strictly ascending", segio.ErrCorrupt)
		}
		prevID = l.def.ID
		l.def.Name = rd.str()
		l.def.Concepts = rd.strs()
		l.def.Sources = rd.strs()
		l.def.MinScore = rd.f64()
		if l.def.MinScore < 0 {
			return 0, nil, fmt.Errorf("%w: negative min score", segio.ErrCorrupt)
		}
		l.def.WindowCount = int(rd.u32())
		l.def.WindowDays = int(rd.u32())
		if rd.err == nil && (l.def.WindowCount > 0) != (l.def.WindowDays > 0) {
			return 0, nil, fmt.Errorf("%w: half-set watch window threshold", segio.ErrCorrupt)
		}
		l.def.WebhookURL = rd.str()
		l.def.CreatedGen = rd.u64()
		l.nextSeq = rd.u64()
		l.ack = rd.u64()
		if rd.err == nil && (l.nextSeq < 1 || l.ack >= l.nextSeq) {
			return 0, nil, fmt.Errorf("%w: watchlist cursor out of range", segio.ErrCorrupt)
		}
		nAlerts := rd.count()
		prevSeq := uint64(0)
		for j := 0; j < nAlerts && rd.err == nil; j++ {
			var a Alert
			a.Seq = rd.u64()
			if a.Seq <= prevSeq || a.Seq >= l.nextSeq {
				return 0, nil, fmt.Errorf("%w: alert sequences not strictly ascending", segio.ErrCorrupt)
			}
			prevSeq = a.Seq
			a.Watchlist = l.def.ID
			a.Generation = rd.u64()
			a.Article.ID = int(rd.u32())
			a.Article.Source = rd.str()
			a.Article.Title = rd.str()
			a.Article.Body = rd.str()
			a.Article.Score = rd.f64()
			a.Article.PublishedAt = rd.str()
			nExpl := rd.count()
			for k := 0; k < nExpl && rd.err == nil; k++ {
				var ex Explanation
				ex.Concept = rd.str()
				ex.CDR = rd.f64()
				ex.Pivot = rd.str()
				a.Article.Explanations = append(a.Article.Explanations, ex)
			}
			l.ring = append(l.ring, a)
		}
		if rd.err == nil && nAlerts > 0 && l.ring[nAlerts-1].Seq != l.nextSeq-1 {
			return 0, nil, fmt.Errorf("%w: alert ring does not end at latest sequence", segio.ErrCorrupt)
		}
		lists[l.def.ID] = l
	}
	if rd.err != nil {
		return 0, nil, rd.err
	}
	if len(rd.buf) != rd.off {
		return 0, nil, fmt.Errorf("%w: trailing bytes after watch state", segio.ErrCorrupt)
	}
	if nextID < uint64(len(lists))+1 {
		return 0, nil, fmt.Errorf("%w: watch ID counter below list count", segio.ErrCorrupt)
	}
	return nextID, lists, nil
}

// watchWriter is a little sticky append-only encoder.
type watchWriter struct{ buf []byte }

func (w *watchWriter) bytes(b []byte) { w.buf = append(w.buf, b...) }
func (w *watchWriter) u16(v uint16)   { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *watchWriter) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *watchWriter) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *watchWriter) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *watchWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *watchWriter) strs(ss []string) {
	w.u32(uint32(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

// watchReader is the sticky-error decoder. The first failure pins err;
// every later read returns zero values, so decode loops need only
// check err at their boundaries.
type watchReader struct {
	buf []byte
	off int
	err error
}

func (r *watchReader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", segio.ErrCorrupt, msg)
	}
}

func (r *watchReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.fail("watch state truncated")
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *watchReader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *watchReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *watchReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *watchReader) f64() float64 {
	v := math.Float64frombits(r.u64())
	if r.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		r.fail("non-finite float")
		return 0
	}
	return v
}

// count reads a collection length, bounding it both by the sanity cap
// and by the bytes remaining (every element is at least one byte).
func (r *watchReader) count() int {
	n := int(r.u32())
	if r.err == nil && (n > maxWatchCount || n > len(r.buf)-r.off) {
		r.fail("collection length out of range")
		return 0
	}
	return n
}

func (r *watchReader) str() string {
	n := int(r.u32())
	if r.err == nil && n > maxWatchString {
		r.fail("string length out of range")
		return ""
	}
	return string(r.bytes(n))
}

// strs reads a canonical string list: strictly ascending, no empties.
func (r *watchReader) strs() []string {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	prev := ""
	for i := 0; i < n && r.err == nil; i++ {
		s := r.str()
		if r.err == nil && (s == "" || s <= prev) {
			r.fail("string list not canonical")
			return nil
		}
		prev = s
		out = append(out, s)
	}
	return out
}
