// Package watch implements the standing-query subsystem: durable
// watchlists evaluated incrementally at ingest time, with alerts
// pushed to SSE subscribers and webhook endpoints.
//
// Division of labour: this package owns the durable and delivery state
// — watchlist definitions, per-watchlist alert ring buffers with
// monotone sequence numbers, SSE subscriptions, the webhook delivery
// cursor and worker, and the versioned codec that persists it all
// alongside the snapshot manifest. It knows nothing about matching or
// scoring: the facade evaluates each ingested delta through the
// engine's DeltaView hook and hands finished Alert values to Publish.
//
// Delivery semantics (documented in DESIGN.md §8):
//
//   - SSE is in-order within a subscription: a subscriber receives
//     alerts in ascending sequence, catch-up (?after=seq) first, then
//     live, with no gap between them. A subscriber that cannot keep up
//     is dropped (its channel closed) rather than blocking the ingest
//     path; it reconnects from its last sequence.
//   - Webhooks are at-least-once: the cursor advances only after a 2xx
//     acknowledgement, persists un-acked across restarts, and retries
//     with bounded backoff. An alert evicted from the ring before
//     acknowledgement is counted dropped, never silently skipped.
package watch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Definition describes one registered watchlist. Concepts and Sources
// are stored canonically (trimmed, deduplicated, sorted); the facade
// validates them against the graph and corpus before registration.
type Definition struct {
	// ID is the registry-assigned identifier ("w000001", ...).
	ID string
	// Name is an optional client label.
	Name string
	// Concepts is the concept pattern; a document alerts only if it
	// matches every concept (Definition 1).
	Concepts []string
	// Sources restricts alerts to these source names; empty admits all.
	Sources []string
	// MinScore excludes matches scoring below it (at the generation the
	// document arrived) when > 0.
	MinScore float64
	// WindowCount/WindowDays arm a time-window threshold: the watchlist
	// stays silent until at least WindowCount matching articles carry
	// publication times inside one trailing WindowDays-day window
	// ("≥N matches in 7 days"). Both zero disables the threshold; the
	// facade validates that they are set together.
	WindowCount int
	WindowDays  int
	// WebhookURL, when set, receives each alert as a JSON POST.
	WebhookURL string
	// CreatedGen is the snapshot generation at registration; the
	// watchlist sees batches committed after it.
	CreatedGen uint64
}

// Alert is one standing-query match: a typed envelope carrying the
// matched article with its score and per-concept evidence — the same
// explanation payload a /v2 roll-up result carries. Alerts are
// immutable point-in-time events: the score is the article's relevance
// at the generation it entered the corpus, and replaying an alert (SSE
// catch-up, webhook redelivery, warm restart) reproduces it
// byte-identically.
type Alert struct {
	// Seq is the per-watchlist monotone sequence number (first alert 1).
	Seq uint64 `json:"seq"`
	// Watchlist is the owning watchlist's ID.
	Watchlist string `json:"watchlist"`
	// Generation is the snapshot generation whose ingest fired the alert.
	Generation uint64 `json:"generation"`
	// Article is the matched article with score and evidence.
	Article Article `json:"article"`
}

// Article mirrors the facade's roll-up article payload (same JSON
// shape) so alert envelopes and query results read identically.
type Article struct {
	ID     int     `json:"id"`
	Source string  `json:"source"`
	Title  string  `json:"title"`
	Body   string  `json:"body"`
	Score  float64 `json:"score"`
	// PublishedAt is the article's publication time, RFC3339 UTC —
	// identical to the facade article field of the same name.
	PublishedAt  string        `json:"published_at"`
	Explanations []Explanation `json:"explanations,omitempty"`
}

// Explanation attributes part of an alert's relevance to one query
// concept, exactly like a roll-up explanation.
type Explanation struct {
	Concept string  `json:"concept"`
	CDR     float64 `json:"cdr"`
	Pivot   string  `json:"pivot,omitempty"`
}

// Options bounds a Registry. Zero values select defaults.
type Options struct {
	// MaxWatchlists caps concurrent registrations. 0 ⇒ 64.
	MaxWatchlists int
	// AlertBuffer is the per-watchlist ring capacity — the retention
	// window for SSE catch-up and webhook redelivery. 0 ⇒ 256.
	AlertBuffer int
}

func (o Options) withDefaults() Options {
	if o.MaxWatchlists <= 0 {
		o.MaxWatchlists = 64
	}
	if o.AlertBuffer <= 0 {
		o.AlertBuffer = 256
	}
	return o
}

// Counters is the registry's activity snapshot for /statsz.
type Counters struct {
	// Watchlists is the live registration count.
	Watchlists int `json:"watchlists"`
	// AlertsFired counts alerts published into ring buffers.
	AlertsFired uint64 `json:"alerts_fired"`
	// AlertsDelivered counts deliveries: SSE sends plus webhook acks.
	AlertsDelivered uint64 `json:"alerts_delivered"`
	// AlertsDropped counts losses: ring evictions past an un-acked
	// webhook cursor and lagging SSE subscribers disconnected.
	AlertsDropped uint64 `json:"alerts_dropped"`
	// WebhookRetries / WebhookFailures count failed POST attempts and
	// delivery rounds that exhausted their retry budget.
	WebhookRetries  uint64 `json:"webhook_retries"`
	WebhookFailures uint64 `json:"webhook_failures"`
	// SSESubscribers is the live subscription count.
	SSESubscribers int `json:"sse_subscribers"`
}

// ErrLimit is returned by Register when MaxWatchlists is reached.
var ErrLimit = errors.New("watch: watchlist limit reached")

// ErrUnknown is returned for operations on an unregistered ID.
var ErrUnknown = errors.New("watch: unknown watchlist")

// list is one watchlist's runtime state.
type list struct {
	def Definition
	// nextSeq is the sequence the next alert will take (starts at 1).
	nextSeq uint64
	// ack is the webhook delivery cursor: the highest acknowledged
	// sequence. Alerts in (ack, nextSeq) are pending delivery.
	ack uint64
	// ring holds the most recent alerts, ascending by Seq, at most
	// AlertBuffer of them.
	ring []Alert
	// subs are the live SSE subscriptions.
	subs map[*Subscription]struct{}
}

// Registry is the concurrency-safe watchlist store. One Registry backs
// one Explorer; the facade publishes into it from the engine's ingest
// hook (serialised by the ingest lock) while HTTP handlers register,
// subscribe, and the webhook worker delivers concurrently.
type Registry struct {
	mu     sync.Mutex
	opts   Options
	lists  map[string]*list
	nextID uint64 // next numeric ID to assign (starts at 1)

	fired, delivered, dropped uint64
	retries, failures         uint64
	subscribers               int

	// Webhook worker plumbing (webhook.go).
	kick       chan struct{}
	stop       chan struct{}
	workerDone chan struct{}
	stopOnce   sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry(opts Options) *Registry {
	return &Registry{
		opts:   opts.withDefaults(),
		lists:  make(map[string]*list),
		nextID: 1,
		kick:   make(chan struct{}, 1),
	}
}

// Register adds a watchlist, assigning its ID. The definition's
// Concepts and Sources must already be canonical (the facade
// canonicalizes); Register defensively sorts and dedupes so persisted
// state is canonical no matter the caller.
func (r *Registry) Register(def Definition) (Definition, error) {
	def.Concepts = sortedUnique(def.Concepts)
	def.Sources = sortedUnique(def.Sources)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.lists) >= r.opts.MaxWatchlists {
		return Definition{}, fmt.Errorf("%w (max %d)", ErrLimit, r.opts.MaxWatchlists)
	}
	def.ID = fmt.Sprintf("w%06x", r.nextID)
	r.nextID++
	r.lists[def.ID] = &list{def: def, nextSeq: 1, subs: make(map[*Subscription]struct{})}
	return def, nil
}

// Remove deletes a watchlist, closing its live subscriptions.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.lists[id]
	if !ok {
		return false
	}
	for sub := range l.subs {
		r.detachLocked(l, sub)
	}
	delete(r.lists, id)
	return true
}

// Get returns a watchlist's definition and its latest sequence.
func (r *Registry) Get(id string) (Definition, uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.lists[id]
	if !ok {
		return Definition{}, 0, false
	}
	return l.def, l.nextSeq - 1, true
}

// List returns all definitions with their latest sequences, sorted by
// ID (registration order: IDs are fixed-width counters).
func (r *Registry) List() ([]Definition, []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	defs := make([]Definition, 0, len(r.lists))
	for _, l := range r.lists {
		defs = append(defs, l.def)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	seqs := make([]uint64, len(defs))
	for i, d := range defs {
		seqs[i] = r.lists[d.ID].nextSeq - 1
	}
	return defs, seqs
}

// Definitions returns the definitions alone, sorted by ID — the
// evaluation hook iterates this.
func (r *Registry) Definitions() []Definition {
	defs, _ := r.List()
	return defs
}

// Publish appends the batch's alerts for one watchlist: assigns their
// sequence numbers and generation stamp, retains them in the ring
// (evicting the oldest past capacity), forwards them to live
// subscribers, and kicks the webhook worker. Articles must arrive in
// ascending document order; alerts inherit it. Publishing to a removed
// ID is a no-op (a watchlist deleted mid-evaluation simply stops
// alerting).
func (r *Registry) Publish(id string, gen uint64, arts []Article) {
	if len(arts) == 0 {
		return
	}
	r.mu.Lock()
	l, ok := r.lists[id]
	if !ok {
		r.mu.Unlock()
		return
	}
	for _, art := range arts {
		a := Alert{Seq: l.nextSeq, Watchlist: id, Generation: gen, Article: art}
		l.nextSeq++
		r.fired++
		l.ring = append(l.ring, a)
		if len(l.ring) > r.opts.AlertBuffer {
			// Evicting past an un-acked webhook cursor loses the alert for
			// delivery: count it and move the cursor over it, so the worker
			// never scans a gap it would have to account a second time.
			evicted := l.ring[0]
			if l.def.WebhookURL != "" && evicted.Seq > l.ack {
				r.dropped++
				l.ack = evicted.Seq
			}
			l.ring = append(l.ring[:0], l.ring[1:]...)
		}
		for sub := range l.subs {
			select {
			case sub.ch <- a:
				r.delivered++
			default:
				// A subscriber that cannot drain its buffer would block the
				// ingest path; drop it instead. The closed channel tells the
				// handler to end the stream, and the client resumes from its
				// last sequence.
				r.dropped++
				r.detachLocked(l, sub)
			}
		}
	}
	webhook := l.def.WebhookURL != ""
	r.mu.Unlock()
	if webhook {
		r.kickWebhooks()
	}
}

// Replay returns a copy of the retained alerts with Seq > after, in
// order, plus the earliest sequence still retained (0 when the ring is
// empty). A client whose cursor predates the retention window can see
// the gap: earliest > after+1.
func (r *Registry) Replay(id string, after uint64) ([]Alert, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.lists[id]
	if !ok {
		return nil, 0, ErrUnknown
	}
	var earliest uint64
	if len(l.ring) > 0 {
		earliest = l.ring[0].Seq
	}
	i := sort.Search(len(l.ring), func(j int) bool { return l.ring[j].Seq > after })
	out := append([]Alert(nil), l.ring[i:]...)
	return out, earliest, nil
}

// Subscription is one live SSE subscription. Read alerts from C until
// it closes (registry shutdown, watchlist removal, or the subscriber
// lagging past its buffer); call Cancel exactly once when done.
type Subscription struct {
	ch chan Alert
	// C delivers catch-up alerts first, then live alerts, in ascending
	// sequence with no gap or duplicate between the two.
	C <-chan Alert

	r      *Registry
	listID string
	closed bool // guarded by r.mu
}

// Cancel detaches the subscription. Safe to call after the channel
// closed; not safe to call twice concurrently with itself.
func (s *Subscription) Cancel() {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if l, ok := s.r.lists[s.listID]; ok {
		if _, live := l.subs[s]; live {
			s.r.detachLocked(l, s)
		}
	}
}

// detachLocked removes a subscription and closes its channel. r.mu held.
func (r *Registry) detachLocked(l *list, sub *Subscription) {
	delete(l.subs, sub)
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
		r.subscribers--
	}
}

// Subscribe opens a subscription on a watchlist, replaying retained
// alerts with Seq > after before any live alert. Replay and attachment
// happen under one lock acquisition, so the stream has no gap and no
// duplicate around the catch-up/live boundary — the property the SSE
// reconnect test pins byte-for-byte.
func (r *Registry) Subscribe(id string, after uint64) (*Subscription, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.lists[id]
	if !ok {
		return nil, ErrUnknown
	}
	// Capacity: full catch-up plus a full ring of live headroom.
	sub := &Subscription{r: r, listID: id, ch: make(chan Alert, 2*r.opts.AlertBuffer)}
	sub.C = sub.ch
	i := sort.Search(len(l.ring), func(j int) bool { return l.ring[j].Seq > after })
	for _, a := range l.ring[i:] {
		sub.ch <- a
		r.delivered++
	}
	l.subs[sub] = struct{}{}
	r.subscribers++
	return sub, nil
}

// Counters returns the registry's activity snapshot.
func (r *Registry) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Counters{
		Watchlists:      len(r.lists),
		AlertsFired:     r.fired,
		AlertsDelivered: r.delivered,
		AlertsDropped:   r.dropped,
		WebhookRetries:  r.retries,
		WebhookFailures: r.failures,
		SSESubscribers:  r.subscribers,
	}
}

// sortedUnique canonicalizes a string list: sorted, deduplicated,
// empties dropped. Returns nil for an empty result so persisted and
// fresh definitions compare equal.
func sortedUnique(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	n := 0
	for i, s := range out {
		if s == "" || (i > 0 && s == out[i-1]) {
			continue
		}
		out[n] = s
		n++
	}
	if n == 0 {
		return nil
	}
	return out[:n]
}
