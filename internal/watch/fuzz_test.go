package watch

import (
	"bytes"
	"errors"
	"testing"

	"ncexplorer/internal/segio"
)

// FuzzWatchCodec drives the watch-state decoder with arbitrary bytes.
// Invariants: never panic, reject with a typed sentinel (ErrCorrupt /
// ErrVersionMismatch), and round-trip every accepted input exactly —
// encode(decode(b)) == b, which holds because the encoding is
// canonical and the decoder rejects all non-canonical forms.
func FuzzWatchCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(watchMagic))
	{
		r := NewRegistry(Options{AlertBuffer: 4})
		f.Add(r.encodeLocked())
	}
	{
		r := NewRegistry(Options{AlertBuffer: 4})
		d, _ := r.Register(Definition{
			Name:       "seed",
			Concepts:   []string{"economy", "politics"},
			Sources:    []string{"wire"},
			MinScore:   0.5,
			WebhookURL: "http://example/hook",
			CreatedGen: 3,
		})
		r.Register(Definition{Name: "second"})
		r.Publish(d.ID, 4, []Article{
			{ID: 1, Source: "wire", Title: "t", Body: "b", Score: 0.75,
				Explanations: []Explanation{{Concept: "politics", CDR: 0.75, Pivot: "senate"}}},
			{ID: 2, Source: "wire", Title: "u", Body: "c", Score: 0.5},
		})
		r.ackDelivery(d.ID, 1, true)
		f.Add(r.Encode())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewRegistry(Options{})
		err := r.Load(data)
		if err != nil {
			if !errors.Is(err, segio.ErrCorrupt) && !errors.Is(err, segio.ErrVersionMismatch) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re := r.encodeLocked()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input does not round-trip:\n in: %x\nout: %x", data, re)
		}
	})
}

// encodeLocked encodes without the emptiness short-circuit, so the
// fuzz round-trip covers the empty state too.
func (r *Registry) encodeLocked() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.encodeState()
}
