package watch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"ncexplorer/internal/segio"
)

func crc32ieee(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// restamp recomputes the trailing CRC after a deliberate mutation.
func restamp(b []byte) {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
}

// populated builds a registry with representative durable state:
// two watchlists, one with a ring and a mid-ring webhook cursor.
func populated(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry(Options{AlertBuffer: 8})
	d1, err := r.Register(Definition{
		Name:       "politics watch",
		Concepts:   []string{"politics", "economy"},
		Sources:    []string{"wire", "blog"},
		MinScore:   0.25,
		WebhookURL: "http://example/hook",
		CreatedGen: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(Definition{Name: "empty"}); err != nil {
		t.Fatal(err)
	}
	r.Publish(d1.ID, 8, []Article{art(3, "first"), art(4, "second")})
	r.Publish(d1.ID, 9, []Article{art(5, "third")})
	r.ackDelivery(d1.ID, 2, true)
	return r
}

func TestCodecRoundTrip(t *testing.T) {
	r := populated(t)
	data := r.Encode()
	if data == nil {
		t.Fatal("Encode returned nil for populated registry")
	}
	r2 := NewRegistry(Options{AlertBuffer: 8})
	if err := r2.Load(data); err != nil {
		t.Fatal(err)
	}
	// Durable state is identical: defs, seqs, cursors, rings.
	defs1, seqs1 := r.List()
	defs2, seqs2 := r2.List()
	if !reflect.DeepEqual(defs1, defs2) || !reflect.DeepEqual(seqs1, seqs2) {
		t.Fatalf("defs/seqs mismatch:\n%v %v\n%v %v", defs1, seqs1, defs2, seqs2)
	}
	for _, d := range defs1 {
		a1, e1, _ := r.Replay(d.ID, 0)
		a2, e2, _ := r2.Replay(d.ID, 0)
		if e1 != e2 || !reflect.DeepEqual(a1, a2) {
			t.Fatalf("ring mismatch for %s", d.ID)
		}
		r.mu.Lock()
		ack1 := r.lists[d.ID].ack
		r.mu.Unlock()
		r2.mu.Lock()
		ack2 := r2.lists[d.ID].ack
		r2.mu.Unlock()
		if ack1 != ack2 {
			t.Fatalf("cursor mismatch for %s: %d vs %d", d.ID, ack1, ack2)
		}
	}
	// Canonical: re-encoding reproduces the bytes; a new registration
	// after load continues the ID sequence.
	if !bytes.Equal(data, r2.Encode()) {
		t.Fatal("re-encode differs")
	}
	d3, err := r2.Register(Definition{Name: "later"})
	if err != nil {
		t.Fatal(err)
	}
	if d3.ID != "w000003" {
		t.Fatalf("ID after reload = %q, want w000003", d3.ID)
	}
}

func TestEncodeEmptyIsNil(t *testing.T) {
	r := NewRegistry(Options{})
	if r.Encode() != nil {
		t.Fatal("fresh registry should encode to nil")
	}
	// Register + remove: the ID counter still matters (IDs must not be
	// reused after restart), so the state persists.
	d, _ := r.Register(Definition{})
	r.Remove(d.ID)
	data := r.Encode()
	if data == nil {
		t.Fatal("spent ID counter should persist")
	}
	r2 := NewRegistry(Options{})
	if err := r2.Load(data); err != nil {
		t.Fatal(err)
	}
	if d2, _ := r2.Register(Definition{}); d2.ID != "w000002" {
		t.Fatalf("ID after reload = %q, want w000002", d2.ID)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := populated(t).Encode()
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"trailing", func(b []byte) []byte { return append(b, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), data...))
			err := NewRegistry(Options{}).Load(mutated)
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !errors.Is(err, segio.ErrCorrupt) && !errors.Is(err, segio.ErrVersionMismatch) {
				t.Fatalf("untyped error: %v", err)
			}
		})
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	data := populated(t).Encode()
	// Bump the version field and re-stamp the CRC so only the version
	// check can object.
	data[4]++
	restamp(data)
	err := NewRegistry(Options{}).Load(data)
	if !errors.Is(err, segio.ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
}

func TestDecodeRejectsSemanticCorruption(t *testing.T) {
	// Hand-build states violating semantic invariants, with valid CRCs.
	build := func(f func(w *watchWriter)) []byte {
		w := &watchWriter{}
		w.bytes([]byte(watchMagic))
		w.u16(watchVersion)
		f(w)
		w.u32(crc32ieee(w.buf))
		return w.buf
	}
	oneList := func(nextSeq, ack uint64) []byte {
		return build(func(w *watchWriter) {
			w.u64(2)    // nextID
			w.u32(1)    // one list
			w.str("w1") // ID
			w.str("")   // name
			w.u32(0)    // concepts
			w.u32(0)    // sources
			w.f64(0)    // min score
			w.str("")   // webhook
			w.u64(0)    // created gen
			w.u64(nextSeq)
			w.u64(ack)
			w.u32(0) // ring
		})
	}
	cases := map[string][]byte{
		"cursor past latest": oneList(3, 3),
		"zero next seq":      oneList(0, 0),
		"id counter low": build(func(w *watchWriter) {
			w.u64(1) // nextID below list count + 1
			w.u32(1)
			w.str("w1")
			w.str("")
			w.u32(0)
			w.u32(0)
			w.f64(0)
			w.str("")
			w.u64(0)
			w.u64(1)
			w.u64(0)
			w.u32(0)
		}),
		"unsorted ids": build(func(w *watchWriter) {
			w.u64(3)
			w.u32(2)
			for _, id := range []string{"w2", "w1"} {
				w.str(id)
				w.str("")
				w.u32(0)
				w.u32(0)
				w.f64(0)
				w.str("")
				w.u64(0)
				w.u64(1)
				w.u64(0)
				w.u32(0)
			}
		}),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if err := NewRegistry(Options{}).Load(data); !errors.Is(err, segio.ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}
