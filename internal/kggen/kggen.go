// Package kggen generates the synthetic knowledge graph that stands in
// for the DBpedia 2021-06 snapshot used by the paper (5.2M nodes, 27.9M
// edges — far beyond what an offline, dependency-free reproduction can
// ship). The generator preserves the structural properties NCExplorer's
// algorithms depend on:
//
//   - a multi-level `broader` concept taxonomy (roll-up needs depth),
//   - concept extents |Ψ(c)| spanning orders of magnitude (the
//     specificity score log(|V_I|/|Ψ(c)|) needs the spread),
//   - a power-law-degree instance space with community structure, so
//     hop-constrained paths between topically related entities are
//     plentiful while unrelated entities stay weakly connected (the
//     connectivity score, Eq. 4, needs this contrast), and
//   - a curated backbone holding the paper's narrative entities (FTX,
//     CryptoX, Elon Musk, the six Table-I topics with entity groups).
//
// Generation is fully deterministic given Config.Seed.
package kggen

import (
	"fmt"
	"strings"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/xrand"
)

// Config controls the size and shape of the generated graph.
type Config struct {
	// Seed drives all randomness. Equal seeds ⇒ identical graphs.
	Seed uint64
	// ExtraConcepts is the number of synthetic concepts grown on top of
	// the curated taxonomy.
	ExtraConcepts int
	// ExtraInstances is the number of synthetic instance entities.
	ExtraInstances int
	// AvgDegree is the target mean instance-space degree.
	AvgDegree float64
	// MaxTypesPerInstance bounds |Ψ⁻¹(v)| for synthetic instances.
	MaxTypesPerInstance int
	// CommunityBias is the probability an edge stays inside one of the
	// endpoint's concept communities rather than attaching globally.
	CommunityBias float64
	// MinCuratedExtent backfills every curated concept to at least this
	// many direct instances (DBpedia categories are never empty; the
	// evaluation topics need matchable extents at every scale). 0 ⇒ 3.
	MinCuratedExtent int
}

// Tiny returns a configuration suited to unit tests: the curated
// backbone plus a thin synthetic fringe.
func Tiny() Config {
	return Config{Seed: 1, ExtraConcepts: 60, ExtraInstances: 400,
		AvgDegree: 6, MaxTypesPerInstance: 3, CommunityBias: 0.6}
}

// Default returns the configuration used by the experiment harness:
// laptop-scale but structurally DBpedia-like.
func Default() Config {
	return Config{Seed: 42, ExtraConcepts: 1200, ExtraInstances: 20000,
		AvgDegree: 8, MaxTypesPerInstance: 3, CommunityBias: 0.6}
}

// Topic is a resolved evaluation topic: concept and entity group as
// node IDs in the generated graph. GroupConcept is the concept that
// generalises the group's members, so the Table-I query for this topic
// is the concept pattern {Concept, GroupConcept}.
type Topic struct {
	Name         string
	Concept      kg.NodeID
	GroupName    string
	GroupConcept kg.NodeID
	Group        []kg.NodeID
	Domain       string
}

// Meta carries generation-time knowledge the experiments need: named
// entity groups, the news domain of every concept, and the resolved
// Table-I topics.
type Meta struct {
	Groups map[string][]kg.NodeID
	// GroupConcepts maps each group key to the concept generalising it.
	GroupConcepts map[string]kg.NodeID
	Domains       map[kg.NodeID]string
	Topics        []Topic
}

// DomainOf returns the news domain ("business" or "politics") assigned
// to a concept, defaulting to "business" for unknown IDs.
func (m *Meta) DomainOf(c kg.NodeID) string {
	if d, ok := m.Domains[c]; ok {
		return d
	}
	return "business"
}

// Generate builds the graph and its metadata.
func Generate(cfg Config) (*kg.Graph, *Meta, error) {
	if cfg.MaxTypesPerInstance <= 0 {
		cfg.MaxTypesPerInstance = 3
	}
	if cfg.AvgDegree <= 0 {
		cfg.AvgDegree = 6
	}
	if cfg.CommunityBias <= 0 || cfg.CommunityBias >= 1 {
		cfg.CommunityBias = 0.6
	}
	r := xrand.New(cfg.Seed)
	b := kg.NewBuilder()
	names := newNameGen(r.Fork(1))

	// ── Curated backbone ───────────────────────────────────────────
	conceptDomain := make(map[kg.NodeID]string)
	conceptIDs := make(map[string]kg.NodeID, len(curatedConcepts))
	var conceptOrder []kg.NodeID // creation order for Zipf popularity
	for _, cs := range curatedConcepts {
		id := b.AddConcept(cs.name)
		conceptIDs[cs.name] = id
		conceptDomain[id] = cs.domain
		if cs.parent != "" {
			pid, ok := conceptIDs[cs.parent]
			if !ok {
				return nil, nil, fmt.Errorf("kggen: concept %q has unknown parent %q", cs.name, cs.parent)
			}
			b.AddBroader(id, pid)
		}
		if cs.name != RootConcept {
			conceptOrder = append(conceptOrder, id)
		}
	}

	groups := make(map[string][]kg.NodeID)
	instIDs := make(map[string]kg.NodeID, len(curatedInstances))
	var instances []kg.NodeID
	memberOf := make(map[kg.NodeID][]kg.NodeID) // instance → concepts
	extentOf := make(map[kg.NodeID][]kg.NodeID) // concept → instances
	addType := func(v, c kg.NodeID) {
		b.AddType(v, c)
		memberOf[v] = append(memberOf[v], c)
		extentOf[c] = append(extentOf[c], v)
	}
	for _, is := range curatedInstances {
		id := b.AddInstance(is.name, is.aliases...)
		instIDs[is.name] = id
		instances = append(instances, id)
		names.reserve(is.name)
		for _, cn := range is.concepts {
			cid, ok := conceptIDs[cn]
			if !ok {
				return nil, nil, fmt.Errorf("kggen: instance %q has unknown concept %q", is.name, cn)
			}
			addType(id, cid)
		}
		for _, gr := range is.groups {
			groups[gr] = append(groups[gr], id)
		}
	}

	// endpoints implements preferential attachment: every edge endpoint
	// is appended, so a uniform draw is degree-proportional.
	var endpoints []kg.NodeID
	addEdge := func(u, v kg.NodeID) {
		if u == v {
			return
		}
		b.AddInstanceEdge(u, v)
		endpoints = append(endpoints, u, v)
	}
	for _, e := range curatedEdges {
		u, ok := instIDs[e[0]]
		if !ok {
			return nil, nil, fmt.Errorf("kggen: edge references unknown instance %q", e[0])
		}
		v, ok := instIDs[e[1]]
		if !ok {
			return nil, nil, fmt.Errorf("kggen: edge references unknown instance %q", e[1])
		}
		addEdge(u, v)
	}

	// ── Synthetic concepts ─────────────────────────────────────────
	// Each new concept attaches under an existing one (Zipf-biased
	// toward early/curated concepts), inheriting its domain. Because
	// later concepts may attach to earlier synthetic ones, the taxonomy
	// deepens organically.
	children := make(map[kg.NodeID][]kg.NodeID)
	parentOf := make(map[kg.NodeID][]kg.NodeID)
	for _, cs := range curatedConcepts {
		if cs.parent != "" {
			p := conceptIDs[cs.parent]
			c := conceptIDs[cs.name]
			children[p] = append(children[p], c)
			parentOf[c] = append(parentOf[c], p)
		}
	}
	parentZipf := xrand.NewZipf(r.Fork(2), 1.05, len(conceptOrder)+cfg.ExtraConcepts)
	for i := 0; i < cfg.ExtraConcepts; i++ {
		var parent kg.NodeID
		for {
			k := parentZipf.Next()
			if k < len(conceptOrder) {
				parent = conceptOrder[k]
				break
			}
		}
		name := names.concept(conceptDomain[parent])
		id := b.AddConcept(name)
		conceptDomain[id] = conceptDomain[parent]
		b.AddBroader(id, parent)
		children[parent] = append(children[parent], id)
		parentOf[id] = append(parentOf[id], parent)
		conceptOrder = append(conceptOrder, id)
	}

	// Concept subtrees that shape the instance-type mix. Real news KGs
	// are dominated by organisations and places: DBpedia's extents for
	// "Company" and "Country" dwarf those of event categories, which is
	// what keeps broad group concepts *unspecific* in Eq. 3. Without
	// this skew, a query's group concept would out-score its topic.
	subtree := func(roots ...string) []kg.NodeID {
		var out []kg.NodeID
		var queue []kg.NodeID
		seen := map[kg.NodeID]struct{}{}
		for _, name := range roots {
			if id, ok := conceptIDs[name]; ok {
				queue = append(queue, id)
				seen[id] = struct{}{}
			}
		}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			out = append(out, c)
			for _, ch := range children[c] {
				if _, ok := seen[ch]; !ok {
					seen[ch] = struct{}{}
					queue = append(queue, ch)
				}
			}
		}
		return out
	}
	bizConcepts := subtree("Companies", "Finance")
	geoConcepts := subtree("Geography")
	personConcepts := subtree("People")

	// ── Synthetic instances ────────────────────────────────────────
	// The primary type of each instance follows the news-entity mix:
	// mostly organisations/companies, then places and people, then the
	// event/topic long tail (Zipf over creation order, so curated topic
	// concepts accumulate large extents while late synthetic concepts
	// stay niche — giving |Ψ(c)| the multi-order-of-magnitude spread the
	// specificity score needs).
	typeZipf := xrand.NewZipf(r.Fork(3), 0.9, len(conceptOrder))
	bizZipf := xrand.NewZipf(r.Fork(5), 0.8, max(1, len(bizConcepts)))
	geoZipf := xrand.NewZipf(r.Fork(6), 0.8, max(1, len(geoConcepts)))
	personZipf := xrand.NewZipf(r.Fork(7), 0.8, max(1, len(personConcepts)))
	for i := 0; i < cfg.ExtraInstances; i++ {
		var primary kg.NodeID
		var name string
		switch roll := r.Float64(); {
		case roll < 0.45 && len(bizConcepts) > 0:
			primary = bizConcepts[bizZipf.Next()]
			name = names.company()
		case roll < 0.60 && len(geoConcepts) > 0:
			primary = geoConcepts[geoZipf.Next()]
			name = names.place()
		case roll < 0.72 && len(personConcepts) > 0:
			primary = personConcepts[personZipf.Next()]
			name = names.person()
		default:
			primary = conceptOrder[typeZipf.Next()]
			name = names.instance()
		}
		id := b.AddInstance(name)
		instances = append(instances, id)
		addType(id, primary)
		// Secondary types stay semantically coherent with the primary —
		// the parent concept or a sibling — the way DBpedia subject
		// assignments cluster. Unconstrained secondary types would
		// create chimera entities (a company that is also an election)
		// whose mentions leak unrelated documents into topical queries.
		extra := r.Intn(cfg.MaxTypesPerInstance) // 0..max-1 additional
		for t := 0; t < extra; t++ {
			c := relatedConcept(r, primary, parentOf, children)
			if c >= 0 && !containsID(memberOf[id], c) {
				addType(id, c)
			}
		}
	}

	// ── Curated-extent backfill ────────────────────────────────────
	// Every curated concept keeps a minimum direct extent so the
	// evaluation topics are matchable at any scale.
	minExtent := cfg.MinCuratedExtent
	if minExtent <= 0 {
		minExtent = 3
	}
	for _, cs := range curatedConcepts {
		if cs.name == RootConcept {
			continue
		}
		cid := conceptIDs[cs.name]
		for len(extentOf[cid]) < minExtent {
			id := b.AddInstance(names.instance())
			instances = append(instances, id)
			addType(id, cid)
		}
	}

	// ── Synthetic fact edges ───────────────────────────────────────
	// Per-instance degree budgets follow a heavy-tailed distribution;
	// each edge is either a community edge (to a co-member of one of the
	// instance's concepts) or a global preferential-attachment edge.
	wanted := int(cfg.AvgDegree * float64(len(instances)) / 2)
	degZipf := xrand.NewZipf(r.Fork(4), 1.4, 64)
	edgesMade := len(curatedEdges)
	for edgesMade < wanted {
		u := instances[r.Intn(len(instances))]
		budget := 1 + degZipf.Next()
		for e := 0; e < budget && edgesMade < wanted; e++ {
			var v kg.NodeID = -1
			if r.Bool(cfg.CommunityBias) {
				if cs := memberOf[u]; len(cs) > 0 {
					ext := extentOf[cs[r.Intn(len(cs))]]
					if len(ext) > 1 {
						v = ext[r.Intn(len(ext))]
					}
				}
			}
			if v < 0 {
				if len(endpoints) > 0 && r.Bool(0.7) {
					v = endpoints[r.Intn(len(endpoints))]
				} else {
					v = instances[r.Intn(len(instances))]
				}
			}
			if v != u {
				addEdge(u, v)
				edgesMade++
			}
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}

	meta := &Meta{Groups: groups, Domains: conceptDomain,
		GroupConcepts: make(map[string]kg.NodeID)}
	for grp, cname := range groupConcepts {
		cid, ok := conceptIDs[cname]
		if !ok {
			return nil, nil, fmt.Errorf("kggen: group concept %q not curated", cname)
		}
		meta.GroupConcepts[grp] = cid
	}
	for _, ts := range EvaluationTopics {
		cid, ok := conceptIDs[ts.Concept]
		if !ok {
			return nil, nil, fmt.Errorf("kggen: topic %q references unknown concept %q", ts.Name, ts.Concept)
		}
		grp := groups[ts.GroupName]
		if len(grp) == 0 {
			return nil, nil, fmt.Errorf("kggen: topic %q has empty group %q", ts.Name, ts.GroupName)
		}
		gcName, ok := groupConcepts[ts.GroupName]
		if !ok {
			return nil, nil, fmt.Errorf("kggen: group %q has no group concept", ts.GroupName)
		}
		gcid, ok := conceptIDs[gcName]
		if !ok {
			return nil, nil, fmt.Errorf("kggen: group concept %q not curated", gcName)
		}
		meta.Topics = append(meta.Topics, Topic{
			Name: ts.Name, Concept: cid,
			GroupName: ts.GroupName, GroupConcept: gcid,
			Group: grp, Domain: ts.Domain,
		})
	}
	return g, meta, nil
}

// MustGenerate is Generate that panics on error; for tests and examples.
func MustGenerate(cfg Config) (*kg.Graph, *Meta) {
	g, m, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g, m
}

// relatedConcept picks a concept near primary in the taxonomy: its
// parent (40%) or a sibling (60%); −1 when primary has no parent.
func relatedConcept(r *xrand.Rand, primary kg.NodeID, parentOf, children map[kg.NodeID][]kg.NodeID) kg.NodeID {
	parents := parentOf[primary]
	if len(parents) == 0 {
		return -1
	}
	parent := parents[r.Intn(len(parents))]
	if r.Bool(0.4) {
		return parent
	}
	sibs := children[parent]
	if len(sibs) == 0 {
		return parent
	}
	return sibs[r.Intn(len(sibs))]
}

func containsID(s []kg.NodeID, v kg.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ── Deterministic name generation ──────────────────────────────────

var synSyllables = []string{
	"al", "ar", "bel", "bor", "cal", "cor", "dan", "del", "dor", "el",
	"fen", "gal", "gor", "hal", "hel", "jor", "kel", "kor", "lan", "lor",
	"mar", "mel", "mor", "nal", "nor", "or", "pel", "quin", "ral", "ren",
	"sal", "sel", "sor", "tal", "tel", "tor", "val", "vel", "vor", "wen",
	"xan", "yor", "zan", "zel",
}

var companySuffixes = []string{
	"Corporation", "Holdings", "Group", "Industries", "Partners",
	"Capital", "Ventures", "Systems", "Technologies", "Enterprises",
}

var orgSuffixes = []string{
	"Council", "Association", "Institute", "Foundation", "Agency",
	"Alliance", "Federation", "Bureau", "Commission", "Authority",
}

var conceptNouns = map[string][]string{
	"business": {
		"companies", "markets", "products", "services", "industries",
		"transactions", "instruments", "disputes", "ventures", "assets",
	},
	"politics": {
		"policies", "movements", "institutions", "territories",
		"agreements", "campaigns", "coalitions", "reforms", "districts",
		"assemblies",
	},
}

var firstNames = []string{
	"Ada", "Boris", "Carla", "Dmitri", "Esther", "Farid", "Greta",
	"Hiro", "Ines", "Jonas", "Katya", "Luis", "Mina", "Nadia", "Omar",
	"Priya", "Quentin", "Rosa", "Stefan", "Tarek", "Uma", "Vera",
	"Wilhelm", "Ximena", "Yusuf", "Zofia",
}

var lastNames = []string{
	"Abara", "Bergstrom", "Castellano", "Dubois", "Eriksen", "Fontaine",
	"Grigoriev", "Hassan", "Ivanova", "Jensen", "Kowalski", "Lindqvist",
	"Moreau", "Nakamura", "Okonkwo", "Petrov", "Quispe", "Rahman",
	"Santos", "Tanaka", "Ulrich", "Varga", "Weiss", "Xu", "Yamada", "Zhou",
}

type nameGen struct {
	r    *xrand.Rand
	used map[string]struct{}
}

func newNameGen(r *xrand.Rand) *nameGen {
	return &nameGen{r: r, used: make(map[string]struct{})}
}

func (n *nameGen) reserve(s string) { n.used[s] = struct{}{} }

func (n *nameGen) unique(make func() string) string {
	for i := 0; ; i++ {
		s := make()
		if i > 20 {
			s = fmt.Sprintf("%s %d", s, n.r.Intn(10000))
		}
		if _, ok := n.used[s]; !ok {
			n.used[s] = struct{}{}
			return s
		}
	}
}

func (n *nameGen) word(minSyl, maxSyl int) string {
	k := n.r.Range(minSyl, maxSyl+1)
	var sb strings.Builder
	for i := 0; i < k; i++ {
		sb.WriteString(synSyllables[n.r.Intn(len(synSyllables))])
	}
	w := sb.String()
	return strings.ToUpper(w[:1]) + w[1:]
}

// concept produces a synthetic category name such as "Torvel markets".
func (n *nameGen) concept(domain string) string {
	nouns := conceptNouns[domain]
	if nouns == nil {
		nouns = conceptNouns["business"]
	}
	return n.unique(func() string {
		return n.word(2, 3) + " " + nouns[n.r.Intn(len(nouns))]
	})
}

// instance produces a synthetic entity name for the event/topic long
// tail: organisation-like or dossier-like shapes.
func (n *nameGen) instance() string {
	if n.r.Bool(0.5) {
		return n.unique(func() string {
			return n.word(2, 3) + " " + orgSuffixes[n.r.Intn(len(orgSuffixes))]
		})
	}
	return n.company()
}

// company produces a company-shaped name ("Torvel Holdings").
func (n *nameGen) company() string {
	return n.unique(func() string {
		return n.word(2, 3) + " " + companySuffixes[n.r.Intn(len(companySuffixes))]
	})
}

// place produces a place-shaped name ("Velmorburg").
func (n *nameGen) place() string {
	return n.unique(func() string {
		return n.word(2, 3) + n.placeSuffix()
	})
}

// person produces a person-shaped name ("Mina Okonkwo").
func (n *nameGen) person() string {
	return n.unique(func() string {
		return firstNames[n.r.Intn(len(firstNames))] + " " +
			lastNames[n.r.Intn(len(lastNames))]
	})
}

func (n *nameGen) placeSuffix() string {
	suffixes := []string{"ville", "burg", "stad", "port", " City", " Province"}
	return suffixes[n.r.Intn(len(suffixes))]
}
