package kggen

// The curated backbone embeds the concepts and entities that the paper's
// narrative and evaluation depend on: the six Table-I topics with their
// entity groups, the CryptoX/FTX KYC walkthrough of Fig. 1, and the
// media-ownership scenario of §I. The synthetic generator then grows a
// DBpedia-scale graph around this backbone, so examples replay the
// paper's scenarios verbatim while the algorithms run at realistic
// fan-outs.

// conceptSpec declares one curated concept: its canonical name, its
// parent in the `broader` hierarchy ("" for the root), and the news
// domain used by the Fig. 8 ablation split.
type conceptSpec struct {
	name   string
	parent string
	domain string // "business" | "politics"
}

// instanceSpec declares one curated instance entity with its alias
// surface forms, its Ψ⁻¹ concepts, and the named entity groups it
// belongs to (groups form the Table-I query entity lists).
type instanceSpec struct {
	name     string
	aliases  []string
	concepts []string
	groups   []string
}

// RootConcept is the single ancestor of every curated concept.
const RootConcept = "Topic"

var curatedConcepts = []conceptSpec{
	{RootConcept, "", "business"},

	// ── Business domains ────────────────────────────────────────────
	{"Finance", RootConcept, "business"},
	{"Financial crime", "Finance", "business"},
	{"Money laundering", "Financial crime", "business"},
	{"Fraud", "Financial crime", "business"},
	{"Securities fraud", "Fraud", "business"},
	{"Wire fraud", "Fraud", "business"},
	{"Ponzi scheme", "Fraud", "business"},
	{"Insider trading", "Financial crime", "business"},
	{"Terrorist financing", "Financial crime", "business"},
	{"Sanctions violation", "Financial crime", "business"},
	{"Banking", "Finance", "business"},
	{"Private bank", "Banking", "business"},
	{"Investment bank", "Banking", "business"},
	{"Swiss bank", "Banking", "business"},
	{"Central bank", "Banking", "business"},
	{"Cryptocurrency", "Finance", "business"},
	{"Bitcoin exchange", "Cryptocurrency", "business"},
	{"Stablecoin issuer", "Cryptocurrency", "business"},
	{"Crypto wallet provider", "Cryptocurrency", "business"},
	{"Financial markets", "Finance", "business"},
	{"Stock exchange", "Financial markets", "business"},
	{"Hedge fund", "Financial markets", "business"},
	{"Payment processor", "Finance", "business"},

	{"Commerce", RootConcept, "business"},
	{"Mergers and acquisitions", "Commerce", "business"},
	{"Takeover", "Mergers and acquisitions", "business"},
	{"Hostile takeover", "Takeover", "business"},
	{"Merger", "Mergers and acquisitions", "business"},
	{"Acquisition", "Mergers and acquisitions", "business"},
	{"International trade", "Commerce", "business"},
	{"Tariff", "International trade", "business"},
	{"Trade agreement", "International trade", "business"},
	{"Export control", "International trade", "business"},
	{"Trade dispute", "International trade", "business"},
	{"Supply chain", "Commerce", "business"},

	{"Companies", RootConcept, "business"},
	{"Technology company", "Companies", "business"},
	{"American technology company", "Technology company", "business"},
	{"Social media company", "Technology company", "business"},
	{"Semiconductor company", "Technology company", "business"},
	{"Biotechnology company", "Companies", "business"},
	{"American biotechnology company", "Biotechnology company", "business"},
	{"Pharmaceutical company", "Companies", "business"},
	{"Automotive company", "Companies", "business"},
	{"Airline", "Companies", "business"},
	{"Retailer", "Companies", "business"},
	{"Energy company", "Companies", "business"},
	{"Mining company", "Companies", "business"},
	{"Logistics company", "Companies", "business"},

	{"Law", RootConcept, "business"},
	{"Lawsuits", "Law", "business"},
	{"Class action", "Lawsuits", "business"},
	{"Antitrust case", "Lawsuits", "business"},
	{"Patent litigation", "Lawsuits", "business"},
	{"Consumer protection case", "Lawsuits", "business"},
	{"Regulator", "Law", "business"},
	{"Financial regulator", "Regulator", "business"},
	{"Securities regulator", "Financial regulator", "business"},
	{"Antitrust authority", "Regulator", "business"},
	{"Data protection authority", "Regulator", "business"},
	{"Court", "Law", "business"},
	{"Regulation", "Law", "business"},
	{"Compliance", "Regulation", "business"},
	{"Know your customer", "Compliance", "business"},
	{"Suspicious activity report", "Compliance", "business"},

	{"Labor", RootConcept, "business"},
	{"Labor dispute", "Labor", "business"},
	{"Strike action", "Labor dispute", "business"},
	{"Lockout", "Labor dispute", "business"},
	{"Labor union", "Labor", "business"},
	{"Collective bargaining", "Labor", "business"},
	{"Working conditions", "Labor", "business"},
	{"Child labor", "Labor", "business"},
	{"Forced labor", "Labor", "business"},

	{"Environment", RootConcept, "business"},
	{"Environmental, social and governance", "Environment", "business"},
	{"Illegal logging", "Environment", "business"},
	{"Wildlife trading", "Environment", "business"},
	{"Carbon emissions", "Environment", "business"},

	{"Media", RootConcept, "business"},
	{"Newspaper", "Media", "business"},
	{"Media ownership", "Media", "business"},
	{"Media bias", "Media", "business"},

	// ── Politics domains ────────────────────────────────────────────
	{"Politics", RootConcept, "politics"},
	{"Elections", "Politics", "politics"},
	{"Presidential election", "Elections", "politics"},
	{"Parliamentary election", "Elections", "politics"},
	{"Local election", "Elections", "politics"},
	{"Electoral fraud", "Elections", "politics"},
	{"International relations", "Politics", "politics"},
	{"Diplomacy", "International relations", "politics"},
	{"Economic sanctions", "International relations", "politics"},
	{"Treaty", "International relations", "politics"},
	{"Summit meeting", "International relations", "politics"},
	{"Border dispute", "International relations", "politics"},
	{"Government", "Politics", "politics"},
	{"Legislation", "Government", "politics"},
	{"Political party", "Politics", "politics"},

	{"Geography", RootConcept, "politics"},
	{"Country", "Geography", "politics"},
	{"African country", "Country", "politics"},
	{"European country", "Country", "politics"},
	{"Asian country", "Country", "politics"},
	{"North American country", "Country", "politics"},
	{"South American country", "Country", "politics"},
	{"City", "Geography", "politics"},

	{"People", RootConcept, "politics"},
	{"Business executive", "People", "business"},
	{"Billionaire", "People", "business"},
	{"Politician", "People", "politics"},
	{"Head of state", "Politician", "politics"},
}

var curatedInstances = []instanceSpec{
	// Crypto exchanges — the Fig. 1 KYC walkthrough.
	{"FTX", []string{"FTX Trading"}, []string{"Bitcoin exchange"}, []string{"crypto_exchanges"}},
	{"CryptoX", nil, []string{"Bitcoin exchange"}, []string{"crypto_exchanges"}},
	{"Binance", nil, []string{"Bitcoin exchange"}, []string{"crypto_exchanges"}},
	{"Coinbase", nil, []string{"Bitcoin exchange", "American technology company"}, []string{"crypto_exchanges"}},
	{"Kraken Exchange", []string{"Kraken"}, []string{"Bitcoin exchange"}, []string{"crypto_exchanges"}},
	{"Bitfinex", nil, []string{"Bitcoin exchange"}, []string{"crypto_exchanges"}},
	{"TetherHold", []string{"TetherHold Inc"}, []string{"Stablecoin issuer"}, []string{"crypto_exchanges"}},

	// US technology companies — "Lawsuits involving U.S. technology companies".
	{"Apex Devices", []string{"Apex"}, []string{"American technology company"}, []string{"us_tech_companies"}},
	{"Gigalith Systems", []string{"Gigalith"}, []string{"American technology company", "Semiconductor company"}, []string{"us_tech_companies"}},
	{"Nimbus Cloud", []string{"Nimbus"}, []string{"American technology company"}, []string{"us_tech_companies"}},
	{"Vertex Social", []string{"Vertex"}, []string{"American technology company", "Social media company"}, []string{"us_tech_companies"}},
	{"Quantara Labs", []string{"Quantara"}, []string{"American technology company"}, []string{"us_tech_companies"}},
	{"Orbion Software", []string{"Orbion"}, []string{"American technology company"}, []string{"us_tech_companies"}},
	{"Heliotek", nil, []string{"American technology company", "Semiconductor company"}, []string{"us_tech_companies"}},
	{"Twitter", nil, []string{"Social media company", "American technology company"}, []string{"us_tech_companies", "media_outlets"}},

	// US biotechnology companies — the M&A topic.
	{"Genovira Therapeutics", []string{"Genovira"}, []string{"American biotechnology company"}, []string{"us_biotech_companies"}},
	{"Celestra Bio", []string{"Celestra"}, []string{"American biotechnology company"}, []string{"us_biotech_companies"}},
	{"Mirapharm", nil, []string{"American biotechnology company", "Pharmaceutical company"}, []string{"us_biotech_companies"}},
	{"Axiom Genomics", []string{"Axiom"}, []string{"American biotechnology company"}, []string{"us_biotech_companies"}},
	{"Beacon Biosciences", []string{"Beacon Bio"}, []string{"American biotechnology company"}, []string{"us_biotech_companies"}},
	{"Novarra Health", []string{"Novarra"}, []string{"American biotechnology company"}, []string{"us_biotech_companies"}},
	{"Syntheon", nil, []string{"American biotechnology company"}, []string{"us_biotech_companies"}},

	// Automakers & industrials — labor-dispute stories.
	{"Meridian Motors", []string{"Meridian"}, []string{"Automotive company"}, []string{"industrial_companies"}},
	{"Stratos Auto", []string{"Stratos"}, []string{"Automotive company"}, []string{"industrial_companies"}},
	{"Calder Steel", []string{"Calder"}, []string{"Mining company"}, []string{"industrial_companies"}},
	{"Pacific Freight", nil, []string{"Logistics company"}, []string{"industrial_companies"}},
	{"Aerowing", []string{"Aerowing Airlines"}, []string{"Airline"}, []string{"industrial_companies"}},
	{"Hartmann Retail Group", []string{"Hartmann"}, []string{"Retailer"}, []string{"industrial_companies"}},
	{"Borealis Energy", []string{"Borealis"}, []string{"Energy company"}, []string{"industrial_companies"}},

	// Unions.
	{"United Metalworkers Union", []string{"Metalworkers Union"}, []string{"Labor union"}, []string{"unions"}},
	{"Transport Workers Federation", nil, []string{"Labor union"}, []string{"unions"}},
	{"Airline Crew Association", nil, []string{"Labor union"}, []string{"unions"}},
	{"Retail Employees Alliance", nil, []string{"Labor union"}, []string{"unions"}},

	// Banks.
	{"Helvetia Credit", []string{"Helvetia"}, []string{"Swiss bank", "Private bank"}, []string{"swiss_banks", "banks"}},
	{"Alpenbank", nil, []string{"Swiss bank"}, []string{"swiss_banks", "banks"}},
	{"Zurich Mercantile", []string{"Zurich Mercantile Bank"}, []string{"Swiss bank", "Investment bank"}, []string{"swiss_banks", "banks"}},
	{"Glarus Private Bank", []string{"Glarus"}, []string{"Swiss bank", "Private bank"}, []string{"swiss_banks", "banks"}},
	{"DBS Bank", []string{"DBS"}, []string{"Investment bank"}, []string{"banks"}},
	{"Meridian Trust", nil, []string{"Investment bank"}, []string{"banks"}},
	{"PayPal", nil, []string{"Payment processor", "American technology company"}, []string{"banks"}},

	// Regulators and courts.
	{"Securities Commission", []string{"SEC"}, []string{"Securities regulator"}, []string{"regulators"}},
	{"Federal Trade Authority", []string{"FTA"}, []string{"Antitrust authority"}, []string{"regulators"}},
	{"Financial Conduct Board", []string{"FCB"}, []string{"Financial regulator"}, []string{"regulators"}},
	{"Monetary Authority", []string{"MAS"}, []string{"Financial regulator", "Central bank"}, []string{"regulators"}},
	{"Swiss Market Supervisor", []string{"FINSA"}, []string{"Financial regulator"}, []string{"regulators"}},
	{"Justice Department", []string{"DOJ"}, []string{"Antitrust authority"}, []string{"regulators"}},
	{"Federal District Court", nil, []string{"Court"}, []string{"regulators"}},

	// Media owners and outlets — the §I media-bias scenario.
	{"Elon Musk", []string{"Musk"}, []string{"Billionaire", "Business executive"}, []string{"media_owners"}},
	{"Jeff Bezos", []string{"Bezos"}, []string{"Billionaire", "Business executive"}, []string{"media_owners"}},
	{"Patrick Soon-Shiong", []string{"Soon-Shiong"}, []string{"Billionaire", "Business executive"}, []string{"media_owners"}},
	{"Rupert Murdoch", []string{"Murdoch"}, []string{"Billionaire", "Business executive"}, []string{"media_owners"}},
	{"Washington Post", nil, []string{"Newspaper"}, []string{"media_outlets"}},
	{"Los Angeles Times", []string{"LA Times"}, []string{"Newspaper"}, []string{"media_outlets"}},
	{"Wall Street Journal", []string{"WSJ"}, []string{"Newspaper"}, []string{"media_outlets"}},

	// Executives tied to the crypto story.
	{"Sam Altvater", nil, []string{"Business executive"}, []string{"executives"}},
	{"Lena Okafor", nil, []string{"Business executive"}, []string{"executives"}},
	{"Viktor Hale", nil, []string{"Business executive"}, []string{"executives"}},

	// Countries — trade / international-relations topics.
	{"United States", []string{"US", "USA"}, []string{"North American country"}, []string{"countries"}},
	{"China", nil, []string{"Asian country"}, []string{"countries"}},
	{"Germany", nil, []string{"European country"}, []string{"countries"}},
	{"France", nil, []string{"European country"}, []string{"countries"}},
	{"Switzerland", nil, []string{"European country"}, []string{"countries"}},
	{"Japan", nil, []string{"Asian country"}, []string{"countries"}},
	{"India", nil, []string{"Asian country"}, []string{"countries"}},
	{"Brazil", nil, []string{"South American country"}, []string{"countries"}},
	{"Canada", nil, []string{"North American country"}, []string{"countries"}},
	{"Singapore", nil, []string{"Asian country"}, []string{"countries"}},
	{"United Kingdom", []string{"UK", "Britain"}, []string{"European country"}, []string{"countries"}},
	{"Mexico", nil, []string{"North American country"}, []string{"countries"}},
	{"Australia", nil, []string{"Asian country"}, []string{"countries"}},
	{"South Korea", nil, []string{"Asian country"}, []string{"countries"}},

	// African countries — "Elections in African countries".
	{"Nigeria", nil, []string{"African country"}, []string{"countries", "african_countries"}},
	{"Kenya", nil, []string{"African country"}, []string{"countries", "african_countries"}},
	{"South Africa", nil, []string{"African country"}, []string{"countries", "african_countries"}},
	{"Ghana", nil, []string{"African country"}, []string{"countries", "african_countries"}},
	{"Egypt", nil, []string{"African country"}, []string{"countries", "african_countries"}},
	{"Ethiopia", nil, []string{"African country"}, []string{"countries", "african_countries"}},
	{"Senegal", nil, []string{"African country"}, []string{"countries", "african_countries"}},
	{"Morocco", nil, []string{"African country"}, []string{"countries", "african_countries"}},

	// Politicians for election stories.
	{"Amara Diallo", nil, []string{"Politician", "Head of state"}, []string{"politicians"}},
	{"Kwame Mensah", nil, []string{"Politician"}, []string{"politicians"}},
	{"Ingrid Halvorsen", nil, []string{"Politician", "Head of state"}, []string{"politicians"}},
	{"Rajan Mehta", nil, []string{"Politician"}, []string{"politicians"}},
	{"Elena Vasquez", nil, []string{"Politician", "Head of state"}, []string{"politicians"}},
	{"Tunde Adebayo", nil, []string{"Politician"}, []string{"politicians"}},
}

// curatedEdges wires the backbone's fact network: competitor links,
// ownership, oversight, and geography, so the connectivity score has
// meaningful short paths between query concepts and context entities.
var curatedEdges = [][2]string{
	// Crypto exchange competitive cluster + oversight.
	{"FTX", "Binance"}, {"FTX", "Coinbase"}, {"Binance", "Coinbase"},
	{"CryptoX", "FTX"}, {"CryptoX", "Binance"}, {"Kraken Exchange", "Coinbase"},
	{"Bitfinex", "TetherHold"}, {"Bitfinex", "Binance"},
	{"FTX", "Sam Altvater"}, {"CryptoX", "Lena Okafor"}, {"TetherHold", "Viktor Hale"},
	{"Securities Commission", "FTX"}, {"Securities Commission", "Coinbase"},
	{"Securities Commission", "Binance"}, {"Financial Conduct Board", "Bitfinex"},
	{"Monetary Authority", "CryptoX"}, {"Monetary Authority", "DBS Bank"},
	{"Justice Department", "FTX"},

	// Banks, geography, and oversight.
	{"Helvetia Credit", "Switzerland"}, {"Alpenbank", "Switzerland"},
	{"Zurich Mercantile", "Switzerland"}, {"Glarus Private Bank", "Switzerland"},
	{"Swiss Market Supervisor", "Helvetia Credit"}, {"Swiss Market Supervisor", "Alpenbank"},
	{"Swiss Market Supervisor", "Zurich Mercantile"},
	{"DBS Bank", "Singapore"}, {"Monetary Authority", "Singapore"},
	{"PayPal", "United States"}, {"Helvetia Credit", "Zurich Mercantile"},

	// Tech sector: rivals, courts, regulators.
	{"Apex Devices", "Gigalith Systems"}, {"Apex Devices", "Nimbus Cloud"},
	{"Vertex Social", "Twitter"}, {"Nimbus Cloud", "Orbion Software"},
	{"Quantara Labs", "Heliotek"}, {"Gigalith Systems", "Heliotek"},
	{"Federal Trade Authority", "Apex Devices"}, {"Federal Trade Authority", "Nimbus Cloud"},
	{"Justice Department", "Gigalith Systems"}, {"Federal District Court", "Apex Devices"},
	{"Federal District Court", "Vertex Social"},
	{"Apex Devices", "United States"}, {"Gigalith Systems", "United States"},
	{"Nimbus Cloud", "United States"}, {"Vertex Social", "United States"},
	{"Quantara Labs", "United States"}, {"Orbion Software", "United States"},
	{"Heliotek", "United States"}, {"Twitter", "United States"},

	// Biotech M&A web.
	{"Genovira Therapeutics", "Celestra Bio"}, {"Mirapharm", "Axiom Genomics"},
	{"Beacon Biosciences", "Novarra Health"}, {"Syntheon", "Genovira Therapeutics"},
	{"Mirapharm", "United States"}, {"Genovira Therapeutics", "United States"},
	{"Celestra Bio", "United States"}, {"Axiom Genomics", "United States"},
	{"Beacon Biosciences", "United States"}, {"Novarra Health", "United States"},
	{"Syntheon", "United States"}, {"Securities Commission", "Mirapharm"},

	// Labor relations.
	{"Meridian Motors", "United Metalworkers Union"},
	{"Stratos Auto", "United Metalworkers Union"},
	{"Calder Steel", "United Metalworkers Union"},
	{"Pacific Freight", "Transport Workers Federation"},
	{"Aerowing", "Airline Crew Association"},
	{"Hartmann Retail Group", "Retail Employees Alliance"},
	{"Meridian Motors", "Germany"}, {"Stratos Auto", "United States"},
	{"Calder Steel", "United States"}, {"Pacific Freight", "Singapore"},
	{"Aerowing", "France"}, {"Hartmann Retail Group", "Germany"},
	{"Borealis Energy", "Canada"},

	// Media ownership network (§I scenario).
	{"Elon Musk", "Twitter"}, {"Jeff Bezos", "Washington Post"},
	{"Patrick Soon-Shiong", "Los Angeles Times"}, {"Rupert Murdoch", "Wall Street Journal"},
	{"Elon Musk", "United States"}, {"Jeff Bezos", "United States"},

	// Politicians and their countries.
	{"Amara Diallo", "Senegal"}, {"Kwame Mensah", "Ghana"},
	{"Tunde Adebayo", "Nigeria"}, {"Ingrid Halvorsen", "Germany"},
	{"Rajan Mehta", "India"}, {"Elena Vasquez", "Mexico"},

	// Trade geography: major partners.
	{"United States", "China"}, {"United States", "Canada"}, {"United States", "Mexico"},
	{"China", "Japan"}, {"China", "Germany"}, {"Germany", "France"},
	{"United Kingdom", "France"}, {"Japan", "South Korea"}, {"India", "United States"},
	{"Brazil", "China"}, {"Australia", "China"}, {"Nigeria", "China"},
	{"Kenya", "United Kingdom"}, {"South Africa", "Germany"}, {"Egypt", "France"},
	{"Ethiopia", "China"}, {"Ghana", "United States"}, {"Morocco", "France"},
	{"Senegal", "France"}, {"Singapore", "United States"}, {"Switzerland", "Germany"},
}

// TopicSpec describes one Table-I evaluation topic: the concept queried,
// the entity group combined with it (e.g. "Elections in African
// countries"), and its Fig. 8 domain.
type TopicSpec struct {
	Name      string
	Concept   string // curated concept name
	GroupName string // curated group key
	Domain    string // "business" | "politics"
}

// groupConcepts maps each entity-group key to the curated concept that
// generalises its members. Table-I queries are concept-pattern queries
// Q = {topic concept, group concept}: "Elections in African countries"
// becomes {Elections, African country}.
var groupConcepts = map[string]string{
	"countries":            "Country",
	"african_countries":    "African country",
	"us_tech_companies":    "American technology company",
	"us_biotech_companies": "American biotechnology company",
	"industrial_companies": "Companies",
	"swiss_banks":          "Swiss bank",
	"banks":                "Banking",
	"crypto_exchanges":     "Bitcoin exchange",
	"media_owners":         "Billionaire",
	"media_outlets":        "Newspaper",
	"unions":               "Labor union",
	"regulators":           "Regulator",
	"politicians":          "Politician",
	"executives":           "Business executive",
}

// EvaluationTopics mirrors Table I's six topics.
var EvaluationTopics = []TopicSpec{
	{"International Trade", "International trade", "countries", "business"},
	{"Lawsuits", "Lawsuits", "us_tech_companies", "business"},
	{"Elections", "Elections", "african_countries", "politics"},
	{"Mergers & Acquisitions", "Mergers and acquisitions", "us_biotech_companies", "business"},
	{"International Relations", "International relations", "countries", "politics"},
	{"Labor Dispute", "Labor dispute", "industrial_companies", "business"},
}
