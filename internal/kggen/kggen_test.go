package kggen

import (
	"math"
	"sort"
	"testing"

	"ncexplorer/internal/kg"
)

func TestGenerateTiny(t *testing.T) {
	g, meta := MustGenerate(Tiny())
	if g.NumConcepts() < len(curatedConcepts) {
		t.Fatalf("concepts = %d, want ≥ %d curated", g.NumConcepts(), len(curatedConcepts))
	}
	if g.NumInstances() < len(curatedInstances)+300 {
		t.Fatalf("instances = %d, too few", g.NumInstances())
	}
	if len(meta.Topics) != 6 {
		t.Fatalf("topics = %d, want 6", len(meta.Topics))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Tiny()
	g1, _ := MustGenerate(cfg)
	g2, _ := MustGenerate(cfg)
	s1, s2 := g1.Stats(), g2.Stats()
	if s1 != s2 {
		t.Fatalf("same seed produced different graphs: %+v vs %+v", s1, s2)
	}
	// Spot-check adjacency equality on a curated hub.
	ftx1 := g1.MustLookup("FTX")
	ftx2 := g2.MustLookup("FTX")
	n1, n2 := g1.InstanceNeighbors(ftx1), g2.InstanceNeighbors(ftx2)
	if len(n1) != len(n2) {
		t.Fatalf("FTX degree differs: %d vs %d", len(n1), len(n2))
	}
	cfg2 := cfg
	cfg2.Seed = 99
	g3, _ := MustGenerate(cfg2)
	if g3.Stats() == s1 {
		t.Fatal("different seeds produced identical stats (suspicious)")
	}
}

func TestCuratedBackbonePresent(t *testing.T) {
	g, _ := MustGenerate(Tiny())
	for _, name := range []string{"FTX", "CryptoX", "Elon Musk", "Bitcoin exchange",
		"Financial crime", "Regulator", "Switzerland", "Money laundering"} {
		if _, ok := g.Lookup(name); !ok {
			t.Errorf("curated node %q missing", name)
		}
	}
	// The Fig. 1 roll-up path: FTX ∈ Ψ(Bitcoin exchange), and
	// Bitcoin exchange ⊑ Cryptocurrency ⊑ Finance.
	ftx := g.MustLookup("FTX")
	be := g.MustLookup("Bitcoin exchange")
	found := false
	for _, c := range g.ConceptsOf(ftx) {
		if c == be {
			found = true
		}
	}
	if !found {
		t.Fatal("FTX should belong to Bitcoin exchange")
	}
	anc := g.AncestorsWithin(be, 3)
	names := map[string]bool{}
	for _, a := range anc {
		names[g.Name(a)] = true
	}
	if !names["Cryptocurrency"] || !names["Finance"] {
		t.Fatalf("Bitcoin exchange ancestors = %v", names)
	}
}

func TestTopicsResolvable(t *testing.T) {
	g, meta := MustGenerate(Tiny())
	for _, topic := range meta.Topics {
		if !g.IsConcept(topic.Concept) {
			t.Errorf("topic %q concept is not a concept node", topic.Name)
		}
		if len(topic.Group) == 0 {
			t.Errorf("topic %q has empty group", topic.Name)
		}
		for _, v := range topic.Group {
			if !g.IsInstance(v) {
				t.Errorf("topic %q group member %q is not an instance", topic.Name, g.Name(v))
			}
		}
		if topic.Domain != "business" && topic.Domain != "politics" {
			t.Errorf("topic %q has domain %q", topic.Name, topic.Domain)
		}
		// Topic concepts must have a non-trivial extent closure so that
		// roll-up queries can match documents.
		if n := g.ExtentClosureSize(topic.Concept); n < 2 {
			t.Errorf("topic %q extent closure = %d, too small", topic.Name, n)
		}
	}
}

func TestDegreeDistributionHeavyTailed(t *testing.T) {
	g, _ := MustGenerate(Tiny())
	var degrees []int
	g.Instances(func(v kg.NodeID) bool {
		degrees = append(degrees, g.InstanceDegree(v))
		return true
	})
	sort.Sort(sort.Reverse(sort.IntSlice(degrees)))
	if degrees[0] < 4*int(math.Max(1, float64(degrees[len(degrees)/2]))) {
		t.Errorf("max degree %d vs median %d: expected heavy tail",
			degrees[0], degrees[len(degrees)/2])
	}
	// Average degree should land near the configured target.
	sum := 0
	for _, d := range degrees {
		sum += d
	}
	avg := float64(sum) / float64(len(degrees))
	if avg < 2 || avg > 14 {
		t.Errorf("avg degree = %v, want near %v", avg, Tiny().AvgDegree)
	}
}

func TestExtentSpread(t *testing.T) {
	// The specificity score needs |Ψ(c)| to span orders of magnitude.
	g, _ := MustGenerate(Tiny())
	minExt, maxExt := math.MaxInt32, 0
	g.Concepts(func(c kg.NodeID) bool {
		n := g.ExtentSize(c)
		if n > 0 && n < minExt {
			minExt = n
		}
		if n > maxExt {
			maxExt = n
		}
		return true
	})
	if maxExt < 10*minExt {
		t.Errorf("extent sizes span [%d,%d]; want ≥10× spread", minExt, maxExt)
	}
}

func TestDomainsCoverAllConcepts(t *testing.T) {
	g, meta := MustGenerate(Tiny())
	missing := 0
	g.Concepts(func(c kg.NodeID) bool {
		if _, ok := meta.Domains[c]; !ok {
			missing++
		}
		return true
	})
	if missing > 0 {
		t.Errorf("%d concepts lack a domain label", missing)
	}
	if meta.DomainOf(kg.NodeID(1<<30)) != "business" {
		t.Error("DomainOf should default to business")
	}
}

func TestGroupsPopulated(t *testing.T) {
	_, meta := MustGenerate(Tiny())
	for _, grp := range []string{"countries", "african_countries",
		"us_tech_companies", "us_biotech_companies", "industrial_companies",
		"swiss_banks", "crypto_exchanges", "media_owners"} {
		if len(meta.Groups[grp]) < 3 {
			t.Errorf("group %q has %d members, want ≥3", grp, len(meta.Groups[grp]))
		}
	}
}

func TestConnectedBackbone(t *testing.T) {
	// Curated story entities must be reachable from each other within a
	// few hops so connectivity scoring has signal: FTX ↔ regulators.
	g, _ := MustGenerate(Tiny())
	ftx := g.MustLookup("FTX")
	sec := g.MustLookup("Securities Commission")
	dist := bfsDistance(g, ftx, sec, 4)
	if dist < 0 || dist > 2 {
		t.Errorf("FTX→SEC distance = %d, want ≤2", dist)
	}
}

func bfsDistance(g *kg.Graph, from, to kg.NodeID, limit int) int {
	if from == to {
		return 0
	}
	seen := map[kg.NodeID]struct{}{from: {}}
	frontier := []kg.NodeID{from}
	for d := 1; d <= limit; d++ {
		var next []kg.NodeID
		for _, u := range frontier {
			for _, v := range g.InstanceNeighbors(u) {
				if v == to {
					return d
				}
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return -1
}

func TestUniqueNames(t *testing.T) {
	g, _ := MustGenerate(Tiny())
	seen := make(map[string]struct{}, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		name := g.Name(kg.NodeID(i))
		if _, dup := seen[name]; dup {
			t.Fatalf("duplicate node name %q", name)
		}
		seen[name] = struct{}{}
	}
}

func BenchmarkGenerateTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustGenerate(Tiny())
	}
}
