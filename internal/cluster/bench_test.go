package cluster

// Cluster-tier benchmarks for scripts/bench_json.sh: router fan-out
// latency (p50/p99 across the scatter-gather round trip), segment
// shipping throughput (a cold replica mirroring a leader snapshot),
// and leader ingest with checkpointing armed — the configuration the
// plan-reuse mitigation in internal/core exists for.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"ncexplorer"
	"ncexplorer/internal/server"
)

// percentile picks the p-th percentile (0..1) from sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// benchCluster builds a seeded 2-shard cluster once per benchmark and
// returns it with a few batches already committed, so fan-out queries
// touch real segments on both shards.
func benchCluster(b *testing.B) *testCluster {
	b.Helper()
	tc := newTestCluster(b, 2)
	tc.ingest(0, 31, 8)
	tc.ingest(1, 32, 8)
	return tc
}

// BenchmarkRouterFanout measures the full scatter-gather round trip
// through the router's HTTP front — validation, per-shard fan-out over
// real sockets, exact merge, encode — and reports tail latency, the
// number a deployment actually budgets for.
func BenchmarkRouterFanout(b *testing.B) {
	for _, op := range []string{"rollup", "drilldown"} {
		b.Run(op, func(b *testing.B) {
			tc := benchCluster(b)
			topics := tc.world.EvaluationTopics()
			path := "/v2/query/" + op
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				topic := topics[i%len(topics)]
				req := queryReq{Concepts: []string{topic[0]}, K: 5}
				start := time.Now()
				status, body := postJSON(b, tc.rts.URL, path, req)
				lat = append(lat, time.Since(start))
				if status != http.StatusOK {
					b.Fatalf("%s = %d: %s", path, status, body)
				}
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(percentile(lat, 0.50)), "p50-ns")
			b.ReportMetric(float64(percentile(lat, 0.99)), "p99-ns")
		})
	}
}

// BenchmarkSegmentShipping measures a cold replica mirroring a leader
// snapshot over HTTP: manifest fetch, every segment verified and
// written, mirror committed. Reported as shipped bytes per second.
func BenchmarkSegmentShipping(b *testing.B) {
	ctx := context.Background()
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny", MaxSegments: 100})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := x.Save(dir); err != nil {
		b.Fatal(err)
	}
	x.CheckpointTo(dir)
	for seed := uint64(41); seed < 45; seed++ {
		batch, err := x.SampleArticles(seed, 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := x.Ingest(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
	srv := httptest.NewServer(server.New(x, server.Options{ClusterDataDir: dir}).Handler())
	defer srv.Close()

	var shipped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &Fetcher{BaseURL: srv.URL, Dir: b.TempDir()}
		if _, changed, err := f.Sync(ctx); err != nil || !changed {
			b.Fatalf("cold sync: changed=%v err=%v", changed, err)
		}
		shipped += f.Counters().BytesShipped
	}
	b.StopTimer()
	b.ReportMetric(float64(shipped)/b.Elapsed().Seconds(), "ship-B/s")
}

// BenchmarkLeaderIngest is the gate for the leader-ingest plan-reuse
// mitigation: ingest throughput with CheckpointTo armed (every batch
// both commits a segment and publishes a snapshot — the exact path a
// cluster leader runs on every ingest) against plain ingest, measured
// back-to-back in the same invocation so the ratio is comparable.
func BenchmarkLeaderIngest(b *testing.B) {
	for _, mode := range []string{"plain", "checkpointing"} {
		b.Run(mode, func(b *testing.B) {
			ctx := context.Background()
			x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
			if err != nil {
				b.Fatal(err)
			}
			if mode == "checkpointing" {
				dir := b.TempDir()
				if err := x.Save(dir); err != nil {
					b.Fatal(err)
				}
				x.CheckpointTo(dir)
			}
			const batchSize = 16
			batches := make([][]ncexplorer.IngestArticle, 8)
			for i := range batches {
				batch, err := x.SampleArticles(uint64(100+i), batchSize)
				if err != nil {
					b.Fatal(err)
				}
				batches[i] = batch
			}
			docs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := x.Ingest(ctx, batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
				docs += batchSize
			}
			b.StopTimer()
			b.ReportMetric(float64(docs)/b.Elapsed().Seconds(), "docs/sec")
		})
	}
}
