package cluster

// Cluster-tier benchmarks for scripts/bench_json.sh: router fan-out
// latency (p50/p99 across the scatter-gather round trip), segment
// shipping throughput (a cold replica mirroring a leader snapshot),
// and leader ingest with checkpointing armed — the configuration the
// plan-reuse mitigation in internal/core exists for.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"ncexplorer"
	"ncexplorer/internal/server"
)

// percentile picks the p-th percentile (0..1) from sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// benchCluster builds a seeded 2-shard cluster once per benchmark and
// returns it with a few batches already committed, so fan-out queries
// touch real segments on both shards.
func benchCluster(b *testing.B) *testCluster {
	b.Helper()
	tc := newTestCluster(b, 2)
	tc.ingest(0, 31, 8)
	tc.ingest(1, 32, 8)
	return tc
}

// BenchmarkRouterFanout measures the full scatter-gather round trip
// through the router's HTTP front — validation, per-shard fan-out over
// real sockets, exact merge, encode — and reports tail latency, the
// number a deployment actually budgets for.
func BenchmarkRouterFanout(b *testing.B) {
	for _, op := range []string{"rollup", "drilldown"} {
		b.Run(op, func(b *testing.B) {
			tc := benchCluster(b)
			topics := tc.world.EvaluationTopics()
			path := "/v2/query/" + op
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				topic := topics[i%len(topics)]
				req := queryReq{Concepts: []string{topic[0]}, K: 5}
				start := time.Now()
				status, body := postJSON(b, tc.rts.URL, path, req)
				lat = append(lat, time.Since(start))
				if status != http.StatusOK {
					b.Fatalf("%s = %d: %s", path, status, body)
				}
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(percentile(lat, 0.50)), "p50-ns")
			b.ReportMetric(float64(percentile(lat, 0.99)), "p99-ns")
		})
	}
}

// BenchmarkSegmentShipping measures a cold replica mirroring a leader
// snapshot over HTTP: manifest fetch, every segment verified and
// written, mirror committed. Reported as shipped bytes per second.
func BenchmarkSegmentShipping(b *testing.B) {
	ctx := context.Background()
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny", MaxSegments: 100})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := x.Save(dir); err != nil {
		b.Fatal(err)
	}
	x.CheckpointTo(dir)
	for seed := uint64(41); seed < 45; seed++ {
		batch, err := x.SampleArticles(seed, 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := x.Ingest(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
	x.Quiesce() // checkpoints drain asynchronously; ship the final manifest
	srv := httptest.NewServer(server.New(x, server.Options{ClusterDataDir: dir}).Handler())
	defer srv.Close()

	var shipped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &Fetcher{BaseURL: srv.URL, Dir: b.TempDir()}
		if _, changed, err := f.Sync(ctx); err != nil || !changed {
			b.Fatalf("cold sync: changed=%v err=%v", changed, err)
		}
		shipped += f.Counters().BytesShipped
	}
	b.StopTimer()
	b.ReportMetric(float64(shipped)/b.Elapsed().Seconds(), "ship-B/s")
}

// BenchmarkLeaderIngest is the gate for leader-ingest durability
// overhead: ingest throughput with CheckpointTo armed (every batch
// both commits a segment and publishes a durable snapshot — the exact
// path a cluster leader runs on every ingest) against plain ingest.
// Each run is a FIXED experiment — a fresh explorer ingesting the same
// 16 batches, drained to disk inside the timed region — so both modes
// measure identical work at identical corpus size regardless of b.N.
// The two modes are PAIRED: every iteration times one plain and one
// checkpointing run back to back (order alternating), so the reported
// ratio (durable-pct) compares runs that shared the machine's state,
// instead of two sub-benchmarks minutes apart whose difference is
// mostly host drift.
func BenchmarkLeaderIngest(b *testing.B) {
	ctx := context.Background()
	const batchSize = 16
	const numBatches = 16
	run := func(checkpoint bool) time.Duration {
		x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
		if err != nil {
			b.Fatal(err)
		}
		if checkpoint {
			dir := b.TempDir()
			if err := x.Save(dir); err != nil {
				b.Fatal(err)
			}
			x.CheckpointTo(dir)
		}
		batches := make([][]ncexplorer.IngestArticle, numBatches)
		for j := range batches {
			batch, err := x.SampleArticles(uint64(100+j), batchSize)
			if err != nil {
				b.Fatal(err)
			}
			batches[j] = batch
		}
		start := time.Now()
		for _, batch := range batches {
			if _, err := x.Ingest(ctx, batch); err != nil {
				b.Fatal(err)
			}
		}
		// Drain merges and the group-commit writer inside the timed
		// region: the gate compares DURABLE throughput, so coalesced
		// checkpoint writes are part of the measured work (and the
		// TempDir outlives every pending write).
		x.Quiesce()
		return time.Since(start)
	}
	var plainT, ckptT time.Duration
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			plainT += run(false)
			ckptT += run(true)
		} else {
			ckptT += run(true)
			plainT += run(false)
		}
	}
	docs := float64(numBatches * batchSize * b.N)
	b.ReportMetric(docs/plainT.Seconds(), "plain-docs/sec")
	b.ReportMetric(docs/ckptT.Seconds(), "ckpt-docs/sec")
	b.ReportMetric(100*plainT.Seconds()/ckptT.Seconds(), "durable-pct")
}
