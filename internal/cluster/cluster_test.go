package cluster

// In-process cluster harness: real HTTP servers (httptest) around real
// shard explorers, a real replica catch-up loop, and the router in
// front — versus a monolithic server over the union corpus. The
// equivalence test is the tentpole contract: every public query body
// the router serves must be byte-identical to the monolithic answer,
// at every generation of a randomized ingest-and-merge schedule.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ncexplorer"
	"ncexplorer/internal/server"
)

// shardNode is one serving process stand-in: explorer (nil for a
// replica before catch-up), server, and its HTTP front.
type shardNode struct {
	x   *ncexplorer.Explorer
	srv *server.Server
	ts  *httptest.Server
}

type testCluster struct {
	t        testing.TB
	ctx      context.Context
	monoX    *ncexplorer.Explorer
	mono     *httptest.Server
	leaders  []shardNode
	replicas []shardNode
	reps     []*Replica
	world    *ncexplorer.QueryWorld
	router   *Router
	rts      *httptest.Server
}

// newTestCluster builds an nShards-way cluster over the tiny world —
// each shard a leader (checkpointing into its shipping directory) plus
// one replica — and a monolithic reference server over the union
// corpus. Shard leaders merge aggressively (MaxSegments 2) so segment
// reorganisation happens mid-schedule; the reference never merges, so
// the equality also proves merge invariance end to end.
func newTestCluster(t testing.TB, nShards int) *testCluster {
	t.Helper()
	ctx := context.Background()
	tc := &testCluster{t: t, ctx: ctx}

	monoX, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny", MaxSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	tc.monoX = monoX
	tc.mono = httptest.NewServer(server.New(monoX, server.Options{}).Handler())
	t.Cleanup(tc.mono.Close)

	shards := make([][]string, nShards)
	for i := 0; i < nShards; i++ {
		x, err := ncexplorer.New(ncexplorer.Config{
			Scale: "tiny", Shard: i, ShardCount: nShards, MaxSegments: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := x.Save(dir); err != nil {
			t.Fatal(err)
		}
		x.CheckpointTo(dir)
		lsrv := server.New(x, server.Options{EnableCluster: true, ClusterDataDir: dir})
		lts := httptest.NewServer(lsrv.Handler())
		t.Cleanup(lts.Close)
		tc.leaders = append(tc.leaders, shardNode{x: x, srv: lsrv, ts: lts})

		rdir := t.TempDir()
		rsrv := server.New(nil, server.Options{EnableCluster: true, ClusterDataDir: rdir})
		rts := httptest.NewServer(rsrv.Handler())
		t.Cleanup(rts.Close)
		tc.replicas = append(tc.replicas, shardNode{srv: rsrv, ts: rts})
		tc.reps = append(tc.reps, &Replica{
			Fetcher: &Fetcher{BaseURL: lts.URL, Dir: rdir},
			OnSwap:  rsrv.SetExplorer,
			Status:  rsrv.SetSyncState,
			Logf:    t.Logf,
		})
		shards[i] = []string{lts.URL, rts.URL}
	}

	world, err := ncexplorer.NewQueryWorld("tiny", 0)
	if err != nil {
		t.Fatal(err)
	}
	tc.world = world
	tc.router = &Router{World: world, Shards: shards, Logf: t.Logf}
	tc.rts = httptest.NewServer(tc.router.Handler())
	t.Cleanup(tc.rts.Close)

	// First statistics exchange makes every shard score corpus-globally,
	// then the replicas catch up to the post-exchange snapshots.
	if err := tc.router.SyncStats(ctx); err != nil {
		t.Fatal(err)
	}
	tc.catchUp()
	return tc
}

// catchUp drives every replica through one synchronous catch-up step.
func (tc *testCluster) catchUp() {
	tc.t.Helper()
	for i, rep := range tc.reps {
		if _, err := rep.SyncOnce(tc.ctx); err != nil {
			tc.t.Fatalf("replica %d catch-up: %v", i, err)
		}
	}
}

// ingest commits one article batch to a shard leader and the
// monolithic reference, then restores the cluster invariants the
// router maintains in production: statistics exchanged, replicas
// caught up.
func (tc *testCluster) ingest(target int, seed uint64, n int) {
	tc.t.Helper()
	batch, err := tc.monoX.SampleArticles(seed, n)
	if err != nil {
		tc.t.Fatal(err)
	}
	res, err := tc.leaders[target].x.Ingest(tc.ctx, batch)
	if err != nil {
		tc.t.Fatal(err)
	}
	// The replicas below ship the leader's ON-DISK manifest, and the
	// checkpoint writer is asynchronous: wait for the batch's durability
	// barrier (as a polling replica effectively does in production)
	// before catching them up.
	tc.leaders[target].x.WaitDurable(res.PersistSeq)
	if _, err := tc.monoX.Ingest(tc.ctx, batch); err != nil {
		tc.t.Fatal(err)
	}
	if err := tc.router.SyncStats(tc.ctx); err != nil {
		tc.t.Fatal(err)
	}
	tc.catchUp()
}

// postJSON sends one query and returns (status, body).
func postJSON(t testing.TB, base, path string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// queryReq is the public /v2 query body.
type queryReq struct {
	Concepts []string `json:"concepts"`
	K        int      `json:"k,omitempty"`
	Offset   int      `json:"offset,omitempty"`
	Sources  []string `json:"sources,omitempty"`
	MinScore float64  `json:"min_score,omitempty"`
	Explain  bool     `json:"explain,omitempty"`
}

// checkEquivalence compares router and monolithic answers — status and
// raw bytes — across the query grid, including requests that must fail
// (typed error envelopes are part of the byte-identity contract).
func (tc *testCluster) checkEquivalence(stage string) {
	tc.t.Helper()
	var queries [][]string
	for _, topic := range tc.world.EvaluationTopics() {
		queries = append(queries, []string{topic[0]}, []string{topic[0], topic[1]})
	}
	var reqs []queryReq
	for _, concepts := range queries {
		for _, k := range []int{1, 3, 8} {
			for _, offset := range []int{0, 2} {
				for _, minScore := range []float64{0, 0.05} {
					req := queryReq{
						Concepts: concepts, K: k, Offset: offset,
						MinScore: minScore, Explain: k == 3,
					}
					if k == 8 && offset == 0 {
						req.Sources = []string{"reuters", "nyt"}
					}
					reqs = append(reqs, req)
				}
			}
		}
	}
	// Error-path probes: same envelope bytes required on both paths.
	reqs = append(reqs,
		queryReq{Concepts: queries[0], K: -3},
		queryReq{Concepts: queries[0], Offset: -1},
		queryReq{Concepts: queries[0], MinScore: 2},
		queryReq{Concepts: []string{"no-such-concept"}},
		queryReq{Concepts: queries[0], Sources: []string{"tabloid"}},
	)
	for _, op := range []string{"rollup", "drilldown"} {
		path := "/v2/query/" + op
		for _, req := range reqs {
			if op == "drilldown" {
				req.Sources = nil
			}
			wantStatus, want := postJSON(tc.t, tc.mono.URL, path, req)
			gotStatus, got := postJSON(tc.t, tc.rts.URL, path, req)
			if gotStatus != wantStatus || !bytes.Equal(got, want) {
				tc.t.Fatalf("%s: %s diverges for %+v:\n got  (%d): %s\n want (%d): %s",
					stage, path, req, gotStatus, got, wantStatus, want)
			}
		}
	}
	// Drill-down with a sources filter is rejected identically.
	req := queryReq{Concepts: queries[0], Sources: []string{"reuters"}}
	wantStatus, want := postJSON(tc.t, tc.mono.URL, "/v2/query/drilldown", req)
	gotStatus, got := postJSON(tc.t, tc.rts.URL, "/v2/query/drilldown", req)
	if gotStatus != wantStatus || !bytes.Equal(got, want) {
		tc.t.Fatalf("%s: drilldown sources rejection diverges:\n got  (%d): %s\n want (%d): %s",
			stage, gotStatus, got, wantStatus, want)
	}
}

// TestRouterMatchesMonolithic is the acceptance contract: a 2-shard
// cluster behind the router answers byte-identically to a monolithic
// server over the union corpus, for roll-up and drill-down across the
// K/offset/filter/explain grid, at the seed generation, after every
// batch of a randomized ingest schedule, and after background merges
// settle.
func TestRouterMatchesMonolithic(t *testing.T) {
	tc := newTestCluster(t, 2)
	tc.checkEquivalence("seed")

	// Pseudo-random schedule: alternating targets, growing batches.
	targets := []int{1, 0, 0, 1}
	for i, target := range targets {
		tc.ingest(target, 9500+uint64(i), 4+i)
		tc.checkEquivalence(fmt.Sprintf("batch %d (shard %d)", i, target))
	}

	// Let the aggressive shard merge policies reorganise segments, ship
	// the reorganised snapshots, and re-check: merges change files
	// without changing answers or generations.
	for _, l := range tc.leaders {
		l.x.Quiesce()
	}
	tc.monoX.Quiesce()
	tc.catchUp()
	tc.checkEquivalence("after merges")
}

// TestRouterTopicsMatchesMonolithic pins the graph-only endpoint the
// router answers locally from its QueryWorld.
func TestRouterTopicsMatchesMonolithic(t *testing.T) {
	tc := newTestCluster(t, 2)
	for _, path := range []string{"/v1/topics"} {
		want := getBody(t, tc.mono.URL+path)
		got := getBody(t, tc.rts.URL+path)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s diverges:\n got:  %s\n want: %s", path, got, want)
		}
	}
	// Keywords proxy: the router forwards to any live replica; topic
	// keywords are deterministic graph+connectivity data, so the bytes
	// must match the monolithic answer too.
	topics := tc.world.EvaluationTopics()
	path := "/v1/keywords/" + strings.ReplaceAll(topics[0][0], " ", "%20")
	want := getBody(t, tc.mono.URL+path)
	got := getBody(t, tc.rts.URL+path)
	if !bytes.Equal(got, want) {
		t.Fatalf("%s diverges:\n got:  %s\n want: %s", path, got, want)
	}
}

func getBody(t testing.TB, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	return data
}
