// Package cluster is the multi-node serving layer: segment shipping
// from leaders to replicas (ship.go), the replica catch-up loop
// (replica.go), and the exact scatter-gather query router (router.go).
//
// The replication unit is the segio snapshot. A leader checkpoints
// every commit into its data directory — immutable, content-addressed
// segment files under an atomically replaced MANIFEST — and serves
// that directory over two internal endpoints. A replica polls the
// manifest, fetches only the files it has never seen (content
// addressing makes "never seen" a pure name check), verifies every
// byte against the checksums the names and manifest pin, writes its
// own MANIFEST last, and warm-opens the result exactly as a restart
// would. Catch-up cost is therefore proportional to what changed, not
// to corpus size, and a half-fetched store is never openable — the
// manifest only lands after everything it references.
package cluster

import (
	"context"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"ncexplorer/internal/segio"
)

// ShipCounters is a point-in-time snapshot of a Fetcher's activity.
type ShipCounters struct {
	ManifestPolls   int64 `json:"manifest_polls"`
	SegmentsFetched int64 `json:"segments_fetched"`
	SegmentsReused  int64 `json:"segments_reused"`
	BytesShipped    int64 `json:"bytes_shipped"`
}

// Fetcher mirrors a leader's snapshot directory into a local one.
// Safe for use by one syncing goroutine; the counters may be read
// concurrently.
type Fetcher struct {
	// BaseURL is the leader's address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Dir is the local snapshot directory (created if needed).
	Dir string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client

	manifestPolls   atomic.Int64
	segmentsFetched atomic.Int64
	segmentsReused  atomic.Int64
	bytesShipped    atomic.Int64
}

// Counters snapshots the fetcher's shipping counters.
func (f *Fetcher) Counters() ShipCounters {
	return ShipCounters{
		ManifestPolls:   f.manifestPolls.Load(),
		SegmentsFetched: f.segmentsFetched.Load(),
		SegmentsReused:  f.segmentsReused.Load(),
		BytesShipped:    f.bytesShipped.Load(),
	}
}

func (f *Fetcher) client() *http.Client {
	if f.Client != nil {
		return f.Client
	}
	return http.DefaultClient
}

// Sync brings Dir up to the leader's current snapshot. It returns the
// leader manifest and whether the local store changed (false means the
// local manifest already described the identical snapshot). On any
// error the local directory still holds its previous complete
// snapshot: the new manifest is written only after every referenced
// file is verified on disk.
func (f *Fetcher) Sync(ctx context.Context) (*segio.Manifest, bool, error) {
	f.manifestPolls.Add(1)
	raw, err := f.get(ctx, "/internal/manifest", "")
	if err != nil {
		return nil, false, err
	}
	m, err := segio.ParseManifest(raw)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: leader manifest: %w", err)
	}
	if err := os.MkdirAll(f.Dir, 0o755); err != nil {
		return nil, false, err
	}
	if local, err := segio.ReadManifest(f.Dir); err == nil && sameSnapshot(local, m) {
		return m, false, nil
	}
	for _, ref := range m.Segments {
		if err := f.fetchFile(ctx, ref.File, ref.CRC); err != nil {
			return nil, false, err
		}
	}
	if m.ConnFile != "" {
		if err := f.fetchFile(ctx, m.ConnFile, contentHash(m.ConnFile)); err != nil {
			return nil, false, err
		}
	}
	if m.WatchFile != "" {
		if err := f.fetchFile(ctx, m.WatchFile, contentHash(m.WatchFile)); err != nil {
			return nil, false, err
		}
	}
	// Every referenced file is in place and verified; one directory
	// fsync makes all their renames durable before the manifest —
	// the atomic commit point — is published.
	if err := segio.SyncDir(f.Dir); err != nil {
		return nil, false, err
	}
	if err := segio.WriteFileAtomic(f.Dir, segio.ManifestName, raw); err != nil {
		return nil, false, err
	}
	segio.CollectGarbage(f.Dir, m)
	return m, true, nil
}

// sameSnapshot reports whether two manifests describe the identical
// snapshot. Generation alone is not enough: background segment merges
// reorganise files without advancing the generation.
func sameSnapshot(a, b *segio.Manifest) bool {
	if a.Generation != b.Generation || len(a.Segments) != len(b.Segments) ||
		a.ConnFile != b.ConnFile || a.WatchFile != b.WatchFile {
		return false
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			return false
		}
	}
	return true
}

// contentHash extracts the checksum a content-addressed auxiliary file
// name pins: conn files embed a CRC32, watch files an FNV-1a sum. The
// returned value is what checksumFor must reproduce over the fetched
// bytes.
func contentHash(name string) uint32 {
	base := strings.TrimSuffix(strings.TrimSuffix(name, segio.ConnExt), segio.WatchExt)
	if i := strings.LastIndexByte(base, '-'); i >= 0 {
		if v, err := strconv.ParseUint(base[i+1:], 16, 32); err == nil {
			return uint32(v)
		}
	}
	return 0
}

// checksumFor computes the checksum a file kind's name scheme uses.
func checksumFor(name string, data []byte) uint32 {
	if strings.HasSuffix(name, segio.WatchExt) {
		h := fnv.New32a()
		h.Write(data)
		return h.Sum32()
	}
	return crc32.ChecksumIEEE(data)
}

// fetchFile ensures name exists in Dir with the pinned checksum,
// fetching it from the leader if absent. Files are immutable and
// content-addressed, so an existing file is reused without a byte
// moving (SegmentsReused). A partial download persists as name+".part"
// and resumes with a Range request on the next attempt.
func (f *Fetcher) fetchFile(ctx context.Context, name string, want uint32) error {
	path := filepath.Join(f.Dir, name)
	if _, err := os.Stat(path); err == nil {
		f.segmentsReused.Add(1)
		return nil
	}
	part := path + ".part"
	var have []byte
	if data, err := os.ReadFile(part); err == nil {
		have = data
	}
	body, resumed, err := f.getFile(ctx, "/internal/segments/"+name, int64(len(have)))
	if err != nil {
		return err
	}
	if resumed && len(have) > 0 {
		body = append(have, body...)
	}
	if sum := checksumFor(name, body); sum != want {
		os.Remove(part)
		return fmt.Errorf("cluster: fetched %s: checksum %08x does not match expected %08x", name, sum, want)
	}
	f.segmentsFetched.Add(1)
	// Deferred dirsync: Sync's manifest publish syncs the directory once
	// for every file fetched in the round.
	if err := segio.WriteFileDeferSync(f.Dir, name, body); err != nil {
		return err
	}
	os.Remove(part)
	return nil
}

// get issues one GET and returns the full body (200 only).
func (f *Fetcher) get(ctx context.Context, path, rangeHeader string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	if rangeHeader != "" {
		req.Header.Set("Range", rangeHeader)
	}
	resp, err := f.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: GET %s: %s", path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// getFile fetches a file, asking the leader to resume from `from`
// bytes when a partial download exists. Returns the body and whether
// the server honoured the resume (206) — a 200 means it sent the whole
// file and the partial prefix must be discarded.
func (f *Fetcher) getFile(ctx context.Context, path string, from int64) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.BaseURL+path, nil)
	if err != nil {
		return nil, false, err
	}
	if from > 0 {
		req.Header.Set("Range", "bytes="+strconv.FormatInt(from, 10)+"-")
	}
	resp, err := f.client().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusPartialContent:
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, false, fmt.Errorf("cluster: GET %s: %s", path, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		// Keep what arrived so the next attempt resumes instead of
		// refetching; the checksum gate makes a stale prefix harmless.
		if len(body) > 0 {
			all := body
			if resp.StatusCode == http.StatusPartialContent {
				prefix, _ := os.ReadFile(filepath.Join(f.Dir, filepath.Base(path)) + ".part")
				all = append(append([]byte(nil), prefix...), body...)
			}
			os.WriteFile(filepath.Join(f.Dir, filepath.Base(path))+".part", all, 0o644)
		}
		return nil, false, err
	}
	f.bytesShipped.Add(int64(len(body)))
	return body, resp.StatusCode == http.StatusPartialContent, nil
}
