package cluster

// Failure-mode contracts: what the router answers when shards are
// down, hung, or mid-catch-up, and what the shipping layer does on a
// replica restart. All typed, all pinned.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ncexplorer"
	"ncexplorer/internal/server"
)

// errEnvelope decodes the /v2 error body.
type errEnvelope struct {
	Error struct {
		Code    string         `json:"code"`
		Message string         `json:"message"`
		Details map[string]any `json:"details"`
	} `json:"error"`
}

func decodeEnvelope(t *testing.T, body []byte) errEnvelope {
	t.Helper()
	var env errEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("not an error envelope: %v: %s", err, body)
	}
	return env
}

// routerOver builds a router over explicit replica lists, reusing the
// harness world.
func routerOver(t *testing.T, tc *testCluster, timeout time.Duration, shards ...[]string) *httptest.Server {
	t.Helper()
	rt := &Router{World: tc.world, Shards: shards, Timeout: timeout, Logf: t.Logf}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRouterFailureModes(t *testing.T) {
	tc := newTestCluster(t, 2)
	shard0 := tc.router.Shards[0]
	rollup := func(base string, path string) (int, []byte) {
		return postJSON(t, base, path, queryReq{Concepts: []string{tc.world.EvaluationTopics()[0][0]}, K: 5})
	}

	t.Run("shard down is typed shard_unavailable", func(t *testing.T) {
		// Shard 1's replicas all point at a closed port.
		ts := routerOver(t, tc, 2*time.Second, shard0, []string{"http://127.0.0.1:1"})
		status, body := rollup(ts.URL, "/v2/query/rollup")
		if status != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503: %s", status, body)
		}
		env := decodeEnvelope(t, body)
		if env.Error.Code != string(ncexplorer.CodeShardUnavailable) {
			t.Fatalf("code = %q, want shard_unavailable: %s", env.Error.Code, body)
		}
		if shard, ok := env.Error.Details["shard"].(float64); !ok || int(shard) != 1 {
			t.Fatalf("details.shard = %v, want 1", env.Error.Details["shard"])
		}
	})

	t.Run("hung shard is typed deadline_exceeded", func(t *testing.T) {
		hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
		t.Cleanup(hung.Close)
		ts := routerOver(t, tc, 100*time.Millisecond, shard0, []string{hung.URL})
		status, body := rollup(ts.URL, "/v2/query/drilldown")
		if status != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504: %s", status, body)
		}
		env := decodeEnvelope(t, body)
		if env.Error.Code != string(ncexplorer.CodeDeadlineExceeded) {
			t.Fatalf("code = %q, want deadline_exceeded: %s", env.Error.Code, body)
		}
	})

	t.Run("partial=true merges the answering shards", func(t *testing.T) {
		ts := routerOver(t, tc, 2*time.Second, shard0, []string{"http://127.0.0.1:1"})
		// Without the opt-in: refused.
		status, _ := rollup(ts.URL, "/v2/query/rollup")
		if status != http.StatusServiceUnavailable {
			t.Fatalf("non-partial status = %d, want 503", status)
		}
		// With it: the live shard's contribution, marked partial.
		status, body := rollup(ts.URL, "/v2/query/rollup?partial=true")
		if status != http.StatusOK {
			t.Fatalf("partial status = %d, want 200: %s", status, body)
		}
		var res struct {
			Partial    bool   `json:"partial"`
			Generation uint64 `json:"generation"`
			Total      int    `json:"total"`
		}
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			t.Fatalf("partial flag missing: %s", body)
		}
		if res.Generation == 0 {
			t.Fatalf("partial answer carries no generation: %s", body)
		}
		// And a full (non-partial) success must not carry the field at
		// all — byte-identity with the monolithic encoding depends on it.
		_, full := rollup(tc.rts.URL, "/v2/query/rollup?partial=true")
		if bytes.Contains(full, []byte(`"partial"`)) {
			t.Fatalf("healthy cluster answer leaks the partial marker: %s", full)
		}
	})

	t.Run("dead replica falls back to the next", func(t *testing.T) {
		// The dead URL sits last, so the router tries it first and must
		// transparently fall back to the live leader.
		ts := routerOver(t, tc, 2*time.Second,
			[]string{shard0[0], "http://127.0.0.1:1"}, tc.router.Shards[1])
		status, body := rollup(ts.URL, "/v2/query/rollup")
		if status != http.StatusOK {
			t.Fatalf("status = %d, want 200: %s", status, body)
		}
		_, want := rollup(tc.rts.URL, "/v2/query/rollup")
		if !bytes.Equal(body, want) {
			t.Fatalf("failover answer diverges:\n got:  %s\n want: %s", body, want)
		}
	})

	t.Run("syncing replica is excluded by readiness", func(t *testing.T) {
		// A replica mid-catch-up answers 503 syncing everywhere; the
		// router must skip it and use the leader.
		syncing := server.New(nil, server.Options{EnableCluster: true})
		syncing.SetSyncState(3, 9, true)
		sts := httptest.NewServer(syncing.Handler())
		t.Cleanup(sts.Close)
		ts := routerOver(t, tc, 2*time.Second,
			[]string{shard0[0], sts.URL}, tc.router.Shards[1])
		status, body := rollup(ts.URL, "/v2/query/rollup")
		if status != http.StatusOK {
			t.Fatalf("status = %d, want 200: %s", status, body)
		}
		_, want := rollup(tc.rts.URL, "/v2/query/rollup")
		if !bytes.Equal(body, want) {
			t.Fatalf("answer with syncing replica diverges:\n got:  %s\n want: %s", body, want)
		}
	})
}

// TestReplicaRestartFetchesOnlyMissingSegments pins the shipping
// economics: a replica that restarts with its mirror intact re-fetches
// nothing it already holds — catch-up cost is proportional to what
// changed since, not to corpus size.
func TestReplicaRestartFetchesOnlyMissingSegments(t *testing.T) {
	ctx := context.Background()
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny", MaxSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	x.CheckpointTo(dir)
	srv := httptest.NewServer(server.New(x, server.Options{ClusterDataDir: dir}).Handler())
	defer srv.Close()

	rdir := t.TempDir()
	first := &Fetcher{BaseURL: srv.URL, Dir: rdir}
	if _, changed, err := first.Sync(ctx); err != nil || !changed {
		t.Fatalf("initial sync: changed=%v err=%v", changed, err)
	}
	c1 := first.Counters()
	if c1.SegmentsFetched == 0 || c1.BytesShipped == 0 {
		t.Fatalf("initial sync shipped nothing: %+v", c1)
	}

	// The leader commits one more batch: exactly one new segment (plus
	// possibly a rewritten auxiliary file) appears.
	batch, err := x.SampleArticles(7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Ingest(ctx, batch); err != nil {
		t.Fatal(err)
	}
	x.Quiesce() // the checkpoint lands asynchronously; replicas ship durable state

	// "Restart": a fresh fetcher over the surviving mirror. It must ship
	// only the delta.
	second := &Fetcher{BaseURL: srv.URL, Dir: rdir}
	m, changed, err := second.Sync(ctx)
	if err != nil || !changed {
		t.Fatalf("post-restart sync: changed=%v err=%v", changed, err)
	}
	c2 := second.Counters()
	if c2.SegmentsReused == 0 {
		t.Fatalf("restarted replica re-fetched everything: %+v", c2)
	}
	if c2.SegmentsFetched >= c1.SegmentsFetched {
		t.Fatalf("restarted replica fetched %d files, initial sync fetched %d — not a delta",
			c2.SegmentsFetched, c1.SegmentsFetched)
	}

	// The mirror must open at the leader's generation.
	y, err := ncexplorer.Open(rdir, ncexplorer.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if y.Generation() != x.Generation() || y.Generation() != m.Generation {
		t.Fatalf("mirror generation %d, leader %d, manifest %d",
			y.Generation(), x.Generation(), m.Generation)
	}
	if y.NumArticles() != x.NumArticles() {
		t.Fatalf("mirror holds %d articles, leader %d", y.NumArticles(), x.NumArticles())
	}

	// An unchanged leader is a no-op poll: nothing ships.
	third := &Fetcher{BaseURL: srv.URL, Dir: rdir}
	if _, changed, err := third.Sync(ctx); err != nil || changed {
		t.Fatalf("idle sync: changed=%v err=%v", changed, err)
	}
	if c3 := third.Counters(); c3.SegmentsFetched != 0 || c3.BytesShipped != 0 {
		t.Fatalf("idle sync shipped data: %+v", c3)
	}
}

// TestReplicaReadinessGate pins the 503 syncing body shape and the
// transition to serving after the first catch-up.
func TestReplicaReadinessGate(t *testing.T) {
	ctx := context.Background()
	x, err := ncexplorer.New(ncexplorer.Config{Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := x.Save(dir); err != nil {
		t.Fatal(err)
	}
	leader := httptest.NewServer(server.New(x, server.Options{ClusterDataDir: dir}).Handler())
	defer leader.Close()

	rsrv := server.New(nil, server.Options{})
	rts := httptest.NewServer(rsrv.Handler())
	defer rts.Close()

	resp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-catch-up healthz = %d, want 503: %s", resp.StatusCode, body)
	}
	var st struct {
		State      string `json:"state"`
		Generation uint64 `json:"generation"`
		Target     uint64 `json:"target"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.State != "syncing" {
		t.Fatalf("syncing body = %s (err %v)", body, err)
	}

	rep := &Replica{
		Fetcher: &Fetcher{BaseURL: leader.URL, Dir: t.TempDir()},
		OnSwap:  rsrv.SetExplorer,
		Status:  rsrv.SetSyncState,
		Logf:    t.Logf,
	}
	if swapped, err := rep.SyncOnce(ctx); err != nil || !swapped {
		t.Fatalf("catch-up: swapped=%v err=%v", swapped, err)
	}
	resp, err = http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-catch-up healthz = %d: %s", resp.StatusCode, body)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
