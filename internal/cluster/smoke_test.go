package cluster

// Multi-process smoke test: real binaries, real ports, real polling
// loops — the closest thing to a deployment the test suite gets. One
// leader, one replica catching up over HTTP, one router in front;
// queries through the router must answer byte-identically to the
// leader, before and after a live ingest. Skipped with -short.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// freePort grabs an ephemeral port and releases it for the child
// process to bind. Mildly racy by nature; fine for a smoke test.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// startProc launches one binary and tees its output into the test log.
func startProc(t *testing.T, name string, args ...string) {
	t.Helper()
	cmd := exec.Command(name, args...)
	out, err := os.CreateTemp(t.TempDir(), "log-*")
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			out.Seek(0, io.SeekStart)
			logData, _ := io.ReadAll(out)
			t.Logf("%s output:\n%s", filepath.Base(name), logData)
		}
		out.Close()
	})
}

// waitOK polls url until it answers 200 or the deadline passes.
func waitOK(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s not healthy within %s", url, timeout)
}

func TestMultiProcessClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped with -short")
	}
	binDir := t.TempDir()
	ncserver := filepath.Join(binDir, "ncserver")
	ncrouter := filepath.Join(binDir, "ncrouter")
	for bin, pkg := range map[string]string{ncserver: "./cmd/ncserver", ncrouter: "./cmd/ncrouter"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	leaderPort, replicaPort, routerPort := freePort(t), freePort(t), freePort(t)
	leaderURL := fmt.Sprintf("http://127.0.0.1:%d", leaderPort)
	replicaURL := fmt.Sprintf("http://127.0.0.1:%d", replicaPort)
	routerURL := fmt.Sprintf("http://127.0.0.1:%d", routerPort)

	startProc(t, ncserver,
		"-addr", fmt.Sprintf("127.0.0.1:%d", leaderPort),
		"-scale", "tiny", "-role", "leader", "-ingest",
		"-data-dir", t.TempDir())
	waitOK(t, leaderURL+"/healthz", 90*time.Second)

	startProc(t, ncserver,
		"-addr", fmt.Sprintf("127.0.0.1:%d", replicaPort),
		"-role", "replica", "-peer", leaderURL,
		"-sync-interval", "200ms",
		"-data-dir", t.TempDir())
	startProc(t, ncrouter,
		"-addr", fmt.Sprintf("127.0.0.1:%d", routerPort),
		"-shard", leaderURL+","+replicaURL,
		"-sync-interval", "500ms")
	// The replica answers 503 syncing until its first catch-up lands.
	waitOK(t, replicaURL+"/healthz", 60*time.Second)
	waitOK(t, routerURL+"/healthz", 30*time.Second)

	// A topic to query, from the router's own graph.
	var topics struct {
		Topics []struct {
			Concept string `json:"concept"`
		} `json:"topics"`
	}
	if err := json.Unmarshal(getBody(t, routerURL+"/v1/topics"), &topics); err != nil {
		t.Fatal(err)
	}
	if len(topics.Topics) == 0 {
		t.Fatal("router reports no topics")
	}
	query := queryReq{Concepts: []string{topics.Topics[0].Concept}, K: 5}

	mustAgree := func(stage string) []byte {
		t.Helper()
		wantStatus, want := postJSON(t, leaderURL, "/v2/query/rollup", query)
		gotStatus, got := postJSON(t, routerURL, "/v2/query/rollup", query)
		if wantStatus != http.StatusOK || gotStatus != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("%s: router (%d) and leader (%d) disagree:\n got:  %s\n want: %s",
				stage, gotStatus, wantStatus, got, want)
		}
		return got
	}
	before := mustAgree("seed")

	// Live ingest through the leader; the replica must catch up and the
	// router must converge on the new generation's answer.
	ingest := map[string]any{"articles": []map[string]string{
		{"source": "reuters", "title": "smoke one", "body": "first smoke article body"},
		{"source": "nyt", "title": "smoke two", "body": "second smoke article body"},
	}}
	status, body := postJSON(t, leaderURL, "/v2/ingest", ingest)
	if status != http.StatusOK {
		t.Fatalf("ingest = %d: %s", status, body)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		wantStatus, want := postJSON(t, leaderURL, "/v2/query/rollup", query)
		gotStatus, got := postJSON(t, routerURL, "/v2/query/rollup", query)
		if wantStatus == http.StatusOK && gotStatus == http.StatusOK &&
			bytes.Equal(got, want) && !bytes.Equal(got, before) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never converged on the post-ingest answer:\n got:  %s\n want: %s", got, want)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
