package cluster

// The scatter-gather query router: the public /v2 query surface over a
// sharded corpus, answering byte-identically to a monolithic server.
//
// Exactness rests on three pieces. (1) Shards score corpus-globally:
// the router runs the term-statistics exchange (SyncStats) that folds
// every shard's document frequencies into every other's IDF, so a
// per-document score is the same number everywhere. (2) Merges replay
// monolithic arithmetic: roll-up pages merge under the shards' own
// (score desc, doc asc) total order; drill-down ships raw accumulation
// rows and replays the float-addition sequence in ascending global
// document order (core.MergeDrillDown). (3) A generation barrier
// refuses torn reads: every shard answer carries the generation it was
// served from, and the router only merges a set of answers at one
// common generation — on skew it re-syncs statistics and refetches,
// and past its retry budget it returns a typed error rather than an
// almost-right page. Within one shard's replica set, each request is
// answered wholly by one replica (generation pinning per request);
// across shards the barrier enforces one common generation per merge.
//
// Failure modes are typed, matching the /v2 error envelope: a shard
// whose replicas are all down or syncing yields shard_unavailable
// (503), a shard that exhausts the per-shard timeout budget yields
// deadline_exceeded (504). Callers that prefer availability over
// completeness opt in with ?partial=true, which merges the shards that
// did answer and marks the response "partial": true.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ncexplorer"
	"ncexplorer/internal/core"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/server"
	"ncexplorer/internal/topk"
)

// Router fans public queries out across corpus shards and merges the
// answers exactly. Shards[i] lists shard i's replica base URLs, the
// leader first; reads prefer later entries (replicas) and fall back
// toward the leader, writes (the stats exchange) go to the leader
// only.
type Router struct {
	// World resolves and renders concept names — the same deterministic
	// graph every shard was built on.
	World *ncexplorer.QueryWorld
	// Shards is the cluster layout: one replica-URL list per corpus
	// shard, leader first.
	Shards [][]string
	// Client is the HTTP client for shard calls (nil: http.DefaultClient).
	Client *http.Client
	// Timeout bounds each shard's whole answer — all replica attempts
	// included (default 10s).
	Timeout time.Duration
	// MaxK caps k like the public server does (default 100).
	MaxK int
	// SkewRetries bounds generation-barrier retries, each preceded by a
	// stats re-sync (default 3).
	SkewRetries int
	// Logf, when set, receives router diagnostics.
	Logf func(format string, args ...any)

	mux     *http.ServeMux
	muxOnce sync.Once
	started time.Time

	total      atomic.Int64
	errCount   atomic.Int64
	statsSyncs atomic.Int64
	generation atomic.Uint64
}

func (rt *Router) logf(format string, args ...any) {
	if rt.Logf != nil {
		rt.Logf(format, args...)
	}
}

func (rt *Router) client() *http.Client {
	if rt.Client != nil {
		return rt.Client
	}
	return http.DefaultClient
}

func (rt *Router) timeout() time.Duration {
	if rt.Timeout > 0 {
		return rt.Timeout
	}
	return 10 * time.Second
}

func (rt *Router) maxK() int {
	if rt.MaxK > 0 {
		return rt.MaxK
	}
	return 100
}

func (rt *Router) skewRetries() int {
	if rt.SkewRetries > 0 {
		return rt.SkewRetries
	}
	return 3
}

// Handler returns the router's HTTP surface: the public /v2 query
// endpoints plus the graph-only /v1 reads a router can answer (topics
// locally, keywords proxied), and its own health/stats endpoints.
func (rt *Router) Handler() http.Handler {
	rt.muxOnce.Do(func() {
		rt.started = time.Now()
		rt.mux = http.NewServeMux()
		rt.mux.HandleFunc("POST /v2/query/rollup", rt.handleQuery("rollup"))
		rt.mux.HandleFunc("POST /v2/query/drilldown", rt.handleQuery("drilldown"))
		rt.mux.HandleFunc("GET /v1/topics", rt.handleTopics)
		rt.mux.HandleFunc("GET /v1/keywords/{concept}", rt.handleKeywords)
		rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
		rt.mux.HandleFunc("GET /statsz", rt.handleStatsz)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.total.Add(1)
		rt.mux.ServeHTTP(w, r)
	})
}

func (rt *Router) writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		rt.writeErr(w, err)
		return
	}
	rt.writeBody(w, status, body)
}

// writeErr renders any error as the shared /v2 envelope with the same
// status mapping the shard servers use, so router error responses are
// byte-identical to a monolithic server's for the same failure.
func (rt *Router) writeErr(w http.ResponseWriter, err error) {
	rt.errCount.Add(1)
	e, ok := ncexplorer.AsError(err)
	if !ok {
		e = &ncexplorer.Error{Code: ncexplorer.CodeInternal, Message: err.Error()}
	}
	rt.writeBody(w, server.StatusForCode(e.Code), server.MarshalErrorEnvelope(e.Code, e.Message, e.Details))
}

// queryBody mirrors the /v2 query request body.
type queryBody struct {
	Concepts []string              `json:"concepts"`
	K        int                   `json:"k"`
	Offset   int                   `json:"offset"`
	Sources  []string              `json:"sources"`
	MinScore float64               `json:"min_score"`
	Time     *ncexplorer.TimeRange `json:"time_range"`
	GroupBy  string                `json:"group_by"`
	Explain  bool                  `json:"explain"`
}

// handleQuery decodes, validates, and normalizes exactly like the
// monolithic server (k default 10, clamp MaxK, facade-typed validation
// errors), then scatters.
func (rt *Router) handleQuery(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var q queryBody
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&q); err != nil && !errors.Is(err, io.EOF) {
			rt.writeErr(w, &ncexplorer.Error{Code: ncexplorer.CodeInvalidArgument,
				Message: fmt.Sprintf("malformed request body: %v", err)})
			return
		}
		if q.K == 0 {
			q.K = 10
		}
		if q.K > rt.maxK() {
			q.K = rt.maxK()
		}
		// Validation order matches the monolithic path exactly — the
		// server rejects a drill-down sources filter before the facade
		// validates the page shape, while a roll-up validates page shape,
		// then sources, then concepts — so a request with several defects
		// gets the same error either way.
		if op == "drilldown" && len(q.Sources) > 0 {
			rt.writeErr(w, &ncexplorer.Error{Code: ncexplorer.CodeInvalidArgument,
				Message: "drilldown does not accept a sources filter"})
			return
		}
		if op == "drilldown" && q.GroupBy != "" {
			rt.writeErr(w, &ncexplorer.Error{Code: ncexplorer.CodeInvalidArgument,
				Message: "drilldown does not accept group_by"})
			return
		}
		if err := ncexplorer.ValidatePage(q.K, q.Offset, q.MinScore); err != nil {
			rt.writeErr(w, err)
			return
		}
		if op == "rollup" {
			if err := ncexplorer.ValidateSources(q.Sources); err != nil {
				rt.writeErr(w, err)
				return
			}
		}
		if err := ncexplorer.ValidateTimeRange(q.Time); err != nil {
			rt.writeErr(w, err)
			return
		}
		if op == "rollup" {
			if err := ncexplorer.ValidateGroupBy(q.GroupBy); err != nil {
				rt.writeErr(w, err)
				return
			}
		}
		concepts := ncexplorer.CanonicalConcepts(q.Concepts)
		if _, err := rt.World.ResolveConcepts(concepts); err != nil {
			rt.writeErr(w, err)
			return
		}
		allowPartial := r.URL.Query().Get("partial") == "true"
		var (
			body []byte
			err  error
		)
		if op == "rollup" {
			body, _, err = rt.rollUp(r.Context(), concepts, q, allowPartial)
		} else {
			body, _, err = rt.drillDown(r.Context(), concepts, q, allowPartial)
		}
		if err != nil {
			rt.writeErr(w, err)
			return
		}
		rt.writeBody(w, http.StatusOK, body)
	}
}

// envelope decodes a shard's /v2-style error response.
type envelope struct {
	Error struct {
		Code    ncexplorer.ErrorCode `json:"code"`
		Message string               `json:"message"`
		Details map[string]any       `json:"details,omitempty"`
	} `json:"error"`
}

// shardUnavailable builds the typed error for a shard the router could
// not get an answer from.
func shardUnavailable(shard int, reason string) *ncexplorer.Error {
	return &ncexplorer.Error{
		Code:    ncexplorer.CodeShardUnavailable,
		Message: fmt.Sprintf("ncexplorer: shard %d unavailable: %s", shard, reason),
		Details: map[string]any{"shard": shard},
	}
}

// shardDeadline builds the typed error for a shard that exhausted the
// per-shard timeout budget.
func shardDeadline(shard int) *ncexplorer.Error {
	return &ncexplorer.Error{
		Code:    ncexplorer.CodeDeadlineExceeded,
		Message: fmt.Sprintf("ncexplorer: shard %d exceeded the query deadline", shard),
		Details: map[string]any{"shard": shard},
	}
}

// shardPost sends one scatter call to shard i, trying its replicas
// last-to-first (replicas before leader, so read traffic drains off
// the ingest path) under the shard's timeout budget. A replica that is
// down, refusing, or syncing (503) is skipped; a replica that answers
// an application error (4xx/5xx envelope) ends the attempt — the same
// request would fail identically everywhere. The JSON answer decodes
// into out.
func (rt *Router) shardPost(ctx context.Context, shard int, path string, reqBody, out any) error {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, rt.timeout())
	defer cancel()
	replicas := rt.Shards[shard]
	var lastErr error
	for i := len(replicas) - 1; i >= 0; i-- {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, replicas[i]+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client().Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Syncing or explicitly not ready: exclude this replica and
			// try the next one.
			lastErr = fmt.Errorf("replica %s not ready", replicas[i])
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var env envelope
			if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
				return &ncexplorer.Error{Code: env.Error.Code, Message: env.Error.Message, Details: env.Error.Details}
			}
			return fmt.Errorf("shard %d: %s: %s", shard, resp.Status, bytes.TrimSpace(body))
		}
		return json.Unmarshal(body, out)
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return shardDeadline(shard)
	}
	if lastErr != nil {
		return shardUnavailable(shard, lastErr.Error())
	}
	return shardUnavailable(shard, "no replicas configured")
}

// isAvailabilityError reports whether err means "this shard could not
// be reached in time" (down, syncing, or timed out) as opposed to a
// deterministic application error that would fail the same request on
// any replica.
func isAvailabilityError(err error) bool {
	e, typed := ncexplorer.AsError(err)
	if !typed {
		return false
	}
	return e.Code == ncexplorer.CodeShardUnavailable || e.Code == ncexplorer.CodeDeadlineExceeded
}

// scatter runs fn for every shard concurrently and reports which
// succeeded. A deterministic application error always fails the
// request. Availability errors fail it too unless the caller opted
// into partial results and at least one shard answered.
func (rt *Router) scatter(allowPartial bool, n int, fn func(shard int) error) ([]bool, bool, error) {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	ok := make([]bool, n)
	okCount := 0
	var availErr error
	for i, err := range errs {
		switch {
		case err == nil:
			ok[i] = true
			okCount++
		case !isAvailabilityError(err):
			return nil, false, err
		case availErr == nil:
			availErr = err
		}
	}
	if availErr == nil {
		return ok, false, nil
	}
	if !allowPartial || okCount == 0 {
		return nil, false, availErr
	}
	rt.logf("cluster: router serving partial results (%d/%d shards): %v", okCount, n, availErr)
	return ok, true, nil
}

// commonGeneration verifies the barrier: all participating generations
// equal. Returns the generation, or ok=false on skew.
func commonGeneration(gens []uint64, participating []bool) (uint64, bool) {
	var gen uint64
	first := true
	for i, g := range gens {
		if !participating[i] {
			continue
		}
		if first {
			gen, first = g, false
			continue
		}
		if g != gen {
			return 0, false
		}
	}
	return gen, true
}

// partialRollUpResult adds the opt-in partial marker. When false the
// field is omitted, keeping the body byte-identical to the monolithic
// RollUpResult encoding.
type partialRollUpResult struct {
	ncexplorer.RollUpResult
	Partial bool `json:"partial,omitempty"`
}

type partialDrillDownResult struct {
	ncexplorer.DrillDownResult
	Partial bool `json:"partial,omitempty"`
}

// cmpArticle is the roll-up ranking order over rendered articles —
// identical to the engine's (score desc, doc asc), with the article ID
// being the global document ID.
func cmpArticle(a, b ncexplorer.Article) int {
	switch {
	case a.Score > b.Score:
		return -1
	case a.Score < b.Score:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// rollUp scatters a roll-up, asking each shard for its local
// top-(k+offset) page, and merges under the shared total order.
func (rt *Router) rollUp(ctx context.Context, concepts []string, q queryBody, allowPartial bool) ([]byte, bool, error) {
	req := ncexplorer.RollUpRequest{
		Concepts: concepts, K: q.K + q.Offset, Offset: 0,
		Sources: q.Sources, MinScore: q.MinScore,
		Time: q.Time, GroupBy: q.GroupBy, Explain: q.Explain,
	}
	for attempt := 0; ; attempt++ {
		results := make([]ncexplorer.RollUpResult, len(rt.Shards))
		ok, partial, err := rt.scatter(allowPartial, len(rt.Shards), func(i int) error {
			return rt.shardPost(ctx, i, "/internal/query/rollup", req, &results[i])
		})
		if err != nil {
			return nil, false, err
		}
		gens := make([]uint64, len(results))
		for i := range results {
			gens[i] = results[i].Generation
		}
		gen, aligned := commonGeneration(gens, ok)
		if !aligned {
			if attempt < rt.skewRetries() {
				rt.logf("cluster: router roll-up generation skew, re-syncing (attempt %d)", attempt+1)
				rt.SyncStats(ctx)
				continue
			}
			return nil, false, shardUnavailable(firstSkewed(gens, ok), "generation skew past retry budget")
		}
		rt.generation.Store(gen)

		lists := make([][]ncexplorer.Article, 0, len(results))
		periodLists := make([][]ncexplorer.Period, 0, len(results))
		total := 0
		for i := range results {
			if !ok[i] {
				continue
			}
			total += results[i].Total
			if len(results[i].Articles) > 0 {
				lists = append(lists, results[i].Articles)
			}
			if len(results[i].Periods) > 0 {
				periodLists = append(periodLists, results[i].Periods)
			}
		}
		merged := topk.MergeSorted(lists, cmpArticle, q.K+q.Offset)
		if q.Offset < len(merged) {
			merged = merged[q.Offset:]
			if len(merged) > q.K {
				merged = merged[:q.K]
			}
		} else {
			merged = nil
		}
		articles := make([]ncexplorer.Article, 0, len(merged))
		articles = append(articles, merged...)
		res := partialRollUpResult{
			RollUpResult: ncexplorer.RollUpResult{
				Query: concepts, K: q.K, Offset: q.Offset,
				Total:      total,
				NextOffset: ncexplorer.NextPageOffset(q.Offset, len(articles), total),
				Generation: gen,
				Articles:   articles,
				// Shard buckets are per-period counts keyed by absolute
				// period starts, so the merge is associative: sum equal
				// periods, recompute trends over the merged histogram.
				Periods: ncexplorer.MergePeriods(q.GroupBy, periodLists),
			},
			Partial: partial,
		}
		body, err := json.Marshal(res)
		return body, partial, err
	}
}

// firstSkewed names a shard involved in a generation skew, for the
// error detail.
func firstSkewed(gens []uint64, ok []bool) int {
	var gen uint64
	first := -1
	for i := range gens {
		if !ok[i] {
			continue
		}
		if first < 0 {
			first, gen = i, gens[i]
			continue
		}
		if gens[i] != gen {
			return i
		}
	}
	return 0
}

// conceptsRequest mirrors the internal scatter request body.
type conceptsRequest struct {
	Concepts  []string              `json:"concepts"`
	Shortlist []kg.NodeID           `json:"shortlist,omitempty"`
	Time      *ncexplorer.TimeRange `json:"time_range,omitempty"`
}

// drillDown scatters a drill-down: phase one gathers each shard's raw
// accumulation rows, phase two (inside core.MergeDrillDown, via the
// fetchSets callback) gathers diversity sets for the merged shortlist;
// both phases must answer at one generation or the merge reports skew
// and the router re-syncs and retries.
func (rt *Router) drillDown(ctx context.Context, concepts []string, q queryBody, allowPartial bool) ([]byte, bool, error) {
	opts := core.DrillDownOptions{K: q.K, Offset: q.Offset, MinScore: q.MinScore}
	timeReq := q.Time
	for attempt := 0; ; attempt++ {
		parts := make([]core.DrillDownPartial, len(rt.Shards))
		ok, partial, err := rt.scatter(allowPartial, len(rt.Shards), func(i int) error {
			return rt.shardPost(ctx, i, "/internal/query/drilldown-partials",
				conceptsRequest{Concepts: concepts, Time: timeReq}, &parts[i])
		})
		if err != nil {
			return nil, false, err
		}
		gens := make([]uint64, len(parts))
		for i := range parts {
			gens[i] = parts[i].Generation
		}
		gen, aligned := commonGeneration(gens, ok)
		if !aligned {
			if attempt < rt.skewRetries() {
				rt.logf("cluster: router drill-down generation skew, re-syncing (attempt %d)", attempt+1)
				rt.SyncStats(ctx)
				continue
			}
			return nil, false, shardUnavailable(firstSkewed(gens, ok), "generation skew past retry budget")
		}

		participating := make([]core.DrillDownPartial, 0, len(parts))
		shardOf := make([]int, 0, len(parts))
		for i := range parts {
			if ok[i] {
				participating = append(participating, parts[i])
				shardOf = append(shardOf, i)
			}
		}
		fetchSets := func(short []kg.NodeID) ([][]kg.NodeID, error) {
			divs := make([]core.DiversityPartial, len(shardOf))
			var wg sync.WaitGroup
			errs := make([]error, len(shardOf))
			for j, shard := range shardOf {
				wg.Add(1)
				go func(j, shard int) {
					defer wg.Done()
					errs[j] = rt.shardPost(ctx, shard, "/internal/query/diversity",
						conceptsRequest{Concepts: concepts, Shortlist: short, Time: timeReq}, &divs[j])
				}(j, shard)
			}
			wg.Wait()
			sets := make([][]kg.NodeID, len(short))
			for j := range divs {
				if errs[j] != nil {
					return nil, errs[j]
				}
				// Phase-two answers must come from the same generation the
				// phase-one rows were read at, replica failover included.
				if divs[j].Generation != gen {
					return nil, core.ErrGenerationSkew
				}
				for si, set := range divs[j].Sets {
					sets[si] = append(sets[si], set...)
				}
			}
			return sets, nil
		}
		page, err := core.MergeDrillDown(rt.World.Graph(), opts, participating, fetchSets)
		if errors.Is(err, core.ErrGenerationSkew) {
			if attempt < rt.skewRetries() {
				rt.logf("cluster: router drill-down phase-2 skew, re-syncing (attempt %d)", attempt+1)
				rt.SyncStats(ctx)
				continue
			}
			return nil, false, shardUnavailable(0, "generation skew past retry budget")
		}
		if err != nil {
			return nil, false, err
		}
		rt.generation.Store(page.Generation)

		subs := make([]ncexplorer.SubtopicSuggestion, 0, len(page.Results))
		for _, s := range page.Results {
			sub := ncexplorer.SubtopicSuggestion{
				Concept:     rt.World.ConceptName(s.Concept),
				Score:       s.Score,
				MatchedDocs: s.MatchedDocs,
			}
			if q.Explain {
				sub.Coverage = s.Coverage
				sub.Specificity = s.Specificity
				sub.Diversity = s.Diversity
			}
			subs = append(subs, sub)
		}
		res := partialDrillDownResult{
			DrillDownResult: ncexplorer.DrillDownResult{
				Query: concepts, K: q.K, Offset: q.Offset,
				Total:       page.Total,
				NextOffset:  ncexplorer.NextPageOffset(q.Offset, len(subs), page.Total),
				Generation:  page.Generation,
				Suggestions: subs,
			},
			Partial: partial,
		}
		body, err := json.Marshal(res)
		return body, partial, err
	}
}

// handleTopics serves the evaluation topics from the router's own
// world — graph metadata, identical on every node.
func (rt *Router) handleTopics(w http.ResponseWriter, r *http.Request) {
	type topicResponse struct {
		Concept string `json:"concept"`
		Group   string `json:"group"`
	}
	topics := make([]topicResponse, 0, 6)
	for _, t := range rt.World.EvaluationTopics() {
		topics = append(topics, topicResponse{Concept: t[0], Group: t[1]})
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{"topics": topics})
}

// handleKeywords proxies to the first shard that answers: topic
// keywords derive from the graph and the deterministic connectivity
// estimates, so every shard returns the same list.
func (rt *Router) handleKeywords(w http.ResponseWriter, r *http.Request) {
	path := "/v1/keywords/" + r.PathValue("concept")
	if raw := r.URL.Query().Encode(); raw != "" {
		path += "?" + raw
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout())
	defer cancel()
	for _, replicas := range rt.Shards {
		for i := len(replicas) - 1; i >= 0; i-- {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, replicas[i]+path, nil)
			if err != nil {
				continue
			}
			resp, err := rt.client().Do(req)
			if err != nil {
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode == http.StatusServiceUnavailable {
				continue
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			w.Write(body)
			return
		}
	}
	rt.writeErr(w, shardUnavailable(0, "no replica answered the keywords proxy"))
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"role":           "router",
		"shards":         len(rt.Shards),
		"generation":     rt.generation.Load(),
		"uptime_seconds": time.Since(rt.started).Seconds(),
	})
}

func (rt *Router) handleStatsz(w http.ResponseWriter, r *http.Request) {
	type shardInfo struct {
		Replicas []string `json:"replicas"`
	}
	shards := make([]shardInfo, len(rt.Shards))
	for i, reps := range rt.Shards {
		shards[i] = shardInfo{Replicas: reps}
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"role":           "router",
		"shards":         shards,
		"generation":     rt.generation.Load(),
		"stats_syncs":    rt.statsSyncs.Load(),
		"requests":       map[string]int64{"total": rt.total.Load(), "errors": rt.errCount.Load()},
		"uptime_seconds": time.Since(rt.started).Seconds(),
	})
}

// shardStats mirrors the GET /internal/stats payload.
type shardStats struct {
	Shard      int             `json:"shard"`
	ShardCount int             `json:"shard_count"`
	Sharded    bool            `json:"sharded"`
	Generation uint64          `json:"generation"`
	Stats      core.ShardStats `json:"stats"`
}

// SyncStats runs the cross-leader term-statistics exchange: collect
// every leader's local statistics, fold each shard's peers into a
// remote summary, and post it back. Unchanged summaries are no-ops on
// the leader, so running this on a timer (and on barrier skew) is
// cheap in the steady state. After every leader accepts its summary,
// all shards report the same global generation and score with the same
// corpus-global IDF.
func (rt *Router) SyncStats(ctx context.Context) error {
	if len(rt.Shards) < 2 {
		// One shard already scores corpus-globally (it may not even be
		// built sharded), and has no peers to fold in.
		return nil
	}
	rt.statsSyncs.Add(1)
	stats := make([]shardStats, len(rt.Shards))
	for i, replicas := range rt.Shards {
		if len(replicas) == 0 {
			return shardUnavailable(i, "no replicas configured")
		}
		if err := rt.getJSON(ctx, replicas[0]+"/internal/stats", &stats[i]); err != nil {
			return err
		}
	}
	for i, replicas := range rt.Shards {
		remote := core.ShardStats{DF: make(map[string]int)}
		for j := range stats {
			if j == i {
				continue
			}
			remote.Docs += stats[j].Stats.Docs
			remote.TotalLen += stats[j].Stats.TotalLen
			remote.Batches += stats[j].Stats.Batches
			for term, df := range stats[j].Stats.DF {
				remote.DF[term] += df
			}
		}
		var ack struct {
			Generation uint64 `json:"generation"`
		}
		payload, err := json.Marshal(remote)
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			replicas[0]+"/internal/remote-stats", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client().Do(req)
		if err != nil {
			return err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return rerr
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster: shard %d remote-stats: %s: %s", i, resp.Status, bytes.TrimSpace(body))
		}
		if err := json.Unmarshal(body, &ack); err != nil {
			return err
		}
	}
	return nil
}

// RunStatsSync runs the exchange on a timer until ctx cancels —
// leaders that ingest independently drift apart between queries, and
// the timer bounds how stale one shard's view of the others' term
// statistics can get (the generation barrier converts residual drift
// into retries, never into wrong answers).
func (rt *Router) RunStatsSync(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if err := rt.SyncStats(ctx); err != nil && ctx.Err() == nil {
			rt.logf("cluster: stats sync: %v", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (rt *Router) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, out)
}
