package cluster

import (
	"context"
	"log"
	"sync/atomic"
	"time"

	"ncexplorer"
)

// Replica is the catch-up loop of a read replica: poll the leader's
// manifest, ship missing files, warm-open the new snapshot, and swap
// it into the serving layer atomically. Before the first successful
// open the replica reports itself syncing (routers exclude it); after
// that it keeps serving its current generation while newer ones ship,
// and each swap is a pointer store — readers never block.
type Replica struct {
	// Fetcher ships the leader's snapshot directory.
	Fetcher *Fetcher
	// Interval is the manifest poll cadence (default 500ms).
	Interval time.Duration
	// OpenOptions passes storage policy to each warm open.
	OpenOptions ncexplorer.OpenOptions
	// OnSwap publishes a freshly opened explorer to the serving layer
	// (typically server.SetExplorer).
	OnSwap func(x *ncexplorer.Explorer)
	// Status publishes catch-up state transitions (typically
	// server.SetSyncState): the serving generation, the leader
	// generation being chased, and whether the replica is still in its
	// initial catch-up.
	Status func(generation, target uint64, syncing bool)
	// Logf, when set, receives catch-up diagnostics.
	Logf func(format string, args ...any)

	generation atomic.Uint64
}

// Generation returns the snapshot generation the replica last opened
// (0 before the first successful catch-up).
func (r *Replica) Generation() uint64 { return r.generation.Load() }

func (r *Replica) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	} else {
		log.Printf(format, args...)
	}
}

func (r *Replica) status(gen, target uint64, syncing bool) {
	if r.Status != nil {
		r.Status(gen, target, syncing)
	}
}

// SyncOnce performs one catch-up step: fetch whatever the leader's
// current snapshot needs, and if the store changed (or nothing is
// serving yet), open and publish it. Returns whether a new explorer
// was published.
func (r *Replica) SyncOnce(ctx context.Context) (bool, error) {
	first := r.generation.Load() == 0
	if first {
		r.status(0, 0, true)
	}
	m, changed, err := r.Fetcher.Sync(ctx)
	if err != nil {
		return false, err
	}
	if first {
		r.status(0, m.Generation, true)
	}
	if !changed && !first {
		return false, nil
	}
	x, err := ncexplorer.Open(r.Fetcher.Dir, r.OpenOptions)
	if err != nil {
		return false, err
	}
	r.generation.Store(m.Generation)
	if r.OnSwap != nil {
		r.OnSwap(x)
	}
	r.status(m.Generation, m.Generation, false)
	return true, nil
}

// Run polls until ctx is cancelled. Fetch and open failures are
// logged and retried on the next tick — a replica that falls behind
// keeps serving its last good generation rather than dying.
func (r *Replica) Run(ctx context.Context) {
	interval := r.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if swapped, err := r.SyncOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			r.logf("cluster: replica sync: %v", err)
		} else if swapped {
			r.logf("cluster: replica serving generation %d", r.Generation())
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
