package corpus

import (
	"fmt"
	"strconv"
	"strings"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
	"ncexplorer/internal/xrand"
)

// Config controls corpus generation.
type Config struct {
	// Seed drives all randomness; equal seeds ⇒ identical corpora.
	Seed uint64
	// Docs is the article count per source. The ratios loosely follow
	// the paper's dataset (Reuters ≫ SeekingAlpha > NYT).
	Docs map[Source]int
	// DistractorRate is the fraction of market-wrap filler articles.
	DistractorRate float64
	// OOV is the per-sentence probability of weaving in an out-of-KG
	// surface form, per source. Higher OOV ⇒ lower linked-entity ratio;
	// rates are tuned so linking coverage lands near the paper's table
	// (reuters ≈ 51%, seekingalpha ≈ 64%, nyt ≈ 69%).
	OOV map[Source]float64
	// ClockEpoch is the scenario clock's start (Unix seconds, UTC): the
	// publication time of the first generated article. 0 selects the
	// default epoch. ClockStep bounds the seed-deterministic gap between
	// consecutive articles (seconds; gaps are drawn in [60, ClockStep]).
	// 0 selects the default step. The clock draws from its own random
	// stream, so changing it never changes article text or labels.
	ClockEpoch int64
	ClockStep  int
}

// Default scenario clock: articles start on a Monday morning and a
// ~30-minute mean gap spreads the default corpora over several weeks —
// enough days, weeks, and months for temporal roll-ups to be
// non-degenerate at every group_by granularity.
const (
	defaultClockEpoch = 1693814400 // 2023-09-04T08:00:00Z
	defaultClockStep  = 3600
)

// Tiny returns a unit-test-sized corpus configuration.
func Tiny() Config {
	return Config{
		Seed:           7,
		Docs:           map[Source]int{SeekingAlpha: 60, NYT: 36, Reuters: 130},
		DistractorRate: 0.12,
		OOV:            defaultOOV(),
	}
}

// Default returns the experiment-harness corpus configuration.
func Default() Config {
	return Config{
		Seed:           7,
		Docs:           map[Source]int{SeekingAlpha: 420, NYT: 240, Reuters: 1100},
		DistractorRate: 0.12,
		OOV:            defaultOOV(),
	}
}

func defaultOOV() map[Source]float64 {
	return map[Source]float64{SeekingAlpha: 0.30, NYT: 0.22, Reuters: 0.55}
}

// sentence-count ranges per source: SeekingAlpha posts are short analyst
// notes, NYT runs long-form, Reuters sits in between.
var sentenceRange = map[Source][2]int{
	SeekingAlpha: {4, 7},
	NYT:          {8, 13},
	Reuters:      {5, 9},
}

// Generate builds the synthetic corpus over the given knowledge graph.
func Generate(g *kg.Graph, meta *kggen.Meta, cfg Config) (*Corpus, error) {
	if cfg.Docs == nil {
		cfg.Docs = Tiny().Docs
	}
	if cfg.OOV == nil {
		cfg.OOV = defaultOOV()
	}
	if cfg.DistractorRate <= 0 {
		cfg.DistractorRate = 0.12
	}
	gen, err := newGenerator(g, meta, cfg)
	if err != nil {
		return nil, err
	}
	c := &Corpus{}
	for _, src := range Sources {
		for i := 0; i < cfg.Docs[src]; i++ {
			doc := gen.article(src)
			doc.ID = DocID(len(c.Docs))
			c.Docs = append(c.Docs, doc)
		}
	}
	return c, nil
}

// MustGenerate is Generate that panics on error; for tests and examples.
func MustGenerate(g *kg.Graph, meta *kggen.Meta, cfg Config) *Corpus {
	c, err := Generate(g, meta, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// GenerateBatch synthesises n additional articles over the same world
// — the "incoming news" for live-ingestion demos, tests, and
// benchmarks. The batch is drawn from its own generator seeded by
// seed, so it is deterministic per (world, cfg, seed, n) and
// independent of the corpus stream; sources rotate round-robin.
// Document IDs are provisional (0..n−1): the indexer assigns global
// IDs at ingest time.
// A batch is a stream prefix: GenerateBatch(…, seed, n) returns
// exactly what a NewStream(…, seed) would emit first, so callers can
// switch between batch and streaming generation without changing what
// any document contains.
func GenerateBatch(g *kg.Graph, meta *kggen.Meta, cfg Config, seed uint64, n int) ([]Document, error) {
	s, err := NewStream(g, meta, cfg, seed)
	if err != nil {
		return nil, err
	}
	return s.NextBatch(n), nil
}

type generator struct {
	g    *kg.Graph
	meta *kggen.Meta
	cfg  Config
	r    *xrand.Rand

	topics     []kg.NodeID                // story topics (weighted pool)
	evalTopic  map[kg.NodeID]*kggen.Topic // eval topics by concept
	popular    []kg.NodeID                // degree-weighted instance pool
	tradable   []kg.NodeID                // company-like instances (market wraps)
	categoryOf map[kg.NodeID]string       // memoised topic → template category
	closures   map[kg.NodeID][]kg.NodeID
	specialist map[string]templateSet // per-category specialist register
	oov        *oovNames
	fillBuf    []byte // reused template-expansion scratch

	// The scenario clock: strictly increasing publication times drawn
	// from a dedicated random stream (clockR), so the clock's draws
	// never perturb the text/label draw sequence of gen.r.
	clockR   *xrand.Rand
	clockCur int64
	clockMax int
}

// tick advances the scenario clock one article and returns the new
// publication time. Gaps are in [60, clockMax] seconds.
func (gen *generator) tick() int64 {
	gen.clockCur += int64(60 + gen.clockR.Intn(gen.clockMax-59))
	return gen.clockCur
}

func newGenerator(g *kg.Graph, meta *kggen.Meta, cfg Config) (*generator, error) {
	gen := &generator{
		g: g, meta: meta, cfg: cfg,
		r:          xrand.New(cfg.Seed),
		evalTopic:  make(map[kg.NodeID]*kggen.Topic),
		categoryOf: make(map[kg.NodeID]string),
		closures:   make(map[kg.NodeID][]kg.NodeID),
		specialist: make(map[string]templateSet),
		oov:        newOOVNames(xrand.New(cfg.Seed ^ 0xBADC0FFEE)),
		clockR:     xrand.New(cfg.Seed ^ 0x71CC_0C1C),
	}
	gen.clockCur = cfg.ClockEpoch
	if gen.clockCur == 0 {
		gen.clockCur = defaultClockEpoch
	}
	gen.clockMax = cfg.ClockStep
	if gen.clockMax < 60 {
		gen.clockMax = defaultClockStep
	}

	// Story topic pool: evaluation topics appear several times so the
	// corpus contains enough on-topic articles for every Table-I query;
	// additional curated storylines and a sample of synthetic concepts
	// provide the long tail.
	for i := range meta.Topics {
		t := &meta.Topics[i]
		gen.evalTopic[t.Concept] = t
		for k := 0; k < 5; k++ {
			gen.topics = append(gen.topics, t.Concept)
		}
	}
	for _, name := range []string{
		"Money laundering", "Fraud", "Insider trading", "Bitcoin exchange",
		"Takeover", "Strike action", "Economic sanctions",
		"Presidential election", "Media ownership", "Swiss bank",
		"Illegal logging", "Antitrust case", "Trade dispute",
		"Wildlife trading", "Terrorist financing",
	} {
		if id, ok := g.Lookup(name); ok {
			gen.topics = append(gen.topics, id, id)
		}
	}
	var synth []kg.NodeID
	g.Concepts(func(c kg.NodeID) bool {
		if g.ExtentSize(c) >= 3 {
			synth = append(synth, c)
		}
		return true
	})
	if len(synth) == 0 {
		return nil, fmt.Errorf("corpus: graph has no populated concepts")
	}
	// One pool entry per populated concept keeps the tail broad.
	gen.topics = append(gen.topics, synth...)

	// Degree-weighted instance pool for fallbacks.
	g.Instances(func(v kg.NodeID) bool {
		d := g.InstanceDegree(v)
		if d > 8 {
			d = 8
		}
		for i := 0; i <= d; i++ {
			gen.popular = append(gen.popular, v)
		}
		return true
	})

	// Tradable pool for market-wrap distractors: real wraps cite listed
	// companies, not diplomatic events — instances typed under the
	// Companies or Finance subtrees.
	tradableSet := make(map[kg.NodeID]struct{})
	for _, root := range []string{"Companies", "Finance"} {
		c, ok := g.Lookup(root)
		if !ok {
			continue
		}
		for _, v := range g.ExtentClosure(c, 0) {
			tradableSet[v] = struct{}{}
		}
	}
	gen.tradable = make([]kg.NodeID, 0, len(tradableSet))
	g.Instances(func(v kg.NodeID) bool {
		if _, ok := tradableSet[v]; ok {
			gen.tradable = append(gen.tradable, v)
		}
		return true
	})
	if len(gen.tradable) == 0 {
		gen.tradable = gen.popular
	}
	return gen, nil
}

func (gen *generator) closure(c kg.NodeID) []kg.NodeID {
	if ext, ok := gen.closures[c]; ok {
		return ext
	}
	ext := gen.g.ExtentClosure(c, 200)
	gen.closures[c] = ext
	return ext
}

func (gen *generator) category(topic kg.NodeID) string {
	if cat, ok := gen.categoryOf[topic]; ok {
		return cat
	}
	cat := "generic"
	// Walk upward through `broader` until a curated category root.
	frontier := []kg.NodeID{topic}
	seen := map[kg.NodeID]struct{}{topic: {}}
	for depth := 0; depth < 6 && len(frontier) > 0 && cat == "generic"; depth++ {
		var next []kg.NodeID
		for _, c := range frontier {
			if mapped, ok := categoryRoots[gen.g.Name(c)]; ok {
				cat = mapped
				break
			}
			for _, p := range gen.g.Broader(c) {
				if _, ok := seen[p]; !ok {
					seen[p] = struct{}{}
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	gen.categoryOf[topic] = cat
	return cat
}

// slots holds the entities bound to one article's template slots.
type slots struct {
	f0, f1, x0, x1 kg.NodeID
	anchor         kg.NodeID // entity from the topic's extent closure
}

func (gen *generator) article(src Source) Document {
	if gen.r.Bool(gen.cfg.DistractorRate) {
		return gen.distractor(src)
	}
	topic := gen.topics[gen.r.Intn(len(gen.topics))]
	cat := gen.category(topic)
	ts := templates[cat]
	// Half the coverage of every topic is written in the specialist
	// register — prose that avoids the topic's obvious keyword.
	if gen.r.Bool(0.5) {
		ts = gen.specialistSet(cat, ts)
	}
	sl := gen.castEntities(topic, cat)

	doc := Document{
		Source:      src,
		Topics:      make(map[kg.NodeID]float64),
		PublishedAt: gen.tick(),
	}

	nRange := sentenceRange[src]
	nSent := gen.r.Range(nRange[0], nRange[1]+1)
	var sents []string
	order := gen.r.Perm(len(ts.sentences))
	for i := 0; i < nSent; i++ {
		sents = append(sents, ts.sentences[order[i%len(order)]])
	}
	// Topic anchors: a story genuinely about a topic names several
	// related entities from its sphere, not just one — real trade
	// coverage cites multiple pacts, cases, bodies. This multiplicity
	// is what lets entity-based matching separate primary coverage from
	// documents that touch an entity incidentally.
	if sl.anchor >= 0 {
		sents = append(sents, anchorFrames[gen.r.Intn(len(anchorFrames))])
		ext := gen.closure(topic)
		nExtra := gen.r.Intn(3) // 0–2 additional topic entities
		for e := 0; e < nExtra; e++ {
			extra := ext[gen.r.Intn(len(ext))]
			if extra == sl.anchor {
				continue
			}
			frame := anchorFrames[gen.r.Intn(len(anchorFrames))]
			sents = append(sents, strings.ReplaceAll(frame, "{T}", gen.surfaceOf(extra)))
			doc.GoldEntities = appendUnique(doc.GoldEntities, extra)
		}
	}
	// Neutral filler and OOV colour.
	for gen.r.Bool(0.4) {
		sents = append(sents, fillerSentences[gen.r.Intn(len(fillerSentences))])
	}
	oovRate := gen.cfg.OOV[src]
	for i := 0; i < len(sents); i++ {
		if gen.r.Bool(oovRate) {
			sents = append(sents, oovFrames[gen.r.Intn(len(oovFrames))])
			i++ // keep OOV density proportional, not runaway
		}
	}

	title := ts.titles[gen.r.Intn(len(ts.titles))]
	doc.Title = gen.fill(title, ts, sl)
	var body strings.Builder
	for i, s := range sents {
		if i > 0 {
			body.WriteByte(' ')
		}
		body.WriteString(gen.fill(s, ts, sl))
	}
	doc.Body = body.String()

	gen.label(&doc, topic, sl)
	return doc
}

func (gen *generator) distractor(src Source) Document {
	pick := func() kg.NodeID { return gen.tradable[gen.r.Intn(len(gen.tradable))] }
	sl := slots{f0: pick(), f1: pick(), x0: pick(), x1: pick(), anchor: -1}
	doc := Document{
		Source:      src,
		Topics:      make(map[kg.NodeID]float64),
		Distractor:  true,
		PublishedAt: gen.tick(),
	}
	nSent := gen.r.Range(4, 8)
	var body strings.Builder
	order := gen.r.Perm(len(marketWrap.sentences))
	for i := 0; i < nSent; i++ {
		if i > 0 {
			body.WriteByte(' ')
		}
		body.WriteString(gen.fill(marketWrap.sentences[order[i%len(order)]], marketWrap, sl))
	}
	doc.Title = gen.fill(marketWrap.titles[gen.r.Intn(len(marketWrap.titles))], marketWrap, sl)
	doc.Body = body.String()

	// Distractors are weakly relevant to the concepts of the entities
	// they mention — visible, but never investigation-worthy.
	for _, v := range []kg.NodeID{sl.f0, sl.f1} {
		doc.GoldEntities = appendUnique(doc.GoldEntities, v)
		for _, c := range gen.g.ConceptsOf(v) {
			labelMax(doc.Topics, c, 0.5+gen.r.Float64()*0.7)
		}
	}
	return doc
}

// castEntities selects focus/context entities appropriate to the
// template category, ensuring KG connectivity (context = neighbours)
// and concept matchability (anchor from the topic extent closure).
func (gen *generator) castEntities(topic kg.NodeID, cat string) slots {
	sl := slots{f0: -1, f1: -1, x0: -1, x1: -1, anchor: -1}

	fromGroup := func(name string) kg.NodeID {
		grp := gen.meta.Groups[name]
		if len(grp) == 0 {
			return gen.popular[gen.r.Intn(len(gen.popular))]
		}
		return grp[gen.r.Intn(len(grp))]
	}
	switch cat {
	case "trade", "diplomacy":
		sl.f0 = fromGroup("countries")
		sl.f1 = fromGroup("countries")
	case "election":
		// African elections are a minority of world election coverage;
		// the Table-I group facet must actually discriminate.
		if gen.r.Bool(0.35) {
			sl.f0 = fromGroup("african_countries")
		} else {
			sl.f0 = fromGroup("countries")
		}
		sl.f1 = fromGroup("politicians")
	case "lawsuit":
		// Litigation coverage spans all industries; U.S. tech is one
		// slice of it.
		if gen.r.Bool(0.3) {
			sl.f0 = fromGroup("us_tech_companies")
		} else {
			sl.f0 = gen.anyCompany()
		}
		sl.f1 = fromGroup("regulators")
	case "manda":
		if gen.r.Bool(0.3) {
			sl.f0 = fromGroup("us_biotech_companies")
			sl.f1 = fromGroup("us_biotech_companies")
		} else {
			sl.f0 = gen.anyCompany()
			sl.f1 = gen.anyCompany()
		}
	case "labor":
		sl.f0 = fromGroup("industrial_companies")
		sl.x0 = fromGroup("unions")
	case "crime", "regulatorr":
		pools := []string{"swiss_banks", "banks", "crypto_exchanges", "us_tech_companies", "industrial_companies"}
		sl.f0 = fromGroup(pools[gen.r.Intn(len(pools))])
		sl.x0 = fromGroup("regulators")
	case "crypto":
		sl.f0 = fromGroup("crypto_exchanges")
		sl.f1 = fromGroup("crypto_exchanges")
		sl.x0 = fromGroup("regulators")
	case "media":
		sl.f0 = fromGroup("media_owners")
		sl.f1 = fromGroup("media_outlets")
	case "banking":
		sl.f0 = fromGroup("banks")
		sl.f1 = fromGroup("banks")
		sl.x0 = fromGroup("regulators")
	case "esg":
		sl.f0 = fromGroup("industrial_companies")
	}

	ext := gen.closure(topic)
	if len(ext) > 0 {
		sl.anchor = ext[gen.r.Intn(len(ext))]
		if sl.f0 < 0 {
			sl.f0 = ext[gen.r.Intn(len(ext))]
		}
		if sl.f1 < 0 {
			sl.f1 = ext[gen.r.Intn(len(ext))]
		}
	}
	if sl.f0 < 0 {
		sl.f0 = gen.popular[gen.r.Intn(len(gen.popular))]
	}
	if sl.f1 < 0 || sl.f1 == sl.f0 {
		sl.f1 = gen.popular[gen.r.Intn(len(gen.popular))]
	}
	// Context entities: true KG neighbours of the focus, so the
	// connectivity score (Eq. 4) finds short paths at query time.
	if sl.x0 < 0 {
		sl.x0 = gen.neighborOf(sl.f0)
	}
	if sl.x1 < 0 {
		sl.x1 = gen.neighborOf(sl.f1)
	}
	return sl
}

func (gen *generator) anyCompany() kg.NodeID {
	pools := []string{"us_tech_companies", "us_biotech_companies", "industrial_companies", "banks", "crypto_exchanges"}
	grp := gen.meta.Groups[pools[gen.r.Intn(len(pools))]]
	if len(grp) == 0 {
		return gen.popular[gen.r.Intn(len(gen.popular))]
	}
	return grp[gen.r.Intn(len(grp))]
}

func (gen *generator) neighborOf(v kg.NodeID) kg.NodeID {
	if v >= 0 {
		if nbrs := gen.g.InstanceNeighbors(v); len(nbrs) > 0 {
			return nbrs[gen.r.Intn(len(nbrs))]
		}
	}
	return gen.popular[gen.r.Intn(len(gen.popular))]
}

// label assigns the document's gold topical relevance grades.
func (gen *generator) label(doc *Document, topic kg.NodeID, sl slots) {
	// Primary topic: 4.2–5.0.
	primary := 4.2 + gen.r.Float64()*0.8
	labelMax(doc.Topics, topic, primary)
	// Ontology ancestors decay: a story about a niche tariff category
	// is still a story about Tariffs, about International trade, and —
	// fading — about Commerce. The chain must run as deep as the
	// taxonomy grows, or stories filed under deep synthetic
	// sub-categories would grade zero for the topics that subsume them.
	for level, penalty := 1, 0.8; level <= 4; level, penalty = level+1, penalty+0.8 {
		grade := primary - penalty
		if grade <= 0.8 {
			break
		}
		for _, anc := range ancestorsAt(gen.g, topic, level) {
			labelMax(doc.Topics, anc, grade)
		}
	}
	// Focus entities: the doc is substantially about their concepts —
	// and, attenuated, about those concepts' parents (a story focused
	// on Germany is also a story about a Country).
	for _, f := range []kg.NodeID{sl.f0, sl.f1} {
		if f < 0 {
			continue
		}
		doc.GoldEntities = appendUnique(doc.GoldEntities, f)
		for _, c := range gen.g.ConceptsOf(f) {
			grade := 3.4 + gen.r.Float64()*0.9
			labelMax(doc.Topics, c, grade)
			for _, anc := range gen.g.Broader(c) {
				labelMax(doc.Topics, anc, grade-0.7)
			}
		}
	}
	if sl.anchor >= 0 {
		doc.GoldEntities = appendUnique(doc.GoldEntities, sl.anchor)
	}
	// Context entities: incidental relevance.
	for _, x := range []kg.NodeID{sl.x0, sl.x1} {
		if x < 0 {
			continue
		}
		doc.GoldEntities = appendUnique(doc.GoldEntities, x)
		for _, c := range gen.g.ConceptsOf(x) {
			labelMax(doc.Topics, c, 1.4+gen.r.Float64()*1.0)
		}
	}
}

// specialistSet returns the category's templates with every sentence
// and title containing a topic keyword removed (falling back to the
// full pool when filtering would leave too little material). Memoised.
func (gen *generator) specialistSet(cat string, ts templateSet) templateSet {
	if s, ok := gen.specialist[cat]; ok {
		return s
	}
	words := categoryTopicWords[cat]
	out := ts
	if len(words) > 0 {
		filter := func(in []string) []string {
			var kept []string
			for _, s := range in {
				low := strings.ToLower(s)
				hit := false
				for _, w := range words {
					if strings.Contains(low, w) {
						hit = true
						break
					}
				}
				if !hit {
					kept = append(kept, s)
				}
			}
			return kept
		}
		if titles := filter(ts.titles); len(titles) > 0 {
			out.titles = titles
		}
		if sents := filter(ts.sentences); len(sents) >= 4 {
			out.sentences = sents
		}
	}
	gen.specialist[cat] = out
	return out
}

func ancestorsAt(g *kg.Graph, c kg.NodeID, level int) []kg.NodeID {
	frontier := []kg.NodeID{c}
	for l := 0; l < level; l++ {
		var next []kg.NodeID
		for _, n := range frontier {
			next = append(next, g.Broader(n)...)
		}
		frontier = next
	}
	return frontier
}

func labelMax(m map[kg.NodeID]float64, c kg.NodeID, grade float64) {
	if grade > 5 {
		grade = 5
	}
	if grade > m[c] {
		m[c] = grade
	}
}

func appendUnique(s []kg.NodeID, v kg.NodeID) []kg.NodeID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// surfaceOf renders an entity's surface form, occasionally using an
// alias so the linker's disambiguation path is exercised.
func (gen *generator) surfaceOf(v kg.NodeID) string {
	if v < 0 {
		return gen.oov.next()
	}
	if al := gen.g.Aliases(v); len(al) > 0 && gen.r.Bool(0.3) {
		return al[gen.r.Intn(len(al))]
	}
	return gen.g.Name(v)
}

// fillKeys lists the slot keys in the order their values are drawn —
// the draw order is part of the generator's deterministic contract, so
// fill renders every value up front (even for slots the template does
// not use) exactly as the old strings.Replacer construction did.
var fillKeys = [...]string{"{F0}", "{F1}", "{X0}", "{X1}", "{T}", "{O}", "{NUM}", "{PCT}", "{QTR}", "{J0}", "{J1}"}

// fill substitutes template slots with a single pass over the template.
// Building a strings.Replacer per article dominated generation cost;
// the hand-rolled scan produces the identical string for a fraction of
// the allocation.
func (gen *generator) fill(tpl string, ts templateSet, sl slots) string {
	var vals [len(fillKeys)]string
	vals[0] = gen.surfaceOf(sl.f0)
	vals[1] = gen.surfaceOf(sl.f1)
	vals[2] = gen.surfaceOf(sl.x0)
	vals[3] = gen.surfaceOf(sl.x1)
	vals[4] = gen.surfaceOf(sl.anchor)
	vals[5] = gen.oov.next()
	vals[6] = strconv.Itoa(1 + gen.r.Intn(95))
	vals[7] = strconv.Itoa(1+gen.r.Intn(19)) + "." + strconv.Itoa(gen.r.Intn(10)) + " percent"
	vals[8] = quarters[gen.r.Intn(len(quarters))]
	vals[9] = pickJargon(gen.r, ts)
	vals[10] = pickJargon(gen.r, ts)

	buf := gen.fillBuf[:0]
	for i := 0; i < len(tpl); {
		c := tpl[i]
		if c != '{' {
			buf = append(buf, c)
			i++
			continue
		}
		matched := false
		for k, key := range fillKeys {
			if len(tpl)-i >= len(key) && tpl[i:i+len(key)] == key {
				buf = append(buf, vals[k]...)
				i += len(key)
				matched = true
				break
			}
		}
		if !matched { // unknown brace: left verbatim, like strings.Replacer
			buf = append(buf, c)
			i++
		}
	}
	gen.fillBuf = buf
	return string(buf)
}

func pickJargon(r *xrand.Rand, ts templateSet) string {
	if len(ts.jargon) == 0 {
		return "markets"
	}
	return ts.jargon[r.Intn(len(ts.jargon))]
}

var quarters = []string{"the first quarter", "the second quarter", "the third quarter", "the fourth quarter"}

// anchorFrames weave the topic-extent anchor entity into the story.
var anchorFrames = []string{
	"The matter is catalogued in industry databases under {T}.",
	"Researchers track the episode as part of the {T} dossier.",
	"Filings group the developments with {T}.",
	"Records connect the events to {T}.",
}

// oovFrames mention entities that exist in the world but not in the KG,
// driving the linked-entity ratio below 100% as in the paper's dataset.
var oovFrames = []string{
	"Consultancy {O} said the outlook remains uncertain.",
	"{O}, a little-known advisory firm, circulated a note to clients.",
	"Local outlet {O} first reported the development.",
	"Research boutique {O} estimated the exposure at {NUM} million dollars.",
	"A statement distributed by {O} disputed the figures.",
	"Brokerage {O} cut its rating on the sector.",
}

// oovNames produces capitalised multi-word surface forms absent from
// the KG.
type oovNames struct {
	r *xrand.Rand
}

func newOOVNames(r *xrand.Rand) *oovNames { return &oovNames{r: r} }

var oovFirst = []string{
	"Brimworth", "Caldstone", "Dunmore", "Eastvale", "Fernbrook",
	"Graymont", "Hollowell", "Irongate", "Juniper", "Kestrel",
	"Larkfield", "Mossbank", "Northgate", "Oakhurst", "Pinewood",
	"Quarry", "Ridgeline", "Stonebridge", "Thornhill", "Underwood",
	"Vanguard", "Westbrook", "Yellowtail", "Zephyr",
}

var oovSecond = []string{
	"Analytics", "Advisory", "Research", "Insights", "Partners",
	"Securities", "Consulting", "Intelligence", "Strategies", "Review",
}

func (o *oovNames) next() string {
	return oovFirst[o.r.Intn(len(oovFirst))] + " " + oovSecond[o.r.Intn(len(oovSecond))]
}
