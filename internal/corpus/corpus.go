// Package corpus models news documents and generates the synthetic
// corpus that replaces the paper's 200k crawled articles from Reuters,
// SeekingAlpha and The New York Times (which cannot be redistributed or
// re-crawled offline).
//
// Each generated article is written from topic-specific templates around
// *focus entities* drawn from a topic concept's extent and *context
// entities* drawn from their KG neighbourhoods, so that:
//
//   - entity linking (internal/nlp) rediscovers the mentions,
//   - concept-pattern queries over the KG ontology match the documents
//     that were generated about them, and
//   - the connectivity score finds short instance-space paths between a
//     document's context entities and its topic's extent.
//
// Generation-time gold labels — the topical relevance grade of every
// (concept, document) pair and the deliberately mentioned entities — are
// retained. They stand in for "what a careful human reader could judge"
// and drive the simulated AMT evaluators in internal/eval. Out-of-KG
// surface forms are injected at source-specific rates to reproduce the
// linked/total entity ratios of the paper's dataset table (§IV).
package corpus

import (
	"fmt"

	"ncexplorer/internal/kg"
)

// DocID identifies a document within a corpus.
type DocID int32

// Source is the news portal a document belongs to.
type Source uint8

// The three sources of the paper's dataset.
const (
	SeekingAlpha Source = iota
	NYT
	Reuters
	numSources
)

// Sources lists all sources in display order.
var Sources = []Source{SeekingAlpha, NYT, Reuters}

func (s Source) String() string {
	switch s {
	case SeekingAlpha:
		return "seekingalpha"
	case NYT:
		return "nyt"
	case Reuters:
		return "reuters"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Document is one news article plus its generation-time gold labels.
type Document struct {
	ID     DocID
	Source Source
	Title  string
	Body   string

	// PublishedAt is the article's publication time as Unix seconds
	// (UTC). Generated articles carry a deterministic scenario-clock
	// value; externally ingested articles may leave it zero, in which
	// case the engine defaults it to the ingest wall clock (and counts
	// the defaulting) so no document silently lands in a 1970 bucket.
	PublishedAt int64

	// Topics maps concept → semantic relevance grade in [0, 5]: how
	// relevant a careful reader would judge this document to be for the
	// concept. Primary topics grade near 5; their ontology ancestors
	// decay; incidental topics grade low. Absent concepts grade 0.
	Topics map[kg.NodeID]float64

	// GoldEntities are the entities the generator deliberately wrote
	// about (focus first, then context).
	GoldEntities []kg.NodeID

	// Distractor marks market-wrap-style filler (daily price/volume
	// reports) that mentions entities and finance vocabulary without
	// being about any investigable event — the pollution the paper
	// observes in pure-embedding retrieval.
	Distractor bool
}

// Text returns title and body joined for indexing.
func (d *Document) Text() string { return d.Title + ". " + d.Body }

// Gold returns the semantic relevance grade of the document for a
// concept (0 if unlabelled).
func (d *Document) Gold(c kg.NodeID) float64 { return d.Topics[c] }

// MentionsGold reports whether v is among the document's gold entities.
func (d *Document) MentionsGold(v kg.NodeID) bool {
	for _, e := range d.GoldEntities {
		if e == v {
			return true
		}
	}
	return false
}

// Corpus is an immutable collection of documents.
type Corpus struct {
	Docs []Document
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.Docs) }

// Doc returns the document with the given ID.
func (c *Corpus) Doc(id DocID) *Document { return &c.Docs[id] }

// BySource returns the documents of one source, in ID order.
func (c *Corpus) BySource(s Source) []*Document {
	var out []*Document
	for i := range c.Docs {
		if c.Docs[i].Source == s {
			out = append(out, &c.Docs[i])
		}
	}
	return out
}

// SourceStats summarises one source the way the paper's dataset table
// does: article count, total recognised entity mentions, linked
// mentions, and the linked ratio. Populated by the harness after
// running the NLP pipeline.
type SourceStats struct {
	Source         Source
	Articles       int
	TotalMentions  int
	LinkedMentions int
}

// LinkedRatio returns linked/total mentions (0 when empty).
func (s SourceStats) LinkedRatio() float64 {
	if s.TotalMentions == 0 {
		return 0
	}
	return float64(s.LinkedMentions) / float64(s.TotalMentions)
}
