package corpus

// Story templates. Slots are substituted by the generator:
//
//	{F0} {F1}  focus entities (the entities the story is about)
//	{X0} {X1}  context entities (KG neighbours of the focus entities)
//	{O}        an out-of-KG surface form (injected per-source)
//	{NUM}      a number, {PCT} a percentage, {QTR} a quarter label
//
// Every category also carries jargon terms that flavour the prose and
// give the term-weighting schemes realistic vocabulary to work with.
type templateSet struct {
	titles    []string
	sentences []string
	jargon    []string
}

// categoryRoots maps curated concept names to a template category; the
// generator walks the `broader` hierarchy upward from a topic concept
// until it hits one of these.
var categoryRoots = map[string]string{
	"International trade":      "trade",
	"Lawsuits":                 "lawsuit",
	"Court":                    "lawsuit",
	"Elections":                "election",
	"Mergers and acquisitions": "manda",
	"International relations":  "diplomacy",
	"Labor":                    "labor",
	"Financial crime":          "crime",
	"Compliance":               "crime",
	"Regulator":                "regulatorr",
	"Regulation":               "regulatorr",
	"Cryptocurrency":           "crypto",
	"Media":                    "media",
	"Banking":                  "banking",
	"Finance":                  "banking",
	"Environment":              "esg",
	"Politics":                 "politicsgen",
	"Companies":                "generic",
	"Commerce":                 "generic",
}

var templates = map[string]templateSet{
	"trade": {
		titles: []string{
			"{F0} and {F1} clash over new tariffs",
			"{F0} tightens export controls in dispute with {F1}",
			"Trade talks between {F0} and {F1} stall over subsidies",
			"{F0} files complaint against {F1} import duties",
		},
		sentences: []string{
			"{F0} imposed tariffs of {PCT} on imports from {F1}, escalating a simmering trade dispute.",
			"Negotiators from {F0} and {F1} failed to agree on a framework for reducing customs duties.",
			"Exporters in {X0} warned that the new quotas would disrupt supply chains across the region.",
			"The trade ministry said the export controls target sensitive goods bound for {F1}.",
			"Analysts estimate the dispute could shave {PCT} off bilateral trade worth {NUM} billion dollars.",
			"{X0} urged both sides to return to the negotiating table before retaliatory duties take effect.",
			"A preliminary trade agreement covering agricultural goods remains stalled in {F0}.",
			"Customs data showed shipments from {F1} fell {PCT} in {QTR} as the tariff wall rose.",
			"Industry groups in {X1} asked for exemptions from the anti-dumping measures.",
		},
		jargon: []string{"tariff", "quota", "customs", "anti-dumping", "subsidy", "export", "import", "duties"},
	},
	"lawsuit": {
		titles: []string{
			"{F0} sued over alleged misconduct in {X0} case",
			"{F0} faces class action lawsuit from investors",
			"Court orders {F0} to face antitrust trial",
			"{F0} settles patent litigation with {F1}",
		},
		sentences: []string{
			"A federal court allowed the class action against {F0} to proceed to trial.",
			"Plaintiffs allege that {F0} misled customers about the safety of its flagship product.",
			"{F1} filed the complaint in district court, seeking {NUM} million dollars in damages.",
			"Lawyers for {F0} called the antitrust claims meritless and vowed to appeal.",
			"The lawsuit follows an investigation by {X0} into the company's licensing practices.",
			"A judge ruled that internal emails from {F0} executives are admissible as evidence.",
			"{F0} agreed to settle the patent litigation for an undisclosed sum, ending a three-year battle.",
			"Shares of {F0} slipped {PCT} after the court unsealed the plaintiffs' filings.",
			"Legal experts said the verdict could expose {F0} to follow-on claims in {X1}.",
		},
		jargon: []string{"plaintiff", "defendant", "damages", "injunction", "settlement", "verdict", "appeal", "litigation"},
	},
	"election": {
		titles: []string{
			"{F0} heads to the polls in tightly contested election",
			"{F1} claims victory in {F0} presidential election",
			"Opposition disputes election results in {F0}",
			"Voters in {F0} deliver split verdict in parliamentary vote",
		},
		sentences: []string{
			"Polling stations across {F0} opened at dawn as voters queued to cast ballots.",
			"{F1} addressed supporters after early returns showed a narrow lead.",
			"The electoral commission said turnout reached {PCT}, the highest in a decade.",
			"Observers from {X0} reported isolated irregularities but called the vote broadly credible.",
			"The opposition alleged ballot stuffing in several districts and demanded a recount.",
			"A runoff is likely if no candidate clears the {PCT} threshold required by the constitution.",
			"Security forces were deployed in the capital amid fears of post-election unrest.",
			"Markets in {F0} rallied as investors bet on policy continuity after the vote.",
			"{F1} campaigned on anti-corruption pledges and closer ties with {X1}.",
		},
		jargon: []string{"ballot", "turnout", "runoff", "incumbent", "constituency", "electorate", "recount", "coalition"},
	},
	"manda": {
		titles: []string{
			"{F0} agrees to acquire {F1} in {NUM} billion dollar deal",
			"{F0} launches takeover bid for {F1}",
			"{F1} board rejects unsolicited offer from {F0}",
			"Merger of {F0} and {F1} clears regulatory review",
		},
		sentences: []string{
			"{F0} will acquire {F1} in a cash-and-stock transaction valuing the target at {NUM} billion dollars.",
			"The takeover gives {F0} control of {F1}'s pipeline of experimental therapies.",
			"Shareholders of {F1} will receive a {PCT} premium over Friday's closing price.",
			"{X0} is reviewing the merger for potential competition concerns.",
			"The boards of both companies approved the definitive agreement unanimously.",
			"Bankers said the buyout was the largest in the sector since {QTR}.",
			"{F0} expects the acquisition to close by year-end, pending antitrust clearance.",
			"Analysts at {X1} said the tie-up could trigger further consolidation among rivals.",
			"The hostile bid turned friendly after {F0} raised its offer twice.",
		},
		jargon: []string{"acquisition", "takeover", "merger", "buyout", "premium", "synergies", "divestiture", "consolidation"},
	},
	"diplomacy": {
		titles: []string{
			"{F0} and {F1} seek to ease tensions at summit",
			"{F0} recalls ambassador from {F1} amid dispute",
			"Leaders of {F0} and {F1} sign cooperation treaty",
			"Sanctions strain relations between {F0} and {F1}",
		},
		sentences: []string{
			"Diplomats from {F0} and {F1} met for two days of closed-door talks.",
			"The summit produced a joint communique pledging cooperation on border security.",
			"{F0} imposed targeted sanctions on officials from {F1} over the disputed territory.",
			"Foreign ministers agreed to reopen consulates closed during the standoff.",
			"{X0} offered to mediate the dispute, warning of regional spillover.",
			"The treaty must still be ratified by parliaments in both {F0} and {F1}.",
			"Relations deteriorated after {F1} expelled diplomats accused of espionage.",
			"Officials said the agreement covers trade corridors and military de-escalation.",
			"Observers called the handshake between the two leaders a cautious thaw.",
		},
		jargon: []string{"summit", "treaty", "sanctions", "ambassador", "communique", "bilateral", "ceasefire", "mediation"},
	},
	"labor": {
		titles: []string{
			"Workers at {F0} walk out over pay dispute",
			"{F0} and {X0} reach deal to end strike",
			"Union threatens industrial action at {F0}",
			"{F0} lockout leaves thousands idle as talks collapse",
		},
		sentences: []string{
			"Thousands of workers at {F0} walked off the job after wage talks collapsed.",
			"{X0} said its members voted overwhelmingly to authorize the strike.",
			"The walkout halted production at {F0} plants for the third consecutive day.",
			"Management offered a {PCT} raise over three years, which the union rejected.",
			"Mediators were called in as the labor dispute entered its second week.",
			"The collective bargaining agreement covering {NUM} thousand employees expired in {QTR}.",
			"{F0} warned that prolonged industrial action could force layoffs at suppliers in {X1}.",
			"Picket lines formed outside distribution centers as contract negotiations resumed.",
			"Workers cited unsafe conditions and mandatory overtime among their grievances.",
		},
		jargon: []string{"strike", "union", "picket", "wages", "walkout", "bargaining", "overtime", "grievance"},
	},
	"crime": {
		titles: []string{
			"{F0} probed over suspected money laundering",
			"Regulators fine {F0} for compliance failures",
			"{F0} executive charged with fraud",
			"Investigators trace illicit funds through {F0}",
		},
		sentences: []string{
			"Prosecutors allege that {F0} processed suspicious transactions worth {NUM} million dollars.",
			"{X0} opened an investigation into whether {F0} violated anti-money laundering rules.",
			"The indictment accuses executives of wire fraud and falsifying records.",
			"Compliance staff at {F0} flagged the transfers but were overruled, according to the filings.",
			"Investigators say shell companies were used to move funds through accounts in {X1}.",
			"{F0} agreed to pay a {NUM} million dollar penalty and strengthen its controls.",
			"The case highlights gaps in know-your-customer checks across the sector.",
			"Authorities froze assets linked to the scheme and issued arrest warrants.",
			"A whistleblower provided documents showing the laundering network spanned three jurisdictions.",
		},
		jargon: []string{"laundering", "fraud", "indictment", "shell", "illicit", "penalty", "whistleblower", "sanctions"},
	},
	"regulatorr": {
		titles: []string{
			"{F0} unveils stricter rules for the sector",
			"{F0} opens inquiry into market practices of {X0}",
			"New disclosure regime from {F0} draws industry pushback",
			"{F0} warns firms over compliance shortfalls",
		},
		sentences: []string{
			"{F0} proposed rules that would tighten oversight of the industry.",
			"The regulator said firms must file disclosures within {NUM} days under the new regime.",
			"Industry groups complained the compliance burden would fall hardest on smaller firms in {X1}.",
			"{F0} signalled that enforcement actions will follow repeated violations.",
			"A consultation on the draft regulation runs until the end of {QTR}.",
			"Officials at {F0} cited risks uncovered during recent examinations of {X0}.",
			"The guidance clarifies reporting obligations for cross-border transactions.",
			"Supervisors will gain powers to levy fines of up to {PCT} of annual turnover.",
		},
		jargon: []string{"oversight", "enforcement", "disclosure", "supervision", "consultation", "guidance", "examination", "regime"},
	},
	"crypto": {
		titles: []string{
			"{F0} halts withdrawals as crypto turmoil spreads",
			"Regulators circle {F0} after token collapse",
			"{F0} expands exchange business despite scrutiny",
			"Customers of {F0} left in limbo after insolvency filing",
		},
		sentences: []string{
			"{F0} suspended customer withdrawals citing extreme market volatility.",
			"The token's collapse wiped out {NUM} billion dollars in market value within days.",
			"{X0} demanded records from {F0} as part of a widening probe into the exchange.",
			"Depositors rushed to move coins off the platform after rumors of insolvency.",
			"{F0} said client assets are segregated and backed one-to-one by reserves.",
			"Blockchain analysts traced large transfers from {F0} wallets to offshore venues.",
			"The bankruptcy filing lists more than {NUM} thousand creditors across {X1}.",
			"Rival exchange {F1} offered to buy parts of the stricken platform.",
			"Industry lawyers said the case will shape how digital assets are regulated.",
		},
		jargon: []string{"exchange", "token", "wallet", "blockchain", "withdrawals", "insolvency", "reserves", "custody"},
	},
	"media": {
		titles: []string{
			"{F0} completes purchase of {F1}",
			"Newsroom of {F1} braces for changes under {F0}",
			"Ownership shakeup at {F1} stirs bias debate",
			"{F0} defends editorial independence after buying {F1}",
		},
		sentences: []string{
			"{F0} completed the acquisition of {F1}, ending months of speculation.",
			"Staff at {F1} expressed concern that the new owner could steer coverage.",
			"Media watchdogs warned about concentration of ownership among billionaires.",
			"{F0} pledged not to interfere with the paper's editorial decisions.",
			"Critics pointed to shifts in tone after similar takeovers involving {X0}.",
			"The deal values {F1} at {NUM} million dollars, a fraction of its peak worth.",
			"Editors said subscription revenue will decide the outlet's independence.",
			"Analysts compared the purchase to earlier deals for {X1}.",
		},
		jargon: []string{"newsroom", "editorial", "ownership", "coverage", "masthead", "subscription", "watchdog", "bias"},
	},
	"banking": {
		titles: []string{
			"{F0} reports surprise loss as provisions jump",
			"{F0} to cut costs amid margin squeeze",
			"Depositors test resilience of {F0}",
			"{F0} bolsters capital after stress test",
		},
		sentences: []string{
			"{F0} set aside {NUM} million dollars for bad loans, more than analysts expected.",
			"The bank's net interest margin narrowed to {PCT} in {QTR}.",
			"{X0} reaffirmed the lender's capital ratios exceed regulatory minimums.",
			"{F0} announced a restructuring that will trim {NUM} hundred positions.",
			"Wealthy clients moved deposits to rivals including {F1}, filings show.",
			"The lender passed the annual stress test with a buffer of {PCT}.",
			"Executives blamed one-off charges tied to legacy litigation in {X1}.",
			"Private banking inflows offset weakness in the trading division.",
		},
		jargon: []string{"deposits", "capital", "provisions", "lending", "liquidity", "margin", "buffer", "solvency"},
	},
	"esg": {
		titles: []string{
			"{F0} accused of sourcing from illegal logging operations",
			"Investors press {F0} on environmental record",
			"{F0} pledges to cut emissions after investor revolt",
			"Supply chain audit ties {F0} to forced labor",
		},
		sentences: []string{
			"An audit linked suppliers of {F0} to illegal logging in protected forests.",
			"Campaigners said wildlife trading persists along routes used by {F0} contractors.",
			"{X0} threatened to divest unless {F0} improves its environmental disclosures.",
			"The company pledged to cut emissions by {PCT} before the end of the decade.",
			"Inspectors found evidence of forced labor at a facility supplying {F0}.",
			"Lenders face pressure to screen financing for deforestation risk in {X1}.",
			"{F0} suspended two suppliers pending an independent investigation.",
			"The report urged banks to tighten environmental and social governance checks.",
		},
		jargon: []string{"emissions", "deforestation", "audit", "sustainability", "divestment", "supply", "governance", "biodiversity"},
	},
	"politicsgen": {
		titles: []string{
			"{F0} government unveils sweeping reform bill",
			"Coalition talks in {F0} enter decisive phase",
			"Protests mount as {F0} debates new legislation",
			"{F1} reshuffles cabinet amid falling approval",
		},
		sentences: []string{
			"Lawmakers in {F0} began debating a reform package backed by {F1}.",
			"The bill would overhaul public procurement and campaign finance rules.",
			"Opposition parties vowed to block the legislation in the upper chamber.",
			"Demonstrators gathered outside parliament for a third night.",
			"{X0} said the reforms are a condition for further cooperation.",
			"A confidence vote is expected before the recess in {QTR}.",
			"Analysts said the reshuffle strengthens the finance ministry's hand.",
			"Regional governors from {X1} demanded a larger share of revenues.",
		},
		jargon: []string{"parliament", "legislation", "coalition", "reform", "cabinet", "procurement", "referendum", "decree"},
	},
	"generic": {
		titles: []string{
			"{F0} expands operations amid shifting demand",
			"{F0} partners with {X0} on new initiative",
			"Outlook for {F0} divides analysts",
			"{F0} navigates turbulent quarter",
		},
		sentences: []string{
			"{F0} said demand trends diverged sharply across its regions in {QTR}.",
			"The company announced a partnership with {X0} to develop new offerings.",
			"Management guided for revenue growth of {PCT} next year.",
			"Competition from {F1} weighed on pricing in core markets.",
			"{F0} opened a new facility employing {NUM} hundred staff.",
			"Executives flagged currency headwinds and input cost inflation.",
			"Customers in {X1} accounted for a growing share of orders.",
			"The board authorized a share repurchase of {NUM} million dollars.",
		},
		jargon: []string{"revenue", "guidance", "operations", "margin", "outlook", "demand", "headwinds", "expansion"},
	},
}

// marketWrap is the distractor template: daily price/volume reporting
// that mentions entities and finance vocabulary but carries no
// investigable event — the noise pure-embedding retrieval surfaces.
var marketWrap = templateSet{
	titles: []string{
		"Market wrap: {F0} leads gainers as volumes swell",
		"Stocks drift; {F0} and {F1} in focus",
		"Daily movers: {F0} slides, {F1} rallies",
	},
	sentences: []string{
		"Shares of {F0} rose {PCT} on volume of {NUM} million shares.",
		"{F1} slipped {PCT} in early trading before paring losses.",
		"Futures pointed to a muted open as traders awaited economic data.",
		"Turnover across the exchange reached {NUM} billion dollars.",
		"{F0} was the most actively traded name for a second session.",
		"Index heavyweights {F1} and {X0} moved in opposite directions.",
		"Options activity in {F0} spiked ahead of the expiry in {QTR}.",
		"The benchmark closed {PCT} higher, extending its winning streak.",
	},
	jargon: []string{"volume", "futures", "turnover", "benchmark", "session", "expiry", "gainers", "movers"},
}

// categoryTopicWords lists, per template category, the surface words a
// keyword search for the corresponding topic would use. Articles
// written in the *specialist register* avoid exactly these words — the
// vocabulary mismatch the paper's motivation rests on ("evaluators show
// greater confidence in commonly known surface words … while expressing
// uncertainty about specialized terms such as takeover"). Half of all
// generated articles use the specialist register, so keyword retrieval
// structurally misses part of every topic's coverage while KG-based
// matching (which reads entities, not words) does not.
var categoryTopicWords = map[string][]string{
	"trade":     {"trade"},
	"lawsuit":   {"lawsuit", "sue"},
	"election":  {"election"},
	"manda":     {"merger", "acquisition", "acquire"},
	"diplomacy": {"relation"},
	"labor":     {"labor", "dispute"},
}

// fillerSentences pad articles with neutral newsroom prose.
var fillerSentences = []string{
	"Officials declined to comment beyond the public filings.",
	"The development was first reported by local media.",
	"A spokesperson said a detailed statement would follow.",
	"Reporters were briefed on condition of anonymity.",
	"Further hearings are expected in the coming weeks.",
	"The figures have not been independently verified.",
	"Representatives did not respond to requests for comment.",
	"Documents reviewed for this article span several years.",
}
