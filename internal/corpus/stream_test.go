package corpus

import (
	"reflect"
	"testing"
	"time"

	"ncexplorer/internal/kggen"
)

func testStream(t *testing.T, seed uint64) *Stream {
	t.Helper()
	g, meta := kggen.MustGenerate(kggen.Tiny())
	s, err := NewStream(g, meta, Tiny(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamMatchesGenerateBatch: the determinism contract — a stream
// is the batch generator unrolled, for any split into Next/NextBatch
// calls, documents and IDs included.
func TestStreamMatchesGenerateBatch(t *testing.T) {
	g, meta := kggen.MustGenerate(kggen.Tiny())
	const n = 24
	want, err := GenerateBatch(g, meta, Tiny(), 909, n)
	if err != nil {
		t.Fatal(err)
	}

	s := testStream(t, 909)
	var got []Document
	got = append(got, s.Next())
	got = append(got, s.NextBatch(7)...)
	got = append(got, s.Next(), s.Next())
	got = append(got, s.NextBatch(n-len(got))...)
	if s.Emitted() != n {
		t.Fatalf("Emitted() = %d, want %d", s.Emitted(), n)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("stream output diverges from GenerateBatch prefix")
	}

	// Distinct seeds give distinct feeds.
	other := testStream(t, 910).NextBatch(4)
	if reflect.DeepEqual(other, want[:4]) {
		t.Fatal("seed 910 reproduced seed 909's stream")
	}
}

// TestStreamConstantMemory: emitting documents does not grow the
// stream's footprint — each NextBatch slice is freshly allocated and
// never referenced again, so a long run holds only the batch in
// flight. The proxy assertion: batches are independent slices and the
// stream's only counter-like state is the emission count.
func TestStreamConstantMemory(t *testing.T) {
	s := testStream(t, 42)
	a := s.NextBatch(8)
	b := s.NextBatch(8)
	if &a[0] == &b[0] {
		t.Fatal("stream reused the batch backing array")
	}
	for i := range a {
		if a[i].ID != DocID(i) || b[i].ID != DocID(8+i) {
			t.Fatalf("sequence IDs wrong: a[%d]=%d b[%d]=%d", i, a[i].ID, i, b[i].ID)
		}
	}
}

// TestStreamRateControl: with a fake clock, the throttle sleeps the
// schedule gap, paces from the planned slot (oversleep does not
// shrink the long-run rate), and never alters what is emitted.
func TestStreamRateControl(t *testing.T) {
	paced := testStream(t, 77)
	free := testStream(t, 77)

	now := time.Unix(1000, 0)
	var slept []time.Duration
	paced.now = func() time.Time { return now }
	paced.sleep = func(d time.Duration) {
		slept = append(slept, d)
		now = now.Add(d)
	}

	paced.SetRate(10) // one doc per 100ms
	var got []Document
	for i := 0; i < 3; i++ {
		got = append(got, paced.Next())
	}
	if len(slept) != 3 {
		t.Fatalf("sleeps = %v, want one per emission", slept)
	}
	for _, d := range slept {
		if d != 100*time.Millisecond {
			t.Fatalf("sleeps = %v, want 100ms each", slept)
		}
	}

	// An emission arriving late (clock jumps past the slot) proceeds
	// without sleeping, and the next slot is scheduled from the plan.
	now = now.Add(250 * time.Millisecond)
	slept = nil
	got = append(got, paced.Next())
	if len(slept) != 0 {
		t.Fatalf("late emission slept %v", slept)
	}

	// Throttle off: no pacing, stream position unaffected.
	paced.SetRate(0)
	slept = nil
	got = append(got, paced.NextBatch(2)...)
	if len(slept) != 0 {
		t.Fatalf("unthrottled emission slept %v", slept)
	}

	if want := free.NextBatch(len(got)); !reflect.DeepEqual(got, want) {
		t.Fatal("rate control changed the emitted documents")
	}
}
