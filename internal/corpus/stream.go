package corpus

import (
	"time"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
)

// Stream is an unbounded, deterministic article source: the generator
// behind Generate/GenerateBatch exposed one document at a time. It
// produces documents in constant memory — nothing about an emitted
// document is retained, so a 100k-document ingest run holds only the
// batch in flight, never the corpus — and it can be throttled to a
// target rate for load tests that model a live feed.
//
// Determinism contract: a Stream over (world, cfg, seed) emits exactly
// the sequence GenerateBatch(world, cfg, seed, n) returns, for every
// prefix length n and any split into Next/NextBatch calls. Sources
// rotate round-robin; IDs are the emission sequence (provisional — the
// indexer assigns global IDs at ingest time).
//
// A Stream is not safe for concurrent use; give each goroutine its own
// (distinct seeds give independent feeds).
type Stream struct {
	gen *generator
	n   int // documents emitted

	// Rate control: emissions are paced to one per interval, measured
	// from the previous emission (a feed, not a token bucket — no
	// bursts after a quiet spell). Zero interval means unthrottled.
	interval time.Duration
	next     time.Time
	now      func() time.Time    // test seam
	sleep    func(time.Duration) // test seam
}

// NewStream opens a deterministic article stream over the world. The
// seed overrides cfg.Seed, mirroring GenerateBatch: equal (world, cfg,
// seed) means an identical stream, independent of the seed corpus.
func NewStream(g *kg.Graph, meta *kggen.Meta, cfg Config, seed uint64) (*Stream, error) {
	cfg.Seed = seed
	if cfg.Docs == nil {
		cfg.Docs = Tiny().Docs
	}
	if cfg.OOV == nil {
		cfg.OOV = defaultOOV()
	}
	if cfg.DistractorRate <= 0 {
		cfg.DistractorRate = 0.12
	}
	gen, err := newGenerator(g, meta, cfg)
	if err != nil {
		return nil, err
	}
	return &Stream{gen: gen, now: time.Now, sleep: time.Sleep}, nil
}

// SetRate throttles the stream to docsPerSec documents per second
// (applied from the next emission); zero or negative removes the
// throttle. Pacing never changes WHAT is emitted, only when.
func (s *Stream) SetRate(docsPerSec float64) {
	if docsPerSec <= 0 {
		s.interval = 0
		return
	}
	s.interval = time.Duration(float64(time.Second) / docsPerSec)
	s.next = s.now().Add(s.interval)
}

// Next emits the stream's next document, sleeping first if a rate is
// set and the feed is ahead of schedule.
func (s *Stream) Next() Document {
	if s.interval > 0 {
		if wait := s.next.Sub(s.now()); wait > 0 {
			s.sleep(wait)
		}
		// Schedule from the planned slot, not from wake-up time, so
		// oversleep on one document does not shrink the long-run rate.
		s.next = s.next.Add(s.interval)
	}
	doc := s.gen.article(Sources[s.n%len(Sources)])
	doc.ID = DocID(s.n)
	s.n++
	return doc
}

// NextBatch emits the next n documents. The slice is freshly allocated
// and owned by the caller; the stream keeps no reference to it.
func (s *Stream) NextBatch(n int) []Document {
	docs := make([]Document, n)
	for i := range docs {
		docs[i] = s.Next()
	}
	return docs
}

// Emitted returns how many documents the stream has produced.
func (s *Stream) Emitted() int { return s.n }
