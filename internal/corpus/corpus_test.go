package corpus

import (
	"strings"
	"testing"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
	"ncexplorer/internal/nlp"
)

func world(t testing.TB) (*kg.Graph, *kggen.Meta, *Corpus) {
	t.Helper()
	g, meta := kggen.MustGenerate(kggen.Tiny())
	c := MustGenerate(g, meta, Tiny())
	return g, meta, c
}

func TestGenerateCounts(t *testing.T) {
	_, _, c := world(t)
	cfg := Tiny()
	want := cfg.Docs[SeekingAlpha] + cfg.Docs[NYT] + cfg.Docs[Reuters]
	if c.Len() != want {
		t.Fatalf("corpus size = %d, want %d", c.Len(), want)
	}
	for _, src := range Sources {
		if got := len(c.BySource(src)); got != cfg.Docs[src] {
			t.Errorf("%s count = %d, want %d", src, got, cfg.Docs[src])
		}
	}
	for i := range c.Docs {
		if c.Docs[i].ID != DocID(i) {
			t.Fatalf("doc %d has ID %d", i, c.Docs[i].ID)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g, meta := kggen.MustGenerate(kggen.Tiny())
	c1 := MustGenerate(g, meta, Tiny())
	c2 := MustGenerate(g, meta, Tiny())
	if c1.Len() != c2.Len() {
		t.Fatal("sizes differ")
	}
	for i := range c1.Docs {
		if c1.Docs[i].Title != c2.Docs[i].Title || c1.Docs[i].Body != c2.Docs[i].Body {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
	cfg := Tiny()
	cfg.Seed = 999
	c3 := MustGenerate(g, meta, cfg)
	diff := 0
	for i := range c1.Docs {
		if c1.Docs[i].Title != c3.Docs[i].Title {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical corpus")
	}
}

func TestDocumentsHaveContent(t *testing.T) {
	_, _, c := world(t)
	for i := range c.Docs {
		d := &c.Docs[i]
		if d.Title == "" || len(d.Body) < 80 {
			t.Fatalf("doc %d underfilled: title=%q len(body)=%d", i, d.Title, len(d.Body))
		}
		if strings.Contains(d.Title, "{") || strings.Contains(d.Body, "{") {
			t.Fatalf("doc %d has unfilled slot: %q / %q", i, d.Title, d.Body)
		}
		if len(d.GoldEntities) == 0 {
			t.Fatalf("doc %d has no gold entities", i)
		}
	}
}

func TestGoldLabelsSane(t *testing.T) {
	_, _, c := world(t)
	topical := 0
	for i := range c.Docs {
		d := &c.Docs[i]
		for _, grade := range d.Topics {
			if grade < 0 || grade > 5 {
				t.Fatalf("doc %d grade out of range: %v", i, grade)
			}
		}
		if !d.Distractor {
			topical++
			// Non-distractors must have at least one strong topic.
			best := 0.0
			for _, grade := range d.Topics {
				if grade > best {
					best = grade
				}
			}
			if best < 4.0 {
				t.Fatalf("doc %d best grade = %v, want ≥4 for topical doc", i, best)
			}
		}
	}
	if topical == 0 {
		t.Fatal("no topical documents generated")
	}
}

func TestDistractorsPresent(t *testing.T) {
	_, _, c := world(t)
	n := 0
	for i := range c.Docs {
		if c.Docs[i].Distractor {
			n++
			for _, grade := range c.Docs[i].Topics {
				if grade > 2.0 {
					t.Fatalf("distractor %d has strong topic grade %v", i, grade)
				}
			}
		}
	}
	frac := float64(n) / float64(c.Len())
	if frac < 0.04 || frac > 0.25 {
		t.Errorf("distractor fraction = %v, want near 0.12", frac)
	}
}

func TestGoldEntitiesAreMentioned(t *testing.T) {
	// Focus entities must actually appear in the text (by name or
	// alias) so that entity linking can rediscover them.
	g, _, c := world(t)
	missed := 0
	checked := 0
	for i := range c.Docs {
		d := &c.Docs[i]
		text := d.Text()
		for _, e := range d.GoldEntities {
			checked++
			if strings.Contains(text, g.Name(e)) {
				continue
			}
			found := false
			for _, al := range g.Aliases(e) {
				if strings.Contains(text, al) {
					found = true
					break
				}
			}
			if !found {
				missed++
			}
		}
	}
	// Template sentence subsets may omit a slot occasionally; a small
	// miss rate is tolerable, a large one means broken templates.
	if float64(missed) > 0.30*float64(checked) {
		t.Errorf("%d/%d gold entities not found in text", missed, checked)
	}
}

func TestEvalTopicsCovered(t *testing.T) {
	// Every Table-I query (topic concept + group concept) must have a
	// reasonable number of on-topic documents mentioning group members.
	g, meta, c := world(t)
	for _, topic := range meta.Topics {
		hits := 0
		for i := range c.Docs {
			d := &c.Docs[i]
			if d.Gold(topic.Concept) < 3.5 {
				continue
			}
			for _, e := range d.GoldEntities {
				if inGroup(e, topic.Group) {
					hits++
					break
				}
			}
		}
		if hits < 3 {
			t.Errorf("topic %q has only %d on-topic docs with group entities", topic.Name, hits)
		}
		_ = g
	}
}

func inGroup(v kg.NodeID, grp []kg.NodeID) bool {
	for _, x := range grp {
		if x == v {
			return true
		}
	}
	return false
}

func TestLinkedRatioPerSource(t *testing.T) {
	// Reproduces the shape of the paper's dataset table: every source
	// links a substantial majority-but-not-all of mentions, with
	// reuters the lowest (paper: 51% vs 63.9% / 68.6%).
	g, _, c := world(t)
	linker := nlp.NewLinker(g)
	ratios := map[Source]float64{}
	for _, src := range Sources {
		var linked, total int
		for _, d := range c.BySource(src) {
			ann := linker.Annotate(d.Text())
			linked += len(ann.Mentions)
			total += ann.TotalMentions()
		}
		if total == 0 {
			t.Fatalf("%s produced no mentions", src)
		}
		ratios[src] = float64(linked) / float64(total)
		if ratios[src] < 0.35 || ratios[src] > 0.95 {
			t.Errorf("%s linked ratio = %.2f, want within (0.35, 0.95)", src, ratios[src])
		}
	}
	if ratios[Reuters] >= ratios[SeekingAlpha] || ratios[Reuters] >= ratios[NYT] {
		t.Errorf("reuters should have the lowest linked ratio: %v", ratios)
	}
}

func TestSentenceLengthBySource(t *testing.T) {
	_, _, c := world(t)
	avg := map[Source]float64{}
	for _, src := range Sources {
		docs := c.BySource(src)
		total := 0
		for _, d := range docs {
			total += len(nlp.Sentences(d.Body))
		}
		avg[src] = float64(total) / float64(len(docs))
	}
	if avg[NYT] <= avg[SeekingAlpha] {
		t.Errorf("NYT articles should be longer than seekingalpha: %v", avg)
	}
}

func TestSourceStats(t *testing.T) {
	s := SourceStats{Source: Reuters, Articles: 10, TotalMentions: 100, LinkedMentions: 51}
	if r := s.LinkedRatio(); r != 0.51 {
		t.Errorf("ratio = %v", r)
	}
	empty := SourceStats{}
	if empty.LinkedRatio() != 0 {
		t.Error("empty ratio should be 0")
	}
}

func TestDocHelpers(t *testing.T) {
	d := Document{
		Title:        "T",
		Body:         "B",
		Topics:       map[kg.NodeID]float64{3: 4.5},
		GoldEntities: []kg.NodeID{7},
	}
	if d.Text() != "T. B" {
		t.Errorf("Text() = %q", d.Text())
	}
	if d.Gold(3) != 4.5 || d.Gold(4) != 0 {
		t.Error("Gold lookup wrong")
	}
	if !d.MentionsGold(7) || d.MentionsGold(8) {
		t.Error("MentionsGold wrong")
	}
}

func BenchmarkGenerateTinyCorpus(b *testing.B) {
	g, meta := kggen.MustGenerate(kggen.Tiny())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustGenerate(g, meta, Tiny())
	}
}
