package reach

import (
	"testing"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/xrand"
)

// chain builds a path graph a0—a1—…—a5.
func chain(t testing.TB, n int) (*kg.Graph, []kg.NodeID) {
	t.Helper()
	b := kg.NewBuilder()
	ids := make([]kg.NodeID, n)
	for i := range ids {
		ids[i] = b.AddInstance("a" + string(rune('0'+i)))
	}
	for i := 1; i < n; i++ {
		b.AddInstanceEdge(ids[i-1], ids[i])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, ids
}

func TestDistTo(t *testing.T) {
	g, ids := chain(t, 6)
	ix := New(g, 3, 0)
	d := ix.DistTo(ids[0])
	want := []int16{0, 1, 2, 3, Unreachable, Unreachable}
	for i, w := range want {
		if d[ids[i]] != w {
			t.Errorf("dist(a%d→a0) = %d, want %d", i, d[ids[i]], w)
		}
	}
}

func TestWithin(t *testing.T) {
	g, ids := chain(t, 6)
	ix := New(g, 3, 0)
	cases := []struct {
		x, v kg.NodeID
		r    int
		want bool
	}{
		{ids[2], ids[0], 2, true},
		{ids[2], ids[0], 1, false},
		{ids[3], ids[0], 3, true},
		{ids[4], ids[0], 3, false}, // distance 4 > k
		{ids[4], ids[0], 9, false}, // r clamps to k
		{ids[0], ids[0], 0, true},
		{ids[1], ids[0], -1, false},
	}
	for _, c := range cases {
		if got := ix.Within(c.x, c.v, c.r); got != c.want {
			t.Errorf("Within(%d,%d,%d) = %v, want %v", c.x, c.v, c.r, got, c.want)
		}
	}
}

func TestCacheAndEviction(t *testing.T) {
	g, ids := chain(t, 6)
	ix := New(g, 2, 2)
	ix.DistTo(ids[0])
	ix.DistTo(ids[1])
	if ix.CachedTargets() != 2 {
		t.Fatalf("cached = %d", ix.CachedTargets())
	}
	ix.DistTo(ids[2]) // evicts ids[0]
	if ix.CachedTargets() != 2 {
		t.Fatalf("cache exceeded cap: %d", ix.CachedTargets())
	}
	// Re-querying evicted target still answers correctly.
	d := ix.DistTo(ids[0])
	if d[ids[1]] != 1 {
		t.Fatal("post-eviction rebuild wrong")
	}
}

func TestTableStability(t *testing.T) {
	g, ids := chain(t, 4)
	ix := New(g, 2, 0)
	t1 := ix.DistTo(ids[0])
	t2 := ix.DistTo(ids[0])
	if &t1[0] != &t2[0] {
		t.Error("cached table should be shared")
	}
}

func TestPrecompute(t *testing.T) {
	g, ids := chain(t, 5)
	ix := New(g, 2, 0)
	bytes := ix.Precompute(ids[:3])
	if ix.CachedTargets() != 3 {
		t.Fatalf("cached = %d", ix.CachedTargets())
	}
	if bytes != int64(3*g.NumNodes()*2) {
		t.Fatalf("bytes = %d", bytes)
	}
}

func TestDistMatchesBFSOnRandomGraphs(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		r := xrand.New(seed)
		b := kg.NewBuilder()
		const n = 30
		ids := make([]kg.NodeID, n)
		for i := range ids {
			ids[i] = b.AddInstance("x" + string(rune('A'+i%26)) + string(rune('0'+i/26)))
		}
		for e := 0; e < 50; e++ {
			b.AddInstanceEdge(ids[r.Intn(n)], ids[r.Intn(n)])
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		const k = 3
		ix := New(g, k, 0)
		v := ids[r.Intn(n)]
		d := ix.DistTo(v)
		ref := bfs(g, v, k)
		for i, id := range ids {
			if d[id] != ref[id] {
				t.Fatalf("seed %d node %d: dist %d, want %d", seed, i, d[id], ref[id])
			}
		}
	}
}

func bfs(g *kg.Graph, v kg.NodeID, k int) []int16 {
	d := make([]int16, g.NumNodes())
	for i := range d {
		d[i] = Unreachable
	}
	d[v] = 0
	frontier := []kg.NodeID{v}
	for depth := 1; depth <= k; depth++ {
		var next []kg.NodeID
		for _, x := range frontier {
			for _, y := range g.InstanceNeighbors(x) {
				if d[y] == Unreachable {
					d[y] = int16(depth)
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	return d
}

func TestConcurrentAccess(t *testing.T) {
	g, ids := chain(t, 6)
	ix := New(g, 3, 2)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				_ = ix.DistTo(ids[(w+i)%len(ids)])
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func BenchmarkDistToCold(b *testing.B) {
	r := xrand.New(1)
	bl := kg.NewBuilder()
	const n = 5000
	ids := make([]kg.NodeID, n)
	for i := range ids {
		ids[i] = bl.AddInstance("n" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)))
	}
	for e := 0; e < n*4; e++ {
		bl.AddInstanceEdge(ids[r.Intn(n)], ids[r.Intn(n)])
	}
	g, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New(g, 2, 1)
		ix.DistTo(ids[i%n])
	}
}
