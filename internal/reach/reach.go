// Package reach implements the k-hop reachability index (§III-C of the
// paper, citing Cheng et al.) that guides the random-walk connectivity
// estimator: when a walk targeting context entity v has r hops of
// budget left, only neighbours y with dist(y, v) ≤ r−1 are *eligible* —
// every other choice is a guaranteed dead end. Restricting sampling to
// eligible neighbours preserves unbiasedness (every simple path to v
// consists solely of eligible steps) while eliminating most zero-valued
// walks, which is what makes the estimator converge within ~20 samples
// in Fig. 7.
//
// The index stores, per target node, the exact BFS distance (capped at
// k) from every instance node to the target. Entries are materialised
// on demand and cached with bounded capacity; Precompute builds entries
// ahead of time for a known target set (the analogue of the paper's
// offline 260 s / 100 GB construction over full DBpedia, reported by
// the E9 benchmark at this repo's scale).
package reach

import (
	"sync"

	"ncexplorer/internal/kg"
)

// Unreachable marks nodes farther than k hops from the target.
const Unreachable = int16(-1)

// Index is a bounded cache of capped-distance tables. Safe for
// concurrent use.
type Index struct {
	g *kg.Graph
	k int

	mu    sync.Mutex
	cache map[kg.NodeID][]int16
	order []kg.NodeID // FIFO eviction order
	cap   int
}

// New returns an index answering "dist(x, target) ≤ r?" queries for
// r ≤ k. maxCached bounds the number of resident target tables
// (0 ⇒ a generous default).
func New(g *kg.Graph, k, maxCached int) *Index {
	if k < 1 {
		panic("reach: k must be ≥ 1")
	}
	if maxCached <= 0 {
		maxCached = 4096
	}
	return &Index{g: g, k: k, cache: make(map[kg.NodeID][]int16), cap: maxCached}
}

// K returns the hop cap of the index.
func (ix *Index) K() int { return ix.k }

// DistTo returns the capped-distance table for target v: table[x] is
// the BFS distance from x to v if ≤ k, else Unreachable. The table is
// shared and must not be modified.
func (ix *Index) DistTo(v kg.NodeID) []int16 {
	ix.mu.Lock()
	if t, ok := ix.cache[v]; ok {
		ix.mu.Unlock()
		return t
	}
	ix.mu.Unlock()

	t := ix.build(v)

	ix.mu.Lock()
	if len(ix.order) >= ix.cap {
		evict := ix.order[0]
		ix.order = ix.order[1:]
		delete(ix.cache, evict)
	}
	if _, dup := ix.cache[v]; !dup {
		ix.cache[v] = t
		ix.order = append(ix.order, v)
	}
	ix.mu.Unlock()
	return t
}

func (ix *Index) build(v kg.NodeID) []int16 {
	t := make([]int16, ix.g.NumNodes())
	for i := range t {
		t[i] = Unreachable
	}
	t[v] = 0
	frontier := []kg.NodeID{v}
	for d := 1; d <= ix.k; d++ {
		var next []kg.NodeID
		for _, x := range frontier {
			for _, y := range ix.g.InstanceNeighbors(x) {
				if t[y] == Unreachable {
					t[y] = int16(d)
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	return t
}

// Within reports whether dist(x, v) ≤ r using the index (r is clamped
// to k; the index cannot answer beyond its cap).
func (ix *Index) Within(x, v kg.NodeID, r int) bool {
	if r < 0 {
		return false
	}
	if r > ix.k {
		r = ix.k
	}
	d := ix.DistTo(v)[x]
	return d != Unreachable && int(d) <= r
}

// Precompute materialises the tables for all targets, reporting the
// total bytes resident afterwards. Used by construction benchmarks and
// by callers that know their context-entity set up front.
func (ix *Index) Precompute(targets []kg.NodeID) int64 {
	var bytes int64
	for _, v := range targets {
		t := ix.DistTo(v)
		bytes += int64(len(t)) * 2
	}
	return bytes
}

// CachedTargets returns the number of resident tables.
func (ix *Index) CachedTargets() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.cache)
}
