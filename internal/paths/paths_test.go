package paths

import (
	"testing"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/xrand"
)

// diamond builds:  a—b—d, a—c—d, a—d  (so a→d has one 1-hop path and
// two 2-hop paths), plus a pendant e—b.
func diamond(t testing.TB) (*kg.Graph, map[string]kg.NodeID) {
	t.Helper()
	b := kg.NewBuilder()
	ids := map[string]kg.NodeID{}
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		ids[n] = b.AddInstance(n)
	}
	b.AddInstanceEdge(ids["a"], ids["b"])
	b.AddInstanceEdge(ids["a"], ids["c"])
	b.AddInstanceEdge(ids["a"], ids["d"])
	b.AddInstanceEdge(ids["b"], ids["d"])
	b.AddInstanceEdge(ids["c"], ids["d"])
	b.AddInstanceEdge(ids["e"], ids["b"])
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, ids
}

func TestCountDiamond(t *testing.T) {
	g, ids := diamond(t)
	c := NewCounter(g)
	counts := c.Count(ids["a"], ids["d"], 3)
	if counts[1] != 1 {
		t.Errorf("1-hop paths = %d, want 1", counts[1])
	}
	if counts[2] != 2 {
		t.Errorf("2-hop paths = %d, want 2", counts[2])
	}
	// 3-hop simple paths a→d: a-b-?-d with ? ∉ {a,b}: b's neighbours are
	// a,d,e; e has no edge to d ⇒ none via b... but a-c-?-d similarly
	// none. Hmm: a-b-d is 2 hops. 3-hop: a-c-d? no that's 2.
	// Simple 3-hop paths: e.g. a-b-e-d? e-d missing. So 0? No wait:
	// a→b→d is length 2; a→c→d length 2; length-3 would need 2
	// intermediates; candidates: b,c (e unconnected to d). a-b-?-d where
	// ?∈nbrs(b)\{a,d}={e}: e-d absent. a-c-?-d where ?∈nbrs(c)\{a,d}=∅.
	if counts[3] != 0 {
		t.Errorf("3-hop paths = %d, want 0", counts[3])
	}
}

func TestCountRespectsTau(t *testing.T) {
	g, ids := diamond(t)
	c := NewCounter(g)
	counts := c.Count(ids["a"], ids["d"], 1)
	if len(counts) != 2 || counts[1] != 1 {
		t.Errorf("tau=1 counts = %v", counts)
	}
	// e→d: shortest is e-b-d (2) and e-b-a-d (3).
	counts = c.Count(ids["e"], ids["d"], 1)
	if counts[1] != 0 {
		t.Errorf("e→d 1-hop = %d, want 0", counts[1])
	}
	counts = c.Count(ids["e"], ids["d"], 3)
	if counts[2] != 1 || counts[3] != 2 {
		// e-b-d (2); 3-hop: e-b-a-d ✓. Other 3-hop: none via c.
		// Wait: e-b-a-d is one. counts[3] should be 1.
		t.Logf("counts = %v", counts)
	}
	if counts[2] != 1 {
		t.Errorf("e→d 2-hop = %d, want 1", counts[2])
	}
	if counts[3] != 1 {
		t.Errorf("e→d 3-hop = %d, want 1 (e-b-a-d)", counts[3])
	}
}

func TestCountSameNodeAndUnreachable(t *testing.T) {
	g, ids := diamond(t)
	c := NewCounter(g)
	counts := c.Count(ids["a"], ids["a"], 3)
	for l, n := range counts {
		if n != 0 {
			t.Errorf("u==v counts[%d] = %d", l, n)
		}
	}
	// Disconnected node.
	b := kg.NewBuilder()
	x := b.AddInstance("x")
	y := b.AddInstance("y")
	z := b.AddInstance("z")
	b.AddInstanceEdge(x, y)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCounter(g2)
	counts = c2.Count(x, z, 3)
	for l, n := range counts {
		if n != 0 {
			t.Errorf("unreachable counts[%d] = %d", l, n)
		}
	}
}

func TestWeightedCount(t *testing.T) {
	g, ids := diamond(t)
	c := NewCounter(g)
	// a→d: 1 path @ l=1, 2 paths @ l=2 ⇒ 0.5·1 + 0.25·2 = 1.0
	got := c.WeightedCount(ids["a"], ids["d"], 2, 0.5)
	if got != 1.0 {
		t.Errorf("weighted count = %v, want 1.0", got)
	}
}

func TestEnumerateMatchesCount(t *testing.T) {
	g, ids := diamond(t)
	c := NewCounter(g)
	for _, pair := range [][2]string{{"a", "d"}, {"e", "d"}, {"b", "c"}} {
		u, v := ids[pair[0]], ids[pair[1]]
		counts := c.Count(u, v, 3)
		var total int64
		for _, n := range counts {
			total += n
		}
		seen := map[string]bool{}
		n := 0
		c.Enumerate(u, v, 3, func(path []kg.NodeID) bool {
			n++
			key := ""
			for _, p := range path {
				key += g.Name(p) + "/"
			}
			if seen[key] {
				t.Errorf("duplicate path %s", key)
			}
			seen[key] = true
			if path[0] != u || path[len(path)-1] != v {
				t.Errorf("path endpoints wrong: %s", key)
			}
			return true
		})
		if int64(n) != total {
			t.Errorf("%s→%s enumerated %d, counted %d", pair[0], pair[1], n, total)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g, ids := diamond(t)
	c := NewCounter(g)
	n := 0
	c.Enumerate(ids["a"], ids["d"], 3, func([]kg.NodeID) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d paths", n)
	}
}

// Property: counts from the pruned DFS match a brute-force enumeration
// without pruning, on random graphs.
func TestCountMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		r := xrand.New(seed)
		b := kg.NewBuilder()
		const n = 12
		ids := make([]kg.NodeID, n)
		for i := range ids {
			ids[i] = b.AddInstance(string(rune('a' + i)))
		}
		for e := 0; e < 20; e++ {
			b.AddInstanceEdge(ids[r.Intn(n)], ids[r.Intn(n)])
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		c := NewCounter(g)
		u, v := ids[r.Intn(n)], ids[r.Intn(n)]
		for tau := 1; tau <= 4; tau++ {
			got := c.Count(u, v, tau)
			want := bruteForce(g, u, v, tau)
			for l := 1; l <= tau; l++ {
				if got[l] != want[l] {
					t.Fatalf("seed %d τ=%d l=%d: got %d, want %d", seed, tau, l, got[l], want[l])
				}
			}
		}
	}
}

// bruteForce counts simple paths with a plain DFS, no pruning.
func bruteForce(g *kg.Graph, u, v kg.NodeID, tau int) []int64 {
	counts := make([]int64, tau+1)
	if u == v {
		return counts
	}
	visited := map[kg.NodeID]bool{u: true}
	var dfs func(cur kg.NodeID, depth int)
	dfs = func(cur kg.NodeID, depth int) {
		if depth >= tau {
			return
		}
		for _, y := range g.InstanceNeighbors(cur) {
			if y == v {
				counts[depth+1]++
				continue
			}
			if visited[y] {
				continue
			}
			visited[y] = true
			dfs(y, depth+1)
			visited[y] = false
		}
	}
	dfs(u, 0)
	return counts
}

func BenchmarkCountTau3(b *testing.B) {
	r := xrand.New(1)
	bl := kg.NewBuilder()
	const n = 2000
	ids := make([]kg.NodeID, n)
	for i := range ids {
		ids[i] = bl.AddInstance(names(i))
	}
	for e := 0; e < n*4; e++ {
		bl.AddInstanceEdge(ids[r.Intn(n)], ids[r.Intn(n)])
	}
	g, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	c := NewCounter(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Count(ids[i%n], ids[(i*7+13)%n], 3)
	}
}

func names(i int) string {
	return "n" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + string(rune('0'+i%10))
}
