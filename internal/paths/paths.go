// Package paths implements exact hop-constrained s-t simple path
// counting on the KG instance space. The connectivity score (Eq. 4 of
// the paper) is defined over |paths^⟨l⟩(u,v)| — the number of simple
// paths of length l ≤ τ between an extent entity u and a context entity
// v. Exact enumeration is the expensive operation the paper's sampling
// estimator replaces; this package provides the ground truth for the
// estimator's correctness tests and for the Fig. 6/7 experiments.
//
// The core is a depth-first enumeration with two prunings:
//
//   - visited-set pruning (simple paths only), and
//   - distance pruning: a reverse BFS from the target computes
//     dist(x, v); a branch is abandoned when dist exceeds the remaining
//     hop budget. This is the same reachability information the paper's
//     index provides to the random-walk sampler.
package paths

import (
	"ncexplorer/internal/kg"
)

// Counter performs exact path counting with reusable scratch space.
// Not safe for concurrent use; create one per goroutine.
type Counter struct {
	g       *kg.Graph
	visited []bool
	dist    []int16
	distFor kg.NodeID
	distHzn int
	counts  []int64
}

// NewCounter returns a counter over the graph's instance space.
func NewCounter(g *kg.Graph) *Counter {
	return &Counter{
		g:       g,
		visited: make([]bool, g.NumNodes()),
		dist:    make([]int16, g.NumNodes()),
		distFor: kg.InvalidNode,
	}
}

// unreachable marks nodes farther than the horizon in the dist table.
const unreachable = int16(-1)

// distancesTo fills c.dist with BFS distances to target v, capped at
// horizon (−1 beyond). Cached while the target is unchanged and the
// horizon does not grow.
func (c *Counter) distancesTo(v kg.NodeID, horizon int) {
	if c.distFor == v && horizon <= c.distHzn {
		return
	}
	for i := range c.dist {
		c.dist[i] = unreachable
	}
	c.dist[v] = 0
	frontier := []kg.NodeID{v}
	for d := 1; d <= horizon; d++ {
		var next []kg.NodeID
		for _, x := range frontier {
			for _, y := range c.g.InstanceNeighbors(x) {
				if c.dist[y] == unreachable {
					c.dist[y] = int16(d)
					next = append(next, y)
				}
			}
		}
		frontier = next
	}
	c.distFor = v
	c.distHzn = horizon
}

// Count returns counts[l] = number of simple paths of exactly l edges
// from u to v in the instance space, for l = 1..tau (counts[0] is
// always 0; the returned slice has length tau+1). u and v must be
// instance nodes; u == v yields all zeros (a trivial path has length 0,
// which the connectivity score ignores).
func (c *Counter) Count(u, v kg.NodeID, tau int) []int64 {
	if tau < 1 {
		return make([]int64, 1)
	}
	c.counts = make([]int64, tau+1)
	if u == v {
		return c.counts
	}
	c.distancesTo(v, tau)
	if c.dist[u] == unreachable || int(c.dist[u]) > tau {
		return c.counts
	}
	c.visited[u] = true
	c.dfs(u, v, 0, tau)
	c.visited[u] = false
	return c.counts
}

func (c *Counter) dfs(cur, target kg.NodeID, depth, tau int) {
	for _, y := range c.g.InstanceNeighbors(cur) {
		if y == target {
			c.counts[depth+1]++
			continue
		}
		if c.visited[y] || depth+1 >= tau {
			continue
		}
		// Distance pruning: y must still be able to reach the target
		// within the remaining budget.
		if c.dist[y] == unreachable || int(c.dist[y]) > tau-depth-1 {
			continue
		}
		c.visited[y] = true
		c.dfs(y, target, depth+1, tau)
		c.visited[y] = false
	}
}

// WeightedCount returns Σ_{l=1..tau} β^l · |paths^⟨l⟩(u, v)| — the inner
// term of the connectivity score for one (u, v) pair.
func (c *Counter) WeightedCount(u, v kg.NodeID, tau int, beta float64) float64 {
	counts := c.Count(u, v, tau)
	sum := 0.0
	w := 1.0
	for l := 1; l <= tau; l++ {
		w *= beta
		sum += w * float64(counts[l])
	}
	return sum
}

// Enumerate calls fn with every simple path (as a node sequence
// u … v, including endpoints) of length ≤ tau. The slice passed to fn
// is reused; copy it to retain. Enumeration stops early if fn returns
// false. Intended for tests and small graphs.
func (c *Counter) Enumerate(u, v kg.NodeID, tau int, fn func(path []kg.NodeID) bool) {
	if tau < 1 || u == v {
		return
	}
	c.distancesTo(v, tau)
	if c.dist[u] == unreachable || int(c.dist[u]) > tau {
		return
	}
	path := make([]kg.NodeID, 1, tau+1)
	path[0] = u
	c.visited[u] = true
	c.enumDFS(u, v, tau, &path, fn)
	c.visited[u] = false
}

func (c *Counter) enumDFS(cur, target kg.NodeID, tau int, path *[]kg.NodeID, fn func([]kg.NodeID) bool) bool {
	depth := len(*path) - 1
	for _, y := range c.g.InstanceNeighbors(cur) {
		if y == target {
			*path = append(*path, y)
			ok := fn(*path)
			*path = (*path)[:len(*path)-1]
			if !ok {
				return false
			}
			continue
		}
		if c.visited[y] || depth+1 >= tau {
			continue
		}
		if c.dist[y] == unreachable || int(c.dist[y]) > tau-depth-1 {
			continue
		}
		c.visited[y] = true
		*path = append(*path, y)
		ok := c.enumDFS(y, target, tau, path, fn)
		*path = (*path)[:len(*path)-1]
		c.visited[y] = false
		if !ok {
			return false
		}
	}
	return true
}
