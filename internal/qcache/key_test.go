package qcache

import "testing"

// TestKeyBuilderUnambiguous pins the collision-freedom of the typed
// key encoding: part boundaries cannot be forged by crafted strings,
// and list structure is part of the key.
func TestKeyBuilderUnambiguous(t *testing.T) {
	key := func(build func(*KeyBuilder)) string {
		var kb KeyBuilder
		build(&kb)
		return kb.String()
	}
	pairs := [][2]string{
		{
			key(func(k *KeyBuilder) { k.Str("ab").Str("c") }),
			key(func(k *KeyBuilder) { k.Str("a").Str("bc") }),
		},
		{
			key(func(k *KeyBuilder) { k.Str("a|b") }),
			key(func(k *KeyBuilder) { k.Str("a").Str("b") }),
		},
		{
			key(func(k *KeyBuilder) { k.Strs([]string{"ab"}) }),
			key(func(k *KeyBuilder) { k.Strs([]string{"a", "b"}) }),
		},
		{
			key(func(k *KeyBuilder) { k.Str("1:x") }),
			key(func(k *KeyBuilder) { k.Int(1).Str("x") }),
		},
		{
			key(func(k *KeyBuilder) { k.Int(12) }),
			key(func(k *KeyBuilder) { k.Int(1).Int(2) }),
		},
		{
			key(func(k *KeyBuilder) { k.Bool(true) }),
			key(func(k *KeyBuilder) { k.Bool(false) }),
		},
		{
			key(func(k *KeyBuilder) { k.Float(1.5) }),
			key(func(k *KeyBuilder) { k.Float(1.25) }),
		},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d collides: %q", i, p[0])
		}
	}

	// Identical part sequences produce identical keys.
	a := key(func(k *KeyBuilder) { k.Str("op").Int(5).Strs([]string{"x", "y"}).Bool(true) })
	b := key(func(k *KeyBuilder) { k.Str("op").Int(5).Strs([]string{"x", "y"}).Bool(true) })
	if a != b {
		t.Fatalf("deterministic build differs: %q vs %q", a, b)
	}
}
