package qcache

import (
	"strconv"
	"strings"
)

// KeyBuilder assembles collision-free cache keys from typed parts.
// Every part is written with an unambiguous encoding (strings are
// length-prefixed, numbers rendered canonically), so two distinct part
// sequences can never produce the same key no matter what bytes a
// user-supplied string contains. The paginated v2 query endpoints key
// their cache entries on the full request shape — operation, concept
// set, k, offset, filters, explain flag — through this type.
//
// The zero value is ready to use. A KeyBuilder must not be reused
// after String.
type KeyBuilder struct {
	b strings.Builder
}

// Str appends a length-prefixed string part.
func (k *KeyBuilder) Str(s string) *KeyBuilder {
	k.b.WriteString(strconv.Itoa(len(s)))
	k.b.WriteByte(':')
	k.b.WriteString(s)
	k.b.WriteByte('|')
	return k
}

// Strs appends a list of string parts with its own length prefix, so
// ["ab"] and ["a","b"] cannot collide.
func (k *KeyBuilder) Strs(ss []string) *KeyBuilder {
	k.b.WriteByte('[')
	k.b.WriteString(strconv.Itoa(len(ss)))
	k.b.WriteByte('|')
	for _, s := range ss {
		k.Str(s)
	}
	k.b.WriteByte(']')
	return k
}

// Int appends an integer part.
func (k *KeyBuilder) Int(i int) *KeyBuilder {
	k.b.WriteString(strconv.Itoa(i))
	k.b.WriteByte('|')
	return k
}

// Float appends a float part in the shortest round-trippable form.
func (k *KeyBuilder) Float(f float64) *KeyBuilder {
	k.b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	k.b.WriteByte('|')
	return k
}

// Bool appends a boolean part.
func (k *KeyBuilder) Bool(v bool) *KeyBuilder {
	if v {
		k.b.WriteByte('T')
	} else {
		k.b.WriteByte('F')
	}
	k.b.WriteByte('|')
	return k
}

// String returns the assembled key.
func (k *KeyBuilder) String() string { return k.b.String() }
