package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPutGetLRUEviction(t *testing.T) {
	c := New(1, 2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Fatalf("b = %v, %v; want 2, true", v, ok)
	}
	// b is now most recently used, so adding d evicts c.
	c.Put("d", 4)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c should have been evicted after b was promoted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should have survived")
	}
	st := c.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d; want 2", st.Evictions)
	}
	if st.Entries != 2 || c.Len() != 2 {
		t.Fatalf("entries = %d, len = %d; want 2, 2", st.Entries, c.Len())
	}
}

func TestPutOverwrite(t *testing.T) {
	c := New(1, 2)
	c.Put("k", "old")
	c.Put("k", "new")
	if v, _ := c.Get("k"); v.(string) != "new" {
		t.Fatalf("got %v; want new", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d; want 1", c.Len())
	}
}

func TestDoMissThenHit(t *testing.T) {
	c := New(4, 8)
	calls := 0
	fill := func() (any, error) { calls++; return "value", nil }
	v, hit, err := c.Do("k", fill)
	if err != nil || hit || v.(string) != "value" {
		t.Fatalf("first Do = %v, %v, %v; want value, false, nil", v, hit, err)
	}
	v, hit, err = c.Do("k", fill)
	if err != nil || !hit || v.(string) != "value" {
		t.Fatalf("second Do = %v, %v, %v; want value, true, nil", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("fill ran %d times; want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss", st)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(1, 8)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do("k", func() (any, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result must not be cached")
	}
	v, hit, err := c.Do("k", func() (any, error) { calls++; return 7, nil })
	if err != nil || hit || v.(int) != 7 {
		t.Fatalf("retry Do = %v, %v, %v; want 7, false, nil", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("fill ran %d times; want 2", calls)
	}
}

func TestDoPanicReleasesWaiters(t *testing.T) {
	c := New(1, 8)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.Do("k", func() (any, error) {
			close(entered)
			<-release
			panic("poisoned fill")
		})
	}()
	<-entered
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do("k", func() (any, error) { return nil, nil })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter coalesce
	close(release)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("coalesced waiter should observe the panic as an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coalesced waiter deadlocked on panicking fill")
	}
	if c.Len() != 0 {
		t.Fatal("panicking fill must not populate the cache")
	}
}

// TestSingleflight launches many concurrent Do calls for one cold key
// and requires that exactly one executes the fill. Run with -race.
func TestSingleflight(t *testing.T) {
	c := New(8, 16)
	var calls atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	fill := func() (any, error) {
		calls.Add(1)
		close(entered)
		<-release
		return "shared", nil
	}

	first := make(chan string, 1)
	go func() {
		v, _, _ := c.Do("hot", fill)
		first <- v.(string)
	}()
	<-entered // fill is in flight; everyone below must coalesce or hit

	const waiters = 50
	results := make(chan string, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, served, err := c.Do("hot", fill)
			if err != nil {
				t.Error(err)
				return
			}
			if !served {
				t.Error("waiter should not have executed the fill")
			}
			results <- v.(string)
		}()
	}
	time.Sleep(20 * time.Millisecond) // let waiters reach the coalesce path
	close(release)
	wg.Wait()
	close(results)

	if got := <-first; got != "shared" {
		t.Fatalf("first caller got %q", got)
	}
	for v := range results {
		if v != "shared" {
			t.Fatalf("waiter got %q; want shared", v)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fill executed %d times; want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != waiters {
		t.Fatalf("stats = %+v; want 1 miss and %d hits+coalesced", st, waiters)
	}
}

func TestCapacityZeroCoalescesButDoesNotStore(t *testing.T) {
	c := New(2, 0)
	calls := 0
	for i := 0; i < 3; i++ {
		v, hit, err := c.Do("k", func() (any, error) { calls++; return calls, nil })
		if err != nil || hit {
			t.Fatalf("Do %d = %v, hit=%v; storage is disabled", i, v, hit)
		}
	}
	if calls != 3 || c.Len() != 0 {
		t.Fatalf("calls = %d, len = %d; want 3, 0", calls, c.Len())
	}
}

func TestPurge(t *testing.T) {
	c := New(4, 8)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() == 0 {
		t.Fatal("expected resident entries before purge")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d; want 0", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("purged entry still resident")
	}
}

func TestShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		c := New(tc.in, 1)
		if len(c.shards) != tc.want {
			t.Fatalf("New(%d) built %d shards; want %d", tc.in, len(c.shards), tc.want)
		}
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	c := New(8, 32)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%50)
				switch i % 3 {
				case 0:
					c.Do(key, func() (any, error) { return i, nil })
				case 1:
					c.Get(key)
				default:
					c.Put(key, g)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8*32 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}

func BenchmarkDoHit(b *testing.B) {
	c := New(8, 64)
	c.Put("k", []byte("payload"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do("k", func() (any, error) { return nil, nil })
	}
}

func BenchmarkDoHitParallel(b *testing.B) {
	c := New(16, 64)
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		c.Put(keys[i], i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Do(keys[i%len(keys)], func() (any, error) { return nil, nil })
			i++
		}
	})
}
