// Package qcache is a sharded LRU result cache with singleflight
// request coalescing, the speed-at-scale layer between NCExplorer's
// HTTP handlers and the query engine.
//
// The cache answers two serving problems at once:
//
//   - Repeat queries. Analysts revisit the same concept patterns
//     constantly (the paper's Fig. 1 workflow is a loop), so identical
//     (query, k) pairs should cost one engine call ever, not one per
//     request. Entries live in per-shard LRU lists so hot queries stay
//     resident under memory pressure.
//   - Thundering herds. N concurrent requests for the same cold key
//     must not launch N engine calls. Do coalesces them: the first
//     caller computes, the rest block on the in-flight call and share
//     its result.
//
// Keys are opaque strings; callers are responsible for canonicalizing
// them (see ncexplorer.QueryKey). Values are opaque too — the HTTP
// layer stores fully marshaled JSON bodies so cache hits are
// byte-identical to the miss that populated them.
//
// All methods are safe for concurrent use. The zero Cache is not
// usable; construct with New.
package qcache

import (
	"container/list"
	"errors"
	"sync"
)

// errFillPanicked is what coalesced waiters observe when the filling
// goroutine's fn panicked instead of returning.
var errFillPanicked = errors.New("qcache: fill function panicked")

// Stats is a point-in-time snapshot of cache effectiveness counters,
// summed across shards.
type Stats struct {
	// Hits counts Get/Do calls answered from a resident entry.
	Hits int64 `json:"hits"`
	// Misses counts Get lookups that found no resident entry and Do
	// calls that executed their fill. Do calls that piggybacked on
	// another caller's fill count under Coalesced instead, so total
	// lookups = Hits + Misses + Coalesced.
	Misses int64 `json:"misses"`
	// Coalesced counts Do calls that piggybacked on another caller's
	// in-flight fill instead of executing their own.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts entries dropped to respect shard capacity.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of resident entries.
	Entries int64 `json:"entries"`
}

type entry struct {
	key string
	val any
}

// call is one in-flight fill shared by coalesced callers.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

type shard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call

	hits, misses, coalesced, evictions int64
}

// Cache is a sharded LRU cache with singleflight coalescing.
type Cache struct {
	shards []*shard
	mask   uint32
}

// New returns a cache with the given shard count (rounded up to a
// power of two, minimum 1) and per-shard entry capacity. A capacity
// <= 0 disables storage: Do still coalesces concurrent identical
// calls, but nothing is retained after the fill completes.
func New(shards, capacityPerShard int) *Cache {
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]*shard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: capacityPerShard,
			ll:       list.New(),
			items:    make(map[string]*list.Element),
			inflight: make(map[string]*call),
		}
	}
	return c
}

// fnv-1a; inlined to keep the hot path allocation-free.
func hash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shard(key string) *shard { return c.shards[hash(key)&c.mask] }

// Get returns the cached value for key, promoting it to most recently
// used. It does not coalesce; use Do for read-through access.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		return el.Value.(*entry).val, true
	}
	s.misses++
	return nil, false
}

// Put stores val under key, evicting least-recently-used entries as
// needed. A no-op when the cache was built with capacity <= 0.
func (c *Cache) Put(key string, val any) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.put(key, val)
}

// put stores under s.mu.
func (s *shard) put(key string, val any) {
	if s.capacity <= 0 {
		return
	}
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, val: val})
	for s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
		s.evictions++
	}
}

// Do returns the value for key, computing it with fn on a miss.
// Concurrent Do calls for the same key are coalesced: exactly one
// executes fn, the rest wait and share its result. The second return
// value reports whether this caller was served without running fn
// (a resident hit or a coalesced wait). Errors are propagated to every
// waiting caller and are never cached.
func (c *Cache) Do(key string, fn func() (any, error)) (any, bool, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		v := el.Value.(*entry).val
		s.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := s.inflight[key]; ok {
		s.coalesced++
		s.mu.Unlock()
		cl.wg.Wait()
		return cl.val, true, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	s.inflight[key] = cl
	s.misses++
	s.mu.Unlock()

	// Release waiters even if fn panics, so a poisoned key cannot
	// deadlock every coalesced caller; the panic then propagates. The
	// pre-set error means a panicking fill is reported as an error to
	// waiters and never cached.
	cl.err = errFillPanicked
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		if cl.err == nil {
			s.put(key, cl.val)
		}
		s.mu.Unlock()
		cl.wg.Done()
	}()
	cl.val, cl.err = fn()
	return cl.val, false, cl.err
}

// Len returns the current number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every resident entry. Counters are retained; in-flight
// fills are unaffected.
func (c *Cache) Purge() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[string]*list.Element)
		s.mu.Unlock()
	}
}

// Stats sums effectiveness counters across shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Coalesced += s.coalesced
		out.Evictions += s.evictions
		out.Entries += int64(s.ll.Len())
		s.mu.Unlock()
	}
	return out
}
