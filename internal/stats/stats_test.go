package stats

import (
	"math"
	"testing"

	"ncexplorer/internal/xrand"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, StdDev(xs), 2.13809, 1e-4, "stddev")
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate cases wrong")
	}
	approx(t, Variance([]float64{1, 3}), 2, 1e-12, "variance")
}

func TestStudentCDFKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		tval, df, want float64
	}{
		{0, 5, 0.5},
		{1.0, 10, 0.8296},
		{2.0, 10, 0.9633},
		{-2.0, 10, 0.0367},
		{1.812, 10, 0.95},
		{2.228, 10, 0.975},
		{2.764, 10, 0.99},
		{1.645, 1000, 0.9499}, // ≈ normal for large df
	}
	for _, c := range cases {
		approx(t, StudentCDF(c.tval, c.df), c.want, 2e-3, "StudentCDF")
	}
}

func TestStudentCDFSymmetry(t *testing.T) {
	for _, df := range []float64{3, 9, 25} {
		for _, tv := range []float64{0.3, 1.1, 2.7} {
			left := StudentCDF(-tv, df)
			right := StudentCDF(tv, df)
			approx(t, left+right, 1, 1e-9, "CDF symmetry")
		}
	}
	if StudentCDF(math.Inf(1), 5) != 1 || StudentCDF(math.Inf(-1), 5) != 0 {
		t.Error("infinite t handling wrong")
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("edge values wrong")
	}
	// I_x(1,1) = x (uniform).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		approx(t, RegIncBeta(1, 1, x), x, 1e-10, "I_x(1,1)")
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	approx(t, RegIncBeta(2.5, 4, 0.3), 1-RegIncBeta(4, 2.5, 0.7), 1e-10, "beta symmetry")
}

func TestWelchClearDifference(t *testing.T) {
	// NCExplorer-like vs keyword-like samples (Table III, task 2 ballpark).
	a := []float64{4, 5, 3, 4, 6, 4, 3, 5, 4, 2} // mean 4
	b := []float64{0, 1, 0, 2, 0, 1, 0, 1, 0, 0} // mean 0.5
	res, err := WelchOneSided(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.T <= 0 {
		t.Fatalf("t = %v, want positive", res.T)
	}
	if res.P > 0.001 {
		t.Fatalf("p = %v, want < 0.001 for this separation", res.P)
	}
	// Reversed direction ⇒ p near 1.
	rev, _ := WelchOneSided(b, a)
	if rev.P < 0.999 {
		t.Fatalf("reversed p = %v, want ≈1", rev.P)
	}
}

func TestWelchNoDifference(t *testing.T) {
	r := xrand.New(1)
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = r.Norm(5, 1)
		b[i] = r.Norm(5, 1)
	}
	res, err := WelchOneSided(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Fatalf("p = %v for identical distributions (false positive)", res.P)
	}
}

func TestWelchMatchesReference(t *testing.T) {
	// Reference values computed independently by numerically integrating
	// the t density (Simpson's rule, 2·10⁵ panels): t = 2.949237,
	// df = 27.3116, one-sided p = 0.003230.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 31.3}
	res, err := WelchOneSided(b, a) // b has the larger mean
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.T, 2.949237, 1e-5, "t statistic")
	approx(t, res.DF, 27.3116, 1e-3, "degrees of freedom")
	approx(t, res.P, 0.003230, 1e-5, "one-sided p")
}

func TestWelchDegenerate(t *testing.T) {
	if _, err := WelchOneSided([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for tiny samples")
	}
	res, err := WelchOneSided([]float64{2, 2, 2}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("constant separation p = %v, want 0", res.P)
	}
	res, _ = WelchOneSided([]float64{1, 1, 1}, []float64{2, 2, 2})
	if res.P != 1 {
		t.Errorf("wrong-direction constant p = %v, want 1", res.P)
	}
}

func TestWelchPValueCalibration(t *testing.T) {
	// Under H0 the one-sided p-value should be roughly uniform: check
	// the rejection rate at α = 0.1 over many simulated experiments.
	r := xrand.New(7)
	reject := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 10)
		b := make([]float64, 10)
		for i := range a {
			a[i] = r.Norm(0, 1)
			b[i] = r.Norm(0, 1)
		}
		res, err := WelchOneSided(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.1 {
			reject++
		}
	}
	rate := float64(reject) / trials
	if rate < 0.05 || rate > 0.16 {
		t.Errorf("rejection rate at α=0.1 is %v, want ≈0.10", rate)
	}
}
