// Package stats provides the descriptive statistics and hypothesis
// testing used by the evaluation: mean/standard deviation for the
// Table-III columns and Welch's one-sided t-test for its p-values
// (the paper reports p-values for H1 "NCExplorer finds more answers
// than keyword search" with n = 10 per group).
//
// The t distribution's CDF is computed through the regularised
// incomplete beta function (continued-fraction expansion), so the
// package stays stdlib-only.
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator;
// 0 for fewer than two values).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Variance returns the sample variance (n−1 denominator).
func Variance(xs []float64) float64 {
	s := StdDev(xs)
	return s * s
}

// WelchResult reports a Welch's t-test.
type WelchResult struct {
	T  float64 // t statistic (positive ⇒ mean(a) > mean(b))
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // one-sided p-value for H1: mean(a) > mean(b)
}

// WelchOneSided tests H1: mean(a) > mean(b) without assuming equal
// variances. Requires at least two observations per group.
func WelchOneSided(a, b []float64) (WelchResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return WelchResult{}, errors.New("stats: need ≥2 observations per group")
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se2 := va/na + vb/nb
	if se2 == 0 {
		// Degenerate: identical constants. p is 0 or 1 by direction.
		r := WelchResult{T: math.Inf(1), DF: na + nb - 2}
		if ma > mb {
			r.P = 0
		} else {
			r.T = math.Inf(-1)
			r.P = 1
		}
		return r, nil
	}
	t := (ma - mb) / math.Sqrt(se2)
	df := se2 * se2 / ((va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1)))
	p := 1 - StudentCDF(t, df)
	return WelchResult{T: t, DF: df, P: p}, nil
}

// StudentCDF returns P(T ≤ t) for Student's t distribution with df
// degrees of freedom.
func StudentCDF(t, df float64) float64 {
	if df <= 0 {
		panic("stats: non-positive degrees of freedom")
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	// P(|T| > |t|) = I_x(df/2, 1/2); split by sign.
	tail := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - tail
	}
	return tail
}

// RegIncBeta computes the regularised incomplete beta function
// I_x(a, b) for a, b > 0 and x ∈ [0, 1] via the continued-fraction
// expansion (Numerical Recipes' betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lnBeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lnBeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function (modified Lentz's method).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
