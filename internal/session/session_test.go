package session

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is an adjustable test clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testStore(ttl time.Duration, maxSessions int) (*Store, *fakeClock) {
	clk := newFakeClock()
	return NewStore(Options{TTL: ttl, MaxSessions: maxSessions, Now: clk.Now}), clk
}

func TestCreateGetDeterministicIDs(t *testing.T) {
	s1, _ := testStore(time.Hour, 0)
	s2, _ := testStore(time.Hour, 0)
	a1 := s1.Create([]string{"Money laundering", "Swiss bank"})
	b1 := s2.Create([]string{"Money laundering", "Swiss bank"})
	if a1.ID != b1.ID {
		t.Fatalf("same creation order produced different IDs: %q vs %q", a1.ID, b1.ID)
	}
	if !strings.HasPrefix(a1.ID, "sess-") {
		t.Fatalf("unexpected ID shape %q", a1.ID)
	}
	a2 := s1.Create([]string{"Fraud"})
	if a2.ID == a1.ID {
		t.Fatal("distinct sessions share an ID")
	}

	got, err := s1.Get(a1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Concepts) != 2 || got.Concepts[0] != "Money laundering" {
		t.Fatalf("pattern = %v", got.Concepts)
	}
	if len(got.Steps) != 1 || got.Steps[0].Op != OpCreate {
		t.Fatalf("steps = %+v", got.Steps)
	}
	if got.Depth != 0 {
		t.Fatalf("fresh session depth = %d", got.Depth)
	}
	if _, err := s1.Get("sess-999999-00000000"); err != ErrNotFound {
		t.Fatalf("unknown ID error = %v; want ErrNotFound", err)
	}
}

func TestRefineBackSet(t *testing.T) {
	s, _ := testStore(time.Hour, 0)
	sn := s.Create([]string{"A"})

	sn, err := s.Refine(sn.ID, "B")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sn.Concepts) != "[A B]" || sn.Depth != 1 {
		t.Fatalf("after refine: %v depth %d", sn.Concepts, sn.Depth)
	}
	if _, err := s.Refine(sn.ID, "B"); err != ErrDuplicateConcept {
		t.Fatalf("duplicate refine error = %v", err)
	}

	sn, err = s.Set(sn.ID, []string{"C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sn.Concepts) != "[C D]" || sn.Depth != 2 {
		t.Fatalf("after set: %v depth %d", sn.Concepts, sn.Depth)
	}

	// Setting the identical pattern records nothing.
	same, err := s.Set(sn.ID, []string{"C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	if same.Depth != 2 || len(same.Steps) != len(sn.Steps) {
		t.Fatalf("no-op set changed state: depth %d steps %d", same.Depth, len(same.Steps))
	}

	sn, err = s.Back(sn.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sn.Concepts) != "[A B]" || sn.Depth != 1 {
		t.Fatalf("after back: %v depth %d", sn.Concepts, sn.Depth)
	}
	sn, err = s.Back(sn.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sn.Concepts) != "[A]" || sn.Depth != 0 {
		t.Fatalf("after second back: %v depth %d", sn.Concepts, sn.Depth)
	}
	if _, err := s.Back(sn.ID); err != ErrNoHistory {
		t.Fatalf("back at root error = %v", err)
	}

	// The breadcrumb trail recorded every step including backs.
	got, _ := s.Get(sn.ID)
	var ops []Op
	for _, st := range got.Steps {
		ops = append(ops, st.Op)
	}
	want := []Op{OpCreate, OpRefine, OpSet, OpBack, OpBack}
	if fmt.Sprint(ops) != fmt.Sprint(want) {
		t.Fatalf("ops = %v; want %v", ops, want)
	}
}

func TestTTLExpiry(t *testing.T) {
	s, clk := testStore(10*time.Minute, 0)
	sn := s.Create([]string{"A"})

	clk.Advance(9 * time.Minute)
	if _, err := s.Get(sn.ID); err != nil {
		t.Fatalf("session expired early: %v", err)
	}
	// The Get refreshed the TTL.
	clk.Advance(9 * time.Minute)
	if _, err := s.Get(sn.ID); err != nil {
		t.Fatalf("TTL not refreshed by access: %v", err)
	}
	clk.Advance(11 * time.Minute)
	if _, err := s.Get(sn.ID); err != ErrExpired {
		t.Fatalf("error after TTL = %v; want ErrExpired", err)
	}
	// Once expired it is gone, not resurrected.
	if _, err := s.Get(sn.ID); err != ErrNotFound {
		t.Fatalf("second access after expiry = %v; want ErrNotFound", err)
	}
	if s.Len() != 0 {
		t.Fatalf("expired session still counted: %d", s.Len())
	}
}

func TestPeekDoesNotRefresh(t *testing.T) {
	s, clk := testStore(10*time.Minute, 0)
	sn := s.Create([]string{"A"})
	clk.Advance(9 * time.Minute)
	if _, err := s.Peek(sn.ID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	if _, err := s.Get(sn.ID); err != ErrExpired {
		t.Fatalf("Peek refreshed the TTL: err = %v", err)
	}
}

func TestCapacityEvictsLRU(t *testing.T) {
	s, clk := testStore(time.Hour, 3)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, s.Create([]string{fmt.Sprintf("C%d", i)}).ID)
		clk.Advance(time.Second)
	}
	// Touch the oldest so the second-oldest becomes LRU.
	if _, err := s.Get(ids[0]); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	s.Create([]string{"C3"})
	if s.Len() != 3 {
		t.Fatalf("len = %d; want 3", s.Len())
	}
	if _, err := s.Get(ids[1]); err != ErrNotFound {
		t.Fatalf("LRU session survived eviction: err = %v", err)
	}
	if _, err := s.Get(ids[0]); err != nil {
		t.Fatalf("recently used session evicted: %v", err)
	}
}

func TestListAndDelete(t *testing.T) {
	s, _ := testStore(time.Hour, 0)
	a := s.Create([]string{"A"})
	b := s.Create([]string{"B"})
	list := s.List()
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("list = %+v", list)
	}
	if !s.Delete(a.ID) {
		t.Fatal("delete of live session reported not found")
	}
	if s.Delete(a.ID) {
		t.Fatal("double delete reported found")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

// TestConcurrentAccess hammers one store from many goroutines; run
// under -race this is the package's thread-safety proof.
func TestConcurrentAccess(t *testing.T) {
	// Capacity above the total creations: with the fake clock frozen,
	// every session shares one lastUsed and LRU eviction would tie-break
	// by ID, evicting the base session this test asserts on.
	s, _ := testStore(time.Hour, 128)
	base := s.Create([]string{"Root"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 5 {
				case 0:
					s.Create([]string{fmt.Sprintf("G%d-%d", g, i)})
				case 1:
					s.Get(base.ID)
				case 2:
					s.Refine(base.ID, fmt.Sprintf("R%d-%d", g, i))
				case 3:
					s.Back(base.ID)
				case 4:
					s.List()
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := s.Get(base.ID); err != nil {
		t.Fatalf("base session lost: %v", err)
	}
}

// TestSnapshotIsolation verifies snapshots do not alias store state.
func TestSnapshotIsolation(t *testing.T) {
	s, _ := testStore(time.Hour, 0)
	sn := s.Create([]string{"A"})
	sn.Concepts[0] = "mutated"
	sn.Steps[0].Concepts[0] = "mutated"
	got, _ := s.Get(sn.ID)
	if got.Concepts[0] != "A" {
		t.Fatal("snapshot mutation leaked into the store")
	}
}
