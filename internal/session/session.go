// Package session implements server-side exploration sessions: the
// stateful navigation loop of the paper's Fig. 1 workflow, where an
// analyst holds a *current concept pattern* and moves through the KG
// hierarchy by rolling up, drilling down, and stepping back.
//
// A Session records the current pattern, an undo stack of previous
// patterns, and an append-only breadcrumb trail of every navigation
// step. A Store owns many sessions with TTL-based eviction (idle
// sessions expire) and a capacity bound (least-recently-used sessions
// are evicted first). All Store methods are safe for concurrent use;
// query execution happens outside the store, so holding the store's
// lock never blocks on engine work.
//
// Session IDs are deterministic — a creation counter plus a hash of
// the initial pattern — so replayed traffic produces identical IDs,
// in keeping with the repository's byte-reproducibility contract.
package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Typed failures the HTTP layer maps to structured error codes.
var (
	// ErrNotFound reports an ID no live session has.
	ErrNotFound = errors.New("session: not found")
	// ErrExpired reports a session evicted because its TTL elapsed
	// since last use. The session is gone; the client must create a
	// new one.
	ErrExpired = errors.New("session: expired")
	// ErrNoHistory reports a Back on a session at its root pattern.
	ErrNoHistory = errors.New("session: no history to go back to")
	// ErrDuplicateConcept reports a Refine with a concept already in
	// the pattern.
	ErrDuplicateConcept = errors.New("session: concept already in pattern")
)

// Op names a navigation step kind in the breadcrumb trail.
type Op string

const (
	// OpCreate is the session's initial pattern.
	OpCreate Op = "create"
	// OpSet replaced the whole pattern.
	OpSet Op = "set"
	// OpRefine appended a drill-down subtopic to the pattern.
	OpRefine Op = "refine"
	// OpZoom set, replaced, or cleared the session's time window.
	OpZoom Op = "zoom"
	// OpBack restored the previous pattern (and time window).
	OpBack Op = "back"
)

// Window is a session's temporal zoom: an inclusive publication-time
// range, held as the opaque RFC3339 strings the query layer validated.
// The store never interprets the bounds — it only versions them
// through the undo stack and the breadcrumb trail.
type Window struct {
	Start string `json:"start,omitempty"`
	End   string `json:"end,omitempty"`
}

// Step is one breadcrumb: the operation, the concept it involved (for
// refines), and the pattern and time window in force after it ran.
type Step struct {
	Op       Op       `json:"op"`
	Concept  string   `json:"concept,omitempty"`
	Concepts []string `json:"concepts"`
	// Window is the temporal zoom in force after the step (nil when
	// the session is un-zoomed).
	Window *Window   `json:"window,omitempty"`
	At     time.Time `json:"at"`
}

// Snapshot is an immutable copy of a session's state, safe to retain
// and serialize after the store has moved on.
type Snapshot struct {
	ID       string   `json:"id"`
	Concepts []string `json:"concepts"`
	// Window is the session's current temporal zoom (nil: un-zoomed).
	Window *Window `json:"window,omitempty"`
	// Steps is the full breadcrumb trail, oldest first.
	Steps []Step `json:"steps"`
	// Depth is the undo-stack depth: how many Back calls can succeed.
	Depth     int       `json:"depth"`
	CreatedAt time.Time `json:"created_at"`
	LastUsed  time.Time `json:"last_used"`
	ExpiresAt time.Time `json:"expires_at"`
}

// frame is one undo-stack entry: the navigable state a Back restores.
type frame struct {
	pattern []string
	window  *Window
}

// state is the mutable per-session record, guarded by the store lock.
type state struct {
	id       string
	pattern  []string
	window   *Window
	undo     []frame
	steps    []Step
	created  time.Time
	lastUsed time.Time
}

// Options configures a Store. Zero values select a 30-minute TTL, a
// 1024-session capacity, and the wall clock.
type Options struct {
	// TTL is how long a session survives without being touched.
	TTL time.Duration
	// MaxSessions bounds live sessions; creation beyond it evicts the
	// least-recently-used session.
	MaxSessions int
	// Now supplies the clock (tests inject a fake one).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.TTL <= 0 {
		o.TTL = 30 * time.Minute
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 1024
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Store owns the live sessions. Construct with NewStore.
type Store struct {
	mu       sync.Mutex
	opts     Options
	sessions map[string]*state
	counter  uint64
}

// NewStore returns an empty store.
func NewStore(opts Options) *Store {
	return &Store{opts: opts.withDefaults(), sessions: make(map[string]*state)}
}

// fnvConcepts hashes a pattern for the ID suffix.
func fnvConcepts(concepts []string) uint32 {
	h := uint32(2166136261)
	for _, c := range concepts {
		for i := 0; i < len(c); i++ {
			h ^= uint32(c[i])
			h *= 16777619
		}
		h ^= 0xff // separator so ["ab"] and ["a","b"] differ
		h *= 16777619
	}
	return h
}

// Create opens a session on the given pattern and returns its
// snapshot. The caller is responsible for validating the concepts
// first (the store knows nothing about the knowledge graph).
func (s *Store) Create(concepts []string) Snapshot {
	pattern := append([]string(nil), concepts...)
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.Now()
	s.sweepLocked(now)
	s.counter++
	id := fmt.Sprintf("sess-%06d-%08x", s.counter, fnvConcepts(pattern))
	st := &state{
		id:       id,
		pattern:  pattern,
		steps:    []Step{{Op: OpCreate, Concepts: pattern, At: now}},
		created:  now,
		lastUsed: now,
	}
	s.sessions[id] = st
	s.evictLocked()
	return s.snapshotLocked(st)
}

// sweepLocked drops every expired session.
func (s *Store) sweepLocked(now time.Time) {
	for id, st := range s.sessions {
		if now.Sub(st.lastUsed) > s.opts.TTL {
			delete(s.sessions, id)
		}
	}
}

// evictLocked enforces MaxSessions by evicting least-recently-used
// sessions (ties broken by ID for determinism).
func (s *Store) evictLocked() {
	for len(s.sessions) > s.opts.MaxSessions {
		var victim *state
		for _, st := range s.sessions {
			if victim == nil || st.lastUsed.Before(victim.lastUsed) ||
				(st.lastUsed.Equal(victim.lastUsed) && st.id < victim.id) {
				victim = st
			}
		}
		delete(s.sessions, victim.id)
	}
}

// lookupLocked finds a live session, expiring it on the spot if its
// TTL has elapsed.
func (s *Store) lookupLocked(id string, now time.Time) (*state, error) {
	st, ok := s.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	if now.Sub(st.lastUsed) > s.opts.TTL {
		delete(s.sessions, id)
		return nil, ErrExpired
	}
	return st, nil
}

// copyWindow clones a window so retained snapshots cannot alias the
// store's mutable state.
func copyWindow(w *Window) *Window {
	if w == nil {
		return nil
	}
	cp := *w
	return &cp
}

func (s *Store) snapshotLocked(st *state) Snapshot {
	steps := make([]Step, len(st.steps))
	for i, step := range st.steps {
		step.Concepts = append([]string(nil), step.Concepts...)
		step.Window = copyWindow(step.Window)
		steps[i] = step
	}
	return Snapshot{
		ID:        st.id,
		Concepts:  append([]string(nil), st.pattern...),
		Window:    copyWindow(st.window),
		Steps:     steps,
		Depth:     len(st.undo),
		CreatedAt: st.created,
		LastUsed:  st.lastUsed,
		ExpiresAt: st.lastUsed.Add(s.opts.TTL),
	}
}

// Get returns a session's snapshot, refreshing its TTL.
func (s *Store) Get(id string) (Snapshot, error) {
	return s.mutate(id, func(*state) error { return nil })
}

// Peek returns a session's snapshot without refreshing its TTL (the
// listing endpoint uses it so monitoring does not keep sessions
// alive). Expired sessions still expire on contact.
func (s *Store) Peek(id string) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.lookupLocked(id, s.opts.Now())
	if err != nil {
		return Snapshot{}, err
	}
	return s.snapshotLocked(st), nil
}

// List snapshots every live session, ordered by ID (creation order),
// without refreshing TTLs.
func (s *Store) List() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(s.opts.Now())
	out := make([]Snapshot, 0, len(s.sessions))
	for _, st := range s.sessions {
		out = append(out, s.snapshotLocked(st))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports the number of live sessions (expired ones are swept
// first).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(s.opts.Now())
	return len(s.sessions)
}

// Delete removes a session, reporting whether it existed (expired
// sessions count as gone).
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[id]
	if ok && s.opts.Now().Sub(st.lastUsed) > s.opts.TTL {
		delete(s.sessions, id)
		return false
	}
	delete(s.sessions, id)
	return ok
}

// mutate runs fn on a live session under the lock, refreshing the TTL
// and returning the post-mutation snapshot. fn returning an error
// leaves the session untouched apart from the TTL refresh.
func (s *Store) mutate(id string, fn func(*state) error) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.Now()
	st, err := s.lookupLocked(id, now)
	if err != nil {
		return Snapshot{}, err
	}
	st.lastUsed = now
	if err := fn(st); err != nil {
		return Snapshot{}, err
	}
	return s.snapshotLocked(st), nil
}

// Set replaces the session's pattern, pushing the old one onto the
// undo stack. Setting the identical pattern is a no-op that records no
// step.
func (s *Store) Set(id string, concepts []string) (Snapshot, error) {
	pattern := append([]string(nil), concepts...)
	return s.mutate(id, func(st *state) error {
		if equalPatterns(st.pattern, pattern) {
			return nil
		}
		st.undo = append(st.undo, frame{pattern: st.pattern, window: st.window})
		st.pattern = pattern
		st.steps = append(st.steps, Step{Op: OpSet, Concepts: pattern, Window: st.window, At: st.lastUsed})
		return nil
	})
}

// Zoom sets, replaces, or clears (nil) the session's time window,
// pushing the previous navigable state onto the undo stack — the
// temporal drill of the OLAP loop, undoable with Back like any other
// move. Zooming to the identical window is a no-op that records no
// step.
func (s *Store) Zoom(id string, w *Window) (Snapshot, error) {
	w = copyWindow(w)
	if w != nil && w.Start == "" && w.End == "" {
		w = nil
	}
	return s.mutate(id, func(st *state) error {
		if equalWindows(st.window, w) {
			return nil
		}
		st.undo = append(st.undo, frame{pattern: st.pattern, window: st.window})
		st.window = w
		st.steps = append(st.steps, Step{Op: OpZoom, Concepts: st.pattern, Window: w, At: st.lastUsed})
		return nil
	})
}

// Refine appends a drill-down subtopic to the pattern, pushing the
// previous pattern onto the undo stack.
func (s *Store) Refine(id, concept string) (Snapshot, error) {
	return s.mutate(id, func(st *state) error {
		for _, c := range st.pattern {
			if c == concept {
				return ErrDuplicateConcept
			}
		}
		st.undo = append(st.undo, frame{pattern: st.pattern, window: st.window})
		st.pattern = append(append([]string(nil), st.pattern...), concept)
		st.steps = append(st.steps, Step{Op: OpRefine, Concept: concept, Concepts: st.pattern, Window: st.window, At: st.lastUsed})
		return nil
	})
}

// Back restores the previous navigable state — pattern and time
// window together — failing with ErrNoHistory at the root.
func (s *Store) Back(id string) (Snapshot, error) {
	return s.mutate(id, func(st *state) error {
		if len(st.undo) == 0 {
			return ErrNoHistory
		}
		f := st.undo[len(st.undo)-1]
		st.pattern, st.window = f.pattern, f.window
		st.undo = st.undo[:len(st.undo)-1]
		st.steps = append(st.steps, Step{Op: OpBack, Concepts: st.pattern, Window: st.window, At: st.lastUsed})
		return nil
	})
}

func equalWindows(a, b *Window) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

func equalPatterns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
