package segio

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fuzz seed corpus lives in testdata/*.ncseg as real encoded
// segments (plus testdata/*.nccm conn files). Regenerate with:
//
//	go test ./internal/segio -run TestSeedCorpus -update-seeds
var updateSeeds = flag.Bool("update-seeds", false, "rewrite the checked-in fuzz seed corpus")

// seedSpecs pins the segments the corpus is generated from.
var seedSpecs = []struct {
	seed uint64
	base int32
	n    int
}{{11, 0, 1}, {12, 0, 24}, {13, 4096, 60}}

// TestSeedCorpus keeps the checked-in corpus honest: every seed file
// must decode cleanly and re-encode to its own bytes; with
// -update-seeds it rewrites the files from seedSpecs first.
func TestSeedCorpus(t *testing.T) {
	if *updateSeeds {
		for i, spec := range seedSpecs {
			data := EncodeSegment(buildTestSegment(spec.seed, spec.base, spec.n))
			name := filepath.Join("testdata", fmt.Sprintf("seed-segment-%d.ncseg", i))
			if err := os.WriteFile(name, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		conn := EncodeConn([]uint64{3, 9, 1 << 33}, []float64{0.25, 1, 0.125})
		if err := os.WriteFile(filepath.Join("testdata", "seed-conn-0.nccm"), conn, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, conns := seedCorpus(t)
	if len(segs) == 0 || len(conns) == 0 {
		t.Fatal("seed corpus missing; run with -update-seeds to regenerate")
	}
	for name, data := range segs {
		seg, err := DecodeSegment(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(EncodeSegment(seg), data) {
			t.Fatalf("%s: not canonical", name)
		}
	}
	for name, data := range conns {
		if err := DecodeConn(data, func(uint64, float64) {}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// seedCorpus loads the checked-in seed files.
func seedCorpus(t testing.TB) (segs, conns map[string][]byte) {
	t.Helper()
	segs, conns = map[string][]byte{}, map[string][]byte{}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasSuffix(ent.Name(), SegmentExt):
			segs[ent.Name()] = data
		case strings.HasSuffix(ent.Name(), ConnExt):
			conns[ent.Name()] = data
		}
	}
	return segs, conns
}

// typedDecodeError asserts the decode-error contract: every failure is
// one of the two sentinel kinds, never anything else.
func typedDecodeError(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("untyped decode error: %v", err)
	}
}

// FuzzDecodeSegment: arbitrary bytes never panic the decoder and
// always yield either a valid segment or a typed error.
func FuzzDecodeSegment(f *testing.F) {
	segs, _ := seedCorpus(f)
	for _, data := range segs {
		f.Add(data)
		// A few deterministic mutations help the engine find the
		// interesting cliffs fast.
		if len(data) > 40 {
			trunc := data[:len(data)*2/3]
			f.Add(trunc)
			flip := append([]byte(nil), data...)
			flip[30] ^= 0xFF
			f.Add(flip)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("NCSG"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := DecodeSegment(data)
		if err != nil {
			if seg != nil {
				t.Fatal("error with non-nil segment")
			}
			typedDecodeError(t, err)
			return
		}
		// A decoded segment must be internally usable: re-encoding it
		// must not panic and must decode again.
		re := EncodeSegment(seg)
		if _, err := DecodeSegment(re); err != nil {
			t.Fatalf("re-encoded segment does not decode: %v", err)
		}
	})
}

// FuzzSegmentRoundTrip: the encoding is canonical — any accepted input
// IS the canonical encoding of its segment, and encode∘decode is the
// identity on it (so encode/decode/re-encode is byte-stable).
func FuzzSegmentRoundTrip(f *testing.F) {
	segs, _ := seedCorpus(f)
	for _, data := range segs {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := DecodeSegment(data)
		if err != nil {
			typedDecodeError(t, err)
			return
		}
		enc := EncodeSegment(seg)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode accepted non-canonical input:\n in: %x\nout: %x", data, enc)
		}
		seg2, err := DecodeSegment(enc)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v", err)
		}
		if !bytes.Equal(EncodeSegment(seg2), enc) {
			t.Fatal("second round trip not byte-stable")
		}
	})
}

// FuzzDecodeConn: the conn-memo decoder upholds the same contract.
func FuzzDecodeConn(f *testing.F) {
	_, conns := seedCorpus(f)
	for _, data := range conns {
		f.Add(data)
	}
	f.Add([]byte("NCCM"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var keys []uint64
		var values []float64
		err := DecodeConn(data, func(k uint64, v float64) {
			keys = append(keys, k)
			values = append(values, v)
		})
		if err != nil {
			typedDecodeError(t, err)
			return
		}
		if !bytes.Equal(EncodeConn(keys, values), data) {
			t.Fatal("conn decode accepted non-canonical input")
		}
	})
}
