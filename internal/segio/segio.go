// Package segio serializes the engine's immutable index segments (and
// their companion artifacts) to a durable, versioned on-disk format,
// so a restarted process reopens its corpus in O(read) instead of
// re-running the NLP/linking/scoring pipeline over every article.
//
// Design, following the manifest-plus-immutable-files layout of
// LSM-style search engines:
//
//   - one segment = one file, written once and never modified. The
//     format is length-prefixed binary: a magic + format-version
//     header, then a fixed sequence of sections (document records,
//     display articles, the frozen text index, entity→document
//     postings), each carrying its own CRC32 so a flipped bit anywhere
//     is detected before any partially-decoded state can escape;
//   - a directory is described by a MANIFEST (JSON, see manifest.go)
//     written via temp-file + atomic rename. Readers trust only what
//     the manifest references; anything else in the directory is
//     garbage from an interrupted save and is ignored (and collected
//     by the next successful save);
//   - the encoding is canonical: all maps are emitted in sorted key
//     order and the decoder rejects non-canonical input (unsorted or
//     duplicate keys, trailing bytes, out-of-range IDs). Consequently
//     encode(decode(b)) == b for every accepted b — the property the
//     fuzz battery pins — and re-saving an unchanged segment always
//     reproduces the same bytes, which is what lets saves skip
//     segment files that already exist on disk.
//
// Version evolution policy: formatVersion is bumped on any
// incompatible layout change; decoders reject newer versions with
// ErrVersionMismatch (never a guess), and may keep read paths for
// older versions. The manifest carries its own format_version with the
// same rule.
//
// All decode failures are typed: errors.Is(err, ErrCorrupt) or
// errors.Is(err, ErrVersionMismatch) always holds, and the error text
// names the failing section. Decoders never panic on arbitrary input
// and never allocate more than a small constant factor of the input
// size (all counts are validated against the bytes that remain).
package segio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/snapshot"
	"ncexplorer/internal/textindex"
)

// Typed decode failures. Every error returned by a decoder in this
// package wraps exactly one of these sentinels.
var (
	// ErrCorrupt marks bytes that are not a well-formed artifact of the
	// current format: bad magic, truncation, CRC mismatch, structural
	// violations.
	ErrCorrupt = errors.New("segio: corrupt snapshot data")
	// ErrVersionMismatch marks a well-formed header whose format version
	// this build does not understand (a future writer's output).
	ErrVersionMismatch = errors.New("segio: unsupported snapshot format version")
	// ErrNoSnapshot marks a directory with no MANIFEST — not corruption,
	// just nothing saved there yet.
	ErrNoSnapshot = errors.New("segio: no snapshot manifest in directory")
)

const (
	segmentMagic = "NCSG"
	connMagic    = "NCCM"
	// formatVersion is the binary layout version shared by segment and
	// conn-memo files (the manifest versions independently). v2 added
	// the BMAX section (per-entity per-block maximum term frequencies
	// backing the pruned query planner's persisted score ceilings). v3
	// added the per-document/per-article PublishedAt timestamp to the
	// DOCS and ARTS sections (the temporal roll-up dimension).
	formatVersion = 3

	// maxSegmentDocs bounds the per-segment document count a decoder
	// will accept; far above anything the engine produces, low enough
	// that hostile counts cannot drive large allocations before the
	// remaining-bytes checks kick in.
	maxSegmentDocs = 1 << 28
)

// Section tags, in the order they appear in a segment file.
var segmentSections = [5]string{"DOCS", "ARTS", "TEXT", "POST", "BMAX"}

// segmentSizeHint estimates the encoded size of a segment so the
// encoder can allocate its output buffer once. The ARTS section
// (article bodies) dominates; the entity-shaped sections are bounded
// by a small multiple of the per-document entity data. Under-estimates
// only cost a buffer growth, never correctness.
func segmentSizeHint(seg *snapshot.Segment) int {
	n := 128
	for i := range seg.Articles {
		a := &seg.Articles[i]
		n += len(a.Title) + len(a.Body) + 56 + 12*len(a.Topics) + 4*len(a.GoldEntities)
	}
	for i := range seg.Docs {
		d := &seg.Docs[i]
		// DOCS itself, plus TEXT/POST/BMAX whose payloads mirror the
		// per-document entity and term data.
		n += 40 + 12*(len(d.Entities)+len(d.EntityFreq)+len(d.Candidates))
	}
	return n
}

// EncodeSegment renders a segment in the canonical on-disk format.
// Sections are encoded directly into one pre-sized buffer — the length
// prefix is backfilled and the CRC computed over the in-place payload
// — so the bytes are written exactly once (this runs on the
// group-commit writer, where every cycle competes with ingest).
func EncodeSegment(seg *snapshot.Segment) []byte {
	encoders := [5]func(*writer, *snapshot.Segment){
		encodeDocs, encodeArticles, encodeText, encodePostings, encodeBlockMax,
	}
	out := writer{buf: make([]byte, 0, segmentSizeHint(seg))}
	out.bytes([]byte(segmentMagic))
	out.u16(formatVersion)
	for i, enc := range encoders {
		out.bytes([]byte(segmentSections[i]))
		lenAt := len(out.buf)
		out.u64(0) // placeholder, backfilled once the payload length is known
		start := len(out.buf)
		enc(&out, seg)
		binary.LittleEndian.PutUint64(out.buf[lenAt:], uint64(len(out.buf)-start))
		sum := crc32.ChecksumIEEE(out.buf[start:])
		out.u32(sum)
	}
	return out.buf
}

// DecodeSegment parses a segment file produced by EncodeSegment. On
// success the returned segment is fully initialized (including the
// frozen text index). Any failure returns a nil segment and an error
// wrapping ErrCorrupt or ErrVersionMismatch; arbitrary input never
// panics.
func DecodeSegment(data []byte) (*snapshot.Segment, error) {
	r := &reader{buf: data}
	if string(r.take(4)) != segmentMagic {
		return nil, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if v := r.u16(); r.err == nil && v != formatVersion {
		return nil, fmt.Errorf("%w: segment format version %d (this build reads %d)", ErrVersionMismatch, v, formatVersion)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated segment header", ErrCorrupt)
	}
	sections := make([][]byte, len(segmentSections))
	for i, tag := range segmentSections {
		if got := string(r.take(4)); r.err != nil || got != tag {
			return nil, fmt.Errorf("%w: section %s: missing or out of order", ErrCorrupt, tag)
		}
		n := r.u64()
		if r.err != nil || n > uint64(r.remaining()) {
			return nil, fmt.Errorf("%w: section %s: length exceeds file", ErrCorrupt, tag)
		}
		payload := r.take(int(n))
		sum := r.u32()
		if r.err != nil {
			return nil, fmt.Errorf("%w: section %s: truncated", ErrCorrupt, tag)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: section %s: CRC mismatch", ErrCorrupt, tag)
		}
		sections[i] = payload
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after final section", ErrCorrupt, r.remaining())
	}

	seg := &snapshot.Segment{}
	if err := decodeDocs(sections[0], seg); err != nil {
		return nil, err
	}
	if err := decodeArticles(sections[1], seg); err != nil {
		return nil, err
	}
	if err := decodeText(sections[2], seg); err != nil {
		return nil, err
	}
	if err := decodePostings(sections[3], seg); err != nil {
		return nil, err
	}
	if err := decodeBlockMax(sections[4], seg); err != nil {
		return nil, err
	}
	return seg, nil
}

// corruptf builds a section-scoped ErrCorrupt.
func corruptf(section, format string, args ...any) error {
	return fmt.Errorf("%w: section %s: %s", ErrCorrupt, section, fmt.Sprintf(format, args...))
}

// ---- DOCS: per-document records -----------------------------------

func encodeDocs(w *writer, seg *snapshot.Segment) {
	w.u32(uint32(seg.Base))
	w.u32(uint32(len(seg.Docs)))
	for i := range seg.Docs {
		d := &seg.Docs[i]
		w.u8(uint8(d.Source))
		w.u64(uint64(d.PublishedAt))
		w.u32(uint32(len(d.Entities)))
		for _, v := range d.Entities {
			w.u32(uint32(v))
		}
		ents := make([]kg.NodeID, 0, len(d.EntityFreq))
		for v := range d.EntityFreq {
			ents = append(ents, v)
		}
		sort.Slice(ents, func(a, b int) bool { return ents[a] < ents[b] })
		w.u32(uint32(len(ents)))
		for _, v := range ents {
			w.u32(uint32(v))
			w.u32(uint32(d.EntityFreq[v]))
		}
		w.u32(uint32(len(d.Candidates)))
		for _, c := range d.Candidates {
			w.u32(uint32(c))
		}
	}
}

func decodeDocs(data []byte, seg *snapshot.Segment) error {
	const section = "DOCS"
	r := &reader{buf: data}
	base := int32(r.u32())
	n := int(r.u32())
	// 21 = the minimum encoded size of one document record; the bound
	// keeps hostile counts from driving large allocations.
	if r.err != nil || base < 0 || n < 0 || n > maxSegmentDocs || uint64(n)*21 > uint64(r.remaining()) {
		return corruptf(section, "bad base/count header")
	}
	seg.Base = base
	seg.Docs = make([]snapshot.DocRecord, 0, n)
	for i := 0; i < n; i++ {
		var d snapshot.DocRecord
		d.Source = corpus.Source(r.u8())
		d.PublishedAt = int64(r.u64())
		d.Entities = r.nodeList(section, false)
		nf := r.count(section, 8)
		d.EntityFreq = make(map[kg.NodeID]int, nf)
		prev := kg.NodeID(-1)
		for j := 0; j < nf; j++ {
			v := kg.NodeID(r.u32())
			f := int(r.u32())
			if r.err != nil {
				break
			}
			if v < 0 || v <= prev || f <= 0 {
				return corruptf(section, "doc %d: entity frequencies not canonical", i)
			}
			prev = v
			d.EntityFreq[v] = f
		}
		d.Candidates = r.nodeList(section, true)
		if r.err != nil {
			return r.err
		}
		seg.Docs = append(seg.Docs, d)
	}
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return corruptf(section, "trailing bytes")
	}
	// The segment time bounds are derived data (BuildSegment computes
	// them from Docs), so they are recomputed here rather than trusted
	// from the wire.
	for i := range seg.Docs {
		if t := seg.Docs[i].PublishedAt; i == 0 {
			seg.MinTime, seg.MaxTime = t, t
		} else if t < seg.MinTime {
			seg.MinTime = t
		} else if t > seg.MaxTime {
			seg.MaxTime = t
		}
	}
	return nil
}

// ---- ARTS: display articles ---------------------------------------

func encodeArticles(w *writer, seg *snapshot.Segment) {
	w.u32(uint32(len(seg.Articles)))
	for i := range seg.Articles {
		a := &seg.Articles[i]
		w.u32(uint32(a.ID))
		w.u8(uint8(a.Source))
		w.u64(uint64(a.PublishedAt))
		w.str(a.Title)
		w.str(a.Body)
		topics := make([]kg.NodeID, 0, len(a.Topics))
		for c := range a.Topics {
			topics = append(topics, c)
		}
		sort.Slice(topics, func(x, y int) bool { return topics[x] < topics[y] })
		w.u32(uint32(len(topics)))
		for _, c := range topics {
			w.u32(uint32(c))
			w.u64(math.Float64bits(a.Topics[c]))
		}
		w.u32(uint32(len(a.GoldEntities)))
		for _, v := range a.GoldEntities {
			w.u32(uint32(v))
		}
		if a.Distractor {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
}

func decodeArticles(data []byte, seg *snapshot.Segment) error {
	const section = "ARTS"
	r := &reader{buf: data}
	n := int(r.u32())
	// 30 = the minimum encoded size of one article.
	if r.err != nil || n != len(seg.Docs) || uint64(n)*30 > uint64(r.remaining()) {
		return corruptf(section, "article count disagrees with DOCS")
	}
	seg.Articles = make([]corpus.Document, 0, n)
	for i := 0; i < n; i++ {
		var a corpus.Document
		a.ID = corpus.DocID(r.u32())
		a.Source = corpus.Source(r.u8())
		a.PublishedAt = int64(r.u64())
		a.Title = r.str()
		a.Body = r.str()
		if r.err == nil && int32(a.ID) != seg.Base+int32(i) {
			return corruptf(section, "article %d: ID %d outside segment range", i, a.ID)
		}
		nt := r.count(section, 12)
		if nt > 0 {
			a.Topics = make(map[kg.NodeID]float64, nt)
		}
		prev := kg.NodeID(-1)
		for j := 0; j < nt; j++ {
			c := kg.NodeID(r.u32())
			grade := math.Float64frombits(r.u64())
			if r.err != nil {
				break
			}
			if c < 0 || c <= prev {
				return corruptf(section, "article %d: topics not canonical", i)
			}
			prev = c
			a.Topics[c] = grade
		}
		a.GoldEntities = r.nodeList(section, false)
		switch r.u8() {
		case 0:
		case 1:
			a.Distractor = true
		default:
			if r.err == nil {
				return corruptf(section, "article %d: bad distractor flag", i)
			}
		}
		if r.err != nil {
			return r.err
		}
		seg.Articles = append(seg.Articles, a)
	}
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return corruptf(section, "trailing bytes")
	}
	return nil
}

// ---- TEXT: the frozen per-segment text index ----------------------

func encodeText(w *writer, seg *snapshot.Segment) {
	terms := seg.Text.Terms()
	w.u32(uint32(seg.Text.NumDocs()))
	w.u32(uint32(len(terms)))
	for _, term := range terms {
		w.str(term)
		ps := seg.Text.Postings(term)
		w.u32(uint32(len(ps)))
		for _, p := range ps {
			w.u32(uint32(p.Doc))
			w.u32(uint32(p.TF))
		}
	}
}

func decodeText(data []byte, seg *snapshot.Segment) error {
	const section = "TEXT"
	r := &reader{buf: data}
	if nd := int(r.u32()); r.err != nil || nd != len(seg.Docs) {
		return corruptf(section, "document count disagrees with DOCS")
	}
	nt := r.count(section, 5)
	terms := make([]string, 0, nt)
	postings := make([][]textindex.Posting, 0, nt)
	prevTerm := ""
	for i := 0; i < nt; i++ {
		term := r.str()
		if r.err != nil {
			return r.err
		}
		if i > 0 && term <= prevTerm {
			return corruptf(section, "terms not sorted")
		}
		prevTerm = term
		np := r.count(section, 8)
		ps := make([]textindex.Posting, 0, np)
		prevDoc := int32(-1)
		for j := 0; j < np; j++ {
			doc := int32(r.u32())
			tf := int32(r.u32())
			if r.err != nil {
				return r.err
			}
			if doc <= prevDoc || int(doc) >= len(seg.Docs) || tf <= 0 {
				return corruptf(section, "term %q: postings not canonical", term)
			}
			prevDoc = doc
			ps = append(ps, textindex.Posting{Doc: doc, TF: tf})
		}
		terms = append(terms, term)
		postings = append(postings, ps)
	}
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return corruptf(section, "trailing bytes")
	}
	seg.Text = textindex.Restore(len(seg.Docs), terms, postings)
	return nil
}

// ---- POST: entity → global document postings ----------------------

func encodePostings(w *writer, seg *snapshot.Segment) {
	ents := make([]kg.NodeID, 0, len(seg.EntDocs))
	for v := range seg.EntDocs {
		ents = append(ents, v)
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a] < ents[b] })
	w.u32(uint32(len(ents)))
	for _, v := range ents {
		docs := seg.EntDocs[v]
		w.u32(uint32(v))
		w.u32(uint32(len(docs)))
		for _, d := range docs {
			w.u32(uint32(d))
		}
	}
}

func decodePostings(data []byte, seg *snapshot.Segment) error {
	const section = "POST"
	r := &reader{buf: data}
	ne := r.count(section, 8)
	seg.EntDocs = make(map[kg.NodeID][]int32, ne)
	prevEnt := kg.NodeID(-1)
	lo, hi := seg.Base, seg.Base+int32(len(seg.Docs))
	for i := 0; i < ne; i++ {
		v := kg.NodeID(r.u32())
		if r.err != nil {
			return r.err
		}
		if v < 0 || v <= prevEnt {
			return corruptf(section, "entities not sorted")
		}
		prevEnt = v
		nd := r.count(section, 4)
		if r.err == nil && nd == 0 {
			return corruptf(section, "entity %d: empty posting list", v)
		}
		docs := make([]int32, 0, nd)
		prevDoc := int32(-1)
		for j := 0; j < nd; j++ {
			d := int32(r.u32())
			if r.err != nil {
				return r.err
			}
			if d <= prevDoc || d < lo || d >= hi {
				return corruptf(section, "entity %d: postings not canonical", v)
			}
			prevDoc = d
			docs = append(docs, d)
		}
		seg.EntDocs[v] = docs
	}
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return corruptf(section, "trailing bytes")
	}
	return nil
}

// ---- BMAX: per-entity per-block maximum term frequencies ----------
//
// The table is fully derivable from the DOCS section, so the decoder
// validates it by recomputation rather than trusting the bytes: a
// tampered ceiling could otherwise silently change pruning decisions
// (an understated maximum would drop correct results). Persisting it
// anyway keeps warm opens from re-deriving the planner's inputs and,
// more importantly, pins the canonical form on disk.

func encodeBlockMax(w *writer, seg *snapshot.Segment) {
	ents := make([]kg.NodeID, 0, len(seg.MaxTF))
	for v := range seg.MaxTF {
		ents = append(ents, v)
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a] < ents[b] })
	w.u32(uint32(len(ents)))
	for _, v := range ents {
		table := seg.MaxTF[v]
		w.u32(uint32(v))
		w.u32(uint32(len(table)))
		for _, bt := range table {
			w.u32(uint32(bt.Block))
			w.u32(uint32(bt.TF))
		}
	}
}

func decodeBlockMax(data []byte, seg *snapshot.Segment) error {
	const section = "BMAX"
	r := &reader{buf: data}
	ne := r.count(section, 8)
	got := make(map[kg.NodeID][]snapshot.BlockTF, ne)
	prevEnt := kg.NodeID(-1)
	for i := 0; i < ne; i++ {
		v := kg.NodeID(r.u32())
		if r.err != nil {
			return r.err
		}
		if v < 0 || v <= prevEnt {
			return corruptf(section, "entities not sorted")
		}
		prevEnt = v
		nb := r.count(section, 8)
		if r.err == nil && nb == 0 {
			return corruptf(section, "entity %d: empty block table", v)
		}
		table := make([]snapshot.BlockTF, 0, nb)
		prevBlock := int32(-1)
		for j := 0; j < nb; j++ {
			block := int32(r.u32())
			tf := int32(r.u32())
			if r.err != nil {
				return r.err
			}
			if block <= prevBlock || tf <= 0 {
				return corruptf(section, "entity %d: block table not canonical", v)
			}
			prevBlock = block
			table = append(table, snapshot.BlockTF{Block: block, TF: tf})
		}
		got[v] = table
	}
	if r.err != nil {
		return r.err
	}
	if r.remaining() != 0 {
		return corruptf(section, "trailing bytes")
	}
	want := snapshot.ComputeMaxTF(seg.Base, seg.Docs)
	if len(got) != len(want) {
		return corruptf(section, "block maxima disagree with DOCS (entity count %d, derived %d)", len(got), len(want))
	}
	for v, table := range got {
		ref, ok := want[v]
		if !ok || len(ref) != len(table) {
			return corruptf(section, "entity %d: block maxima disagree with DOCS", v)
		}
		for j := range table {
			if table[j] != ref[j] {
				return corruptf(section, "entity %d: block maxima disagree with DOCS", v)
			}
		}
	}
	seg.MaxTF = got
	return nil
}

// ---- conn-memo files ----------------------------------------------

// EncodeConn renders the engine's connectivity-memo entries — the
// content-addressed (concept, document) → cdrc values behind cdr's
// expensive random-walk factor. Entries are pure functions of graph +
// document content under a fixed engine seed, so a saved entry is
// valid forever: loading them back is what makes a warm open skip
// every random walk the saving process ever performed.
func EncodeConn(keys []uint64, values []float64) []byte {
	var payload writer
	payload.u64(uint64(len(keys)))
	for i, k := range keys {
		payload.u64(k)
		payload.u64(math.Float64bits(values[i]))
	}
	var out writer
	out.bytes([]byte(connMagic))
	out.u16(formatVersion)
	out.u64(uint64(len(payload.buf)))
	out.bytes(payload.buf)
	out.u32(crc32.ChecksumIEEE(payload.buf))
	return out.buf
}

// DecodeConn parses a conn-memo file, streaming each entry to fn.
func DecodeConn(data []byte, fn func(key uint64, value float64)) error {
	const section = "CONN"
	r := &reader{buf: data}
	if string(r.take(4)) != connMagic {
		return fmt.Errorf("%w: bad conn-memo magic", ErrCorrupt)
	}
	if v := r.u16(); r.err == nil && v != formatVersion {
		return fmt.Errorf("%w: conn-memo format version %d (this build reads %d)", ErrVersionMismatch, v, formatVersion)
	}
	n := r.u64()
	if r.err != nil || n > uint64(r.remaining()) {
		return corruptf(section, "length exceeds file")
	}
	payload := r.take(int(n))
	sum := r.u32()
	if r.err != nil {
		return corruptf(section, "truncated")
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return corruptf(section, "CRC mismatch")
	}
	if r.remaining() != 0 {
		return corruptf(section, "trailing bytes")
	}
	pr := &reader{buf: payload}
	n64 := pr.u64()
	// Overflow-safe: bound the count by remaining/16 first, so n64*16
	// cannot wrap (a crafted huge count must not pass the size check).
	if pr.err != nil || n64 > uint64(pr.remaining())/16 || uint64(pr.remaining()) != n64*16 {
		return corruptf(section, "entry count disagrees with payload size")
	}
	count := int(n64)
	var prev uint64
	for i := 0; i < count; i++ {
		k := pr.u64()
		v := math.Float64frombits(pr.u64())
		if i > 0 && k <= prev {
			return corruptf(section, "keys not sorted")
		}
		prev = k
		fn(k, v)
	}
	return nil
}

// ---- little-endian primitives -------------------------------------

type writer struct{ buf []byte }

func (w *writer) bytes(b []byte) { w.buf = append(w.buf, b...) }
func (w *writer) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)   { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// reader consumes a byte slice with sticky error semantics: after the
// first violation every accessor returns zero values, so decoders can
// parse a whole structure and check r.err once per loop.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated input", ErrCorrupt)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || n > r.remaining() {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || uint64(n) > uint64(r.remaining()) {
		r.fail()
		return ""
	}
	return string(r.take(int(n)))
}

// count reads a u32 element count and validates it against the bytes
// that remain, assuming each element occupies at least minBytes — the
// guard that keeps hostile counts from driving huge allocations. A
// violation poisons the reader with a section-scoped error.
func (r *reader) count(section string, minBytes int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if uint64(n)*uint64(minBytes) > uint64(r.remaining()) {
		r.err = corruptf(section, "element count %d exceeds remaining bytes", n)
		return 0
	}
	return int(n)
}

// nodeList reads a u32-counted list of node IDs, optionally requiring
// strictly ascending (canonical sorted-set) order.
func (r *reader) nodeList(section string, sorted bool) []kg.NodeID {
	n := r.count(section, 4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]kg.NodeID, 0, n)
	prev := kg.NodeID(-1)
	for i := 0; i < n; i++ {
		v := kg.NodeID(r.u32())
		if r.err != nil {
			return nil
		}
		if v < 0 || (sorted && v <= prev) {
			r.err = corruptf(section, "node list not canonical")
			return nil
		}
		prev = v
		out = append(out, v)
	}
	return out
}
