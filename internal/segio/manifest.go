// Manifest handling: the MANIFEST file is the single source of truth
// for a snapshot directory. Segment and conn-memo files are immutable
// and content-named; the manifest says which of them constitute the
// current snapshot. It is always written via temp-file + fsync +
// atomic rename, so at every instant the directory holds either the
// previous complete manifest or the new complete manifest — a crash
// mid-save never corrupts an existing store, it only leaves unreferenced
// files for the next save to collect.
package segio

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ncexplorer/internal/snapshot"
)

const (
	// ManifestName is the manifest's filename inside a snapshot dir.
	ManifestName = "MANIFEST"
	// manifestMagic guards against pointing the loader at arbitrary JSON.
	manifestMagic = "ncexplorer-snapshot"
	// manifestVersion versions the manifest schema independently of the
	// binary segment format.
	manifestVersion = 1

	// SegmentExt / ConnExt / WatchExt are the extensions of the three
	// immutable file kinds a manifest references.
	SegmentExt = ".ncseg"
	ConnExt    = ".nccm"
	WatchExt   = ".ncwl"
)

// SegmentRef locates one segment file and pins its identity: global
// base ID, document count, and the CRC32 of the whole encoded file.
// MinTime/MaxTime mirror the segment's publication-time bounds (Unix
// seconds, inclusive) so a router or replica can reason about a shipped
// snapshot's time coverage without fetching segment bytes; the decoder
// rederives the authoritative bounds from the DOCS section.
type SegmentRef struct {
	File    string `json:"file"`
	Base    int32  `json:"base"`
	Docs    int    `json:"docs"`
	CRC     uint32 `json:"crc"`
	MinTime int64  `json:"min_time"`
	MaxTime int64  `json:"max_time"`
}

// EngineMeta records the engine parameters that determine index
// content. An engine opening the snapshot must run with exactly these
// values or its recomputed scores would diverge from the saved corpus.
type EngineMeta struct {
	Tau               int     `json:"tau"`
	Beta              float64 `json:"beta"`
	Samples           int     `json:"samples"`
	Seed              uint64  `json:"seed"`
	MaxConceptsPerDoc int     `json:"max_concepts_per_doc"`
	AncestorLevels    int     `json:"ancestor_levels"`
	Exact             bool    `json:"exact"`
	MaxSegments       int     `json:"max_segments"`
}

// SourceStatsMeta persists one source's build-time linking statistics.
type SourceStatsMeta struct {
	Articles       int `json:"articles"`
	TotalMentions  int `json:"total_mentions"`
	LinkedMentions int `json:"linked_mentions"`
}

// StatsMeta persists the initial-build IndexStats so a warm-started
// process reports the same /statsz numbers as the process that saved.
type StatsMeta struct {
	Docs       int                        `json:"docs"`
	LinkNanos  int64                      `json:"link_nanos"`
	ScoreNanos int64                      `json:"score_nanos"`
	PerSource  map[string]SourceStatsMeta `json:"per_source,omitempty"`
}

// ShardMeta marks a snapshot as one shard of a federated corpus and
// persists the remote term statistics the shard's engine was scoring
// with, so a warm restart (or a replica opening a shipped snapshot)
// resumes with exactly the corpus-global IDF it had. RemoteBatches
// also recovers the generation split: the manifest Generation is
// global (local batches + remote batches), and an opening engine needs
// the local component back to keep numbering future local ingests.
type ShardMeta struct {
	// Index / Count identify this shard within the cluster layout.
	Index int `json:"index"`
	Count int `json:"count"`
	// RemoteDocs / RemoteTotalLen / RemoteDF are the term statistics of
	// the documents held by the other shards (see textindex.RemoteStats).
	RemoteDocs     int            `json:"remote_docs"`
	RemoteTotalLen int64          `json:"remote_total_len"`
	RemoteDF       map[string]int `json:"remote_df,omitempty"`
	// RemoteBatches counts the ingest batches other shards committed
	// (the seed corpus is generation 1 cluster-wide and counts for none).
	RemoteBatches uint64 `json:"remote_batches"`
}

// Manifest describes one complete snapshot: the ordered segment files,
// the optional conn-memo cache file, the generation stamp, and the
// engine/world parameters needed to reopen it.
type Manifest struct {
	Magic         string `json:"magic"`
	FormatVersion int    `json:"format_version"`
	// Generation is the snapshot generation at save time; an engine
	// opening the store resumes at this generation.
	Generation uint64       `json:"generation"`
	NumDocs    int          `json:"num_docs"`
	Segments   []SegmentRef `json:"segments"`
	// ConnFile names the connectivity-memo cache file, when one was
	// saved. Its entries are content-addressed and never go stale, so a
	// checkpoint may keep referencing a conn file written by an earlier
	// full save.
	ConnFile    string `json:"conn_file,omitempty"`
	ConnEntries int    `json:"conn_entries,omitempty"`
	// WatchFile names the standing-query state file (watchlists, alert
	// ring buffers, delivery cursors), when the saving engine had any.
	// Like segments it is immutable and content-named; unlike them it is
	// rewritten whenever its content changes, and the manifest swap makes
	// the new state current atomically.
	WatchFile string     `json:"watch_file,omitempty"`
	Engine    EngineMeta `json:"engine"`
	// Shard, when present, marks the snapshot as one shard of a
	// federated corpus: segment bases keep their global IDs (so the
	// local ID space has gaps) and the recorded remote statistics make
	// scoring corpus-global.
	Shard *ShardMeta `json:"shard,omitempty"`
	// World carries facade-level reconstruction hints (e.g. the
	// synthetic-world scale) the core engine does not interpret.
	World map[string]string `json:"world,omitempty"`
	Stats StatsMeta         `json:"stats"`
}

// ReadManifest loads and validates the manifest of a snapshot
// directory. A missing manifest yields ErrNoSnapshot; a malformed one
// ErrCorrupt; a future schema ErrVersionMismatch.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoSnapshot, dir)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: reading manifest: %v", ErrCorrupt, err)
	}
	return ParseManifest(data)
}

// ParseManifest validates raw manifest bytes — the parsing half of
// ReadManifest, split out so a replica can vet a manifest fetched over
// the wire before any file lands on disk.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest is not valid JSON: %v", ErrCorrupt, err)
	}
	if m.Magic != manifestMagic {
		return nil, fmt.Errorf("%w: manifest magic %q", ErrCorrupt, m.Magic)
	}
	if m.FormatVersion != manifestVersion {
		return nil, fmt.Errorf("%w: manifest format version %d (this build reads %d)",
			ErrVersionMismatch, m.FormatVersion, manifestVersion)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// validate checks the manifest's internal consistency. A monolithic
// snapshot's segments must tile [0, NumDocs) contiguously; a shard
// snapshot (Shard present) keeps global bases, so its segments need
// only be ascending and non-overlapping, with NumDocs the sum of the
// local segment lengths.
func (m *Manifest) validate() error {
	if len(m.Segments) == 0 {
		return fmt.Errorf("%w: manifest lists no segments", ErrCorrupt)
	}
	next := int32(0)
	sum := 0
	for i, ref := range m.Segments {
		if ref.File == "" || ref.File != filepath.Base(ref.File) || ref.Docs <= 0 {
			return fmt.Errorf("%w: manifest segment %d: bad file reference", ErrCorrupt, i)
		}
		if m.Shard == nil && ref.Base != next {
			return fmt.Errorf("%w: manifest segment %d: base %d not contiguous (want %d)",
				ErrCorrupt, i, ref.Base, next)
		}
		if m.Shard != nil && ref.Base < next {
			return fmt.Errorf("%w: manifest segment %d: base %d overlaps previous segment (ends at %d)",
				ErrCorrupt, i, ref.Base, next)
		}
		next = ref.Base + int32(ref.Docs)
		sum += ref.Docs
	}
	if sum != m.NumDocs {
		return fmt.Errorf("%w: manifest num_docs %d disagrees with segment sum %d",
			ErrCorrupt, m.NumDocs, sum)
	}
	if m.Shard != nil && (m.Shard.Count < 1 || m.Shard.Index < 0 || m.Shard.Index >= m.Shard.Count ||
		m.Shard.RemoteDocs < 0 || m.Shard.RemoteTotalLen < 0) {
		return fmt.Errorf("%w: manifest shard section inconsistent", ErrCorrupt)
	}
	if m.ConnFile != "" && m.ConnFile != filepath.Base(m.ConnFile) {
		return fmt.Errorf("%w: manifest conn file reference escapes directory", ErrCorrupt)
	}
	if m.WatchFile != "" && m.WatchFile != filepath.Base(m.WatchFile) {
		return fmt.Errorf("%w: manifest watch file reference escapes directory", ErrCorrupt)
	}
	return nil
}

// WriteManifest atomically replaces dir's manifest: marshal to a temp
// file, fsync, rename over ManifestName, fsync the directory. A crash
// at any point leaves either the old or the new manifest in place.
func WriteManifest(dir string, m *Manifest) error {
	m.Magic = manifestMagic
	m.FormatVersion = manifestVersion
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(dir, ManifestName, append(data, '\n'))
}

// ReadSegmentFile reads, CRC-verifies, and decodes one referenced
// segment file, returning the segment and its on-disk size. The
// whole-file CRC pinned in the manifest catches a swapped or regressed
// file even when the file itself is internally consistent.
func ReadSegmentFile(dir string, ref SegmentRef) (*snapshot.Segment, int, error) {
	path := filepath.Join(dir, ref.File)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, fmt.Errorf("%w: manifest references missing segment file %s: %v", ErrCorrupt, ref.File, err)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("%w: reading segment file %s: %v", ErrCorrupt, ref.File, err)
	}
	// Sniff the header version before any CRC work: a cross-version file
	// (e.g. a stale old-format segment in a partially upgraded store)
	// rarely matches the manifest CRC, and reporting that mismatch would
	// misdiagnose a version skew as corruption.
	if len(data) >= 6 && string(data[:4]) == segmentMagic {
		if v := binary.LittleEndian.Uint16(data[4:6]); v != formatVersion {
			return nil, 0, fmt.Errorf("%w: segment file %s: format version %d (this build reads %d)",
				ErrVersionMismatch, ref.File, v, formatVersion)
		}
	}
	if sum := crc32.ChecksumIEEE(data); sum != ref.CRC {
		return nil, 0, fmt.Errorf("%w: segment file %s: file CRC %08x does not match manifest %08x",
			ErrCorrupt, ref.File, sum, ref.CRC)
	}
	s, err := DecodeSegment(data)
	if err != nil {
		return nil, 0, fmt.Errorf("segment file %s: %w", ref.File, err)
	}
	if int(s.Base) != int(ref.Base) || s.Len() != ref.Docs {
		return nil, 0, fmt.Errorf("%w: segment file %s: base/docs (%d, %d) disagree with manifest (%d, %d)",
			ErrCorrupt, ref.File, s.Base, s.Len(), ref.Base, ref.Docs)
	}
	return s, len(data), nil
}

// ReadConnFile reads a manifest-referenced conn-memo file's bytes
// (decode with DecodeConn). A missing or unreadable file is corruption:
// the manifest promised it.
func ReadConnFile(dir, name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: manifest references missing conn-memo file %s: %v", ErrCorrupt, name, err)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: reading conn-memo file %s: %v", ErrCorrupt, name, err)
	}
	return data, nil
}

// ReadWatchFile reads a manifest-referenced standing-query state file's
// bytes (decode with the watch package's codec). A missing or
// unreadable file is corruption: the manifest promised it.
func ReadWatchFile(dir, name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: manifest references missing watch file %s: %v", ErrCorrupt, name, err)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: reading watch file %s: %v", ErrCorrupt, name, err)
	}
	return data, nil
}

// SegmentFileName derives the canonical content-addressed name for an
// encoded segment: base, length, and whole-file CRC. Equal content
// yields equal names, which is what lets a save skip files that are
// already on disk.
func SegmentFileName(base int32, docs int, crc uint32) string {
	return fmt.Sprintf("seg-%010d-%07d-%08x%s", base, docs, crc, SegmentExt)
}

// WriteFileAtomic durably writes an immutable artifact (segment or
// conn-memo file) under dir/name via temp + fsync + rename. If the
// target already exists it is atomically replaced with identical
// content (names are content-addressed), so concurrent or repeated
// saves converge.
func WriteFileAtomic(dir, name string, data []byte) error {
	return writeAtomic(dir, name, data)
}

// WriteFileDeferSync writes dir/name via temp + fsync + rename but
// leaves the directory entry's durability to a later SyncDir(dir): a
// writer placing several files before one manifest swap pays one
// directory fsync for the whole group instead of one per file. The
// file's CONTENT is durable on return; only the rename may still be
// lost to a crash, which is indistinguishable from the file never
// having been written — safe as long as no manifest references it
// before SyncDir.
func WriteFileDeferSync(dir, name string, data []byte) error {
	return writeFileDeferSync(dir, name, data)
}

// SyncDir fsyncs the directory, making every prior rename into it
// durable. Pair with WriteFileDeferSync.
func SyncDir(dir string) error { return syncDir(dir) }

func writeAtomic(dir, name string, data []byte) error {
	if err := writeFileDeferSync(dir, name, data); err != nil {
		return err
	}
	return syncDir(dir)
}

func writeFileDeferSync(dir, name string, data []byte) error {
	f, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs the directory so the rename itself is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems reject fsync on directories; the rename is still
	// atomic there, just not yet durable — acceptable on such systems.
	if err := d.Sync(); err != nil && !errors.Is(err, fs.ErrInvalid) {
		return err
	}
	return nil
}

// CollectGarbage removes segment/conn files in dir that the manifest
// does not reference — leftovers of interrupted or superseded saves.
// Call it only after the new manifest is durably in place. Unremovable
// files are skipped (they stay garbage; the next save retries).
func CollectGarbage(dir string, m *Manifest) (removed []string) {
	keep := map[string]bool{ManifestName: true}
	for _, ref := range m.Segments {
		keep[ref.File] = true
	}
	if m.ConnFile != "" {
		keep[m.ConnFile] = true
	}
	if m.WatchFile != "" {
		keep[m.WatchFile] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || keep[name] {
			continue
		}
		if !strings.HasSuffix(name, SegmentExt) && !strings.HasSuffix(name, ConnExt) &&
			!strings.HasSuffix(name, WatchExt) && !strings.Contains(name, ".tmp-") {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	return removed
}
