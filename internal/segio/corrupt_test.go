package segio

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"ncexplorer/internal/snapshot"
)

// sectionRanges parses a valid segment encoding and returns the byte
// range of each section's payload, keyed by tag.
func sectionRanges(t *testing.T, data []byte) map[string][2]int {
	t.Helper()
	out := make(map[string][2]int)
	off := 6 // magic + version
	for range segmentSections {
		tag := string(data[off : off+4])
		n := int(binary.LittleEndian.Uint64(data[off+4 : off+12]))
		start := off + 12
		out[tag] = [2]int{start, start + n}
		off = start + n + 4 // skip payload + crc
	}
	if off != len(data) {
		t.Fatalf("section walk ended at %d of %d", off, len(data))
	}
	return out
}

// TestCorruptionMatrix drives the ISSUE's corruption table: every
// damaged input yields its typed error — never a panic, never a
// half-decoded segment.
func TestCorruptionMatrix(t *testing.T) {
	valid := EncodeSegment(buildTestSegment(77, 0, 25))
	sections := sectionRanges(t, valid)

	check := func(t *testing.T, data []byte, wantErr error, wantInMsg string) {
		t.Helper()
		seg, err := DecodeSegment(data)
		if seg != nil {
			t.Fatal("corrupt input produced a segment")
		}
		if !errors.Is(err, wantErr) {
			t.Fatalf("err = %v, want %v", err, wantErr)
		}
		if wantInMsg != "" && !strings.Contains(err.Error(), wantInMsg) {
			t.Fatalf("err %q does not name %q", err, wantInMsg)
		}
	}

	t.Run("bad magic", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[0] = 'X'
		check(t, data, ErrCorrupt, "magic")
	})
	t.Run("future format version", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint16(data[4:6], formatVersion+1)
		check(t, data, ErrVersionMismatch, "version")
	})
	t.Run("empty input", func(t *testing.T) {
		check(t, nil, ErrCorrupt, "")
	})
	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must fail with a typed error (and the CRC
		// of a cut section must catch the loss even at section-aligned
		// cuts, where no read runs out of bytes).
		for cut := 0; cut < len(valid); cut++ {
			seg, err := DecodeSegment(valid[:cut])
			if seg != nil || err == nil {
				t.Fatalf("truncation at %d: seg=%v err=%v", cut, seg, err)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersionMismatch) {
				t.Fatalf("truncation at %d: untyped error %v", cut, err)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		check(t, append(append([]byte(nil), valid...), 0), ErrCorrupt, "trailing")
	})
	for _, tag := range segmentSections {
		t.Run("flipped byte in "+tag, func(t *testing.T) {
			r := sections[tag]
			if r[0] == r[1] {
				t.Skipf("section %s empty in sample", tag)
			}
			// Flip one byte at the start, middle, and end of the payload;
			// the section CRC must catch each.
			for _, pos := range []int{r[0], (r[0] + r[1]) / 2, r[1] - 1} {
				data := append([]byte(nil), valid...)
				data[pos] ^= 0x40
				check(t, data, ErrCorrupt, tag)
			}
		})
	}
	t.Run("section length overflow", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(data[10:18], 1<<60)
		check(t, data, ErrCorrupt, "length")
	})
}

// TestConnCorruption is the corruption matrix for conn-memo files.
func TestConnCorruption(t *testing.T) {
	valid := EncodeConn([]uint64{1, 2, 3}, []float64{0.1, 0.2, 0.3})
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'x'; return b }, ErrCorrupt},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], formatVersion+1)
			return b
		}, ErrVersionMismatch},
		{"flipped payload byte", func(b []byte) []byte { b[len(b)-6] ^= 1; return b }, ErrCorrupt},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }, ErrCorrupt},
		{"trailing", func(b []byte) []byte { return append(b, 1) }, ErrCorrupt},
		{"unsorted keys", func(b []byte) []byte { return EncodeConn([]uint64{3, 1}, []float64{1, 2}) }, ErrCorrupt},
		{"overflowing entry count", func(b []byte) []byte {
			// A count chosen so that count*16 wraps to exactly the
			// remaining payload size (0). The size check must use
			// overflow-safe arithmetic and reject it up front.
			var payload writer
			payload.u64(1 << 60)
			var out writer
			out.bytes([]byte(connMagic))
			out.u16(formatVersion)
			out.u64(uint64(len(payload.buf)))
			out.bytes(payload.buf)
			out.u32(crc32.ChecksumIEEE(payload.buf))
			return out.buf
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			delivered := 0
			err := DecodeConn(data, func(uint64, float64) { delivered++ })
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			// Size/header violations must be rejected before any entry
			// streams to the callback (ordering violations necessarily
			// deliver the prefix — the caller stages for that reason).
			if tc.name == "overflowing entry count" && delivered != 0 {
				t.Fatalf("%d fabricated entries delivered", delivered)
			}
		})
	}
}

// TestBlockMaxDisagreement: the BMAX section is derivable from DOCS,
// and the decoder validates it by recomputation — a structurally valid,
// correctly-checksummed table with a wrong maximum (which would skew
// pruning ceilings) must still be rejected.
func TestBlockMaxDisagreement(t *testing.T) {
	seg := buildTestSegment(77, 0, 25)
	corrupt := func(name string, mutate func(*snapshot.Segment)) {
		t.Run(name, func(t *testing.T) {
			bad := *seg
			bad.MaxTF = snapshot.ComputeMaxTF(seg.Base, seg.Docs)
			mutate(&bad)
			got, err := DecodeSegment(EncodeSegment(&bad))
			if got != nil || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "BMAX") {
				t.Fatalf("seg=%v err=%v, want BMAX corruption", got, err)
			}
		})
	}
	corrupt("inflated maximum", func(s *snapshot.Segment) {
		for v := range s.MaxTF {
			s.MaxTF[v][0].TF++
			return
		}
	})
	corrupt("dropped entity", func(s *snapshot.Segment) {
		for v := range s.MaxTF {
			delete(s.MaxTF, v)
			return
		}
	})
	corrupt("extra block", func(s *snapshot.Segment) {
		for v := range s.MaxTF {
			tbl := s.MaxTF[v]
			last := tbl[len(tbl)-1]
			s.MaxTF[v] = append(tbl, snapshot.BlockTF{Block: last.Block + 1, TF: 1})
			return
		}
	})
}
