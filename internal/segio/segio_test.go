package segio

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/snapshot"
	"ncexplorer/internal/xrand"
)

// buildTestSegment synthesizes a structurally realistic segment —
// random entities, frequencies, candidate concepts, articles with gold
// labels — without running the NLP pipeline. Deterministic per seed.
func buildTestSegment(seed uint64, base int32, n int) *snapshot.Segment {
	rnd := xrand.New(seed)
	docs := make([]snapshot.DocRecord, n)
	articles := make([]corpus.Document, n)
	for i := 0; i < n; i++ {
		ne := 1 + int(rnd.Uint64()%5)
		freq := make(map[kg.NodeID]int, ne)
		var ents []kg.NodeID
		for j := 0; j < ne; j++ {
			v := kg.NodeID(rnd.Uint64() % 50)
			if _, dup := freq[v]; dup {
				continue
			}
			ents = append(ents, v)
			freq[v] = 1 + int(rnd.Uint64()%4)
		}
		var cands []kg.NodeID
		for j := 0; j < int(rnd.Uint64()%4); j++ {
			cands = append(cands, kg.NodeID(100+rnd.Uint64()%20))
		}
		pub := int64(1700000000 + rnd.Uint64()%10000000)
		docs[i] = snapshot.DocRecord{
			Source:      corpus.Sources[rnd.Uint64()%uint64(len(corpus.Sources))],
			Entities:    ents,
			EntityFreq:  freq,
			Candidates:  snapshot.SortedCandidates(cands),
			PublishedAt: pub,
		}
		topics := map[kg.NodeID]float64{}
		for j := 0; j < int(rnd.Uint64()%3); j++ {
			topics[kg.NodeID(100+rnd.Uint64()%20)] = float64(rnd.Uint64()%50) / 10
		}
		if len(topics) == 0 {
			topics = nil
		}
		articles[i] = corpus.Document{
			Source:       docs[i].Source,
			PublishedAt:  pub,
			Title:        fmt.Sprintf("Title %d-%d", seed, i),
			Body:         fmt.Sprintf("Body of article %d with some text × unicode ✓ %d", i, rnd.Uint64()),
			Topics:       topics,
			GoldEntities: append([]kg.NodeID(nil), ents...),
			Distractor:   rnd.Uint64()%4 == 0,
		}
	}
	return snapshot.BuildSegment(base, docs, articles)
}

// segmentsEquivalent compares two segments for observable equality:
// raw records, articles, entity postings, and the text index's full
// read surface.
func segmentsEquivalent(t *testing.T, a, b *snapshot.Segment) {
	t.Helper()
	if a.Base != b.Base || a.Len() != b.Len() {
		t.Fatalf("base/len differ: (%d, %d) vs (%d, %d)", a.Base, a.Len(), b.Base, b.Len())
	}
	if !reflect.DeepEqual(a.Docs, b.Docs) {
		t.Fatal("doc records differ")
	}
	if !reflect.DeepEqual(a.Articles, b.Articles) {
		t.Fatal("articles differ")
	}
	if !reflect.DeepEqual(a.EntDocs, b.EntDocs) {
		t.Fatal("entity postings differ")
	}
	if a.Text.NumDocs() != b.Text.NumDocs() || a.Text.TotalLen() != b.Text.TotalLen() ||
		a.Text.AvgDocLen() != b.Text.AvgDocLen() {
		t.Fatal("text index dimensions differ")
	}
	terms := a.Text.Terms()
	if !reflect.DeepEqual(terms, b.Text.Terms()) {
		t.Fatal("text index terms differ")
	}
	for _, term := range terms {
		if !reflect.DeepEqual(a.Text.Postings(term), b.Text.Postings(term)) {
			t.Fatalf("postings for %q differ", term)
		}
		if a.Text.IDF(term) != b.Text.IDF(term) {
			t.Fatalf("IDF for %q differs", term)
		}
		for d := int32(0); d < int32(a.Len()); d++ {
			if a.Text.TFIDF(term, d) != b.Text.TFIDF(term, d) {
				t.Fatalf("TFIDF(%q, %d) differs", term, d)
			}
		}
	}
	for d := int32(0); d < int32(a.Len()); d++ {
		if a.Text.DocLen(d) != b.Text.DocLen(d) {
			t.Fatalf("DocLen(%d) differs", d)
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		seed uint64
		base int32
		n    int
	}{
		{1, 0, 1}, {2, 0, 17}, {3, 512, 64}, {4, 100000, 5},
	} {
		enc := EncodeSegment(buildTestSegment(tc.seed, tc.base, tc.n))
		dec, err := DecodeSegment(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", tc.seed, err)
		}
		segmentsEquivalent(t, buildTestSegment(tc.seed, tc.base, tc.n), dec)
		re := EncodeSegment(dec)
		if !bytes.Equal(enc, re) {
			t.Fatalf("seed %d: re-encode is not byte-stable", tc.seed)
		}
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	// Map iteration order must never leak into the encoding.
	for i := 0; i < 10; i++ {
		a := EncodeSegment(buildTestSegment(99, 0, 40))
		b := EncodeSegment(buildTestSegment(99, 0, 40))
		if !bytes.Equal(a, b) {
			t.Fatal("two encodings of the same segment differ")
		}
	}
}

func TestConnRoundTrip(t *testing.T) {
	keys := []uint64{1, 7, 1 << 40, math.MaxUint64}
	values := []float64{0, 0.5, -1.25, math.Pi}
	data := EncodeConn(keys, values)
	var gotK []uint64
	var gotV []float64
	if err := DecodeConn(data, func(k uint64, v float64) {
		gotK = append(gotK, k)
		gotV = append(gotV, v)
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotK, keys) || !reflect.DeepEqual(gotV, values) {
		t.Fatalf("conn round trip mismatch: %v %v", gotK, gotV)
	}
	// Empty memo round-trips too.
	if err := DecodeConn(EncodeConn(nil, nil), func(k uint64, v float64) {
		t.Fatal("unexpected entry")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: err = %v, want ErrNoSnapshot", err)
	}
	m := &Manifest{
		Generation: 7,
		NumDocs:    30,
		Segments: []SegmentRef{
			{File: "seg-a.ncseg", Base: 0, Docs: 20, CRC: 123},
			{File: "seg-b.ncseg", Base: 20, Docs: 10, CRC: 456},
		},
		ConnFile:    "conn-1.nccm",
		ConnEntries: 5,
		Engine:      EngineMeta{Tau: 2, Beta: 0.5, Samples: 50, Seed: 42, MaxConceptsPerDoc: 64, AncestorLevels: 1, MaxSegments: 4},
		World:       map[string]string{"scale": "tiny"},
		Stats:       StatsMeta{Docs: 20, LinkNanos: 10, ScoreNanos: 20, PerSource: map[string]SourceStatsMeta{"nyt": {Articles: 20, TotalMentions: 100, LinkedMentions: 80}}},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
	// Rewrites are atomic replacements.
	m.Generation = 8
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadManifest(dir); err != nil || got.Generation != 8 {
		t.Fatalf("rewrite: gen=%v err=%v", got.Generation, err)
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	base := func() *Manifest {
		return &Manifest{
			Generation: 1,
			NumDocs:    10,
			Segments:   []SegmentRef{{File: "a.ncseg", Base: 0, Docs: 10, CRC: 1}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"no segments", func(m *Manifest) { m.Segments = nil }},
		{"gap in bases", func(m *Manifest) { m.Segments[0].Base = 5 }},
		{"docs mismatch", func(m *Manifest) { m.NumDocs = 11 }},
		{"path escape", func(m *Manifest) { m.Segments[0].File = "../evil.ncseg" }},
		{"conn escape", func(m *Manifest) { m.ConnFile = "../evil.nccm" }},
		{"empty segment", func(m *Manifest) { m.Segments[0].Docs = 0; m.NumDocs = 0 }},
	}
	for _, tc := range cases {
		m := base()
		tc.mutate(m)
		if err := WriteManifest(dir, m); err != nil {
			t.Fatalf("%s: write: %v", tc.name, err)
		}
		if _, err := ReadManifest(dir); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestReadSegmentFile(t *testing.T) {
	dir := t.TempDir()
	seg := buildTestSegment(5, 0, 10)
	data := EncodeSegment(seg)
	ref := SegmentRef{Base: 0, Docs: 10, CRC: crc32.ChecksumIEEE(data)}
	ref.File = SegmentFileName(ref.Base, ref.Docs, ref.CRC)
	if err := WriteFileAtomic(dir, ref.File, data); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadSegmentFile(dir, ref)
	if err != nil || n != len(data) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	segmentsEquivalent(t, seg, got)

	// Manifest CRC pins the exact file: a swapped file fails even
	// though it is internally consistent.
	other := EncodeSegment(buildTestSegment(6, 0, 10))
	if err := WriteFileAtomic(dir, ref.File, other); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSegmentFile(dir, ref); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped file: err = %v, want ErrCorrupt", err)
	}

	// A reference to a missing file is corruption, with the fs cause
	// visible in the message.
	missing := ref
	missing.File = "seg-gone.ncseg"
	if _, _, err := ReadSegmentFile(dir, missing); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing file: err = %v, want ErrCorrupt", err)
	}
}

func TestReadConnFile(t *testing.T) {
	dir := t.TempDir()
	data := EncodeConn([]uint64{1}, []float64{2})
	if err := WriteFileAtomic(dir, "conn-x.nccm", data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConnFile(dir, "conn-x.nccm")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back: %v", err)
	}
	if _, err := ReadConnFile(dir, "conn-gone.nccm"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing conn file: err = %v, want ErrCorrupt", err)
	}
}

func TestReadManifestDamage(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("{not json")
	if _, err := ReadManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad json: %v", err)
	}
	write(`{"magic":"something-else","format_version":1}`)
	if _, err := ReadManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	write(`{"magic":"ncexplorer-snapshot","format_version":99}`)
	if _, err := ReadManifest(dir); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("future version: %v", err)
	}
}

func TestWriteAtomicFailures(t *testing.T) {
	// A directory path through a regular file fails for any uid.
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(filepath.Join(file, "sub"), "a.ncseg", []byte("data")); err == nil {
		t.Fatal("write into file-as-dir succeeded")
	}
	// Renaming over an existing directory fails after the temp write,
	// exercising the cleanup path; the temp file must not linger.
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "taken.ncseg"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(dir, "taken.ncseg", []byte("data")); err == nil {
		t.Fatal("rename over a directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.Contains(ent.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", ent.Name())
		}
	}
}

func TestCollectGarbage(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"keep.ncseg", "drop.ncseg", "old.nccm", "unrelated.txt", "x.ncseg.tmp-123"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m := &Manifest{Segments: []SegmentRef{{File: "keep.ncseg", Docs: 1}}}
	removed := CollectGarbage(dir, m)
	want := []string{"drop.ncseg", "old.nccm", "x.ncseg.tmp-123"}
	if !reflect.DeepEqual(removed, want) {
		t.Fatalf("removed %v, want %v", removed, want)
	}
	for _, name := range []string{"keep.ncseg", "unrelated.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s should survive GC: %v", name, err)
		}
	}
}

// TestCrossVersionOpenMatrix pins the version-evolution contract: a
// well-formed header whose format version differs from this build's
// must always surface as ErrVersionMismatch naming both versions —
// never ErrCorrupt — through both the raw decoder and the
// manifest-checked file reader, whether or not the manifest CRC matches
// the cross-version bytes.
func TestCrossVersionOpenMatrix(t *testing.T) {
	current := EncodeSegment(buildTestSegment(21, 0, 8))

	variants := map[string][]byte{}
	for _, v := range []uint16{1, 2, formatVersion + 1, 99} {
		data := append([]byte(nil), current...)
		data[4] = byte(v)
		data[5] = byte(v >> 8)
		variants[fmt.Sprintf("patched-v%d", v)] = data
	}
	// A genuine previous-version file (written by the v2 encoder before
	// PublishedAt existed), not just a patched header.
	legacy, err := os.ReadFile(filepath.Join("testdata", "legacy-v2-segment.bin"))
	if err != nil {
		t.Fatal(err)
	}
	variants["genuine-v2"] = legacy

	dir := t.TempDir()
	for name, data := range variants {
		if seg, err := DecodeSegment(data); seg != nil || !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("%s: DecodeSegment err = %v, want ErrVersionMismatch", name, err)
		} else {
			msg := err.Error()
			if !strings.Contains(msg, fmt.Sprintf("reads %d", formatVersion)) {
				t.Fatalf("%s: error does not name this build's version: %v", name, err)
			}
		}
		// Through the manifest path, with the CRC matching the
		// cross-version bytes (a whole store from another version) …
		ref := SegmentRef{File: "x.ncseg", Base: 0, Docs: 8, CRC: crc32.ChecksumIEEE(data)}
		if err := WriteFileAtomic(dir, ref.File, data); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadSegmentFile(dir, ref); !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("%s: ReadSegmentFile (CRC match) err = %v, want ErrVersionMismatch", name, err)
		}
		// … and with a stale manifest CRC (partially upgraded store): the
		// version sniff must win over the CRC mismatch.
		ref.CRC ^= 0xDEADBEEF
		if _, _, err := ReadSegmentFile(dir, ref); !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("%s: ReadSegmentFile (CRC stale) err = %v, want ErrVersionMismatch", name, err)
		}
	}

	// The current version still decodes, and a non-version header problem
	// stays ErrCorrupt.
	if _, err := DecodeSegment(current); err != nil {
		t.Fatalf("current version: %v", err)
	}
	bad := append([]byte(nil), current...)
	bad[0] = 'X'
	if _, err := DecodeSegment(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}

	// Conn-memo files share the version contract.
	conn := EncodeConn([]uint64{1}, []float64{0.5})
	conn[4], conn[5] = 2, 0
	if err := DecodeConn(conn, func(uint64, float64) {}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("conn v2: err = %v, want ErrVersionMismatch", err)
	}
}
