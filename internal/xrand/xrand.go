// Package xrand provides a small, fast, deterministic random number
// generator plus the sampling distributions used across the repository
// (uniform, Gaussian, Zipf, weighted choice).
//
// Every stochastic component in this codebase — the KG generator, the
// corpus generator, the random-walk estimator, the simulated evaluators —
// takes an explicit *xrand.Rand seeded by the caller, so that a run with
// a fixed seed reproduces every table and figure byte-for-byte. The
// stdlib math/rand would work too, but a local splitmix64/xoshiro core
// keeps the sequence stable across Go releases and lets us derive
// independent substreams cheaply.
package xrand

import "math"

// Rand is a deterministic PRNG (xoshiro256** seeded via splitmix64).
// It is not safe for concurrent use; derive per-goroutine streams with
// Fork or Stream.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the seed and returns the next value. It is used
// both for seeding and for hashing-style derivations.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	s := seed
	for i := range r.s {
		r.s[i] = splitmix64(&s)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent state and the label. The parent state is not
// advanced, so forks with distinct labels are stable regardless of how
// much the parent is used afterwards.
func (r *Rand) Fork(label uint64) *Rand {
	seed := r.s[0] ^ rotl(r.s[2], 13) ^ (label * 0x9e3779b97f4a7c15)
	return New(seed)
}

// Stream returns an independent generator derived from seed and label
// without constructing a parent. Useful for "substream per worker".
func Stream(seed, label uint64) *Rand {
	s := seed ^ (label+1)*0xd1342543de82ef95
	return New(splitmix64(&s))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method (no modulo bias).
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo1 := t & mask
	hi1 := t >> 32
	lo1 += aLo * bHi
	hi = aHi*bHi + hi1 + (lo1 >> 32)
	lo = a * b
	return hi, lo
}

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Range returns a uniform value in [lo, hi). It panics if hi <= lo.
func (r *Rand) Range(lo, hi int) int { return lo + r.Intn(hi-lo) }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal deviate (polar Box-Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Norm returns a normal deviate with the given mean and stddev.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponential deviate with the given rate λ (> 0).
func (r *Rand) Exp(lambda float64) float64 {
	return -math.Log(1-r.Float64()) / lambda
}

// Poisson returns a Poisson deviate with the given mean (Knuth's method;
// fine for the small means used in data generation).
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // safety valve for absurd means
			return k
		}
	}
}

// WeightedChoice returns an index in [0, len(weights)) chosen with
// probability proportional to weights[i]. Non-positive weights are
// treated as zero. It panics if the total weight is not positive.
func (r *Rand) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("xrand: WeightedChoice with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf samples from a Zipf distribution over [0, n) with exponent s > 1
// is not required; s may be any value > 0. Implemented with a cached CDF
// so it is O(log n) per sample after O(n) setup.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(r *Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	x := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// HashString maps a string to a stable 64-bit value (FNV-1a core mixed
// through splitmix64). Used for seed derivation from names.
func HashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return splitmix64(&h)
}
