package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if New(42).Fork(uint64(i)).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds suspiciously aligned: %d/1000", same)
	}
}

func TestForkStability(t *testing.T) {
	parent := New(7)
	f1 := parent.Fork(5).Uint64()
	// Advancing the parent must not change what a fork with the same
	// label would have produced.
	parent2 := New(7)
	for i := 0; i < 100; i++ {
		parent2.Uint64()
	}
	// Fork derives from the *initial* state only if the parent state is
	// untouched; our contract is "Fork does not advance the parent".
	f2 := New(7).Fork(5).Uint64()
	if f1 != f2 {
		t.Fatalf("fork not stable: %d vs %d", f1, f2)
	}
	if New(7).Fork(5).Uint64() != f1 {
		t.Fatal("fork not deterministic")
	}
	if New(7).Fork(6).Uint64() == f1 {
		t.Fatal("forks with different labels should differ")
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(2)
	const n = 10
	counts := make([]int, n)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d far from expected %.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Range out of bounds: %d", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(4)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(5)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(6)
	z := NewZipf(r, 1.1, 1000)
	counts := make(map[int]int)
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("rank 0 (%d) should dominate rank 10 (%d)", counts[0], counts[10])
	}
	if counts[0] < trials/20 {
		t.Errorf("rank 0 too rare for zipf: %d", counts[0])
	}
}

func TestZipfRange(t *testing.T) {
	r := New(7)
	z := NewZipf(r, 0.8, 50)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 50 {
			t.Fatalf("zipf out of range: %d", v)
		}
	}
}

func TestPoisson(t *testing.T) {
	r := New(8)
	const mean = 3.0
	sum := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		sum += r.Poisson(mean)
	}
	got := float64(sum) / trials
	if math.Abs(got-mean) > 0.1 {
		t.Errorf("poisson mean = %v, want ~%v", got, mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const lambda = 2.0
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		sum += r.Exp(lambda)
	}
	got := sum / trials
	if math.Abs(got-1/lambda) > 0.02 {
		t.Errorf("exp mean = %v, want ~%v", got, 1/lambda)
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("ftx") != HashString("ftx") {
		t.Fatal("HashString not stable")
	}
	if HashString("ftx") == HashString("ftz") {
		t.Fatal("HashString collision on near strings (unlucky but suspicious)")
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Stream(1, 0)
	b := Stream(1, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams overlap: %d matches", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1.1, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
