package eval

import (
	"ncexplorer/internal/baselines"
	"ncexplorer/internal/core"
	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/xrand"
)

// Task is one investigative inquiry of the Table-III productivity
// study, e.g. "Find the names of Switzerland banks with reports related
// to money laundering": a topic concept, a group concept whose members
// are the sought answers, and the gold answer set derived from the
// corpus (group members that actually appear in on-topic articles).
type Task struct {
	ID      int
	Name    string
	Topic   kg.NodeID
	Group   kg.NodeID
	Answers map[kg.NodeID]struct{}
}

// taskSpecs are the investigation templates; BuildTasks keeps those
// with at least one answer in the generated corpus.
var taskSpecs = []struct{ topic, group string }{
	{"Money laundering", "Swiss bank"},
	{"Fraud", "Bitcoin exchange"},
	{"Lawsuits", "American technology company"},
	{"Labor dispute", "Labor union"},
	{"Elections", "African country"},
	{"Mergers and acquisitions", "American biotechnology company"},
	{"Economic sanctions", "Country"},
	{"Insider trading", "Banking"},
	{"Illegal logging", "Companies"},
	{"International trade", "Asian country"},
}

// BuildTasks derives the study's task list from the corpus gold labels.
// At most 8 tasks are returned (the paper's count).
func BuildTasks(g *kg.Graph, c *corpus.Corpus) []Task {
	var tasks []Task
	for _, spec := range taskSpecs {
		topic, ok1 := g.Lookup(spec.topic)
		group, ok2 := g.Lookup(spec.group)
		if !ok1 || !ok2 {
			continue
		}
		groupSet := make(map[kg.NodeID]struct{})
		for _, v := range g.ExtentClosure(group, 0) {
			groupSet[v] = struct{}{}
		}
		answers := make(map[kg.NodeID]struct{})
		for i := range c.Docs {
			d := &c.Docs[i]
			if d.Gold(topic) < 3.5 {
				continue
			}
			for _, e := range d.GoldEntities {
				if _, ok := groupSet[e]; ok {
					answers[e] = struct{}{}
				}
			}
		}
		// A 2-minute study task needs more than a single needle; require
		// at least two reachable answers.
		if len(answers) < 2 {
			continue
		}
		tasks = append(tasks, Task{
			ID:    len(tasks) + 1,
			Name:  spec.topic + " × " + spec.group,
			Topic: topic, Group: group,
			Answers: answers,
		})
		if len(tasks) == 8 {
			break
		}
	}
	return tasks
}

// AnalystParams model one tool's interaction costs (seconds) and the
// probability that an analyst reading a relevant article actually
// extracts an answer entity from it.
type AnalystParams struct {
	Budget          float64 // total session seconds (the study used 120)
	QueryCost       float64 // formulating a query / operation
	QueryCostStd    float64
	ScanCost        float64 // reading one result
	ScanCostStd     float64
	SkimCost        float64 // re-encountering an already-read result
	RecognitionProb float64 // extracting an answer from a relevant doc
	ResultsPerQuery int
}

// KeywordParams models the incumbent keyword workflow: repeated query
// reformulation against a keyword list, flat result lists with no
// entity highlighting (lower extraction probability, slower reads).
func KeywordParams() AnalystParams {
	return AnalystParams{
		Budget: 120, QueryCost: 14, QueryCostStd: 4,
		ScanCost: 8, ScanCostStd: 2, SkimCost: 1.5,
		RecognitionProb: 0.6, ResultsPerQuery: 8,
	}
}

// NCExplorerParams models the roll-up workflow: one concept-pattern
// query retrieves a consolidated list whose results are linked to the
// query concepts ("each linked to entities relevant to the chosen
// topics, highlighted in color"), so reading is faster and extraction
// more reliable; drill-down suggestions replace manual reformulation.
func NCExplorerParams() AnalystParams {
	return AnalystParams{
		Budget: 120, QueryCost: 12, QueryCostStd: 3,
		ScanCost: 5, ScanCostStd: 1.5, SkimCost: 1,
		RecognitionProb: 0.9, ResultsPerQuery: 20,
	}
}

// keywordVariants is the terminology rotation a compliance analyst
// works through ("compliance teams laboriously maintain extensive lists
// of financial crime terminology").
var keywordVariants = []string{
	"", "investigation", "report", "probe", "case", "scandal",
	"inquiry", "charges", "allegations",
}

// SimulateKeywordSession runs one analyst session against the keyword
// (Lucene) tool and returns the number of distinct correct answers
// found within the budget.
func SimulateKeywordSession(r *xrand.Rand, task Task, lucene *baselines.Lucene,
	c *corpus.Corpus, g *kg.Graph, p AnalystParams) int {

	found := make(map[kg.NodeID]struct{})
	read := make(map[corpus.DocID]struct{})
	t := 0.0
	variant := 0
	for t < p.Budget {
		t += clampMin(r.Norm(p.QueryCost, p.QueryCostStd), 4)
		if t >= p.Budget {
			break
		}
		text := g.Name(task.Topic) + " " + g.Name(task.Group) + " " + keywordVariants[variant%len(keywordVariants)]
		variant++
		hits := lucene.Search(baselines.Query{Text: text}, p.ResultsPerQuery)
		for _, h := range hits {
			if _, seen := read[h.Doc]; seen {
				t += p.SkimCost
				continue
			}
			t += clampMin(r.Norm(p.ScanCost, p.ScanCostStd), 2)
			if t >= p.Budget {
				break
			}
			read[h.Doc] = struct{}{}
			harvest(r, c.Doc(h.Doc), task, p.RecognitionProb, found)
		}
	}
	return len(found)
}

// SimulateNCExplorerSession runs one analyst session against the
// roll-up/drill-down tool.
func SimulateNCExplorerSession(r *xrand.Rand, task Task, e *core.Engine,
	c *corpus.Corpus, p AnalystParams) int {

	found := make(map[kg.NodeID]struct{})
	read := make(map[corpus.DocID]struct{})
	t := clampMin(r.Norm(p.QueryCost, p.QueryCostStd), 4) // roll-up formulation

	q := core.Query{task.Topic, task.Group}
	results := e.RollUp(q, p.ResultsPerQuery)
	scan := func(docs []core.DocResult) {
		for _, res := range docs {
			if t >= p.Budget {
				return
			}
			if _, seen := read[res.Doc]; seen {
				t += p.SkimCost
				continue
			}
			t += clampMin(r.Norm(p.ScanCost, p.ScanCostStd), 1.5)
			if t >= p.Budget {
				return
			}
			read[res.Doc] = struct{}{}
			harvest(r, c.Doc(res.Doc), task, p.RecognitionProb, found)
		}
	}
	scan(results)

	// After exhausting the list, the analyst drills into suggested
	// subtopics instead of re-keywording.
	if t < p.Budget {
		subs := e.DrillDown(q, 3)
		for _, sub := range subs {
			if t >= p.Budget {
				break
			}
			t += clampMin(r.Norm(8, 2), 3) // choosing a subtopic
			scan(e.RollUp(append(core.Query{sub.Concept}, q...), p.ResultsPerQuery))
		}
	}
	return len(found)
}

// harvest extracts answers from a document: each answer entity present
// in a sufficiently on-topic article is recognised with probability p.
func harvest(r *xrand.Rand, d *corpus.Document, task Task, prob float64, found map[kg.NodeID]struct{}) {
	if d.Gold(task.Topic) < 3.0 {
		return
	}
	for _, e := range d.GoldEntities {
		if _, isAnswer := task.Answers[e]; !isAnswer {
			continue
		}
		if _, have := found[e]; have {
			continue
		}
		if r.Bool(prob) {
			found[e] = struct{}{}
		}
	}
}

func clampMin(x, lo float64) float64 {
	if x < lo {
		return lo
	}
	return x
}

// StudyResult is one task's outcome across the participant group.
type StudyResult struct {
	Task     Task
	Keyword  []float64 // answers per participant
	Explorer []float64
}

// RunStudy simulates n participants performing the task with both
// tools (the paper recruited 10 financial professionals).
func RunStudy(task Task, n int, seed uint64, lucene *baselines.Lucene,
	engine *core.Engine, c *corpus.Corpus, g *kg.Graph) StudyResult {

	res := StudyResult{Task: task}
	for u := 0; u < n; u++ {
		rk := xrand.Stream(seed^uint64(task.ID)<<32, uint64(u)*2)
		rn := xrand.Stream(seed^uint64(task.ID)<<32, uint64(u)*2+1)
		res.Keyword = append(res.Keyword,
			float64(SimulateKeywordSession(rk, task, lucene, c, g, KeywordParams())))
		res.Explorer = append(res.Explorer,
			float64(SimulateNCExplorerSession(rn, task, engine, c, NCExplorerParams())))
	}
	return res
}
