package eval

import (
	"math"
	"sync"
	"testing"

	"ncexplorer/internal/baselines"
	"ncexplorer/internal/core"
	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
	"ncexplorer/internal/stats"
	"ncexplorer/internal/xrand"
)

func TestDCG(t *testing.T) {
	gains := []float64{3, 2, 3, 0, 1, 2}
	// DCG@6 = 3 + 2/log2(3) + 3/2 + 0 + 1/log2(6) + 2/log2(7)
	want := 3 + 2/math.Log2(3) + 3/2.0 + 0 + 1/math.Log2(6) + 2/math.Log2(7)
	if got := DCG(gains, 6); math.Abs(got-want) > 1e-12 {
		t.Errorf("DCG = %v, want %v", got, want)
	}
	if got := DCG(gains, 1); got != 3 {
		t.Errorf("DCG@1 = %v", got)
	}
	if got := DCG(gains, 100); math.Abs(got-want) > 1e-12 {
		t.Error("k beyond length should clamp")
	}
}

func TestNDCG(t *testing.T) {
	pool := []float64{3, 2, 3, 0, 1, 2}
	// Perfect ranking ⇒ 1.
	if got := NDCG([]float64{3, 3, 2, 2, 1, 0}, pool, 6); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect NDCG = %v", got)
	}
	// Worst ranking < 1.
	worst := NDCG([]float64{0, 1, 2, 2, 3, 3}, pool, 6)
	if worst >= 1 || worst <= 0 {
		t.Errorf("worst NDCG = %v", worst)
	}
	// Zero pool ⇒ 0.
	if got := NDCG([]float64{0}, []float64{0, 0}, 1); got != 0 {
		t.Errorf("zero pool NDCG = %v", got)
	}
	// NDCG@1 with the best doc first.
	if got := NDCG([]float64{3}, pool, 1); got != 1 {
		t.Errorf("NDCG@1 = %v", got)
	}
}

func TestPoolDeterminismAndRange(t *testing.T) {
	p1 := NewPool(78, 9)
	p2 := NewPool(78, 9)
	for i := 0; i < 200; i++ {
		doc := corpus.DocID(i % 37)
		sem := float64(i%6) - 0.2
		if sem < 0 {
			sem = 0
		}
		surf := float64(i%10) / 10
		r1 := p1.Rate(42, doc, sem, surf)
		r2 := p2.Rate(42, doc, sem, surf)
		if r1 != r2 {
			t.Fatalf("pool not deterministic at %d", i)
		}
		if r1 < 0 || r1 > 5 {
			t.Fatalf("rating out of range: %v", r1)
		}
	}
	if p1.Ratings() != 600 {
		t.Errorf("ratings counter = %d, want 600", p1.Ratings())
	}
}

func TestPoolTracksSemantics(t *testing.T) {
	p := NewPool(78, 3)
	// Average rating must increase with semantic grade.
	avg := func(sem float64) float64 {
		sum := 0.0
		for d := 0; d < 200; d++ {
			sum += p.Rate(7, corpus.DocID(d), sem, 0.2)
		}
		return sum / 200
	}
	lo, hi := avg(1), avg(4.5)
	if hi-lo < 2 {
		t.Errorf("ratings poorly separated: %v vs %v", lo, hi)
	}
}

func TestPoolSurfaceComponent(t *testing.T) {
	p := NewPool(78, 3)
	// With equal semantics, higher surface match ⇒ higher rating —
	// the "confidence in surface words" effect.
	avg := func(surf float64) float64 {
		sum := 0.0
		for d := 0; d < 300; d++ {
			sum += p.Rate(11, corpus.DocID(d), 2.5, surf)
		}
		return sum / 300
	}
	// Expected: surf=1 ⇒ w=0.78 ⇒ 0.22·2.5+0.78·5 = 4.45;
	// surf=0 ⇒ w=0.08 ⇒ 0.92·2.5 = 2.3; diff ≈ 2.1 (minus clamping).
	if diff := avg(1.0) - avg(0.0); diff < 1.6 || diff > 2.6 {
		t.Errorf("surface effect = %v, want ≈ 2.1", diff)
	}
	// Confidence weighting: the marginal effect of surface grows with
	// surface itself (convex response).
	low := avg(0.4) - avg(0.0)
	high := avg(1.0) - avg(0.6)
	if high <= low {
		t.Errorf("surface anchoring should be convex: Δhigh %v ≤ Δlow %v", high, low)
	}
}

// ── usersim ─────────────────────────────────────────────────────────

var (
	usOnce   sync.Once
	usG      *kg.Graph
	usC      *corpus.Corpus
	usE      *core.Engine
	usLucene *baselines.Lucene
)

func usersimWorld(t testing.TB) {
	t.Helper()
	usOnce.Do(func() {
		var meta *kggen.Meta
		usG, meta = kggen.MustGenerate(kggen.Tiny())
		usC = corpus.MustGenerate(usG, meta, corpus.Tiny())
		usE = core.NewEngine(usG, core.Options{Seed: 3, Samples: 15})
		usE.IndexCorpus(usC)
		usLucene = baselines.NewLucene()
		if err := usLucene.Index(usC); err != nil {
			panic(err)
		}
	})
}

func TestBuildTasks(t *testing.T) {
	usersimWorld(t)
	tasks := BuildTasks(usG, usC)
	if len(tasks) < 4 {
		t.Fatalf("only %d tasks buildable at tiny scale", len(tasks))
	}
	for _, task := range tasks {
		if len(task.Answers) == 0 {
			t.Errorf("task %q has no answers", task.Name)
		}
		for a := range task.Answers {
			if !usG.IsInstance(a) {
				t.Errorf("task %q answer %v is not an instance", task.Name, a)
			}
		}
	}
}

func TestSimulationsFindAnswers(t *testing.T) {
	usersimWorld(t)
	tasks := BuildTasks(usG, usC)
	task := tasks[0]
	r := xrand.New(1)
	kw := SimulateKeywordSession(r, task, usLucene, usC, usG, KeywordParams())
	nc := SimulateNCExplorerSession(xrand.New(2), task, usE, usC, NCExplorerParams())
	if kw < 0 || nc < 0 {
		t.Fatal("negative answers")
	}
	if kw > len(task.Answers) || nc > len(task.Answers) {
		t.Fatal("found more answers than exist")
	}
}

func TestStudyShapeMatchesPaper(t *testing.T) {
	// Table III: NCExplorer produces more answers on average, and the
	// one-sided Welch test is significant on most tasks.
	usersimWorld(t)
	tasks := BuildTasks(usG, usC)
	significant := 0
	for _, task := range tasks {
		res := RunStudy(task, 10, 77, usLucene, usE, usC, usG)
		mk, mn := stats.Mean(res.Keyword), stats.Mean(res.Explorer)
		if mn <= mk {
			t.Errorf("task %q: explorer mean %.2f ≤ keyword mean %.2f", task.Name, mn, mk)
			continue
		}
		w, err := stats.WelchOneSided(res.Explorer, res.Keyword)
		if err != nil {
			t.Fatal(err)
		}
		if w.P < 0.05 {
			significant++
		}
	}
	if significant < len(tasks)/2 {
		t.Errorf("only %d/%d tasks significant at α=0.05", significant, len(tasks))
	}
}

func TestStudyDeterminism(t *testing.T) {
	usersimWorld(t)
	tasks := BuildTasks(usG, usC)
	a := RunStudy(tasks[0], 5, 1, usLucene, usE, usC, usG)
	b := RunStudy(tasks[0], 5, 1, usLucene, usE, usC, usG)
	for i := range a.Keyword {
		if a.Keyword[i] != b.Keyword[i] || a.Explorer[i] != b.Explorer[i] {
			t.Fatal("study not deterministic")
		}
	}
}

func BenchmarkStudyTask(b *testing.B) {
	usersimWorld(b)
	tasks := BuildTasks(usG, usC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunStudy(tasks[0], 10, uint64(i), usLucene, usE, usC, usG)
	}
}
