package eval

import (
	"math"
	"sync/atomic"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/xrand"
)

// EvaluatorPool simulates the paper's crowd-sourced raters. Each of the
// n evaluators carries a stable personal bias; a (query, document) pair
// is assigned RatersPerDoc evaluators deterministically and its
// reported rating is their average.
//
// The rating model encodes the paper's own observation that "evaluators
// show greater confidence in commonly known surface words … while
// expressing uncertainty about specialized terms": a rating mixes the
// document's *semantic* relevance (the generation-time gold grade, what
// a careful reader can in principle judge) with its *surface keyword
// match* to the query, plus evaluator bias and per-rating noise,
// clamped to the 0–5 scale used in the study.
//
// The surface share is confidence-weighted: the stronger the visible
// keyword overlap, the more the evaluator anchors on it
// (weight = SurfaceBase + SurfaceSlope·surface). A document stuffed
// with the query's exact words is judged largely by those words; a
// document using specialist vocabulary is judged on substance. This
// nonlinearity is what lets a semantics-only re-ranker *hurt* a
// keyword-ordered list (Table II's Lucene row) while helping everyone
// else.
type EvaluatorPool struct {
	// SurfaceBase is the minimum share of the rating driven by keyword
	// overlap (default 0.08).
	SurfaceBase float64
	// SurfaceSlope adds surface share proportional to the surface match
	// itself (default 0.7; a perfect keyword match is judged
	// 0.08+0.7 = 78% by its keywords). The strength is calibrated so
	// that the Table-II directions of the paper emerge: see
	// EXPERIMENTS.md.
	SurfaceSlope float64
	// SurfaceCeiling bounds how far keyword confidence can lift a
	// rating above the document's true semantic relevance (default
	// 3.0). Raters grade each query concept; a keyword-dense article
	// that visibly fails one facet cannot be talked into a top grade by
	// word overlap alone.
	SurfaceCeiling float64
	// Familiarity discounts the semantic credit of articles written in
	// specialist vocabulary: raters "express uncertainty about
	// specialized terms such as takeover" and award only partial credit
	// when the query's surface words are absent. 1.0 (the default)
	// disables the discount; the harness exposes it as an ablation
	// knob — see EXPERIMENTS.md for its measured effect.
	Familiarity float64
	// Noise is the per-rating Gaussian error std-dev (default 0.4).
	Noise float64
	// RatersPerDoc is how many evaluators rate each pair (default 3).
	RatersPerDoc int

	seed    uint64
	biases  []float64
	ratings atomic.Int64
}

// NewPool creates a pool of n evaluators with deterministic biases.
func NewPool(n int, seed uint64) *EvaluatorPool {
	if n < 1 {
		panic("eval: pool needs at least one evaluator")
	}
	p := &EvaluatorPool{
		SurfaceBase:    0.08,
		SurfaceSlope:   0.7,
		SurfaceCeiling: 3.0,
		Familiarity:    1.0,
		Noise:          0.4,
		RatersPerDoc:   3,
		seed:           seed,
	}
	r := xrand.New(seed)
	p.biases = make([]float64, n)
	for i := range p.biases {
		p.biases[i] = r.Norm(0, 0.3)
	}
	return p
}

// NumEvaluators returns the pool size.
func (p *EvaluatorPool) NumEvaluators() int { return len(p.biases) }

// Ratings returns the number of individual ratings issued so far (the
// paper reports 3,900 across its study).
func (p *EvaluatorPool) Ratings() int64 { return p.ratings.Load() }

// Rate returns the averaged rating for a (query, document) pair.
//
//	queryKey — stable identifier of the query (for rater assignment);
//	doc      — the document being rated;
//	semantic — gold semantic relevance in [0, 5];
//	surface  — keyword-match strength in [0, 1] (normalised BM25).
func (p *EvaluatorPool) Rate(queryKey uint64, doc corpus.DocID, semantic, surface float64) float64 {
	r := xrand.Stream(p.seed^queryKey, uint64(doc))
	w := p.SurfaceBase + p.SurfaceSlope*surface
	if w > 1 {
		w = 1
	}
	surfValue := 5 * surface
	if cap := semantic + p.SurfaceCeiling; surfValue > cap {
		surfValue = cap
	}
	fam := p.Familiarity
	if fam <= 0 || fam > 1 {
		fam = 1
	}
	semEff := semantic * (fam + (1-fam)*math.Sqrt(surface))
	base := (1-w)*semEff + w*surfValue
	sum := 0.0
	k := p.RatersPerDoc
	if k < 1 {
		k = 1
	}
	for i := 0; i < k; i++ {
		rater := r.Intn(len(p.biases))
		rating := base + p.biases[rater] + r.Norm(0, p.Noise)
		if rating < 0 {
			rating = 0
		}
		if rating > 5 {
			rating = 5
		}
		sum += rating
		p.ratings.Add(1)
	}
	return sum / float64(k)
}
