// Package eval provides the evaluation apparatus of §IV: NDCG@K, the
// simulated Amazon-Mechanical-Turk evaluator pool that replaces the
// paper's 78 master-qualified raters, and the simulated financial
// analysts of the Table-III productivity study.
package eval

import (
	"math"
	"sort"
)

// DCG returns the discounted cumulative gain of a ranked gain list at
// cutoff k (log₂ discount, the formulation used with graded relevance).
func DCG(gains []float64, k int) float64 {
	if k > len(gains) {
		k = len(gains)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += gains[i] / math.Log2(float64(i)+2)
	}
	return sum
}

// NDCG returns DCG(ranked, k) normalised by the ideal DCG computed from
// the judged pool (sorted descending). A pool with no positive gain
// yields 0. ranked is the gain sequence in retrieved order; pool is the
// full set of judged gains for the query (across all methods), from
// which the ideal ranking is derived — the standard pooled-judgment
// convention.
func NDCG(ranked []float64, pool []float64, k int) float64 {
	ideal := append([]float64(nil), pool...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := DCG(ideal, k)
	if idcg == 0 {
		return 0
	}
	return DCG(ranked, k) / idcg
}
