// Package vecstore is the in-memory vector search engine standing in
// for Qdrant in the paper's setup (the BERT and NewsLink-BERT baselines
// retrieve documents by embedding similarity).
//
// Two retrieval paths are provided:
//
//   - Store.Search: exact cosine top-k by linear scan — the ground
//     truth, and fast enough at corpus scale;
//   - IVF: an inverted-file index (k-means coarse quantiser, nprobe
//     cells searched) mirroring how production vector engines trade a
//     little recall for speed. The paper's Fig. 5 discussion ("recent
//     development on vector databases … Lucene compatible speed") is
//     reproduced by benchmarking both paths.
package vecstore

import (
	"fmt"

	"ncexplorer/internal/embed"
	"ncexplorer/internal/topk"
	"ncexplorer/internal/xrand"
)

// Hit is one vector search result.
type Hit struct {
	ID    int32
	Score float64 // cosine similarity
}

// Store holds vectors by ID. Vectors should be L2-normalised (the
// embedder guarantees this); search still computes true cosine.
type Store struct {
	dim  int
	ids  []int32
	vecs [][]float32
}

// New returns an empty store for vectors of the given dimensionality.
func New(dim int) *Store {
	if dim <= 0 {
		panic("vecstore: non-positive dimension")
	}
	return &Store{dim: dim}
}

// Len returns the number of stored vectors.
func (s *Store) Len() int { return len(s.ids) }

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// Add stores a vector under an ID. The vector is not copied.
func (s *Store) Add(id int32, v []float32) error {
	if len(v) != s.dim {
		return fmt.Errorf("vecstore: vector dim %d, want %d", len(v), s.dim)
	}
	s.ids = append(s.ids, id)
	s.vecs = append(s.vecs, v)
	return nil
}

// Search returns the k nearest stored vectors by cosine similarity,
// exactly, in descending score order (ties: insertion order).
func (s *Store) Search(q []float32, k int) []Hit {
	if len(q) != s.dim {
		panic("vecstore: query dimension mismatch")
	}
	coll := topk.New[int32](k)
	for i, v := range s.vecs {
		coll.Push(s.ids[i], embed.Cosine(q, v))
	}
	return toHits(coll)
}

func toHits(coll *topk.Collector[int32]) []Hit {
	items := coll.Sorted()
	out := make([]Hit, len(items))
	for i, it := range items {
		out[i] = Hit{ID: it.Value, Score: it.Score}
	}
	return out
}

// IVF is an inverted-file approximate index over a Store snapshot.
type IVF struct {
	store     *Store
	centroids [][]float32
	lists     [][]int // indexes into store arrays
}

// BuildIVF clusters the store's vectors into nlist cells with k-means
// (iters rounds, deterministic given seed) and assigns each vector to
// its nearest centroid. The store must not grow afterwards.
func BuildIVF(s *Store, nlist, iters int, seed uint64) *IVF {
	if nlist <= 0 {
		panic("vecstore: non-positive nlist")
	}
	if nlist > s.Len() {
		nlist = s.Len()
	}
	r := xrand.New(seed)
	// k-means++ style seeding is unnecessary here; random distinct
	// starting points are fine for retrieval-quality clustering.
	perm := r.Perm(s.Len())
	centroids := make([][]float32, nlist)
	for i := 0; i < nlist; i++ {
		centroids[i] = append([]float32(nil), s.vecs[perm[i]]...)
	}
	assign := make([]int, s.Len())
	for it := 0; it < iters; it++ {
		for i, v := range s.vecs {
			assign[i] = nearestCentroid(centroids, v)
		}
		sums := make([][]float64, nlist)
		counts := make([]int, nlist)
		for i := range sums {
			sums[i] = make([]float64, s.dim)
		}
		for i, v := range s.vecs {
			c := assign[i]
			counts[c]++
			for d, x := range v {
				sums[c][d] += float64(x)
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cell with a random vector to keep
				// all cells useful.
				centroids[c] = append([]float32(nil), s.vecs[r.Intn(s.Len())]...)
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = float32(sums[c][d] / float64(counts[c]))
			}
		}
	}
	ivf := &IVF{store: s, centroids: centroids, lists: make([][]int, nlist)}
	for i, v := range s.vecs {
		c := nearestCentroid(centroids, v)
		ivf.lists[c] = append(ivf.lists[c], i)
	}
	return ivf
}

func nearestCentroid(centroids [][]float32, v []float32) int {
	best, bestSim := 0, -2.0
	for c, cent := range centroids {
		if sim := embed.Cosine(cent, v); sim > bestSim {
			best, bestSim = c, sim
		}
	}
	return best
}

// NumCells returns the number of IVF cells.
func (ivf *IVF) NumCells() int { return len(ivf.centroids) }

// Search scans the nprobe cells whose centroids are closest to the
// query and returns the top-k among their members.
func (ivf *IVF) Search(q []float32, k, nprobe int) []Hit {
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ivf.centroids) {
		nprobe = len(ivf.centroids)
	}
	cells := topk.New[int](nprobe)
	for c, cent := range ivf.centroids {
		cells.Push(c, embed.Cosine(cent, q))
	}
	coll := topk.New[int32](k)
	for _, cell := range cells.Values() {
		for _, i := range ivf.lists[cell] {
			coll.Push(ivf.store.ids[i], embed.Cosine(q, ivf.store.vecs[i]))
		}
	}
	return toHits(coll)
}
