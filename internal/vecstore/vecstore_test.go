package vecstore

import (
	"fmt"
	"testing"

	"ncexplorer/internal/embed"
	"ncexplorer/internal/xrand"
)

// clusteredData builds vectors around nClusters topic centroids, like
// documents around topics.
func clusteredData(dim, nClusters, perCluster int, seed uint64) (*Store, [][]float32) {
	r := xrand.New(seed)
	s := New(dim)
	centers := make([][]float32, nClusters)
	id := int32(0)
	for c := 0; c < nClusters; c++ {
		center := make([]float32, dim)
		for d := range center {
			center[d] = float32(r.NormFloat64())
		}
		centers[c] = center
		for p := 0; p < perCluster; p++ {
			v := make([]float32, dim)
			for d := range v {
				v[d] = center[d] + 0.3*float32(r.NormFloat64())
			}
			if err := s.Add(id, v); err != nil {
				panic(err)
			}
			id++
		}
	}
	return s, centers
}

func TestExactSearchFindsNearest(t *testing.T) {
	s, centers := clusteredData(32, 4, 25, 1)
	for c, center := range centers {
		hits := s.Search(center, 10)
		if len(hits) != 10 {
			t.Fatalf("hits = %d", len(hits))
		}
		// All top hits should come from cluster c (ids c*25..c*25+24).
		for _, h := range hits {
			if int(h.ID)/25 != c {
				t.Errorf("cluster %d query returned id %d (cluster %d)", c, h.ID, int(h.ID)/25)
			}
		}
		for i := 1; i < len(hits); i++ {
			if hits[i].Score > hits[i-1].Score {
				t.Fatal("hits not sorted")
			}
		}
	}
}

func TestSearchExactMatchTop1(t *testing.T) {
	s, _ := clusteredData(16, 3, 10, 2)
	q := append([]float32(nil), s.vecs[7]...)
	hits := s.Search(q, 1)
	if hits[0].ID != 7 {
		t.Fatalf("self-query returned %d", hits[0].ID)
	}
	if hits[0].Score < 0.999 {
		t.Fatalf("self-similarity = %v", hits[0].Score)
	}
}

func TestAddDimensionValidation(t *testing.T) {
	s := New(8)
	if err := s.Add(1, make([]float32, 7)); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := s.Add(1, make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Dim() != 8 {
		t.Fatal("accessor mismatch")
	}
}

func TestIVFRecall(t *testing.T) {
	s, _ := clusteredData(32, 8, 50, 3)
	ivf := BuildIVF(s, 8, 5, 42)
	if ivf.NumCells() != 8 {
		t.Fatalf("cells = %d", ivf.NumCells())
	}
	r := xrand.New(9)
	const k = 10
	overlap, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		q := append([]float32(nil), s.vecs[r.Intn(s.Len())]...)
		exact := s.Search(q, k)
		approx := ivf.Search(q, k, 3)
		set := map[int32]struct{}{}
		for _, h := range exact {
			set[h.ID] = struct{}{}
		}
		for _, h := range approx {
			if _, ok := set[h.ID]; ok {
				overlap++
			}
		}
		total += k
	}
	recall := float64(overlap) / float64(total)
	if recall < 0.85 {
		t.Fatalf("IVF recall@%d = %.2f, want ≥0.85 on clustered data", k, recall)
	}
}

func TestIVFNprobeMonotone(t *testing.T) {
	// More probes ⇒ recall can only improve (same or better).
	s, _ := clusteredData(16, 6, 40, 4)
	ivf := BuildIVF(s, 6, 4, 7)
	q := append([]float32(nil), s.vecs[11]...)
	exact := s.Search(q, 5)
	set := map[int32]struct{}{}
	for _, h := range exact {
		set[h.ID] = struct{}{}
	}
	prev := -1
	for nprobe := 1; nprobe <= 6; nprobe++ {
		got := 0
		for _, h := range ivf.Search(q, 5, nprobe) {
			if _, ok := set[h.ID]; ok {
				got++
			}
		}
		if got < prev {
			t.Fatalf("recall decreased from %d to %d at nprobe=%d", prev, got, nprobe)
		}
		prev = got
	}
	if prev != 5 {
		t.Fatalf("full probe should reach exact results, got %d/5", prev)
	}
}

func TestIVFDeterminism(t *testing.T) {
	s, _ := clusteredData(16, 4, 30, 5)
	a := BuildIVF(s, 4, 3, 11)
	b := BuildIVF(s, 4, 3, 11)
	q := append([]float32(nil), s.vecs[3]...)
	ha, hb := a.Search(q, 5, 2), b.Search(q, 5, 2)
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatal("IVF not deterministic")
		}
	}
}

func TestIVFSmallStore(t *testing.T) {
	s := New(4)
	for i := int32(0); i < 3; i++ {
		_ = s.Add(i, []float32{float32(i), 1, 0, 0})
	}
	ivf := BuildIVF(s, 10, 2, 1) // nlist > len collapses to len
	if ivf.NumCells() != 3 {
		t.Fatalf("cells = %d", ivf.NumCells())
	}
	hits := ivf.Search([]float32{2, 1, 0, 0}, 2, 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestEndToEndWithEmbedder(t *testing.T) {
	e := embed.New(64)
	s := New(64)
	docs := []string{
		"tariffs and trade disputes dominate the summit",
		"the union called a strike over wages",
		"a merger premium lifted biotech shares",
		"import tariffs rattled exporters and customs officials",
	}
	for i, d := range docs {
		if err := s.Add(int32(i), e.EmbedText(d)); err != nil {
			t.Fatal(err)
		}
	}
	hits := s.Search(e.EmbedText("trade tariffs and customs"), 2)
	if hits[0].ID != 3 && hits[0].ID != 0 {
		t.Fatalf("expected a trade doc first, got %d", hits[0].ID)
	}
	if hits[1].ID != 0 && hits[1].ID != 3 {
		t.Fatalf("expected both trade docs on top, got %+v", hits)
	}
}

func BenchmarkExactSearch(b *testing.B) {
	s, _ := clusteredData(256, 10, 200, 1)
	q := append([]float32(nil), s.vecs[42]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(q, 10)
	}
}

func BenchmarkIVFSearch(b *testing.B) {
	s, _ := clusteredData(256, 10, 200, 1)
	ivf := BuildIVF(s, 16, 5, 2)
	q := append([]float32(nil), s.vecs[42]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ivf.Search(q, 10, 4)
	}
}

func ExampleStore_Search() {
	e := embed.New(32)
	s := New(32)
	_ = s.Add(1, e.EmbedText("court verdict on appeal"))
	_ = s.Add(2, e.EmbedText("election ballot recount"))
	hits := s.Search(e.EmbedText("appeal court ruling"), 1)
	fmt.Println(hits[0].ID)
	// Output: 1
}
