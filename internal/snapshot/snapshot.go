// Package snapshot holds the engine's post-index corpus state as a set
// of immutable segments behind a point-in-time snapshot — the structure
// that makes live ingestion possible over a lock-free query path.
//
// The design follows the segmented-index architecture of LSM-style
// search systems (and of the risk-monitoring pipelines the paper's
// due-diligence scenario implies, where news arrives continuously):
//
//   - a Segment is the immutable product of indexing one batch of
//     documents: per-document records (source, linked entities, raw
//     entity term frequencies, candidate concepts), the display
//     articles, a frozen per-segment text index, and entity→document
//     postings. Once built, a segment is never written again, so any
//     number of query goroutines read it without synchronisation;
//   - a Snapshot is an ordered list of segments plus a merged text
//     view reporting corpus-GLOBAL statistics (textindex.Merged), so
//     term weights over a grown corpus are bit-identical to a
//     from-scratch rebuild. Snapshots are stamped with a Generation
//     that increases with every content change; the engine publishes
//     the current snapshot through an atomic pointer and queries pin
//     one snapshot for their whole execution.
//
// Document IDs are global and dense: segment i owns the contiguous
// range [Base, Base+len(Docs)). IDs are append-only — a document never
// changes ID across ingests or merges — which is what lets
// generation-independent per-document values (entity lists, raw term
// frequencies, connectivity scores keyed by (concept, doc)) be shared
// across generations.
//
// What does NOT live here: anything derived from corpus-global term
// statistics (cdr scores, candidate rankings). Those change whenever
// the corpus grows and are recomputed per generation by the engine.
package snapshot

import (
	"sort"
	"strconv"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/textindex"
)

// DocRecord is the immutable, generation-independent indexing product
// of one document.
type DocRecord struct {
	// Source is the news portal the document came from.
	Source corpus.Source
	// Entities are the distinct linked entities in first-mention order.
	Entities []kg.NodeID
	// EntityFreq maps each linked entity to its mention count — the raw
	// term frequencies behind the segment text index, retained so merges
	// can rebuild a combined index without re-running the NLP pipeline.
	EntityFreq map[kg.NodeID]int
	// Candidates are the document's candidate subtopic concepts (the
	// direct Ψ⁻¹ concepts of its entities plus the configured number of
	// `broader` ancestor levels), sorted by node ID. The set depends
	// only on the document and the graph; which candidates are *kept*
	// and how they score is generation-dependent and computed elsewhere.
	Candidates []kg.NodeID
	// PublishedAt is the document's publication time (Unix seconds,
	// UTC). Always non-zero once indexed: the engine defaults missing
	// timestamps at ingest, so time-range pruning never has to treat
	// zero as "unknown".
	PublishedAt int64
}

// Scoring blocks: the pruned query planner bounds scores per fixed
// window of the global document-ID space. BlockSize documents share a
// block; block b covers global IDs [b<<BlockShift, (b+1)<<BlockShift).
// Blocks are aligned to GLOBAL IDs (not segment-local ones) so block
// identities — and the per-block maxima below — survive segment merges
// unchanged.
const (
	// BlockShift is log2(BlockSize).
	BlockShift = 6
	// BlockSize is the number of consecutive global document IDs per
	// scoring block.
	BlockSize = 1 << BlockShift
)

// BlockTF records the maximum raw term frequency an entity reaches in
// one scoring block of a segment.
type BlockTF struct {
	// Block is the global block index (doc >> BlockShift).
	Block int32
	// TF is the maximum EntityFreq of the entity over the block's
	// documents within this segment (≥ 1: the entity occurs).
	TF int32
}

// Segment is one immutable indexed batch of documents.
type Segment struct {
	// Base is the global ID of the segment's first document.
	Base int32
	// Docs are the per-document records, indexed by local ID.
	Docs []DocRecord
	// Articles carries the display payload (title, body, source) for
	// each document, aligned with Docs. Article IDs are global.
	Articles []corpus.Document
	// Text is the segment's frozen entity-term index (local doc IDs).
	Text *textindex.Index
	// EntDocs maps an entity to the GLOBAL IDs of the segment documents
	// mentioning it, ascending.
	EntDocs map[kg.NodeID][]int32
	// MaxTF maps an entity to its per-block maximum raw term frequency
	// (blocks ascending; only blocks where the entity occurs appear).
	// This is the persistent half of the block-max score ceilings: the
	// saturation tf/(tf+1) is monotone in tf, so the block's maximum tf
	// bounds every document's saturated term weight in the block, for
	// any generation's idf. Derived deterministically from Docs (see
	// ComputeMaxTF), so decoders can validate it by recomputation.
	MaxTF map[kg.NodeID][]BlockTF
	// MinTime and MaxTime bound the PublishedAt values of the segment's
	// documents (inclusive; both zero for an empty segment). Derived
	// deterministically from Docs in BuildSegment — merges rebuild
	// through BuildSegment, so the bounds stay exact (never widened) —
	// letting queries discard whole segments disjoint from a time-range
	// filter before touching any posting list.
	MinTime int64
	MaxTime int64
}

// Len returns the segment's document count.
func (s *Segment) Len() int { return len(s.Docs) }

// Snapshot is a consistent point-in-time view of the whole indexed
// corpus: an ordered segment list plus the merged text-statistics
// view. Immutable after construction.
type Snapshot struct {
	// Generation increases with every content change (initial index = 1,
	// each ingested batch +1). Segment merges keep the generation: they
	// reorganise storage without changing any answer.
	Generation uint64
	// Segments are ordered by Base; ranges are contiguous from 0.
	Segments []*Segment
	// Text reports corpus-global term statistics over all segments.
	Text *textindex.Merged

	numDocs  int
	docBound int
}

// New assembles a snapshot over segments (which must be contiguous and
// in base order, starting at 0).
func New(generation uint64, segments []*Segment) *Snapshot {
	n := 0
	for _, seg := range segments {
		if int(seg.Base) != n {
			panic("snapshot: segments not contiguous")
		}
		n += seg.Len()
	}
	return NewSharded(generation, segments, nil)
}

// NewSharded assembles a snapshot over one shard's segments of a
// corpus whose remaining documents live on other shards. Segments keep
// their GLOBAL document IDs, so the ID space seen here has gaps: bases
// must be ascending and ranges non-overlapping, but need not start at
// 0 or tile the space. remote carries the term statistics of the
// documents held elsewhere (nil means none), making every IDF/TF-IDF
// read corpus-global — bit-identical to a monolithic snapshot over the
// union. Lookups by ID (Doc, Article, segmentOf) remain valid only for
// documents this shard owns; dense iteration must walk Segments rather
// than the ID range.
func NewSharded(generation uint64, segments []*Segment, remote *textindex.RemoteStats) *Snapshot {
	parts := make([]*textindex.Index, len(segments))
	bases := make([]int32, len(segments))
	n, bound := 0, 0
	for i, seg := range segments {
		if int(seg.Base) < bound {
			panic("snapshot: segments overlap or out of order")
		}
		parts[i] = seg.Text
		bases[i] = seg.Base
		n += seg.Len()
		bound = int(seg.Base) + seg.Len()
	}
	return &Snapshot{
		Generation: generation,
		Segments:   segments,
		Text:       textindex.NewMergedRemote(parts, bases, remote),
		numDocs:    n,
		docBound:   bound,
	}
}

// NumDocs returns the total document count held locally.
func (s *Snapshot) NumDocs() int { return s.numDocs }

// DocBound returns one past the highest global document ID held
// locally. Arrays indexed by global ID must be sized by DocBound, not
// NumDocs: a sharded snapshot's ID space has gaps, so the two differ.
// For a contiguous (monolithic) snapshot they are equal.
func (s *Snapshot) DocBound() int { return s.docBound }

// segmentOf returns the segment owning a global document ID.
func (s *Snapshot) segmentOf(doc int32) *Segment {
	// Segments are few (merge policy bounds them); binary search over
	// bases keeps lookups cheap either way.
	lo, hi := 0, len(s.Segments)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Segments[mid].Base <= doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.Segments[lo-1]
}

// HasDoc reports whether the snapshot holds the document locally (a
// sharded snapshot's ID space has gaps where peers' segments live).
func (s *Snapshot) HasDoc(doc int32) bool {
	if doc < 0 || len(s.Segments) == 0 || doc < s.Segments[0].Base {
		return false
	}
	seg := s.segmentOf(doc)
	return doc-seg.Base < int32(len(seg.Docs))
}

// Doc returns the record of a global document ID.
func (s *Snapshot) Doc(doc int32) *DocRecord {
	seg := s.segmentOf(doc)
	return &seg.Docs[doc-seg.Base]
}

// Article returns the display document of a global ID. Because
// documents are append-only and immutable, reading an article through
// any snapshot at least as new as the one that served the query
// returns identical content.
func (s *Snapshot) Article(doc int32) *corpus.Document {
	seg := s.segmentOf(doc)
	return &seg.Articles[doc-seg.Base]
}

// EntityDocs calls fn with each segment's posting list for entity v,
// in ascending global-ID order (segment lists are sorted and segments
// are base-ordered, so the concatenation is globally sorted). No
// allocation: callers stream the lists instead of materialising a
// merged slice.
func (s *Snapshot) EntityDocs(v kg.NodeID, fn func(docs []int32)) {
	for _, seg := range s.Segments {
		if docs := seg.EntDocs[v]; len(docs) > 0 {
			fn(docs)
		}
	}
}

// BuildSegment assembles an immutable segment from per-document raw
// indexing products. docs and articles must be aligned; article IDs
// are rewritten to their global values.
func BuildSegment(base int32, docs []DocRecord, articles []corpus.Document) *Segment {
	seg := &Segment{
		Base:     base,
		Docs:     docs,
		Articles: articles,
		Text:     textindex.New(),
		EntDocs:  make(map[kg.NodeID][]int32),
	}
	for i := range docs {
		global := base + int32(i)
		seg.Articles[i].ID = corpus.DocID(global)
		tf := make(map[string]int, len(docs[i].EntityFreq))
		for v, f := range docs[i].EntityFreq {
			tf[EntTerm(v)] = f
		}
		seg.Text.Add(int32(i), tf)
		for _, v := range docs[i].Entities {
			seg.EntDocs[v] = append(seg.EntDocs[v], global)
		}
		if t := docs[i].PublishedAt; i == 0 {
			seg.MinTime, seg.MaxTime = t, t
		} else if t < seg.MinTime {
			seg.MinTime = t
		} else if t > seg.MaxTime {
			seg.MaxTime = t
		}
	}
	seg.Text.Freeze()
	seg.MaxTF = ComputeMaxTF(base, docs)
	return seg
}

// ComputeMaxTF derives the per-entity, per-block maximum raw term
// frequencies of a segment from its document records. Exported so the
// persistence codec can validate a decoded table by recomputation.
func ComputeMaxTF(base int32, docs []DocRecord) map[kg.NodeID][]BlockTF {
	out := make(map[kg.NodeID][]BlockTF)
	for i := range docs {
		block := (base + int32(i)) >> BlockShift
		// Entities is the distinct-entity list, so each (doc, entity)
		// pair is visited once; blocks arrive in ascending order because
		// docs are ID-ordered.
		for _, v := range docs[i].Entities {
			tf := int32(docs[i].EntityFreq[v])
			if tf <= 0 {
				continue
			}
			bt := out[v]
			if n := len(bt); n > 0 && bt[n-1].Block == block {
				if tf > bt[n-1].TF {
					bt[n-1].TF = tf
				}
			} else {
				out[v] = append(bt, BlockTF{Block: block, TF: tf})
			}
		}
	}
	return out
}

// EntityMaxTF calls fn with each segment's block-max table for entity
// v. Segment tables cover disjoint document ranges but may share a
// block at segment boundaries (blocks are global-ID windows; a window
// can span two segments), so a block index may appear in more than one
// call — consumers take the running maximum per block.
func (s *Snapshot) EntityMaxTF(v kg.NodeID, fn func(table []BlockTF)) {
	for _, seg := range s.Segments {
		if table := seg.MaxTF[v]; len(table) > 0 {
			fn(table)
		}
	}
}

// NumBlocks returns the number of scoring blocks covering the local
// document-ID range. Block indexes derive from global IDs, so the
// count is bound-based: a sharded snapshot's blocks cover [0, DocBound)
// even though gap blocks hold no local documents.
func (s *Snapshot) NumBlocks() int {
	return (s.docBound + BlockSize - 1) / BlockSize
}

// Merge concatenates adjacent segments into one. Raw per-document data
// is carried over untouched and the text index is rebuilt from the
// retained term frequencies, so the merged segment indexes exactly the
// same content: every corpus-global statistic — and therefore every
// query answer — is unchanged. Merging is a storage reorganisation,
// not a content change, which is why it does not bump the generation.
func Merge(segments []*Segment) *Segment {
	n := 0
	for _, seg := range segments {
		n += seg.Len()
	}
	docs := make([]DocRecord, 0, n)
	articles := make([]corpus.Document, 0, n)
	for _, seg := range segments {
		docs = append(docs, seg.Docs...)
		articles = append(articles, seg.Articles...)
	}
	return BuildSegment(segments[0].Base, docs, articles)
}

// Rebase re-addresses a segment built at a speculative base to its
// committed base. Only the base-dependent products change: article IDs,
// the global entity→document postings (shifted in place), and the
// block-max tables (recomputed — block boundaries are global-ID
// windows, so a shift can re-bucket documents). The text index and the
// document records are local-ID data and are untouched. The segment
// must not have been published yet: Rebase mutates it in place and
// returns it.
func Rebase(seg *Segment, base int32) *Segment {
	if base == seg.Base {
		return seg
	}
	delta := base - seg.Base
	for i := range seg.Articles {
		seg.Articles[i].ID = corpus.DocID(base + int32(i))
	}
	for _, docs := range seg.EntDocs {
		for i := range docs {
			docs[i] += delta
		}
	}
	seg.Base = base
	seg.MaxTF = ComputeMaxTF(base, seg.Docs)
	return seg
}

// EntTerm renders an entity ID as a text-index term; the engine uses
// the same mapping when reading term weights back.
func EntTerm(v kg.NodeID) string { return strconv.Itoa(int(v)) }

// SortedCandidates sorts and dedupes a candidate concept list in
// place, returning it (helper for segment builders).
func SortedCandidates(cands []kg.NodeID) []kg.NodeID {
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	out := cands[:0]
	for i, c := range cands {
		if i == 0 || c != cands[i-1] {
			out = append(out, c)
		}
	}
	return out
}
