package snapshot

import (
	"reflect"
	"testing"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
)

// record builds a DocRecord over entity IDs with tf = 1 + (id % 3).
func record(src corpus.Source, ents ...kg.NodeID) DocRecord {
	freq := make(map[kg.NodeID]int, len(ents))
	for _, v := range ents {
		freq[v] = 1 + int(v)%3
	}
	return DocRecord{Source: src, Entities: ents, EntityFreq: freq}
}

func buildWorld(t *testing.T) ([]DocRecord, []corpus.Document) {
	t.Helper()
	var docs []DocRecord
	var arts []corpus.Document
	for i := 0; i < 9; i++ {
		ents := []kg.NodeID{kg.NodeID(i % 4), kg.NodeID(10 + i%3)}
		docs = append(docs, record(corpus.Source(i%3), ents...))
		arts = append(arts, corpus.Document{
			Source: corpus.Source(i % 3),
			Title:  "t",
			Body:   "b",
		})
	}
	return docs, arts
}

func TestSegmentGlobalIDs(t *testing.T) {
	docs, arts := buildWorld(t)
	seg := BuildSegment(100, docs, arts)
	if seg.Len() != len(docs) {
		t.Fatalf("len = %d, want %d", seg.Len(), len(docs))
	}
	for i, a := range seg.Articles {
		if int(a.ID) != 100+i {
			t.Fatalf("article %d ID = %d, want %d", i, a.ID, 100+i)
		}
	}
	for v, list := range seg.EntDocs {
		for i, d := range list {
			if d < 100 || int(d) >= 100+len(docs) {
				t.Fatalf("entity %d posting %d out of segment range", v, d)
			}
			if i > 0 && list[i-1] >= d {
				t.Fatalf("entity %d postings not ascending", v)
			}
		}
	}
}

// TestSnapshotPartitionEquivalence checks that splitting the same
// document set across segments changes nothing observable: doc
// lookups, entity postings (streamed in global order), and the merged
// text statistics all match the single-segment snapshot.
func TestSnapshotPartitionEquivalence(t *testing.T) {
	docs, arts := buildWorld(t)
	one := New(1, []*Segment{BuildSegment(0, docs, arts)})

	split := New(1, []*Segment{
		BuildSegment(0, docs[:4], arts[:4]),
		BuildSegment(4, docs[4:6], arts[4:6]),
		BuildSegment(6, docs[6:], arts[6:]),
	})
	if one.NumDocs() != split.NumDocs() {
		t.Fatalf("NumDocs %d vs %d", one.NumDocs(), split.NumDocs())
	}
	for d := int32(0); d < int32(one.NumDocs()); d++ {
		if !reflect.DeepEqual(one.Doc(d), split.Doc(d)) {
			t.Fatalf("doc %d differs across partitions", d)
		}
		if !reflect.DeepEqual(one.Article(d), split.Article(d)) {
			t.Fatalf("article %d differs across partitions", d)
		}
	}
	for v := kg.NodeID(0); v < 16; v++ {
		var a, b []int32
		one.EntityDocs(v, func(l []int32) { a = append(a, l...) })
		split.EntityDocs(v, func(l []int32) { b = append(b, l...) })
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("entity %d postings differ: %v vs %v", v, a, b)
		}
	}
	for v := kg.NodeID(0); v < 16; v++ {
		term := EntTerm(v)
		if one.Text.DF(term) != split.Text.DF(term) {
			t.Fatalf("DF(%s) differs", term)
		}
		for d := int32(0); d < int32(one.NumDocs()); d++ {
			if one.Text.TFIDF(term, d) != split.Text.TFIDF(term, d) {
				t.Fatalf("TFIDF(%s, %d) differs across partitions", term, d)
			}
		}
	}
}

// TestMergePreservesEverything: merging adjacent segments must leave
// every observable value — including the rebuilt text index — exactly
// as before.
func TestMergePreservesEverything(t *testing.T) {
	docs, arts := buildWorld(t)
	segs := []*Segment{
		BuildSegment(0, docs[:3], arts[:3]),
		BuildSegment(3, docs[3:5], arts[3:5]),
		BuildSegment(5, docs[5:], arts[5:]),
	}
	before := New(3, segs)
	merged := Merge(segs[1:])
	after := New(3, []*Segment{segs[0], merged})
	if merged.Base != 3 || merged.Len() != 6 {
		t.Fatalf("merged base/len = %d/%d, want 3/6", merged.Base, merged.Len())
	}
	for d := int32(0); d < int32(before.NumDocs()); d++ {
		if !reflect.DeepEqual(before.Doc(d), after.Doc(d)) {
			t.Fatalf("doc %d differs after merge", d)
		}
	}
	for v := kg.NodeID(0); v < 16; v++ {
		term := EntTerm(v)
		for d := int32(0); d < int32(before.NumDocs()); d++ {
			if before.Text.TFIDF(term, d) != after.Text.TFIDF(term, d) {
				t.Fatalf("TFIDF(%s, %d) changed across merge", term, d)
			}
		}
		var a, b []int32
		before.EntityDocs(v, func(l []int32) { a = append(a, l...) })
		after.EntityDocs(v, func(l []int32) { b = append(b, l...) })
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("entity %d postings changed across merge", v)
		}
	}
}

func TestNonContiguousSegmentsPanic(t *testing.T) {
	docs, arts := buildWorld(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-contiguous segments")
		}
	}()
	New(1, []*Segment{BuildSegment(5, docs, arts)})
}

// collectMaxTF folds a snapshot's per-segment block-max tables into one
// per-block maximum, the way the planner consumes them.
func collectMaxTF(s *Snapshot, v kg.NodeID) map[int32]int32 {
	out := map[int32]int32{}
	s.EntityMaxTF(v, func(table []BlockTF) {
		for _, bt := range table {
			if bt.TF > out[bt.Block] {
				out[bt.Block] = bt.TF
			}
		}
	})
	return out
}

// TestMaxTFBoundsEveryDocument: the folded block-max table must
// dominate the raw tf of every (entity, doc) pair, and every recorded
// block must be realised by at least one document (tightness).
func TestMaxTFBoundsEveryDocument(t *testing.T) {
	docs, arts := buildWorld(t)
	s := New(1, []*Segment{
		BuildSegment(0, docs[:4], arts[:4]),
		BuildSegment(4, docs[4:], arts[4:]),
	})
	for v := kg.NodeID(0); v < 16; v++ {
		folded := collectMaxTF(s, v)
		realised := map[int32]int32{}
		for d := int32(0); d < int32(s.NumDocs()); d++ {
			tf := int32(s.Doc(d).EntityFreq[v])
			if tf == 0 {
				continue
			}
			block := d >> BlockShift
			if tf > folded[block] {
				t.Fatalf("entity %d doc %d tf %d exceeds block max %d", v, d, tf, folded[block])
			}
			if tf > realised[block] {
				realised[block] = tf
			}
		}
		if !reflect.DeepEqual(folded, realised) {
			t.Fatalf("entity %d block maxima not tight: folded %v, realised %v", v, folded, realised)
		}
	}
}

// TestMaxTFMergeInvariant: blocks are global-ID aligned, so folding
// the tables of split segments equals the merged segment's table.
func TestMaxTFMergeInvariant(t *testing.T) {
	docs, arts := buildWorld(t)
	segs := []*Segment{
		BuildSegment(0, docs[:3], arts[:3]),
		BuildSegment(3, docs[3:5], arts[3:5]),
		BuildSegment(5, docs[5:], arts[5:]),
	}
	before := New(3, segs)
	after := New(3, []*Segment{segs[0], Merge(segs[1:])})
	for v := kg.NodeID(0); v < 16; v++ {
		if !reflect.DeepEqual(collectMaxTF(before, v), collectMaxTF(after, v)) {
			t.Fatalf("entity %d block maxima changed across merge", v)
		}
	}
}

// TestMaxTFSegmentBoundaryShare: a base not aligned to BlockSize
// makes the boundary block span two segments; both tables must report
// it and the fold must take the maximum.
func TestMaxTFSegmentBoundaryShare(t *testing.T) {
	v := kg.NodeID(7)
	mk := func(tf int) DocRecord {
		return DocRecord{Entities: []kg.NodeID{v}, EntityFreq: map[kg.NodeID]int{v: tf}}
	}
	a := BuildSegment(0, []DocRecord{mk(2), mk(5)}, make([]corpus.Document, 2))
	b := BuildSegment(2, []DocRecord{mk(9)}, make([]corpus.Document, 1))
	s := New(1, []*Segment{a, b})
	if got := collectMaxTF(s, v); len(got) != 1 || got[0] != 9 {
		t.Fatalf("boundary fold = %v, want block 0 -> 9", got)
	}
	calls := 0
	s.EntityMaxTF(v, func([]BlockTF) { calls++ })
	if calls != 2 {
		t.Fatalf("expected both segments to report block 0, got %d calls", calls)
	}
	if want := (2 + BlockSize - 1) / BlockSize; s.NumBlocks() != want {
		t.Fatalf("NumBlocks = %d, want %d", s.NumBlocks(), want)
	}
}
