package nlp

import (
	"math"
	"sort"

	"ncexplorer/internal/kg"
)

// Mention is one linked entity occurrence in a document.
type Mention struct {
	Entity     kg.NodeID
	Surface    string  // matched surface text
	TokenStart int     // token index, inclusive
	TokenEnd   int     // token index, exclusive
	Confidence float64 // linker score in (0, 1]
}

// Annotation is the NLP pipeline output for one document: the token
// stream, linked entity mentions, and the count of
// recognised-but-unlinked mention spans (surface forms with no KG
// entry — the paper's dataset table reports exactly this linked/total
// split). Word-level index terms are NOT part of an annotation: the
// engine indexes entity terms only, and callers that want BM25 terms
// use the standalone Terms helper.
type Annotation struct {
	Tokens     []Token
	Mentions   []Mention
	Unlinked   int
	EntityFreq map[kg.NodeID]int
}

// TotalMentions returns linked + unlinked recognised entity mentions.
func (a *Annotation) TotalMentions() int { return len(a.Mentions) + a.Unlinked }

// Entities returns the distinct linked entities in first-mention order.
func (a *Annotation) Entities() []kg.NodeID {
	seen := make(map[kg.NodeID]struct{}, len(a.Mentions))
	var out []kg.NodeID
	for _, m := range a.Mentions {
		if _, ok := seen[m.Entity]; !ok {
			seen[m.Entity] = struct{}{}
			out = append(out, m.Entity)
		}
	}
	return out
}

// trieNode is one node of the surface-form token trie.
type trieNode struct {
	children   map[string]*trieNode
	candidates []kg.NodeID // entities whose surface form ends here
}

// Gazetteer recognises KG entity surface forms in token streams by
// longest match over a token trie (canonical names plus aliases).
type Gazetteer struct {
	root *trieNode
	g    *kg.Graph
}

// NewGazetteer indexes every instance entity's canonical name and
// aliases. Concepts are not indexed: documents mention instances; the
// ontology layer is reached through Ψ at scoring time.
func NewGazetteer(g *kg.Graph) *Gazetteer {
	gz := &Gazetteer{root: &trieNode{children: map[string]*trieNode{}}, g: g}
	g.Instances(func(v kg.NodeID) bool {
		gz.insert(g.Name(v), v)
		for _, alias := range g.Aliases(v) {
			gz.insert(alias, v)
		}
		return true
	})
	return gz
}

func (gz *Gazetteer) insert(surface string, v kg.NodeID) {
	toks := Tokenize(surface)
	if len(toks) == 0 {
		return
	}
	cur := gz.root
	for _, t := range toks {
		key := Normalize(t.Text)
		next, ok := cur.children[key]
		if !ok {
			next = &trieNode{children: map[string]*trieNode{}}
			cur.children[key] = next
		}
		cur = next
	}
	for _, c := range cur.candidates {
		if c == v {
			return
		}
	}
	cur.candidates = append(cur.candidates, v)
}

// span is a candidate mention: token range plus possible entities.
type span struct {
	start, end int
	candidates []kg.NodeID
}

// findSpans scans tokens left to right, emitting the longest gazetteer
// match starting at each position (greedy longest-match, the standard
// dictionary-NER strategy). Matched regions do not overlap.
func (gz *Gazetteer) findSpans(tokens []Token) []span {
	var out []span
	i := 0
	for i < len(tokens) {
		cur := gz.root
		bestEnd := -1
		var bestCands []kg.NodeID
		for j := i; j < len(tokens); j++ {
			next, ok := cur.children[Normalize(tokens[j].Text)]
			if !ok {
				break
			}
			cur = next
			if len(cur.candidates) > 0 {
				bestEnd = j + 1
				bestCands = cur.candidates
			}
		}
		if bestEnd > 0 {
			out = append(out, span{start: i, end: bestEnd, candidates: bestCands})
			i = bestEnd
			continue
		}
		i++
	}
	return out
}

// Linker turns raw text into an Annotation. Disambiguation runs in two
// passes: unambiguous mentions establish a context entity set, then
// ambiguous mentions are resolved by KG-edge coherence with that
// context plus a log-degree popularity prior.
type Linker struct {
	g  *kg.Graph
	gz *Gazetteer
}

// NewLinker builds a linker (and its gazetteer) for the graph.
func NewLinker(g *kg.Graph) *Linker {
	return &Linker{g: g, gz: NewGazetteer(g)}
}

// Gazetteer exposes the underlying recogniser (used by baselines that
// need raw candidate spans).
func (l *Linker) Gazetteer() *Gazetteer { return l.gz }

// Annotate runs the full pipeline on text.
func (l *Linker) Annotate(text string) *Annotation {
	tokens := Tokenize(text)
	spans := l.gz.findSpans(tokens)

	// Pass 1: fix unambiguous mentions as context.
	context := make(map[kg.NodeID]struct{})
	for _, sp := range spans {
		if len(sp.candidates) == 1 {
			context[sp.candidates[0]] = struct{}{}
		}
	}

	ann := &Annotation{
		Tokens:     tokens,
		EntityFreq: make(map[kg.NodeID]int),
	}

	// Pass 2: resolve every span.
	covered := make([]bool, len(tokens))
	for _, sp := range spans {
		entity, conf := l.disambiguate(sp, context)
		surface := joinTokens(tokens[sp.start:sp.end])
		ann.Mentions = append(ann.Mentions, Mention{
			Entity: entity, Surface: surface,
			TokenStart: sp.start, TokenEnd: sp.end,
			Confidence: conf,
		})
		ann.EntityFreq[entity]++
		context[entity] = struct{}{}
		for i := sp.start; i < sp.end; i++ {
			covered[i] = true
		}
	}

	// Unlinked mention spans: maximal runs of capitalised alpha tokens
	// outside linked regions — surface forms a statistical NER would
	// flag but that have no KG entry.
	i := 0
	for i < len(tokens) {
		if covered[i] || !tokens[i].Upper || IsStopword(Normalize(tokens[i].Text)) {
			i++
			continue
		}
		j := i
		for j < len(tokens) && tokens[j].Upper && !covered[j] {
			j++
		}
		// A single sentence-leading capitalised word is usually just a
		// sentence start; require either length ≥ 2 or a non-initial
		// position to count it as an entity mention.
		if j-i >= 2 || (i > 0 && !isSentenceStart(tokens, i, ann)) {
			ann.Unlinked++
		}
		i = j
	}
	return ann
}

// isSentenceStart approximates "token i begins a sentence" by checking
// whether the preceding token ends with a sentence delimiter in the gap.
func isSentenceStart(tokens []Token, i int, _ *Annotation) bool {
	if i == 0 {
		return true
	}
	// If there is no previous token the tokenizer stripped punctuation;
	// conservatively treat a large gap as a boundary.
	return tokens[i].Start-tokens[i-1].End >= 2
}

func (l *Linker) disambiguate(sp span, context map[kg.NodeID]struct{}) (kg.NodeID, float64) {
	if len(sp.candidates) == 1 {
		return sp.candidates[0], 1
	}
	type scored struct {
		id    kg.NodeID
		score float64
	}
	best := scored{id: sp.candidates[0], score: math.Inf(-1)}
	total := 0.0
	for _, cand := range sp.candidates {
		coherence := 0.0
		for _, nb := range l.g.InstanceNeighbors(cand) {
			if _, ok := context[nb]; ok {
				coherence++
			}
		}
		prior := math.Log1p(float64(l.g.InstanceDegree(cand)))
		s := coherence*2 + prior
		total += s
		if s > best.score {
			best = scored{cand, s}
		}
	}
	conf := 0.5
	if total > 0 {
		conf = best.score / total
		if conf > 1 {
			conf = 1
		}
	}
	return best.id, conf
}

func joinTokens(tokens []Token) string {
	switch len(tokens) {
	case 0:
		return ""
	case 1:
		return tokens[0].Text
	}
	n := 0
	for _, t := range tokens {
		n += len(t.Text) + 1
	}
	buf := make([]byte, 0, n)
	for i, t := range tokens {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, t.Text...)
	}
	return string(buf)
}

// TopEntities returns the k most frequent linked entities of an
// annotation, ties broken by node ID for determinism.
func (a *Annotation) TopEntities(k int) []kg.NodeID {
	type ef struct {
		id kg.NodeID
		n  int
	}
	all := make([]ef, 0, len(a.EntityFreq))
	for id, n := range a.EntityFreq {
		all = append(all, ef{id, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]kg.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}
