// Package nlp is the natural-language substrate of the indexing
// pipeline (Fig. 3 of the paper): tokenisation, sentence splitting,
// named-entity recognition and entity linking against the knowledge
// graph. The paper uses spaCy; this package replaces it with a
// dictionary (gazetteer) recogniser over a token trie built from KG
// entity surface forms, plus a two-pass linker that disambiguates with
// a degree prior and document-level context coherence. That keeps the
// pipeline position identical — entity linking dominates indexing cost,
// which Fig. 4 measures — without a neural dependency.
package nlp

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single lexical token with its byte span in the source text.
type Token struct {
	Text  string
	Start int // byte offset, inclusive
	End   int // byte offset, exclusive
	Alpha bool
	Upper bool // starts with an upper-case letter
}

// Tokenize splits text into word tokens. A token is a maximal run of
// letters and digits; an internal hyphen or apostrophe joins two
// alphanumeric runs ("Soon-Shiong", "don't"). Token text is a slice of
// the input string — no per-token copy — so tokens keep the backing
// text alive for as long as they are retained.
func Tokenize(text string) []Token {
	// English prose averages ~6 bytes per word incl. the separator;
	// pre-sizing to that estimate absorbs nearly every append regrowth.
	tokens := make([]Token, 0, len(text)/6+4)
	isWord := func(r rune) bool { return unicode.IsLetter(r) || unicode.IsDigit(r) }
	i := 0
	for i < len(text) {
		r, sz := utf8.DecodeRuneInString(text[i:])
		if !isWord(r) {
			i += sz
			continue
		}
		start := i
		first := r
		i += sz
		for i < len(text) {
			r, sz = utf8.DecodeRuneInString(text[i:])
			if isWord(r) {
				i += sz
				continue
			}
			// Joiner if surrounded by word runes.
			if (r == '-' || r == '\'') && i+sz < len(text) {
				if r2, sz2 := utf8.DecodeRuneInString(text[i+sz:]); isWord(r2) {
					i += sz + sz2
					continue
				}
			}
			break
		}
		tokens = append(tokens, Token{
			Text:  text[start:i],
			Start: start,
			End:   i,
			Alpha: true,
			Upper: unicode.IsUpper(first),
		})
	}
	return tokens
}

// Sentences splits text into sentences on ./!/? boundaries followed by
// whitespace and an upper-case letter. It is deliberately simple: the
// corpus generator produces conventional prose.
func Sentences(text string) []string {
	var out []string
	start := 0
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r != '.' && r != '!' && r != '?' {
			continue
		}
		// Look ahead: whitespace then an upper-case rune ⇒ boundary.
		j := i + 1
		for j < len(runes) && unicode.IsSpace(runes[j]) {
			j++
		}
		if j > i+1 && j < len(runes) && unicode.IsUpper(runes[j]) {
			s := strings.TrimSpace(string(runes[start : i+1]))
			if s != "" {
				out = append(out, s)
			}
			start = j
			i = j - 1
		}
	}
	if s := strings.TrimSpace(string(runes[start:])); s != "" {
		out = append(out, s)
	}
	return out
}

// Normalize lower-cases a token for dictionary and index lookups.
func Normalize(tok string) string { return strings.ToLower(tok) }

var stopwords = map[string]struct{}{}

func init() {
	for _, w := range strings.Fields(`a an and are as at be been but by for
		from had has have he her his i if in into is it its of on or
		s she that the their them they this to was were will with would
		not no we you your our us him about after also over under more
		most other some such than then there these those while during
		before between both each few out up down own same so too very
		can did do does doing until again once here when where why how
		all any because said say says new`) {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the normalized token is a stopword.
func IsStopword(norm string) bool {
	_, ok := stopwords[norm]
	return ok
}

// Stem applies a light suffix-stripping stemmer (a Porter-style subset)
// to a normalized token. It exists so that "acquisitions" and
// "acquisition", or "striking" and "strike", share index terms; full
// Porter stemming is unnecessary for the generated corpus.
func Stem(norm string) string {
	n := len(norm)
	switch {
	case n > 4 && strings.HasSuffix(norm, "sses"):
		return norm[:n-2]
	case n > 4 && strings.HasSuffix(norm, "ies"):
		return norm[:n-3] + "y"
	case n > 5 && strings.HasSuffix(norm, "ing"):
		stem := norm[:n-3]
		if hasVowel(stem) {
			return undouble(stem)
		}
	case n > 4 && strings.HasSuffix(norm, "ed"):
		stem := norm[:n-2]
		if hasVowel(stem) {
			return undouble(stem)
		}
	case n > 3 && strings.HasSuffix(norm, "s") && !strings.HasSuffix(norm, "ss") && !strings.HasSuffix(norm, "us"):
		return norm[:n-1]
	case n > 5 && strings.HasSuffix(norm, "ly"):
		return norm[:n-2]
	}
	return norm
}

func hasVowel(s string) bool {
	return strings.ContainsAny(s, "aeiouy")
}

// undouble collapses a doubled final consonant left by suffix removal
// ("stopp" → "stop") except for l/s/z which commonly stay doubled.
func undouble(s string) string {
	n := len(s)
	if n >= 2 && s[n-1] == s[n-2] && !strings.ContainsRune("lszaeiou", rune(s[n-1])) {
		return s[:n-1]
	}
	return s
}

// Terms tokenizes, normalizes, stems and stop-filters text into index
// terms, returning term frequencies.
func Terms(text string) map[string]int {
	tf := make(map[string]int)
	for _, tok := range Tokenize(text) {
		norm := Normalize(tok.Text)
		if IsStopword(norm) || len(norm) < 2 {
			continue
		}
		tf[Stem(norm)]++
	}
	return tf
}
