package nlp

import (
	"strings"
	"testing"
	"testing/quick"

	"ncexplorer/internal/kg"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("FTX filed for bankruptcy in 2022.")
	want := []string{"FTX", "filed", "for", "bankruptcy", "in", "2022"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	if !toks[0].Upper || toks[1].Upper {
		t.Error("Upper flags wrong")
	}
}

func TestTokenizeJoiners(t *testing.T) {
	toks := Tokenize("Patrick Soon-Shiong didn't sell")
	if toks[1].Text != "Soon-Shiong" {
		t.Errorf("hyphen join failed: %q", toks[1].Text)
	}
	if toks[2].Text != "didn't" {
		t.Errorf("apostrophe join failed: %q", toks[2].Text)
	}
	// Trailing punctuation must not join.
	toks = Tokenize("well- known")
	if len(toks) != 2 || toks[0].Text != "well" {
		t.Errorf("dangling hyphen mis-tokenized: %+v", toks)
	}
}

func TestTokenizeSpans(t *testing.T) {
	text := "Ålesund is nice"
	toks := Tokenize(text)
	if len(toks) != 3 {
		t.Fatalf("tokens = %+v", toks)
	}
	for _, tok := range toks {
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("span mismatch: %q vs %q", text[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeSpanInvariant(t *testing.T) {
	err := quick.Check(func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSentences(t *testing.T) {
	text := "Regulators opened a probe. The exchange denied wrongdoing! Shares fell 4.5 percent on Friday."
	sents := Sentences(text)
	if len(sents) != 3 {
		t.Fatalf("sentences = %d: %q", len(sents), sents)
	}
	if !strings.HasPrefix(sents[2], "Shares fell 4.5") {
		t.Errorf("decimal point split a sentence: %q", sents[2])
	}
	if got := Sentences(""); len(got) != 0 {
		t.Errorf("empty input gave %q", got)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "of"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	if IsStopword("fraud") {
		t.Error("fraud is not a stopword")
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"acquisitions": "acquisition",
		"companies":    "company",
		"striking":     "strik", // light stemmer: shared stem with "strikes"→"strike" not required
		"merged":       "merg",
		"fraud":        "fraud",
		"classes":      "class",
		"quickly":      "quick",
		"us":           "us", // protected suffix
		"stopped":      "stop",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
	// Plural and singular of a regular noun must collide.
	if Stem("tariffs") != Stem("tariff") {
		t.Error("tariffs/tariff should share a stem")
	}
	if Stem("lawsuits") != Stem("lawsuit") {
		t.Error("lawsuits/lawsuit should share a stem")
	}
}

func TestTerms(t *testing.T) {
	tf := Terms("The regulator fined the exchange; regulators fined exchanges.")
	if tf[Stem("regulator")] != 2 {
		t.Errorf("regulator tf = %d, want 2 (merged by stemming)", tf[Stem("regulator")])
	}
	if _, ok := tf["the"]; ok {
		t.Error("stopword leaked into terms")
	}
}

// testGraph builds a small KG for linking tests: two entities share the
// alias "Apex"; context should pick the right one.
func testGraph(t testing.TB) *kg.Graph {
	t.Helper()
	b := kg.NewBuilder()
	tech := b.AddConcept("Technology company")
	bank := b.AddConcept("Bank")
	apexTech := b.AddInstance("Apex Devices", "Apex")
	apexBank := b.AddInstance("Apex Financial", "Apex")
	nimbus := b.AddInstance("Nimbus Cloud", "Nimbus")
	hsng := b.AddInstance("Helvetia Credit")
	b.AddType(apexTech, tech)
	b.AddType(nimbus, tech)
	b.AddType(apexBank, bank)
	b.AddType(hsng, bank)
	b.AddInstanceEdge(apexTech, nimbus)
	b.AddInstanceEdge(apexBank, hsng)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGazetteerLongestMatch(t *testing.T) {
	g := testGraph(t)
	gz := NewGazetteer(g)
	toks := Tokenize("Apex Devices sued Nimbus Cloud")
	spans := gz.findSpans(toks)
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	// "Apex Devices" must win over the shorter alias "Apex".
	if spans[0].start != 0 || spans[0].end != 2 {
		t.Errorf("first span = [%d,%d), want [0,2)", spans[0].start, spans[0].end)
	}
	if len(spans[0].candidates) != 1 || g.Name(spans[0].candidates[0]) != "Apex Devices" {
		t.Errorf("first span candidates wrong")
	}
}

func TestLinkerDisambiguation(t *testing.T) {
	g := testGraph(t)
	l := NewLinker(g)

	// Tech context → tech Apex.
	ann := l.Annotate("Apex and Nimbus Cloud announced a partnership.")
	found := map[string]bool{}
	for _, m := range ann.Mentions {
		found[g.Name(m.Entity)] = true
	}
	if !found["Apex Devices"] {
		t.Errorf("tech context resolved to %v, want Apex Devices", found)
	}

	// Banking context → bank Apex.
	ann = l.Annotate("Apex and Helvetia Credit reported deposits.")
	found = map[string]bool{}
	for _, m := range ann.Mentions {
		found[g.Name(m.Entity)] = true
	}
	if !found["Apex Financial"] {
		t.Errorf("bank context resolved to %v, want Apex Financial", found)
	}
}

func TestLinkerCaseInsensitive(t *testing.T) {
	g := testGraph(t)
	l := NewLinker(g)
	ann := l.Annotate("NIMBUS CLOUD shares slid.")
	if len(ann.Mentions) != 1 || g.Name(ann.Mentions[0].Entity) != "Nimbus Cloud" {
		t.Fatalf("mentions = %+v", ann.Mentions)
	}
	if ann.Mentions[0].Surface != "NIMBUS CLOUD" {
		t.Errorf("surface = %q", ann.Mentions[0].Surface)
	}
}

func TestUnlinkedMentions(t *testing.T) {
	g := testGraph(t)
	l := NewLinker(g)
	// "Brimworth Analytics" is capitalised but not in the KG.
	ann := l.Annotate("Nimbus Cloud acquired Brimworth Analytics yesterday.")
	if len(ann.Mentions) != 1 {
		t.Fatalf("mentions = %+v", ann.Mentions)
	}
	if ann.Unlinked != 1 {
		t.Errorf("unlinked = %d, want 1", ann.Unlinked)
	}
	if ann.TotalMentions() != 2 {
		t.Errorf("total = %d, want 2", ann.TotalMentions())
	}
}

func TestEntityFreqAndTopEntities(t *testing.T) {
	g := testGraph(t)
	l := NewLinker(g)
	ann := l.Annotate("Nimbus Cloud grew. Nimbus Cloud hired. Helvetia Credit shrank.")
	nimbus := g.MustLookup("Nimbus Cloud")
	if ann.EntityFreq[nimbus] != 2 {
		t.Errorf("freq = %d, want 2", ann.EntityFreq[nimbus])
	}
	top := ann.TopEntities(1)
	if len(top) != 1 || top[0] != nimbus {
		t.Errorf("top = %v", top)
	}
	ents := ann.Entities()
	if len(ents) != 2 || ents[0] != nimbus {
		t.Errorf("entities = %v", ents)
	}
}

func TestAnnotateEmptyAndPlain(t *testing.T) {
	g := testGraph(t)
	l := NewLinker(g)
	ann := l.Annotate("")
	if len(ann.Mentions) != 0 || ann.Unlinked != 0 {
		t.Errorf("empty annotate: %+v", ann)
	}
	ann = l.Annotate("markets were calm on tuesday afternoon")
	if len(ann.Mentions) != 0 {
		t.Errorf("plain text produced mentions: %+v", ann.Mentions)
	}
}

func BenchmarkAnnotate(b *testing.B) {
	g := testGraph(b)
	l := NewLinker(g)
	text := strings.Repeat("Apex Devices sued Nimbus Cloud over patents while Helvetia Credit watched. ", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Annotate(text)
	}
}
