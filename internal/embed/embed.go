// Package embed provides deterministic text embeddings standing in for
// the paper's SBERT (all-mpnet-base-v2) model, which cannot run in an
// offline, stdlib-only Go build.
//
// Each vocabulary term is assigned a pseudo-random Gaussian vector
// seeded by the term's hash (feature hashing / random indexing). A text
// embeds as the log-TF-weighted sum of its term vectors, L2-normalised.
// Two texts that share topical vocabulary therefore land close in
// cosine space — which is the property the BERT baseline contributes in
// the paper's evaluation (semantic neighbourhood retrieval without
// explicit keyword match). What the substitute cannot model is zero-
// overlap paraphrase similarity; the corpus generator compensates by
// giving each topic a distinctive jargon vocabulary, exactly the signal
// a real encoder would latch onto.
package embed

import (
	"math"
	"sort"
	"sync"

	"ncexplorer/internal/nlp"
	"ncexplorer/internal/xrand"
)

// DefaultDim is the embedding dimensionality (the paper's SBERT uses
// 768; 256 keeps cosine geometry while staying cheap).
const DefaultDim = 256

// Embedder converts text to fixed-size vectors. Safe for concurrent use.
type Embedder struct {
	dim  int
	mu   sync.RWMutex
	term map[string][]float32
}

// New returns an embedder with the given dimensionality (DefaultDim if
// dim <= 0).
func New(dim int) *Embedder {
	if dim <= 0 {
		dim = DefaultDim
	}
	return &Embedder{dim: dim, term: make(map[string][]float32)}
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// termVector returns the cached pseudo-random unit vector of a term.
func (e *Embedder) termVector(term string) []float32 {
	e.mu.RLock()
	v, ok := e.term[term]
	e.mu.RUnlock()
	if ok {
		return v
	}
	r := xrand.New(xrand.HashString(term))
	v = make([]float32, e.dim)
	var norm float64
	for i := range v {
		x := r.NormFloat64()
		v[i] = float32(x)
		norm += x * x
	}
	scale := float32(1 / math.Sqrt(norm))
	for i := range v {
		v[i] *= scale
	}
	e.mu.Lock()
	e.term[term] = v
	e.mu.Unlock()
	return v
}

// EmbedTerms embeds a term-frequency bag with 1+log(tf) weighting,
// L2-normalised. Terms are accumulated in sorted order so the
// floating-point sum — and therefore every downstream ranking — is
// byte-stable across runs. Returns a zero vector for an empty bag.
func (e *Embedder) EmbedTerms(tf map[string]int) []float32 {
	terms := make([]string, 0, len(tf))
	for term, f := range tf {
		if f > 0 {
			terms = append(terms, term)
		}
	}
	sort.Strings(terms)
	out := make([]float32, e.dim)
	for _, term := range terms {
		w := float32(1 + math.Log(float64(tf[term])))
		tv := e.termVector(term)
		for i := range out {
			out[i] += w * tv[i]
		}
	}
	normalize(out)
	return out
}

// EmbedText tokenises, stems and stop-filters text, then embeds it.
func (e *Embedder) EmbedText(text string) []float32 {
	return e.EmbedTerms(nlp.Terms(text))
}

func normalize(v []float32) {
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm == 0 {
		return
	}
	scale := float32(1 / math.Sqrt(norm))
	for i := range v {
		v[i] *= scale
	}
}

// Cosine returns the cosine similarity of two vectors (0 for zero
// vectors). Inputs must share length.
func Cosine(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("embed: dimension mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
