package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicEmbedding(t *testing.T) {
	e1, e2 := New(0), New(0)
	a := e1.EmbedText("tariff dispute between trading partners")
	b := e2.EmbedText("tariff dispute between trading partners")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embeddings differ across embedder instances")
		}
	}
	if len(a) != DefaultDim {
		t.Fatalf("dim = %d", len(a))
	}
}

func TestUnitNorm(t *testing.T) {
	e := New(128)
	v := e.EmbedText("merger acquisition takeover premium")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("norm² = %v, want 1", norm)
	}
}

func TestTopicalSimilarity(t *testing.T) {
	// Two trade stories must be closer than a trade story and an
	// election story — the property the BERT baseline relies on.
	e := New(0)
	trade1 := e.EmbedText("tariffs imposed on imports escalating the trade dispute over quotas")
	trade2 := e.EmbedText("customs duties and import tariffs deepen the trade dispute")
	elect := e.EmbedText("voters cast ballots as election turnout surged in the capital")
	simTT := Cosine(trade1, trade2)
	simTE := Cosine(trade1, elect)
	if simTT <= simTE {
		t.Fatalf("topical similarity failed: trade/trade %.3f vs trade/election %.3f", simTT, simTE)
	}
	if simTT < 0.2 {
		t.Fatalf("overlapping texts too dissimilar: %v", simTT)
	}
}

func TestStemmingUnifiesVariants(t *testing.T) {
	e := New(0)
	a := e.EmbedText("the tariffs")
	b := e.EmbedText("a tariff")
	if sim := Cosine(a, b); sim < 0.99 {
		t.Fatalf("morphological variants should embed identically, sim=%v", sim)
	}
}

func TestEmptyText(t *testing.T) {
	e := New(0)
	v := e.EmbedText("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text should embed to zero vector")
		}
	}
	if Cosine(v, v) != 0 {
		t.Fatal("cosine of zero vectors should be 0")
	}
}

func TestCosineRange(t *testing.T) {
	e := New(64)
	texts := []string{
		"bank capital provisions", "strike union wages",
		"court verdict appeal", "bank capital provisions lending",
	}
	vecs := make([][]float32, len(texts))
	for i, s := range texts {
		vecs[i] = e.EmbedText(s)
	}
	for i := range vecs {
		for j := range vecs {
			sim := Cosine(vecs[i], vecs[j])
			if sim < -1.0001 || sim > 1.0001 {
				t.Fatalf("cosine out of range: %v", sim)
			}
			if i == j && math.Abs(sim-1) > 1e-5 {
				t.Fatalf("self-similarity = %v", sim)
			}
		}
	}
}

func TestCosineSymmetry(t *testing.T) {
	e := New(32)
	err := quick.Check(func(s1, s2 string) bool {
		a, b := e.EmbedText(s1), e.EmbedText(s2)
		return math.Abs(Cosine(a, b)-Cosine(b, a)) < 1e-9
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestCosineDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cosine(make([]float32, 3), make([]float32, 4))
}

func TestTermVectorsNearOrthogonal(t *testing.T) {
	// Random high-dimensional term vectors should be near-orthogonal;
	// that is what makes feature hashing behave like a proper embedding
	// basis.
	e := New(256)
	v1 := e.termVector("tariff")
	v2 := e.termVector("election")
	if sim := Cosine(v1, v2); math.Abs(sim) > 0.3 {
		t.Fatalf("unrelated terms too aligned: %v", sim)
	}
}

func BenchmarkEmbedText(b *testing.B) {
	e := New(0)
	text := "regulators opened an investigation into suspicious transactions processed by the exchange"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EmbedText(text)
	}
}
