// Package rw implements the single-random-walk estimator for the
// connectivity score (§III-C, Eq. 6 of the paper).
//
// The quantity to estimate, for a concept c with extent Ψ(c) and a
// context entity v, is
//
//	S(c, v) = Σ_{u ∈ Ψ(c)} Σ_{l=1..τ} β^l · |paths^⟨l⟩(u, v)|
//
// One sample: draw u uniformly from Ψ(c), then run a non-repeating
// random walk from u toward v. At each step the walk chooses uniformly
// among *eligible* neighbours — unvisited nodes that can still reach v
// within the remaining hop budget (exact reachability when a
// reach.Index guides the walk; merely "unvisited" when unguided). If
// the walk reaches v after l steps having had N(u₀), …, N(u_{l−1})
// eligible choices, the sample value is
//
//	r = |Ψ(c)| · β^l · Π_{i=0}^{l-1} N(u_i)
//
// and 0 if it dead-ends or exhausts τ. A specific simple path of
// length l is traversed with probability Π 1/N(u_i), so E[r] = S(c, v):
// the estimator is unbiased. (The paper's Eq. 6 writes the product from
// i = 1 with β^{l−1}, indexing the source as the first sampled node —
// the same expression; DESIGN.md §2 records the reconciliation, and
// TestUnbiasedness verifies the implementation against exact counts.)
//
// Guidance changes only which samples are zero, not the expectation:
// every step along a real path to v is eligible by definition, so path
// traversal probabilities — now with smaller N(u_i) — remain exact
// inverse weights. Fewer wasted walks ⇒ lower variance ⇒ the Fig. 7
// convergence gap between guided and unguided sampling.
package rw

import (
	"ncexplorer/internal/kg"
	"ncexplorer/internal/reach"
	"ncexplorer/internal/xrand"
)

// Estimator runs guided or unguided walks. Not safe for concurrent use
// (scratch buffers); create one per goroutine.
type Estimator struct {
	g     *kg.Graph
	index *reach.Index // nil ⇒ unguided
	tau   int
	beta  float64

	visited  []kg.NodeID // scratch: nodes on the current walk
	eligible []kg.NodeID // scratch: eligible neighbours at a step
	sources  []kg.NodeID // scratch: eligible source pool per target
}

// New returns an estimator with hop bound tau and damping beta. Pass a
// nil index for unguided walks.
func New(g *kg.Graph, index *reach.Index, tau int, beta float64) *Estimator {
	if tau < 1 {
		panic("rw: tau must be ≥ 1")
	}
	if beta <= 0 || beta > 1 {
		panic("rw: beta must be in (0, 1]")
	}
	return &Estimator{g: g, index: index, tau: tau, beta: beta}
}

// Guided reports whether the estimator uses a reachability index.
func (e *Estimator) Guided() bool { return e.index != nil }

// Walk runs one walk from u toward v and returns the sample value for
// the pair term Σ_l β^l |paths^⟨l⟩(u, v)| (i.e. without the |Ψ(c)|
// factor). Returns 0 for dead ends and for u == v.
func (e *Estimator) Walk(r *xrand.Rand, u, v kg.NodeID) float64 {
	if u == v {
		return 0
	}
	var dist []int16
	if e.index != nil {
		dist = e.index.DistTo(v)
		if dist[u] == reach.Unreachable {
			return 0
		}
	}
	e.visited = e.visited[:0]
	e.visited = append(e.visited, u)
	cur := u
	prod := 1.0
	for l := 1; l <= e.tau; l++ {
		remaining := e.tau - l // hops left after taking this step
		e.eligible = e.eligible[:0]
		for _, y := range e.g.InstanceNeighbors(cur) {
			if y == v {
				e.eligible = append(e.eligible, y)
				continue
			}
			if remaining == 0 || e.onWalk(y) {
				continue
			}
			if dist != nil {
				if d := dist[y]; d == reach.Unreachable || int(d) > remaining {
					continue
				}
			}
			e.eligible = append(e.eligible, y)
		}
		n := len(e.eligible)
		if n == 0 {
			return 0
		}
		prod *= float64(n)
		next := e.eligible[r.Intn(n)]
		if next == v {
			return pow(e.beta, l) * prod
		}
		e.visited = append(e.visited, next)
		cur = next
	}
	return 0
}

func (e *Estimator) onWalk(y kg.NodeID) bool {
	for _, x := range e.visited {
		if x == y {
			return true
		}
	}
	return false
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}

// EstimatePair estimates Σ_l β^l |paths^⟨l⟩(u, v)| as the mean of n
// walks.
func (e *Estimator) EstimatePair(r *xrand.Rand, u, v kg.NodeID, n int) float64 {
	if n <= 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += e.Walk(r, u, v)
	}
	return sum / float64(n)
}

// EstimateConcept estimates S(c, v) = Σ_{u∈ext} Σ_l β^l |paths^⟨l⟩(u,v)|
// with n samples, each drawing u uniformly from the source pool and
// scaling by the pool size (the |Ψ(c)| factor of Eq. 6).
//
// When a reachability index guides the estimator, the source pool is
// restricted to extent entities that can reach v within τ hops. This
// keeps the estimator exactly unbiased — sources beyond τ contribute
// precisely zero to S — while removing the dominant variance term for
// large extents, where most sources are nowhere near the context
// entity. It is the source-side counterpart of eligible-neighbour
// sampling, and the main reason the indexed estimator converges within
// tens of samples (Fig. 7).
func (e *Estimator) EstimateConcept(r *xrand.Rand, ext []kg.NodeID, v kg.NodeID, n int) float64 {
	if len(ext) == 0 || n <= 0 {
		return 0
	}
	pool := ext
	if e.index != nil {
		dist := e.index.DistTo(v)
		eligible := e.sources[:0]
		for _, u := range ext {
			if d := dist[u]; d != reach.Unreachable && int(d) <= e.tau && u != v {
				eligible = append(eligible, u)
			}
		}
		e.sources = eligible
		if len(eligible) == 0 {
			return 0
		}
		pool = eligible
	}
	scale := float64(len(pool))
	sum := 0.0
	for i := 0; i < n; i++ {
		u := pool[r.Intn(len(pool))]
		sum += scale * e.Walk(r, u, v)
	}
	return sum / float64(n)
}
