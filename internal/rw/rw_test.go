package rw

import (
	"math"
	"testing"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/paths"
	"ncexplorer/internal/reach"
	"ncexplorer/internal/xrand"
)

func randomGraph(t testing.TB, seed uint64, n, edges int) (*kg.Graph, []kg.NodeID) {
	t.Helper()
	r := xrand.New(seed)
	b := kg.NewBuilder()
	ids := make([]kg.NodeID, n)
	for i := range ids {
		ids[i] = b.AddInstance("v" + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+(i/676)%10)))
	}
	for e := 0; e < edges; e++ {
		b.AddInstanceEdge(ids[r.Intn(n)], ids[r.Intn(n)])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, ids
}

// TestUnbiasedness is the core correctness property (the paper proves
// it in the full report; we verify empirically): for both guided and
// unguided walks, the sample mean converges to the exact weighted path
// count Σ_l β^l |paths^⟨l⟩(u,v)|.
func TestUnbiasedness(t *testing.T) {
	const tau = 3
	const beta = 0.5
	for seed := uint64(1); seed <= 6; seed++ {
		g, ids := randomGraph(t, seed, 16, 40)
		counter := paths.NewCounter(g)
		ix := reach.New(g, tau, 0)
		guided := New(g, ix, tau, beta)
		unguided := New(g, nil, tau, beta)
		r := xrand.New(seed * 977)

		checked := 0
		for trial := 0; trial < 12 && checked < 4; trial++ {
			u := ids[r.Intn(len(ids))]
			v := ids[r.Intn(len(ids))]
			exact := counter.WeightedCount(u, v, tau, beta)
			if exact == 0 {
				continue // pick pairs with signal
			}
			checked++
			const samples = 60000
			gu := guided.EstimatePair(r, u, v, samples)
			un := unguided.EstimatePair(r, u, v, samples)
			for name, got := range map[string]float64{"guided": gu, "unguided": un} {
				relErr := math.Abs(got-exact) / exact
				if relErr > 0.12 {
					t.Errorf("seed %d %s estimate %v vs exact %v (rel err %.3f)",
						seed, name, got, exact, relErr)
				}
			}
		}
		if checked == 0 {
			t.Logf("seed %d: no connected pairs sampled (sparse graph)", seed)
		}
	}
}

func TestZeroWhenUnreachable(t *testing.T) {
	b := kg.NewBuilder()
	x := b.AddInstance("x")
	y := b.AddInstance("y")
	z := b.AddInstance("z")
	b.AddInstanceEdge(x, y)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	est := New(g, reach.New(g, 2, 0), 2, 0.5)
	r := xrand.New(1)
	if got := est.EstimatePair(r, x, z, 500); got != 0 {
		t.Errorf("unreachable pair estimated %v", got)
	}
	if got := est.Walk(r, x, x); got != 0 {
		t.Errorf("self pair walked to %v", got)
	}
}

func TestSingleEdgeExact(t *testing.T) {
	// u—v with no other nodes: every walk must find the single 1-hop
	// path, so every sample equals β·1 exactly — zero variance.
	b := kg.NewBuilder()
	u := b.AddInstance("u")
	v := b.AddInstance("v")
	b.AddInstanceEdge(u, v)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	est := New(g, nil, 2, 0.5)
	r := xrand.New(2)
	for i := 0; i < 100; i++ {
		if got := est.Walk(r, u, v); got != 0.5 {
			t.Fatalf("walk = %v, want 0.5", got)
		}
	}
}

func TestGuidanceReducesVariance(t *testing.T) {
	// On a graph with many dead-end branches, guided walks should have
	// materially lower variance (the Fig. 7 effect).
	b := kg.NewBuilder()
	u := b.AddInstance("u")
	v := b.AddInstance("v")
	mid := b.AddInstance("mid")
	b.AddInstanceEdge(u, mid)
	b.AddInstanceEdge(mid, v)
	for i := 0; i < 20; i++ {
		dead := b.AddInstance("dead" + string(rune('a'+i)))
		b.AddInstanceEdge(u, dead) // dead ends off the source
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	const tau = 2
	const beta = 0.5
	exact := paths.NewCounter(g).WeightedCount(u, v, tau, beta)
	if exact == 0 {
		t.Fatal("setup broken")
	}
	guided := New(g, reach.New(g, tau, 0), tau, beta)
	unguided := New(g, nil, tau, beta)

	varOf := func(e *Estimator, seed uint64) float64 {
		r := xrand.New(seed)
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := e.Walk(r, u, v)
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		return sumSq/n - mean*mean
	}
	vg, vu := varOf(guided, 3), varOf(unguided, 3)
	if vg >= vu {
		t.Errorf("guided variance %v should be below unguided %v", vg, vu)
	}
	if vg != 0 {
		// With guidance the only eligible first step is mid ⇒ N=1
		// throughout ⇒ deterministic sample.
		t.Errorf("guided variance = %v, want 0 on this topology", vg)
	}
}

func TestEstimateConceptScaling(t *testing.T) {
	// ext = {u1, u2}, both one hop from v. Exact S = β·(1+1) = 1.0 at
	// β=0.5. The estimator draws u uniformly and scales by |ext|.
	b := kg.NewBuilder()
	u1 := b.AddInstance("u1")
	u2 := b.AddInstance("u2")
	v := b.AddInstance("v")
	b.AddInstanceEdge(u1, v)
	b.AddInstanceEdge(u2, v)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	est := New(g, reach.New(g, 2, 0), 2, 0.5)
	r := xrand.New(4)
	got := est.EstimateConcept(r, []kg.NodeID{u1, u2}, v, 30000)
	// Exact: Σ over u∈ext of WeightedCount(u, v):
	// u1: path u1-v (β) and u1-v? 2-hop u1-u?-v: u1's neighbours = {v}
	// only ⇒ 0.5. Same for u2. Total 1.0.
	if math.Abs(got-1.0) > 0.05 {
		t.Errorf("concept estimate = %v, want ≈1.0", got)
	}
	if est.EstimateConcept(r, nil, v, 100) != 0 {
		t.Error("empty extent should estimate 0")
	}
}

func TestEligibleSourceSamplingUnbiasedAndFaster(t *testing.T) {
	// Extent with one reachable source among many unreachable ones:
	// guided estimates must stay unbiased (match exact) and converge
	// with far fewer samples than unguided.
	b := kg.NewBuilder()
	u := b.AddInstance("u")
	v := b.AddInstance("v")
	b.AddInstanceEdge(u, v)
	ext := []kg.NodeID{u}
	for i := 0; i < 30; i++ {
		far := b.AddInstance("far" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		other := b.AddInstance("oth" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
		b.AddInstanceEdge(far, other) // connected, but not to v
		ext = append(ext, far)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	const tau, beta = 2, 0.5
	exact := paths.NewCounter(g)
	want := 0.0
	for _, s := range ext {
		want += exact.WeightedCount(s, v, tau, beta)
	}
	guided := New(g, reach.New(g, tau, 0), tau, beta)
	unguided := New(g, nil, tau, beta)
	r := xrand.New(11)
	// Guided: pool collapses to {u}; even 10 samples are exact here.
	if got := guided.EstimatePair(r, u, v, 1); got == 0 {
		t.Fatal("sanity: u reaches v")
	}
	got := guided.EstimateConcept(r, ext, v, 10)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("guided estimate %v, want %v", got, want)
	}
	// Unguided stays unbiased but needs many samples.
	got = unguided.EstimateConcept(r, ext, v, 40000)
	if want == 0 || math.Abs(got-want)/want > 0.15 {
		t.Fatalf("unguided estimate %v, want ≈%v", got, want)
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	g, _ := randomGraph(t, 1, 4, 4)
	for _, fn := range []func(){
		func() { New(g, nil, 0, 0.5) },
		func() { New(g, nil, 2, 0) },
		func() { New(g, nil, 2, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g, ids := randomGraph(t, 5, 20, 50)
	est := New(g, reach.New(g, 2, 0), 2, 0.5)
	a := est.EstimatePair(xrand.New(7), ids[0], ids[5], 200)
	bv := est.EstimatePair(xrand.New(7), ids[0], ids[5], 200)
	if a != bv {
		t.Fatalf("estimates differ: %v vs %v", a, bv)
	}
}

func BenchmarkWalkGuided(b *testing.B) {
	g, ids := randomGraph(b, 1, 2000, 8000)
	est := New(g, reach.New(g, 2, 0), 2, 0.5)
	r := xrand.New(1)
	u, v := ids[0], ids[99]
	est.Walk(r, u, v) // warm the reach table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Walk(r, u, v)
	}
}

func BenchmarkWalkUnguided(b *testing.B) {
	g, ids := randomGraph(b, 1, 2000, 8000)
	est := New(g, nil, 2, 0.5)
	r := xrand.New(1)
	u, v := ids[0], ids[99]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Walk(r, u, v)
	}
}
