package rerank

import (
	"math"
	"testing"

	"ncexplorer/internal/corpus"
)

func TestJudgeIsOracleWithoutNoise(t *testing.T) {
	gold := func(d corpus.DocID) float64 { return float64(d) }
	j := NewGPTJudge(gold, 1, 0)
	for d := corpus.DocID(0); d <= 5; d++ {
		if got := j(d); got != float64(d) {
			t.Errorf("judge(%d) = %v", d, got)
		}
	}
	// Clamping.
	j2 := NewGPTJudge(func(corpus.DocID) float64 { return 9 }, 1, 0)
	if j2(0) != 5 {
		t.Error("judge should clamp to 5")
	}
}

func TestJudgeQuantisesToThreeDecimals(t *testing.T) {
	j := NewGPTJudge(func(corpus.DocID) float64 { return 2.5 }, 3, 0.4)
	for d := corpus.DocID(0); d < 50; d++ {
		s := j(d)
		if math.Abs(s*1000-math.Round(s*1000)) > 1e-9 {
			t.Fatalf("score %v not quantised to 3 decimals", s)
		}
		if s < 0 || s > 5 {
			t.Fatalf("score out of range: %v", s)
		}
	}
}

func TestJudgeDeterministicPerSeed(t *testing.T) {
	gold := func(d corpus.DocID) float64 { return 2 }
	a := NewGPTJudge(gold, 7, 0.3)
	b := NewGPTJudge(gold, 7, 0.3)
	c := NewGPTJudge(gold, 8, 0.3)
	diff := false
	for d := corpus.DocID(0); d < 20; d++ {
		if a(d) != b(d) {
			t.Fatal("same seed, different scores")
		}
		if a(d) != c(d) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should usually differ")
	}
}

func TestRerankOrdersByJudge(t *testing.T) {
	docs := []corpus.DocID{10, 11, 12, 13}
	scores := map[corpus.DocID]float64{10: 1, 11: 4, 12: 2, 13: 4}
	out := Rerank(docs, func(d corpus.DocID) float64 { return scores[d] })
	// 11 and 13 tie at 4; stable keeps 11 first.
	want := []corpus.DocID{11, 13, 12, 10}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
	// Original slice untouched.
	if docs[0] != 10 {
		t.Error("input mutated")
	}
}

func TestRerankFixesNoisyRanking(t *testing.T) {
	// A scrambled list re-ranked by a low-noise judge should put the
	// best document first.
	gold := map[corpus.DocID]float64{1: 0.5, 2: 4.8, 3: 2.2, 4: 3.9}
	j := NewGPTJudge(func(d corpus.DocID) float64 { return gold[d] }, 5, 0.1)
	out := Rerank([]corpus.DocID{1, 3, 4, 2}, j)
	if out[0] != 2 {
		t.Errorf("best doc not first: %v", out)
	}
	if out[len(out)-1] != 1 {
		t.Errorf("worst doc not last: %v", out)
	}
}
