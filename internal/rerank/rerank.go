// Package rerank simulates the GPT-3.5-turbo re-ranking pass of the
// paper's Table I/II experiment: each method's top-k list is re-scored
// by an LLM judge prompted to rate topic–article relevance "between
// 0.000 and 5.000 … only give three decimal digits", then reordered.
//
// The simulated judge reads the generation-time *semantic* relevance of
// a document (what a capable language model perceives from the full
// article text) and adds a small Gaussian error, quantised to three
// decimals like the prompt requests. Crucially it does NOT see the
// surface-keyword signal that partially drives the simulated human
// ratings (internal/eval). That asymmetry reproduces the paper's
// Table II mechanism without hard-coding its outcome: re-ranking by
// semantics de-noises the lists of methods whose retrieval is already
// semantic (BERT, NewsLink, NCExplorer — positive impact, largest at
// NDCG@1), while decorrelating Lucene's keyword-ordered list from the
// surface-influenced human ratings (negative impact).
package rerank

import (
	"math"
	"sort"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/xrand"
)

// Judge scores one document's relevance to the current query in [0, 5].
type Judge func(doc corpus.DocID) float64

// NewGPTJudge builds the simulated LLM judge for one query.
//
//	gold  — the semantic relevance oracle for this query (0..5);
//	seed  — determinism: one seed per (query, experiment);
//	noise — the judge's rating error std-dev (0 ⇒ a perfect oracle).
func NewGPTJudge(gold func(corpus.DocID) float64, seed uint64, noise float64) Judge {
	return func(doc corpus.DocID) float64 {
		s := gold(doc)
		if noise > 0 {
			r := xrand.Stream(seed, uint64(doc))
			s += r.Norm(0, noise)
		}
		if s < 0 {
			s = 0
		}
		if s > 5 {
			s = 5
		}
		// "only give three decimal digits"
		return math.Round(s*1000) / 1000
	}
}

// Rerank returns the documents reordered by judge score, descending;
// equal scores keep their original relative order (stable), matching
// how a re-ranker breaks ties by the upstream ranking.
func Rerank(docs []corpus.DocID, judge Judge) []corpus.DocID {
	out := append([]corpus.DocID(nil), docs...)
	scores := make(map[corpus.DocID]float64, len(out))
	for _, d := range out {
		scores[d] = judge(d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return scores[out[i]] > scores[out[j]]
	})
	return out
}
