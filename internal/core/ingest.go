package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/relevance"
	"ncexplorer/internal/snapshot"
	"ncexplorer/internal/xrand"
)

// Live corpus ingestion, as a three-stage pipeline:
//
//	analyze (lock-free) → commit (ingestMu, short) → persist (overlapped)
//
// Stage 1 runs the whole per-document analysis — NLP annotation,
// entity linking, candidate enumeration, and speculative pre-warming
// of the connectivity memo — before ingestMu is taken, so concurrent
// Ingest calls analyze simultaneously and only serialise for the
// short commit section. Stage 2 assigns the batch its real base ID
// (rebasing the analyzed segment if another batch won the race),
// replays the plans for the new segment only, and atomically swaps the
// snapshot. Stage 3 is the group-commit checkpoint writer
// (groupcommit.go): the commit enqueues its durability work and
// returns a persist sequence; batch N+1 analyzes and commits while
// batch N's checkpoint drains, and callers that must report durable
// state wait on the sequence (WaitPersisted) off the commit path.
//
// Equivalence guarantee: an engine grown by any sequence of Ingest
// calls answers every query byte-identically to an engine that
// indexed the same documents in one IndexCorpus build. Three design
// choices carry the proof:
//
//  1. corpus-global term statistics — the snapshot's merged text view
//     sums document frequencies across segments, so tw(v, d) equals
//     the monolithic build's value exactly;
//  2. generation-derived scores — everything downstream of tw (the
//     ontology factor, candidate ranking, pivots) is recomputed for
//     every document when a snapshot is built, never carried over;
//  3. content-addressed sampling — the connectivity factor's sampler
//     is seeded by (concept, doc) alone, so its memoised values are
//     the ones a from-scratch build would draw. The speculative
//     pre-warm honors this: values computed against a guessed base are
//     flushed into the memo only when the guess survived the commit
//     race — otherwise they are dropped wholesale, because their keys
//     (and therefore their sampler streams) belong to document IDs the
//     batch did not get.

// errNotIndexed is returned by Ingest before IndexCorpus has run.
var errNotIndexed = errors.New("core: Ingest called before IndexCorpus")

// IngestResult reports one ingested batch.
type IngestResult struct {
	// Docs is the number of documents added by this batch.
	Docs int
	// Generation is the snapshot generation now serving.
	Generation uint64
	// TotalDocs is the corpus size after the batch.
	TotalDocs int
	// LinkNanos / ScoreNanos split the batch's indexing cost:
	// annotation+linking of the new documents vs deriving the new
	// generation's scores (which spans the whole corpus but re-walks
	// only never-seen candidates).
	LinkNanos  int64
	ScoreNanos int64
	// PersistSeq is the batch's group-commit persist sequence: pass it
	// to WaitPersisted to block until the checkpoint covering this
	// commit has been attempted (the durability barrier a serving layer
	// runs before acknowledging the batch). Zero for an empty batch.
	PersistSeq uint64
}

// ingestCounters aggregates ingestion throughput for /statsz.
type ingestCounters struct {
	batches atomic.Int64
	docs    atomic.Int64
	nanos   atomic.Int64
	merges  atomic.Int64
	// defaultedTime counts documents whose PublishedAt was missing and
	// was defaulted to the ingest wall clock.
	defaultedTime atomic.Int64
}

// IngestCounters is the exported snapshot of ingestion counters.
type IngestCounters struct {
	// Batches and Docs count successful Ingest calls and the documents
	// they added.
	Batches int64 `json:"batches"`
	Docs    int64 `json:"docs"`
	// Nanos is the summed wall-clock cost of those calls (link + score
	// + swap).
	Nanos int64 `json:"nanos"`
	// Merges counts background segment merges.
	Merges int64 `json:"merges"`
	// DocsDefaultedTime counts documents that arrived without a
	// publication time and had it defaulted to the ingest wall clock.
	DocsDefaultedTime int64 `json:"docs_defaulted_time"`
}

// IngestCounters returns the engine's ingestion counters.
func (e *Engine) IngestCounters() IngestCounters {
	return IngestCounters{
		Batches:           e.ing.batches.Load(),
		Docs:              e.ing.docs.Load(),
		Nanos:             e.ing.nanos.Load(),
		Merges:            e.ing.merges.Load(),
		DocsDefaultedTime: e.ing.defaultedTime.Load(),
	}
}

// SegmentSizes lists the current snapshot's per-segment document
// counts, in base order.
func (e *Engine) SegmentSizes() []int {
	st := e.state()
	if st == nil {
		return nil
	}
	out := make([]int, len(st.snap.Segments))
	for i, seg := range st.snap.Segments {
		out[i] = seg.Len()
	}
	return out
}

// nextBase returns the next free GLOBAL document ID: local documents
// plus the documents other shards hold (zero for a monolithic engine).
func (e *Engine) nextBase(cur *genState) int32 {
	remoteDocs := 0
	if rs := e.remote.Load(); rs != nil {
		remoteDocs = rs.Docs
	}
	return int32(cur.snap.NumDocs() + remoteDocs)
}

// Ingest indexes a batch of articles into a new segment and publishes
// the next snapshot generation. Queries running concurrently are
// unaffected: each pinned the snapshot it started with, and the swap
// is a single atomic store. Document IDs are assigned densely after
// the existing corpus; the input slice is copied, never retained.
//
// The expensive analysis runs BEFORE the writer lock (see the pipeline
// comment above), so concurrent Ingest calls overlap their annotation,
// linking, and connectivity pre-warm and only serialise for the short
// commit section. The returned result describes the committed,
// in-memory state; its checkpoint drains through the group-commit
// writer — wait on PersistSeq for durability.
//
// ctx cancellation aborts the batch before the swap — either the
// whole batch becomes visible (at one new generation) or none of it.
// Concurrent Ingest calls serialise; order between racing batches is
// unspecified but each lands as its own generation.
func (e *Engine) Ingest(ctx context.Context, articles []corpus.Document) (IngestResult, error) {
	// Stage 1 — analyze, lock-free. The base is speculative: it is
	// re-read under the lock, and the segment rebased if another batch
	// committed in between (the rebase touches only the base-dependent
	// products — cheap next to re-analysis).
	cur := e.state()
	if cur == nil {
		return IngestResult{}, errNotIndexed
	}
	if len(articles) == 0 {
		return IngestResult{Generation: cur.snap.Generation, TotalDocs: cur.snap.NumDocs()}, nil
	}
	if err := ctx.Err(); err != nil {
		return IngestResult{}, err
	}
	start := time.Now()
	arts := append([]corpus.Document(nil), articles...)
	specBase := e.nextBase(cur)
	seg, _, linkNanos, err := e.buildSegment(ctx, arts, specBase)
	if err != nil {
		return IngestResult{}, err
	}
	warm := e.prewarmConn(ctx, seg)

	// Stage 2 — commit, under ingestMu: base assignment, plan replay
	// for the new segment only, atomic swap, checkpoint enqueue.
	e.ingestMu.Lock()
	if err := ctx.Err(); err != nil {
		e.ingestMu.Unlock()
		return IngestResult{}, err
	}
	cur = e.state()
	if base := e.nextBase(cur); base != seg.Base {
		// Lost the base race: re-address the segment. The speculative
		// conn values are dropped — their keys (and sampler streams)
		// embed global IDs this batch did not get; buildState recomputes
		// the batch's pairs under the real IDs.
		seg = snapshot.Rebase(seg, base)
		warm = nil
	}
	for _, w := range warm {
		e.connMemo.Store(w.key, w.val)
	}
	remoteBatches := uint64(0)
	if rs := e.remote.Load(); rs != nil {
		remoteBatches = rs.Batches
	}
	segs := make([]*snapshot.Segment, 0, len(cur.snap.Segments)+1)
	segs = append(segs, cur.snap.Segments...)
	segs = append(segs, seg)
	localGen := e.localGen.Load() + 1
	st, scoreNanos := e.buildState(localGen+remoteBatches, segs, cur)
	e.localGen.Store(localGen)
	e.st.Store(st)
	e.epoch.Add(1)
	e.ing.batches.Add(1)
	e.ing.docs.Add(int64(len(arts)))
	e.ing.nanos.Add(time.Since(start).Nanoseconds())
	// Standing queries evaluate the committed delta before the
	// checkpoint job is captured, so the enqueued checkpoint persists
	// the alerts this batch fired along with the batch itself — a
	// restart never replays a batch without its alerts or vice versa.
	if e.ingestHook != nil {
		e.ingestHook(&DeltaView{st: st, base: seg.Base, n: len(arts)})
	}
	// Stage 3 — persist, overlapped: enqueue the checkpoint (the only
	// segment the writer encodes is the new one; earlier segments are
	// already on disk under their content-addressed names) and let the
	// group-commit writer drain it while the next batch analyzes and
	// commits. Crash ordering is unchanged: segments first, manifest
	// last, jobs in commit order.
	seq := e.enqueueCheckpointLocked(st)
	e.maybeMerge(len(segs))
	e.ingestMu.Unlock()
	return IngestResult{
		Docs:       len(arts),
		Generation: st.snap.Generation,
		TotalDocs:  st.snap.NumDocs(),
		LinkNanos:  linkNanos,
		ScoreNanos: scoreNanos,
		PersistSeq: seq,
	}, nil
}

// connPair is one speculative context-factor value computed during the
// lock-free analysis stage, keyed by the GLOBAL (concept, doc) key its
// sampler was seeded with.
type connPair struct {
	key uint64
	val float64
}

// pendingDocView adapts a not-yet-committed segment to
// relevance.DocView for conn pre-warming. Only the document-local
// inputs of the context factor are real: EntityWeight is corpus-global
// and unused by ContextRel, so it reports 0 and must never be
// consulted on this path.
type pendingDocView struct{ seg *snapshot.Segment }

func (v pendingDocView) Entities(doc int32) []kg.NodeID {
	return v.seg.Docs[doc-v.seg.Base].Entities
}

func (v pendingDocView) EntityWeight(kg.NodeID, int32) float64 { return 0 }

func (v pendingDocView) ContextWeight(ent kg.NodeID, doc int32) float64 {
	tf := v.seg.Docs[doc-v.seg.Base].EntityFreq[ent]
	if tf <= 0 {
		return 0
	}
	return float64(tf) / float64(tf+1)
}

// prewarmConn walks, outside the writer lock, exactly the (concept,
// document) pairs the commit-time plan replay would otherwise walk for
// this segment: matching pairs (a document entity in the concept's
// capped extent) of concepts with positive specificity — no more (so
// the connectivity memo's content stays byte-identical to what a
// from-scratch build leaves behind) and no less (so the commit section
// finds every pair memoised). Values are returned, not stored: the
// keys embed the segment's speculative base, and the caller flushes
// them only if that base survives the commit race. Pairs already in
// the memo are skipped; a cancelled ctx returns the pairs warmed so
// far (pre-warming is an optimisation, never a correctness step).
func (e *Engine) prewarmConn(ctx context.Context, seg *snapshot.Segment) []connPair {
	numNodes := e.g.NumNodes()
	entSeen := make([]bool, numNodes)
	conceptSeen := make([]bool, numNodes)
	var concepts []kg.NodeID
	var stack []kg.NodeID
	mark := func(c kg.NodeID) {
		if !conceptSeen[c] {
			conceptSeen[c] = true
			concepts = append(concepts, c)
			stack = append(stack, c)
		}
	}
	for di := range seg.Docs {
		for _, v := range seg.Docs[di].Entities {
			if entSeen[v] {
				continue
			}
			entSeen[v] = true
			for _, c0 := range e.g.ConceptsOf(v) {
				mark(c0)
			}
			for len(stack) > 0 {
				c := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, b := range e.g.Broader(c) {
					mark(b)
				}
			}
		}
	}

	view := pendingDocView{seg: seg}
	workers := e.opts.Workers
	scorers := make([]*relevance.Scorer, workers)
	bufs := make([][]connPair, workers)
	stamps := make([][]uint32, workers)
	gens := make([]uint32, workers)
	for w := range scorers {
		scorers[w] = relevance.NewScorer(e.g, view, e.reachIx, e.scorerOpts())
		stamps[w] = make([]uint32, seg.Len())
	}
	e.parallelWorker(len(concepts), func(worker, i int) {
		if ctx.Err() != nil {
			return
		}
		c := concepts[i]
		if e.g.Specificity(c) <= 0 {
			return
		}
		s := scorers[worker]
		gens[worker]++
		gen := gens[worker]
		stamp := stamps[worker]
		ext, _ := s.Extent(c)
		for _, v := range ext {
			for _, d := range seg.EntDocs[v] {
				if local := d - seg.Base; stamp[local] == gen {
					continue
				} else {
					stamp[local] = gen
				}
				key := cdrKey(c, d)
				if _, ok := e.connMemo.Get(key); ok {
					continue
				}
				rnd := xrand.Stream(e.opts.Seed^cdrStreamSalt, key)
				bufs[worker] = append(bufs[worker], connPair{key: key, val: s.ContextRel(c, d, rnd)})
			}
		}
	})
	var out []connPair
	for _, buf := range bufs {
		out = append(out, buf...)
	}
	return out
}

// maybeMerge kicks the background merge goroutine when the segment
// count exceeds the policy bound. Called with ingestMu held; at most
// one merge goroutine runs at a time.
func (e *Engine) maybeMerge(segments int) {
	if segments <= e.opts.MaxSegments {
		return
	}
	if !e.merging.CompareAndSwap(false, true) {
		return
	}
	e.mergeWG.Add(1)
	go func() {
		defer e.mergeWG.Done()
		defer e.merging.Store(false)
		e.mergeSegments()
	}()
}

// mergeSegments folds the smallest adjacent segment pairs together
// until the count respects MaxSegments, then swaps in a state that
// keeps the SAME generation and transplants the memo maps and derived
// scores: a merge reorganises storage without changing any statistic,
// so every cached value — engine memos and external response caches
// alike — stays valid and warm.
func (e *Engine) mergeSegments() {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	cur := e.state()
	if cur == nil || len(cur.snap.Segments) <= e.opts.MaxSegments {
		return
	}
	segs := append([]*snapshot.Segment(nil), cur.snap.Segments...)
	mergedAny := false
	for len(segs) > e.opts.MaxSegments {
		// Only ID-contiguous neighbours may fold: a merged segment covers
		// one contiguous global range, and a shard's segment list can have
		// gaps where other shards' batches landed. When no adjacent pair
		// is contiguous the shard keeps its segment count — correctness
		// never depends on merging.
		best := -1
		bestSize := -1
		for i := 0; i+1 < len(segs); i++ {
			if segs[i].Base+int32(segs[i].Len()) != segs[i+1].Base {
				continue
			}
			size := segs[i].Len() + segs[i+1].Len()
			if bestSize < 0 || size < bestSize {
				best, bestSize = i, size
			}
		}
		if best < 0 {
			break
		}
		merged := snapshot.Merge(segs[best : best+2])
		// Record the fold for delta checkpoints: the writer substitutes
		// the two parents' durable files for the merged segment rather
		// than re-encoding O(corpus) bytes on every merge.
		if e.persist.checkpointDir != "" {
			e.gc.addLineage(merged, segs[best], segs[best+1])
		}
		segs = append(segs[:best+1], segs[best+2:]...)
		segs[best] = merged
		e.ing.merges.Add(1)
		mergedAny = true
	}
	if !mergedAny {
		return
	}
	st := e.newStateShell(e.buildSnapshot(cur.snap.Generation, segs), cur)
	st.concepts = cur.concepts
	st.cdrMemo = cur.cdrMemo
	// Plans stay valid verbatim: merges keep document IDs, corpus-global
	// statistics, and (global-ID-aligned) block identities unchanged.
	// That covers the ceiling state too — merged block-max tables fold
	// to the same per-block maxima — so warm ceilings carry over.
	st.plans = cur.plans
	st.planned = cur.planned
	st.entIDFN = cur.entIDFN
	st.ceil = cur.ceil
	e.st.Store(st)
	// No epoch bump: answers are unchanged, external caches stay warm.
	// The checkpoint keeps the data directory aligned with the merged
	// layout (and garbage-collects the folded segment files).
	e.enqueueCheckpointLocked(st)
}

// WaitMerges blocks until any in-flight background merge completes AND
// every checkpoint enqueued so far has drained through the group-commit
// writer — after it returns, the checkpoint directory reflects the
// merged layout. Tests and graceful shutdown use it; queries never
// need to.
func (e *Engine) WaitMerges() {
	e.mergeWG.Wait()
	e.drainPersist()
}
