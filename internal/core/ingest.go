package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/snapshot"
)

// Live corpus ingestion. Ingest appends a batch of documents as a new
// immutable segment and swaps in the next snapshot generation; a
// background merge keeps the segment count bounded. The write side is
// single-writer (ingestMu); the read side never blocks on it.
//
// Equivalence guarantee: an engine grown by any sequence of Ingest
// calls answers every query byte-identically to an engine that
// indexed the same documents in one IndexCorpus build. Three design
// choices carry the proof:
//
//  1. corpus-global term statistics — the snapshot's merged text view
//     sums document frequencies across segments, so tw(v, d) equals
//     the monolithic build's value exactly;
//  2. generation-derived scores — everything downstream of tw (the
//     ontology factor, candidate ranking, pivots) is recomputed for
//     every document when a snapshot is built, never carried over;
//  3. content-addressed sampling — the connectivity factor's sampler
//     is seeded by (concept, doc) alone, so its memoised values are
//     the ones a from-scratch build would draw.

// errNotIndexed is returned by Ingest before IndexCorpus has run.
var errNotIndexed = errors.New("core: Ingest called before IndexCorpus")

// IngestResult reports one ingested batch.
type IngestResult struct {
	// Docs is the number of documents added by this batch.
	Docs int
	// Generation is the snapshot generation now serving.
	Generation uint64
	// TotalDocs is the corpus size after the batch.
	TotalDocs int
	// LinkNanos / ScoreNanos split the batch's indexing cost:
	// annotation+linking of the new documents vs deriving the new
	// generation's scores (which spans the whole corpus but re-walks
	// only never-seen candidates).
	LinkNanos  int64
	ScoreNanos int64
}

// ingestCounters aggregates ingestion throughput for /statsz.
type ingestCounters struct {
	batches atomic.Int64
	docs    atomic.Int64
	nanos   atomic.Int64
	merges  atomic.Int64
}

// IngestCounters is the exported snapshot of ingestion counters.
type IngestCounters struct {
	// Batches and Docs count successful Ingest calls and the documents
	// they added.
	Batches int64 `json:"batches"`
	Docs    int64 `json:"docs"`
	// Nanos is the summed wall-clock cost of those calls (link + score
	// + swap).
	Nanos int64 `json:"nanos"`
	// Merges counts background segment merges.
	Merges int64 `json:"merges"`
}

// IngestCounters returns the engine's ingestion counters.
func (e *Engine) IngestCounters() IngestCounters {
	return IngestCounters{
		Batches: e.ing.batches.Load(),
		Docs:    e.ing.docs.Load(),
		Nanos:   e.ing.nanos.Load(),
		Merges:  e.ing.merges.Load(),
	}
}

// SegmentSizes lists the current snapshot's per-segment document
// counts, in base order.
func (e *Engine) SegmentSizes() []int {
	st := e.state()
	if st == nil {
		return nil
	}
	out := make([]int, len(st.snap.Segments))
	for i, seg := range st.snap.Segments {
		out[i] = seg.Len()
	}
	return out
}

// Ingest indexes a batch of articles into a new segment and publishes
// the next snapshot generation. Queries running concurrently are
// unaffected: each pinned the snapshot it started with, and the swap
// is a single atomic store. Document IDs are assigned densely after
// the existing corpus; the input slice is copied, never retained.
//
// ctx cancellation aborts the batch before the swap — either the
// whole batch becomes visible (at one new generation) or none of it.
// Concurrent Ingest calls serialise; order between racing batches is
// unspecified but each lands as its own generation.
func (e *Engine) Ingest(ctx context.Context, articles []corpus.Document) (IngestResult, error) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	cur := e.state()
	if cur == nil {
		return IngestResult{}, errNotIndexed
	}
	if len(articles) == 0 {
		return IngestResult{Generation: cur.snap.Generation, TotalDocs: cur.snap.NumDocs()}, nil
	}
	if err := ctx.Err(); err != nil {
		return IngestResult{}, err
	}
	start := time.Now()
	arts := append([]corpus.Document(nil), articles...)
	// The new segment's base is the next free GLOBAL document ID: local
	// documents plus the documents other shards hold (zero for a
	// monolithic engine). The published generation is likewise global —
	// local generations plus remote batches — so every shard numbers
	// generations exactly like a monolithic engine over the union.
	remoteDocs, remoteBatches := 0, uint64(0)
	if rs := e.remote.Load(); rs != nil {
		remoteDocs, remoteBatches = rs.Docs, rs.Batches
	}
	seg, _, linkNanos, err := e.buildSegment(ctx, arts, int32(cur.snap.NumDocs()+remoteDocs))
	if err != nil {
		return IngestResult{}, err
	}
	segs := make([]*snapshot.Segment, 0, len(cur.snap.Segments)+1)
	segs = append(segs, cur.snap.Segments...)
	segs = append(segs, seg)
	localGen := e.localGen.Load() + 1
	st, scoreNanos := e.buildState(localGen+remoteBatches, segs, cur)
	e.localGen.Store(localGen)
	e.st.Store(st)
	e.epoch.Add(1)
	e.ing.batches.Add(1)
	e.ing.docs.Add(int64(len(arts)))
	e.ing.nanos.Add(time.Since(start).Nanoseconds())
	// Standing queries evaluate the committed delta before the
	// checkpoint, so the checkpoint below persists the alerts this batch
	// fired along with the batch itself — a restart never replays a
	// batch without its alerts or vice versa.
	if e.ingestHook != nil {
		e.ingestHook(&DeltaView{st: st, base: seg.Base, n: len(arts)})
	}
	// With a checkpoint directory configured, persist the committed
	// batch before returning: the only segment encoded and written is
	// the new one (earlier segments are already on disk under their
	// content-addressed names), and the manifest swap is atomic, so a
	// crash after this point re-opens with the batch included and a
	// crash before it loses only this batch.
	e.checkpointLocked(st)
	e.maybeMerge(len(segs))
	return IngestResult{
		Docs:       len(arts),
		Generation: st.snap.Generation,
		TotalDocs:  st.snap.NumDocs(),
		LinkNanos:  linkNanos,
		ScoreNanos: scoreNanos,
	}, nil
}

// maybeMerge kicks the background merge goroutine when the segment
// count exceeds the policy bound. Called with ingestMu held; at most
// one merge goroutine runs at a time.
func (e *Engine) maybeMerge(segments int) {
	if segments <= e.opts.MaxSegments {
		return
	}
	if !e.merging.CompareAndSwap(false, true) {
		return
	}
	e.mergeWG.Add(1)
	go func() {
		defer e.mergeWG.Done()
		defer e.merging.Store(false)
		e.mergeSegments()
	}()
}

// mergeSegments folds the smallest adjacent segment pairs together
// until the count respects MaxSegments, then swaps in a state that
// keeps the SAME generation and transplants the memo maps and derived
// scores: a merge reorganises storage without changing any statistic,
// so every cached value — engine memos and external response caches
// alike — stays valid and warm.
func (e *Engine) mergeSegments() {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	cur := e.state()
	if cur == nil || len(cur.snap.Segments) <= e.opts.MaxSegments {
		return
	}
	segs := append([]*snapshot.Segment(nil), cur.snap.Segments...)
	mergedAny := false
	for len(segs) > e.opts.MaxSegments {
		// Only ID-contiguous neighbours may fold: a merged segment covers
		// one contiguous global range, and a shard's segment list can have
		// gaps where other shards' batches landed. When no adjacent pair
		// is contiguous the shard keeps its segment count — correctness
		// never depends on merging.
		best := -1
		bestSize := -1
		for i := 0; i+1 < len(segs); i++ {
			if segs[i].Base+int32(segs[i].Len()) != segs[i+1].Base {
				continue
			}
			size := segs[i].Len() + segs[i+1].Len()
			if bestSize < 0 || size < bestSize {
				best, bestSize = i, size
			}
		}
		if best < 0 {
			break
		}
		merged := snapshot.Merge(segs[best : best+2])
		segs = append(segs[:best+1], segs[best+2:]...)
		segs[best] = merged
		e.ing.merges.Add(1)
		mergedAny = true
	}
	if !mergedAny {
		return
	}
	st := e.newStateShell(e.buildSnapshot(cur.snap.Generation, segs))
	st.concepts = cur.concepts
	st.cdrMemo = cur.cdrMemo
	// Plans stay valid verbatim: merges keep document IDs, corpus-global
	// statistics, and (global-ID-aligned) block identities unchanged.
	st.plans = cur.plans
	st.planned = cur.planned
	e.st.Store(st)
	// No epoch bump: answers are unchanged, external caches stay warm.
	// The checkpoint keeps the data directory aligned with the merged
	// layout (and garbage-collects the folded segment files).
	e.checkpointLocked(st)
}

// WaitMerges blocks until any in-flight background merge completes.
// Tests and graceful shutdown use it; queries never need to.
func (e *Engine) WaitMerges() { e.mergeWG.Wait() }
