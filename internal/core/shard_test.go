package core

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"ncexplorer/internal/corpus"
)

// syncShards publishes every shard's local statistics to its peers —
// the orchestration step a cluster performs over HTTP after each batch.
func syncShards(t testing.TB, shards []*Engine) {
	t.Helper()
	for i, e := range shards {
		var remote ShardStats
		for j, o := range shards {
			if j != i {
				remote.add(o.LocalStats())
			}
		}
		if err := e.SetRemoteStats(remote); err != nil {
			t.Fatal(err)
		}
	}
}

// mergeShardRollUps is the router's roll-up merge in miniature: the
// union of per-shard top-k lists re-ranked by (score desc, doc asc) —
// exact because shards partition the corpus and each shard's top-k
// contains every global top-k document it owns.
func mergeShardRollUps(lists [][]DocResult, k int) []DocResult {
	var union []DocResult
	for _, l := range lists {
		union = append(union, l...)
	}
	sort.Slice(union, func(i, j int) bool {
		if union[i].Score != union[j].Score {
			return union[i].Score > union[j].Score
		}
		return union[i].Doc < union[j].Doc
	})
	if len(union) > k {
		union = union[:k]
	}
	return union
}

// TestShardedMatchesMonolithic is the acceptance contract of sharded
// serving at the engine level: two shards booted with
// IndexCorpusSharded and grown by routed batches (with statistics
// exchanged after each) must agree with a monolithic engine over the
// union — same generations, byte-identical per-document concept
// postings for every owned document, and per-shard roll-ups whose
// exact merge reproduces the monolithic page. The schedule routes
// consecutive batches to one shard (exercising contiguous shard-side
// merges) and alternates too (exercising the merge contiguity guard).
func TestShardedMatchesMonolithic(t *testing.T) {
	g, meta, c, _ := world(t)
	opts := Options{Seed: 11, Samples: 20, MaxSegments: 2}
	const nShards = 2
	shards := make([]*Engine, nShards)
	for s := range shards {
		shards[s] = NewEngine(g, opts)
		shards[s].IndexCorpusSharded(c, s, nShards)
	}
	syncShards(t, shards)
	mono := NewEngine(g, opts)
	mono.IndexCorpus(c)

	check := func(stage string) {
		t.Helper()
		for s, e := range shards {
			if e.Generation() != mono.Generation() {
				t.Fatalf("%s: shard %d generation %d, mono %d", stage, s, e.Generation(), mono.Generation())
			}
			for _, d := range localDocs(e.state().snap) {
				got, want := e.DocConcepts(corpus.DocID(d)), mono.DocConcepts(corpus.DocID(d))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: shard %d doc %d postings diverge:\n shard: %+v\n mono:  %+v",
						stage, s, d, got, want)
				}
			}
		}
		for _, topic := range meta.Topics {
			for _, q := range []Query{{topic.Concept}, {topic.Concept, topic.GroupConcept}} {
				const k = 8
				lists := make([][]DocResult, len(shards))
				for s, e := range shards {
					lists[s] = e.RollUp(q, k)
				}
				got, want := mergeShardRollUps(lists, k), mono.RollUp(q, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: merged roll-up for %v diverges:\n merged: %+v\n mono:   %+v",
						stage, q, got, want)
				}
			}
		}
	}
	check("seed")

	targets := []int{0, 0, 1, 1, 0}
	for i, target := range targets {
		batch := ingestBatch(t, 9000+uint64(i), 5+i)
		if _, err := shards[target].Ingest(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		if _, err := mono.Ingest(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		syncShards(t, shards)
		check("batch")
	}
	for _, e := range shards {
		e.WaitMerges()
	}
	mono.WaitMerges()
	check("after merges")

	// Shard 0 received contiguous consecutive batches, so its merge path
	// must have fired; total documents must tile the global ID space.
	totalDocs := 0
	for _, e := range shards {
		totalDocs += e.NumDocs()
	}
	if totalDocs != mono.NumDocs() {
		t.Fatalf("shards hold %d docs, mono %d", totalDocs, mono.NumDocs())
	}
}

// TestShardPersistRoundTrip: a shard saved and reopened (the replica
// warm-open path) recovers its cluster position, remote statistics,
// and local generation, answering byte-identically without any peer.
func TestShardPersistRoundTrip(t *testing.T) {
	g, meta, c, _ := world(t)
	opts := Options{Seed: 11, Samples: 20}
	shards := make([]*Engine, 2)
	for s := range shards {
		shards[s] = NewEngine(g, opts)
		shards[s].IndexCorpusSharded(c, s, 2)
	}
	syncShards(t, shards)
	if _, err := shards[1].Ingest(context.Background(), ingestBatch(t, 7100, 6)); err != nil {
		t.Fatal(err)
	}
	syncShards(t, shards)

	saved := shards[0]
	dir := t.TempDir()
	if err := saved.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	loaded := NewEngine(g, opts)
	if err := loaded.OpenSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	if loaded.Generation() != saved.Generation() {
		t.Fatalf("generation %d, want %d", loaded.Generation(), saved.Generation())
	}
	idx, count, sharded := loaded.ShardInfo()
	if !sharded || idx != 0 || count != 2 {
		t.Fatalf("ShardInfo = (%d, %d, %v), want (0, 2, true)", idx, count, sharded)
	}
	if got, want := loaded.RemoteStatsSnapshot(), saved.RemoteStatsSnapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("remote stats diverge: %+v vs %+v", got, want)
	}
	for _, d := range localDocs(saved.state().snap) {
		if !reflect.DeepEqual(loaded.DocConcepts(corpus.DocID(d)), saved.DocConcepts(corpus.DocID(d))) {
			t.Fatalf("doc %d postings diverge after reopen", d)
		}
	}
	for _, topic := range meta.Topics {
		q := Query{topic.Concept}
		if !reflect.DeepEqual(loaded.RollUp(q, 8), saved.RollUp(q, 8)) {
			t.Fatalf("roll-up for %v diverges after reopen", q)
		}
	}
	// A reopened shard keeps ingesting with globally numbered IDs and
	// generations.
	if _, err := loaded.Ingest(context.Background(), ingestBatch(t, 7200, 3)); err != nil {
		t.Fatal(err)
	}
	if loaded.Generation() != saved.Generation()+1 {
		t.Fatalf("post-reopen ingest generation %d, want %d", loaded.Generation(), saved.Generation()+1)
	}
}

// TestSetRemoteStatsContract pins the API edges: monolithic engines
// refuse remote stats, unchanged stats are a no-op swap, and changed
// stats bump the cache epoch.
func TestSetRemoteStatsContract(t *testing.T) {
	g, _, c, _ := world(t)
	mono := NewEngine(g, Options{Seed: 11, Samples: 20})
	mono.IndexCorpus(c)
	if err := mono.SetRemoteStats(ShardStats{Docs: 1}); err == nil {
		t.Fatal("monolithic engine accepted remote stats")
	}

	sh := NewEngine(g, Options{Seed: 11, Samples: 20})
	sh.IndexCorpusSharded(c, 0, 2)
	cur := sh.RemoteStatsSnapshot()
	epoch := sh.CacheEpoch()
	if err := sh.SetRemoteStats(cur); err != nil {
		t.Fatal(err)
	}
	if sh.CacheEpoch() != epoch {
		t.Fatal("unchanged remote stats must not swap state")
	}
	cur.Docs += 5
	cur.Batches++
	if err := sh.SetRemoteStats(cur); err != nil {
		t.Fatal(err)
	}
	if sh.CacheEpoch() == epoch {
		t.Fatal("changed remote stats must bump the cache epoch")
	}
	if sh.Generation() != 2 {
		t.Fatalf("generation = %d, want 2 after one remote batch", sh.Generation())
	}
}
