package core

import (
	"slices"
	"time"

	"ncexplorer/internal/snapshot"
)

// Temporal roll-up/drill-down support: publication time as a filter and
// aggregation dimension.
//
// Filtering is pure pruning over immutable per-document timestamps
// (snapshot.DocRecord.PublishedAt): a query's TimeRange discards whole
// segments via their exact MinTime/MaxTime bounds, whole plan blocks
// via the per-block bounds materialised next to the score ceilings, and
// finally individual documents — each level only ever discards
// documents the per-document predicate would discard, so a filtered
// page is byte-identical to post-filtering the exhaustive scorer (the
// property tests pin this).
//
// Aggregation (GroupBy) buckets every filter-passing match by the UTC
// calendar period of its publication time. Buckets are plain
// (period-start, count) pairs keyed by an absolute timestamp, so a
// cluster router can merge shard buckets associatively: equal periods
// have equal starts on every node, and counts add.

// TimeRange bounds document publication times in Unix seconds, both
// ends inclusive. Callers express an open end with math.MinInt64 /
// math.MaxInt64; a nil *TimeRange means no time filter at all.
type TimeRange struct {
	Min int64
	Max int64
}

// contains reports whether ts falls inside the range.
func (tr *TimeRange) contains(ts int64) bool {
	return ts >= tr.Min && ts <= tr.Max
}

// overlapsSnapshot reports whether any locally held document's
// publication time can fall inside the range, using the exact
// per-segment bounds — the whole-query fast path that skips plan and
// ceiling work entirely for a disjoint window.
func (tr *TimeRange) overlapsSnapshot(snap *snapshot.Snapshot) bool {
	for _, seg := range snap.Segments {
		if seg.Len() == 0 {
			continue
		}
		if seg.MaxTime >= tr.Min && seg.MinTime <= tr.Max {
			return true
		}
	}
	return false
}

// GroupBy selects the calendar period of a roll-up's per-period
// aggregation.
type GroupBy uint8

const (
	// GroupNone disables per-period aggregation.
	GroupNone GroupBy = iota
	// GroupDay buckets by UTC calendar day.
	GroupDay
	// GroupWeek buckets by ISO week (Monday 00:00 UTC).
	GroupWeek
	// GroupMonth buckets by UTC calendar month.
	GroupMonth
)

// PeriodStart truncates a publication time to the start of its period
// (Unix seconds, UTC calendar). Exported alongside PeriodBucket so the
// cluster router and the facade derive period identities with the
// exact arithmetic the engine bucketed with.
func (g GroupBy) PeriodStart(ts int64) int64 {
	t := time.Unix(ts, 0).UTC()
	switch g {
	case GroupDay:
		y, m, d := t.Date()
		return time.Date(y, m, d, 0, 0, 0, 0, time.UTC).Unix()
	case GroupWeek:
		y, m, d := t.Date()
		day := time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
		return day.AddDate(0, 0, -int((day.Weekday()+6)%7)).Unix()
	case GroupMonth:
		y, m, _ := t.Date()
		return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC).Unix()
	default:
		return ts
	}
}

// Next returns the start of the period following the one starting at
// start — the step the facade uses to decide whether two buckets are
// calendar-adjacent (trend deltas only compare consecutive periods).
func (g GroupBy) Next(start int64) int64 {
	t := time.Unix(start, 0).UTC()
	switch g {
	case GroupDay:
		return t.AddDate(0, 0, 1).Unix()
	case GroupWeek:
		return t.AddDate(0, 0, 7).Unix()
	case GroupMonth:
		return t.AddDate(0, 1, 0).Unix()
	default:
		return start
	}
}

// PeriodBucket counts the filter-passing matches of one period. The
// buckets of a page always sum to its Total.
type PeriodBucket struct {
	// Start is the period's first instant (Unix seconds, UTC).
	Start int64
	// Count is the number of matching documents published in the period.
	Count int
}

// periodAcc accumulates per-period match counts during a scan. A nil
// accumulator disables aggregation — the common case, and the reason
// the warm no-group-by roll-up path stays allocation-free.
type periodAcc struct {
	gb     GroupBy
	counts map[int64]int
}

func newPeriodAcc(gb GroupBy) *periodAcc {
	if gb == GroupNone {
		return nil
	}
	return &periodAcc{gb: gb, counts: make(map[int64]int)}
}

func (pa *periodAcc) add(ts int64) { pa.counts[pa.gb.PeriodStart(ts)]++ }

// buckets renders the accumulated counts ordered by period start.
func (pa *periodAcc) buckets() []PeriodBucket {
	if pa == nil || len(pa.counts) == 0 {
		return nil
	}
	out := make([]PeriodBucket, 0, len(pa.counts))
	for s, n := range pa.counts {
		out = append(out, PeriodBucket{Start: s, Count: n})
	}
	slices.SortFunc(out, func(a, b PeriodBucket) int {
		switch {
		case a.Start < b.Start:
			return -1
		case a.Start > b.Start:
			return 1
		default:
			return 0
		}
	})
	return out
}
