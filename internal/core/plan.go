package core

import (
	"context"
	"math"
	"slices"
	"sync"
	"time"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/relevance"
	"ncexplorer/internal/snapshot"
	"ncexplorer/internal/topk"
)

// The query planner: at swap time (build, ingest, merge-carry, cache
// reset) the engine eagerly scores every MATCHING (concept, document)
// pair — not just the per-document kept candidates — into per-concept
// plans, and computes a block-max score ceiling per fixed window of
// the document-ID space. A roll-up then never touches the relevance
// machinery: it walks one plan's blocks in ceiling order, keeps a
// top-k threshold, and skips whole blocks that provably cannot beat
// it (WAND-style upper-bound pruning, cf. block-max indexes in text
// search).
//
// Why eager scoring is affordable: matching pairs exceed the candidate
// pairs the engine always scored by only a small factor (~1.3× at the
// default experiment scale — candidates are the direct concepts of
// document entities plus ancestor levels, and most matching concepts
// ARE candidates), and the expensive connectivity factor is memoised
// in the generation-independent connMemo, so pairs are walked once
// per corpus lifetime no matter how many generations rebuild plans.
//
// Ceiling construction (see DESIGN.md §9): for concept c and block w,
//
//	ceil(c, w) = Spec(c) · ubOnt(c, w) · cdrcCap(c)
//	ubOnt(c, w) = max_{v∈ext(c)} idfN(v) · sat(maxTF(v, w))
//	cdrcCap(c)  = ConnToScore(ConnCap(|ext(c)|, Δ, τ, β))
//
// where maxTF comes from the persisted per-segment block-max tables
// (snapshot.MaxTF), idfN(v) = IDF(v)/idfMax is this generation's
// normalised inverse document frequency, and Δ is the graph's maximum
// instance degree. Every factor dominates its counterpart in
// cdr = (Spec·max tw)·cdrc with the same floating-point operations
// (sat ≤ satMax exactly, and fp multiplication is monotone), so
// ceil(c, w) ≥ cdr(c, d) for every d in the block. As belt-and-braces
// against accumulation corner cases in the sampled conn estimate, the
// builder additionally raises a ceiling to the block's realised
// maximum score — by construction a skip can then never hide a
// retained result.

// planBlock is one scoring block of a concept plan: the contiguous
// index range [lo, hi) of plan.docs whose documents fall into one
// global-ID window, plus the score ceiling for that window and the
// exact publication-time bounds of the block's matching documents
// (inclusive) — a block disjoint from a query's time range is skipped
// before any score work, which is sound because no document in it can
// pass the per-document time predicate.
type planBlock struct {
	lo, hi     int32
	ceil       float64
	minT, maxT int64
}

// conceptPlan holds everything a query needs about one concept,
// parallel-indexed: the sorted matching documents (Definition 1
// semantics, identical to the former match memo), their full cdr
// scores and explanation payloads, and the pruning blocks. Immutable
// after build; shared by every query pinned to the generation.
type conceptPlan struct {
	docs   []int32
	scores []float64 // cdr(c, d)
	ont    []float64 // cdro(c, d): candidate-ranking input for drill-down postings
	cdrc   []float64 // the memoised connectivity factor (0 when cdro = 0: never walked)
	pivots []kg.NodeID
	blocks []planBlock
	// ceilOrder lists block indices by (ceil desc, position asc): the
	// visit order that raises the top-k threshold fastest.
	ceilOrder []int32
	// The match skeleton, CSR-packed: for document j, rows
	// [matchOff[j], matchOff[j+1]) list the document's matched extent
	// entities in first-mention order with their saturated term
	// frequencies tf/(tf+1). Everything generation-DEPENDENT about a
	// plan (ont, pivots, scores, ceilings) is a cheap replay over this
	// skeleton with the generation's normalised IDF — and the skeleton
	// itself is generation-INDEPENDENT, so a rebuild after an ingest
	// copies it for untouched segments instead of re-walking postings
	// and term statistics (see buildPlans).
	matchOff  []int32
	matchEnts []kg.NodeID
	matchSats []float64
}

// plan returns the concept's plan (empty plan: matches nothing).
func (st *genState) plan(c kg.NodeID) *conceptPlan {
	if c < 0 || int(c) >= len(st.plans) {
		return &emptyPlan
	}
	return &st.plans[c]
}

var emptyPlan conceptPlan

// planIdx returns the index of doc in p.docs, or -1.
func (p *conceptPlan) planIdx(doc int32) int {
	lo, hi := 0, len(p.docs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.docs[mid] < doc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.docs) && p.docs[lo] == doc {
		return lo
	}
	return -1
}

// maxInstanceDegree scans the instance space once for Δ, the walk
// branching bound behind cdrcCap.
func maxInstanceDegree(g *kg.Graph) int {
	max := 0
	g.Instances(func(v kg.NodeID) bool {
		if d := g.InstanceDegree(v); d > max {
			max = d
		}
		return true
	})
	return max
}

// planScratch is the pooled per-worker scratch of the plan builder:
// dense stamp arrays over documents / entities / blocks (reset by
// bumping gen) plus a reusable new-document accumulation buffer. The
// arrays grow monotonically with the corpus; pooled engine-wide so a
// steady stream of ingests stops allocating them per generation.
type planScratch struct {
	docStamp []uint32
	extStamp []uint32
	blockAcc []float64
	blockGen []uint32
	gen      uint32
	newDocs  []int32
}

// ensure grows the stamp arrays to the needed sizes. Grown tails are
// zero, which can never equal a live gen (gen wraps are reset below),
// so existing stamps stay correct.
func (sc *planScratch) ensure(docBound, numNodes, numBlocks int) {
	grow32 := func(s []uint32, n int) []uint32 {
		if len(s) >= n {
			return s
		}
		out := make([]uint32, n)
		copy(out, s)
		return out
	}
	sc.docStamp = grow32(sc.docStamp, docBound)
	sc.extStamp = grow32(sc.extStamp, numNodes)
	sc.blockGen = grow32(sc.blockGen, numBlocks+1)
	if len(sc.blockAcc) < numBlocks+1 {
		acc := make([]float64, numBlocks+1)
		copy(acc, sc.blockAcc)
		sc.blockAcc = acc
	}
}

// bump advances the stamp generation, clearing the arrays on wrap so a
// stale stamp can never alias a live one.
func (sc *planScratch) bump() {
	sc.gen++
	if sc.gen == 0 {
		clear(sc.docStamp)
		clear(sc.extStamp)
		clear(sc.blockGen)
		sc.gen = 1
	}
}

// buildPlans derives the generation's concept plans. Concepts that can
// match at least one document are exactly those with a document entity
// in their extent closure; enumerating the broader-closure of every
// document entity's direct concepts gives a superset (the closure cap
// can only shrink a concept's matches), and gathering per concept via
// the capped extent reproduces Definition 1 matching exactly.
//
// Incremental rebuilds: when prev is the previous generation's state
// and its segments are a pointer-prefix of st's (the shape every
// Ingest produces — old segments are immutable, one segment is
// appended), each concept's match skeleton (docs, matched entities,
// saturated term frequencies, connectivity factors) is EXTENDED IN
// PLACE: the new plan aliases the previous arrays and appends the new
// segments' rows. That is safe under the single-writer invariant —
// exactly one state derivation runs at a time (ingestMu), each prev is
// used as a base at most once (state chains are linear; merges and
// cache resets carry plan slices verbatim, preserving the chain), and
// readers pinned to an older generation only index their own prefix,
// which an append never moves or mutates. The generation-dependent
// arrays (scores, ont, pivots, ceilings) are freshly allocated and
// replayed over the skeleton with the exact floating-point operations
// a from-scratch build performs — sat·(IDF/idfMax) with this
// generation's global counts, max by strict >, Spec·best — so both
// paths are bit-identical (the equivalence tests pin this). Returns
// the summed per-concept scoring nanoseconds.
func (e *Engine) buildPlans(st *genState, scorers []*relevance.Scorer, prev *genState) int64 {
	numNodes := e.g.NumNodes()
	st.plans = make([]conceptPlan, numNodes)
	snap := st.snap

	// Reuse applies when prev's segment list is a pointer-prefix of the
	// new one: those segments are untouched, so per-document skeleton
	// rows keyed by their global IDs are still exact. Merges replace
	// segment pointers and therefore rebuild from scratch (they carry
	// plans over verbatim instead, see mergeSegments).
	reuse := prev != nil && prev.plans != nil && len(prev.snap.Segments) <= len(snap.Segments)
	if reuse {
		for i, seg := range prev.snap.Segments {
			if snap.Segments[i] != seg {
				reuse = false
				break
			}
		}
	}
	newSegs := snap.Segments
	if reuse {
		newSegs = snap.Segments[len(prev.snap.Segments):]
	}

	// Phase 1: enumerate the matching-concept superset from the segments
	// being (re)scanned, deterministically (documents ascending, entities
	// in first-mention order); under reuse, concepts whose previous plan
	// matched something are appended afterwards. A concept absent from
	// both sets matches no document: the previous gather was exact over
	// the old segments, and the closure walk covers every concept a new
	// entity can reach.
	entSeen := make([]bool, numNodes)
	conceptSeen := make([]bool, numNodes)
	var concepts []kg.NodeID
	var stack []kg.NodeID
	mark := func(c kg.NodeID) {
		if !conceptSeen[c] {
			conceptSeen[c] = true
			concepts = append(concepts, c)
			stack = append(stack, c)
		}
	}
	for _, seg := range newSegs {
		for di := range seg.Docs {
			for _, v := range seg.Docs[di].Entities {
				if entSeen[v] {
					continue
				}
				entSeen[v] = true
				for _, c0 := range e.g.ConceptsOf(v) {
					mark(c0)
				}
				for len(stack) > 0 {
					c := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, b := range e.g.Broader(c) {
						mark(b)
					}
				}
			}
		}
	}
	if reuse {
		for c := range prev.plans {
			if len(prev.plans[c].docs) > 0 && !conceptSeen[c] {
				conceptSeen[c] = true
				concepts = append(concepts, kg.NodeID(c))
			}
		}
	}
	st.planned = len(concepts)

	// Phase 2: per-entity normalised IDF, idfN(v) = IDF(v)/idfMax, with
	// the exact floating-point operations of textindex TFIDF so the
	// ceiling's ubOnt dominates every term weight op-for-op. The entity
	// set is every posting key of ALL segments — the replay needs every
	// local entity's idfN — maintained incrementally on the engine
	// (extended from the rescanned segments only) instead of re-walking
	// every segment's posting map each generation.
	if !reuse {
		e.plannedEnts, e.entSeen = nil, nil
	}
	if e.entSeen == nil {
		e.entSeen = make([]bool, numNodes)
	}
	for _, seg := range newSegs {
		for v := range seg.EntDocs {
			if !e.entSeen[v] {
				e.entSeen[v] = true
				e.plannedEnts = append(e.plannedEnts, v)
			}
		}
	}
	idfMax := math.Log(1 + (float64(snap.Text.NumDocs())+0.5)/0.5)
	entIDFN := make([]float64, numNodes)
	if idfMax != 0 {
		for _, v := range e.plannedEnts {
			entIDFN[v] = snap.Text.IDF(snapshot.EntTerm(v)) / idfMax
		}
	}
	// Retained for the lazy ceiling builder (ensureCeilings), which
	// replays this generation's normalised IDF on first query use.
	st.entIDFN = entIDFN
	st.ceil = &ceilState{}

	// Phase 3: per-concept gather + score + ceilings, in parallel.
	numBlocks := snap.NumBlocks()
	docBound := snap.DocBound()
	scratches := make([]*planScratch, len(scorers))
	for w := range scratches {
		scratches[w] = e.planPool.Get().(*planScratch)
		scratches[w].ensure(docBound, numNodes, numBlocks)
	}
	defer func() {
		for _, sc := range scratches {
			e.planPool.Put(sc)
		}
	}()
	nanos := make([]int64, len(scorers))
	e.parallelWorker(len(concepts), func(worker, i int) {
		start := time.Now()
		c := concepts[i]
		s := scorers[worker]
		sc := scratches[worker]
		sc.bump()
		ext, _ := s.Extent(c)
		for _, v := range ext {
			sc.extStamp[v] = sc.gen
		}

		var pp *conceptPlan
		nOld := 0
		if reuse {
			pp = &prev.plans[c]
			nOld = len(pp.docs)
		}

		// Matched documents: the previous skeleton's list verbatim, plus
		// the union of the capped extent's postings over the (re)scanned
		// segments. New global IDs all exceed old ones (bases ascend), so
		// the concatenation stays sorted.
		newDocs := sc.newDocs[:0]
		for _, v := range ext {
			for _, seg := range newSegs {
				for _, d := range seg.EntDocs[v] {
					if sc.docStamp[d] != sc.gen {
						sc.docStamp[d] = sc.gen
						newDocs = append(newDocs, d)
					}
				}
			}
		}
		sc.newDocs = newDocs
		n := nOld + len(newDocs)
		if n == 0 {
			nanos[worker] += time.Since(start).Nanoseconds()
			return
		}
		slices.Sort(newDocs)

		p := &st.plans[c]
		// Skeleton: alias the previous arrays and append rows for the
		// new documents only (see the invariant in the function comment;
		// append copies newDocs' values, so the scratch buffer is never
		// retained). A from-scratch concept starts fresh.
		if nOld > 0 {
			p.docs = append(pp.docs, newDocs...)
			p.cdrc = pp.cdrc
			p.matchOff = pp.matchOff
			p.matchEnts = pp.matchEnts
			p.matchSats = pp.matchSats
		} else {
			p.docs = append(make([]int32, 0, n), newDocs...)
			p.matchOff = append(make([]int32, 0, n+1), 0)
		}
		for _, d := range newDocs {
			rec := snap.Doc(d)
			for _, v := range rec.Entities {
				if sc.extStamp[v] == sc.gen {
					tf := rec.EntityFreq[v]
					p.matchEnts = append(p.matchEnts, v)
					p.matchSats = append(p.matchSats, float64(tf)/(float64(tf)+1))
				}
			}
			p.matchOff = append(p.matchOff, int32(len(p.matchEnts)))
		}
		p.scores = make([]float64, n)
		p.ont = make([]float64, n)
		p.pivots = make([]kg.NodeID, n)

		// Replay: cdro(c, d) = Spec(c) · max_v sat(v, d)·idfN(v) over the
		// matched entities, pivot by first strict maximum — the identical
		// arithmetic and comparison order of relevance.OntologyRel. The
		// connectivity factor is generation-independent: aliased for old
		// rows, computed (memoised engine-wide) and appended for new
		// ones. Whether cdro > 0 is itself generation-independent (Spec
		// and tf do not change, and idfN is always positive), so aliased
		// cdrc values cover exactly the rows a fresh build would walk.
		spec := e.g.Specificity(c)
		for j := 0; j < n; j++ {
			best := -1.0
			pivot := kg.InvalidNode
			for m := p.matchOff[j]; m < p.matchOff[j+1]; m++ {
				if w := p.matchSats[m] * entIDFN[p.matchEnts[m]]; w > best {
					best = w
					pivot = p.matchEnts[m]
				}
			}
			cdro := spec * best
			p.ont[j] = cdro
			p.pivots[j] = pivot
			if j >= nOld {
				cc := 0.0
				if cdro > 0 {
					cc = e.contextRel(s, c, p.docs[j])
				}
				p.cdrc = append(p.cdrc, cc)
			}
			if cdro > 0 {
				p.scores[j] = cdro * p.cdrc[j]
			}
		}

		nanos[worker] += time.Since(start).Nanoseconds()
	})
	var total int64
	for _, ns := range nanos {
		total += ns
	}
	return total
}

// ceilState guards the lazy ceiling materialisation of one plan
// generation: one sync.Once per concept, with the once-array itself
// allocated on the first query that needs a ceiling — an ingest-only
// workload never pays even the array's zeroing.
type ceilState struct {
	init  sync.Once
	onces []sync.Once
}

func (cs *ceilState) slots(n int) []sync.Once {
	cs.init.Do(func() { cs.onces = make([]sync.Once, n) })
	return cs.onces
}

// ensureCeilings materialises one concept plan's pruning blocks and
// ceiling visit order on first use at this generation. Ceilings are
// only read by the single-concept pruned scan, so computing them
// lazily — once per (concept, generation), under a sync.Once shared by
// every reader of the plan — moves their cost off the ingest commit
// path entirely while queries see byte-identical blocks: the fold
// below performs the exact floating-point operations, in the exact
// order, that the eager builder performed inside buildPlans. States
// that share plans verbatim (merge rebuilds, cache resets) share the
// ceiling state too, so a ceiling never recomputes across those swaps.
func (st *genState) ensureCeilings(c kg.NodeID, p *conceptPlan) {
	if len(p.docs) == 0 || c < 0 || int(c) >= len(st.plans) || st.ceil == nil {
		return
	}
	st.ceil.slots(len(st.plans))[c].Do(func() {
		e := st.e
		s := st.getScorer()
		defer st.putScorer(s)
		sc := e.planPool.Get().(*planScratch)
		defer e.planPool.Put(sc)
		snap := st.snap
		sc.ensure(0, 0, snap.NumBlocks())
		sc.bump()

		// Fold the persisted block-max tf tables over the extent into
		// per-block ubOnt maxima.
		ext, _ := s.Extent(c)
		for _, v := range ext {
			q := st.entIDFN[v]
			if q == 0 {
				continue
			}
			snap.EntityMaxTF(v, func(table []snapshot.BlockTF) {
				for _, bt := range table {
					sat := float64(bt.TF) / (float64(bt.TF) + 1)
					w := sat * q
					if sc.blockGen[bt.Block] != sc.gen {
						sc.blockGen[bt.Block] = sc.gen
						sc.blockAcc[bt.Block] = w
					} else if w > sc.blockAcc[bt.Block] {
						sc.blockAcc[bt.Block] = w
					}
				}
			})
		}
		spec := e.g.Specificity(c)
		cdrcCap := relevance.ConnToScore(relevance.ConnCap(len(ext), e.maxInstDeg, e.opts.Tau, e.opts.Beta))
		var blocks []planBlock
		lo := 0
		for lo < len(p.docs) {
			block := p.docs[lo] >> snapshot.BlockShift
			hi := lo + 1
			for hi < len(p.docs) && p.docs[hi]>>snapshot.BlockShift == block {
				hi++
			}
			ceil := 0.0
			if sc.blockGen[block] == sc.gen {
				ceil = spec * sc.blockAcc[block] * cdrcCap
			}
			// Defensive clamp: the bound is proven over the real numbers
			// and op-monotone for the ontology part; raising it to the
			// realised maximum makes the skip rule unconditionally sound
			// even if sampled-conn accumulation ever rounds above the cap.
			// The same walk collects the block's exact publication-time
			// bounds; doc times are immutable and blocks are global-ID
			// aligned, so bounds carried across merge swaps stay exact.
			minT, maxT := snap.Doc(p.docs[lo]).PublishedAt, snap.Doc(p.docs[lo]).PublishedAt
			for j := lo; j < hi; j++ {
				if p.scores[j] > ceil {
					ceil = p.scores[j]
				}
				if t := snap.Doc(p.docs[j]).PublishedAt; t < minT {
					minT = t
				} else if t > maxT {
					maxT = t
				}
			}
			blocks = append(blocks, planBlock{lo: int32(lo), hi: int32(hi), ceil: ceil, minT: minT, maxT: maxT})
			lo = hi
		}
		ceilOrder := make([]int32, len(blocks))
		for j := range ceilOrder {
			ceilOrder[j] = int32(j)
		}
		slices.SortFunc(ceilOrder, func(a, b int32) int {
			ba, bb := blocks[a], blocks[b]
			switch {
			case ba.ceil > bb.ceil:
				return -1
			case ba.ceil < bb.ceil:
				return 1
			case ba.lo < bb.lo:
				return -1
			default:
				return 1
			}
		})
		p.blocks = blocks
		p.ceilOrder = ceilOrder
	})
}

// docView is the document→attribute lookup the pruned scan filters on
// (source and publication time); satisfied by genState (and by test
// fakes).
type docView interface {
	docSource(doc int32) corpus.Source
	docTime(doc int32) int64
}

func (st *genState) docSource(doc int32) corpus.Source {
	return st.snap.Doc(doc).Source
}

func (st *genState) docTime(doc int32) int64 {
	return st.snap.Doc(doc).PublishedAt
}

// sourceAllowed reports membership in the (tiny) allowed-source list.
func sourceAllowed(allowed []corpus.Source, s corpus.Source) bool {
	for _, a := range allowed {
		if a == s {
			return true
		}
	}
	return false
}

// scanPlanPruned is the single-concept pruned roll-up scan: walk the
// plan's blocks in ceiling order, push scored documents keyed by their
// ID (order-independent tie-breaking identical to an exhaustive
// ascending scan), and skip the scoring of any block whose ceiling is
// STRICTLY below the current top-k threshold — at equality a block may
// still evict on the ID tie-break, so it must be scored. Returns the
// filter-passing match count (Total).
//
// Filters tighten rather than disable pruning:
//
//   - minScore > 0 is itself a skip threshold: a block with
//     ceil < minScore strictly can contain no document passing the
//     floor, so it is skipped entirely and contributes nothing to
//     Total (equality passes the floor, hence strict again);
//   - a time range skips blocks disjoint from it BEFORE any score
//     work, and those blocks contribute nothing to Total either: no
//     document in them can pass the per-document time predicate;
//   - a source filter (or a partially overlapping time range, or an
//     active per-period aggregation) only changes which skipped
//     documents COUNT: documents in threshold-skipped blocks still
//     match the query, so Total walks their attributes without
//     scoring anything.
func scanPlanPruned(ctx context.Context, p *conceptPlan, view docView,
	allowed []corpus.Source, minScore float64, tr *TimeRange, periods *periodAcc,
	coll *topk.Keyed[int32]) (int, error) {
	total := 0
	for _, bi := range p.ceilOrder {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		b := p.blocks[bi]
		if tr != nil && (b.maxT < tr.Min || b.minT > tr.Max) {
			continue
		}
		if minScore > 0 && b.ceil < minScore {
			continue
		}
		if th, full := coll.Threshold(); full && b.ceil < th {
			// Cannot change the retained set; count the matches only.
			if minScore > 0 {
				// The floor needs per-document scores to decide Total, and
				// ceil ≥ minScore here, so fall through to scoring below.
			} else {
				// The whole block counts at once only when no per-document
				// attribute matters: no source filter, no aggregation, and
				// the block entirely inside the time range (bounds are
				// inclusive and exact).
				if allowed == nil && periods == nil && (tr == nil || (tr.Min <= b.minT && b.maxT <= tr.Max)) {
					total += int(b.hi - b.lo)
				} else {
					for j := b.lo; j < b.hi; j++ {
						d := p.docs[j]
						if allowed != nil && !sourceAllowed(allowed, view.docSource(d)) {
							continue
						}
						if tr != nil || periods != nil {
							t := view.docTime(d)
							if tr != nil && !tr.contains(t) {
								continue
							}
							total++
							if periods != nil {
								periods.add(t)
							}
							continue
						}
						total++
					}
				}
				continue
			}
		}
		for j := b.lo; j < b.hi; j++ {
			d := p.docs[j]
			if allowed != nil && !sourceAllowed(allowed, view.docSource(d)) {
				continue
			}
			var t int64
			if tr != nil || periods != nil {
				t = view.docTime(d)
				if tr != nil && !tr.contains(t) {
					continue
				}
			}
			rel := p.scores[j]
			if minScore > 0 && rel < minScore {
				continue
			}
			total++
			if periods != nil {
				periods.add(t)
			}
			coll.Push(d, int64(d), rel)
		}
	}
	return total, nil
}

// scanMergedPlans is the multi-concept roll-up scan: a leapfrog
// intersection of the plans' sorted document lists, summing the
// per-concept scores at the aligned cursors. cursors must be len(plans)
// zeros; ctx is observed every ctxStride candidate alignments. No block
// pruning here: per-concept ceilings would have to be summed across
// blocks that intersect only partially, and multi-concept queries are
// both rare and already reduced to the (small) intersection — the
// leapfrog is the win. Tie-breaking matches an ascending exhaustive
// scan because intersections emit documents in ascending ID order and
// the collector keys by document ID.
func scanMergedPlans(ctx context.Context, plans []*conceptPlan, cursors []int, view docView,
	allowed []corpus.Source, minScore float64, tr *TimeRange, periods *periodAcc,
	coll *topk.Keyed[int32]) (int, error) {
	total := 0
	steps := 0
	p0 := plans[0]
outer:
	for cursors[0] < len(p0.docs) {
		if steps%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		steps++
		d := p0.docs[cursors[0]]
		for i := 1; i < len(plans); i++ {
			docs := plans[i].docs
			j := cursors[i]
			for j < len(docs) && docs[j] < d {
				j++
			}
			cursors[i] = j
			if j == len(docs) {
				break outer
			}
			if docs[j] > d {
				j0 := cursors[0]
				for j0 < len(p0.docs) && p0.docs[j0] < docs[j] {
					j0++
				}
				cursors[0] = j0
				continue outer
			}
		}
		// d is in every plan at the current cursors.
		if allowed == nil || sourceAllowed(allowed, view.docSource(d)) {
			var t int64
			pass := true
			if tr != nil || periods != nil {
				t = view.docTime(d)
				pass = tr == nil || tr.contains(t)
			}
			if pass {
				rel := 0.0
				for i, p := range plans {
					rel += p.scores[cursors[i]]
				}
				if !(minScore > 0 && rel < minScore) {
					total++
					if periods != nil {
						periods.add(t)
					}
					coll.Push(d, int64(d), rel)
				}
			}
		}
		cursors[0]++
	}
	return total, nil
}
