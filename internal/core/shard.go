package core

import (
	"context"
	"errors"
	"fmt"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/snapshot"
	"ncexplorer/internal/textindex"
)

// Sharded serving: one engine holds one shard of a federated corpus.
//
// The partitioning unit is the segment, and document IDs stay GLOBAL:
// shard s of n owns a subset of the corpus's segments, every document
// keeps the ID a monolithic build would have assigned, and the ID
// space seen by one shard simply has gaps where other shards' segments
// live. What a shard cannot compute locally is the corpus-global term
// statistics behind IDF — so peers exchange ShardStats (document
// count, token mass, per-term document frequencies), which fold into
// the shard's merged text view (textindex.RemoteStats). DF and N are
// plain sums over disjoint document sets, so a shard's every score is
// bit-identical to the monolithic engine's; a scatter-gather router
// can therefore merge per-shard answers exactly (see the facade's
// shard merge helpers and internal/cluster).
//
// Generations stay globally numbered too: the published generation is
// localGen (1 for the seed build, +1 per locally ingested batch) plus
// the remote batch count, so after B total batches every shard — and
// the monolithic reference — reports generation 1+B. SetRemoteStats
// republishes the state at the new generation whenever peers advance.

// errNotSharded marks remote-stats calls on a monolithic engine.
var errNotSharded = errors.New("core: SetRemoteStats on a non-sharded engine")

// ShardStats is the term-statistics summary one shard publishes to its
// peers: everything another shard needs to make its local IDF
// arithmetic corpus-global.
type ShardStats struct {
	// Docs is the number of documents the summarised shard(s) hold.
	Docs int `json:"docs"`
	// TotalLen is their summed token length.
	TotalLen int64 `json:"total_len"`
	// Batches counts the batches ingested there after the seed build.
	Batches uint64 `json:"batches"`
	// DF maps each term to its document frequency among those documents.
	DF map[string]int `json:"df"`
}

// add folds another shard's statistics into s.
func (s *ShardStats) add(o ShardStats) {
	s.Docs += o.Docs
	s.TotalLen += o.TotalLen
	s.Batches += o.Batches
	if s.DF == nil {
		s.DF = make(map[string]int, len(o.DF))
	}
	for term, df := range o.DF {
		s.DF[term] += df
	}
}

// textStats renders the remote summary for the text index layer.
func (s *ShardStats) textStats() *textindex.RemoteStats {
	return &textindex.RemoteStats{Docs: s.Docs, TotalLen: s.TotalLen, DF: s.DF}
}

// segmentStats summarises one segment's term statistics, using the
// same per-part reads textindex.Merged sums — so remote stats built
// from these are bit-identical to holding the segments locally.
func segmentStats(seg *snapshot.Segment) ShardStats {
	out := ShardStats{
		Docs:     seg.Text.NumDocs(),
		TotalLen: seg.Text.TotalLen(),
		DF:       make(map[string]int),
	}
	for _, term := range seg.Text.Terms() {
		out.DF[term] += seg.Text.DF(term)
	}
	return out
}

// LocalStats summarises the documents this engine holds, for peers to
// fold in via SetRemoteStats. Batches excludes the seed build: the
// seed is generation 1 on every shard, not a batch.
func (e *Engine) LocalStats() ShardStats {
	st := e.state()
	out := ShardStats{DF: make(map[string]int)}
	if st == nil {
		return out
	}
	if lg := e.localGen.Load(); lg > 0 {
		out.Batches = lg - 1
	}
	for _, seg := range st.snap.Segments {
		ss := segmentStats(seg)
		out.Docs += ss.Docs
		out.TotalLen += ss.TotalLen
		for term, df := range ss.DF {
			out.DF[term] += df
		}
	}
	return out
}

// ShardInfo reports the engine's cluster position: its shard index,
// the shard count, and whether it is sharded at all.
func (e *Engine) ShardInfo() (index, count int, sharded bool) {
	return e.shardIndex, e.shardCount, e.remote.Load() != nil
}

// RemoteStatsSnapshot returns the remote statistics currently folded
// in (zero value for a monolithic engine).
func (e *Engine) RemoteStatsSnapshot() ShardStats {
	if rs := e.remote.Load(); rs != nil {
		return *rs
	}
	return ShardStats{}
}

// SetRemoteStats replaces the peers' folded-in term statistics and
// republishes the snapshot at the new global generation. The segments
// are untouched, so the rebuild reuses every plan skeleton and every
// memoised connectivity factor — only the IDF-dependent arrays replay.
// The swap bumps the cache epoch (scores changed) and checkpoints, so
// a replica shipping this shard's store observes the generation
// advance even when no local segment changed. Unchanged stats are a
// no-op.
func (e *Engine) SetRemoteStats(rs ShardStats) error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	cur := e.state()
	if cur == nil {
		return errNotIndexed
	}
	old := e.remote.Load()
	if old == nil {
		return errNotSharded
	}
	if old.Docs == rs.Docs && old.TotalLen == rs.TotalLen && old.Batches == rs.Batches {
		return nil
	}
	e.remote.Store(&rs)
	st, _ := e.buildState(e.localGen.Load()+rs.Batches, cur.snap.Segments, cur)
	e.st.Store(st)
	e.epoch.Add(1)
	e.checkpointSyncLocked(st)
	return nil
}

// IndexCorpusSharded is IndexCorpus for shard `shard` of `count`: it
// runs the full pipeline over the corpus, keeps the contiguous slice
// [shard·n/count, (shard+1)·n/count) as this engine's seed segment,
// and folds the other slices' term statistics into the remote summary.
// Every slice is segmented exactly as its owning shard segments it, so
// the statistics exchanged here equal the ones peers would publish —
// no network round-trip is needed to boot a byte-identical shard from
// a shared corpus. May be called once per engine, like IndexCorpus.
func (e *Engine) IndexCorpusSharded(c *corpus.Corpus, shard, count int) IndexStats {
	if count < 1 || shard < 0 || shard >= count {
		panic(fmt.Sprintf("core: invalid shard %d of %d", shard, count))
	}
	if e.st.Load() != nil {
		panic("core: IndexCorpus called twice")
	}
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.shardIndex, e.shardCount = shard, count
	articles := append([]corpus.Document(nil), c.Docs...)
	n := len(articles)
	var ownSeg *snapshot.Segment
	remote := ShardStats{DF: make(map[string]int)}
	for s := 0; s < count; s++ {
		lo, hi := s*n/count, (s+1)*n/count
		seg, perSource, linkNanos, err := e.buildSegment(context.Background(), articles[lo:hi], int32(lo))
		if err != nil {
			panic("core: segment build failed without a cancellable context: " + err.Error())
		}
		if s == shard {
			ownSeg = seg
			e.stats = IndexStats{Docs: hi - lo, PerSource: perSource, LinkNanos: linkNanos}
		} else {
			remote.add(segmentStats(seg))
		}
	}
	e.remote.Store(&remote)
	st, scoreNanos := e.buildState(1, []*snapshot.Segment{ownSeg}, nil)
	e.stats.ScoreNanos = scoreNanos
	e.localGen.Store(1)
	e.st.Store(st)
	e.epoch.Add(1)
	return e.stats
}
