package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/segio"
	"ncexplorer/internal/snapshot"
)

// Durable snapshot persistence. SaveSnapshot serializes the current
// snapshot's segments (plus the connectivity memo and a manifest) to a
// directory; OpenSnapshot loads them back into a freshly constructed
// engine. The load path skips the NLP/linking pipeline entirely — it
// decodes the immutable per-document indexing products and goes
// straight to the swap-time rescore every ingest already performs,
// with the persisted conn memo pre-filled so no random walk re-runs.
// Because the rescore is the same code path a from-scratch build ends
// with, and every sampled value is content-addressed by (concept,
// document) under the engine seed, a loaded engine answers every query
// byte-identically to the engine that saved it.
//
// Crash safety: segment and conn files are immutable and content-named;
// each is written via temp-file + fsync + atomic rename, and the
// MANIFEST — the only mutable object — is replaced the same way, last.
// A crash at any point leaves the previous manifest (and every file it
// references) fully intact; orphaned files from the interrupted save
// are collected by the next successful one.

// errNotPersisted marks persistence calls in the wrong lifecycle state.
var (
	errSaveBeforeIndex = errors.New("core: SaveSnapshot called before IndexCorpus")
	errOpenAfterIndex  = errors.New("core: OpenSnapshot called on an already-indexed engine")
)

// PersistCounters aggregates persistence activity for /statsz.
type PersistCounters struct {
	// Saves counts successful SaveSnapshot calls; Opens successful
	// OpenSnapshot calls; Checkpoints successful per-ingest (and
	// per-merge) incremental manifest updates.
	Saves       int64 `json:"saves"`
	Opens       int64 `json:"opens"`
	Checkpoints int64 `json:"checkpoints"`
	// SegmentsWritten / SegmentsReused split segment persistence into
	// files actually written vs files already on disk from an earlier
	// save (segments are immutable and content-named, so an unchanged
	// segment is never rewritten).
	SegmentsWritten int64 `json:"segments_written"`
	SegmentsReused  int64 `json:"segments_reused"`
	// BytesWritten / BytesRead total the file bytes moved by saves,
	// checkpoints, and opens.
	BytesWritten int64 `json:"bytes_written"`
	BytesRead    int64 `json:"bytes_read"`
	// CheckpointErrors counts failed checkpoint attempts. A checkpoint
	// failure never fails the ingest that triggered it — the in-memory
	// swap already happened — it means the data directory lags until
	// the next checkpoint or save succeeds.
	CheckpointErrors int64 `json:"checkpoint_errors"`
}

// Indirections over segio's write functions: tests inject write
// failures here to prove that a failed save leaves the previous
// manifest (and everything it references) intact.
var (
	// Artifact files defer the directory fsync: writeStore places every
	// segment/conn/watch file first, pays ONE syncSegioDir for all their
	// renames, and only then swaps the manifest — same crash ordering
	// (no manifest ever references a non-durable name), one directory
	// fsync per store instead of one per file.
	writeSegioFile     = segio.WriteFileDeferSync
	syncSegioDir       = segio.SyncDir
	writeSegioManifest = segio.WriteManifest
)

// persistState is the engine's persistence bookkeeping. The
// commit-side fields (checkpoint dir, world meta, watch encoder) are
// guarded by ingestMu; the writer-side fields (segFiles, connFile,
// connEntries, connChecked) are guarded by gc.writeMu, because the
// group-commit writer touches them off the commit path.
type persistState struct {
	saves, opens, checkpoints       atomic.Int64
	segmentsWritten, segmentsReused atomic.Int64
	bytesWritten, bytesRead         atomic.Int64
	checkpointErrors                atomic.Int64
	checkpointDir                   string
	world                           map[string]string
	// segFiles caches the content-addressed file name of segments
	// already encoded, so a checkpoint after an ingest re-encodes only
	// the new segment. Pruned to the live snapshot on every save.
	segFiles map[*snapshot.Segment]segio.SegmentRef
	// segDelta caches, for a merged segment that has never been encoded
	// into its own file, the refs of the durable files — its merge
	// parents', resolved through gc.lineage — that jointly cover its
	// documents. Checkpoints substitute these refs for the merged
	// segment instead of re-encoding O(corpus) bytes after every merge;
	// only SaveSnapshot compacts. Pruned to the live snapshot alongside
	// segFiles.
	segDelta map[*snapshot.Segment][]segio.SegmentRef
	// verified caches dir-qualified file names this process has already
	// confirmed (or written) on disk, so per-checkpoint existence checks
	// cost one stat per file per process instead of one per file per
	// checkpoint — without it the writer's stat count grows with every
	// batch since the last compaction. The engine itself never deletes a
	// verified file while it is referenced (checkpoint GC is
	// manifest-driven); external deletion is caught at open time by the
	// manifest's CRCs.
	verified map[string]bool
	// lastWatchFile is the content-addressed standing-query file the
	// newest manifest references. Checkpoints skip the directory-wide
	// garbage scan (a delta checkpoint never unreferences a file), so
	// a superseded watch file — the one exception — is removed here.
	lastWatchFile string
	// connFile/connEntries remember the last conn-memo file this engine
	// wrote or loaded, so checkpoints can keep referencing it without
	// re-reading the manifest on every ingest. connChecked marks the
	// one-time fallback read of a pre-existing manifest as done.
	connFile    string
	connEntries int
	connChecked bool
	// watchEnc, when set, renders the standing-query state (watchlists,
	// alert rings, delivery cursors) for manifest participation. It
	// returns nil when there is nothing to persist.
	watchEnc func() []byte
}

// PersistCounters returns the engine's persistence counters.
func (e *Engine) PersistCounters() PersistCounters {
	return PersistCounters{
		Saves:            e.persist.saves.Load(),
		Opens:            e.persist.opens.Load(),
		Checkpoints:      e.persist.checkpoints.Load(),
		SegmentsWritten:  e.persist.segmentsWritten.Load(),
		SegmentsReused:   e.persist.segmentsReused.Load(),
		BytesWritten:     e.persist.bytesWritten.Load(),
		BytesRead:        e.persist.bytesRead.Load(),
		CheckpointErrors: e.persist.checkpointErrors.Load(),
	}
}

// SetCheckpointDir enables (dir != "") or disables (dir == "")
// per-commit checkpointing: after every ingested batch and every
// background merge, the engine writes the affected segment files and
// atomically updates dir's manifest, so a crash loses at most the
// batches whose checkpoints had not drained — a -watch deployment
// restarts from its last durable segment instead of re-ingesting
// everything. The write itself runs in the group-commit writer (see
// groupcommit.go): Ingest returns a persist sequence and callers that
// need "durable before I respond" wait on it with WaitPersisted.
// world is carried into every manifest written (see SaveSnapshot).
func (e *Engine) SetCheckpointDir(dir string, world map[string]string) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.persist.checkpointDir = dir
	e.persist.world = world
	if dir == "" {
		// No writer will ever consume pending merge lineage; drop it so
		// it cannot pin folded segments.
		e.gc.clearLineage()
	}
}

// SaveSnapshot durably persists the current snapshot (segments, conn
// memo, manifest) into dir, which is created if needed. world is an
// opaque facade-level map stored in the manifest for reconstruction
// (e.g. the synthetic-world scale). Save excludes writers — a batch
// racing with Ingest lands either entirely before or entirely after
// the saved generation — and never blocks queries. On any error the
// directory's previous manifest, if one exists, is untouched.
func (e *Engine) SaveSnapshot(dir string, world map[string]string) error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if world != nil {
		e.persist.world = world
	}
	st := e.state()
	if st == nil {
		return errSaveBeforeIndex
	}
	// Drain the group-commit queue first (safe while holding ingestMu —
	// the writer never takes it): otherwise a stale queued checkpoint
	// could land after the save and swap an older manifest over it.
	e.drainPersist()
	var watch []byte
	hasWatch := e.persist.watchEnc != nil
	if hasWatch {
		watch = e.persist.watchEnc()
	}
	e.gc.writeMu.Lock()
	err := e.writeStore(dir, st, true, e.persist.world, watch, hasWatch)
	e.gc.writeMu.Unlock()
	if err != nil {
		return err
	}
	e.persist.saves.Add(1)
	return nil
}

// writeStore writes segments (+ conn memo when writeConn) and swaps
// the manifest. world and watch are the manifest inputs captured at
// commit time — the writer must not read them from the engine, whose
// commit-side fields may have moved on. gc.writeMu must be held.
func (e *Engine) writeStore(dir string, st *genState, writeConn bool, world map[string]string, watch []byte, hasWatch bool) error {
	if err := ensureDir(dir); err != nil {
		return err
	}
	segs := st.snap.Segments
	if e.persist.segFiles == nil {
		e.persist.segFiles = make(map[*snapshot.Segment]segio.SegmentRef)
	}
	if e.persist.segDelta == nil {
		e.persist.segDelta = make(map[*snapshot.Segment][]segio.SegmentRef)
	}
	refs := make([]segio.SegmentRef, 0, len(segs))
	wrote := false // any deferred-sync file placed; one SyncDir before the manifest
	type pendingFile struct {
		name string
		data []byte
	}
	var pend []pendingFile
	for _, seg := range segs {
		ref, ok := e.persist.segFiles[seg]
		var data []byte
		if !ok {
			// Delta checkpoint: a merged segment whose folded inputs are
			// already durable is covered by referencing their files — the
			// manifest's layout lags the in-memory segmentation, but the
			// documents and generation it describes are identical, and no
			// O(corpus) re-encode rides the writer. Saves (writeConn)
			// compact to the live layout instead.
			if !writeConn {
				if drefs, dok := e.resolveDeltaRefs(seg, dir); dok {
					e.persist.segDelta[seg] = drefs
					e.gc.purgeLineage(seg)
					e.persist.segmentsReused.Add(int64(len(drefs)))
					refs = append(refs, drefs...)
					continue
				}
			}
			data = segio.EncodeSegment(seg)
			ref = segio.SegmentRef{
				Base:    seg.Base,
				Docs:    seg.Len(),
				CRC:     crc32.ChecksumIEEE(data),
				MinTime: seg.MinTime,
				MaxTime: seg.MaxTime,
			}
			ref.File = segio.SegmentFileName(ref.Base, ref.Docs, ref.CRC)
			e.persist.segFiles[seg] = ref
			delete(e.persist.segDelta, seg)
			e.gc.purgeLineage(seg)
		}
		if e.knownFile(dir, ref.File) {
			e.persist.segmentsReused.Add(1)
		} else {
			if data == nil {
				// Known segment but absent file (first save into a new
				// dir, or external deletion): re-encode.
				data = segio.EncodeSegment(seg)
			}
			pend = append(pend, pendingFile{name: ref.File, data: data})
		}
		refs = append(refs, ref)
	}
	// Place the new segment files concurrently: each write fsyncs its
	// own file, and overlapping the fsyncs lets the filesystem fold
	// them into one journal commit instead of one per file — on a
	// single-CPU host a serial fsync also stalls every other goroutine
	// for its full duration, so the overlap is the difference between
	// paying the sync cost once and paying it per segment. Write order
	// within the group is free: nothing references a name until the
	// manifest below, which follows the group's SyncDir.
	if len(pend) > 0 {
		errs := make([]error, len(pend))
		var wg sync.WaitGroup
		for i := range pend {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = writeSegioFile(dir, pend[i].name, pend[i].data)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("core: writing segment %s: %w", pend[i].name, err)
			}
		}
		for _, p := range pend {
			e.markFile(dir, p.name)
			e.persist.segmentsWritten.Add(1)
			e.persist.bytesWritten.Add(int64(len(p.data)))
		}
		wrote = true
	}
	// Prune the name caches to live segments so merge churn cannot grow
	// them without bound.
	for seg := range e.persist.segFiles {
		live := false
		for _, s := range segs {
			if s == seg {
				live = true
				break
			}
		}
		if !live {
			delete(e.persist.segFiles, seg)
		}
	}
	for seg := range e.persist.segDelta {
		live := false
		for _, s := range segs {
			if s == seg {
				live = true
				break
			}
		}
		if !live {
			delete(e.persist.segDelta, seg)
		}
	}

	m := &segio.Manifest{
		Generation: st.snap.Generation,
		NumDocs:    st.snap.NumDocs(),
		Segments:   refs,
		Engine:     e.engineMeta(),
		World:      world,
		Stats:      statsMeta(e.stats),
	}
	// A shard persists its cluster position and the remote term
	// statistics its global scores were computed under, so a warm reopen
	// (or a replica opening shipped segments) reproduces bit-identical
	// answers without talking to any peer first.
	if rs := e.remote.Load(); rs != nil {
		m.Shard = &segio.ShardMeta{
			Index:          e.shardIndex,
			Count:          e.shardCount,
			RemoteDocs:     rs.Docs,
			RemoteTotalLen: rs.TotalLen,
			RemoteDF:       rs.DF,
			RemoteBatches:  rs.Batches,
		}
	}
	if writeConn {
		data, entries := e.encodeConnMemo()
		name := fmt.Sprintf("conn-%08x%s", crc32.ChecksumIEEE(data), segio.ConnExt)
		if !e.knownFile(dir, name) {
			if err := writeSegioFile(dir, name, data); err != nil {
				return fmt.Errorf("core: writing conn memo: %w", err)
			}
			wrote = true
			e.markFile(dir, name)
			e.persist.bytesWritten.Add(int64(len(data)))
		}
		m.ConnFile, m.ConnEntries = name, entries
		e.persist.connFile, e.persist.connEntries, e.persist.connChecked = name, entries, true
	} else {
		// Checkpoints keep the last fully saved conn file: its entries
		// are content-addressed and never go stale. The reference is
		// cached from the save/open that produced it; the manifest is
		// read at most once, for a store inherited from a previous
		// process that this engine has neither saved nor opened — and
		// only adopted when that manifest's content-determining engine
		// options match this engine's, since conn values computed under
		// a different graph/seed/sampling would silently poison a later
		// open's prefill.
		if !e.persist.connChecked {
			if prev, err := segio.ReadManifest(dir); err == nil && compatibleEngineMeta(e.engineMeta(), prev.Engine) {
				e.persist.connFile, e.persist.connEntries = prev.ConnFile, prev.ConnEntries
			}
			e.persist.connChecked = true
		}
		if e.persist.connFile != "" && e.knownFile(dir, e.persist.connFile) {
			m.ConnFile, m.ConnEntries = e.persist.connFile, e.persist.connEntries
		}
	}
	// Standing-query state participates in the same atomic manifest
	// swap: the content-named file is written first, the manifest points
	// at it, and stale generations are garbage-collected after the swap.
	// Unlike segments the state is mutable, but each version is written
	// under its content hash, so an unchanged registry rewrites nothing
	// and a crash mid-save leaves the previous manifest's file intact.
	// The bytes were rendered at commit time (see persistJob.watch), so
	// the manifest pairs each batch with exactly the alerts it fired.
	if hasWatch {
		if data := watch; len(data) > 0 {
			// Content-address with FNV-1a, not CRC32: the payload ends with
			// its own CRC32 trailer, and the CRC of data-plus-trailer is the
			// fixed CRC-32 residue — every version would share one name and
			// the fileExists fast path would silently never persist updates.
			h := fnv.New32a()
			h.Write(data)
			name := fmt.Sprintf("watch-%08x%s", h.Sum32(), segio.WatchExt)
			if !e.knownFile(dir, name) {
				if err := writeSegioFile(dir, name, data); err != nil {
					return fmt.Errorf("core: writing watch state: %w", err)
				}
				wrote = true
				e.markFile(dir, name)
				e.persist.bytesWritten.Add(int64(len(data)))
			}
			m.WatchFile = name
		}
	}
	if wrote {
		// One directory fsync covers every artifact rename above; the
		// manifest below must not point at names that could vanish.
		if err := syncSegioDir(dir); err != nil {
			return fmt.Errorf("core: syncing store directory: %w", err)
		}
	}
	if err := writeSegioManifest(dir, m); err != nil {
		return fmt.Errorf("core: writing manifest: %w", err)
	}
	if writeConn {
		// Saves compact: the manifest may have stopped referencing delta
		// leaf files, folded segments, or old conn/watch versions —
		// sweep the directory against it.
		for _, name := range segio.CollectGarbage(dir, m) {
			e.forgetFile(dir, name)
		}
	} else if old := e.persist.lastWatchFile; old != "" && old != m.WatchFile {
		// A delta checkpoint never unreferences a segment or conn file,
		// so the directory-wide garbage scan is skipped on the hot path;
		// the one file a checkpoint can supersede is the previous
		// standing-query version, removed point-wise after the swap.
		os.Remove(filepath.Join(dir, old))
		e.forgetFile(dir, old)
	}
	e.persist.lastWatchFile = m.WatchFile
	return nil
}

// resolveDeltaRefs returns on-disk refs that already cover seg's
// documents without encoding it: the segment's own file, a previously
// resolved delta, or — through merge lineage, recursively — the
// durable files of the segments a background merge folded into it.
// Parents appear in base order, so the flattened refs preserve the
// global document order the manifest promises. ok is false when
// nothing covers seg or any covering file is missing from dir (a
// parent's checkpoint was coalesced away, the directory changed,
// external deletion): the caller then encodes seg in full.
// gc.writeMu held.
func (e *Engine) resolveDeltaRefs(seg *snapshot.Segment, dir string) ([]segio.SegmentRef, bool) {
	if ref, ok := e.persist.segFiles[seg]; ok {
		if !e.knownFile(dir, ref.File) {
			return nil, false
		}
		return []segio.SegmentRef{ref}, true
	}
	if drefs, ok := e.persist.segDelta[seg]; ok {
		for _, ref := range drefs {
			if !e.knownFile(dir, ref.File) {
				return nil, false
			}
		}
		return drefs, true
	}
	var out []segio.SegmentRef
	for _, p := range e.gc.parentsOf(seg) {
		drefs, ok := e.resolveDeltaRefs(p, dir)
		if !ok {
			return nil, false
		}
		out = append(out, drefs...)
	}
	if out == nil {
		return nil, false
	}
	return out, true
}

// SetWatchEncoder registers the standing-query state encoder consulted
// by every save and checkpoint. Pass nil to clear.
func (e *Engine) SetWatchEncoder(fn func() []byte) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	e.persist.watchEnc = fn
}

// Checkpoint persists the current snapshot (and standing-query state)
// to the configured checkpoint directory before returning, outside the
// ingest path — watchlist registration and removal use it so a
// restart between ingests does not forget them. A no-op without a
// checkpoint directory or before IndexCorpus; failures are counted in
// CheckpointErrors exactly like per-ingest checkpoint failures.
func (e *Engine) Checkpoint() {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if st := e.state(); st != nil {
		e.checkpointSyncLocked(st)
	}
}

// encodeConnMemo dumps the engine-wide connectivity memo in canonical
// (key-sorted) order.
func (e *Engine) encodeConnMemo() ([]byte, int) {
	type kv struct {
		k uint64
		v float64
	}
	var entries []kv
	e.connMemo.Range(func(k uint64, v float64) {
		entries = append(entries, kv{k, v})
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
	keys := make([]uint64, len(entries))
	values := make([]float64, len(entries))
	for i, ent := range entries {
		keys[i] = ent.k
		values[i] = ent.v
	}
	return segio.EncodeConn(keys, values), len(entries)
}

// OpenSnapshot loads a persisted snapshot into a freshly constructed
// engine (NewEngine with the same graph and options as the saver —
// the manifest's EngineMeta is cross-checked). It decodes every
// referenced segment, pre-fills the connectivity memo from the saved
// cache, and derives the generation state through the same rescore an
// ingest performs, so the opened engine is indistinguishable from the
// one that saved: same generation, same scores, same answers.
func (e *Engine) OpenSnapshot(dir string, m *segio.Manifest) error {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	if e.st.Load() != nil {
		return errOpenAfterIndex
	}
	if m == nil {
		var err error
		if m, err = segio.ReadManifest(dir); err != nil {
			return err
		}
	}
	if got, want := e.engineMeta(), m.Engine; !compatibleEngineMeta(got, want) {
		return fmt.Errorf("core: engine options %+v do not match saved snapshot %+v", got, want)
	}
	segs := make([]*snapshot.Segment, 0, len(m.Segments))
	for _, ref := range m.Segments {
		seg, n, err := segio.ReadSegmentFile(dir, ref)
		if err != nil {
			return err
		}
		if err := validateSegmentNodes(seg, e.g.NumNodes()); err != nil {
			return fmt.Errorf("segment file %s: %w", ref.File, err)
		}
		e.persist.bytesRead.Add(int64(n))
		segs = append(segs, seg)
	}
	if m.ConnFile != "" {
		data, err := segio.ReadConnFile(dir, m.ConnFile)
		if err != nil {
			return err
		}
		e.persist.bytesRead.Add(int64(len(data)))
		// Stage the entries and install them only after the whole file
		// decodes: a file that fails validation partway through must not
		// leave stray values in the engine-wide memo (the engine stays
		// reusable after a failed open, so a later successful open would
		// silently serve them).
		type connEntry struct {
			k uint64
			v float64
		}
		// Capacity from the validated file size, never from the
		// manifest's (attacker- or rot-controllable) ConnEntries field:
		// a hostile count must not panic make or balloon the allocation.
		staged := make([]connEntry, 0, len(data)/16)
		if err := segio.DecodeConn(data, func(k uint64, v float64) {
			staged = append(staged, connEntry{k, v})
		}); err != nil {
			return err
		}
		for _, ent := range staged {
			e.connMemo.Store(ent.k, ent.v)
		}
	}
	// Remember the loaded segments' file identities so a later save
	// into the same directory rewrites nothing. (writeMu: these are
	// writer-side fields; no writer can be running before the first
	// index, but the lock keeps the invariant uniform.)
	e.gc.writeMu.Lock()
	if e.persist.segFiles == nil {
		e.persist.segFiles = make(map[*snapshot.Segment]segio.SegmentRef)
	}
	for i, seg := range segs {
		e.persist.segFiles[seg] = m.Segments[i]
	}
	e.persist.connFile, e.persist.connEntries, e.persist.connChecked = m.ConnFile, m.ConnEntries, true
	e.gc.writeMu.Unlock()

	e.stats = statsFromMeta(m.Stats)
	if m.Shard != nil {
		e.shardIndex, e.shardCount = m.Shard.Index, m.Shard.Count
		e.remote.Store(&ShardStats{
			Docs:     m.Shard.RemoteDocs,
			TotalLen: m.Shard.RemoteTotalLen,
			DF:       m.Shard.RemoteDF,
			Batches:  m.Shard.RemoteBatches,
		})
		e.localGen.Store(m.Generation - m.Shard.RemoteBatches)
	} else {
		e.localGen.Store(m.Generation)
	}
	st, _ := e.buildState(m.Generation, segs, nil)
	e.st.Store(st)
	e.epoch.Add(1)
	e.persist.opens.Add(1)
	return nil
}

// validateSegmentNodes checks every node ID the rescore path will feed
// into graph lookups against the graph's node count. The codec can only
// validate IDs structurally (non-negative, sorted); whether they exist
// is a property of THIS graph — a snapshot saved against a different
// world (or a world generator that changed shape under the same seed)
// must surface as typed corruption, not as an index-out-of-range panic
// inside the scorer.
func validateSegmentNodes(seg *snapshot.Segment, numNodes int) error {
	bad := func(kind string, id kg.NodeID) error {
		return fmt.Errorf("%w: %s node %d outside graph (%d nodes)", segio.ErrCorrupt, kind, id, numNodes)
	}
	for i := range seg.Docs {
		d := &seg.Docs[i]
		for _, v := range d.Entities {
			if int(v) >= numNodes {
				return bad("entity", v)
			}
		}
		for v := range d.EntityFreq {
			if int(v) >= numNodes {
				return bad("entity-frequency", v)
			}
		}
		for _, c := range d.Candidates {
			if int(c) >= numNodes {
				return bad("candidate", c)
			}
		}
	}
	for v := range seg.EntDocs {
		if int(v) >= numNodes {
			return bad("posting", v)
		}
	}
	return nil
}

// compatibleEngineMeta reports whether two engine-option sets agree on
// everything content-determining. MaxSegments is excluded: it is a
// storage policy, and callers may legitimately reopen with a different
// merge bound.
func compatibleEngineMeta(a, b segio.EngineMeta) bool {
	a.MaxSegments = b.MaxSegments
	return a == b
}

// engineMeta renders the content-determining engine options.
func (e *Engine) engineMeta() segio.EngineMeta {
	return segio.EngineMeta{
		Tau:               e.opts.Tau,
		Beta:              e.opts.Beta,
		Samples:           e.opts.Samples,
		Seed:              e.opts.Seed,
		MaxConceptsPerDoc: e.opts.MaxConceptsPerDoc,
		AncestorLevels:    e.opts.AncestorLevels,
		Exact:             e.opts.Exact,
		MaxSegments:       e.opts.MaxSegments,
	}
}

func statsMeta(s IndexStats) segio.StatsMeta {
	out := segio.StatsMeta{Docs: s.Docs, LinkNanos: s.LinkNanos, ScoreNanos: s.ScoreNanos}
	if len(s.PerSource) > 0 {
		out.PerSource = make(map[string]segio.SourceStatsMeta, len(s.PerSource))
		for src, ss := range s.PerSource {
			out.PerSource[src.String()] = segio.SourceStatsMeta{
				Articles:       ss.Articles,
				TotalMentions:  ss.TotalMentions,
				LinkedMentions: ss.LinkedMentions,
			}
		}
	}
	return out
}

func statsFromMeta(m segio.StatsMeta) IndexStats {
	out := IndexStats{Docs: m.Docs, LinkNanos: m.LinkNanos, ScoreNanos: m.ScoreNanos}
	if len(m.PerSource) > 0 {
		out.PerSource = make(map[corpus.Source]corpus.SourceStats, len(m.PerSource))
		for name, ss := range m.PerSource {
			for _, src := range corpus.Sources {
				if src.String() == name {
					out.PerSource[src] = corpus.SourceStats{
						Source:         src,
						Articles:       ss.Articles,
						TotalMentions:  ss.TotalMentions,
						LinkedMentions: ss.LinkedMentions,
					}
				}
			}
		}
	}
	return out
}

// ensureDir creates the snapshot directory if it does not exist.
func ensureDir(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

// fileExists reports whether dir/name exists as a regular file.
func fileExists(dir, name string) bool {
	info, err := os.Stat(filepath.Join(dir, name))
	return err == nil && info.Mode().IsRegular()
}

// knownFile is fileExists behind the writer's verified cache: each
// dir-qualified name is stat'd at most once per process, then trusted
// — the writer never deletes a file a manifest still references, so a
// positive answer stays true for the engine's own lifetime. markFile
// records a name the writer just wrote without re-statting it.
// gc.writeMu held.
func (e *Engine) knownFile(dir, name string) bool {
	key := filepath.Join(dir, name)
	if e.persist.verified[key] {
		return true
	}
	if !fileExists(dir, name) {
		return false
	}
	e.markFile(dir, name)
	return true
}

func (e *Engine) markFile(dir, name string) {
	if e.persist.verified == nil {
		e.persist.verified = make(map[string]bool)
	}
	e.persist.verified[filepath.Join(dir, name)] = true
}

// forgetFile drops a name from the verified cache (the writer removed
// or garbage-collected it). gc.writeMu held.
func (e *Engine) forgetFile(dir, name string) {
	delete(e.persist.verified, filepath.Join(dir, name))
}
