package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kggen"
	"ncexplorer/internal/xrand"
)

// TestTimeFilteredMatchesPostFiltered is the temporal equivalence bar
// (ISSUE 10): every time-range-filtered page — at every page size,
// offset, source filter, score floor, window shape, and group-by — must
// be byte-identical to post-filtering the *unfiltered* exhaustive
// scorer's full listing, across randomized build→ingest→merge schedules
// and after a save/open round trip. The post-filter oracle is computed
// in this file with its own calendar arithmetic, so neither the pruned
// scan nor the mirrored exhaustive filter can mask a shared bug.
// Runs under -race in CI.
func TestTimeFilteredMatchesPostFiltered(t *testing.T) {
	for _, seed := range []uint64{5, 23, 77} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := xrand.New(seed)
			kcfg := kggen.Tiny()
			kcfg.Seed = seed
			kcfg.ExtraConcepts = 40 + r.Intn(60)
			kcfg.ExtraInstances = 200 + r.Intn(300)
			kcfg.AvgDegree = float64(4 + r.Intn(5))
			g, meta := kggen.MustGenerate(kcfg)
			ccfg := corpus.Tiny()
			ccfg.Seed = seed*2 + 1
			ccfg.Docs = map[corpus.Source]int{
				corpus.SeekingAlpha: 15 + r.Intn(15),
				corpus.NYT:          8 + r.Intn(10),
				corpus.Reuters:      30 + r.Intn(30),
			}
			c := corpus.MustGenerate(g, meta, ccfg)
			// MaxSegments 2 forces background merges mid-schedule, so the
			// sweep sees multi-segment and freshly-merged block bounds.
			e := NewEngine(g, Options{Seed: seed, Samples: 10, MaxSegments: 2})
			e.IndexCorpus(c)
			compareTimeFiltered(t, e, meta)
			for b := 0; b < 3; b++ {
				n := 4 + r.Intn(8)
				batch, err := corpus.GenerateBatch(g, meta, ccfg, 9300+seed*10+uint64(b), n)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.Ingest(context.Background(), batch); err != nil {
					t.Fatal(err)
				}
				e.WaitMerges()
				compareTimeFiltered(t, e, meta)
			}

			// The filter must survive persistence: segment time bounds are
			// recomputed by the decoder, so a reopened engine prunes from
			// derived — not trusted — metadata.
			dir := t.TempDir()
			if err := e.SaveSnapshot(dir, nil); err != nil {
				t.Fatal(err)
			}
			loaded := NewEngine(g, Options{Seed: seed, Samples: 10, MaxSegments: 2})
			if err := loaded.OpenSnapshot(dir, nil); err != nil {
				t.Fatal(err)
			}
			compareTimeFiltered(t, loaded, meta)
		})
	}
}

// compareTimeFiltered sweeps the temporal option grid at the engine's
// current generation against the post-filter oracle.
func compareTimeFiltered(t *testing.T, e *Engine, meta *kggen.Meta) {
	t.Helper()
	ctx := context.Background()
	st := e.state()

	var queries []Query
	topics := meta.Topics
	if len(topics) > 3 {
		topics = topics[:3]
	}
	for _, topic := range topics {
		queries = append(queries,
			Query{topic.Concept},
			Query{topic.Concept, topic.GroupConcept},
		)
	}

	// Window shapes from the corpus's actual publication span: open
	// starts and ends, a mid-span half, a narrow slice, a single-instant
	// inclusive window on a real timestamp, and a window past every
	// document (the whole-snapshot pruning path).
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	var anyTime int64
	for d := int32(0); d < int32(st.snap.DocBound()); d++ {
		if !st.snap.HasDoc(d) {
			continue
		}
		ts := st.snap.Doc(d).PublishedAt
		anyTime = ts
		if ts < lo {
			lo = ts
		}
		if ts > hi {
			hi = ts
		}
	}
	if lo > hi {
		t.Fatal("no documents indexed")
	}
	span := hi - lo
	windows := []*TimeRange{
		{Min: math.MinInt64, Max: lo + span/2},
		{Min: lo + span/2, Max: math.MaxInt64},
		{Min: lo + span/4, Max: hi - span/4},
		{Min: hi - span/10, Max: hi},
		{Min: anyTime, Max: anyTime},
		{Min: hi + 1, Max: math.MaxInt64},
	}
	groups := []GroupBy{GroupNone, GroupDay, GroupWeek, GroupMonth}

	sourceSets := [][]corpus.Source{nil, {corpus.Reuters}}
	cell := 0
	for _, q := range queries {
		for _, k := range []int{1, 3, 10} {
			for _, offset := range []int{0, 2, 10000} {
				for _, sources := range sourceSets {
					for _, minScore := range []float64{0, 0.05} {
						// Rotate window and group-by through the grid:
						// every combination appears across the sweep
						// without multiplying its runtime by 24.
						tr := windows[cell%len(windows)]
						gb := groups[cell/len(windows)%len(groups)]
						cell++
						opts := RollUpOptions{
							K: k, Offset: offset, Sources: sources,
							MinScore: minScore, Time: tr, GroupBy: gb,
						}
						want, err := postFilteredPage(ctx, e, q, opts)
						if err != nil {
							t.Fatal(err)
						}
						got, err := e.RollUpPage(ctx, q, opts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("time-filtered page diverges from post-filter oracle (gen %d, q=%v, opts=%+v):\n got: %+v\nwant: %+v",
								e.Generation(), q, opts, got, want)
						}
						// Triangulate: the mirrored exhaustive filter must
						// agree with both.
						exh, err := e.rollUpPageExhaustive(ctx, q, opts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(exh, want) {
							t.Fatalf("exhaustive time filter diverges from post-filter oracle (gen %d, q=%v, opts=%+v):\n got: %+v\nwant: %+v",
								e.Generation(), q, opts, exh, want)
						}
					}
				}
			}
		}
	}
}

// postFilteredPage is the oracle: run the exhaustive scorer with no
// time filter and no grouping over the full listing (K covers every
// document), then drop out-of-window results, bucket the survivors
// with reference calendar arithmetic, and page what remains. Any
// divergence from the engine's filtered page means the pruning or the
// streamed aggregation changed semantics, not just performance.
func postFilteredPage(ctx context.Context, e *Engine, q Query, opts RollUpOptions) (RollUpPage, error) {
	st := e.state()
	full := opts
	full.Time = nil
	full.GroupBy = GroupNone
	full.K = st.snap.DocBound() + 16
	full.Offset = 0
	listing, err := e.rollUpPageExhaustive(ctx, q, full)
	if err != nil {
		return RollUpPage{}, err
	}
	out := RollUpPage{Generation: listing.Generation}
	var kept []DocResult
	counts := make(map[int64]int)
	for _, res := range listing.Results {
		ts := st.snap.Doc(int32(res.Doc)).PublishedAt
		if opts.Time != nil && (ts < opts.Time.Min || ts > opts.Time.Max) {
			continue
		}
		kept = append(kept, res)
		if opts.GroupBy != GroupNone {
			counts[refPeriodStart(opts.GroupBy, ts)]++
		}
	}
	out.Total = len(kept)
	if opts.GroupBy != GroupNone && len(counts) > 0 {
		starts := make([]int64, 0, len(counts))
		for s := range counts {
			starts = append(starts, s)
		}
		for i := 1; i < len(starts); i++ {
			for j := i; j > 0 && starts[j] < starts[j-1]; j-- {
				starts[j], starts[j-1] = starts[j-1], starts[j]
			}
		}
		for _, s := range starts {
			out.Periods = append(out.Periods, PeriodBucket{Start: s, Count: counts[s]})
		}
	}
	if opts.Offset >= len(kept) {
		return out, nil
	}
	kept = kept[opts.Offset:]
	if len(kept) > opts.K {
		kept = kept[:opts.K]
	}
	out.Results = kept
	return out, nil
}

// refPeriodStart truncates a timestamp to its calendar period with
// deliberately different arithmetic from the production PeriodStart
// (library date construction and a weekday walk-back loop instead of
// epoch math), so the two implementations check each other.
func refPeriodStart(gb GroupBy, ts int64) int64 {
	tm := time.Unix(ts, 0).UTC()
	day := time.Date(tm.Year(), tm.Month(), tm.Day(), 0, 0, 0, 0, time.UTC)
	switch gb {
	case GroupDay:
		return day.Unix()
	case GroupWeek:
		for day.Weekday() != time.Monday {
			day = day.AddDate(0, 0, -1)
		}
		return day.Unix()
	case GroupMonth:
		return time.Date(tm.Year(), tm.Month(), 1, 0, 0, 0, 0, time.UTC).Unix()
	}
	return 0
}
