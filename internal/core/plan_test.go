package core

import (
	"context"
	"fmt"
	"reflect"
	"slices"
	"testing"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/kggen"
	"ncexplorer/internal/snapshot"
	"ncexplorer/internal/topk"
	"ncexplorer/internal/xrand"
)

// TestPrunedMatchesExhaustive is the equivalence bar of the pruned
// planner: over randomized graphs, corpora, and build→ingest→merge
// schedules, every RollUpPage — at every generation, page size,
// offset, source filter, and score floor, including a floor equal to
// an exact result score — must reproduce the exhaustive scorer's page
// byte-for-byte. Runs under -race in CI.
func TestPrunedMatchesExhaustive(t *testing.T) {
	for _, seed := range []uint64{3, 17, 101} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r := xrand.New(seed)
			kcfg := kggen.Tiny()
			kcfg.Seed = seed
			kcfg.ExtraConcepts = 40 + r.Intn(60)
			kcfg.ExtraInstances = 200 + r.Intn(300)
			kcfg.AvgDegree = float64(4 + r.Intn(5))
			g, meta := kggen.MustGenerate(kcfg)
			ccfg := corpus.Tiny()
			ccfg.Seed = seed*2 + 1
			ccfg.Docs = map[corpus.Source]int{
				corpus.SeekingAlpha: 15 + r.Intn(15),
				corpus.NYT:          8 + r.Intn(10),
				corpus.Reuters:      30 + r.Intn(30),
			}
			c := corpus.MustGenerate(g, meta, ccfg)
			// MaxSegments 2 forces background merges during the schedule.
			e := NewEngine(g, Options{Seed: seed, Samples: 10, MaxSegments: 2})
			e.IndexCorpus(c)
			comparePrunedExhaustive(t, e, g, meta)
			for b := 0; b < 3; b++ {
				n := 4 + r.Intn(8)
				batch, err := corpus.GenerateBatch(g, meta, ccfg, 9000+seed*10+uint64(b), n)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.Ingest(context.Background(), batch); err != nil {
					t.Fatal(err)
				}
				e.WaitMerges()
				comparePrunedExhaustive(t, e, g, meta)
			}
		})
	}
}

// comparePrunedExhaustive sweeps the option grid at the engine's
// current generation.
func comparePrunedExhaustive(t *testing.T, e *Engine, g *kg.Graph, meta *kggen.Meta) {
	t.Helper()
	ctx := context.Background()
	var queries []Query
	topics := meta.Topics
	if len(topics) > 4 {
		topics = topics[:4]
	}
	for _, topic := range topics {
		queries = append(queries,
			Query{topic.Concept},
			Query{topic.Concept, topic.GroupConcept},
		)
	}
	// A node with no plan (typically an instance): both paths must agree
	// on the empty page.
	queries = append(queries, Query{kg.NodeID(g.NumNodes() - 1)})

	sourceSets := [][]corpus.Source{
		nil,
		{corpus.Reuters},
		{corpus.SeekingAlpha, corpus.NYT},
	}
	for _, q := range queries {
		for _, k := range []int{1, 3, 10} {
			for _, offset := range []int{0, 2, 10000} {
				for _, sources := range sourceSets {
					opts := RollUpOptions{K: k, Offset: offset, Sources: sources}
					want, err := e.rollUpPageExhaustive(ctx, q, opts)
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.RollUpPage(ctx, q, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("pruned page diverges (gen %d, q=%v, opts=%+v):\n got: %+v\nwant: %+v",
							e.Generation(), q, opts, got, want)
					}
					// A floor equal to an exact result score: equality must
					// pass on both paths (and tighten pruning on the new one).
					if len(want.Results) > 0 {
						opts.MinScore = want.Results[len(want.Results)-1].Score
						want2, err := e.rollUpPageExhaustive(ctx, q, opts)
						if err != nil {
							t.Fatal(err)
						}
						got2, err := e.RollUpPage(ctx, q, opts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got2, want2) {
							t.Fatalf("pruned page diverges at exact MinScore (gen %d, q=%v, opts=%+v):\n got: %+v\nwant: %+v",
								e.Generation(), q, opts, got2, want2)
						}
					}
				}
			}
		}
	}
}

// TestCeilingsDominateScores pins the soundness invariant the skip rule
// rests on: within every plan block, every document score is bounded by
// the block ceiling, and ceilOrder is a (ceil desc, position asc)
// permutation of the blocks.
func TestCeilingsDominateScores(t *testing.T) {
	_, _, _, e := world(t)
	st := e.state()
	if st.planned == 0 {
		t.Fatal("no plans built")
	}
	checked := 0
	for c := range st.plans {
		p := &st.plans[c]
		if len(p.docs) == 0 {
			continue
		}
		st.ensureCeilings(kg.NodeID(c), p) // ceilings materialise on first query use
		if len(p.blocks) == 0 {
			t.Fatalf("concept %d: no blocks materialised for %d docs", c, len(p.docs))
		}
		if len(p.ceilOrder) != len(p.blocks) {
			t.Fatalf("concept %d: ceilOrder len %d vs %d blocks", c, len(p.ceilOrder), len(p.blocks))
		}
		seen := make([]bool, len(p.blocks))
		for i, bi := range p.ceilOrder {
			if seen[bi] {
				t.Fatalf("concept %d: block %d repeated in ceilOrder", c, bi)
			}
			seen[bi] = true
			if i > 0 {
				prev, cur := p.blocks[p.ceilOrder[i-1]], p.blocks[bi]
				if prev.ceil < cur.ceil || (prev.ceil == cur.ceil && prev.lo > cur.lo) {
					t.Fatalf("concept %d: ceilOrder not (ceil desc, lo asc) at %d", c, i)
				}
			}
		}
		for _, b := range p.blocks {
			block := p.docs[b.lo] >> snapshot.BlockShift
			for j := b.lo; j < b.hi; j++ {
				if p.docs[j]>>snapshot.BlockShift != block {
					t.Fatalf("concept %d: block [%d,%d) spans ID windows", c, b.lo, b.hi)
				}
				if p.scores[j] > b.ceil {
					t.Fatalf("concept %d doc %d: score %g exceeds block ceiling %g",
						c, p.docs[j], p.scores[j], b.ceil)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no (concept, doc) pairs checked")
	}
}

// fakeSources is a docView for synthetic plans. All docs report time 0,
// so the hand-built boundary cases below exercise the score rules
// without a time filter in play.
type fakeSources map[int32]corpus.Source

func (f fakeSources) docSource(d int32) corpus.Source { return f[d] }
func (f fakeSources) docTime(d int32) int64           { return 0 }

// TestScanPlanPrunedBoundaries pins the strict-inequality skip rules on
// hand-built plans where getting a boundary wrong changes the output.
func TestScanPlanPrunedBoundaries(t *testing.T) {
	ctx := context.Background()
	scan := func(p *conceptPlan, view docView, allowed []corpus.Source, minScore float64, k int) (int, []topk.KeyedItem[int32]) {
		t.Helper()
		coll := topk.NewKeyed[int32](k)
		total, err := scanPlanPruned(ctx, p, view, allowed, minScore, nil, nil, coll)
		if err != nil {
			t.Fatal(err)
		}
		return total, coll.AppendSorted(nil)
	}

	// A block whose ceiling EQUALS the full collector's threshold holds a
	// doc with the threshold score and a lower ID: it must be scored, and
	// the ID tie-break must evict the retained higher-ID doc. Blocks:
	// docs[1:3] = {128: 10, 129: 5} (ceil 10, visited first) then
	// docs[0:1] = {0: 5} (ceil 5 == threshold after the first block).
	equality := &conceptPlan{
		docs:   []int32{0, 128, 129},
		scores: []float64{5, 10, 5},
		pivots: make([]kg.NodeID, 3),
		blocks: []planBlock{
			{lo: 0, hi: 1, ceil: 5},
			{lo: 1, hi: 3, ceil: 10},
		},
		ceilOrder: []int32{1, 0},
	}
	total, items := scan(equality, fakeSources{}, nil, 0, 2)
	if total != 3 {
		t.Fatalf("equality case Total = %d, want 3", total)
	}
	if len(items) != 2 || items[0].Value != 128 || items[1].Value != 0 {
		t.Fatalf("ceiling == threshold was skipped: retained %+v, want docs 128 then 0", items)
	}

	// A block STRICTLY below the threshold cannot change the retained
	// set, but its documents still match: they count toward Total
	// (respecting the source filter) without being scored.
	below := &conceptPlan{
		docs:   []int32{0, 1, 64, 65},
		scores: []float64{10, 9, 3, 2},
		pivots: make([]kg.NodeID, 4),
		blocks: []planBlock{
			{lo: 0, hi: 2, ceil: 10},
			{lo: 2, hi: 4, ceil: 3},
		},
		ceilOrder: []int32{0, 1},
	}
	view := fakeSources{0: corpus.Reuters, 1: corpus.NYT, 64: corpus.Reuters, 65: corpus.NYT}
	total, items = scan(below, view, nil, 0, 2)
	if total != 4 || len(items) != 2 || items[0].Value != 0 || items[1].Value != 1 {
		t.Fatalf("strict-below case: Total=%d items=%+v, want Total 4, docs 0,1", total, items)
	}
	total, _ = scan(below, view, []corpus.Source{corpus.Reuters}, 0, 1)
	if total != 2 {
		t.Fatalf("filtered Total = %d, want 2 (one per skipped/scored Reuters doc)", total)
	}

	// MinScore boundaries: a block with ceil == minScore holds passing
	// docs (equality passes the floor) and must be scored; a block with
	// ceil strictly below contributes nothing, not even to Total.
	floor := &conceptPlan{
		docs:   []int32{0, 64, 128},
		scores: []float64{10, 5, 4},
		pivots: make([]kg.NodeID, 3),
		blocks: []planBlock{
			{lo: 0, hi: 1, ceil: 10},
			{lo: 1, hi: 2, ceil: 5},
			{lo: 2, hi: 3, ceil: 4},
		},
		ceilOrder: []int32{0, 1, 2},
	}
	total, items = scan(floor, fakeSources{}, nil, 5, 3)
	if total != 2 || len(items) != 2 || items[1].Value != 64 {
		t.Fatalf("minScore equality case: Total=%d items=%+v, want Total 2 with doc 64 kept", total, items)
	}

	// With a floor set, a block below the collector threshold but at or
	// above the floor still needs per-document scoring: Total depends on
	// which of its docs clear the floor.
	mixed := &conceptPlan{
		docs:   []int32{0, 64, 65},
		scores: []float64{10, 5, 3},
		pivots: make([]kg.NodeID, 3),
		blocks: []planBlock{
			{lo: 0, hi: 1, ceil: 10},
			{lo: 1, hi: 3, ceil: 5},
		},
		ceilOrder: []int32{0, 1},
	}
	total, items = scan(mixed, fakeSources{}, nil, 4, 1)
	if total != 2 || len(items) != 1 || items[0].Value != 0 {
		t.Fatalf("floor+threshold case: Total=%d items=%+v, want Total 2, doc 0", total, items)
	}
}

// TestWarmRollUpPageIntoNoAlloc pins the zero-alloc warm path outside
// the benchmark suite, for both the pruned single-concept scan and the
// multi-concept leapfrog.
func TestWarmRollUpPageIntoNoAlloc(t *testing.T) {
	_, meta, _, e := world(t)
	topic := meta.Topics[0]
	ctx := context.Background()
	for _, q := range []Query{
		{topic.Concept},
		{topic.Concept, topic.GroupConcept},
	} {
		var page RollUpPage
		opts := RollUpOptions{K: 8}
		if err := e.RollUpPageInto(ctx, q, opts, &page); err != nil {
			t.Fatal(err)
		}
		if len(page.Results) == 0 {
			t.Fatalf("query %v returned no results", q)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := e.RollUpPageInto(ctx, q, opts, &page); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("warm RollUpPageInto(%v) allocates %.1f/op, want 0", q, allocs)
		}
	}
}

// TestDrillDownPruningMatchesFullScore: with K below the shortlist
// window the diversity loop prunes tail entries by their upper bound;
// with K equal to the window (same shortlist, same candidate set) every
// entry is fully scored. The pruned page must be exactly the prefix of
// the fully scored ranking, for every ablation toggle.
func TestDrillDownPruningMatchesFullScore(t *testing.T) {
	_, meta, _, e := world(t)
	ctx := context.Background()
	for _, topic := range meta.Topics {
		q := Query{topic.Concept, topic.GroupConcept}
		for _, toggles := range []DrillDownOptions{
			{},
			{NoSpecificity: true},
			{NoDiversity: true},
			{NoSpecificity: true, NoDiversity: true},
		} {
			fullOpts := toggles
			fullOpts.K = 128 // == shortlist window: prune phase is empty
			full, err := e.DrillDownPage(ctx, q, fullOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 3, 10} {
				opts := toggles
				opts.K = k
				got, err := e.DrillDownPage(ctx, q, opts)
				if err != nil {
					t.Fatal(err)
				}
				want := full.Results
				if len(want) > k {
					want = want[:k]
				}
				if !reflect.DeepEqual(got.Results, want) {
					t.Fatalf("pruned drill-down diverges (topic %q, k=%d, toggles %+v):\n got: %+v\nwant: %+v",
						topic.Name, k, toggles, got.Results, want)
				}
				if got.Total != full.Total {
					t.Fatalf("Total diverges: %d vs %d", got.Total, full.Total)
				}
			}
		}
	}
}

// TestSelectTopCand checks the quickselect against a full sort over
// adversarially tie-heavy inputs: the selected prefix, once sorted,
// must equal the prefix of the fully sorted list for every k.
func TestSelectTopCand(t *testing.T) {
	r := xrand.New(42)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(400)
		k := 1 + r.Intn(n)
		s := make([]candScore, n)
		for _, p := range r.Perm(n) {
			// Few distinct scores force heavy tie-breaking on concept ID.
			s[p] = candScore{c: kg.NodeID(len(s) - p), s: float64(r.Intn(6))}
		}
		want := append([]candScore(nil), s...)
		slices.SortFunc(want, cmpCandScore)
		selectTopCand(s, k)
		got := s[:k:k]
		slices.SortFunc(got, cmpCandScore)
		if !reflect.DeepEqual(got, want[:k]) {
			t.Fatalf("trial %d (n=%d, k=%d): selected prefix %v, want %v", trial, n, k, got, want[:k])
		}
	}
}
