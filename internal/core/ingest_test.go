package core

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	"ncexplorer/internal/corpus"
)

// ingestBatch generates a deterministic batch of fresh articles over
// the shared test world.
func ingestBatch(t testing.TB, seed uint64, n int) []corpus.Document {
	t.Helper()
	g, meta, _, _ := world(t)
	batch, err := corpus.GenerateBatch(g, meta, corpus.Tiny(), seed, n)
	if err != nil {
		t.Fatal(err)
	}
	return batch
}

// queryFingerprint runs a representative mixed workload and marshals
// every result, so two engines can be compared for byte-identical
// behaviour.
func queryFingerprint(t testing.TB, e *Engine) []byte {
	t.Helper()
	_, meta, _, _ := world(t)
	var out []any
	for _, topic := range meta.Topics {
		q := Query{topic.Concept, topic.GroupConcept}
		out = append(out, e.RollUp(q, 8), e.DrillDown(q, 8), e.RollUp(Query{topic.Concept}, 5))
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestIngestMatchesMonolithic is the acceptance contract of the
// segmented index: an engine that indexed the seed corpus and then
// ingested two batches must answer every query byte-identically to an
// engine that indexed all documents in one IndexCorpus call — same
// per-document concept postings, same matches, same scores, same
// pivots.
func TestIngestMatchesMonolithic(t *testing.T) {
	g, _, c, _ := world(t)
	b1 := ingestBatch(t, 1001, 23)
	b2 := ingestBatch(t, 1002, 9)

	grown := NewEngine(g, Options{Seed: 11, Samples: 20})
	grown.IndexCorpus(c)
	if _, err := grown.Ingest(context.Background(), b1); err != nil {
		t.Fatal(err)
	}
	if _, err := grown.Ingest(context.Background(), b2); err != nil {
		t.Fatal(err)
	}
	if got := grown.Generation(); got != 3 {
		t.Fatalf("generation = %d, want 3", got)
	}

	all := &corpus.Corpus{Docs: append(append(append([]corpus.Document(nil), c.Docs...), b1...), b2...)}
	for i := range all.Docs {
		all.Docs[i].ID = corpus.DocID(i)
	}
	mono := NewEngine(g, Options{Seed: 11, Samples: 20})
	mono.IndexCorpus(all)

	if grown.NumDocs() != mono.NumDocs() {
		t.Fatalf("doc counts differ: %d vs %d", grown.NumDocs(), mono.NumDocs())
	}
	for d := 0; d < mono.NumDocs(); d++ {
		if !reflect.DeepEqual(grown.DocConcepts(corpus.DocID(d)), mono.DocConcepts(corpus.DocID(d))) {
			t.Fatalf("doc %d concept postings diverge:\n grown: %+v\n mono:  %+v",
				d, grown.DocConcepts(corpus.DocID(d)), mono.DocConcepts(corpus.DocID(d)))
		}
	}
	got, want := queryFingerprint(t, grown), queryFingerprint(t, mono)
	if string(got) != string(want) {
		t.Fatal("grown engine's query results diverge from monolithic build")
	}
}

// TestIngestMergeInvariance: background merges reorganise segments
// without changing any answer or the generation.
func TestIngestMergeInvariance(t *testing.T) {
	g, _, c, _ := world(t)
	loose := NewEngine(g, Options{Seed: 11, Samples: 20, MaxSegments: 100})
	tight := NewEngine(g, Options{Seed: 11, Samples: 20, MaxSegments: 2})
	loose.IndexCorpus(c)
	tight.IndexCorpus(c)
	for i := 0; i < 4; i++ {
		batch := ingestBatch(t, 2000+uint64(i), 7)
		if _, err := loose.Ingest(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		if _, err := tight.Ingest(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
	}
	tight.WaitMerges()
	if n := len(tight.SegmentSizes()); n > 2 {
		t.Fatalf("tight engine still has %d segments after merges", n)
	}
	if n := len(loose.SegmentSizes()); n != 5 {
		t.Fatalf("loose engine has %d segments, want 5", n)
	}
	if tight.Generation() != loose.Generation() {
		t.Fatalf("merge changed the generation: %d vs %d", tight.Generation(), loose.Generation())
	}
	if tight.IngestCounters().Merges == 0 {
		t.Fatal("tight engine performed no merges")
	}
	got, want := queryFingerprint(t, tight), queryFingerprint(t, loose)
	if string(got) != string(want) {
		t.Fatal("merged engine's query results diverge from unmerged engine")
	}
	// Display data must survive merging too.
	for d := 0; d < tight.NumDocs(); d++ {
		if !reflect.DeepEqual(tight.Doc(corpus.DocID(d)), loose.Doc(corpus.DocID(d))) {
			t.Fatalf("article %d differs after merge", d)
		}
	}
}

// TestIngestEdgeCases pins the error contract: ingest before indexing
// fails, empty batches are no-ops at the current generation, and a
// cancelled context aborts before anything becomes visible.
func TestIngestEdgeCases(t *testing.T) {
	g, _, c, _ := world(t)
	e := NewEngine(g, Options{Seed: 3, Samples: 5, Workers: 2})
	if _, err := e.Ingest(context.Background(), ingestBatch(t, 1, 2)); err == nil {
		t.Fatal("Ingest before IndexCorpus should fail")
	}
	e.IndexCorpus(c)

	res, err := e.Ingest(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs != 0 || res.Generation != 1 || res.TotalDocs != c.Len() {
		t.Fatalf("empty batch result = %+v", res)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Ingest(cancelled, ingestBatch(t, 2, 3)); err == nil {
		t.Fatal("cancelled ingest should fail")
	}
	if e.Generation() != 1 || e.NumDocs() != c.Len() {
		t.Fatalf("cancelled ingest leaked state: gen=%d docs=%d", e.Generation(), e.NumDocs())
	}

	res, err = e.Ingest(context.Background(), ingestBatch(t, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 || res.Docs != 4 || res.TotalDocs != c.Len()+4 ||
		e.NumDocs() != c.Len()+4 {
		t.Fatalf("ingest result = %+v (engine docs %d)", res, e.NumDocs())
	}
	ic := e.IngestCounters()
	if ic.Batches != 1 || ic.Docs != 4 || ic.Nanos <= 0 {
		t.Fatalf("ingest counters = %+v", ic)
	}
}

// TestResetQueryCachesAfterIngest: a reset must restore the *current*
// generation's baseline — post-ingest answers, not seed-corpus ones.
func TestResetQueryCachesAfterIngest(t *testing.T) {
	g, _, c, _ := world(t)
	e := NewEngine(g, Options{Seed: 11, Samples: 20})
	e.IndexCorpus(c)
	if _, err := e.Ingest(context.Background(), ingestBatch(t, 4242, 11)); err != nil {
		t.Fatal(err)
	}
	before := queryFingerprint(t, e)
	epoch := e.CacheEpoch()
	e.ResetQueryCaches()
	if e.CacheEpoch() == epoch {
		t.Fatal("ResetQueryCaches must advance the cache epoch")
	}
	after := queryFingerprint(t, e)
	if string(before) != string(after) {
		t.Fatal("results changed across ResetQueryCaches")
	}
}

// TestPipelinedIngestEquivalence: batches ingested CONCURRENTLY — their
// lock-free analysis stages overlapping, commits racing for the base,
// durability waits and roll-up queries running alongside, checkpoints
// draining through the group-commit writer, background merges folding
// segments — must leave an engine byte-identical to a monolithic build
// over whatever document order the race produced, and the checkpoint
// directory must reopen to that same state.
func TestPipelinedIngestEquivalence(t *testing.T) {
	g, meta, c, _ := world(t)
	dir := t.TempDir()
	e := NewEngine(g, Options{Seed: 11, Samples: 20, MaxSegments: 3})
	e.IndexCorpus(c)
	e.SetCheckpointDir(dir, map[string]string{"scale": "tiny"})

	const nBatches = 8
	batches := make([][]corpus.Document, nBatches)
	for i := range batches {
		batches[i] = ingestBatch(t, 9100+uint64(i), 5+i%4)
	}

	// Racing readers: queries against whichever snapshot is current.
	// Their answers are not compared (each pins its own generation);
	// they exist to race the swap, the lazy per-doc score fill, and the
	// lazy ceiling materialisation under -race.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				topic := meta.Topics[(r+i)%len(meta.Topics)]
				e.RollUp(Query{topic.Concept, topic.GroupConcept}, 8)
				e.DrillDown(Query{topic.Concept}, 8)
			}
		}(r)
	}

	var writers sync.WaitGroup
	for i := range batches {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			res, err := e.Ingest(context.Background(), batches[i])
			if err != nil {
				t.Error(err)
				return
			}
			// The durability barrier races later commits — exactly the
			// serving layer's ack path.
			e.WaitPersisted(res.PersistSeq)
		}(i)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	e.WaitMerges()

	// The race decided the batch order; rebuild that exact document
	// sequence with one monolithic IndexCorpus and compare everything.
	all := &corpus.Corpus{Docs: make([]corpus.Document, e.NumDocs())}
	for d := range all.Docs {
		doc := *e.Doc(corpus.DocID(d))
		doc.ID = corpus.DocID(d)
		all.Docs[d] = doc
	}
	mono := NewEngine(g, Options{Seed: 11, Samples: 20})
	mono.IndexCorpus(all)
	if e.NumDocs() != mono.NumDocs() {
		t.Fatalf("doc counts differ: %d vs %d", e.NumDocs(), mono.NumDocs())
	}
	for d := 0; d < mono.NumDocs(); d++ {
		if !reflect.DeepEqual(e.DocConcepts(corpus.DocID(d)), mono.DocConcepts(corpus.DocID(d))) {
			t.Fatalf("doc %d concept postings diverge", d)
		}
	}
	got, want := queryFingerprint(t, e), queryFingerprint(t, mono)
	if string(got) != string(want) {
		t.Fatal("pipelined engine's query results diverge from monolithic build")
	}

	// The overlapped checkpoints coalesced into some suffix of the
	// commit sequence; the directory must reopen to the final state.
	recovered := NewEngine(g, Options{Seed: 11, Samples: 20, MaxSegments: 3})
	if err := recovered.OpenSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	if recovered.Generation() != e.Generation() || recovered.NumDocs() != e.NumDocs() {
		t.Fatalf("recovered gen=%d docs=%d, want gen=%d docs=%d",
			recovered.Generation(), recovered.NumDocs(), e.Generation(), e.NumDocs())
	}
}

// TestIngestCancelMidAnalyze: cancellation landing while the lock-free
// analysis stage is running must leave no trace — no partial segment,
// no generation bump, no answer drift. The batch is all-or-nothing: a
// cancel that arrives after the commit leaves the whole batch visible.
func TestIngestCancelMidAnalyze(t *testing.T) {
	g, _, c, _ := world(t)
	e := NewEngine(g, Options{Seed: 11, Samples: 20})
	e.IndexCorpus(c)
	before := queryFingerprint(t, e)
	gen, docs, segs := e.Generation(), e.NumDocs(), len(e.SegmentSizes())
	batch := ingestBatch(t, 9500, 64)

	cancelled := 0
	for trial := 0; trial < 6; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(trial) * 2 * time.Millisecond
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		res, err := e.Ingest(ctx, batch)
		cancel()
		if err != nil {
			cancelled++
			if e.Generation() != gen || e.NumDocs() != docs || len(e.SegmentSizes()) != segs {
				t.Fatalf("trial %d: cancelled ingest leaked state: gen=%d docs=%d segs=%d",
					trial, e.Generation(), e.NumDocs(), len(e.SegmentSizes()))
			}
			if got := queryFingerprint(t, e); string(got) != string(before) {
				t.Fatalf("trial %d: cancelled ingest changed answers", trial)
			}
			continue
		}
		// Cancel landed after the swap: the whole batch must be visible
		// at one new generation. Re-baseline and keep probing.
		if res.Docs != len(batch) || e.NumDocs() != docs+len(batch) || res.Generation != gen+1 {
			t.Fatalf("trial %d: partial commit: res=%+v docs=%d", trial, res, e.NumDocs())
		}
		gen, docs, segs = e.Generation(), e.NumDocs(), len(e.SegmentSizes())
		before = queryFingerprint(t, e)
	}
	if cancelled == 0 {
		t.Log("no trial cancelled mid-analysis; invariant still held on every commit")
	}
}

// BenchmarkIngest measures the live-ingestion pipeline (annotation,
// linking, segment build, snapshot rescore, swap) in documents per
// second, the throughput number the serving story is sized by.
func BenchmarkIngest(b *testing.B) {
	g, meta, c, _ := world(b)
	const batchSize = 32
	batches := make([][]corpus.Document, b.N)
	for i := range batches {
		batch, err := corpus.GenerateBatch(g, meta, corpus.Tiny(), 7000+uint64(i), batchSize)
		if err != nil {
			b.Fatal(err)
		}
		batches[i] = batch
	}
	e := NewEngine(g, Options{Seed: 11, Samples: 20})
	e.IndexCorpus(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Ingest(context.Background(), batches[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e.WaitMerges()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*batchSize)/elapsed, "docs/sec")
	}
}
