package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hash/crc32"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/segio"
)

// enginesEquivalent asserts the save→load acceptance contract: same
// generation, same corpus, same per-document postings and articles,
// and byte-identical answers to a mixed query workload.
func enginesEquivalent(t *testing.T, saved, loaded *Engine) {
	t.Helper()
	if saved.Generation() != loaded.Generation() {
		t.Fatalf("generation: %d vs %d", saved.Generation(), loaded.Generation())
	}
	if saved.NumDocs() != loaded.NumDocs() {
		t.Fatalf("docs: %d vs %d", saved.NumDocs(), loaded.NumDocs())
	}
	for d := 0; d < saved.NumDocs(); d++ {
		id := corpus.DocID(d)
		if !reflect.DeepEqual(saved.DocConcepts(id), loaded.DocConcepts(id)) {
			t.Fatalf("doc %d concept postings diverge", d)
		}
		if !reflect.DeepEqual(saved.Doc(id), loaded.Doc(id)) {
			t.Fatalf("article %d diverges", d)
		}
	}
	got, want := queryFingerprint(t, loaded), queryFingerprint(t, saved)
	if string(got) != string(want) {
		t.Fatal("loaded engine's query results diverge from the saving engine")
	}
}

func persistTestOptions() Options {
	return Options{Seed: 11, Samples: 20}
}

// TestSaveOpenEquivalence: build → ingest → save → open must yield an
// engine indistinguishable from the saver, across generations, and the
// loaded engine must keep ingesting and merging from where the saver
// stopped.
func TestSaveOpenEquivalence(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()

	saver := NewEngine(g, persistTestOptions())
	saver.IndexCorpus(c)
	if _, err := saver.Ingest(context.Background(), ingestBatch(t, 8001, 13)); err != nil {
		t.Fatal(err)
	}
	if _, err := saver.Ingest(context.Background(), ingestBatch(t, 8002, 5)); err != nil {
		t.Fatal(err)
	}
	saver.WaitMerges()
	worldMeta := map[string]string{"scale": "tiny"}
	if err := saver.SaveSnapshot(dir, worldMeta); err != nil {
		t.Fatal(err)
	}

	loaded := NewEngine(g, persistTestOptions())
	if err := loaded.OpenSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	enginesEquivalent(t, saver, loaded)

	// The loaded engine carries the saver's build stats (for /statsz).
	if saver.Stats().Docs != loaded.Stats().Docs ||
		!reflect.DeepEqual(saver.Stats().PerSource, loaded.Stats().PerSource) {
		t.Fatalf("stats diverge: %+v vs %+v", saver.Stats(), loaded.Stats())
	}
	pc := loaded.PersistCounters()
	if pc.Opens != 1 || pc.BytesRead == 0 {
		t.Fatalf("loaded persist counters = %+v", pc)
	}

	// Post-load growth: both engines ingest the same further batches;
	// equivalence must hold at every new generation, including through
	// merges.
	for i := 0; i < 3; i++ {
		batch := ingestBatch(t, 8100+uint64(i), 7)
		if _, err := saver.Ingest(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		if _, err := loaded.Ingest(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		saver.WaitMerges()
		loaded.WaitMerges()
		enginesEquivalent(t, saver, loaded)
	}

	// Save the grown loaded engine and reopen: a second generation of
	// persistence over a warm-started engine.
	if err := loaded.SaveSnapshot(dir, worldMeta); err != nil {
		t.Fatal(err)
	}
	pc = loaded.PersistCounters()
	if pc.Saves != 1 || pc.SegmentsReused == 0 {
		t.Fatalf("second-save persist counters = %+v (want reuse of loaded segment files)", pc)
	}
	reopened := NewEngine(g, persistTestOptions())
	if err := reopened.OpenSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	enginesEquivalent(t, loaded, reopened)
}

// TestSaveReusesSegmentFiles: an unchanged corpus re-saves without
// rewriting any segment file (content-addressed names), and the
// manifest swap collects files no longer referenced after a merge.
func TestSaveReusesSegmentFiles(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()
	e := NewEngine(g, Options{Seed: 11, Samples: 20, MaxSegments: 2})
	e.IndexCorpus(c)
	if err := e.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	first := e.PersistCounters()
	if first.SegmentsWritten != 1 || first.SegmentsReused != 0 {
		t.Fatalf("first save counters = %+v", first)
	}
	if err := e.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	second := e.PersistCounters()
	if second.SegmentsWritten != 1 || second.SegmentsReused != 1 {
		t.Fatalf("second save counters = %+v", second)
	}

	// Grow past MaxSegments so a merge folds segments, then save: the
	// directory must hold exactly the live segment files.
	for i := 0; i < 3; i++ {
		if _, err := e.Ingest(context.Background(), ingestBatch(t, 8200+uint64(i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	e.WaitMerges()
	if err := e.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	m, err := segio.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segFiles int
	entries, _ := os.ReadDir(dir)
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), segio.SegmentExt) {
			segFiles++
		}
	}
	if segFiles != len(m.Segments) {
		t.Fatalf("%d segment files on disk, manifest references %d", segFiles, len(m.Segments))
	}
	if len(m.Segments) != len(e.SegmentSizes()) {
		t.Fatalf("manifest has %d segments, engine %d", len(m.Segments), len(e.SegmentSizes()))
	}
}

// TestCheckpointSurvivesCrash: with a checkpoint dir configured, every
// committed ingest is reopenable without any explicit save — the
// -watch crash-recovery story.
func TestCheckpointSurvivesCrash(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()
	e := NewEngine(g, Options{Seed: 11, Samples: 20, MaxSegments: 2})
	e.IndexCorpus(c)
	e.SetCheckpointDir(dir, map[string]string{"scale": "tiny"})
	for i := 0; i < 3; i++ {
		if _, err := e.Ingest(context.Background(), ingestBatch(t, 8300+uint64(i), 6)); err != nil {
			t.Fatal(err)
		}
	}
	e.WaitMerges()
	pc := e.PersistCounters()
	if pc.Checkpoints == 0 || pc.Saves != 0 {
		t.Fatalf("persist counters = %+v (want checkpoints without saves)", pc)
	}

	// "Crash": no SaveSnapshot call; a fresh engine must reopen the
	// checkpointed state (no conn file — only full saves write one).
	m, err := segio.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.ConnFile != "" {
		t.Fatalf("checkpoint wrote a conn file: %q", m.ConnFile)
	}
	if m.Generation != e.Generation() {
		t.Fatalf("manifest generation %d, engine %d", m.Generation, e.Generation())
	}
	recovered := NewEngine(g, Options{Seed: 11, Samples: 20, MaxSegments: 2})
	if err := recovered.OpenSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	enginesEquivalent(t, e, recovered)

	// A full save upgrades the store with the conn cache; a checkpoint
	// after it keeps referencing that cache.
	if err := e.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(context.Background(), ingestBatch(t, 8350, 3)); err != nil {
		t.Fatal(err)
	}
	e.WaitMerges()
	m, err = segio.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.ConnFile == "" {
		t.Fatal("checkpoint dropped the saved conn file reference")
	}
	if m.Generation != e.Generation() {
		t.Fatalf("post-save checkpoint generation %d, engine %d", m.Generation, e.Generation())
	}
}

// TestDeltaCheckpointAfterMerge: a background merge must not put an
// O(corpus) re-encode on the checkpoint writer. Once a merge folds two
// durable segments, the next checkpoint covers the merged segment by
// referencing its parents' existing files (a delta checkpoint) instead
// of encoding a new merged file; the delta manifest still reopens
// byte-equivalently, and the next full save compacts the directory
// back to the live layout. Synchronous persistence makes the schedule
// deterministic: every batch segment is durable before the merge that
// folds it commits.
func TestDeltaCheckpointAfterMerge(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()
	e := NewEngine(g, Options{Seed: 11, Samples: 20, MaxSegments: 2})
	e.IndexCorpus(c)
	e.SetSyncPersist(true)
	e.SetCheckpointDir(dir, nil)
	for i := 0; i < 4; i++ {
		if _, err := e.Ingest(context.Background(), ingestBatch(t, 8400+uint64(i), 5)); err != nil {
			t.Fatal(err)
		}
	}
	e.WaitMerges()
	m, err := segio.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Generation != e.Generation() {
		t.Fatalf("manifest generation %d, engine %d", m.Generation, e.Generation())
	}
	live := len(e.SegmentSizes())
	if len(m.Segments) <= live {
		t.Fatalf("manifest references %d files for %d live segments — merges were re-encoded instead of delta-referenced", len(m.Segments), live)
	}
	if w := e.PersistCounters().SegmentsWritten; w > 5 {
		t.Fatalf("%d segment files written for 4 batches + seed — merged segments hit the writer", w)
	}

	recovered := NewEngine(g, Options{Seed: 11, Samples: 20, MaxSegments: 2})
	if err := recovered.OpenSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	enginesEquivalent(t, e, recovered)

	// A full save compacts: manifest and directory collapse to the live
	// segmentation.
	if err := e.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	m, err = segio.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != live {
		t.Fatalf("after save: manifest references %d files for %d live segments", len(m.Segments), live)
	}
}

// TestFailedSaveKeepsPreviousSnapshot: when any write fails mid-save,
// the directory still opens to the previously saved state.
func TestFailedSaveKeepsPreviousSnapshot(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()
	e := NewEngine(g, persistTestOptions())
	e.IndexCorpus(c)
	if err := e.SaveSnapshot(dir, map[string]string{"scale": "tiny"}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, segio.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(context.Background(), ingestBatch(t, 8400, 5)); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected write failure")
	for _, stage := range []string{"segment", "manifest"} {
		stage := stage
		origFile, origManifest := writeSegioFile, writeSegioManifest
		if stage == "segment" {
			writeSegioFile = func(dir, name string, data []byte) error { return injected }
		} else {
			writeSegioManifest = func(dir string, m *segio.Manifest) error { return injected }
		}
		err := e.SaveSnapshot(dir, nil)
		writeSegioFile, writeSegioManifest = origFile, origManifest
		if !errors.Is(err, injected) {
			t.Fatalf("%s stage: save err = %v, want injected failure", stage, err)
		}
		after, rerr := os.ReadFile(filepath.Join(dir, segio.ManifestName))
		if rerr != nil || string(after) != string(before) {
			t.Fatalf("%s stage: previous manifest not intact after failed save", stage)
		}
		recovered := NewEngine(g, persistTestOptions())
		if oerr := recovered.OpenSnapshot(dir, nil); oerr != nil {
			t.Fatalf("%s stage: store no longer opens: %v", stage, oerr)
		}
		if recovered.Generation() != 1 || recovered.NumDocs() != c.Len() {
			t.Fatalf("%s stage: recovered wrong state: gen=%d docs=%d",
				stage, recovered.Generation(), recovered.NumDocs())
		}
	}
	// And with the failure gone, the same save succeeds.
	if err := e.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointWriteFailureKeepsPreviousManifest: a group-commit
// checkpoint attempt that fails at the disk never fails the ingest that
// enqueued it — the commit already happened — it is counted in
// PersistCounters.CheckpointErrors, the previous manifest stays
// openable, and because the written watermark does not advance on
// failure, the next successful attempt repairs the directory in full.
func TestCheckpointWriteFailureKeepsPreviousManifest(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()
	e := NewEngine(g, persistTestOptions())
	e.IndexCorpus(c)
	e.SetCheckpointDir(dir, map[string]string{"scale": "tiny"})
	res, err := e.Ingest(context.Background(), ingestBatch(t, 8600, 4))
	if err != nil {
		t.Fatal(err)
	}
	e.WaitPersisted(res.PersistSeq)
	before, err := os.ReadFile(filepath.Join(dir, segio.ManifestName))
	if err != nil {
		t.Fatal(err)
	}

	// The writer is idle after WaitMerges (every enqueued job completed
	// and none are pending), so swapping the injection hook does not
	// race a write in flight; the enqueue/pickup mutex pair publishes
	// the swap to the writer goroutine.
	e.WaitMerges()
	injected := errors.New("injected checkpoint failure")
	origManifest := writeSegioManifest
	writeSegioManifest = func(dir string, m *segio.Manifest) error { return injected }
	res, err = e.Ingest(context.Background(), ingestBatch(t, 8601, 3))
	if err != nil {
		t.Fatalf("checkpoint failure must not fail the ingest: %v", err)
	}
	e.WaitPersisted(res.PersistSeq)
	e.WaitMerges()
	writeSegioManifest = origManifest

	if n := e.PersistCounters().CheckpointErrors; n != 1 {
		t.Fatalf("CheckpointErrors = %d, want 1", n)
	}
	after, err := os.ReadFile(filepath.Join(dir, segio.ManifestName))
	if err != nil || string(after) != string(before) {
		t.Fatal("failed checkpoint disturbed the previous manifest")
	}
	recovered := NewEngine(g, persistTestOptions())
	if err := recovered.OpenSnapshot(dir, nil); err != nil {
		t.Fatalf("store no longer opens after failed checkpoint: %v", err)
	}
	if recovered.NumDocs() != c.Len()+4 {
		t.Fatalf("recovered %d docs, want the pre-failure state's %d",
			recovered.NumDocs(), c.Len()+4)
	}

	// Failure cleared: the next ingest's checkpoint writes the full
	// current state (nothing was marked written by the failed attempt).
	res, err = e.Ingest(context.Background(), ingestBatch(t, 8602, 2))
	if err != nil {
		t.Fatal(err)
	}
	e.WaitPersisted(res.PersistSeq)
	e.WaitMerges()
	repaired := NewEngine(g, persistTestOptions())
	if err := repaired.OpenSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	enginesEquivalent(t, e, repaired)
}

// TestPersistErrors pins the misuse and corruption error paths of the
// engine-level API.
func TestPersistErrors(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()

	empty := NewEngine(g, persistTestOptions())
	if err := empty.SaveSnapshot(dir, nil); !errors.Is(err, errSaveBeforeIndex) {
		t.Fatalf("save before index: %v", err)
	}
	if err := empty.OpenSnapshot(t.TempDir(), nil); !errors.Is(err, segio.ErrNoSnapshot) {
		t.Fatalf("open empty dir: %v", err)
	}

	e := NewEngine(g, persistTestOptions())
	e.IndexCorpus(c)
	if err := e.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.OpenSnapshot(dir, nil); !errors.Is(err, errOpenAfterIndex) {
		t.Fatalf("open on indexed engine: %v", err)
	}

	// Mismatched engine options must be rejected before any state is
	// installed.
	other := NewEngine(g, Options{Seed: 12, Samples: 20})
	if err := other.OpenSnapshot(dir, nil); err == nil || !strings.Contains(err.Error(), "options") {
		t.Fatalf("mismatched options: %v", err)
	}
	if other.state() != nil {
		t.Fatal("failed open installed state")
	}

	// Manifest referencing a missing segment file: typed corruption,
	// no partial engine.
	m, err := segio.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, m.Segments[0].File)); err != nil {
		t.Fatal(err)
	}
	victim := NewEngine(g, persistTestOptions())
	if err := victim.OpenSnapshot(dir, nil); !errors.Is(err, segio.ErrCorrupt) {
		t.Fatalf("missing segment file: %v", err)
	}
	if victim.state() != nil {
		t.Fatal("corrupt open installed state")
	}
}

// TestOpenRejectsOutOfGraphNodes: node IDs the codec accepts
// structurally but that do not exist in THIS graph must fail the open
// with typed corruption — never reach the rescore path, where they
// would panic graph lookups.
func TestOpenRejectsOutOfGraphNodes(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()
	e := NewEngine(g, persistTestOptions())
	e.IndexCorpus(c)
	if err := e.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	m, err := segio.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the first segment with a candidate ID beyond the graph,
	// keeping the file canonical and the manifest CRC in agreement (the
	// damage models a snapshot saved against a different world, which
	// no checksum can catch).
	ref := &m.Segments[0]
	seg, _, err := segio.ReadSegmentFile(dir, *ref)
	if err != nil {
		t.Fatal(err)
	}
	alien := kg.NodeID(g.NumNodes() + 5)
	seg.Docs[0].Candidates = append(seg.Docs[0].Candidates, alien)
	data := segio.EncodeSegment(seg)
	ref.CRC = crc32.ChecksumIEEE(data)
	if err := segio.WriteFileAtomic(dir, ref.File, data); err != nil {
		t.Fatal(err)
	}
	if err := segio.WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	victim := NewEngine(g, persistTestOptions())
	if err := victim.OpenSnapshot(dir, nil); !errors.Is(err, segio.ErrCorrupt) {
		t.Fatalf("out-of-graph candidate: err = %v, want ErrCorrupt", err)
	}
	if victim.state() != nil {
		t.Fatal("corrupt open installed state")
	}
}

// TestCheckpointRejectsForeignConnFile: a checkpoint into a directory
// previously saved by an engine with different content-determining
// options must not adopt that store's conn file — its walk values were
// computed under a different seed and would poison a later open.
func TestCheckpointRejectsForeignConnFile(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()
	foreign := NewEngine(g, Options{Seed: 99, Samples: 20})
	foreign.IndexCorpus(c)
	if err := foreign.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	fm, err := segio.ReadManifest(dir)
	if err != nil || fm.ConnFile == "" {
		t.Fatalf("foreign save: manifest=%+v err=%v", fm, err)
	}

	e := NewEngine(g, persistTestOptions()) // Seed 11: different content
	e.IndexCorpus(c)
	e.SetCheckpointDir(dir, nil)
	if _, err := e.Ingest(context.Background(), ingestBatch(t, 8500, 3)); err != nil {
		t.Fatal(err)
	}
	e.WaitMerges()
	m, err := segio.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.ConnFile != "" {
		t.Fatalf("checkpoint inherited foreign conn file %q", m.ConnFile)
	}
	// Same-options inheritance still works (covered structurally by
	// TestCheckpointSurvivesCrash; assert the meta comparison here).
	if !compatibleEngineMeta(e.engineMeta(), m.Engine) {
		t.Fatal("checkpoint manifest does not carry this engine's options")
	}
}

// TestFailedOpenLeavesNoConnEntries: a conn-memo file that passes its
// CRC but fails structural validation partway through must not leave
// any streamed entries behind in the engine-wide memo — the engine
// stays reusable after a failed open, and a later successful open
// must not silently serve values from the rejected file.
func TestFailedOpenLeavesNoConnEntries(t *testing.T) {
	g, _, c, _ := world(t)
	dir := t.TempDir()
	e := NewEngine(g, persistTestOptions())
	e.IndexCorpus(c)
	if err := e.SaveSnapshot(dir, nil); err != nil {
		t.Fatal(err)
	}
	m, err := segio.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.ConnFile == "" {
		t.Fatal("full save wrote no conn file")
	}
	// Unsorted keys: the header and CRC are valid, so entries stream to
	// the callback before the violation is detected. (The manifest does
	// not pin the conn file's CRC, so the overwrite reaches the decoder.)
	bad := segio.EncodeConn([]uint64{9, 3}, []float64{1, 2})
	if err := os.WriteFile(filepath.Join(dir, m.ConnFile), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	victim := NewEngine(g, persistTestOptions())
	if err := victim.OpenSnapshot(dir, nil); !errors.Is(err, segio.ErrCorrupt) {
		t.Fatalf("open with corrupt conn file: %v", err)
	}
	if victim.state() != nil {
		t.Fatal("corrupt open installed state")
	}
	if n := victim.connMemo.Len(); n != 0 {
		t.Fatalf("failed open leaked %d conn-memo entries", n)
	}
}
