package core

import (
	"sync"
	"time"

	"ncexplorer/internal/snapshot"
)

// Group-commit checkpoint writer. A committed batch's durability work —
// encoding the new segment, fsyncing it, swapping the manifest — used
// to run inside the commit section, so every ingest paid the disk round
// trip under ingestMu and the next batch could not even start
// committing until the previous one was on disk. The writer moves that
// work off the commit path:
//
//   - commits (ingest, merge, remote-stat refresh) capture a persistJob
//     under ingestMu — the committed state plus everything the writer
//     may not read later (directory, world meta, the rendered
//     standing-query state, so a batch persists atomically with the
//     alerts it fired) — and enqueue it;
//   - a single writer goroutine drains the queue. The queue holds at
//     most ONE job: a newer commit replaces a not-yet-started older
//     one, because the newer state strictly contains it — consecutive
//     commits coalesce into one segment-encode + manifest swap;
//   - completion is a monotone sequence watermark (done). Waiting for a
//     batch's durability is waiting for done to reach the sequence its
//     commit was assigned; a coalesced job's sequence is covered by the
//     newer write that subsumed it.
//
// Crash ordering is unchanged from the synchronous path: writeStore
// still writes segment files first and swaps the manifest last, and
// jobs reach the disk in commit (sequence) order — a stale job that
// lost a coalescing race or arrived after a newer synchronous write is
// skipped, never written over a newer manifest (the `written` watermark
// under writeMu enforces this).
//
// Lock order: ingestMu → gc.mu, and writeMu → gc.mu. The writer takes
// writeMu and gc.mu but never ingestMu, so commit-holders may block on
// the writer (SaveSnapshot drains the queue) without deadlock.

// persistJob is one enqueued checkpoint: the committed state to encode
// plus every input captured at commit time under ingestMu.
type persistJob struct {
	seq   uint64
	st    *genState
	dir   string
	world map[string]string
	// watch is the standing-query state rendered AT COMMIT TIME (nil
	// slice with hasWatch set means "encoder present, nothing to
	// persist"): the batch and the alerts it fired land in the same
	// manifest swap even though the write happens later.
	watch    []byte
	hasWatch bool
}

// groupCommit is the writer's shared state, embedded in Engine.
type groupCommit struct {
	mu      sync.Mutex
	cond    *sync.Cond // signalled on every completion; waiters watch done
	pending *persistJob
	running bool   // writer goroutine alive
	seq     uint64 // last sequence assigned to a commit (under mu)
	done    uint64 // highest sequence whose checkpoint attempt completed

	// waiters counts goroutines currently blocked in WaitPersisted /
	// drainPersist; waiterCh carries a non-blocking wakeup hint when one
	// registers. The writer's batching window yields to them: batching
	// trades ack latency for fewer fsync cycles, a trade only worth
	// making while nobody is blocked on the ack.
	waiters  int
	waiterCh chan struct{}

	// lineage records (under mu) which segments a background merge
	// folded into each merged segment that has not yet reached a
	// checkpoint. The writer substitutes the parents' already-durable
	// files for the merged segment (a delta checkpoint) instead of
	// re-encoding O(corpus) bytes after every merge; entries are purged
	// as soon as the writer has either resolved the merged segment to
	// delta refs or written it a real file. Only populated while a
	// checkpoint directory is configured, so disabled engines never pin
	// folded segments.
	lineage map[*snapshot.Segment][]*snapshot.Segment

	// writeMu serialises every disk write (checkpoints, saves, opens)
	// and guards the writer-side persist fields: segFiles, segDelta,
	// connFile, connEntries, connChecked, and the written watermark
	// below.
	writeMu sync.Mutex
	written uint64 // highest sequence actually written (under writeMu)
}

// addLineage records a merge fold for delta checkpoints. Callers hold
// ingestMu (commit side); the map itself is guarded by mu.
func (gc *groupCommit) addLineage(merged *snapshot.Segment, parents ...*snapshot.Segment) {
	gc.mu.Lock()
	if gc.lineage == nil {
		gc.lineage = make(map[*snapshot.Segment][]*snapshot.Segment)
	}
	gc.lineage[merged] = parents
	gc.mu.Unlock()
}

// parentsOf returns the recorded merge parents of seg, or nil.
func (gc *groupCommit) parentsOf(seg *snapshot.Segment) []*snapshot.Segment {
	gc.mu.Lock()
	parents := gc.lineage[seg]
	gc.mu.Unlock()
	return parents
}

// purgeLineage drops the lineage chain rooted at seg — called once a
// checkpoint has either cached seg's delta refs or written seg its own
// file: no future write needs the chain, and keeping it would pin the
// folded segments' memory. Chains are trees (a segment is folded into
// exactly one merged segment), so the recursion never revisits a node.
func (gc *groupCommit) purgeLineage(seg *snapshot.Segment) {
	gc.mu.Lock()
	gc.purgeLineageLocked(seg)
	gc.mu.Unlock()
}

func (gc *groupCommit) purgeLineageLocked(seg *snapshot.Segment) {
	parents, ok := gc.lineage[seg]
	if !ok {
		return
	}
	delete(gc.lineage, seg)
	for _, p := range parents {
		gc.purgeLineageLocked(p)
	}
}

// clearLineage drops every recorded fold — checkpointing was disabled.
func (gc *groupCommit) clearLineage() {
	gc.mu.Lock()
	gc.lineage = nil
	gc.mu.Unlock()
}

// complete marks a checkpoint attempt for seq as finished and wakes
// waiters. done only advances (max-guard): an older job finishing after
// a newer coalesced write must not regress the watermark.
func (gc *groupCommit) complete(seq uint64) {
	gc.mu.Lock()
	if seq > gc.done {
		gc.done = seq
	}
	gc.cond.Broadcast()
	gc.mu.Unlock()
}

// persistJobLocked assigns the next sequence and captures the job for
// the given committed state. Returns a nil job (sequence already
// completed) when no checkpoint directory is configured. ingestMu held.
func (e *Engine) persistJobLocked(st *genState) (*persistJob, uint64) {
	gc := &e.gc
	gc.mu.Lock()
	gc.seq++
	seq := gc.seq
	gc.mu.Unlock()
	dir := e.persist.checkpointDir
	if dir == "" {
		gc.complete(seq)
		return nil, seq
	}
	job := &persistJob{seq: seq, st: st, dir: dir, world: e.persist.world}
	if e.persist.watchEnc != nil {
		job.watch = e.persist.watchEnc()
		job.hasWatch = true
	}
	return job, seq
}

// enqueueCheckpointLocked hands the committed state to the group-commit
// writer and returns the sequence to wait on for durability. With
// SetSyncPersist(true) the write happens before returning instead (the
// pre-pipeline behavior). ingestMu held.
func (e *Engine) enqueueCheckpointLocked(st *genState) uint64 {
	job, seq := e.persistJobLocked(st)
	if job == nil {
		return seq
	}
	if e.syncPersist.Load() {
		e.writeCheckpoint(job)
		return seq
	}
	gc := &e.gc
	gc.mu.Lock()
	gc.pending = job // replaces any older not-yet-started job: coalesced
	if !gc.running {
		gc.running = true
		go e.persistLoop()
	}
	gc.mu.Unlock()
	return seq
}

// checkpointSyncLocked persists the committed state before returning —
// the path for callers whose contract is "durable when I return"
// (standing-query registration, remote-stat refresh). ingestMu held.
func (e *Engine) checkpointSyncLocked(st *genState) {
	if job, _ := e.persistJobLocked(st); job != nil {
		e.writeCheckpoint(job)
	}
}

// persistLoop drains the one-slot queue until it is empty, then exits;
// the next enqueue restarts it. Before each write it may hold the
// group-commit window open and adopt the newest pending job, so
// commits arriving within a window share one fsync cycle: writing the
// newer job advances the done watermark past every coalesced
// sequence, which is exactly what their waiters are blocked on. The
// window YIELDS to durability waiters — it opens only while no
// goroutine is blocked in WaitPersisted and closes the moment one
// registers — so batching never delays an ack someone is waiting for
// by more than the time it takes the hint to arrive.
func (e *Engine) persistLoop() {
	gc := &e.gc
	for {
		gc.mu.Lock()
		job := gc.pending
		gc.pending = nil
		if job == nil {
			gc.running = false
			gc.mu.Unlock()
			return
		}
		noWaiters := gc.waiters == 0
		// Drop a stale hint from a waiter that already unblocked, so it
		// cannot cut this window short.
		select {
		case <-gc.waiterCh:
		default:
		}
		gc.mu.Unlock()
		if w := e.opts.PersistWindow; w > 0 && noWaiters {
			t := time.NewTimer(w)
			select {
			case <-gc.waiterCh: // a waiter arrived: write now
				t.Stop()
			case <-t.C: // window expired
			}
			gc.mu.Lock()
			if gc.pending != nil && gc.pending.seq > job.seq {
				job = gc.pending
				gc.pending = nil
			}
			gc.mu.Unlock()
		}
		e.writeCheckpoint(job)
	}
}

// writeCheckpoint performs one checkpoint attempt. Failures never fail
// the commit that enqueued the job — the in-memory swap already
// happened — they are counted (CheckpointErrors) and the directory lags
// until a later attempt succeeds; the written watermark is not advanced
// on failure, so the next job retries the full write.
func (e *Engine) writeCheckpoint(j *persistJob) {
	gc := &e.gc
	gc.writeMu.Lock()
	if j.seq > gc.written {
		if err := e.writeStore(j.dir, j.st, false, j.world, j.watch, j.hasWatch); err != nil {
			e.persist.checkpointErrors.Add(1)
		} else {
			e.persist.checkpoints.Add(1)
			gc.written = j.seq
		}
	}
	gc.writeMu.Unlock()
	gc.complete(j.seq)
}

// WaitPersisted blocks until the checkpoint attempt covering persist
// sequence seq has completed — the durability barrier for one commit
// (IngestResult.PersistSeq). "Completed" means the manifest covering
// the commit is on disk, or the attempt failed and was counted, or no
// checkpoint directory was configured at commit time.
func (e *Engine) WaitPersisted(seq uint64) {
	e.gc.waitDone(seq)
}

// drainPersist waits for every checkpoint enqueued so far to complete.
func (e *Engine) drainPersist() {
	gc := &e.gc
	gc.mu.Lock()
	seq := gc.seq
	gc.mu.Unlock()
	gc.waitDone(seq)
}

// waitDone blocks until done reaches seq, registering as a durability
// waiter so an open batching window closes immediately (see
// persistLoop).
func (gc *groupCommit) waitDone(seq uint64) {
	gc.mu.Lock()
	if gc.done < seq {
		gc.waiters++
		select {
		case gc.waiterCh <- struct{}{}:
		default:
		}
		for gc.done < seq {
			gc.cond.Wait()
		}
		gc.waiters--
	}
	gc.mu.Unlock()
}

// SetSyncPersist toggles pipelined checkpointing off (true): every
// commit then blocks until its checkpoint attempt finished, restoring
// the pre-pipeline latency profile. Benchmarks use it to measure the
// overlap; deployments can set it via ncserver -ingest-pipeline=false.
func (e *Engine) SetSyncPersist(on bool) { e.syncPersist.Store(on) }
