package core

import (
	"context"
	"math"
	"slices"
	"sort"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/topk"
)

// ctxStride is how many per-document iterations run between context
// checks on the query paths (the pruned scan checks per block instead:
// a block is at most BlockSize documents of pure arithmetic).
const ctxStride = 64

// Generation pinning: every public query entry point loads the current
// genState exactly once and threads it through all per-document reads,
// plan lookups, and scorer borrows. A query therefore observes one
// snapshot generation end-to-end — an Ingest swapping mid-query can
// never hand it a half-old, half-new view.

// queryScratch is the pooled per-query workspace: the roll-up collector
// and page scratch, plus the dense per-node accumulators behind
// drill-down. Dense arrays are sized by the immutable graph, so the
// pool is engine-wide and a warmed entry serves any generation.
type queryScratch struct {
	// Roll-up state.
	coll    *topk.Keyed[int32]
	items   []topk.KeyedItem[int32]
	qplans  []*conceptPlan
	cursors []int

	// Drill-down dense per-concept accumulators, indexed by node ID and
	// validity-stamped so they never need clearing between queries.
	stamp   []uint32
	gen     uint32
	cov     []float64
	cnt     []int32
	pr      []int32
	head    []int32
	touched []kg.NodeID

	// mdDoc/mdNext form the shared matched-document pair log: head[c]
	// chains concept c's entries (most recent first) through mdNext.
	mdDoc  []int32
	mdNext []int32

	cand      []candScore
	shortVals []kg.NodeID
	subs      []Subtopic
	subColl   *topk.Collector[int32]
	subItems  []topk.Item[int32]
}

// candScore pairs a candidate subtopic with its cheap (pre-diversity)
// score for shortlist selection.
type candScore struct {
	c kg.NodeID
	s float64
}

// cmpCandScore orders candidates by (score desc, concept asc); concept
// IDs are unique, so the order is total and deterministic.
func cmpCandScore(a, b candScore) int {
	switch {
	case a.s > b.s:
		return -1
	case a.s < b.s:
		return 1
	case a.c < b.c:
		return -1
	case a.c > b.c:
		return 1
	}
	return 0
}

// selectTopCand partitions s so that its k first-by-cmpCandScore
// elements occupy s[:k] (in arbitrary internal order): a quickselect
// with median-of-three pivots, average O(len(s)). The order is total
// (concept IDs are unique), so the selected set is exact — sorting the
// prefix afterwards yields the same result as sorting all of s.
func selectTopCand(s []candScore, k int) {
	lo, hi := 0, len(s)
	for hi-lo > 1 {
		// Median of three as the pivot, placed at mid.
		mid := int(uint(lo+hi) >> 1)
		if cmpCandScore(s[mid], s[lo]) < 0 {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if cmpCandScore(s[hi-1], s[mid]) < 0 {
			s[hi-1], s[mid] = s[mid], s[hi-1]
			if cmpCandScore(s[mid], s[lo]) < 0 {
				s[mid], s[lo] = s[lo], s[mid]
			}
		}
		p := s[mid]
		i, j := lo, hi-1
		for i <= j {
			for cmpCandScore(s[i], p) < 0 {
				i++
			}
			for cmpCandScore(p, s[j]) < 0 {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		// s[lo:j+1] ≤ pivot region ≤ s[i:hi]; recurse into the side
		// holding the k-th boundary.
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return
		}
	}
}

func newQueryScratch(numNodes int) *queryScratch {
	return &queryScratch{
		stamp: make([]uint32, numNodes),
		cov:   make([]float64, numNodes),
		cnt:   make([]int32, numNodes),
		pr:    make([]int32, numNodes),
		head:  make([]int32, numNodes),
	}
}

// marks reserves two fresh stamp values (wrap-safe): stale entries are
// always strictly below both, so the arrays act as cleared without a
// clearing pass.
func (sc *queryScratch) marks() (uint32, uint32) {
	if sc.gen >= math.MaxUint32-2 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.gen = 0
	}
	sc.gen += 2
	return sc.gen - 1, sc.gen
}

// divScratch is the pooled per-worker diversity workspace: one dense
// stamp array used both as the direct-extent membership set and as the
// union deduplicator.
type divScratch struct {
	stamp []uint32
	gen   uint32
}

func (ds *divScratch) marks() (uint32, uint32) {
	if ds.gen >= math.MaxUint32-2 {
		for i := range ds.stamp {
			ds.stamp[i] = 0
		}
		ds.gen = 0
	}
	ds.gen += 2
	return ds.gen - 1, ds.gen
}

func (e *Engine) getScratch() *queryScratch   { return e.scratch.Get().(*queryScratch) }
func (e *Engine) putScratch(sc *queryScratch) { e.scratch.Put(sc) }

// conceptMatches returns the sorted document IDs matching concept c —
// documents containing at least one entity of c's extent closure
// (Definition 1 matching semantics). The list is precomputed in the
// generation's plan; the returned slice is shared and must not be
// modified.
func (st *genState) conceptMatches(c kg.NodeID) []int32 {
	return st.plan(c).docs
}

// matchedDocs intersects the per-concept match lists: a document
// matches Q iff it matches every concept in Q.
func (st *genState) matchedDocs(q Query) []int32 {
	docs, _ := st.matchedDocsCtx(context.Background(), q)
	return docs
}

// matchedDocsCtx is matchedDocs with cancellation checked between
// per-concept intersections.
func (st *genState) matchedDocsCtx(ctx context.Context, q Query) ([]int32, error) {
	if len(q) == 0 {
		return nil, nil
	}
	if len(q) == 1 {
		return st.conceptMatches(q[0]), nil
	}
	lists := make([][]int32, len(q))
	for i, c := range q {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lists[i] = st.conceptMatches(c)
		if len(lists[i]) == 0 {
			return nil, nil
		}
	}
	// Intersect starting from the shortest list.
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersectSorted(out, l)
		if len(out) == 0 {
			return nil, nil
		}
	}
	return out, nil
}

// containsConcept reports whether c is in the (typically tiny) direct
// concept list of an entity.
func containsConcept(s []kg.NodeID, c kg.NodeID) bool {
	for _, x := range s {
		if x == c {
			return true
		}
	}
	return false
}

// queryHas reports whether c is one of the (few) query concepts.
func queryHas(q Query, c kg.NodeID) bool {
	for _, x := range q {
		if x == c {
			return true
		}
	}
	return false
}

func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// cdr returns the cached or freshly computed cdr(c, d) with its pivot
// at this generation. For matching pairs the value lives in the
// concept's plan — the same score and pivot the old pre-seeded memo
// held, read directly so the swap path no longer pays to copy every
// planned pair into a map. The memoised compute path remains for
// non-matching pairs (delta evaluation probes arbitrary keys). The
// expensive connectivity factor comes from the engine-wide memo,
// seeded by (concept, doc) so values are independent of query order
// AND of which goroutine computes them — the determinism anchor of the
// lock-free query path.
func (st *genState) cdr(c kg.NodeID, doc int32) cdrEntry {
	p := st.plan(c)
	if idx := p.planIdx(doc); idx >= 0 {
		return cdrEntry{cdr: p.scores[idx], pivot: p.pivots[idx]}
	}
	ent, _ := st.cdrMemo.GetOrCompute(cdrKey(c, doc), func() cdrEntry {
		s := st.getScorer()
		defer st.putScorer(s)
		cdro, pivot := s.OntologyRel(c, doc)
		if cdro <= 0 {
			return cdrEntry{cdr: 0, pivot: pivot}
		}
		return cdrEntry{cdr: cdro * st.e.contextRel(s, c, doc), pivot: pivot}
	})
	return ent
}

// MatchedDocs returns all documents matching the concept pattern Q, in
// ascending document order. Safe for concurrent use.
func (e *Engine) MatchedDocs(q Query) []corpus.DocID {
	docs := e.state().matchedDocs(q)
	out := make([]corpus.DocID, len(docs))
	for i, d := range docs {
		out[i] = corpus.DocID(d)
	}
	return out
}

// RollUpOptions parameterises a paged roll-up. The zero value of every
// field except K means "no constraint": Offset 0 starts at the top,
// nil Sources admits every source, MinScore <= 0 disables the score
// floor.
type RollUpOptions struct {
	// K is the page size. K <= 0 yields an empty page (the facade
	// validates and rejects non-positive K before reaching the engine).
	K int
	// Offset skips the first Offset ranked results (pagination).
	Offset int
	// Sources restricts results to documents from these sources.
	Sources []corpus.Source
	// MinScore excludes documents with rel(Q, d) < MinScore when > 0.
	MinScore float64
	// Time restricts results to documents whose publication time falls
	// in the range (both ends inclusive). nil admits every time.
	Time *TimeRange
	// GroupBy additionally buckets every filter-passing match by its
	// publication period into RollUpPage.Periods. GroupNone disables.
	GroupBy GroupBy
}

// RollUpPage is one page of roll-up results plus the total number of
// matching documents that passed the filters — what a paginating
// client needs to compute the next offset — and the snapshot
// generation the whole page was served from.
type RollUpPage struct {
	Results    []DocResult
	Total      int
	Generation uint64
	// Periods holds the per-period match counts when GroupBy is set
	// (ascending period start; counts sum to Total), nil otherwise.
	Periods []PeriodBucket
}

// RollUp implements Definition 1: the top-K documents d matching Q with
// the highest rel(Q, d) = Σ_{c∈Q} cdr(c, d), each with its per-concept
// explanation.
func (e *Engine) RollUp(q Query, k int) []DocResult {
	page, _ := e.RollUpPage(context.Background(), q, RollUpOptions{K: k})
	return page.Results
}

// RollUpPage is RollUp with pagination, source/score filters, and
// cancellation. With Offset 0 and no filters the page contents are
// identical to RollUp(q, opts.K).
func (e *Engine) RollUpPage(ctx context.Context, q Query, opts RollUpOptions) (RollUpPage, error) {
	var page RollUpPage
	err := e.RollUpPageInto(ctx, q, opts, &page)
	return page, err
}

// RollUpPageInto is RollUpPage writing into a caller-owned page,
// reusing its Results and Contributors backing storage — the warm
// path allocates nothing. Single-concept queries run the block-max
// pruned scan over the generation's plan (see plan.go); multi-concept
// queries leapfrog-intersect the plans with scores summed at the
// cursors. Cancellation is observed per pruning block, every ctxStride
// intersection steps, and every ctxStride explanation fills; a ctx
// error empties the page.
func (e *Engine) RollUpPageInto(ctx context.Context, q Query, opts RollUpOptions, page *RollUpPage) error {
	st := e.state()
	page.Generation = st.snap.Generation
	page.Total = 0
	page.Results = page.Results[:0]
	page.Periods = nil
	if opts.K <= 0 || len(q) == 0 || opts.Offset < 0 {
		return nil
	}
	// Whole-snapshot time pruning: a window disjoint from every
	// segment's exact bounds cannot match anything — skip the plan and
	// ceiling machinery entirely.
	if opts.Time != nil && !opts.Time.overlapsSnapshot(st.snap) {
		return nil
	}
	sc := e.getScratch()
	defer e.putScratch(sc)

	qplans := sc.qplans[:0]
	minLen := 0
	for _, c := range q {
		p := st.plan(c)
		if len(p.docs) == 0 {
			sc.qplans = qplans
			return nil
		}
		qplans = append(qplans, p)
		if minLen == 0 || len(p.docs) < minLen {
			minLen = len(p.docs)
		}
	}
	sc.qplans = qplans

	// The collector needs K+Offset slots, but never more than there can
	// be matched documents — and Offset is caller-controlled, so capping
	// also stops a huge (or overflowing) offset from turning into a huge
	// allocation. The cap never changes results: a collector at least as
	// large as the push count retains everything.
	limit := opts.K + opts.Offset
	if limit < 0 || limit > minLen {
		limit = minLen
	}
	if sc.coll == nil {
		sc.coll = topk.NewKeyed[int32](limit)
	} else {
		sc.coll.Reset(limit)
	}
	var allowed []corpus.Source
	if len(opts.Sources) > 0 {
		allowed = opts.Sources
	}

	periods := newPeriodAcc(opts.GroupBy)
	var total int
	var err error
	if len(qplans) == 1 {
		st.ensureCeilings(q[0], qplans[0])
		total, err = scanPlanPruned(ctx, qplans[0], st, allowed, opts.MinScore, opts.Time, periods, sc.coll)
	} else {
		cursors := sc.cursors[:0]
		for range qplans {
			cursors = append(cursors, 0)
		}
		sc.cursors = cursors
		total, err = scanMergedPlans(ctx, qplans, cursors, st, allowed, opts.MinScore, opts.Time, periods, sc.coll)
	}
	if err != nil {
		return err
	}
	page.Total = total
	page.Periods = periods.buckets()

	sc.items = sc.coll.AppendSorted(sc.items[:0])
	items := sc.items
	if opts.Offset >= len(items) {
		return nil
	}
	items = items[opts.Offset:]
	// Re-extend through the capacity (not by appending zero values, which
	// would wipe the Contributors backing arrays retained in the spare
	// slots) so a warm page reuses every previous allocation.
	if n := len(items); cap(page.Results) >= n {
		page.Results = page.Results[:n]
	} else {
		page.Results = append(page.Results[:cap(page.Results)], make([]DocResult, n-cap(page.Results))...)
	}
	for i, it := range items {
		if i%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				page.Total = 0
				page.Results = page.Results[:0]
				return err
			}
		}
		res := &page.Results[i]
		res.Doc = corpus.DocID(it.Value)
		res.Score = it.Score
		res.Contributors = res.Contributors[:0]
		for _, c := range q {
			p := st.plan(c)
			idx := p.planIdx(it.Value)
			res.Contributors = append(res.Contributors, ConceptContribution{
				Concept: c, CDR: p.scores[idx], Pivot: p.pivots[idx],
			})
		}
	}
	return nil
}

// rollUpPageExhaustive is the pre-planner roll-up: score every matched
// document in ascending ID order through the memoised cdr path into a
// sequential collector. Kept as the equivalence oracle for the pruned
// scan — property tests require RollUpPage to reproduce its pages
// byte-for-byte at every generation, offset, and filter combination.
// Not used by the serving path.
func (e *Engine) rollUpPageExhaustive(ctx context.Context, q Query, opts RollUpOptions) (RollUpPage, error) {
	st := e.state()
	out := RollUpPage{Generation: st.snap.Generation}
	if opts.K <= 0 || len(q) == 0 || opts.Offset < 0 {
		return out, nil
	}
	docs, err := st.matchedDocsCtx(ctx, q)
	if err != nil {
		return out, err
	}
	if len(docs) == 0 {
		return out, nil
	}
	var allowed map[corpus.Source]bool
	if len(opts.Sources) > 0 {
		allowed = make(map[corpus.Source]bool, len(opts.Sources))
		for _, s := range opts.Sources {
			allowed[s] = true
		}
	}
	periods := newPeriodAcc(opts.GroupBy)
	total := 0
	limit := opts.K + opts.Offset
	if limit < 0 || limit > len(docs) {
		limit = len(docs)
	}
	coll := topk.New[int32](limit)
	for i, d := range docs {
		if i%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return RollUpPage{Generation: st.snap.Generation}, err
			}
		}
		if allowed != nil && !allowed[st.snap.Doc(d).Source] {
			continue
		}
		var ts int64
		if opts.Time != nil || periods != nil {
			ts = st.snap.Doc(d).PublishedAt
			if opts.Time != nil && !opts.Time.contains(ts) {
				continue
			}
		}
		rel := 0.0
		for _, c := range q {
			rel += st.cdr(c, d).cdr
		}
		if opts.MinScore > 0 && rel < opts.MinScore {
			continue
		}
		total++
		if periods != nil {
			periods.add(ts)
		}
		coll.Push(d, rel)
	}
	items := coll.Sorted()
	out.Total = total
	out.Periods = periods.buckets()
	if opts.Offset >= len(items) {
		return out, nil
	}
	items = items[opts.Offset:]
	out.Results = make([]DocResult, len(items))
	for i, it := range items {
		res := DocResult{Doc: corpus.DocID(it.Value), Score: it.Score}
		for _, c := range q {
			ent := st.cdr(c, it.Value)
			res.Contributors = append(res.Contributors, ConceptContribution{
				Concept: c, CDR: ent.cdr, Pivot: ent.pivot,
			})
		}
		out.Results[i] = res
	}
	return out, nil
}

// DrillDownOptions parameterises a paged drill-down. The negated
// component toggles keep the zero value equal to the paper's full
// scoring (C·S·D).
type DrillDownOptions struct {
	// K is the page size. K <= 0 yields an empty page.
	K int
	// Offset skips the first Offset ranked suggestions (pagination).
	// The ranking is computed over a shortlist of max(128, K)
	// candidates independent of Offset, so pages of a fixed-K listing
	// are mutually consistent; offsets past the shortlist return
	// empty pages.
	Offset int
	// MinScore excludes suggestions scoring below it when > 0.
	MinScore float64
	// NoSpecificity / NoDiversity disable the corresponding score
	// factors — the Fig. 8 ablation (C, C+S, C+S+D).
	NoSpecificity bool
	NoDiversity   bool
	// Time restricts the matched-document set feeding coverage,
	// specificity pivots, and diversity to documents published inside
	// the range (both ends inclusive). nil admits every time.
	Time *TimeRange
}

// DrillDownPage is one page of subtopic suggestions plus the number
// of rankable suggestions behind the cursor: the scored shortlist
// size (so offset+k can actually reach every counted entry), reduced
// to the entries at or above MinScore when a floor is set. Generation
// is the snapshot the page was served from.
type DrillDownPage struct {
	Results    []Subtopic
	Total      int
	Generation uint64
}

// DrillDown implements Definition 2: the top-K subtopics c for Q by
// sbr(c, Q) = coverage(c, Q) · specificity(c) · diversity(c, Q).
func (e *Engine) DrillDown(q Query, k int) []Subtopic {
	page, _ := e.DrillDownPage(context.Background(), q, DrillDownOptions{K: k})
	return page.Results
}

// DrillDownComponents is DrillDown with the specificity and diversity
// factors individually switchable — the Fig. 8 ablation (C, C+S,
// C+S+D).
func (e *Engine) DrillDownComponents(q Query, k int, useSpecificity, useDiversity bool) []Subtopic {
	page, _ := e.DrillDownPage(context.Background(), q, DrillDownOptions{
		K: k, NoSpecificity: !useSpecificity, NoDiversity: !useDiversity,
	})
	return page.Results
}

// DrillDownPage is DrillDown with pagination, a score floor, the
// ablation toggles, and cancellation: the parallel diversity loop
// stops claiming shortlist entries once ctx is cancelled, and the ctx
// error is returned. With Offset 0 and the zero options the page
// contents are identical to DrillDown(q, opts.K).
//
// The candidate accumulation runs on the pooled dense scratch
// (stamp-validated per-node arrays) instead of maps; iteration and
// accumulation order — documents ascending, then candidates by node
// ID — is identical to the former map implementation, so scores and
// tie-breaking are unchanged.
func (e *Engine) DrillDownPage(ctx context.Context, q Query, opts DrillDownOptions) (DrillDownPage, error) {
	st := e.state()
	empty := DrillDownPage{Generation: st.snap.Generation}
	useSpecificity, useDiversity := !opts.NoSpecificity, !opts.NoDiversity
	k := opts.K
	if k <= 0 || len(q) == 0 || opts.Offset < 0 {
		return empty, nil
	}
	if opts.Time != nil && !opts.Time.overlapsSnapshot(st.snap) {
		return empty, nil
	}
	docs, err := st.matchedDocsCtx(ctx, q)
	if err != nil {
		return empty, err
	}
	if len(docs) == 0 {
		return empty, nil
	}
	sc := e.getScratch()
	defer e.putScratch(sc)
	covMark, _ := sc.marks()
	spec := e.g.SpecTable()

	// Coverage from the snapshot's candidate postings: candidates are
	// the direct Ψ⁻¹ concepts of document entities (plus ancestor
	// levels), exactly the paper's candidate subtopic set. The same pass
	// accumulates each candidate's entity probe total (diversity's
	// strategy pivot and the pruning bound) and chains its matched
	// documents through a shared pair log (head/next intrusive lists),
	// so no second documents×candidates walk is ever needed.
	touched := sc.touched[:0]
	mdDoc, mdNext := sc.mdDoc[:0], sc.mdNext[:0]
	for _, d := range docs {
		if opts.Time != nil && !opts.Time.contains(st.snap.Doc(d).PublishedAt) {
			continue
		}
		ne := int32(len(st.ents[d]))
		for _, cs := range st.docConcepts(d) {
			c := cs.Concept
			if queryHas(q, c) {
				continue
			}
			if sc.stamp[c] != covMark {
				sc.stamp[c] = covMark
				sc.cov[c] = 0
				sc.cnt[c] = 0
				sc.pr[c] = 0
				sc.head[c] = -1
				touched = append(touched, c)
			}
			sc.cov[c] += cs.CDR
			sc.cnt[c]++
			sc.pr[c] += ne
			mdDoc = append(mdDoc, d)
			mdNext = append(mdNext, sc.head[c])
			sc.head[c] = int32(len(mdDoc) - 1)
		}
	}
	sc.touched, sc.mdDoc, sc.mdNext = touched, mdDoc, mdNext
	if len(touched) == 0 {
		return empty, nil
	}

	// Shortlist by the cheap components before paying for diversity.
	// The window is max(128, K), deliberately independent of Offset:
	// every page of a fixed-K listing re-ranks the *same* shortlist, so
	// stitched pages can never duplicate or skip a suggestion (a window
	// that grew with the offset would re-rank a larger candidate set on
	// deeper pages and shift ranks across the boundary). Pagination
	// therefore ends at the scored window — Total reports the rankable
	// count, and the cursor goes -1 there — rather than pretending the
	// cheap-score tail beyond it is ranked.
	shortlistSize := 128
	if k > shortlistSize {
		shortlistSize = k
	}
	if shortlistSize > len(touched) {
		shortlistSize = len(touched)
	}
	// Shortlist selection: quickselect the top window by (cheap score
	// desc, concept asc) — concept IDs are unique, so the order is total
	// — then sort only the window. The selected set and its order are
	// exactly the former bounded heap's deterministic (score,
	// earliest-push) output, without sorting the full candidate list.
	cand := sc.cand[:0]
	for _, c := range touched {
		s := sc.cov[c]
		if useSpecificity {
			s *= spec[c]
		}
		cand = append(cand, candScore{c: c, s: s})
	}
	sc.cand = cand
	if len(cand) > shortlistSize {
		selectTopCand(cand, shortlistSize)
		cand = cand[:shortlistSize]
	}
	slices.SortFunc(cand, cmpCandScore)
	short := sc.shortVals[:0]
	for _, cs := range cand {
		short = append(short, cs.c)
	}
	sc.shortVals = short

	// Score the shortlist: each concept's diversity computation is
	// independent (reads only the immutable snapshot and the pair log),
	// and results land in a per-index slot, so the final Push order —
	// and with it tie-breaking — is identical to a serial loop. The
	// matched-document chain yields documents in reverse order; the
	// union cardinality and probe totals it feeds are order-independent.
	for len(sc.subs) < len(short) {
		sc.subs = append(sc.subs, Subtopic{})
	}
	subs := sc.subs[:len(short)]
	scoreWith := func(i int, ds *divScratch) {
		c := short[i]
		sub := Subtopic{
			Concept:     c,
			Coverage:    sc.cov[c],
			Specificity: spec[c],
			MatchedDocs: int(sc.cnt[c]),
		}
		// diversity(c, Q) = |∪_{d∈D(Q)} ME(c, d)| / |D(Q ∪ {c})| with
		// ME over the *direct* extent Ψ(c), exactly as Definition 2
		// states. The direct extent matters: an umbrella concept whose
		// members are only inherited from descendants contributes no
		// direct matches and scores zero diversity, while a concept
		// matching through one popular entity is pushed down — the
		// fairness bias the paper designed this factor to prevent.
		//
		// Membership "v ∈ Ψ(c)": Ψ is stored both ways in the graph, so
		// v ∈ Extent(c) ⟺ c ∈ ConceptsOf(v). When the probe count is
		// large enough to amortise it, premark the direct extent in the
		// pooled dense stamp and count the union with O(1) probes; for
		// sparsely-matched concepts with big extents the scan side is
		// cheaper (|ConceptsOf(v)| is typically a handful). Both sides
		// compute the identical union; the stamp array doubles as the
		// across-document deduplicator either way.
		probes := int(sc.pr[c])
		ext := e.g.Extent(c)
		seen, counted := ds.marks()
		union := 0
		if probes >= len(ext) {
			for _, v := range ext {
				ds.stamp[v] = seen
			}
			for j := sc.head[c]; j >= 0; j = sc.mdNext[j] {
				for _, v := range st.ents[sc.mdDoc[j]] {
					if ds.stamp[v] == seen {
						ds.stamp[v] = counted
						union++
					}
				}
			}
		} else {
			for j := sc.head[c]; j >= 0; j = sc.mdNext[j] {
				for _, v := range st.ents[sc.mdDoc[j]] {
					if ds.stamp[v] == seen || ds.stamp[v] == counted {
						continue
					}
					if containsConcept(e.g.ConceptsOf(v), c) {
						ds.stamp[v] = counted
						union++
					} else {
						ds.stamp[v] = seen
					}
				}
			}
		}
		if n := int(sc.cnt[c]); n > 0 {
			sub.Diversity = float64(union) / float64(n)
		}
		score := sub.Coverage
		if useSpecificity {
			score *= sub.Specificity
		}
		if useDiversity {
			score *= sub.Diversity
		}
		sub.Score = score
		subs[i] = sub
	}
	scoreOne := func(i int) {
		ds := e.divPool.Get().(*divScratch)
		scoreWith(i, ds)
		e.divPool.Put(ds)
	}

	limit := k + opts.Offset
	if limit < 0 || limit > len(subs) {
		limit = len(subs)
	}
	// The collector ranks shortlist indexes, not Subtopic values: heap
	// swaps then move 16 bytes instead of a full Subtopic, and the push
	// order — hence tie-breaking — is exactly the same.
	if sc.subColl == nil {
		sc.subColl = topk.New[int32](limit)
	} else {
		sc.subColl.Reset(limit)
	}
	coll := sc.subColl
	var total int
	if opts.MinScore > 0 {
		// The floor's Total counts every shortlist entry at or above it,
		// so all scores are needed: compute the whole window in parallel.
		if err := e.queryParallelCtx(ctx, len(short), scoreOne); err != nil {
			return empty, err
		}
		for i, sub := range subs {
			if sub.Score < opts.MinScore {
				continue
			}
			total++
			coll.Push(int32(i), sub.Score)
		}
	} else {
		// Upper-bound pruning over the shortlist tail: the first `limit`
		// entries always seed the collector, so score them (in parallel
		// when the window is worth it) and push in order. Every later
		// entry first gets a cheap bound — coverage (× specificity) ×
		// min(|Ψ(c)|, entity probes)/|D| — that dominates its real score
		// (the diversity union is capped by both the direct extent and
		// the probe count, and fp multiplication is monotone). A full
		// collector rejects later pushes at scores equal to its
		// threshold (ties favour earlier pushes), so entries with bound
		// ≤ threshold are skipped without computing their diversity
		// union: the retained set and order are provably unchanged.
		total = len(subs)
		ds := e.divPool.Get().(*divScratch)
		if limit >= 64 {
			if err := e.queryParallelCtx(ctx, limit, scoreOne); err != nil {
				e.divPool.Put(ds)
				return empty, err
			}
		} else {
			for i := 0; i < limit; i++ {
				scoreWith(i, ds)
			}
		}
		for i := 0; i < limit; i++ {
			coll.Push(int32(i), subs[i].Score)
		}
		// The tail walk is strictly serial, so one diversity scratch
		// serves every surviving entry.
		for i := limit; i < len(short); i++ {
			if (i-limit)%ctxStride == 0 {
				if err := ctx.Err(); err != nil {
					e.divPool.Put(ds)
					return empty, err
				}
			}
			if th, full := coll.Threshold(); full {
				c := short[i]
				ub := sc.cov[c]
				if useSpecificity {
					ub *= spec[c]
				}
				if useDiversity {
					if n := int(sc.cnt[c]); n == 0 {
						ub = 0
					} else {
						bound := len(e.g.Extent(c))
						if p := int(sc.pr[c]); p < bound {
							bound = p
						}
						ub *= float64(bound) / float64(n)
					}
				}
				if ub <= th {
					continue
				}
			}
			scoreWith(i, ds)
			coll.Push(int32(i), subs[i].Score)
		}
		e.divPool.Put(ds)
	}
	sc.subItems = coll.AppendSorted(sc.subItems[:0])
	items := sc.subItems
	page := DrillDownPage{Total: total, Generation: st.snap.Generation}
	if opts.Offset >= len(items) {
		return page, nil
	}
	items = items[opts.Offset:]
	page.Results = make([]Subtopic, len(items))
	for i, it := range items {
		page.Results[i] = subs[it.Value]
	}
	return page, nil
}

// BroaderOptions lists the roll-up targets of a concept: its `broader`
// parents (what the UI offers when the user generalises a term).
func (e *Engine) BroaderOptions(c kg.NodeID) []kg.NodeID {
	return e.g.Broader(c)
}

// ConceptsForEntity lists the concepts an entity can be replaced with
// when forming a concept-pattern query, most specific first.
func (e *Engine) ConceptsForEntity(v kg.NodeID) []kg.NodeID {
	concepts := append([]kg.NodeID(nil), e.g.ConceptsOf(v)...)
	sort.Slice(concepts, func(i, j int) bool {
		si, sj := e.g.Specificity(concepts[i]), e.g.Specificity(concepts[j])
		if si != sj {
			return si > sj
		}
		return concepts[i] < concepts[j]
	})
	return concepts
}

// TopicKeywords amplifies a topic into a retrieval keyword list: the
// names of the topic's most connected extent entities (what the paper
// calls "curating a list of relevant keywords for retrieval").
func (e *Engine) TopicKeywords(c kg.NodeID, n int) []string {
	st := e.state()
	s := st.getScorer()
	ext, _ := s.Extent(c)
	st.putScorer(s)
	if n <= 0 || len(ext) == 0 {
		return nil
	}
	coll := topk.New[kg.NodeID](n)
	for _, v := range ext {
		coll.Push(v, float64(e.g.InstanceDegree(v)))
	}
	var out []string
	for _, v := range coll.Values() {
		out = append(out, e.g.Name(v))
	}
	return out
}
