package core

import (
	"context"
	"sort"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
	"ncexplorer/internal/topk"
)

// ctxStride is how many per-document scoring iterations run between
// context checks on the roll-up path. Each iteration may pay for a
// memo-miss cdr computation (random-walk sampling), so a cancelled
// query stops within one stride of scoring work rather than draining
// the whole matched set.
const ctxStride = 64

// Generation pinning: every public query entry point loads the current
// genState exactly once and threads it through all per-document reads,
// memo lookups, and scorer borrows. A query therefore observes one
// snapshot generation end-to-end — an Ingest swapping mid-query can
// never hand it a half-old, half-new view — and its memo fills land in
// that generation's maps, warming them for queries pinned to the same
// snapshot.

// conceptMatches returns the sorted document IDs matching concept c —
// documents containing at least one entity of c's extent closure
// (Definition 1 matching semantics). Memoised in the generation's
// sharded match map; concurrent misses on the same concept compute
// once. The returned slice is shared and must not be modified.
func (st *genState) conceptMatches(c kg.NodeID) []int32 {
	docs, _ := st.matchMemo.GetOrCompute(c, func() []int32 {
		s := st.getScorer()
		defer st.putScorer(s)
		ext, _ := s.Extent(c)
		var docs []int32
		seen := make(map[int32]struct{})
		for _, v := range ext {
			st.snap.EntityDocs(v, func(list []int32) {
				for _, d := range list {
					if _, ok := seen[d]; !ok {
						seen[d] = struct{}{}
						docs = append(docs, d)
					}
				}
			})
		}
		sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
		return docs
	})
	return docs
}

// matchedDocs intersects the per-concept match lists: a document
// matches Q iff it matches every concept in Q.
func (st *genState) matchedDocs(q Query) []int32 {
	docs, _ := st.matchedDocsCtx(context.Background(), q)
	return docs
}

// matchedDocsCtx is matchedDocs with cancellation checked before each
// per-concept match-list computation (a cold concept can require a
// full extent-closure walk over the postings).
func (st *genState) matchedDocsCtx(ctx context.Context, q Query) ([]int32, error) {
	if len(q) == 0 {
		return nil, nil
	}
	lists := make([][]int32, len(q))
	for i, c := range q {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lists[i] = st.conceptMatches(c)
		if len(lists[i]) == 0 {
			return nil, nil
		}
	}
	// Intersect starting from the shortest list.
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersectSorted(out, l)
		if len(out) == 0 {
			return nil, nil
		}
	}
	return out, nil
}

// containsConcept reports whether c is in the (typically tiny) direct
// concept list of an entity.
func containsConcept(s []kg.NodeID, c kg.NodeID) bool {
	for _, x := range s {
		if x == c {
			return true
		}
	}
	return false
}

func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// cdr returns the cached or freshly computed cdr(c, d) with its pivot
// at this generation. The full value is memoised per generation (its
// ontology factor depends on corpus-global statistics); the expensive
// connectivity factor comes from the engine-wide memo, seeded by
// (concept, doc) so values are independent of query order AND of which
// goroutine computes them — the determinism anchor of the lock-free
// query path. Concurrent misses on the same key coalesce into one
// scorer call.
func (st *genState) cdr(c kg.NodeID, doc int32) cdrEntry {
	ent, _ := st.cdrMemo.GetOrCompute(cdrKey(c, doc), func() cdrEntry {
		s := st.getScorer()
		defer st.putScorer(s)
		cdro, pivot := s.OntologyRel(c, doc)
		if cdro <= 0 {
			return cdrEntry{cdr: 0, pivot: pivot}
		}
		return cdrEntry{cdr: cdro * st.e.contextRel(s, c, doc), pivot: pivot}
	})
	return ent
}

// MatchedDocs returns all documents matching the concept pattern Q, in
// ascending document order. Safe for concurrent use.
func (e *Engine) MatchedDocs(q Query) []corpus.DocID {
	docs := e.state().matchedDocs(q)
	out := make([]corpus.DocID, len(docs))
	for i, d := range docs {
		out[i] = corpus.DocID(d)
	}
	return out
}

// RollUpOptions parameterises a paged roll-up. The zero value of every
// field except K means "no constraint": Offset 0 starts at the top,
// nil Sources admits every source, MinScore <= 0 disables the score
// floor.
type RollUpOptions struct {
	// K is the page size. K <= 0 yields an empty page (the facade
	// validates and rejects non-positive K before reaching the engine).
	K int
	// Offset skips the first Offset ranked results (pagination).
	Offset int
	// Sources restricts results to documents from these sources.
	Sources []corpus.Source
	// MinScore excludes documents with rel(Q, d) < MinScore when > 0.
	MinScore float64
}

// RollUpPage is one page of roll-up results plus the total number of
// matching documents that passed the filters — what a paginating
// client needs to compute the next offset — and the snapshot
// generation the whole page was served from.
type RollUpPage struct {
	Results    []DocResult
	Total      int
	Generation uint64
}

// RollUp implements Definition 1: the top-K documents d matching Q with
// the highest rel(Q, d) = Σ_{c∈Q} cdr(c, d), each with its per-concept
// explanation.
func (e *Engine) RollUp(q Query, k int) []DocResult {
	page, _ := e.RollUpPage(context.Background(), q, RollUpOptions{K: k})
	return page.Results
}

// RollUpPage is RollUp with pagination, source/score filters, and
// cancellation: the scoring loop observes ctx every ctxStride
// documents (memo-miss cdr computations are the expensive step), and
// a ctx error is returned as soon as it is seen. With Offset 0 and no
// filters the page contents are identical to RollUp(q, opts.K).
func (e *Engine) RollUpPage(ctx context.Context, q Query, opts RollUpOptions) (RollUpPage, error) {
	st := e.state()
	out := RollUpPage{Generation: st.snap.Generation}
	if opts.K <= 0 || len(q) == 0 || opts.Offset < 0 {
		return out, nil
	}
	docs, err := st.matchedDocsCtx(ctx, q)
	if err != nil {
		return out, err
	}
	if len(docs) == 0 {
		return out, nil
	}
	var allowed map[corpus.Source]bool
	if len(opts.Sources) > 0 {
		allowed = make(map[corpus.Source]bool, len(opts.Sources))
		for _, s := range opts.Sources {
			allowed[s] = true
		}
	}
	total := 0
	// The collector needs K+Offset slots, but never more than there are
	// matched documents — and Offset is caller-controlled, so capping at
	// len(docs) also stops a huge (or overflowing) offset from turning
	// into a huge allocation. The cap never changes results: a collector
	// at least as large as the push count retains everything.
	limit := opts.K + opts.Offset
	if limit < 0 || limit > len(docs) {
		limit = len(docs)
	}
	coll := topk.New[int32](limit)
	for i, d := range docs {
		if i%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return RollUpPage{Generation: st.snap.Generation}, err
			}
		}
		if allowed != nil && !allowed[st.snap.Doc(d).Source] {
			continue
		}
		rel := 0.0
		for _, c := range q {
			rel += st.cdr(c, d).cdr
		}
		if opts.MinScore > 0 && rel < opts.MinScore {
			continue
		}
		total++
		coll.Push(d, rel)
	}
	items := coll.Sorted()
	out.Total = total
	if opts.Offset >= len(items) {
		return out, nil
	}
	items = items[opts.Offset:]
	out.Results = make([]DocResult, len(items))
	for i, it := range items {
		res := DocResult{Doc: corpus.DocID(it.Value), Score: it.Score}
		for _, c := range q {
			ent := st.cdr(c, it.Value)
			res.Contributors = append(res.Contributors, ConceptContribution{
				Concept: c, CDR: ent.cdr, Pivot: ent.pivot,
			})
		}
		out.Results[i] = res
	}
	return out, nil
}

// DrillDownOptions parameterises a paged drill-down. The negated
// component toggles keep the zero value equal to the paper's full
// scoring (C·S·D).
type DrillDownOptions struct {
	// K is the page size. K <= 0 yields an empty page.
	K int
	// Offset skips the first Offset ranked suggestions (pagination).
	// The ranking is computed over a shortlist of max(128, K)
	// candidates independent of Offset, so pages of a fixed-K listing
	// are mutually consistent; offsets past the shortlist return
	// empty pages.
	Offset int
	// MinScore excludes suggestions scoring below it when > 0.
	MinScore float64
	// NoSpecificity / NoDiversity disable the corresponding score
	// factors — the Fig. 8 ablation (C, C+S, C+S+D).
	NoSpecificity bool
	NoDiversity   bool
}

// DrillDownPage is one page of subtopic suggestions plus the number
// of rankable suggestions behind the cursor: the scored shortlist
// size (so offset+k can actually reach every counted entry), reduced
// to the entries at or above MinScore when a floor is set. Generation
// is the snapshot the page was served from.
type DrillDownPage struct {
	Results    []Subtopic
	Total      int
	Generation uint64
}

// DrillDown implements Definition 2: the top-K subtopics c for Q by
// sbr(c, Q) = coverage(c, Q) · specificity(c) · diversity(c, Q).
func (e *Engine) DrillDown(q Query, k int) []Subtopic {
	page, _ := e.DrillDownPage(context.Background(), q, DrillDownOptions{K: k})
	return page.Results
}

// DrillDownComponents is DrillDown with the specificity and diversity
// factors individually switchable — the Fig. 8 ablation (C, C+S,
// C+S+D).
func (e *Engine) DrillDownComponents(q Query, k int, useSpecificity, useDiversity bool) []Subtopic {
	page, _ := e.DrillDownPage(context.Background(), q, DrillDownOptions{
		K: k, NoSpecificity: !useSpecificity, NoDiversity: !useDiversity,
	})
	return page.Results
}

// DrillDownPage is DrillDown with pagination, a score floor, the
// ablation toggles, and cancellation: the parallel diversity loop
// stops claiming shortlist entries once ctx is cancelled, and the ctx
// error is returned. With Offset 0 and the zero options the page
// contents are identical to DrillDown(q, opts.K).
func (e *Engine) DrillDownPage(ctx context.Context, q Query, opts DrillDownOptions) (DrillDownPage, error) {
	st := e.state()
	empty := DrillDownPage{Generation: st.snap.Generation}
	useSpecificity, useDiversity := !opts.NoSpecificity, !opts.NoDiversity
	k := opts.K
	if k <= 0 || len(q) == 0 || opts.Offset < 0 {
		return empty, nil
	}
	docs, err := st.matchedDocsCtx(ctx, q)
	if err != nil {
		return empty, err
	}
	if len(docs) == 0 {
		return empty, nil
	}
	inQuery := make(map[kg.NodeID]struct{}, len(q))
	for _, c := range q {
		inQuery[c] = struct{}{}
	}

	// Coverage from the snapshot's candidate postings: candidates are
	// the direct Ψ⁻¹ concepts of document entities (plus ancestor
	// levels), exactly the paper's candidate subtopic set.
	coverage := make(map[kg.NodeID]float64)
	matched := make(map[kg.NodeID][]int32)
	for _, d := range docs {
		for _, cs := range st.concepts[d] {
			if _, skip := inQuery[cs.Concept]; skip {
				continue
			}
			coverage[cs.Concept] += cs.CDR
			matched[cs.Concept] = append(matched[cs.Concept], d)
		}
	}
	if len(coverage) == 0 {
		return empty, nil
	}

	// Shortlist by the cheap components before paying for diversity.
	// The window is max(128, K), deliberately independent of Offset:
	// every page of a fixed-K listing re-ranks the *same* shortlist, so
	// stitched pages can never duplicate or skip a suggestion (a window
	// that grew with the offset would re-rank a larger candidate set on
	// deeper pages and shift ranks across the boundary). Pagination
	// therefore ends at the scored window — Total reports the rankable
	// count, and the cursor goes -1 there — rather than pretending the
	// cheap-score tail beyond it is ranked.
	shortlistSize := 128
	if k > shortlistSize {
		shortlistSize = k
	}
	if shortlistSize > len(coverage) {
		shortlistSize = len(coverage)
	}
	shortlist := topk.New[kg.NodeID](shortlistSize)
	// Deterministic iteration order over candidates.
	cands := make([]kg.NodeID, 0, len(coverage))
	for c := range coverage {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, c := range cands {
		s := coverage[c]
		if useSpecificity {
			s *= e.g.Specificity(c)
		}
		shortlist.Push(c, s)
	}

	// Score the shortlist in parallel (bounded by the engine's
	// query-time helper budget): each concept's diversity computation
	// is independent (reads only the immutable snapshot and the
	// loop-local coverage/matched maps), and results land in a
	// per-index slot, so the final Push order — and with it
	// tie-breaking — is identical to the serial loop.
	short := shortlist.Values()
	subs := make([]Subtopic, len(short))
	err = e.queryParallelCtx(ctx, len(short), func(i int) {
		c := short[i]
		md := matched[c]
		sub := Subtopic{
			Concept:     c,
			Coverage:    coverage[c],
			Specificity: e.g.Specificity(c),
			MatchedDocs: len(md),
		}
		// diversity(c, Q) = |∪_{d∈D(Q)} ME(c, d)| / |D(Q ∪ {c})| with
		// ME over the *direct* extent Ψ(c), exactly as Definition 2
		// states. The direct extent matters: an umbrella concept whose
		// members are only inherited from descendants contributes no
		// direct matches and scores zero diversity, while a concept
		// matching through one popular entity is pushed down — the
		// fairness bias the paper designed this factor to prevent.
		//
		// Membership "v ∈ Ψ(c)": Ψ is stored both ways in the graph, so
		// v ∈ Extent(c) ⟺ c ∈ ConceptsOf(v). When the probe count is
		// large enough to amortise it, precompute a membership set of
		// the direct extent — replacing the former unconditional
		// O(docs × entities × |ConceptsOf(v)|) scan with O(|Ψ(c)|)
		// setup and O(1) probes. For sparsely-matched concepts with
		// big extents the scan side is cheaper (|ConceptsOf(v)| is
		// typically a handful), so the strategy is chosen per concept;
		// both sides compute the identical union.
		probes := 0
		for _, d := range md {
			probes += len(st.snap.Doc(d).Entities)
		}
		ext := e.g.Extent(c)
		union := make(map[kg.NodeID]struct{})
		if probes >= len(ext) {
			direct := make(map[kg.NodeID]struct{}, len(ext))
			for _, v := range ext {
				direct[v] = struct{}{}
			}
			for _, d := range md {
				for _, v := range st.snap.Doc(d).Entities {
					if _, ok := direct[v]; ok {
						union[v] = struct{}{}
					}
				}
			}
		} else {
			for _, d := range md {
				for _, v := range st.snap.Doc(d).Entities {
					if containsConcept(e.g.ConceptsOf(v), c) {
						union[v] = struct{}{}
					}
				}
			}
		}
		if n := len(md); n > 0 {
			sub.Diversity = float64(len(union)) / float64(n)
		}
		score := sub.Coverage
		if useSpecificity {
			score *= sub.Specificity
		}
		if useDiversity {
			score *= sub.Diversity
		}
		sub.Score = score
		subs[i] = sub
	})
	if err != nil {
		return empty, err
	}
	total := len(subs)
	if opts.MinScore > 0 {
		total = 0
	}
	limit := k + opts.Offset
	if limit < 0 || limit > len(subs) {
		limit = len(subs)
	}
	coll := topk.New[Subtopic](limit)
	for _, sub := range subs {
		if opts.MinScore > 0 {
			if sub.Score < opts.MinScore {
				continue
			}
			total++
		}
		coll.Push(sub, sub.Score)
	}
	items := coll.Sorted()
	page := DrillDownPage{Total: total, Generation: st.snap.Generation}
	if opts.Offset >= len(items) {
		return page, nil
	}
	items = items[opts.Offset:]
	page.Results = make([]Subtopic, len(items))
	for i, it := range items {
		page.Results[i] = it.Value
	}
	return page, nil
}

// BroaderOptions lists the roll-up targets of a concept: its `broader`
// parents (what the UI offers when the user generalises a term).
func (e *Engine) BroaderOptions(c kg.NodeID) []kg.NodeID {
	return e.g.Broader(c)
}

// ConceptsForEntity lists the concepts an entity can be replaced with
// when forming a concept-pattern query, most specific first.
func (e *Engine) ConceptsForEntity(v kg.NodeID) []kg.NodeID {
	concepts := append([]kg.NodeID(nil), e.g.ConceptsOf(v)...)
	sort.Slice(concepts, func(i, j int) bool {
		si, sj := e.g.Specificity(concepts[i]), e.g.Specificity(concepts[j])
		if si != sj {
			return si > sj
		}
		return concepts[i] < concepts[j]
	})
	return concepts
}

// TopicKeywords amplifies a topic into a retrieval keyword list: the
// names of the topic's most connected extent entities (what the paper
// calls "curating a list of relevant keywords for retrieval").
func (e *Engine) TopicKeywords(c kg.NodeID, n int) []string {
	st := e.state()
	s := st.getScorer()
	ext, _ := s.Extent(c)
	st.putScorer(s)
	if n <= 0 || len(ext) == 0 {
		return nil
	}
	coll := topk.New[kg.NodeID](n)
	for _, v := range ext {
		coll.Push(v, float64(e.g.InstanceDegree(v)))
	}
	var out []string
	for _, v := range coll.Values() {
		out = append(out, e.g.Name(v))
	}
	return out
}
