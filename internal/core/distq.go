package core

// Distributed exact querying: the scatter/gather surface a query
// router uses to answer over a sharded corpus (see shard.go for the
// sharding model) with pages byte-identical to a monolithic engine's.
//
// Roll-up distributes trivially: scores are per-document and already
// corpus-global on every shard (remote IDF statistics are folded in),
// so each shard returns its local top-(K+Offset) page and
// MergeRollUpPages k-way-merges them under the same (score desc, doc
// asc) total order the shards ranked by.
//
// Drill-down does not distribute per-document: coverage sums cdr
// contributions across *all* matched documents, and float addition is
// not associative — a router that summed per-shard coverages could
// diverge from the monolithic result in the last bits. So shards ship
// the raw accumulation input instead (DrillDownPartials: per matched
// document, its candidate concepts with their cdr values, in stored
// order), and MergeDrillDown replays the monolithic accumulation over
// the merged document stream in ascending global ID order — the exact
// float operation sequence a single engine would have executed. The
// diversity factor needs one more round trip: it counts distinct
// matched entities per shortlisted concept, a set union that cannot be
// derived from per-shard cardinalities, so the router fetches per-shard
// entity sets (DiversityPartials) for just the shortlist and dedupes
// across shards. Everything downstream — shortlist selection, score
// composition, tie-breaking, pagination — reuses the same helpers as
// DrillDownPage, so the merged page is byte-identical.

import (
	"context"
	"errors"
	"slices"

	"ncexplorer/internal/kg"
	"ncexplorer/internal/topk"
)

// ErrGenerationSkew marks a merge over shard partials that were served
// from different snapshot generations. Routers treat it as transient:
// re-fetch until every shard answers at the same generation.
var ErrGenerationSkew = errors.New("core: shard answers span different snapshot generations")

// cmpDocResult is the roll-up ranking order — (score desc, doc asc) —
// shared by every shard's collector and the router's merge. Document
// IDs are globally unique, so the order is total.
func cmpDocResult(a, b DocResult) int {
	switch {
	case a.Score > b.Score:
		return -1
	case a.Score < b.Score:
		return 1
	case a.Doc < b.Doc:
		return -1
	case a.Doc > b.Doc:
		return 1
	}
	return 0
}

// MergeRollUpPages merges per-shard roll-up pages into the global page
// for (k, offset). Every input page must have been produced at the
// same generation with K = k+offset, Offset = 0, and identical source
// and score filters; Total sums (shards partition the corpus, so
// filter-passing counts add), and the merged ranking is sliced like
// the monolithic page.
func MergeRollUpPages(pages []RollUpPage, k, offset int) (RollUpPage, error) {
	var out RollUpPage
	if len(pages) == 0 {
		return out, nil
	}
	out.Generation = pages[0].Generation
	lists := make([][]DocResult, 0, len(pages))
	for _, p := range pages {
		if p.Generation != out.Generation {
			return RollUpPage{}, ErrGenerationSkew
		}
		out.Total += p.Total
		if len(p.Results) > 0 {
			lists = append(lists, p.Results)
		}
	}
	if k <= 0 || offset < 0 {
		return out, nil
	}
	limit := k + offset
	if limit < 0 { // overflow of a huge caller offset
		limit = -1
	}
	merged := topk.MergeSorted(lists, cmpDocResult, limit)
	if offset >= len(merged) {
		return out, nil
	}
	merged = merged[offset:]
	if len(merged) > k {
		merged = merged[:k]
	}
	out.Results = merged
	return out, nil
}

// DrillDownRow is one matched document's contribution to the drill-down
// accumulation: its candidate concepts (the query's own concepts
// already filtered out) with their cdr values, in the engine's stored
// per-document order, plus the document's entity count (the |D(Q∪{c})|
// denominator input). Concepts and CDRs are parallel slices.
type DrillDownRow struct {
	Doc      int32       `json:"doc"`
	NumEnts  int32       `json:"num_ents"`
	Concepts []kg.NodeID `json:"concepts"`
	CDRs     []float64   `json:"cdrs"`
}

// DrillDownPartial is one shard's drill-down accumulation input: a row
// per matched document that has at least one candidate concept, in
// ascending global document order, pinned to the generation it was
// read from.
type DrillDownPartial struct {
	Generation uint64         `json:"generation"`
	Rows       []DrillDownRow `json:"rows,omitempty"`
}

// DrillDownPartials extracts this shard's accumulation input for query
// q — phase one of a distributed drill-down. The rows replay exactly
// the per-document walk DrillDownPage performs locally, including the
// same publication-time filter when tr is non-nil, so the merged page
// stays byte-identical to a monolithic time-filtered drill-down.
func (e *Engine) DrillDownPartials(ctx context.Context, q Query, tr *TimeRange) (DrillDownPartial, error) {
	st := e.state()
	out := DrillDownPartial{Generation: st.snap.Generation}
	if len(q) == 0 {
		return out, nil
	}
	if tr != nil && !tr.overlapsSnapshot(st.snap) {
		return out, nil
	}
	docs, err := st.matchedDocsCtx(ctx, q)
	if err != nil {
		return DrillDownPartial{Generation: st.snap.Generation}, err
	}
	for i, d := range docs {
		if i%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return DrillDownPartial{Generation: st.snap.Generation}, err
			}
		}
		if tr != nil && !tr.contains(st.snap.Doc(d).PublishedAt) {
			continue
		}
		row := DrillDownRow{Doc: d, NumEnts: int32(len(st.ents[d]))}
		for _, cs := range st.docConcepts(d) {
			if queryHas(q, cs.Concept) {
				continue
			}
			row.Concepts = append(row.Concepts, cs.Concept)
			row.CDRs = append(row.CDRs, cs.CDR)
		}
		if len(row.Concepts) > 0 {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// DiversityPartial is one shard's diversity input for a shortlist of
// concepts: per concept, the distinct entities of the shard's matched
// documents that lie in the concept's direct extent, ascending.
type DiversityPartial struct {
	Generation uint64        `json:"generation"`
	Sets       [][]kg.NodeID `json:"sets"`
}

// DiversityPartials computes this shard's diversity sets for query q
// and the given shortlist concepts — phase two of a distributed
// drill-down. Membership is against the *direct* extent Ψ(c), exactly
// as DrillDownPage counts it; the union across shards (deduplicated by
// the merger — sets from different shards may overlap) has the same
// cardinality a monolithic engine's union would. A non-nil tr
// restricts membership to documents inside the window, matching the
// coverage filter DrillDownPage applies locally.
func (e *Engine) DiversityPartials(ctx context.Context, q Query, concepts []kg.NodeID, tr *TimeRange) (DiversityPartial, error) {
	st := e.state()
	out := DiversityPartial{Generation: st.snap.Generation, Sets: make([][]kg.NodeID, len(concepts))}
	if len(q) == 0 || len(concepts) == 0 {
		return out, nil
	}
	if tr != nil && !tr.overlapsSnapshot(st.snap) {
		return out, nil
	}
	docs, err := st.matchedDocsCtx(ctx, q)
	if err != nil {
		return DiversityPartial{Generation: st.snap.Generation}, err
	}
	if tr != nil {
		kept := docs[:0:0]
		for _, d := range docs {
			if tr.contains(st.snap.Doc(d).PublishedAt) {
				kept = append(kept, d)
			}
		}
		docs = kept
	}
	ds := e.divPool.Get().(*divScratch)
	defer e.divPool.Put(ds)
	for i, c := range concepts {
		if err := ctx.Err(); err != nil {
			return DiversityPartial{Generation: st.snap.Generation}, err
		}
		seen, counted := ds.marks()
		for _, v := range e.g.Extent(c) {
			ds.stamp[v] = seen
		}
		var set []kg.NodeID
		for _, d := range docs {
			for _, v := range st.ents[d] {
				if ds.stamp[v] == seen {
					ds.stamp[v] = counted
					set = append(set, v)
				}
			}
		}
		slices.Sort(set)
		out.Sets[i] = set
	}
	return out, nil
}

// MergeDrillDown reproduces DrillDownPage over shard partials: it
// k-way-merges the rows into ascending global document order, replays
// the monolithic accumulation (same float operation sequence), selects
// and sorts the same max(128, K) shortlist, fetches diversity sets for
// exactly that shortlist via fetchSets (which must return one slice per
// requested concept — per-shard sets concatenated; duplicates across
// shards are deduplicated here), and pages the scored window with the
// same collector semantics. The graph must be the same one the shards
// were built on. Partials at differing generations yield
// ErrGenerationSkew.
func MergeDrillDown(g *kg.Graph, opts DrillDownOptions, parts []DrillDownPartial,
	fetchSets func(shortlist []kg.NodeID) ([][]kg.NodeID, error)) (DrillDownPage, error) {
	var page DrillDownPage
	if len(parts) == 0 {
		return page, nil
	}
	page.Generation = parts[0].Generation
	lists := make([][]DrillDownRow, 0, len(parts))
	for _, p := range parts {
		if p.Generation != page.Generation {
			return DrillDownPage{}, ErrGenerationSkew
		}
		if len(p.Rows) > 0 {
			lists = append(lists, p.Rows)
		}
	}
	useSpecificity, useDiversity := !opts.NoSpecificity, !opts.NoDiversity
	k := opts.K
	if k <= 0 || opts.Offset < 0 {
		return page, nil
	}
	rows := topk.MergeSorted(lists, func(a, b DrillDownRow) int {
		switch {
		case a.Doc < b.Doc:
			return -1
		case a.Doc > b.Doc:
			return 1
		}
		return 0
	}, -1)

	// Replay the accumulation: documents ascending, concepts in stored
	// per-document order — the exact float addition sequence
	// DrillDownPage executes over the monolithic snapshot.
	spec := g.SpecTable()
	cov := make([]float64, g.NumNodes())
	cnt := make([]int32, g.NumNodes())
	marked := make([]bool, g.NumNodes())
	var touched []kg.NodeID
	for _, row := range rows {
		for j, c := range row.Concepts {
			if !marked[c] {
				marked[c] = true
				touched = append(touched, c)
			}
			cov[c] += row.CDRs[j]
			cnt[c]++
		}
	}
	if len(touched) == 0 {
		return page, nil
	}

	// Shortlist identically to DrillDownPage: quickselect the top
	// max(128, K) by (cheap score desc, concept asc), then sort the
	// window.
	shortlistSize := 128
	if k > shortlistSize {
		shortlistSize = k
	}
	if shortlistSize > len(touched) {
		shortlistSize = len(touched)
	}
	cand := make([]candScore, 0, len(touched))
	for _, c := range touched {
		s := cov[c]
		if useSpecificity {
			s *= spec[c]
		}
		cand = append(cand, candScore{c: c, s: s})
	}
	if len(cand) > shortlistSize {
		selectTopCand(cand, shortlistSize)
		cand = cand[:shortlistSize]
	}
	slices.SortFunc(cand, cmpCandScore)
	short := make([]kg.NodeID, len(cand))
	for i, cs := range cand {
		short[i] = cs.c
	}

	sets, err := fetchSets(short)
	if err != nil {
		return DrillDownPage{}, err
	}
	subs := make([]Subtopic, len(short))
	distinct := make(map[kg.NodeID]struct{})
	for i, c := range short {
		clear(distinct)
		union := 0
		for _, v := range sets[i] {
			if _, ok := distinct[v]; !ok {
				distinct[v] = struct{}{}
				union++
			}
		}
		sub := Subtopic{
			Concept:     c,
			Coverage:    cov[c],
			Specificity: spec[c],
			MatchedDocs: int(cnt[c]),
		}
		if n := int(cnt[c]); n > 0 {
			sub.Diversity = float64(union) / float64(n)
		}
		score := sub.Coverage
		if useSpecificity {
			score *= sub.Specificity
		}
		if useDiversity {
			score *= sub.Diversity
		}
		sub.Score = score
		subs[i] = sub
	}

	// Page exactly like DrillDownPage: push every scored entry in
	// shortlist order (its pruning provably retains the same set), same
	// collector, same Total semantics, same offset slice.
	limit := k + opts.Offset
	if limit < 0 || limit > len(subs) {
		limit = len(subs)
	}
	coll := topk.New[int32](limit)
	var total int
	if opts.MinScore > 0 {
		for i, sub := range subs {
			if sub.Score < opts.MinScore {
				continue
			}
			total++
			coll.Push(int32(i), sub.Score)
		}
	} else {
		total = len(subs)
		for i := range subs {
			coll.Push(int32(i), subs[i].Score)
		}
	}
	items := coll.Sorted()
	page.Total = total
	if opts.Offset >= len(items) {
		return page, nil
	}
	items = items[opts.Offset:]
	page.Results = make([]Subtopic, len(items))
	for i, it := range items {
		page.Results[i] = subs[it.Value]
	}
	return page, nil
}
