package core

import (
	"context"
	"math"
	"testing"
	"time"

	"ncexplorer/internal/corpus"
	"ncexplorer/internal/kg"
)

// pageQuery returns a query with a healthy number of matches.
func pageQuery(t *testing.T) Query {
	_, meta, _, e := world(t)
	for _, topic := range meta.Topics {
		q := Query{topic.Concept}
		if len(e.MatchedDocs(q)) >= 8 {
			return q
		}
	}
	t.Skip("no topic with enough matches")
	return nil
}

// TestRollUpPageMatchesRollUp pins the compatibility contract: with
// offset 0 and no filters the paged API returns exactly RollUp's
// results, and Total counts every match.
func TestRollUpPageMatchesRollUp(t *testing.T) {
	_, _, _, e := world(t)
	q := pageQuery(t)
	legacy := e.RollUp(q, 5)
	page, err := e.RollUpPage(context.Background(), q, RollUpOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Results) != len(legacy) {
		t.Fatalf("paged %d results, legacy %d", len(page.Results), len(legacy))
	}
	for i := range legacy {
		if page.Results[i].Doc != legacy[i].Doc || page.Results[i].Score != legacy[i].Score {
			t.Fatalf("rank %d differs: paged %+v legacy %+v", i, page.Results[i], legacy[i])
		}
	}
	if want := len(e.MatchedDocs(q)); page.Total != want {
		t.Fatalf("total = %d; want %d matches", page.Total, want)
	}
}

// TestRollUpPageOffsets verifies stitched pages equal one big page.
func TestRollUpPageOffsets(t *testing.T) {
	_, _, _, e := world(t)
	q := pageQuery(t)
	ctx := context.Background()
	full, err := e.RollUpPage(ctx, q, RollUpOptions{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Results) < 4 {
		t.Skipf("only %d results", len(full.Results))
	}
	var stitched []DocResult
	for off := 0; off < len(full.Results); off += 2 {
		page, err := e.RollUpPage(ctx, q, RollUpOptions{K: 2, Offset: off})
		if err != nil {
			t.Fatal(err)
		}
		stitched = append(stitched, page.Results...)
	}
	stitched = stitched[:len(full.Results)]
	for i := range full.Results {
		if stitched[i].Doc != full.Results[i].Doc {
			t.Fatalf("stitched rank %d = doc %d; want %d", i, stitched[i].Doc, full.Results[i].Doc)
		}
	}
	// Past-the-end offset: empty page, total preserved.
	past, err := e.RollUpPage(ctx, q, RollUpOptions{K: 3, Offset: 1 << 20})
	if err != nil || len(past.Results) != 0 || past.Total != full.Total {
		t.Fatalf("past-the-end page = %+v err %v", past, err)
	}
	// A hostile offset must not translate into a huge (or, after
	// K+Offset overflows, negative) collector allocation.
	huge, err := e.RollUpPage(ctx, q, RollUpOptions{K: 3, Offset: math.MaxInt})
	if err != nil || len(huge.Results) != 0 || huge.Total != full.Total {
		t.Fatalf("overflowing offset page = %+v err %v", huge, err)
	}
	if _, err := e.DrillDownPage(ctx, q, DrillDownOptions{K: 3, Offset: math.MaxInt}); err != nil {
		t.Fatalf("overflowing drill-down offset: %v", err)
	}
	if _, err := e.DrillDownPage(ctx, q, DrillDownOptions{K: 3, Offset: 2_000_000_000}); err != nil {
		t.Fatalf("huge drill-down offset: %v", err)
	}
}

// TestRollUpPageFilters verifies the source and score filters.
func TestRollUpPageFilters(t *testing.T) {
	_, _, _, e := world(t)
	q := pageQuery(t)
	ctx := context.Background()
	full, _ := e.RollUpPage(ctx, q, RollUpOptions{K: 1 << 20})

	bySource := 0
	for _, src := range corpus.Sources {
		page, err := e.RollUpPage(ctx, q, RollUpOptions{K: 1 << 20, Sources: []corpus.Source{src}})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range page.Results {
			if e.DocSource(r.Doc) != src {
				t.Fatalf("source filter %v leaked doc from %v", src, e.DocSource(r.Doc))
			}
		}
		bySource += page.Total
	}
	if bySource != full.Total {
		t.Fatalf("per-source totals sum to %d; want %d", bySource, full.Total)
	}

	if len(full.Results) >= 2 {
		floor := full.Results[1].Score
		page, err := e.RollUpPage(ctx, q, RollUpOptions{K: 1 << 20, MinScore: floor})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range page.Results {
			if r.Score < floor {
				t.Fatalf("min-score %g leaked %g", floor, r.Score)
			}
		}
		if page.Total != len(page.Results) || page.Total >= full.Total {
			t.Fatalf("min-score total = %d (results %d, unfiltered %d)",
				page.Total, len(page.Results), full.Total)
		}
	}
}

// TestDrillDownPageMatchesDrillDown pins the paged/legacy equivalence
// for drill-down, including the ablation toggles.
func TestDrillDownPageMatchesDrillDown(t *testing.T) {
	_, _, _, e := world(t)
	q := pageQuery(t)
	ctx := context.Background()
	legacy := e.DrillDown(q, 5)
	page, err := e.DrillDownPage(ctx, q, DrillDownOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Results) != len(legacy) {
		t.Fatalf("paged %d, legacy %d", len(page.Results), len(legacy))
	}
	for i := range legacy {
		if page.Results[i] != legacy[i] {
			t.Fatalf("rank %d differs: %+v vs %+v", i, page.Results[i], legacy[i])
		}
	}
	if page.Total <= 0 {
		t.Fatalf("total = %d", page.Total)
	}
	// Offset pages continue the same ranking.
	if len(legacy) >= 4 {
		tail, err := e.DrillDownPage(ctx, q, DrillDownOptions{K: 2, Offset: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(tail.Results) == 0 || tail.Results[0] != legacy[2] {
			t.Fatalf("offset page head %+v; want %+v", tail.Results, legacy[2])
		}
	}
	// Ablation wrappers still agree with the paged toggles.
	abl := e.DrillDownComponents(q, 5, true, false)
	pageAbl, _ := e.DrillDownPage(ctx, q, DrillDownOptions{K: 5, NoDiversity: true})
	for i := range abl {
		if pageAbl.Results[i] != abl[i] {
			t.Fatalf("ablation rank %d differs", i)
		}
	}
}

// TestQueryCancellation verifies both paged operations return the ctx
// error without results once the context is cancelled.
func TestQueryCancellation(t *testing.T) {
	_, _, _, e := world(t)
	q := pageQuery(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RollUpPage(ctx, q, RollUpOptions{K: 5}); err != context.Canceled {
		t.Fatalf("rollup err = %v; want context.Canceled", err)
	}
	if _, err := e.DrillDownPage(ctx, q, DrillDownOptions{K: 5}); err != context.Canceled {
		t.Fatalf("drilldown err = %v; want context.Canceled", err)
	}
	// An expired deadline surfaces as DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := e.RollUpPage(dctx, q, RollUpOptions{K: 5}); err != context.DeadlineExceeded {
		t.Fatalf("deadline err = %v", err)
	}
}

// TestDrillDownPaginationConsistency pins the cursor contract: the
// scored window depends on K alone (never Offset), so stitching
// fixed-K pages reproduces the full ranking exactly, Total reports
// the rankable count, and offsets past the window return empty pages.
func TestDrillDownPaginationConsistency(t *testing.T) {
	_, _, _, e := world(t)
	q := pageQuery(t)
	ctx := context.Background()
	full, err := e.DrillDownPage(ctx, q, DrillDownOptions{K: 3, Offset: 0})
	if err != nil {
		t.Fatal(err)
	}
	if full.Total < len(full.Results) {
		t.Fatalf("total %d < returned %d", full.Total, len(full.Results))
	}
	// Walk the whole rankable listing in K=3 pages; the stitched walk
	// must be duplicate-free and Total long.
	seen := make(map[kg.NodeID]bool)
	count := 0
	for off := 0; off < full.Total; off += 3 {
		page, err := e.DrillDownPage(ctx, q, DrillDownOptions{K: 3, Offset: off})
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != full.Total {
			t.Fatalf("total changed across pages: %d vs %d", page.Total, full.Total)
		}
		for _, s := range page.Results {
			if seen[s.Concept] {
				t.Fatalf("concept %v appears on two pages", s.Concept)
			}
			seen[s.Concept] = true
			count++
		}
	}
	if count != full.Total {
		t.Fatalf("stitched %d suggestions; total says %d", count, full.Total)
	}
	// Past the window: empty page, stable total.
	past, err := e.DrillDownPage(ctx, q, DrillDownOptions{K: 3, Offset: full.Total})
	if err != nil || len(past.Results) != 0 || past.Total != full.Total {
		t.Fatalf("past-window page = %+v err %v", past, err)
	}
}
