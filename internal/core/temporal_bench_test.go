package core

import (
	"context"
	"math"
	"testing"
)

// docTimeBounds scans the engine's snapshot for the publication span
// the temporal benchmarks slice windows from.
func docTimeBounds(e *Engine) (int64, int64) {
	st := e.state()
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for d := int32(0); d < int32(st.snap.DocBound()); d++ {
		if !st.snap.HasDoc(d) {
			continue
		}
		ts := st.snap.Doc(d).PublishedAt
		if ts < lo {
			lo = ts
		}
		if ts > hi {
			hi = ts
		}
	}
	return lo, hi
}

// BenchmarkTimeFilteredRollUp measures what the segment- and
// block-level time bounds buy: cold roll-up epochs (see
// runColdParallel) over the full query pool, unfiltered vs restricted
// to the most recent 10% of the corpus's publication span — the
// analyst's "what happened lately" query. The window variant must
// prune whole blocks before scoring, so its per-query cost is gated in
// scripts/bench_json.sh at no more than half the unfiltered cost.
func BenchmarkTimeFilteredRollUp(b *testing.B) {
	g, _, _, e := world(b)
	qs := benchQueries(g)
	lo, hi := docTimeBounds(e)
	if lo > hi {
		b.Fatal("no documents indexed")
	}
	win := &TimeRange{Min: hi - (hi-lo)/10, Max: math.MaxInt64}
	ctx := context.Background()

	b.Run("unfiltered", func(b *testing.B) {
		runColdParallel(b, e, qs, func(q Query) {
			if _, err := e.RollUpPage(ctx, q, RollUpOptions{K: 10}); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("window10", func(b *testing.B) {
		runColdParallel(b, e, qs, func(q Query) {
			if _, err := e.RollUpPage(ctx, q, RollUpOptions{K: 10, Time: win}); err != nil {
				b.Fatal(err)
			}
		})
	})
	// The grouped variant is reported (not gated): the per-period
	// aggregation rides the same scan, so its cost over the filtered
	// scan bounds what group_by adds.
	b.Run("window10-groupby", func(b *testing.B) {
		runColdParallel(b, e, qs, func(q Query) {
			if _, err := e.RollUpPage(ctx, q, RollUpOptions{K: 10, Time: win, GroupBy: GroupWeek}); err != nil {
				b.Fatal(err)
			}
		})
	})
}
